package macc_test

import (
	"errors"
	"testing"

	"macc"
	"macc/internal/faultinject"
	"macc/internal/pipeline"
)

// resilienceArgs exercises the dot product over the deterministic memory
// image pipeline.Behavior seeds (a and b arrays land on the i*7 pattern).
var resilienceArgs = [][]int64{{0, 4096, 33}}

const resilienceMem = 1 << 16

func dotBehavior(t *testing.T, p *macc.Program) string {
	t.Helper()
	fp, err := pipeline.Behavior(p.RTL, p.Machine, resilienceMem, "dotproduct", resilienceArgs)
	if err != nil {
		t.Fatalf("behavior: %v", err)
	}
	return fp
}

// TestFaultInjectionAcrossPipeline drives the issue's acceptance criterion:
// with a fault injected into any pipeline pass, a default (non-strict)
// macc.Compile still returns a runnable Program whose simulator behaviour
// is bit-identical to the Optimize: false build, Program.Diagnostics names
// the failing pass, and macc.Bisect attributes the same pass; in Strict
// mode the same fault surfaces as a *pipeline.PassError.
func TestFaultInjectionAcrossPipeline(t *testing.T) {
	unopt, err := macc.Compile(dotSrc, macc.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	wantFP := dotBehavior(t, unopt)

	kinds := []faultinject.Kind{
		faultinject.Panic, faultinject.ClobberReg,
		faultinject.DropTerminator, faultinject.RetargetBranch,
	}
	for _, pass := range macc.Passes(macc.DefaultConfig()) {
		for _, kind := range kinds {
			t.Run(pass+"/"+kind.String(), func(t *testing.T) {
				// Non-strict: degraded but correct, incident attributed.
				inj := &faultinject.Injector{Pass: pass, Kind: kind, Seed: 1}
				cfg := macc.DefaultConfig()
				cfg.WrapPass = inj.Hook()
				prog, err := macc.Compile(dotSrc, cfg)
				if err != nil {
					t.Fatalf("non-strict compile died: %v", err)
				}
				if !inj.Fired() {
					t.Skipf("pass %s offered no victim for %s", pass, kind)
				}
				if got := dotBehavior(t, prog); got != wantFP {
					t.Errorf("degraded program diverges from the unoptimized build")
				}
				failed := prog.Diagnostics.FailedPasses()
				if len(failed) == 0 || failed[0] != pass {
					t.Errorf("Diagnostics names %v, want %q first", failed, pass)
				}

				// Strict: the same fault aborts compilation as a *PassError.
				scfg := macc.DefaultConfig()
				scfg.Strict = true
				scfg.WrapPass = (&faultinject.Injector{Pass: pass, Kind: kind, Seed: 1}).Hook()
				_, serr := macc.Compile(dotSrc, scfg)
				var pe *pipeline.PassError
				if !errors.As(serr, &pe) || pe.Pass != pass {
					t.Errorf("strict compile: want *PassError for %q, got %v", pass, serr)
				}

				// Bisection attributes the same pass.
				bcfg := macc.DefaultConfig()
				bcfg.WrapPass = (&faultinject.Injector{Pass: pass, Kind: kind, Seed: 1}).Hook()
				bad, err := macc.DifferentialPredicate(unopt.RTL, "dotproduct", bcfg, resilienceMem, resilienceArgs)
				if err != nil {
					t.Fatal(err)
				}
				res, err := macc.Bisect(unopt.RTL, "dotproduct", bcfg, bad)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Found() || res.Pass != pass {
					t.Errorf("bisect attributes %v, want %q", res, pass)
				}
			})
		}
	}
}

// TestSilentMiscompileIsBisectable: a flip-op fault survives the structural
// checkpoints (silent miscompile) but differential bisection still pins it.
func TestSilentMiscompileIsBisectable(t *testing.T) {
	unopt, err := macc.Compile(dotSrc, macc.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	cfg := macc.DefaultConfig()
	inj := &faultinject.Injector{Pass: "strength-reduce", Kind: faultinject.FlipOp, Seed: 2}
	cfg.WrapPass = inj.Hook()
	bad, err := macc.DifferentialPredicate(unopt.RTL, "dotproduct", cfg, resilienceMem, resilienceArgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := macc.Bisect(unopt.RTL, "dotproduct", cfg, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Pass != "strength-reduce" {
		t.Fatalf("bisect = %v, want strength-reduce", res)
	}
}

// TestCleanCompileHasEmptyDiagnostics pins the healthy-path contract: no
// incidents, and bisection over the real pipeline finds no culprit.
func TestCleanCompileHasEmptyDiagnostics(t *testing.T) {
	prog, err := macc.Compile(dotSrc, macc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if prog.Diagnostics.Degraded() {
		t.Fatalf("healthy compile reported incidents: %s", prog.Diagnostics)
	}
	unopt, err := macc.Compile(dotSrc, macc.Config{Optimize: false})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := macc.DifferentialPredicate(unopt.RTL, "dotproduct", macc.DefaultConfig(), resilienceMem, resilienceArgs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := macc.Bisect(unopt.RTL, "dotproduct", macc.DefaultConfig(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("healthy pipeline accused %v", res)
	}
}

// TestStrictDefaultOff ensures the graceful mode is the default: Config's
// zero value (plus Optimize) compiles degraded rather than failing.
func TestStrictDefaultOff(t *testing.T) {
	inj := &faultinject.Injector{Pass: "clean", Kind: faultinject.Panic}
	cfg := macc.Config{Optimize: true, WrapPass: inj.Hook()}
	prog, err := macc.Compile(dotSrc, cfg)
	if err != nil {
		t.Fatalf("default mode must not fail: %v", err)
	}
	if !prog.Diagnostics.Degraded() {
		t.Error("expected a recorded incident")
	}
}
