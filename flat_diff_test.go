package macc_test

// Differential tests for the flat IR itself, independent of the cache:
// Flatten/Unflatten (and the binary codec in between) must be lossless
// through the printer, and a simulator predecoded straight from the flat
// form must behave bit-identically to one decoded from the pointer graph.

import (
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/rtlgen"
	"macc/internal/sim"
)

// behave runs entry over argSets and fingerprints return values, timing,
// memory-reference counts, and final memory.
func behave(t *testing.T, s *sim.Sim, argSets [][]int64) []sim.Result {
	t.Helper()
	out := make([]sim.Result, 0, len(argSets))
	for _, args := range argSets {
		s.Reset()
		s.Fuel = 1 << 26
		for i := range s.Mem {
			s.Mem[i] = byte(i * 7)
		}
		res, err := s.Run("f", args...)
		if err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		out = append(out, res)
	}
	return out
}

// TestFlatDifferentialRandomRTL sweeps generated programs through every
// flat route — direct Flatten/Unflatten and a codec encode/decode round
// trip — checking byte-identical printed RTL, then simulates each program
// on both a graph-decoded and a flat-decoded Sim and requires identical
// return values, cycle counts, and memory-reference counts.
func TestFlatDifferentialRandomRTL(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	m := machine.Alpha()
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {511, 1023, 7}}
	for seed := int64(1); seed <= seeds; seed++ {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		prog := &rtl.Program{Fns: []*rtl.Fn{fn}}
		want := prog.String()

		fp, err := rtl.Flatten(prog)
		if err != nil {
			t.Fatalf("seed %d: flatten: %v", seed, err)
		}
		back, err := fp.Unflatten()
		if err != nil {
			t.Fatalf("seed %d: unflatten: %v", seed, err)
		}
		if got := back.String(); got != want {
			t.Fatalf("seed %d: Flatten/Unflatten not lossless:\n%s\nvs\n%s", seed, got, want)
		}

		dec, err := codec.DecodeProgram(codec.EncodeProgram(fp))
		if err != nil {
			t.Fatalf("seed %d: codec round trip: %v", seed, err)
		}
		decBack, err := dec.Unflatten()
		if err != nil {
			t.Fatalf("seed %d: unflatten decoded: %v", seed, err)
		}
		if got := decBack.String(); got != want {
			t.Fatalf("seed %d: codec round trip not lossless:\n%s\nvs\n%s", seed, got, want)
		}

		graph := behave(t, sim.New(prog, m, rtlgen.MemWindow*2), argSets)
		flat := behave(t, sim.NewFlat(fp, m, rtlgen.MemWindow*2), argSets)
		for i := range graph {
			g, f := graph[i], flat[i]
			if g.Ret != f.Ret || g.Cycles != f.Cycles || g.MemRefs() != f.MemRefs() {
				t.Fatalf("seed %d args %v: flat sim differs: ret %d/%d cycles %d/%d refs %d/%d",
					seed, argSets[i], g.Ret, f.Ret, g.Cycles, f.Cycles, g.MemRefs(), f.MemRefs())
			}
		}
	}
}

// TestFlatDifferentialKernels runs the same round-trip check on every paper
// kernel's fully optimized RTL under every config variant — the exact
// programs the cache stores.
func TestFlatDifferentialKernels(t *testing.T) {
	for cfgName, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfgName, func(t *testing.T) {
			for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
				cold, err := macc.Compile(bm.Src, cfg)
				if err != nil {
					t.Fatalf("%s: compile: %v", bm.Name, err)
				}
				want := cold.RTL.String()
				fp, err := rtl.Flatten(cold.RTL)
				if err != nil {
					t.Fatalf("%s: flatten: %v", bm.Name, err)
				}
				dec, err := codec.DecodeProgram(codec.EncodeProgram(fp))
				if err != nil {
					t.Fatalf("%s: codec round trip: %v", bm.Name, err)
				}
				back, err := dec.Unflatten()
				if err != nil {
					t.Fatalf("%s: unflatten: %v", bm.Name, err)
				}
				if got := back.String(); got != want {
					t.Fatalf("%s: flat round trip not lossless:\n%s\nvs\n%s", bm.Name, got, want)
				}
			}
		})
	}
}
