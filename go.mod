module macc

go 1.22
