package macc_test

// One testing.B benchmark per table and figure of the paper. Each
// sub-benchmark compiles a kernel under one of the paper's compiler
// configurations, runs it on the simulated machine, and reports the
// simulated cycle count and memory references as custom metrics
// (sim-cycles, sim-memrefs); wall-clock ns/op measures the simulator
// itself. The small workload keeps `go test -bench` fast — run
// `go run ./cmd/tables -all` for the paper-sized reproduction.

import (
	"fmt"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
)

var configNames = []string{"native", "vpo", "coalesce-loads", "coalesce-loads-stores"}

func benchMachineTable(b *testing.B, m *machine.Machine) {
	wl := bench.SmallWorkload()
	cfgs := bench.Configs(m)
	for _, bm := range bench.Benchmarks() {
		for i, cfg := range cfgs {
			name := fmt.Sprintf("%s/%s", bm.Name, configNames[i])
			b.Run(name, func(b *testing.B) {
				prog, err := macc.Compile(bm.Src, cfg)
				if err != nil {
					b.Fatal(err)
				}
				var cycles, refs int64
				b.ResetTimer()
				for n := 0; n < b.N; n++ {
					res, err := bm.Run(prog, wl)
					if err != nil {
						b.Fatal(err)
					}
					cycles, refs = res.Cycles, res.MemRefs()
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
				b.ReportMetric(float64(refs), "sim-memrefs")
			})
		}
	}
}

// BenchmarkTableI measures front-end + pipeline compile time for each Table
// I kernel (the paper's Table I is the suite itself).
func BenchmarkTableI(b *testing.B) {
	for _, bm := range bench.Benchmarks() {
		b.Run(bm.Name, func(b *testing.B) {
			cfg := macc.DefaultConfig()
			for n := 0; n < b.N; n++ {
				if _, err := macc.Compile(bm.Src, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableII regenerates the DEC Alpha table.
func BenchmarkTableII(b *testing.B) { benchMachineTable(b, machine.Alpha()) }

// BenchmarkTableIII regenerates the Motorola 88100 table.
func BenchmarkTableIII(b *testing.B) { benchMachineTable(b, machine.M88100()) }

// BenchmarkTable68030 regenerates the §3 Motorola 68030 result.
func BenchmarkTable68030(b *testing.B) { benchMachineTable(b, machine.M68030()) }

// BenchmarkTableV reports the run-time check budget (§4's 10-15 instruction
// claim) as a metric per kernel.
func BenchmarkTableV(b *testing.B) {
	for _, bm := range bench.Benchmarks() {
		b.Run(bm.Name, func(b *testing.B) {
			cfg := macc.BaselineConfig(machine.Alpha())
			cfg.Coalesce = core.Options{Loads: true, Stores: true}
			var instrs int
			for n := 0; n < b.N; n++ {
				p, err := macc.Compile(bm.Src, cfg)
				if err != nil {
					b.Fatal(err)
				}
				instrs = 0
				for _, r := range p.Reports {
					if r.Applied {
						instrs += r.CheckInstrs
					}
				}
			}
			b.ReportMetric(float64(instrs), "check-instrs")
		})
	}
}

// BenchmarkFigure1 regenerates the motivating dot product: rolled versus
// unrolled+coalesced, reporting the per-element memory reference counts the
// paper quotes (2 vs 1/2).
func BenchmarkFigure1(b *testing.B) {
	const n = 4096
	for _, mode := range []string{"rolled", "coalesced"} {
		b.Run(mode, func(b *testing.B) {
			cfg := macc.Config{Machine: machine.Alpha(), Optimize: true}
			if mode == "coalesced" {
				cfg = macc.DefaultConfig()
			}
			prog, err := macc.Compile(bench.DotProductSrc, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var refsPerElem float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := prog.NewSim(1 << 20)
				vals := make([]int64, n)
				for j := range vals {
					vals[j] = int64(j % 100)
				}
				s.WriteInts(4096, rtl.W2, vals)
				s.WriteInts(4096+2*n+64, rtl.W2, vals)
				res, err := s.Run("dotproduct", 4096, 4096+2*n+64, n)
				if err != nil {
					b.Fatal(err)
				}
				refsPerElem = float64(res.MemRefs()) / n
			}
			b.ReportMetric(refsPerElem, "memrefs/elem")
		})
	}
}

// BenchmarkAblationRuntimeChecks quantifies the paper's central design
// argument: without run-time alias and alignment analysis almost no
// opportunity survives (static-only coalescing changes nothing).
func BenchmarkAblationRuntimeChecks(b *testing.B) {
	wl := bench.SmallWorkload()
	bm := bench.Benchmarks()[1] // Image add
	for _, mode := range []string{"runtime-checks", "static-only"} {
		b.Run(mode, func(b *testing.B) {
			cfg := macc.BaselineConfig(machine.Alpha())
			cfg.Coalesce = core.Options{Loads: true, Stores: true,
				NoRuntimeChecks: mode == "static-only"}
			prog, err := macc.Compile(bm.Src, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := bm.Run(prog, wl)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationRegisterFile sweeps the register file size: with few
// registers the unrolled+coalesced loop spills, and spill traffic eats the
// coalescing win — the pressure interaction behind the paper's unrolling
// heuristic.
func BenchmarkAblationRegisterFile(b *testing.B) {
	wl := bench.SmallWorkload()
	bm := bench.Benchmarks()[1] // Image add
	for _, regs := range []int{8, 12, 16, 32} {
		b.Run(fmt.Sprintf("regs-%d", regs), func(b *testing.B) {
			cfg := macc.BaselineConfig(machine.Alpha())
			cfg.Coalesce = core.Options{Loads: true, Stores: true}
			cfg.Registers = regs
			prog, err := macc.Compile(bm.Src, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cycles, refs int64
			for i := 0; i < b.N; i++ {
				res, err := bm.Run(prog, wl)
				if err != nil {
					b.Fatal(err)
				}
				cycles, refs = res.Cycles, res.MemRefs()
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(refs), "sim-memrefs")
		})
	}
}

// BenchmarkAblationUnrollFactor sweeps the unroll factor to show the
// interaction the paper discusses between unrolling, the instruction cache,
// and coalescing width.
func BenchmarkAblationUnrollFactor(b *testing.B) {
	wl := bench.SmallWorkload()
	bm := bench.Benchmarks()[1] // Image add
	for _, factor := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("factor-%d", factor), func(b *testing.B) {
			cfg := macc.BaselineConfig(machine.Alpha())
			cfg.UnrollFactor = factor
			cfg.Coalesce = core.Options{Loads: true, Stores: true}
			prog, err := macc.Compile(bm.Src, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := bm.Run(prog, wl)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}
