package macc_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/sim"
)

// The central safety claim of the paper is that coalescing plus its
// run-time alias and alignment checks never changes program behaviour. The
// property tests here pit the fully optimized compile (unroll + coalesce
// loads and stores + schedule) against the unoptimized compile of the same
// source on identical random memory images — including misaligned base
// addresses, trip counts that are not multiples of the unroll factor, and
// deliberately overlapping argument buffers (aliasing). Any divergence in
// the returned value or the final memory is a soundness bug.

type propCase struct {
	name string
	src  string
	fn   string
	// args produces the call arguments given a generator; buffers are
	// described as (offset into memory, length) and initialized randomly.
	args func(rng *rand.Rand) []int64
}

const propMem = 1 << 16

func randomArgsFor(rng *rand.Rand, nBufs int, elem int64, overlapping bool) (addrs []int64, n int64) {
	n = int64(rng.Intn(70)) // includes 0 and non-multiples of 8
	span := n*elem + 64
	if overlapping {
		base := int64(2048 + rng.Intn(64))
		for i := 0; i < nBufs; i++ {
			// Random offsets that frequently overlap each other.
			addrs = append(addrs, base+int64(rng.Intn(int(span/2+2)))*elem)
		}
	} else {
		for i := 0; i < nBufs; i++ {
			addrs = append(addrs, int64(2048)+int64(i)*(span+int64(rng.Intn(16))))
		}
	}
	return addrs, n
}

func propCases(overlap bool) []propCase {
	mk := func(name, src, fn string, bufs int, elem int64) propCase {
		return propCase{
			name: name, src: src, fn: fn,
			args: func(rng *rand.Rand) []int64 {
				addrs, n := randomArgsFor(rng, bufs, elem, overlap)
				return append(addrs, n)
			},
		}
	}
	cases := []propCase{
		mk("byte-add", `
			void f(unsigned char *a, unsigned char *b, unsigned char *o, int n) {
				int i;
				for (i = 0; i < n; i++) o[i] = a[i] + b[i];
			}`, "f", 3, 1),
		mk("short-dot", `
			int f(short *a, short *b, int n) {
				int i, c = 0;
				for (i = 0; i < n; i++) c += a[i] * b[i];
				return c;
			}`, "f", 2, 2),
		mk("byte-copy-back", `
			void f(unsigned char *src, unsigned char *dst, int n) {
				int i;
				for (i = 0; i < n; i++) dst[i] = src[n-1-i];
			}`, "f", 2, 1),
		mk("short-scale-store", `
			void f(short *a, short *o, int n) {
				int i;
				for (i = 0; i < n; i++) o[i] = a[i] * 3 - 1;
			}`, "f", 2, 2),
		mk("int-xor", `
			void f(unsigned *a, unsigned *b, unsigned *o, int n) {
				int i;
				for (i = 0; i < n; i++) o[i] = a[i] ^ b[i];
			}`, "f", 3, 4),
	}
	return cases
}

func runProp(t *testing.T, m *machine.Machine, overlap bool, rounds int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for _, pc := range propCases(overlap) {
		plain, err := macc.Compile(pc.src, macc.Config{Machine: m, Optimize: true})
		if err != nil {
			t.Fatalf("%s: plain compile: %v", pc.name, err)
		}
		full, err := macc.Compile(pc.src, macc.Config{
			Machine: m, Optimize: true, Unroll: true, Schedule: true,
			Coalesce: core.Options{Loads: true, Stores: true},
		})
		if err != nil {
			t.Fatalf("%s: full compile: %v", pc.name, err)
		}
		for round := 0; round < rounds; round++ {
			args := pc.args(rng)
			image := make([]byte, propMem)
			rng.Read(image[:8192])

			run := func(p *macc.Program) (int64, []byte, error) {
				s := p.NewSim(propMem)
				copy(s.Mem, image)
				res, err := s.Run(pc.fn, args...)
				if err != nil {
					return 0, nil, err
				}
				return res.Ret, s.Mem, nil
			}
			r1, m1, err1 := run(plain)
			r2, m2, err2 := run(full)
			ctx := fmt.Sprintf("%s/%s round %d args %v overlap=%v", m.Name, pc.name, round, args, overlap)
			if err1 != nil {
				// A plain-compile trap (e.g. misaligned short access on an
				// aligning machine from a misaligned buffer) must reproduce
				// in the optimized compile too.
				if err2 == nil {
					t.Fatalf("%s: plain trapped (%v) but optimized did not", ctx, err1)
				}
				continue
			}
			if err2 != nil {
				t.Fatalf("%s: optimized trapped: %v", ctx, err2)
			}
			if r1 != r2 {
				t.Fatalf("%s: results differ: %d vs %d", ctx, r1, r2)
			}
			if !bytes.Equal(m1, m2) {
				idx := firstDiff(m1, m2)
				t.Fatalf("%s: memory differs at %d: %d vs %d", ctx, idx, m1[idx], m2[idx])
			}
		}
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

func TestSemanticPreservationDisjoint(t *testing.T) {
	for _, m := range machine.All() {
		t.Run(m.Name, func(t *testing.T) { runProp(t, m, false, 40) })
	}
}

func TestSemanticPreservationAliased(t *testing.T) {
	for _, m := range machine.All() {
		t.Run(m.Name, func(t *testing.T) { runProp(t, m, true, 40) })
	}
}

// TestMisalignedBasesTakeSafeLoop drives the alignment checks directly: on
// a misaligned source buffer the Alpha-coalesced code must still produce
// correct results (via the safe loop), not trap.
func TestMisalignedBasesTakeSafeLoop(t *testing.T) {
	src := `
		void f(unsigned char *a, unsigned char *b, unsigned char *o, int n) {
			int i;
			for (i = 0; i < n; i++) o[i] = a[i] + b[i];
		}`
	full, err := macc.Compile(src, macc.Config{
		Machine: machine.Alpha(), Optimize: true, Unroll: true, Schedule: true,
		Coalesce: core.Options{Loads: true, Stores: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for misalign := int64(0); misalign < 8; misalign++ {
		s := full.NewSim(1 << 14)
		n := int64(64)
		a, b, o := 1024+misalign, 4096+misalign, 8192+misalign
		for i := int64(0); i < n; i++ {
			s.Mem[a+i] = byte(i * 3)
			s.Mem[b+i] = byte(100 - i)
		}
		res, err := s.Run("f", a, b, o, n)
		if err != nil {
			t.Fatalf("misalign %d: %v", misalign, err)
		}
		for i := int64(0); i < n; i++ {
			want := byte(i*3) + byte(100-i)
			if s.Mem[o+i] != want {
				t.Fatalf("misalign %d: out[%d] = %d, want %d", misalign, i, s.Mem[o+i], want)
			}
		}
		// Aligned runs should do far fewer memory references than the
		// misaligned (safe-loop) runs.
		if misalign == 0 && res.MemRefs() > 3*64/2 {
			t.Errorf("aligned run did not coalesce: %d refs", res.MemRefs())
		}
		if misalign == 1 && res.MemRefs() < 3*64 {
			t.Errorf("misaligned run should use the narrow safe loop: %d refs", res.MemRefs())
		}
	}
}

// TestOverlapTakesSafeLoop checks the run-time alias analysis: when the
// output overlaps an input, the coalesced loop must be bypassed and the
// semantics of the narrow loop preserved.
func TestOverlapTakesSafeLoop(t *testing.T) {
	src := `
		void f(unsigned char *a, unsigned char *b, unsigned char *o, int n) {
			int i;
			for (i = 0; i < n; i++) o[i] = a[i] + b[i];
		}`
	for _, m := range []*machine.Machine{machine.Alpha(), machine.M88100()} {
		full, err := macc.Compile(src, macc.Config{
			Machine: m, Optimize: true, Unroll: true, Schedule: true,
			Coalesce: core.Options{Loads: true, Stores: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := macc.Compile(src, macc.Config{Machine: m, Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		n := int64(48)
		// o overlaps a shifted by one: classic feedback loop.
		a, b, o := int64(1024), int64(4096), int64(1025)
		runOn := func(p *macc.Program) ([]byte, sim.Result) {
			s := p.NewSim(1 << 14)
			for i := int64(0); i < n+1; i++ {
				s.Mem[a+i] = byte(i)
				s.Mem[b+i] = byte(2 * i)
			}
			res, err := s.Run("f", a, b, o, n)
			if err != nil {
				t.Fatal(err)
			}
			return s.ReadBytes(1024, int(n)+8), res
		}
		wantMem, _ := runOn(plain)
		gotMem, res := runOn(full)
		if !bytes.Equal(wantMem, gotMem) {
			t.Fatalf("%s: aliased semantics broken", m.Name)
		}
		if res.MemRefs() < 3*n {
			t.Errorf("%s: aliased run must take the narrow safe loop, got %d refs", m.Name, res.MemRefs())
		}
	}
}
