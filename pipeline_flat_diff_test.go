package macc_test

// Differential tests for the flat pass pipeline: compiling with the default
// flat-native cold path must be observably identical to forcing the
// pointer-graph pipeline — byte-identical printed RTL, identical simulated
// behaviour, and identical optimization decisions (coalescing reports and
// unroll factors) — for every paper kernel under every config variant and
// for a corpus of random generated programs.

import (
	"fmt"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/rtlgen"
)

// flatDiffConfigs extends the cache differential matrix with variants that
// exercise the bridged regalloc stage and strict mode on the flat path.
func flatDiffConfigs() map[string]macc.Config {
	cfgs := diffConfigs()
	ra := macc.DefaultConfig()
	ra.Registers = 16
	cfgs["regalloc"] = ra
	strict := macc.DefaultConfig()
	strict.Strict = true
	cfgs["strict"] = strict
	return cfgs
}

// diffReports fails if the two report slices disagree anywhere a decision
// was made: same loops examined in the same order, same Applied verdicts,
// same reasons, same wide/narrow counts — i.e. zero optreport flips.
func diffReports(t *testing.T, name string, graph, flat *macc.Program) {
	t.Helper()
	if len(graph.Reports) != len(flat.Reports) {
		t.Fatalf("%s: report count differs: graph %d vs flat %d",
			name, len(graph.Reports), len(flat.Reports))
	}
	for i := range graph.Reports {
		g, f := graph.Reports[i], flat.Reports[i]
		if g != f {
			t.Fatalf("%s: loop report %d differs:\ngraph %+v\nflat  %+v", name, i, g, f)
		}
	}
	if len(graph.Unrolled) != len(flat.Unrolled) {
		t.Fatalf("%s: unroll map size differs: %v vs %v", name, graph.Unrolled, flat.Unrolled)
	}
	for fn, factor := range graph.Unrolled {
		if flat.Unrolled[fn] != factor {
			t.Fatalf("%s: unroll factor for %s differs: graph %d vs flat %d",
				name, fn, factor, flat.Unrolled[fn])
		}
	}
}

// TestFlatPipelineDifferentialKernels sweeps every paper kernel against
// every config variant, compiled once through the flat pipeline (the
// default) and once with GraphPipeline forced, and requires byte-identical
// printed RTL, cycle-identical simulation, and identical optimization
// decisions.
func TestFlatPipelineDifferentialKernels(t *testing.T) {
	for cfgName, cfg := range flatDiffConfigs() {
		cfg := cfg
		t.Run(cfgName, func(t *testing.T) {
			for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
				flatCfg := cfg
				flatCfg.GraphPipeline = false
				flat, err := macc.Compile(bm.Src, flatCfg)
				if err != nil {
					t.Fatalf("%s: flat compile: %v", bm.Name, err)
				}
				if flat.Flat == nil {
					t.Fatalf("%s: flat-pipeline compile carries no flat image", bm.Name)
				}
				graphCfg := cfg
				graphCfg.GraphPipeline = true
				graph, err := macc.Compile(bm.Src, graphCfg)
				if err != nil {
					t.Fatalf("%s: graph compile: %v", bm.Name, err)
				}

				gRTL, fRTL := graph.RTL.String(), flat.RTL.String()
				if gRTL != fRTL {
					t.Fatalf("%s: flat pipeline printed different RTL:\n--- graph ---\n%s\n--- flat ---\n%s",
						bm.Name, gRTL, fRTL)
				}
				diffReports(t, bm.Name, graph, flat)

				gRes, fRes := runBench(t, bm, graph), runBench(t, bm, flat)
				if gRes.Ret != fRes.Ret || gRes.Cycles != fRes.Cycles ||
					gRes.MemRefs() != fRes.MemRefs() {
					t.Fatalf("%s: behaviour differs: ret %d/%d cycles %d/%d refs %d/%d",
						bm.Name, gRes.Ret, fRes.Ret, gRes.Cycles, fRes.Cycles,
						gRes.MemRefs(), fRes.MemRefs())
				}
			}
		})
	}
}

// TestFlatPipelineDifferentialRandomRTL drives 200 random generated
// programs through both pipelines and compares printed RTL plus the
// behaviour fingerprint over several argument sets.
func TestFlatPipelineDifferentialRandomRTL(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	m := machine.Alpha()
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {511, 1023, 7}}
	for seed := int64(1); seed <= seeds; seed++ {
		gen := func() *rtl.Program {
			fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
			if err != nil {
				t.Fatalf("seed %d: generate: %v", seed, err)
			}
			return &rtl.Program{Fns: []*rtl.Fn{fn}}
		}
		cfg := macc.DefaultConfig()
		cfg.Machine = m

		flatCfg := cfg
		flatCfg.GraphPipeline = false
		flat, err := macc.CompileRTL(gen(), flatCfg)
		if err != nil {
			t.Fatalf("seed %d: flat compile: %v", seed, err)
		}
		graphCfg := cfg
		graphCfg.GraphPipeline = true
		graph, err := macc.CompileRTL(gen(), graphCfg)
		if err != nil {
			t.Fatalf("seed %d: graph compile: %v", seed, err)
		}

		if got, want := flat.RTL.String(), graph.RTL.String(); got != want {
			t.Fatalf("seed %d: flat pipeline printed different RTL:\n--- graph ---\n%s\n--- flat ---\n%s",
				seed, want, got)
		}
		diffReports(t, fmt.Sprintf("seed %d", seed), graph, flat)

		graphFP, err := pipeline.Behavior(graph.RTL, m, rtlgen.MemWindow*2, "f", argSets)
		if err != nil {
			t.Fatalf("seed %d: graph behaviour: %v", seed, err)
		}
		flatFP, err := pipeline.Behavior(flat.RTL, m, rtlgen.MemWindow*2, "f", argSets)
		if err != nil {
			t.Fatalf("seed %d: flat behaviour: %v", seed, err)
		}
		if graphFP != flatFP {
			t.Fatalf("seed %d: behaviour fingerprint differs:\n%s\nvs\n%s", seed, graphFP, flatFP)
		}
	}
}

// TestOptimizeFlatFromDecodedImage pins the cmd/macc -in=bin -reopt path:
// encode an unoptimized program through the binary codec, decode it, run
// OptimizeFlat over the image, and require output byte-identical to a
// direct source compile with the same configuration.
func TestOptimizeFlatFromDecodedImage(t *testing.T) {
	cfg := macc.DefaultConfig()
	plain := cfg
	plain.Optimize = false
	plain.Unroll = false
	plain.Coalesce = core.Options{}
	plain.Schedule = false
	for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
		unopt, err := macc.Compile(bm.Src, plain)
		if err != nil {
			t.Fatalf("%s: unoptimized compile: %v", bm.Name, err)
		}
		fp, err := rtl.Flatten(unopt.RTL)
		if err != nil {
			t.Fatalf("%s: flatten: %v", bm.Name, err)
		}
		dec, err := codec.DecodeProgram(codec.EncodeProgram(fp))
		if err != nil {
			t.Fatalf("%s: codec round trip: %v", bm.Name, err)
		}
		reopt, err := macc.OptimizeFlat(dec, cfg)
		if err != nil {
			t.Fatalf("%s: OptimizeFlat: %v", bm.Name, err)
		}
		direct, err := macc.Compile(bm.Src, cfg)
		if err != nil {
			t.Fatalf("%s: direct compile: %v", bm.Name, err)
		}
		if got, want := reopt.RTL.String(), direct.RTL.String(); got != want {
			t.Fatalf("%s: re-optimized image differs from direct compile:\n--- direct ---\n%s\n--- reopt ---\n%s",
				bm.Name, want, got)
		}
		if reopt.Flat == nil {
			t.Fatalf("%s: OptimizeFlat dropped the flat image", bm.Name)
		}
	}
}
