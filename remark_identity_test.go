package macc_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/telemetry"
)

// coalesceKeys compiles src under cfg with a fresh recorder and returns the
// sorted identity keys of every Passed/Missed coalesce remark.
func coalesceKeys(t *testing.T, src string, cfg macc.Config) []string {
	t.Helper()
	rec := telemetry.NewRecorder()
	cfg.Telemetry = rec
	if _, err := macc.Compile(src, cfg); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, r := range rec.Remarks() {
		if r.Pass != "coalesce" || (r.Kind != telemetry.Passed && r.Kind != telemetry.Missed) {
			continue
		}
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return keys
}

// TestRemarkKeysStableAcrossRunsAndConfigs is the diffability contract the
// optimization observatory rests on: the same source loop must key
// identically in every run and under every configuration, so an optreport
// diff compares decisions about the *same* loop rather than accidental
// positional matches.
func TestRemarkKeysStableAcrossRunsAndConfigs(t *testing.T) {
	for _, b := range bench.Benchmarks() {
		loads := macc.BaselineConfig(machine.Alpha())
		loads.Coalesce = core.Options{Loads: true}
		loads.Unit = b.Name
		both := loads
		both.Coalesce = core.Options{Loads: true, Stores: true}

		run1 := coalesceKeys(t, b.Src, loads)
		run2 := coalesceKeys(t, b.Src, loads)
		bothKeys := coalesceKeys(t, b.Src, both)
		if len(run1) == 0 {
			t.Errorf("%s: no coalesce remarks; identity test is vacuous", b.Name)
			continue
		}
		if !reflect.DeepEqual(run1, run2) {
			t.Errorf("%s: keys differ across identical runs:\n  %v\n  %v", b.Name, run1, run2)
		}
		if !reflect.DeepEqual(run1, bothKeys) {
			t.Errorf("%s: keys differ across loads/both configs:\n  %v\n  %v", b.Name, run1, bothKeys)
		}
		seen := make(map[string]bool, len(run1))
		for _, k := range run1 {
			if seen[k] {
				t.Errorf("%s: duplicate loop key %q — loop labels are not unique", b.Name, k)
			}
			seen[k] = true
			wantPrefix := b.Name + ":"
			if len(k) < len(wantPrefix) || k[:len(wantPrefix)] != wantPrefix {
				t.Errorf("%s: key %q not prefixed with the unit name", b.Name, k)
			}
		}
	}
}

// TestRemarkKeysDistinguishUnits compiles the same source as two different
// translation units: every key must carry its unit so a corpus-wide report
// never conflates identically named loops from different programs.
func TestRemarkKeysDistinguishUnits(t *testing.T) {
	cfg := macc.DefaultConfig()
	cfg.Unit = "unitA"
	a := coalesceKeys(t, bench.ConvolutionSrc, cfg)
	cfg.Unit = "unitB"
	b := coalesceKeys(t, bench.ConvolutionSrc, cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("key counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("key %q identical across units; Unit not part of identity", a[i])
		}
	}
}

// TestRemarkJSONRoundTrip checks that a remark survives the JSONL wire
// format (the form optreport artifacts and /compile responses carry) with
// its identity key and reason token intact.
func TestRemarkJSONRoundTrip(t *testing.T) {
	in := telemetry.Remark{
		Kind: telemetry.Missed, Pass: "coalesce",
		Unit: "convolution", Fn: "convolution", Loop: "loop2.unrolled",
		Name: "NotCoalesced", Reason: "profitability:sched-cycles 14>=14",
		Args: map[string]int64{"narrowLoads": 8},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out telemetry.Remark
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the remark:\n  in:  %+v\n  out: %+v", in, out)
	}
	if got, want := out.Key(), "convolution:convolution/loop2.unrolled"; got != want {
		t.Errorf("Key() = %q, want %q", got, want)
	}
	if got, want := out.ReasonToken(), "profitability:sched-cycles"; got != want {
		t.Errorf("ReasonToken() = %q, want %q", got, want)
	}
}

// TestUnitDoesNotAffectCompilation: Unit is observational only — the
// compiled RTL and the cache fingerprint must be identical with and without
// it, so setting a unit never forks the content-addressed cache.
func TestUnitDoesNotAffectCompilation(t *testing.T) {
	plain := macc.DefaultConfig()
	unitd := macc.DefaultConfig()
	unitd.Unit = "dotproduct"
	p1, err := macc.Compile(dotSrc, plain)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := macc.Compile(dotSrc, unitd)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(p1.RTL) != fmt.Sprint(p2.RTL) {
		t.Error("setting Config.Unit changed the compiled program")
	}
}
