// Command tables regenerates every table and figure of the paper's
// evaluation on the simulated machines:
//
//	-table 1   Table I: the benchmark suite
//	-table 2   Table II: DEC Alpha cycles and percent savings
//	-table 3   Table III: Motorola 88100 cycles and percent savings
//	-table 4   the §3 Motorola 68030 result (slower on every program)
//	-table 5   run-time check cost (the §4 "10 to 15 instructions" claim)
//	-figure 1  the dot-product RTL before and after coalescing
//	-all       everything
//
// The default workload matches the paper (500x500 frames); -quick shrinks
// it for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-5)")
	figure := flag.Int("figure", 0, "figure number to regenerate (1)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use a small workload")
	flag.Parse()

	wl := bench.DefaultWorkload()
	if *quick {
		wl = bench.SmallWorkload()
	}

	any := false
	want := func(n int) bool { return *all || *table == n }
	if want(1) {
		table1()
		any = true
	}
	if want(2) {
		machineTable("Table II: DEC Alpha (simulated cycles)", machine.Alpha(), wl)
		any = true
	}
	if want(3) {
		machineTable("Table III: Motorola 88100 (simulated cycles)", machine.M88100(), wl)
		any = true
	}
	if want(4) {
		machineTable("Motorola 68030 (simulated cycles; the paper's §3 negative result)", machine.M68030(), wl)
		any = true
	}
	if want(5) {
		table5()
		any = true
	}
	if *all || *figure == 1 {
		figure1()
		any = true
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

func table1() {
	fmt.Println("Table I: compute- and memory-intensive benchmarks")
	fmt.Printf("%-20s %-52s %8s %8s\n", "Program", "Description", "paperLoC", "ourLoC")
	desc := map[string]string{
		"Convolution":        "gradient directional edge convolution of a 500x500 image",
		"Image add":          "image addition of two 500x500 frames",
		"Image add (16-bit)": "16-bit variant of image addition",
		"Image xor":          "exclusive-or of two 500x500 frames",
		"Translate":          "translate a 500x500 image to a new position",
		"Eqntott":            "SPEC89 eqntott comparison kernel",
		"Mirror":             "mirror image of a 500x500 frame",
	}
	paperLoC := map[string]int{}
	for _, b := range bench.Benchmarks() {
		paperLoC[b.Name] = b.PaperLoC
	}
	for _, b := range bench.Benchmarks() {
		ours := len(strings.Split(strings.TrimSpace(b.Src), "\n"))
		fmt.Printf("%-20s %-52s %8d %8d\n", b.Name, desc[b.Name], paperLoC[b.Name], ours)
	}
	fmt.Println()
}

// machineTable prints one paper table. Rows whose kernel or configuration
// failed to compile (or validate) render as diagnostic lines — one bad loop
// no longer takes the whole table down.
func machineTable(title string, m *machine.Machine, wl bench.Workload) {
	rows, err := bench.RunTable(m, wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		return
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v (row degraded)\n", r.Name, r.Err)
		}
	}
	fmt.Print(bench.FormatTable(title, rows))
	fmt.Println()
}

func table5() {
	fmt.Println("Run-time check cost (paper §4: \"10 to 15 instructions ... in the loop preheader\")")
	fmt.Printf("%-20s %12s %12s %12s\n", "Program", "checkInstrs", "aliasPairs", "alignChecks")
	for _, b := range bench.Benchmarks() {
		cfg := macc.BaselineConfig(machine.Alpha())
		cfg.Coalesce = core.Options{Loads: true, Stores: true}
		p, err := macc.Compile(b.Src, cfg)
		if err != nil {
			fmt.Printf("%-20s FAILED: %v\n", b.Name, err)
			continue
		}
		instrs, pairs, aligns := 0, 0, 0
		for _, r := range p.Reports {
			if r.Applied {
				instrs += r.CheckInstrs
				pairs += r.AliasCheckPairs
				aligns += r.AlignmentChecks
			}
		}
		fmt.Printf("%-20s %12d %12d %12d\n", b.Name, instrs, pairs, aligns)
	}
	fmt.Println()
}

func figure1() {
	fmt.Println("Figure 1: dot product (a) source, (b) rolled RTL, (c) unrolled + coalesced RTL")
	fmt.Println("---- (a) source ----")
	fmt.Println(strings.TrimSpace(bench.DotProductSrc))

	show := func(title string, cfg macc.Config) {
		p, err := macc.Compile(bench.DotProductSrc, cfg)
		if err != nil {
			fmt.Printf("---- %s ----\nFAILED: %v\n", title, err)
			return
		}
		f, _ := p.Fn("dotproduct")
		fmt.Printf("---- %s ----\n%s", title, f)
	}
	plain := macc.Config{Machine: machine.Alpha(), Optimize: true}
	show("(b) optimized rolled loop", plain)
	full := macc.DefaultConfig()
	full.Schedule = false // keep the listing readable, as the paper's is
	show("(c) unrolled with coalesced memory references", full)
	_ = rtl.W2
}
