// Command tables regenerates every table and figure of the paper's
// evaluation on the simulated machines:
//
//	-table 1   Table I: the benchmark suite
//	-table 2   Table II: DEC Alpha cycles and percent savings
//	-table 3   Table III: Motorola 88100 cycles and percent savings
//	-table 4   the §3 Motorola 68030 result (slower on every program)
//	-table 5   run-time check cost (the §4 "10 to 15 instructions" claim)
//	-figure 1  the dot-product RTL before and after coalescing
//	-all       everything
//
// The default workload matches the paper (500x500 frames); -quick shrinks
// it for a fast smoke run.
//
// Machine-readable output for CI:
//
//	-json BENCH_macc.json   write the Alpha table as a benchmark artifact
//	                        (per-kernel cycles, memory references, and
//	                        coalesce counts; "-" writes to stdout)
//	-dump-kernels DIR       write each benchmark's C source into DIR so
//	                        other tools (e.g. macc -remarks) can run them
//	-trace trace.json       write a merged Chrome trace of every cell
//	                        compile; with -j each worker gets its own
//	                        process row (load it in chrome://tracing)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-5)")
	figure := flag.Int("figure", 0, "figure number to regenerate (1)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "use a small workload")
	jsonOut := flag.String("json", "", "write the Alpha table as a JSON benchmark artifact to this path (\"-\" for stdout)")
	dumpDir := flag.String("dump-kernels", "", "write each benchmark's C source into this directory")
	jobs := flag.Int("j", 0, "worker pool width for table measurement (0 = GOMAXPROCS; output is identical at any width)")
	traceOut := flag.String("trace", "", "write a merged per-worker Chrome trace of the table's compiles to this path")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /metrics/history on this address while measuring")
	flag.Parse()

	if *debugAddr != "" {
		addr, err := telemetry.StartDebugServer(*debugAddr, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tables: debug server on %s\n", addr)
	}

	wl := bench.DefaultWorkload()
	if *quick {
		wl = bench.SmallWorkload()
	}
	topts := bench.TableOptions{Jobs: *jobs}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		defer f.Close()
		topts.Trace = f
	}
	// A Chrome trace file holds one JSON document, so only the first measured
	// table gets the writer; under -all the rest run untraced.
	tableOpts := func() bench.TableOptions {
		o := topts
		topts.Trace = nil
		return o
	}

	any := false
	if *dumpDir != "" {
		if err := dumpKernels(*dumpDir); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		any = true
	}
	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, wl, tableOpts()); err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		any = true
	}
	want := func(n int) bool { return *all || *table == n }
	if want(1) {
		table1()
		any = true
	}
	if want(2) {
		machineTable("Table II: DEC Alpha (simulated cycles)", machine.Alpha(), wl, tableOpts())
		any = true
	}
	if want(3) {
		machineTable("Table III: Motorola 88100 (simulated cycles)", machine.M88100(), wl, tableOpts())
		any = true
	}
	if want(4) {
		machineTable("Motorola 68030 (simulated cycles; the paper's §3 negative result)", machine.M68030(), wl, tableOpts())
		any = true
	}
	if want(5) {
		table5()
		any = true
	}
	if *all || *figure == 1 {
		figure1()
		any = true
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}

// writeArtifact measures the Alpha table and writes it as the BENCH_macc
// JSON artifact CI uploads. Failed rows are preserved in the artifact (with
// their error text) and reported on stderr, but do not fail the run: the
// artifact is a record of what happened, not a gate.
func writeArtifact(path string, wl bench.Workload, topts bench.TableOptions) error {
	m := machine.Alpha()
	rows, err := bench.RunTableOpts(m, wl, topts)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v (row degraded)\n", r.Name, r.Err)
		}
	}
	a := bench.NewArtifact(m, wl, rows)
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return a.WriteJSON(w)
}

// dumpKernels writes each benchmark's C source (plus the Figure 1 dot
// product) into dir, named after the entry point, so CI can run cmd/macc
// with -remarks=json over the exact sources the tables measure.
func dumpKernels(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	kernels := append(bench.Benchmarks(), bench.DotProduct())
	for _, b := range kernels {
		path := filepath.Join(dir, b.Entry+".c")
		if err := os.WriteFile(path, []byte(b.Src), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func table1() {
	fmt.Println("Table I: compute- and memory-intensive benchmarks")
	fmt.Printf("%-20s %-52s %8s %8s\n", "Program", "Description", "paperLoC", "ourLoC")
	desc := map[string]string{
		"Convolution":        "gradient directional edge convolution of a 500x500 image",
		"Image add":          "image addition of two 500x500 frames",
		"Image add (16-bit)": "16-bit variant of image addition",
		"Image xor":          "exclusive-or of two 500x500 frames",
		"Translate":          "translate a 500x500 image to a new position",
		"Eqntott":            "SPEC89 eqntott comparison kernel",
		"Mirror":             "mirror image of a 500x500 frame",
	}
	paperLoC := map[string]int{}
	for _, b := range bench.Benchmarks() {
		paperLoC[b.Name] = b.PaperLoC
	}
	for _, b := range bench.Benchmarks() {
		ours := len(strings.Split(strings.TrimSpace(b.Src), "\n"))
		fmt.Printf("%-20s %-52s %8d %8d\n", b.Name, desc[b.Name], paperLoC[b.Name], ours)
	}
	fmt.Println()
}

// machineTable prints one paper table. Rows whose kernel or configuration
// failed to compile (or validate) render as diagnostic lines — one bad loop
// no longer takes the whole table down.
func machineTable(title string, m *machine.Machine, wl bench.Workload, topts bench.TableOptions) {
	rows, err := bench.RunTableOpts(m, wl, topts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		return
	}
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "tables: %s: %v (row degraded)\n", r.Name, r.Err)
		}
	}
	fmt.Print(bench.FormatTable(title, rows))
	fmt.Println()
}

// table5 reports the run-time check cost. The columns come from the
// telemetry metrics registry each compile populates (the same counters
// cmd/macc -metrics reports), not from hand-rolled sums over loop reports.
func table5() {
	fmt.Println("Run-time check cost (paper §4: \"10 to 15 instructions ... in the loop preheader\")")
	fmt.Printf("%-20s %12s %12s %12s %12s\n", "Program", "checkInstrs", "aliasPairs", "alignChecks", "loops")
	for _, b := range bench.Benchmarks() {
		rec := telemetry.NewRecorder()
		cfg := macc.BaselineConfig(machine.Alpha())
		cfg.Coalesce = core.Options{Loads: true, Stores: true}
		cfg.Telemetry = rec
		_, err := macc.Compile(b.Src, cfg)
		if err != nil {
			fmt.Printf("%-20s FAILED: %v\n", b.Name, err)
			continue
		}
		reg := rec.Metrics()
		fmt.Printf("%-20s %12d %12d %12d %12d\n", b.Name,
			reg.CounterValue("coalesce.check_instrs"),
			reg.CounterValue("coalesce.alias_check_pairs"),
			reg.CounterValue("coalesce.alignment_checks"),
			reg.CounterValue("coalesce.loops_coalesced"))
	}
	fmt.Println()
}

func figure1() {
	fmt.Println("Figure 1: dot product (a) source, (b) rolled RTL, (c) unrolled + coalesced RTL")
	fmt.Println("---- (a) source ----")
	fmt.Println(strings.TrimSpace(bench.DotProductSrc))

	show := func(title string, cfg macc.Config) {
		p, err := macc.Compile(bench.DotProductSrc, cfg)
		if err != nil {
			fmt.Printf("---- %s ----\nFAILED: %v\n", title, err)
			return
		}
		f, _ := p.Fn("dotproduct")
		fmt.Printf("---- %s ----\n%s", title, f)
	}
	plain := macc.Config{Machine: machine.Alpha(), Optimize: true}
	show("(b) optimized rolled loop", plain)
	full := macc.DefaultConfig()
	full.Schedule = false // keep the listing readable, as the paper's is
	show("(c) unrolled with coalesced memory references", full)
	_ = rtl.W2
}
