// Command hotpath measures the compiler's four hot paths — the pass
// pipeline's per-pass snapshot, the bench harness's table measurement, the
// simulator core, and the warm-vs-cold compile cache — and writes the
// results as a machine-readable artifact (BENCH_hotpath.json). CI
// regenerates the artifact on every run and gates on -check against the
// committed baseline: a ratio metric that regresses by more than 25% fails
// the build.
//
//	hotpath -out BENCH_hotpath.json          regenerate the artifact
//	hotpath -out new.json -check BENCH_hotpath.json
//
// Only ratio metrics are gated (the journal-vs-clone snapshot speedup, the
// parallel-vs-serial table speedup, simulated MIPS, the warm-cache compile
// speedups, the codec decode-vs-reparse speedup, and the flat-vs-graph cold
// compile speedup); raw ns/op numbers are recorded for trend plots but never
// compared across hosts. Three metrics additionally have absolute floors: a
// warm memory-tier hit must be at least 5x faster than a cold compile,
// decoding a kernel's binary flat-IR image must be at least 5x faster than
// reparsing its printed text — the property that justifies the binary disk
// tier — and a flat-pipeline cold compile must be at least 1.5x faster than
// a graph-pipeline one (with lower allocs/op) — the property that justifies
// running the optimizer on the struct-of-arrays form — regardless of the
// baseline. Each artifact carries a provenance
// block (git commit, Go version, OS/arch, CPU count); when the baseline's
// host identity differs from the current host's, relative gates are
// skipped and only the absolute floors apply. The parallel-scaling gate requires
// at least four CPUs on both the current and the baseline host, since a
// single-core runner cannot demonstrate pool scaling; -check warns loudly
// when the committed baseline was produced on a single-CPU host, because
// that renders the scaling gate permanently vacuous.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/ccache"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
)

// Schema versions the artifact layout. v2 added the compile-cache
// section; v3 added the provenance block and host-aware gating; v4 split
// the cache section into warm-mem and warm-disk hits and added the binary
// codec encode/decode/reparse section; v5 added the cold_flat section
// (graph-pipeline vs flat-pipeline cold compiles) and allocs/op on every
// cold-compile row.
const Schema = "macc-hotpath/v5"

// SnapshotEntry is one kernel's per-pass snapshot cost: the old
// whole-function Clone vs the journal's clean Update, over all of the
// kernel's compiled functions.
type SnapshotEntry struct {
	Kernel         string  `json:"kernel"`
	CloneNsPerOp   float64 `json:"clone_ns_per_op"`
	JournalNsPerOp float64 `json:"journal_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

// RunTableEntry is the bench harness's wall time for the full small-workload
// table, serial vs a GOMAXPROCS-wide pool.
type RunTableEntry struct {
	SerialNsPerOp   float64 `json:"serial_ns_per_op"`
	ParallelNsPerOp float64 `json:"parallel_ns_per_op"`
	Jobs            int     `json:"jobs"`
	Speedup         float64 `json:"speedup"`
}

// SimEntry is the predecoded interpreter's raw rate on the dot-product
// kernel.
type SimEntry struct {
	NsPerRun      float64 `json:"ns_per_run"`
	InstrsPerRun  int64   `json:"instrs_per_run"`
	SimulatedMIPS float64 `json:"simulated_mips"`
}

// CacheEntry is one paper kernel's cold-vs-warm compile cost: a full
// front-end + pipeline compile vs a cache hit on the same source and
// configuration. The Cache section measures memory-tier hits (shared flat
// image, no decode); the WarmDisk section measures disk-tier hits (file
// read + checksum + binary decode + materialize) with the memory tier
// disabled.
type CacheEntry struct {
	Kernel          string  `json:"kernel"`
	ColdNsPerOp     float64 `json:"cold_ns_per_op"`
	ColdAllocsPerOp float64 `json:"cold_allocs_per_op"`
	WarmNsPerOp     float64 `json:"warm_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// ColdFlatEntry is one paper kernel's cold compile through the two pass
// pipelines: the pointer-graph pipeline forced via Config.GraphPipeline vs
// the default flat-native pipeline (flatten once, run the passes on the
// struct-of-arrays form, bridge the unported stages per function). Both
// compile the same source under the same optimizing configuration; the
// speedup is the ratio the flat port is expected to defend.
type ColdFlatEntry struct {
	Kernel           string  `json:"kernel"`
	GraphNsPerOp     float64 `json:"graph_ns_per_op"`
	GraphAllocsPerOp float64 `json:"graph_allocs_per_op"`
	FlatNsPerOp      float64 `json:"flat_ns_per_op"`
	FlatAllocsPerOp  float64 `json:"flat_allocs_per_op"`
	Speedup          float64 `json:"speedup"`
}

// CodecEntry is one paper kernel's flat-IR codec cost: encoding the flat
// image, decoding it back (checksum + structural validation), and — the
// baseline the binary disk tier replaced — reparsing the same program from
// printed RTL text.
type CodecEntry struct {
	Kernel         string  `json:"kernel"`
	EncodeNsPerOp  float64 `json:"encode_ns_per_op"`
	DecodeNsPerOp  float64 `json:"decode_ns_per_op"`
	ReparseNsPerOp float64 `json:"reparse_ns_per_op"`
	Bytes          int     `json:"bytes"`
	TextBytes      int     `json:"text_bytes"`
	DecodeSpeedup  float64 `json:"decode_speedup"`
}

// Artifact is the BENCH_hotpath.json layout.
type Artifact struct {
	Schema             string           `json:"schema"`
	Provenance         bench.Provenance `json:"provenance"`
	CPUs               int              `json:"cpus"`
	Snapshot           []SnapshotEntry  `json:"snapshot"`
	SnapshotSpeedup    float64          `json:"snapshot_speedup"`
	RunTable           RunTableEntry    `json:"runtable"`
	Sim                SimEntry         `json:"sim"`
	Cache              []CacheEntry     `json:"cache"`
	CacheSpeedup       float64          `json:"cache_speedup"`
	WarmDisk           []CacheEntry     `json:"warm_disk"`
	WarmDiskSpeedup    float64          `json:"warm_disk_speedup"`
	Codec              []CodecEntry     `json:"codec"`
	CodecDecodeSpeedup float64          `json:"codec_decode_speedup"`
	ColdFlat           []ColdFlatEntry  `json:"cold_flat"`
	ColdFlatSpeedup    float64          `json:"cold_flat_speedup"`
	ColdFlatAllocRatio float64          `json:"cold_flat_alloc_ratio"`
}

// cacheSpeedupFloor is the absolute acceptance floor: a warm memory-tier
// compile must beat a cold compile by at least this factor in aggregate.
const cacheSpeedupFloor = 5.0

// codecDecodeSpeedupFloor is the absolute acceptance floor for the binary
// disk tier's reason to exist: decoding a kernel's flat-IR image must beat
// reparsing its printed RTL text by at least this factor in aggregate.
const codecDecodeSpeedupFloor = 5.0

// coldFlatSpeedupFloor is the absolute acceptance floor for the flat pass
// pipeline's reason to exist: a cold compile through the flat-native
// pipeline must beat the graph pipeline by at least this factor in
// aggregate, and allocate less per op (ColdFlatAllocRatio > 1).
const coldFlatSpeedupFloor = 1.5

// parallelSpeedupFloor is the absolute acceptance floor for the parallel
// run-table benchmark when no multi-core baseline exists: on a host with
// >= 4 CPUs, running the table in parallel must beat serial by at least
// this factor regardless of what the baseline host could measure.
const parallelSpeedupFloor = 1.15

func main() {
	out := flag.String("out", "BENCH_hotpath.json", "write the artifact to this path (\"-\" for stdout)")
	checkPath := flag.String("check", "", "compare against this baseline artifact and fail on >25% ratio regression")
	flag.Parse()

	a, err := measure()
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		fatal(err)
	}

	if *checkPath != "" {
		base, err := readArtifact(*checkPath)
		if err != nil {
			fatal(err)
		}
		if err := check(a, base); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "hotpath: no regression vs", *checkPath)
	}
}

func measure() (Artifact, error) {
	a := Artifact{Schema: Schema, Provenance: bench.NewProvenance(Schema), CPUs: runtime.NumCPU()}
	m := machine.Alpha()

	fns, err := bench.KernelFns(m)
	if err != nil {
		return a, err
	}
	byKernel := make(map[string][]*rtl.Fn)
	var order []string
	for _, kf := range fns {
		if _, seen := byKernel[kf.Kernel]; !seen {
			order = append(order, kf.Kernel)
		}
		byKernel[kf.Kernel] = append(byKernel[kf.Kernel], kf.Fn)
	}
	var cloneTotal, journalTotal float64
	for _, kernel := range order {
		kfns := byKernel[kernel]
		clone := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, f := range kfns {
					_ = f.Clone()
				}
			}
		})
		snaps := make([]*rtl.Snapshot, len(kfns))
		for i, f := range kfns {
			snaps[i] = rtl.NewSnapshot(f)
		}
		journal := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, s := range snaps {
					if s.Update() != 0 {
						b.Fatal("clean function reported dirty blocks")
					}
				}
			}
		})
		e := SnapshotEntry{
			Kernel:         kernel,
			CloneNsPerOp:   nsPerOp(clone),
			JournalNsPerOp: nsPerOp(journal),
		}
		if e.JournalNsPerOp > 0 {
			e.Speedup = e.CloneNsPerOp / e.JournalNsPerOp
		}
		cloneTotal += e.CloneNsPerOp
		journalTotal += e.JournalNsPerOp
		a.Snapshot = append(a.Snapshot, e)
	}
	if journalTotal > 0 {
		a.SnapshotSpeedup = cloneTotal / journalTotal
	}

	wl := bench.SmallWorkload()
	runTable := func(jobs int) (float64, error) {
		var rerr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := bench.RunTableOpts(m, wl, bench.TableOptions{Jobs: jobs})
				if err != nil {
					rerr = err
					b.FailNow()
				}
				for _, row := range rows {
					if row.Err != nil {
						rerr = row.Err
						b.FailNow()
					}
				}
			}
		})
		return nsPerOp(r), rerr
	}
	serial, err := runTable(1)
	if err != nil {
		return a, err
	}
	jobs := runtime.GOMAXPROCS(0)
	parallel, err := runTable(jobs)
	if err != nil {
		return a, err
	}
	a.RunTable = RunTableEntry{SerialNsPerOp: serial, ParallelNsPerOp: parallel, Jobs: jobs}
	if parallel > 0 {
		a.RunTable.Speedup = serial / parallel
	}

	step, instrs, release, err := bench.SimStepper(m, wl)
	if err != nil {
		return a, err
	}
	defer release()
	var serr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				serr = err
				b.FailNow()
			}
		}
	})
	if serr != nil {
		return a, serr
	}
	a.Sim = SimEntry{NsPerRun: nsPerOp(r), InstrsPerRun: instrs}
	if ns := a.Sim.NsPerRun; ns > 0 {
		a.Sim.SimulatedMIPS = float64(instrs) / ns * 1e3 // instrs/ns -> MIPS
	}

	if err := measureCache(&a, m); err != nil {
		return a, err
	}
	if err := measureWarmDisk(&a, m); err != nil {
		return a, err
	}
	if err := measureCodec(&a, m); err != nil {
		return a, err
	}
	if err := measureColdFlat(&a, m); err != nil {
		return a, err
	}
	return a, nil
}

// benchCompile measures one cold compile configuration with allocation
// tracking.
func benchCompile(src string, cfg macc.Config) (testing.BenchmarkResult, error) {
	var cerr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := macc.Compile(src, cfg); err != nil {
				cerr = err
				b.FailNow()
			}
		}
	})
	return r, cerr
}

// measureColdFlat benchmarks a cold compile through the pointer-graph
// pipeline against one through the flat-native pipeline for every paper
// kernel under the default optimizing configuration.
func measureColdFlat(a *Artifact, m *machine.Machine) error {
	var graphNs, flatNs, graphAllocs, flatAllocs float64
	for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
		graphCfg := macc.DefaultConfig()
		graphCfg.Machine = m
		graphCfg.GraphPipeline = true
		graphR, err := benchCompile(bm.Src, graphCfg)
		if err != nil {
			return fmt.Errorf("%s: graph-pipeline compile: %v", bm.Name, err)
		}

		flatCfg := macc.DefaultConfig()
		flatCfg.Machine = m
		flatR, err := benchCompile(bm.Src, flatCfg)
		if err != nil {
			return fmt.Errorf("%s: flat-pipeline compile: %v", bm.Name, err)
		}

		e := ColdFlatEntry{
			Kernel:           bm.Entry,
			GraphNsPerOp:     nsPerOp(graphR),
			GraphAllocsPerOp: float64(graphR.AllocsPerOp()),
			FlatNsPerOp:      nsPerOp(flatR),
			FlatAllocsPerOp:  float64(flatR.AllocsPerOp()),
		}
		if e.FlatNsPerOp > 0 {
			e.Speedup = e.GraphNsPerOp / e.FlatNsPerOp
		}
		graphNs += e.GraphNsPerOp
		flatNs += e.FlatNsPerOp
		graphAllocs += e.GraphAllocsPerOp
		flatAllocs += e.FlatAllocsPerOp
		a.ColdFlat = append(a.ColdFlat, e)
	}
	if flatNs > 0 {
		a.ColdFlatSpeedup = graphNs / flatNs
	}
	if flatAllocs > 0 {
		a.ColdFlatAllocRatio = graphAllocs / flatAllocs
	}
	return nil
}

// measureCache benchmarks a cold compile against a warm memory-tier hit
// for every paper kernel under the default optimizing configuration.
func measureCache(a *Artifact, m *machine.Machine) error {
	var coldTotal, warmTotal float64
	for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
		cold := macc.DefaultConfig()
		cold.Machine = m
		coldR, cerr := benchCompile(bm.Src, cold)
		if cerr != nil {
			return fmt.Errorf("%s: cold compile: %v", bm.Name, cerr)
		}

		warm := cold
		warm.Cache = ccache.New(ccache.Options{})
		if _, err := macc.Compile(bm.Src, warm); err != nil {
			return fmt.Errorf("%s: cache warmup: %v", bm.Name, err)
		}
		var werr error
		warmR := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := macc.Compile(bm.Src, warm)
				if err != nil {
					werr = err
					b.FailNow()
				}
				if !p.Cached {
					werr = fmt.Errorf("warm compile missed the cache")
					b.FailNow()
				}
			}
		})
		if werr != nil {
			return fmt.Errorf("%s: warm compile: %v", bm.Name, werr)
		}

		e := CacheEntry{
			Kernel:          bm.Entry,
			ColdNsPerOp:     nsPerOp(coldR),
			ColdAllocsPerOp: float64(coldR.AllocsPerOp()),
			WarmNsPerOp:     nsPerOp(warmR),
		}
		if e.WarmNsPerOp > 0 {
			e.Speedup = e.ColdNsPerOp / e.WarmNsPerOp
		}
		coldTotal += e.ColdNsPerOp
		warmTotal += e.WarmNsPerOp
		a.Cache = append(a.Cache, e)
	}
	if warmTotal > 0 {
		a.CacheSpeedup = coldTotal / warmTotal
	}
	return nil
}

// measureWarmDisk benchmarks a cold compile against a disk-tier hit for
// every paper kernel: the memory tier is disabled (negative budget), so
// every warm compile pays the full file read, checksum verification, binary
// decode, and pointer-graph materialization.
func measureWarmDisk(a *Artifact, m *machine.Machine) error {
	var coldTotal, warmTotal float64
	for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
		dir, err := os.MkdirTemp("", "hotpath-disk-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)

		cfg := macc.DefaultConfig()
		cfg.Machine = m
		coldR, cerr := benchCompile(bm.Src, cfg)
		if cerr != nil {
			return fmt.Errorf("%s: cold compile: %v", bm.Name, cerr)
		}

		warm := cfg
		warm.Cache = ccache.New(ccache.Options{Dir: dir, MemBudget: -1})
		if _, err := macc.Compile(bm.Src, warm); err != nil {
			return fmt.Errorf("%s: disk warmup: %v", bm.Name, err)
		}
		var werr error
		warmR := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := macc.Compile(bm.Src, warm)
				if err != nil {
					werr = err
					b.FailNow()
				}
				if !p.Cached {
					werr = fmt.Errorf("warm compile missed the disk tier")
					b.FailNow()
				}
			}
		})
		if werr != nil {
			return fmt.Errorf("%s: warm disk compile: %v", bm.Name, werr)
		}

		e := CacheEntry{
			Kernel:          bm.Entry,
			ColdNsPerOp:     nsPerOp(coldR),
			ColdAllocsPerOp: float64(coldR.AllocsPerOp()),
			WarmNsPerOp:     nsPerOp(warmR),
		}
		if e.WarmNsPerOp > 0 {
			e.Speedup = e.ColdNsPerOp / e.WarmNsPerOp
		}
		coldTotal += e.ColdNsPerOp
		warmTotal += e.WarmNsPerOp
		a.WarmDisk = append(a.WarmDisk, e)
	}
	if warmTotal > 0 {
		a.WarmDiskSpeedup = coldTotal / warmTotal
	}
	return nil
}

// measureCodec benchmarks the flat-IR codec on every paper kernel's
// optimized program: encode, decode (checksum + structural validation), and
// the text-reparse baseline the binary disk tier replaced.
func measureCodec(a *Artifact, m *machine.Machine) error {
	var decodeTotal, reparseTotal float64
	for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
		cfg := macc.DefaultConfig()
		cfg.Machine = m
		p, err := macc.Compile(bm.Src, cfg)
		if err != nil {
			return fmt.Errorf("%s: compile: %v", bm.Name, err)
		}
		fp := p.Flat
		if fp == nil {
			if fp, err = rtl.Flatten(p.RTL); err != nil {
				return fmt.Errorf("%s: flatten: %v", bm.Name, err)
			}
		}
		enc := codec.EncodeProgram(fp)
		text := p.RTL.String()

		encR := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				codec.EncodeProgram(fp)
			}
		})
		var derr error
		decR := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := codec.DecodeProgram(enc); err != nil {
					derr = err
					b.FailNow()
				}
			}
		})
		if derr != nil {
			return fmt.Errorf("%s: decode: %v", bm.Name, derr)
		}
		var perr error
		parR := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rtl.ParseProgram(text); err != nil {
					perr = err
					b.FailNow()
				}
			}
		})
		if perr != nil {
			return fmt.Errorf("%s: reparse: %v", bm.Name, perr)
		}

		e := CodecEntry{
			Kernel:         bm.Entry,
			EncodeNsPerOp:  nsPerOp(encR),
			DecodeNsPerOp:  nsPerOp(decR),
			ReparseNsPerOp: nsPerOp(parR),
			Bytes:          len(enc),
			TextBytes:      len(text),
		}
		if e.DecodeNsPerOp > 0 {
			e.DecodeSpeedup = e.ReparseNsPerOp / e.DecodeNsPerOp
		}
		decodeTotal += e.DecodeNsPerOp
		reparseTotal += e.ReparseNsPerOp
		a.Codec = append(a.Codec, e)
	}
	if decodeTotal > 0 {
		a.CodecDecodeSpeedup = reparseTotal / decodeTotal
	}
	return nil
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N <= 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func readArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %v", path, err)
	}
	if a.Schema != Schema {
		return a, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, Schema)
	}
	return a, nil
}

// check fails when a gated ratio metric regressed by more than 25% against
// the baseline. Relative comparisons are only trusted when both artifacts
// carry the same host identity (the provenance block): timing ratios from
// a different machine, Go version, or CPU count are not a regression
// signal, so a host mismatch downgrades the check to absolute floors only.
func check(cur, base Artifact) error {
	sameHost := cur.Provenance.SameHost(base.Provenance)
	if !sameHost {
		fmt.Fprintf(os.Stderr,
			"hotpath: baseline host differs (%s vs %s): relative gates skipped, absolute floors still apply\n",
			base.Provenance.Host(), cur.Provenance.Host())
	}
	var failures []string
	gate := func(name string, curV, baseV float64) {
		if !sameHost {
			return
		}
		if baseV > 0 && curV < baseV*0.75 {
			failures = append(failures,
				fmt.Sprintf("%s regressed >25%%: %.2f vs baseline %.2f", name, curV, baseV))
		}
	}
	gate("snapshot journal-vs-clone speedup", cur.SnapshotSpeedup, base.SnapshotSpeedup)
	gate("simulated MIPS", cur.Sim.SimulatedMIPS, base.Sim.SimulatedMIPS)
	gate("warm-cache compile speedup", cur.CacheSpeedup, base.CacheSpeedup)
	gate("warm-disk compile speedup", cur.WarmDiskSpeedup, base.WarmDiskSpeedup)
	gate("codec decode-vs-reparse speedup", cur.CodecDecodeSpeedup, base.CodecDecodeSpeedup)
	gate("cold-compile flat-vs-graph speedup", cur.ColdFlatSpeedup, base.ColdFlatSpeedup)
	if cur.ColdFlatSpeedup < coldFlatSpeedupFloor {
		failures = append(failures, fmt.Sprintf(
			"cold-compile flat-vs-graph speedup %.2fx below the %.1fx floor",
			cur.ColdFlatSpeedup, coldFlatSpeedupFloor))
	}
	if cur.ColdFlatAllocRatio <= 1.0 {
		failures = append(failures, fmt.Sprintf(
			"flat pipeline allocates more than the graph pipeline (graph/flat allocs ratio %.2f, need > 1)",
			cur.ColdFlatAllocRatio))
	}
	if cur.CacheSpeedup < cacheSpeedupFloor {
		failures = append(failures, fmt.Sprintf(
			"warm-cache compile speedup %.2fx below the %.0fx floor", cur.CacheSpeedup, cacheSpeedupFloor))
	}
	if cur.CodecDecodeSpeedup < codecDecodeSpeedupFloor {
		failures = append(failures, fmt.Sprintf(
			"codec decode-vs-reparse speedup %.2fx below the %.0fx floor",
			cur.CodecDecodeSpeedup, codecDecodeSpeedupFloor))
	}
	// The parallel-scaling gate adapts to where the artifacts were
	// produced. A relative comparison only means something when both hosts
	// could actually scale; with a single-CPU or foreign-host baseline the
	// current run is instead held to an absolute floor, so the gate stays
	// meaningful without demanding the baseline be regenerated.
	switch {
	case sameHost && cur.CPUs >= 4 && base.CPUs >= 4:
		gate("runtable parallel speedup", cur.RunTable.Speedup, base.RunTable.Speedup)
	case cur.CPUs >= 4:
		if cur.RunTable.Speedup < parallelSpeedupFloor {
			failures = append(failures, fmt.Sprintf(
				"runtable parallel speedup %.2fx below the %.2fx absolute floor (%d CPUs, baseline measured on %d)",
				cur.RunTable.Speedup, parallelSpeedupFloor, cur.CPUs, base.CPUs))
		}
	default:
		fmt.Fprintf(os.Stderr,
			"hotpath: parallel-scaling gate skipped: current host has %d CPU(s), need >= 4\n",
			cur.CPUs)
	}
	if len(failures) > 0 {
		msg := "regression vs baseline:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hotpath:", err)
	os.Exit(1)
}
