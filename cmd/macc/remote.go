package main

// Remote mode: -server offloads the compile to a maccd farm through the
// resilient farm client (retries with backoff, hedged requests, per-peer
// circuit breakers). The local CLI keeps its output format, so scripts
// cannot tell a farm compile from a local one — except by its speed when
// the farm's shared cache is warm.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"macc/internal/farm"
	"macc/internal/telemetry/dtrace"
)

// remoteOpts carries the subset of CLI flags a farm compile supports.
type remoteOpts struct {
	servers   []string
	file      string
	machine   string
	coalesce  string
	unroll    string
	optimize  bool
	schedule  bool
	registers int
	priority  string
	printRTL  bool
	reports   bool
	run       string
	mem       int
	timeout   time.Duration
	traceID   bool
}

// runRemote executes one compile (or compile+run) against the farm and
// returns the process exit code.
func runRemote(o remoteOpts) int {
	src, err := os.ReadFile(o.file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "macc:", err)
		return 1
	}
	tracer := dtrace.New("macc-cli", 0)
	c := farm.NewClient(farm.ClientOptions{
		Peers:          o.servers,
		AttemptTimeout: o.timeout,
		Tracer:         tracer,
	})
	defer c.Close()

	req := farm.CompileRequest{
		Source:    string(src),
		Machine:   o.machine,
		Coalesce:  o.coalesce,
		Unroll:    o.unroll,
		Optimize:  &o.optimize,
		Schedule:  &o.schedule,
		Registers: o.registers,
		Priority:  o.priority,
	}
	// Root the request's distributed trace here so the farm's spans (and a
	// replica's /debug/trace view) include the CLI's side of the call.
	root := tracer.StartRoot("macc -server "+o.file, dtrace.KindRequest)
	ctx := dtrace.ContextWith(context.Background(), root.Context())
	finishTrace := func() {
		root.End()
		if o.traceID {
			c.ReportTrace(context.Background(), root.TraceID())
			fmt.Fprintf(os.Stderr, "macc: trace %s (inspect at <replica>%s%s)\n",
				root.TraceID(), farm.DebugTracePrefix, root.TraceID())
		}
	}

	if o.run != "" {
		var resp farm.RunResponse
		peer, err := c.PostJSON(ctx, "/run", farm.RunRequest{
			CompileRequest: req,
			Call:           o.run,
			Mem:            o.mem,
		}, &resp)
		finishTrace()
		if err != nil {
			return remoteFail(peer, err)
		}
		fmt.Printf("ret=%d cycles=%d instrs=%d loads=%d stores=%d memrefs=%d icache-misses=%d dcache-misses=%d\n",
			resp.Ret, resp.Cycles, resp.Instrs, resp.Loads, resp.Stores, resp.MemRefs,
			resp.ICacheMisses, resp.DCacheMisses)
		return 0
	}

	var resp farm.CompileResponse
	peer, err := c.PostJSON(ctx, "/compile", req, &resp)
	finishTrace()
	if err != nil {
		return remoteFail(peer, err)
	}
	if resp.Degraded {
		fmt.Fprint(os.Stderr, "macc: compilation completed in degraded mode:\n"+resp.Diagnostics)
	}
	if o.reports {
		for _, r := range resp.Reports {
			fmt.Printf("loop %-24s applied=%-5v %s (wide %dL/%dS, replaced %dL/%dS, sched %d->%d cycles, %d check instrs)\n",
				r.Header, r.Applied, r.Reason, r.WideLoads, r.WideStores,
				r.NarrowLoads, r.NarrowStores, r.CyclesOriginal, r.CyclesCoalesced, r.CheckInstrs)
		}
	}
	if o.printRTL {
		fmt.Print(resp.RTL)
	}
	return 0
}

func remoteFail(peer string, err error) int {
	var se *farm.StatusError
	switch {
	case errors.As(err, &se):
		fmt.Fprintf(os.Stderr, "macc: remote: %v\n", se)
	case errors.Is(err, farm.ErrNoPeers):
		fmt.Fprintln(os.Stderr, "macc: remote: no reachable server (all circuit breakers open); run without -server for a local compile")
	default:
		fmt.Fprintf(os.Stderr, "macc: remote: %v\n", err)
	}
	return 1
}
