// Command macc is the compiler driver: it compiles a mini-C translation
// unit for one of the paper's three machine models, optionally dumps the
// RTL after each pipeline stage or the control-flow graph as Graphviz DOT
// (the Figure 5 flow graph), and can run a function on the simulator and
// report cycles and memory references.
//
// Examples:
//
//	macc -print prog.c
//	macc -machine m88100 -coalesce loads -dump prog.c
//	macc -dot f prog.c | dot -Tpng > cfg.png
//	macc -run 'dotproduct(4096,8192,100)' -mem 65536 prog.c
//
// The pipeline is hardened: by default a pass that panics or emits RTL the
// verifier rejects is rolled back and compilation continues in degraded
// mode (reported on stderr); -strict restores fail-fast behaviour. -bisect
// binary-searches the pass list for the first pass that breaks the -run
// call, and -inject deliberately sabotages a pass to exercise both.
//
//	macc -strict prog.c
//	macc -inject 'unroll:panic' -run 'dotproduct(4096,8192,100)' prog.c
//	macc -inject 'coalesce:flip-op:3' -bisect -run 'dotproduct(4096,8192,100)' prog.c
//
// The observability layer explains every optimization decision: -remarks
// prints the coalescer/unroller/IV-analysis optimization remarks (one
// Passed or Missed per examined loop, with a machine-readable reason;
// -remarks=json for JSONL), -trace writes the per-pass spans as Chrome
// trace_event JSON loadable in about://tracing, -metrics dumps the metrics
// registry — which, combined with -run, holds the static coalescing
// counters and the measured memory traffic side by side — and -profile n
// prints the n hottest basic blocks of the simulated run.
//
//	macc -remarks prog.c
//	macc -remarks=json -trace trace.json -metrics metrics.json -run 'f(4096,100)' prog.c
//	macc -profile 10 -run 'f(4096,100)' prog.c
//
// Several input files compile in parallel on a bounded worker pool (-j,
// default GOMAXPROCS); each file's output is buffered and printed in input
// order, so the result is identical to compiling them one at a time.
// Single-file-only flags (-run, -dot, -dump, -trace, -metrics, -bisect,
// -profile, -inject) are rejected in this mode.
//
//	macc -j 8 -print kernels/*.c
//
// Compiles are memoized through the content-addressed compile cache:
// -cache-dir enables the on-disk tier (hits survive across invocations and
// are revalidated by reparse, so a corrupt entry silently recompiles), and
// -cache-mem sizes the in-memory tier. In multi-file mode the cache is
// shared across the worker pool with singleflight deduplication, so
// duplicate inputs on the command line compile exactly once — unless
// -remarks is on without -cache-dir, since a cache hit skips the pass
// pipeline and would swallow the per-file remark stream. Cache counters
// (ccache.mem_hits, ccache.disk_hits, ...) are folded into the -metrics
// output.
//
//	macc -cache-dir ~/.cache/macc -print prog.c   # second run hits
//	macc -j 8 -cache-dir /tmp/mc -print a.c a.c   # a.c compiles once
//
// Compiled programs round-trip through the binary flat-IR codec (the same
// format the disk cache stores): -emit=bin writes the encoded program to -o,
// and -in=bin loads such a file directly — checksum-verified, no pipeline
// rerun — so -print and -run work on the decoded image:
//
//	macc -emit=bin -o prog.bin prog.c
//	macc -in=bin -print prog.bin        # byte-identical to macc -print prog.c
//	macc -in=bin -run 'f(4096,100)' prog.bin
//
// -in=bin -reopt re-runs the optimization pipeline over the decoded image.
// The passes execute natively on the flat form (stages not yet ported bridge
// one function at a time), so the image is never materialized back to the
// pointer graph as a whole:
//
//	macc -in=bin -reopt -print prog.bin
//
// With -server the compile runs on a maccd farm instead of locally, through
// the resilient farm client (retries, hedged requests, circuit breakers);
// -priority batch marks the request sheddable under saturation:
//
//	macc -server http://farm0:8080,http://farm1:8080 -print prog.c
//	macc -server http://farm0:8080 -priority batch -run 'f(4096,100)' prog.c
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"macc"
	"macc/internal/ccache"
	"macc/internal/core"
	"macc/internal/faultinject"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/sim"
	"macc/internal/telemetry"
)

// remarksFlag implements -remarks[=json|text]: a bool-style flag whose bare
// form means text output.
type remarksFlag struct{ mode string }

func (r *remarksFlag) String() string { return r.mode }

func (r *remarksFlag) Set(s string) error {
	switch s {
	case "true", "text":
		r.mode = "text"
	case "false", "off", "":
		r.mode = ""
	case "json":
		r.mode = "json"
	default:
		return fmt.Errorf("bad -remarks mode %q (want text or json)", s)
	}
	return nil
}

func (r *remarksFlag) IsBoolFlag() bool { return true }

func main() {
	machName := flag.String("machine", "alpha", "target machine: alpha, m88100, m68030")
	coalesce := flag.String("coalesce", "both", "coalescing mode: both, loads, stores, off")
	unrollFlag := flag.String("unroll", "auto", "unroll factor: auto, off, or a number")
	schedule := flag.Bool("schedule", true, "run the list scheduler")
	optimize := flag.Bool("O", true, "run the clean-up optimizations")
	force := flag.Bool("force", false, "apply coalescing even when predicted unprofitable")
	static := flag.Bool("static-only", false, "disable run-time checks (compile-time provable cases only)")
	dump := flag.Bool("dump", false, "dump RTL after every pipeline stage")
	printRTL := flag.Bool("print", false, "print the final RTL")
	dotFn := flag.String("dot", "", "print the DOT control-flow graph of the named function")
	run := flag.String("run", "", "run 'fn(arg,arg,...)' on the simulator")
	mem := flag.Int("mem", 1<<20, "simulator memory size in bytes")
	reports := flag.Bool("reports", false, "print the coalescer's per-loop reports")
	regs := flag.Int("regs", 0, "register file size for the allocator (0 = virtual registers)")
	profile := flag.Int("profile", 0, "with -run: print the n hottest basic blocks")
	var remarks remarksFlag
	flag.Var(&remarks, "remarks", "print optimization remarks (-remarks=json for JSONL)")
	traceOut := flag.String("trace", "", "write per-pass spans as Chrome trace_event JSON to this file")
	metricsOut := flag.String("metrics", "", "write the metrics registry as JSON to this file ('-' for stdout)")
	strict := flag.Bool("strict", false, "fail fast on the first pass failure instead of degrading")
	inject := flag.String("inject", "", "sabotage a pass: 'pass:kind[:seed]' (kinds: panic, clobber-reg, drop-terminator, retarget-branch, flip-op)")
	bisect := flag.Bool("bisect", false, "with -run: binary-search the pass list for the first pass that breaks the call")
	emit := flag.String("emit", "", "emit the compiled program in this format: bin (binary flat-IR codec)")
	output := flag.String("o", "", "with -emit: output path ('-' or empty for stdout)")
	inFmt := flag.String("in", "", "input format: bin (a binary flat-IR codec file, skips the pipeline)")
	reopt := flag.Bool("reopt", false, "with -in=bin: re-run the optimization pipeline over the decoded image on the flat form")
	jobs := flag.Int("j", 0, "with multiple input files: compile them on this many workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "enable the on-disk compile cache tier rooted at this directory")
	cacheMem := flag.Int64("cache-mem", ccache.DefaultMemBudget, "in-memory compile cache budget in bytes")
	server := flag.String("server", "", "comma-separated maccd base URLs: compile remotely on the farm instead of locally")
	priority := flag.String("priority", "", "with -server: admission tier, interactive (default) or batch")
	remoteTimeout := flag.Duration("server-timeout", 30*time.Second, "with -server: per-attempt request timeout")
	remoteTraceID := flag.Bool("trace-id", false, "with -server: print the request's distributed trace ID on stderr (inspect it at <replica>/debug/trace/<id>)")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: macc [flags] file.c|file.rtl|file.bin ...")
		flag.Usage()
		os.Exit(2)
	}
	switch *emit {
	case "", "bin":
	default:
		fatal(fmt.Errorf("unknown -emit format %q (want bin)", *emit))
	}
	switch *inFmt {
	case "", "bin":
	default:
		fatal(fmt.Errorf("unknown -in format %q (want bin)", *inFmt))
	}
	if *reopt && *inFmt != "bin" {
		fatal(errors.New("-reopt requires -in=bin"))
	}

	if *server != "" {
		if flag.NArg() > 1 {
			fatal(errors.New("-server compiles a single input file"))
		}
		if *emit != "" || *inFmt != "" {
			fatal(errors.New("-emit and -in are local-compile flags"))
		}
		if *dump || *dotFn != "" || *traceOut != "" || *metricsOut != "" || *bisect ||
			*profile > 0 || *inject != "" || remarks.mode != "" || *cacheDir != "" ||
			*force || *static || *strict {
			fatal(errors.New("-server supports only -machine, -coalesce, -unroll, -O, -schedule, -regs, -print, -reports, -run, -mem, and -priority"))
		}
		var servers []string
		for _, s := range strings.Split(*server, ",") {
			if s = strings.TrimSpace(s); s != "" {
				servers = append(servers, s)
			}
		}
		os.Exit(runRemote(remoteOpts{
			servers:   servers,
			file:      flag.Arg(0),
			machine:   *machName,
			coalesce:  *coalesce,
			unroll:    *unrollFlag,
			optimize:  *optimize,
			schedule:  *schedule,
			registers: *regs,
			priority:  *priority,
			printRTL:  *printRTL,
			reports:   *reports,
			run:       *run,
			mem:       *mem,
			timeout:   *remoteTimeout,
			traceID:   *remoteTraceID,
		}))
	}

	m, ok := machine.ByName(*machName)
	if !ok {
		fatal(fmt.Errorf("unknown machine %q", *machName))
	}
	cfg := macc.Config{Machine: m, Optimize: *optimize, Schedule: *schedule}
	switch *coalesce {
	case "both":
		cfg.Coalesce = core.Options{Loads: true, Stores: true}
	case "loads":
		cfg.Coalesce = core.Options{Loads: true}
	case "stores":
		cfg.Coalesce = core.Options{Stores: true}
	case "off":
	default:
		fatal(fmt.Errorf("unknown -coalesce mode %q", *coalesce))
	}
	cfg.Coalesce.Force = *force
	cfg.Coalesce.NoRuntimeChecks = *static
	switch *unrollFlag {
	case "auto":
		cfg.Unroll = true
	case "off":
	default:
		n, err := strconv.Atoi(*unrollFlag)
		if err != nil || n < 2 {
			fatal(fmt.Errorf("bad -unroll %q", *unrollFlag))
		}
		cfg.Unroll = true
		cfg.UnrollFactor = n
	}
	cfg.Registers = *regs
	cfg.Strict = *strict
	if *dump {
		cfg.DumpStage = func(stage string, f *rtl.Fn) {
			fmt.Printf("=== %s: %s ===\n%s\n", f.Name, stage, f)
		}
	}
	if *inject != "" {
		inj, ierr := parseInject(*inject)
		if ierr != nil {
			fatal(ierr)
		}
		cfg.WrapPass = inj.Hook()
	}
	if flag.NArg() > 1 {
		if *run != "" || *dotFn != "" || *dump || *traceOut != "" || *metricsOut != "" || *bisect || *profile > 0 || *inject != "" || *emit != "" || *inFmt != "" {
			fatal(fmt.Errorf("-run, -dot, -dump, -trace, -metrics, -bisect, -profile, -inject, -emit, and -in require a single input file"))
		}
		// The pool shares one cache so duplicate inputs compile once
		// (singleflight). Without -cache-dir a remarks run opts out:
		// hits skip the pipeline and would swallow per-file remarks.
		if *cacheDir != "" || remarks.mode == "" {
			cfg.Cache = ccache.New(ccache.Options{MemBudget: *cacheMem, Dir: *cacheDir})
		}
		os.Exit(compileMany(flag.Args(), cfg, *jobs, remarks.mode, *reports, *printRTL))
	}

	var cache *ccache.Cache
	if *cacheDir != "" {
		cache = ccache.New(ccache.Options{MemBudget: *cacheMem, Dir: *cacheDir})
		cfg.Cache = cache
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	isRTL := strings.HasSuffix(flag.Arg(0), ".rtl")

	var rec *telemetry.Recorder
	if remarks.mode != "" || *traceOut != "" || *metricsOut != "" {
		rec = telemetry.NewRecorder()
		cfg.Telemetry = rec
	}

	if *bisect {
		if *inFmt == "bin" {
			fatal(errors.New("-bisect needs a source input, not -in=bin"))
		}
		if err := runBisect(string(src), isRTL, cfg, *run, *mem); err != nil {
			fatal(err)
		}
		return
	}

	var prog *macc.Program
	if *inFmt == "bin" {
		// A binary flat-IR file is an already-compiled program: decode it
		// (checksum + structural validation) and load it directly — no
		// pipeline run unless -reopt asks for one, in which case the passes
		// execute on the flat image itself.
		fp, derr := codec.DecodeProgram(src)
		if derr != nil {
			fatal(derr)
		}
		if *reopt {
			prog, err = macc.OptimizeFlat(fp, cfg)
		} else {
			prog, err = macc.FromFlat(fp, m)
		}
	} else if isRTL {
		rp, perr := rtl.ParseProgram(string(src))
		if perr != nil {
			fatal(perr)
		}
		prog, err = macc.CompileRTL(rp, cfg)
	} else {
		prog, err = macc.Compile(string(src), cfg)
	}
	if err != nil {
		fatal(err)
	}
	if prog.Diagnostics.Degraded() {
		fmt.Fprint(os.Stderr, "macc: compilation completed in degraded mode:\n"+prog.Diagnostics.String())
	}

	if *emit == "bin" {
		flat := prog.Flat
		if flat == nil {
			if flat, err = rtl.Flatten(prog.RTL); err != nil {
				fatal(err)
			}
		}
		data := codec.EncodeProgram(flat)
		if *output == "" || *output == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				fatal(err)
			}
		} else if err := os.WriteFile(*output, data, 0o666); err != nil {
			fatal(err)
		}
	}

	if *reports {
		for _, r := range prog.Reports {
			fmt.Printf("loop %-24s applied=%-5v %s (wide %dL/%dS, replaced %dL/%dS, sched %d->%d cycles, %d check instrs)\n",
				r.Header, r.Applied, r.Reason, r.WideLoads, r.WideStores,
				r.NarrowLoads, r.NarrowStores, r.CyclesOriginal, r.CyclesCoalesced, r.CheckInstrs)
		}
	}
	if remarks.mode != "" {
		fmt.Print(telemetry.FormatRemarks(rec.Remarks(), remarks.mode))
	}
	if *printRTL {
		for _, f := range prog.RTL.Fns {
			fmt.Print(f)
		}
	}
	if *dotFn != "" {
		f, ok := prog.Fn(*dotFn)
		if !ok {
			fatal(fmt.Errorf("no function %q", *dotFn))
		}
		fmt.Print(f.Dot())
	}
	if *run != "" {
		name, args, err := parseCall(*run)
		if err != nil {
			fatal(err)
		}
		s := prog.NewSim(*mem)
		if *profile > 0 {
			s.EnableProfile()
		}
		if rec != nil {
			s.AttachMetrics(rec.Metrics())
		}
		res, err := s.Run(name, args...)
		if err != nil {
			fatal(err)
		}
		if *profile > 0 {
			fmt.Print(sim.FormatProfile(s.Profile(), *profile))
		}
		fmt.Printf("ret=%d cycles=%d instrs=%d loads=%d stores=%d memrefs=%d icache-misses=%d dcache-misses=%d\n",
			res.Ret, res.Cycles, res.Instrs, res.Loads, res.Stores, res.MemRefs(),
			res.ICacheMisses, res.DCacheMisses)
	}
	if *traceOut != "" {
		fw, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(fw); err != nil {
			fatal(err)
		}
		if err := fw.Close(); err != nil {
			fatal(err)
		}
	}
	if cache != nil && rec != nil {
		// Surface the compile cache's hit/miss/store counters alongside
		// the compile's own metrics.
		rec.Metrics().Merge(cache.Metrics())
	}
	if *metricsOut != "" {
		w := os.Stdout
		if *metricsOut != "-" {
			fw, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			defer fw.Close()
			w = fw
		}
		// Same envelope as maccd's /metrics and loadgen's artifact embed:
		// schema macc-metrics/v1 plus a service name.
		if err := rec.Metrics().WriteServiceJSON(w, "macc"); err != nil {
			fatal(err)
		}
	}
}

// fileResult is one input file's buffered output in multi-file mode.
type fileResult struct {
	out    string // stdout section (header, remarks, reports, RTL)
	errs   string // stderr section (errors, degraded-mode diagnostics)
	failed bool
}

// compileMany compiles every input file on a bounded worker pool, buffering
// each file's output so the final print is in input order regardless of
// which worker finished first. Returns the process exit code.
func compileMany(files []string, cfg macc.Config, jobs int, remarksMode string, reports, printRTL bool) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(files) {
		jobs = len(files)
	}
	results := make([]fileResult, len(files))
	idxc := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxc {
				results[i] = compileOne(files[i], cfg, remarksMode, reports, printRTL)
			}
		}()
	}
	for i := range files {
		idxc <- i
	}
	close(idxc)
	wg.Wait()

	exit := 0
	for _, r := range results {
		fmt.Print(r.out)
		fmt.Fprint(os.Stderr, r.errs)
		if r.failed {
			exit = 1
		}
	}
	return exit
}

// compileOne compiles a single file into a buffered result. Each compile
// gets its own telemetry recorder; a failed file does not stop the others.
func compileOne(path string, cfg macc.Config, remarksMode string, reports, printRTL bool) fileResult {
	var out, errs strings.Builder
	fmt.Fprintf(&out, "==> %s <==\n", path)
	fail := func(err error) fileResult {
		fmt.Fprintf(&errs, "macc: %s: %v\n", path, err)
		return fileResult{out: out.String(), errs: errs.String(), failed: true}
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	var rec *telemetry.Recorder
	if remarksMode != "" {
		rec = telemetry.NewRecorder()
		cfg.Telemetry = rec
	}
	var prog *macc.Program
	if strings.HasSuffix(path, ".rtl") {
		rp, perr := rtl.ParseProgram(string(src))
		if perr != nil {
			return fail(perr)
		}
		prog, err = macc.CompileRTL(rp, cfg)
	} else {
		prog, err = macc.Compile(string(src), cfg)
	}
	if err != nil {
		return fail(err)
	}
	if prog.Diagnostics.Degraded() {
		fmt.Fprintf(&errs, "macc: %s: compilation completed in degraded mode:\n%s", path, prog.Diagnostics.String())
	}
	if reports {
		for _, r := range prog.Reports {
			fmt.Fprintf(&out, "loop %-24s applied=%-5v %s (wide %dL/%dS, replaced %dL/%dS, sched %d->%d cycles, %d check instrs)\n",
				r.Header, r.Applied, r.Reason, r.WideLoads, r.WideStores,
				r.NarrowLoads, r.NarrowStores, r.CyclesOriginal, r.CyclesCoalesced, r.CheckInstrs)
		}
	}
	if remarksMode != "" {
		out.WriteString(telemetry.FormatRemarks(rec.Remarks(), remarksMode))
	}
	if printRTL {
		for _, f := range prog.RTL.Fns {
			fmt.Fprint(&out, f)
		}
	}
	return fileResult{out: out.String(), errs: errs.String()}
}

// parseInject parses the -inject spec "pass:kind[:seed]".
func parseInject(spec string) (*faultinject.Injector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("bad -inject %q, want pass:kind[:seed]", spec)
	}
	kind, err := faultinject.ParseKind(parts[1])
	if err != nil {
		return nil, err
	}
	inj := &faultinject.Injector{Pass: parts[0], Kind: kind}
	if len(parts) == 3 {
		seed, err := strconv.ParseInt(parts[2], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -inject seed %q: %v", parts[2], err)
		}
		inj.Seed = seed
	}
	return inj, nil
}

// runBisect identifies the first pipeline pass that breaks the -run call:
// it rebuilds the unoptimized RTL, fingerprints its simulator behaviour,
// and binary-searches pass prefixes for the first behavioural divergence,
// verifier rejection, or pass panic.
func runBisect(src string, isRTL bool, cfg macc.Config, run string, mem int) error {
	if run == "" {
		return errors.New("-bisect requires -run 'fn(arg,...)'")
	}
	name, args, err := parseCall(run)
	if err != nil {
		return err
	}
	var rp *rtl.Program
	if isRTL {
		if rp, err = rtl.ParseProgram(src); err != nil {
			return err
		}
	} else {
		plain := cfg
		plain.Optimize = false
		plain.WrapPass = nil
		prog, cerr := macc.Compile(src, plain)
		if cerr != nil {
			return cerr
		}
		rp = prog.RTL
	}
	bad, err := macc.DifferentialPredicate(rp, name, cfg, mem, [][]int64{args})
	if err != nil {
		return err
	}
	res, err := macc.Bisect(rp, name, cfg, bad)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

// parseCall parses "fn(1,2,3)" into a name and integer arguments.
func parseCall(s string) (string, []int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("bad -run %q, want fn(arg,...)", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("bad -run %q: missing function name", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var args []int64
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad argument %q: %v", part, err)
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "macc:", err)
	os.Exit(1)
}
