package main

import (
	"os"
	"testing"

	"macc"
	"macc/internal/ccache"
)

func TestParseCall(t *testing.T) {
	name, args, err := parseCall("dotproduct(4096, 8192, 100)")
	if err != nil {
		t.Fatal(err)
	}
	if name != "dotproduct" || len(args) != 3 || args[0] != 4096 || args[2] != 100 {
		t.Errorf("parsed %q %v", name, args)
	}
	if _, args, err := parseCall("f()"); err != nil || len(args) != 0 {
		t.Errorf("empty call: %v %v", args, err)
	}
	if _, args, err := parseCall("f(0x10, -3)"); err != nil || args[0] != 16 || args[1] != -3 {
		t.Errorf("hex/negative args: %v %v", args, err)
	}
	for _, bad := range []string{"f", "f(1", "f(x)", "(1)"} {
		if _, _, err := parseCall(bad); err == nil {
			t.Errorf("parseCall(%q) should fail", bad)
		}
	}
}

// TestSharedCacheDedupAcrossFiles pins the -j satellite: duplicate inputs
// routed through the shared cache compile once and print identically.
func TestSharedCacheDedupAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/k.c"
	src := `
int sum(short *a, int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++)
		s += a[i];
	return s;
}
`
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := macc.DefaultConfig()
	cache := ccache.New(ccache.Options{})
	cfg.Cache = cache

	first := compileOne(path, cfg, "", false, true)
	second := compileOne(path, cfg, "", false, true)
	if first.failed || second.failed {
		t.Fatalf("compile failed:\n%s\n%s", first.errs, second.errs)
	}
	if first.out != second.out {
		t.Fatalf("cached compile printed differently:\n%s\nvs\n%s", first.out, second.out)
	}
	reg := cache.Metrics()
	if reg.CounterValue("ccache.stores") != 1 {
		t.Fatalf("stores = %d, want 1 (duplicate input recompiled)", reg.CounterValue("ccache.stores"))
	}
	if reg.CounterValue("ccache.mem_hits") != 1 {
		t.Fatalf("mem_hits = %d, want 1", reg.CounterValue("ccache.mem_hits"))
	}
}
