package main

import "testing"

func TestParseCall(t *testing.T) {
	name, args, err := parseCall("dotproduct(4096, 8192, 100)")
	if err != nil {
		t.Fatal(err)
	}
	if name != "dotproduct" || len(args) != 3 || args[0] != 4096 || args[2] != 100 {
		t.Errorf("parsed %q %v", name, args)
	}
	if _, args, err := parseCall("f()"); err != nil || len(args) != 0 {
		t.Errorf("empty call: %v %v", args, err)
	}
	if _, args, err := parseCall("f(0x10, -3)"); err != nil || args[0] != 16 || args[1] != -3 {
		t.Errorf("hex/negative args: %v %v", args, err)
	}
	for _, bad := range []string{"f", "f(1", "f(x)", "(1)"} {
		if _, _, err := parseCall(bad); err == nil {
			t.Errorf("parseCall(%q) should fail", bad)
		}
	}
}
