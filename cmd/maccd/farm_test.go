package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"macc"
	"macc/internal/core"
	"macc/internal/faultinject"
	"macc/internal/machine"
)

// TestDrainShedsNewWorkKeepsMetrics: after StartDrain the service refuses
// new compiles and fails its health check (so peers route around it) but
// still serves /metrics for the final flush.
func TestDrainShedsNewWorkKeepsMetrics(t *testing.T) {
	srv := NewServer(ServerOptions{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if code, _ := post[CompileResponse](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc}); code != http.StatusOK {
		t.Fatalf("pre-drain compile: status %d", code)
	}
	srv.StartDrain()

	code, _ := post[map[string]string](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusServiceUnavailable {
		t.Errorf("compile while draining: status %d, want 503", code)
	}
	if srv.Metrics().CounterValue("maccd.shed_draining") != 1 {
		t.Error("shed_draining not counted")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics while draining: status %d, want 200", resp.StatusCode)
	}
}

// TestBatchPriorityShedsFirst: with the batch queue slots exhausted, a
// batch request is shed immediately (no deadline wait) while an
// interactive request still gets a worker.
func TestBatchPriorityShedsFirst(t *testing.T) {
	srv := NewServer(ServerOptions{Workers: 2, BatchSlots: 1, Timeout: 5 * time.Second})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Occupy the only batch slot.
	srv.batchSem <- struct{}{}

	start := time.Now()
	req := CompileRequest{Source: addOneSrc}
	req.Priority = "batch"
	code, out := post[map[string]string](t, ts.URL+"/compile", req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("batch beyond slots: status %d (%v), want 503", code, out)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("batch shed took %v, want immediate (no deadline wait)", elapsed)
	}
	if srv.Metrics().CounterValue("maccd.shed_batch") != 1 {
		t.Error("shed_batch not counted")
	}

	// Interactive traffic is unaffected by the full batch queue.
	if code, _ := post[CompileResponse](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc}); code != http.StatusOK {
		t.Errorf("interactive during batch saturation: status %d", code)
	}
	<-srv.batchSem

	// A batch request is admitted normally when slots are free.
	code, cr := post[CompileResponse](t, ts.URL+"/compile", req)
	if code != http.StatusOK || cr.RTL == "" {
		t.Errorf("batch with free slots: status %d", code)
	}

	// An unknown priority is a client error, not a tier.
	bad := CompileRequest{Source: addOneSrc, Priority: "urgent"}
	if code, _ := post[map[string]string](t, ts.URL+"/compile", bad); code != http.StatusBadRequest {
		t.Errorf("unknown priority: status %d, want 400", code)
	}
}

// swapHandler lets a test allocate listener URLs before the servers that
// need to know them exist.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// referenceRTL compiles src locally with the service's default config and
// no cache: the ground truth every farm answer must match byte for byte.
func referenceRTL(t *testing.T, src string) string {
	t.Helper()
	m, _ := machine.ByName("alpha")
	prog, err := macc.Compile(src, macc.Config{
		Machine:  m,
		Optimize: true,
		Schedule: true,
		Unroll:   true,
		Coalesce: core.Options{Loads: true, Stores: true},
	})
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	return prog.RTL.String()
}

// TestFarmPeerCacheHit: replica B, peered with replica A that has already
// compiled the source, must answer from A's cache — reported as cached,
// byte-identical, and counted as a peer hit.
func TestFarmPeerCacheHit(t *testing.T) {
	a := NewServer(ServerOptions{CacheDir: t.TempDir()})
	t.Cleanup(a.Close)
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(tsA.Close)

	code, cold := post[CompileResponse](t, tsA.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK || cold.Cached {
		t.Fatalf("replica A cold compile: status %d cached %v", code, cold.Cached)
	}

	b := NewServer(ServerOptions{CacheDir: t.TempDir(), Peers: []string{tsA.URL}})
	t.Cleanup(b.Close)
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(tsB.Close)

	code, warm := post[CompileResponse](t, tsB.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("replica B compile: status %d", code)
	}
	if !warm.Cached {
		t.Error("peer-cache answer not reported as cached")
	}
	if warm.RTL != cold.RTL {
		t.Errorf("peer answer differs from the original compile:\n%s\nvs\n%s", warm.RTL, cold.RTL)
	}
	if got := b.Metrics().CounterValue("ccache.peer_hits"); got != 1 {
		t.Errorf("ccache.peer_hits = %d, want 1", got)
	}
	if got := referenceRTL(t, addOneSrc); warm.RTL != got {
		t.Errorf("peer answer differs from a local uncached compile")
	}
}

// TestFarmChaosDifferential is the in-process chaos harness: a 3-replica
// farm whose peer endpoints drop, delay, and corrupt responses and whose
// disk writes fail and crash (all at a fixed seed), with one replica killed
// midway. Every 200 answer must still be byte-identical to a local
// uncached compile — chaos may cost latency and hit ratio, never
// correctness.
func TestFarmChaosDifferential(t *testing.T) {
	const replicas = 3
	chaos := faultinject.ServiceSpec{
		Drop: 0.2, Delay: 0.2, Corrupt: 0.3, MaxDelay: 3 * time.Millisecond,
		DiskFull: 0.1, CrashWrite: 0.1,
	}

	swaps := make([]*swapHandler, replicas)
	urls := make([]string, replicas)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	servers := make([]*Server, replicas)
	for i := range servers {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		spec := chaos
		spec.Seed = int64(100 + i)
		servers[i] = NewServer(ServerOptions{
			CacheDir: t.TempDir(),
			Peers:    peers,
			Chaos:    spec,
		})
		t.Cleanup(servers[i].Close)
		swaps[i].set(servers[i].Handler())
	}

	sources := make([]string, 6)
	refs := make([]string, len(sources))
	for i := range sources {
		sources[i] = fmt.Sprintf("int kernel%d(int *a, int n) { int s; int i; s = %d; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }", i, i)
		refs[i] = referenceRTL(t, sources[i])
	}

	completed, killed := 0, false
	for round := 0; round < 3; round++ {
		for si, src := range sources {
			for rep := 0; rep < replicas; rep++ {
				if killed && rep == replicas-1 {
					continue // the dead replica gets no traffic
				}
				code, resp := post[CompileResponse](t, urls[rep]+"/compile", CompileRequest{Source: src})
				if code != http.StatusOK {
					// Shed or degraded is acceptable; wrong answers are not.
					continue
				}
				if resp.RTL != refs[si] {
					t.Fatalf("MISCOMPILE: replica %d round %d source %d returned RTL differing from the local reference", rep, round, si)
				}
				completed++
			}
		}
		if round == 0 {
			// Kill the last replica mid-run: its peers must degrade to
			// local compiles, not errors.
			killed = true
			swaps[replicas-1].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				conn, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					conn.Close() // mid-request connection tear-down
				}
			}))
		}
	}
	if completed == 0 {
		t.Fatal("chaos shed every single request; no differential coverage")
	}

	var peerHits, recoveredTorn int64
	for i, s := range servers {
		peerHits += s.Metrics().CounterValue("ccache.peer_hits")
		recoveredTorn += s.Metrics().CounterValue("ccache.recovered_torn")
		if i < replicas-1 {
			// Survivors must still be healthy.
			resp, err := http.Get(urls[i] + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("replica %d unhealthy after chaos: %v", i, err)
			}
			if resp != nil {
				resp.Body.Close()
			}
		}
	}
	if peerHits == 0 {
		t.Error("no verified peer hit survived the chaos (seed too hostile or peering broken)")
	}
	t.Logf("chaos differential: %d completed compiles, %d verified peer hits", completed, peerHits)

	// Crash-injected disk writes must be recoverable: reopening a cache
	// over each replica's directory collects torn temp files.
	for i, s := range servers {
		dropped, delayed, corrupted, diskFulls, crashes := 0, 0, 0, 0, 0
		if s.saboteur != nil {
			d, dl, c, df, cr := s.saboteur.Counts()
			dropped, delayed, corrupted, diskFulls, crashes = int(d), int(dl), int(c), int(df), int(cr)
		}
		t.Logf("replica %d chaos: dropped=%d delayed=%d corrupted=%d diskfull=%d crashes=%d",
			i, dropped, delayed, corrupted, diskFulls, crashes)
	}
}
