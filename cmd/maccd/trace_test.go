package main

// End-to-end distributed-tracing tests: a client-rooted request through a
// 3-replica farm must produce ONE trace whose assembled span tree shows
// every hop — the client's call and attempt legs, the serving replica's
// ingress, the cache-tier decision, the peer-lookup legs, and (for a cold
// compile) the per-pass pipeline spans — retrievable from any replica as
// either the raw span set or valid Chrome trace_event JSON.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"macc/internal/farm"
	"macc/internal/telemetry/dtrace"
)

// traceFarm builds three mutually-peered replicas and returns their URLs.
func traceFarm(t *testing.T) ([]*Server, []string) {
	t.Helper()
	const replicas = 3
	swaps := make([]*swapHandler, replicas)
	urls := make([]string, replicas)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	servers := make([]*Server, replicas)
	for i := range servers {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		servers[i] = NewServer(ServerOptions{
			CacheDir: t.TempDir(),
			Peers:    peers,
			Service:  fmt.Sprintf("maccd:%d", i),
		})
		t.Cleanup(servers[i].Close)
		swaps[i].set(servers[i].Handler())
	}
	return servers, urls
}

// fetchSpans pulls the assembled trace from a replica as a raw span set.
func fetchSpans(t *testing.T, base, traceID string) []dtrace.Span {
	t.Helper()
	resp, err := http.Get(base + farm.DebugTracePrefix + traceID + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch: status %d", resp.StatusCode)
	}
	var dump farm.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	return dump.Spans
}

func kindSet(spans []dtrace.Span) map[string]int {
	m := make(map[string]int)
	for _, s := range spans {
		m[s.Kind]++
	}
	return m
}

// TestFarmDistributedTrace: request 1 (cold, via a loadgen-style farm
// client pinned to replica 0) must assemble into one trace holding the
// client root, the client attempt, replica 0's ingress, the cache miss
// decision, the peer-lookup call, and the pipeline pass spans. Request 2
// (same source, pinned to replica 1) must show the peer cache hit tier.
func TestFarmDistributedTrace(t *testing.T) {
	servers, urls := traceFarm(t)

	ct := dtrace.New("client", 0)
	farmPost := func(target int) string {
		cli := farm.NewClient(farm.ClientOptions{Peers: []string{urls[target]}, Tracer: ct})
		defer cli.Close()
		root := ct.StartRoot("compile "+addOneSrc[:10], dtrace.KindRequest)
		ctx := dtrace.ContextWith(context.Background(), root.Context())
		var out CompileResponse
		if _, err := cli.PostJSON(ctx, "/compile", CompileRequest{Source: addOneSrc}, &out); err != nil {
			t.Fatalf("farm compile: %v", err)
		}
		root.End()
		if !cli.ReportTrace(context.Background(), root.TraceID()) {
			t.Fatal("no replica accepted the client span push")
		}
		return root.TraceID()
	}

	coldID := farmPost(0)
	spans := fetchSpans(t, urls[0], coldID)
	for _, sp := range spans {
		if sp.Trace != coldID {
			t.Fatalf("span %s/%s from foreign trace %s", sp.Name, sp.ID, sp.Trace)
		}
	}
	kinds := kindSet(spans)
	for _, want := range []string{
		dtrace.KindRequest, // client root
		dtrace.KindCall,    // client logical call
		dtrace.KindAttempt, // client leg + replica 0's peer-lookup legs
		dtrace.KindIngress, // replica 0 HTTP handler
		dtrace.KindCache,   // tier decision
		dtrace.KindLookup,  // replica 0 consulting its peers
		dtrace.KindCompute, // singleflight leader's cold compile
		dtrace.KindPass,    // pipeline passes linked into the trace
	} {
		if kinds[want] == 0 {
			t.Errorf("cold trace missing kind %q (kinds: %v)", want, kinds)
		}
	}

	// The tree must be connected: the ingress span's parent is the client
	// attempt (traceparent propagation), the cache span's parent is the
	// ingress, and the tier decision is an honest miss.
	byID := make(map[string]dtrace.Span)
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	for _, sp := range spans {
		switch sp.Kind {
		case dtrace.KindIngress:
			if p, ok := byID[sp.Parent]; !ok || p.Kind != dtrace.KindAttempt {
				t.Errorf("ingress parent = %+v, want the client attempt span", p)
			}
		case dtrace.KindCache:
			if sp.Attrs["tier"] != "miss" {
				t.Errorf("cold request cache tier = %q, want miss", sp.Attrs["tier"])
			}
			if p, ok := byID[sp.Parent]; !ok || p.Kind != dtrace.KindIngress {
				t.Errorf("cache span parent = %+v, want the ingress span", p)
			}
		case dtrace.KindPass:
			if p, ok := byID[sp.Parent]; !ok || p.Kind != dtrace.KindCompute {
				t.Errorf("pass span parent = %+v, want the compute span", p)
			}
		}
	}

	// Prime replica 2 too (a peer lookup consults one peer per round, and
	// replica 1 may pick either neighbour), then request 2 lands on
	// replica 1, whose local miss must be satisfied by a verified peer
	// hit recorded as the cache tier.
	if code, _ := post[CompileResponse](t, urls[2]+"/compile", CompileRequest{Source: addOneSrc}); code != http.StatusOK {
		t.Fatalf("priming replica 2: status %d", code)
	}
	warmID := farmPost(1)
	warm := fetchSpans(t, urls[1], warmID)
	wkinds := kindSet(warm)
	if wkinds[dtrace.KindPass] != 0 {
		t.Errorf("warm peer-hit trace has %d pass spans, want 0", wkinds[dtrace.KindPass])
	}
	var gotPeer bool
	for _, sp := range warm {
		if sp.Kind == dtrace.KindCache && sp.Attrs["tier"] == "peer" {
			gotPeer = true
		}
	}
	if !gotPeer {
		t.Errorf("warm trace has no cache span with tier=peer (kinds: %v)", wkinds)
	}

	// The cold compile's latency exemplar on replica 0 names the trace.
	snap := servers[0].Metrics().Snapshot()
	h, ok := snap.Histograms["maccd.compile_ns"]
	if !ok {
		t.Fatal("no maccd.compile_ns histogram")
	}
	var exemplarHit bool
	for _, e := range h.Exemplars {
		if e.Trace == coldID {
			exemplarHit = true
		}
	}
	if !exemplarHit {
		t.Errorf("no compile_ns exemplar names the cold trace %s (exemplars: %v)", coldID, h.Exemplars)
	}

	// The default /debug/trace format is loadable Chrome trace JSON with
	// one process row per service (client + serving replica at least).
	resp, err := http.Get(urls[0] + farm.DebugTracePrefix + coldID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	procs := make(map[int]bool)
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid] = true
		}
	}
	if len(procs) < 2 {
		t.Errorf("chrome trace has %d process rows, want >= 2 (client + replica)", len(procs))
	}
}

// TestFlightRecorderEndpoints: /debug/flight lists recent traces,
// /debug/farm renders the text dashboard, and a garbage trace ID is a
// clean 400/404 rather than a panic.
func TestFlightRecorderEndpoints(t *testing.T) {
	_, urls := traceFarm(t)
	if code, _ := post[CompileResponse](t, urls[0]+"/compile", CompileRequest{Source: addOneSrc}); code != http.StatusOK {
		t.Fatalf("compile: status %d", code)
	}

	resp, err := http.Get(urls[0] + farm.DebugFlightPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump dtrace.FlightDump
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Schema != dtrace.FlightSchema || len(dump.Traces) == 0 {
		t.Errorf("flight dump: schema %q, %d traces", dump.Schema, len(dump.Traces))
	}
	if dump.Spans != nil {
		t.Error("summary dump included full spans without ?full=1")
	}

	resp, err = http.Get(urls[0] + farm.DebugFarmPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/farm: status %d", resp.StatusCode)
	}

	for _, bad := range []string{"zzz", "00000000000000000000000000000000"} {
		resp, err := http.Get(urls[0] + farm.DebugTracePrefix + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trace id %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err = http.Get(urls[0] + farm.DebugTracePrefix + "deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", resp.StatusCode)
	}
}
