// Command maccd serves the macc compiler over HTTP with a shared
// content-addressed compile cache, and optionally joins a compile farm of
// replicas that consult each other's caches before compiling.
//
// Endpoints (JSON in/out):
//
//	POST /compile  {"source": "...", "machine": "alpha", ...}
//	               -> {"rtl": "...", "cached": true, ...}
//	POST /run      compile + simulate: adds "call", "mem", "data"
//	               -> {"ret": ..., "cycles": ..., "cached": ...}
//	GET  /metrics  telemetry registry snapshot (cache hit/miss/eviction/
//	               dedup counters, request-latency histograms)
//	GET  /healthz  liveness probe (503 while draining)
//	GET  /peer/entry/<key>  farm peer cache lookup (disk-envelope JSON)
//	GET  /debug/trace/<id>  one assembled distributed trace as Chrome
//	               trace_event JSON (?format=spans for the raw span set,
//	               ?scope=local to skip the peer fan-out)
//	POST /debug/spans       span ingest from clients (loadgen, macc -server)
//	GET  /debug/flight      flight-recorder dump (?full=1 includes spans)
//	GET  /debug/farm        plain-text dashboard: breaker states, hedge
//	               win rate, cache tier ratios, flight depth
//	GET  /metrics/history   bounded ring of periodic registry snapshots
//	               with counter deltas and per-second rates
//
// With -debug-addr set, the operator debug surface splits onto its own
// listener: /debug/flight, /debug/farm, /metrics/history, and the
// net/http/pprof continuous-profiling endpoints (/debug/pprof/...) are
// served there instead of on -addr, so they can be firewalled separately
// from production traffic. /metrics (the scrape target), /debug/spans
// (client span ingest), and /debug/trace (replicas pull each other's
// spans over their service URLs) stay on -addr; /debug/trace answers on
// both. Without -debug-addr everything stays on the single listener as
// before, minus pprof.
//
// Every request carries a distributed trace: the ingress span parents
// under the caller's traceparent header (or roots a new trace), and the
// response echoes the trace in its traceparent header. SIGQUIT dumps the
// flight recorder to stderr without exiting.
//
// Identical concurrent compiles are deduplicated through the cache's
// singleflight, so a thundering herd of the same source costs one compile.
// Requests run on a bounded worker pool with a per-request deadline that
// covers queue wait; a saturated server sheds load with 503 instead of
// accepting unbounded work, and batch-priority requests are shed first.
//
// On SIGTERM/SIGINT the server drains gracefully: it stops accepting new
// work (503 + failing health checks), lets in-flight requests finish up to
// their deadlines, flushes a final metrics snapshot, and exits.
//
// Example farm:
//
//	maccd -addr :8080 -cache-dir /tmp/c0 -peers http://localhost:8081,http://localhost:8082 &
//	maccd -addr :8081 -cache-dir /tmp/c1 -peers http://localhost:8080,http://localhost:8082 &
//	maccd -addr :8082 -cache-dir /tmp/c2 -peers http://localhost:8080,http://localhost:8081 &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"macc/internal/ccache"
	"macc/internal/faultinject"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk compile cache tier (empty: memory only)")
	cacheMem := flag.Int64("cache-mem", ccache.DefaultMemBudget, "in-memory compile cache budget in bytes")
	workers := flag.Int("workers", 0, "max concurrent compiles/runs (0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	peers := flag.String("peers", "", "comma-separated base URLs of farm replicas to consult on cache misses")
	batchSlots := flag.Int("batch-slots", 0, "max batch-priority requests in the queue (0: workers)")
	drainTimeout := flag.Duration("drain-timeout", 0, "graceful shutdown budget (0: request timeout + 5s)")
	chaos := flag.String("chaos", "", "fault injection spec, e.g. drop=0.1,delay=0.2,corrupt=0.1,maxdelay=50ms,diskfull=0.05,crashwrite=0.05,seed=42")
	metricsOut := flag.String("metrics-out", "", "file to write the final metrics snapshot to on shutdown (empty: stderr)")
	flight := flag.Int("flight", 0, "flight-recorder capacity in traces per ring (0: default)")
	debugAddr := flag.String("debug-addr", "", "separate listener for the operator debug surface (pprof, /metrics/history, /debug/flight, /debug/farm); empty: everything on -addr")
	metricsInterval := flag.Duration("metrics-interval", 0, "metrics-history snapshot period (0: default 5s)")
	flag.Parse()

	spec, err := faultinject.ParseServiceSpec(*chaos)
	if err != nil {
		log.Fatal(err)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}

	srv := NewServer(ServerOptions{
		CacheDir:        *cacheDir,
		CacheMem:        *cacheMem,
		Workers:         *workers,
		Timeout:         *timeout,
		MaxBody:         *maxBody,
		Peers:           peerList,
		BatchSlots:      *batchSlots,
		Chaos:           spec,
		Service:         serviceName(*addr),
		FlightCap:       *flight,
		HistoryInterval: *metricsInterval,
	})
	defer srv.Close()

	// SIGQUIT dumps the flight recorder to stderr without exiting — the
	// "what was this replica just doing" escape hatch for a wedged farm.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	go func() {
		for range quitc {
			if err := srv.Tracer().WriteFlight(os.Stderr, false); err != nil {
				log.Printf("maccd: flight dump: %v", err)
			}
		}
	}()

	handler := srv.Handler()
	if *debugAddr != "" {
		handler = srv.ServiceHandler()
		ds := &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			fmt.Printf("maccd debug surface on %s\n", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	drainBudget := *drainTimeout
	if drainBudget <= 0 {
		drainBudget = *timeout + 5*time.Second
	}
	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Drain: stop admitting, fail health checks so peers and load
		// balancers route around us, then wait for in-flight requests
		// up to their deadlines.
		srv.StartDrain()
		sctx, cancel := context.WithTimeout(context.Background(), drainBudget)
		defer cancel()
		shutdownDone <- hs.Shutdown(sctx)
	}()

	fmt.Printf("maccd listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := <-shutdownDone; err != nil {
		log.Printf("maccd: drain incomplete: %v", err)
	}

	// Flush the final metrics snapshot exactly once, after the last
	// request has been counted.
	out := os.Stderr
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Printf("maccd: metrics flush: %v", err)
		} else {
			defer f.Close()
			out = f
		}
	}
	if err := srv.Metrics().WriteServiceJSON(out, srv.Service()); err != nil {
		log.Printf("maccd: metrics flush: %v", err)
	}
}

// serviceName derives the span/metrics service name from the listen
// address: ":8080" -> "maccd:8080", "host:8080" -> "maccd@host:8080".
func serviceName(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "maccd" + addr
	}
	return "maccd@" + addr
}
