// Command maccd serves the macc compiler over HTTP with a shared
// content-addressed compile cache.
//
// Endpoints (JSON in/out):
//
//	POST /compile  {"source": "...", "machine": "alpha", ...}
//	               -> {"rtl": "...", "cached": true, ...}
//	POST /run      compile + simulate: adds "call", "mem", "data"
//	               -> {"ret": ..., "cycles": ..., "cached": ...}
//	GET  /metrics  telemetry registry snapshot (cache hit/miss/eviction/
//	               dedup counters, request-latency histograms)
//	GET  /healthz  liveness probe
//
// Identical concurrent compiles are deduplicated through the cache's
// singleflight, so a thundering herd of the same source costs one compile.
// Requests run on a bounded worker pool with a per-request deadline that
// covers queue wait; a saturated server sheds load with 503 instead of
// accepting unbounded work.
//
// Example:
//
//	maccd -addr :8080 -cache-dir /tmp/macc-cache &
//	curl -s localhost:8080/compile -d '{"source":"int f(int x) { return x + 1; }"}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"macc/internal/ccache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "directory for the on-disk compile cache tier (empty: memory only)")
	cacheMem := flag.Int64("cache-mem", ccache.DefaultMemBudget, "in-memory compile cache budget in bytes")
	workers := flag.Int("workers", 0, "max concurrent compiles/runs (0: GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline, queue wait included")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	flag.Parse()

	srv := NewServer(ServerOptions{
		CacheDir: *cacheDir,
		CacheMem: *cacheMem,
		Workers:  *workers,
		Timeout:  *timeout,
		MaxBody:  *maxBody,
	})
	fmt.Printf("maccd listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
