package main

// Server is the concurrent compile service: JSON in/out HTTP handlers over
// the shared content-addressed compile cache. Every compile or run request
// flows through a bounded worker pool with a per-request deadline covering
// both queue wait and work; the pass pipeline's panic isolation plus a
// handler-level recover keep one poisoned request from taking the process
// down.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"macc"
	"macc/internal/ccache"
	"macc/internal/core"
	"macc/internal/farm"
	"macc/internal/faultinject"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// CacheDir enables the disk cache tier (empty = memory only).
	CacheDir string
	// CacheMem is the memory tier's byte budget (0 = default).
	CacheMem int64
	// Workers bounds concurrent compiles/runs (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-request deadline, queue wait included
	// (0 = 30s).
	Timeout time.Duration
	// MaxBody bounds the request body in bytes (0 = 1 MiB).
	MaxBody int64
	// MaxSimMem bounds a /run request's simulator memory (0 = 64 MiB).
	MaxSimMem int
	// MaxSimFuel bounds a /run request's executed instructions
	// (0 = 1<<28).
	MaxSimFuel int64
	// Peers are the other replicas' base URLs; when set, cache misses
	// consult their caches (verified, never trusted) before compiling.
	Peers []string
	// BatchSlots bounds how many batch-priority requests may occupy the
	// worker queue at once (0 = Workers). Interactive traffic is admitted
	// up to the full queue; batch beyond its slots is shed immediately.
	BatchSlots int
	// Chaos injects service faults (sabotaged peer responses, failing
	// disk writes) for resilience testing. Zero value: no chaos.
	Chaos faultinject.ServiceSpec
}

// Server holds the service state shared by all handlers.
type Server struct {
	cache      *ccache.Cache
	reg        *telemetry.Registry
	farm       *farm.Client
	saboteur   *faultinject.ServiceSaboteur
	sem        chan struct{}
	batchSem   chan struct{}
	draining   atomic.Bool
	timeout    time.Duration
	maxBody    int64
	maxSimMem  int
	maxSimFuel int64
}

// NewServer builds the service: one shared cache, one shared metrics
// registry, one worker-pool semaphore, and (when peers are configured) one
// farm client wired in as the cache's fallback tier.
func NewServer(opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchSlots := opts.BatchSlots
	if batchSlots <= 0 {
		batchSlots = workers
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	maxSimMem := opts.MaxSimMem
	if maxSimMem <= 0 {
		maxSimMem = 64 << 20
	}
	maxSimFuel := opts.MaxSimFuel
	if maxSimFuel <= 0 {
		maxSimFuel = 1 << 28
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		reg:        reg,
		sem:        make(chan struct{}, workers),
		batchSem:   make(chan struct{}, batchSlots),
		timeout:    timeout,
		maxBody:    maxBody,
		maxSimMem:  maxSimMem,
		maxSimFuel: maxSimFuel,
	}
	cacheOpts := ccache.Options{Dir: opts.CacheDir, MemBudget: opts.CacheMem, Metrics: reg}
	if opts.Chaos.Active() {
		s.saboteur = faultinject.NewServiceSaboteur(opts.Chaos)
		cacheOpts.DiskFault = s.saboteur.DiskFault()
	}
	if len(opts.Peers) > 0 {
		s.farm = farm.NewClient(farm.ClientOptions{
			Peers:   opts.Peers,
			Metrics: reg,
			Seed:    opts.Chaos.Seed,
		})
		cacheOpts.Fallback = s.farm.FallbackFunc()
	}
	s.cache = ccache.New(cacheOpts)
	return s
}

// Close stops the farm client's background prober (no-op without peers).
func (s *Server) Close() {
	if s.farm != nil {
		s.farm.Close()
	}
}

// StartDrain begins a graceful shutdown: new compile/run requests are shed
// with 503, /healthz fails so peers and load balancers stop routing here,
// and in-flight requests keep their deadlines. /metrics stays available for
// the final flush.
func (s *Server) StartDrain() {
	s.draining.Store(true)
}

// Metrics returns the service registry (for the shutdown flush).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Handler returns the service mux. The peer cache endpoint answers only
// from local tiers (never the farm fallback), so replica lookups cannot
// recurse; when chaos is configured, the saboteur sits in front of it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	peer := http.Handler(farm.PeerCacheHandler(s.cache, s.reg))
	if s.saboteur != nil {
		peer = s.saboteur.WrapHandler(peer)
	}
	mux.Handle(farm.PeerPathPrefix, peer)
	return mux
}

// Wire types live in internal/farm so cmd/macc -server and cmd/loadgen
// speak the same protocol.
type (
	CompileRequest  = farm.CompileRequest
	CompileResponse = farm.CompileResponse
	RunRequest      = farm.RunRequest
	RunResponse     = farm.RunResponse
	DataWrite       = farm.DataWrite
)

// httpError carries a status code out of a worker.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// configFor maps a request onto a macc.Config backed by the shared cache.
func (s *Server) configFor(req CompileRequest) (macc.Config, error) {
	if strings.TrimSpace(req.Source) == "" {
		return macc.Config{}, badRequest("missing source")
	}
	name := req.Machine
	if name == "" {
		name = "alpha"
	}
	m, ok := machine.ByName(name)
	if !ok {
		return macc.Config{}, badRequest("unknown machine %q", name)
	}
	cfg := macc.Config{Machine: m, Optimize: true, Schedule: true, Cache: s.cache}
	if req.Optimize != nil {
		cfg.Optimize = *req.Optimize
	}
	if req.Schedule != nil {
		cfg.Schedule = *req.Schedule
	}
	switch req.Coalesce {
	case "", "both":
		cfg.Coalesce = core.Options{Loads: true, Stores: true}
	case "loads":
		cfg.Coalesce = core.Options{Loads: true}
	case "stores":
		cfg.Coalesce = core.Options{Stores: true}
	case "off":
	default:
		return macc.Config{}, badRequest("unknown coalesce mode %q", req.Coalesce)
	}
	switch req.Unroll {
	case "", "auto":
		cfg.Unroll = true
	case "off":
	default:
		n, err := strconv.Atoi(req.Unroll)
		if err != nil || n < 2 {
			return macc.Config{}, badRequest("bad unroll %q", req.Unroll)
		}
		cfg.Unroll = true
		cfg.UnrollFactor = n
	}
	if req.Registers < 0 {
		return macc.Config{}, badRequest("negative registers")
	}
	cfg.Registers = req.Registers
	switch req.Priority {
	case "", farm.PriorityInteractive, farm.PriorityBatch:
	default:
		return macc.Config{}, badRequest("unknown priority %q", req.Priority)
	}
	return cfg, nil
}

// serve decodes a JSON request, runs work on the bounded pool under the
// request deadline, and encodes the JSON response. work runs on a worker
// goroutine; panics there become 500s, deadline overruns 503/504s.
func serve[Req any, Resp any](s *Server, w http.ResponseWriter, r *http.Request,
	histogram string, work func(req Req) (Resp, error)) {
	s.reg.Counter("maccd.requests").Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter("maccd.shed_draining").Add(1)
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req Req
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()

	// Admission control: batch-priority requests may occupy only their
	// bounded share of the queue and are shed immediately when it is
	// full — interactive latency is never hostage to a batch backlog.
	releaseBatch := func() {}
	if p, ok := any(req).(interface{ AdmissionTier() string }); ok && p.AdmissionTier() == farm.PriorityBatch {
		select {
		case s.batchSem <- struct{}{}:
			releaseBatch = func() { <-s.batchSem }
		default:
			s.reg.Counter("maccd.shed_batch").Add(1)
			s.fail(w, http.StatusServiceUnavailable, "saturated: batch queue full")
			return
		}
	}

	// Acquire a pool slot; a saturated service sheds load when the
	// deadline expires in the queue.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		releaseBatch()
		s.reg.Counter("maccd.queue_timeouts").Add(1)
		s.fail(w, http.StatusServiceUnavailable, "saturated: timed out waiting for a worker")
		return
	}

	type outcome struct {
		resp Resp
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-s.sem; releaseBatch() }()
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter("maccd.panics").Add(1)
				done <- outcome{err: &httpError{code: http.StatusInternalServerError,
					msg: fmt.Sprintf("internal panic: %v", p)}}
			}
		}()
		start := time.Now()
		resp, err := work(req)
		s.reg.Histogram(histogram).Observe(time.Since(start).Nanoseconds())
		done <- outcome{resp: resp, err: err}
	}()

	select {
	case out := <-done:
		if out.err != nil {
			var he *httpError
			if errors.As(out.err, &he) {
				s.fail(w, he.code, he.msg)
			} else {
				s.fail(w, http.StatusUnprocessableEntity, out.err.Error())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out.resp)
	case <-ctx.Done():
		// The worker keeps running to completion (compiles are not
		// cancellable mid-pass) but the client gets released; a later
		// identical request will hit the cache the worker populates.
		s.reg.Counter("maccd.timeouts").Add(1)
		s.fail(w, http.StatusGatewayTimeout, "deadline exceeded")
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.reg.Counter("maccd.errors").Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	serve(s, w, r, "maccd.compile_ns", func(req CompileRequest) (CompileResponse, error) {
		prog, _, err := s.compile(req)
		if err != nil {
			return CompileResponse{}, err
		}
		resp := CompileResponse{
			RTL:      prog.RTL.String(),
			Machine:  prog.Machine.Name,
			Cached:   prog.Cached,
			Degraded: prog.Diagnostics.Degraded(),
			Reports:  prog.Reports,
			Unrolled: prog.Unrolled,
		}
		if resp.Degraded {
			resp.Diagnostics = prog.Diagnostics.String()
		}
		return resp, nil
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	serve(s, w, r, "maccd.run_ns", func(req RunRequest) (RunResponse, error) {
		name, args, err := parseCall(req.Call)
		if err != nil {
			return RunResponse{}, badRequest("bad call: %v", err)
		}
		mem := req.Mem
		if mem <= 0 {
			mem = 1 << 20
		}
		if mem > s.maxSimMem {
			return RunResponse{}, badRequest("mem %d exceeds limit %d", mem, s.maxSimMem)
		}
		prog, _, err := s.compile(req.CompileRequest)
		if err != nil {
			return RunResponse{}, err
		}
		sim := prog.NewSim(mem)
		defer sim.Release()
		sim.Fuel = s.maxSimFuel
		for _, d := range req.Data {
			w := rtl.Width(d.Width)
			if !w.Valid() {
				return RunResponse{}, badRequest("bad data width %d", d.Width)
			}
			end := d.Addr + int64(len(d.Ints))*int64(w)
			if d.Addr < 0 || end > int64(mem) {
				return RunResponse{}, badRequest("data write [%d, %d) outside memory", d.Addr, end)
			}
			sim.WriteInts(d.Addr, w, d.Ints)
		}
		res, err := sim.Run(name, args...)
		if err != nil {
			return RunResponse{}, fmt.Errorf("run: %w", err)
		}
		return RunResponse{
			Ret:          res.Ret,
			Cycles:       res.Cycles,
			Instrs:       res.Instrs,
			Loads:        res.Loads,
			Stores:       res.Stores,
			MemRefs:      res.MemRefs(),
			ICacheMisses: res.ICacheMisses,
			DCacheMisses: res.DCacheMisses,
			Cached:       prog.Cached,
		}, nil
	})
}

// compile routes one request through the shared cache.
func (s *Server) compile(req CompileRequest) (*macc.Program, macc.Config, error) {
	cfg, err := s.configFor(req)
	if err != nil {
		return nil, cfg, err
	}
	prog, err := macc.Compile(req.Source, cfg)
	if err != nil {
		return nil, cfg, badRequest("compile: %v", err)
	}
	return prog, cfg, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.farm != nil {
		s.farm.PublishStats()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
	}
}

// parseCall parses "fn(1,2,3)" into a name and integer arguments.
func parseCall(s string) (string, []int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("want fn(arg,...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("missing function name in %q", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var args []int64
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad argument %q", part)
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}
