package main

// Server is the concurrent compile service: JSON in/out HTTP handlers over
// the shared content-addressed compile cache. Every compile or run request
// flows through a bounded worker pool with a per-request deadline covering
// both queue wait and work; the pass pipeline's panic isolation plus a
// handler-level recover keep one poisoned request from taking the process
// down.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"macc"
	"macc/internal/ccache"
	"macc/internal/core"
	"macc/internal/farm"
	"macc/internal/faultinject"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
)

// ServerOptions configures a Server.
type ServerOptions struct {
	// CacheDir enables the disk cache tier (empty = memory only).
	CacheDir string
	// CacheMem is the memory tier's byte budget (0 = default).
	CacheMem int64
	// Workers bounds concurrent compiles/runs (0 = GOMAXPROCS).
	Workers int
	// Timeout is the per-request deadline, queue wait included
	// (0 = 30s).
	Timeout time.Duration
	// MaxBody bounds the request body in bytes (0 = 1 MiB).
	MaxBody int64
	// MaxSimMem bounds a /run request's simulator memory (0 = 64 MiB).
	MaxSimMem int
	// MaxSimFuel bounds a /run request's executed instructions
	// (0 = 1<<28).
	MaxSimFuel int64
	// Peers are the other replicas' base URLs; when set, cache misses
	// consult their caches (verified, never trusted) before compiling.
	Peers []string
	// BatchSlots bounds how many batch-priority requests may occupy the
	// worker queue at once (0 = Workers). Interactive traffic is admitted
	// up to the full queue; batch beyond its slots is shed immediately.
	BatchSlots int
	// Chaos injects service faults (sabotaged peer responses, failing
	// disk writes) for resilience testing. Zero value: no chaos.
	Chaos faultinject.ServiceSpec
	// Service names this replica in trace spans and metrics envelopes
	// (empty = "maccd").
	Service string
	// FlightCap bounds the flight recorder's retained traces per ring
	// (0 = dtrace.DefaultFlightCap).
	FlightCap int
	// HistoryInterval is the metrics-history snapshot period
	// (0 = telemetry.DefaultHistoryInterval).
	HistoryInterval time.Duration
	// HistoryCap bounds the metrics-history ring
	// (0 = telemetry.DefaultHistoryCap).
	HistoryCap int
}

// Server holds the service state shared by all handlers.
type Server struct {
	cache       *ccache.Cache
	reg         *telemetry.Registry
	tracer      *dtrace.Tracer
	farm        *farm.Client
	saboteur    *faultinject.ServiceSaboteur
	sem         chan struct{}
	batchSem    chan struct{}
	draining    atomic.Bool
	service     string
	timeout     time.Duration
	maxBody     int64
	maxSimMem   int
	maxSimFuel  int64
	history     *telemetry.History
	stopHistory func()
}

// NewServer builds the service: one shared cache, one shared metrics
// registry, one worker-pool semaphore, and (when peers are configured) one
// farm client wired in as the cache's fallback tier.
func NewServer(opts ServerOptions) *Server {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchSlots := opts.BatchSlots
	if batchSlots <= 0 {
		batchSlots = workers
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	maxBody := opts.MaxBody
	if maxBody <= 0 {
		maxBody = 1 << 20
	}
	maxSimMem := opts.MaxSimMem
	if maxSimMem <= 0 {
		maxSimMem = 64 << 20
	}
	maxSimFuel := opts.MaxSimFuel
	if maxSimFuel <= 0 {
		maxSimFuel = 1 << 28
	}
	service := opts.Service
	if service == "" {
		service = "maccd"
	}
	reg := telemetry.NewRegistry()
	s := &Server{
		reg:        reg,
		tracer:     dtrace.New(service, opts.FlightCap),
		sem:        make(chan struct{}, workers),
		batchSem:   make(chan struct{}, batchSlots),
		service:    service,
		timeout:    timeout,
		maxBody:    maxBody,
		maxSimMem:  maxSimMem,
		maxSimFuel: maxSimFuel,
	}
	cacheOpts := ccache.Options{Dir: opts.CacheDir, MemBudget: opts.CacheMem, Metrics: reg, Tracer: s.tracer}
	if opts.Chaos.Active() {
		s.saboteur = faultinject.NewServiceSaboteur(opts.Chaos)
		cacheOpts.DiskFault = s.saboteur.DiskFault()
	}
	if len(opts.Peers) > 0 {
		s.farm = farm.NewClient(farm.ClientOptions{
			Peers:   opts.Peers,
			Metrics: reg,
			Seed:    opts.Chaos.Seed,
			Tracer:  s.tracer,
		})
		cacheOpts.Fallback = s.farm.FallbackFunc()
	}
	s.cache = ccache.New(cacheOpts)
	// Continuous profiling: a bounded ring of periodic registry snapshots
	// with counter deltas/rates, so an operator attaching after an incident
	// still sees the recent shape of traffic. The first sample is taken
	// synchronously so /metrics/history is never empty.
	s.history = telemetry.NewHistory(reg, opts.HistoryCap)
	s.history.Record()
	s.stopHistory = s.history.Start(opts.HistoryInterval)
	return s
}

// Close stops the farm client's background prober (no-op without peers)
// and the metrics-history sampler.
func (s *Server) Close() {
	if s.farm != nil {
		s.farm.Close()
	}
	if s.stopHistory != nil {
		s.stopHistory()
	}
}

// StartDrain begins a graceful shutdown: new compile/run requests are shed
// with 503, /healthz fails so peers and load balancers stop routing here,
// and in-flight requests keep their deadlines. /metrics stays available for
// the final flush.
func (s *Server) StartDrain() {
	s.draining.Store(true)
}

// Metrics returns the service registry (for the shutdown flush).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Tracer returns the replica's span tracer / flight recorder (for the
// SIGQUIT dump).
func (s *Server) Tracer() *dtrace.Tracer { return s.tracer }

// Service returns the replica's service name (for metrics envelopes).
func (s *Server) Service() string { return s.service }

// Handler returns the single-listener mux: the full service surface plus
// the operator debug surface, the layout used when no -debug-addr is
// configured. Existing deployments and tests keep working unchanged.
func (s *Server) Handler() http.Handler { return s.handler(true) }

// ServiceHandler returns the production mux with the operator debug
// surface split out (the layout used when -debug-addr is set): the
// flight recorder, farm dashboard, metrics history, and pprof move to
// DebugHandler. What stays is wire protocol, not debugging convenience —
// /compile, /run, /healthz, and the peer cache endpoint obviously, but
// also /metrics (the scrape target), /debug/spans (clients push their
// spans here), and /debug/trace (replicas pull each other's local spans
// over their service URLs, so trace assembly must answer here too).
func (s *Server) ServiceHandler() http.Handler { return s.handler(false) }

// handler builds the service mux. The peer cache endpoint answers only
// from local tiers (never the farm fallback), so replica lookups cannot
// recurse; when chaos is configured, the saboteur sits in front of it.
func (s *Server) handler(debug bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", s.handleCompile)
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc(farm.DebugSpansPath, s.handleDebugSpans)
	mux.HandleFunc(farm.DebugTracePrefix, s.handleDebugTrace)
	if debug {
		mux.HandleFunc(farm.DebugFlightPath, s.handleDebugFlight)
		mux.HandleFunc(farm.DebugFarmPath, s.handleDebugFarm)
		mux.Handle("/metrics/history", s.history)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	peer := http.Handler(farm.PeerCacheHandler(s.cache, s.reg))
	if s.saboteur != nil {
		peer = s.saboteur.WrapHandler(peer)
	}
	mux.Handle(farm.PeerPathPrefix, peer)
	return mux
}

// DebugHandler returns the operator debug mux served on -debug-addr:
// net/http/pprof (continuous profiling), the bounded /metrics/history
// snapshot ring, the flight recorder, the farm dashboard, and trace
// assembly (dual-homed with the service listener — see ServiceHandler).
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	telemetry.AttachPprof(mux)
	mux.Handle("/metrics/history", s.history)
	mux.HandleFunc(farm.DebugTracePrefix, s.handleDebugTrace)
	mux.HandleFunc(farm.DebugFlightPath, s.handleDebugFlight)
	mux.HandleFunc(farm.DebugFarmPath, s.handleDebugFarm)
	return mux
}

// Wire types live in internal/farm so cmd/macc -server and cmd/loadgen
// speak the same protocol.
type (
	CompileRequest  = farm.CompileRequest
	CompileResponse = farm.CompileResponse
	RunRequest      = farm.RunRequest
	RunResponse     = farm.RunResponse
	DataWrite       = farm.DataWrite
)

// httpError carries a status code out of a worker.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// configFor maps a request onto a macc.Config backed by the shared cache.
func (s *Server) configFor(req CompileRequest) (macc.Config, error) {
	if strings.TrimSpace(req.Source) == "" {
		return macc.Config{}, badRequest("missing source")
	}
	name := req.Machine
	if name == "" {
		name = "alpha"
	}
	m, ok := machine.ByName(name)
	if !ok {
		return macc.Config{}, badRequest("unknown machine %q", name)
	}
	cfg := macc.Config{Machine: m, Optimize: true, Schedule: true, Cache: s.cache}
	if req.Optimize != nil {
		cfg.Optimize = *req.Optimize
	}
	if req.Schedule != nil {
		cfg.Schedule = *req.Schedule
	}
	switch req.Coalesce {
	case "", "both":
		cfg.Coalesce = core.Options{Loads: true, Stores: true}
	case "loads":
		cfg.Coalesce = core.Options{Loads: true}
	case "stores":
		cfg.Coalesce = core.Options{Stores: true}
	case "off":
	default:
		return macc.Config{}, badRequest("unknown coalesce mode %q", req.Coalesce)
	}
	switch req.Unroll {
	case "", "auto":
		cfg.Unroll = true
	case "off":
	default:
		n, err := strconv.Atoi(req.Unroll)
		if err != nil || n < 2 {
			return macc.Config{}, badRequest("bad unroll %q", req.Unroll)
		}
		cfg.Unroll = true
		cfg.UnrollFactor = n
	}
	if req.Registers < 0 {
		return macc.Config{}, badRequest("negative registers")
	}
	cfg.Registers = req.Registers
	switch req.Priority {
	case "", farm.PriorityInteractive, farm.PriorityBatch:
	default:
		return macc.Config{}, badRequest("unknown priority %q", req.Priority)
	}
	return cfg, nil
}

// serve decodes a JSON request, runs work on the bounded pool under the
// request deadline, and encodes the JSON response. work runs on a worker
// goroutine; panics there become 500s, deadline overruns 503/504s.
//
// Every request gets an ingress span opened before admission control, so
// queue wait is on the trace. Its parent comes from the traceparent request
// header when a farm client sent one; otherwise the span roots a new trace.
// Either way the span's context is echoed back in the response traceparent
// header, so callers can fetch /debug/trace/<id> afterwards. 5xx outcomes
// pin the trace into the flight recorder's incident ring.
func serve[Req any, Resp any](s *Server, w http.ResponseWriter, r *http.Request,
	histogram string, work func(ctx context.Context, req Req) (Resp, error)) {
	s.reg.Counter("maccd.requests").Add(1)
	parent, _ := dtrace.ParseTraceparent(r.Header.Get(dtrace.Header))
	sp := s.tracer.StartSpan(parent, r.Method+" "+r.URL.Path, dtrace.KindIngress)
	w.Header().Set(dtrace.Header, sp.Context().Traceparent())
	defer sp.End()
	fail := func(code int, msg string) {
		sp.SetAttr("status", strconv.Itoa(code))
		sp.SetErr(msg)
		if code >= 500 {
			s.tracer.MarkIncident(sp.TraceID())
		}
		s.fail(w, code, msg)
	}
	if r.Method != http.MethodPost {
		fail(http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		s.reg.Counter("maccd.shed_draining").Add(1)
		fail(http.StatusServiceUnavailable, "draining")
		return
	}
	var req Req
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	ctx = dtrace.ContextWith(ctx, sp.Context())

	// Admission control: batch-priority requests may occupy only their
	// bounded share of the queue and are shed immediately when it is
	// full — interactive latency is never hostage to a batch backlog.
	releaseBatch := func() {}
	if p, ok := any(req).(interface{ AdmissionTier() string }); ok && p.AdmissionTier() == farm.PriorityBatch {
		select {
		case s.batchSem <- struct{}{}:
			releaseBatch = func() { <-s.batchSem }
		default:
			s.reg.Counter("maccd.shed_batch").Add(1)
			fail(http.StatusServiceUnavailable, "saturated: batch queue full")
			return
		}
	}

	// Acquire a pool slot; a saturated service sheds load when the
	// deadline expires in the queue.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		releaseBatch()
		s.reg.Counter("maccd.queue_timeouts").Add(1)
		fail(http.StatusServiceUnavailable, "saturated: timed out waiting for a worker")
		return
	}

	type outcome struct {
		resp Resp
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() { <-s.sem; releaseBatch() }()
		defer func() {
			if p := recover(); p != nil {
				s.reg.Counter("maccd.panics").Add(1)
				done <- outcome{err: &httpError{code: http.StatusInternalServerError,
					msg: fmt.Sprintf("internal panic: %v", p)}}
			}
		}()
		start := time.Now()
		resp, err := work(ctx, req)
		// The exemplar links this latency sample to its trace, so a
		// tail-latency bucket in /metrics names a trace to pull.
		s.reg.Histogram(histogram).ObserveExemplar(time.Since(start).Nanoseconds(), sp.TraceID())
		done <- outcome{resp: resp, err: err}
	}()

	select {
	case out := <-done:
		if out.err != nil {
			var he *httpError
			if errors.As(out.err, &he) {
				fail(he.code, he.msg)
			} else {
				fail(http.StatusUnprocessableEntity, out.err.Error())
			}
			return
		}
		sp.SetAttr("status", "200")
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out.resp)
	case <-ctx.Done():
		// The worker keeps running to completion (compiles are not
		// cancellable mid-pass) but the client gets released; a later
		// identical request will hit the cache the worker populates.
		s.reg.Counter("maccd.timeouts").Add(1)
		fail(http.StatusGatewayTimeout, "deadline exceeded")
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.reg.Counter("maccd.errors").Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	serve(s, w, r, "maccd.compile_ns", func(ctx context.Context, req CompileRequest) (CompileResponse, error) {
		prog, _, err := s.compile(ctx, req)
		if err != nil {
			return CompileResponse{}, err
		}
		resp := CompileResponse{
			RTL:      prog.RTL.String(),
			Machine:  prog.Machine.Name,
			Cached:   prog.Cached,
			Degraded: prog.Diagnostics.Degraded(),
			Reports:  prog.Reports,
			Unrolled: prog.Unrolled,
		}
		if resp.Degraded {
			resp.Diagnostics = prog.Diagnostics.String()
		}
		return resp, nil
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	serve(s, w, r, "maccd.run_ns", func(ctx context.Context, req RunRequest) (RunResponse, error) {
		name, args, err := parseCall(req.Call)
		if err != nil {
			return RunResponse{}, badRequest("bad call: %v", err)
		}
		mem := req.Mem
		if mem <= 0 {
			mem = 1 << 20
		}
		if mem > s.maxSimMem {
			return RunResponse{}, badRequest("mem %d exceeds limit %d", mem, s.maxSimMem)
		}
		prog, _, err := s.compile(ctx, req.CompileRequest)
		if err != nil {
			return RunResponse{}, err
		}
		sim := prog.NewSim(mem)
		defer sim.Release()
		sim.Fuel = s.maxSimFuel
		for _, d := range req.Data {
			w := rtl.Width(d.Width)
			if !w.Valid() {
				return RunResponse{}, badRequest("bad data width %d", d.Width)
			}
			end := d.Addr + int64(len(d.Ints))*int64(w)
			if d.Addr < 0 || end > int64(mem) {
				return RunResponse{}, badRequest("data write [%d, %d) outside memory", d.Addr, end)
			}
			sim.WriteInts(d.Addr, w, d.Ints)
		}
		runSp := s.tracer.StartSpan(dtrace.FromContext(ctx), "simulate", dtrace.KindRun)
		runSp.SetAttr("call", req.Call)
		res, err := sim.Run(name, args...)
		if err != nil {
			runSp.SetErr(err.Error())
			runSp.End()
			return RunResponse{}, fmt.Errorf("run: %w", err)
		}
		runSp.End()
		return RunResponse{
			Ret:          res.Ret,
			Cycles:       res.Cycles,
			Instrs:       res.Instrs,
			Loads:        res.Loads,
			Stores:       res.Stores,
			MemRefs:      res.MemRefs(),
			ICacheMisses: res.ICacheMisses,
			DCacheMisses: res.DCacheMisses,
			Cached:       prog.Cached,
		}, nil
	})
}

// compile routes one request through the shared cache. ctx carries the
// ingress span's context; a per-request recorder lets a cold compile's
// pass spans link into the request trace (warm hits and singleflight
// waiters record cache-tier spans instead).
func (s *Server) compile(ctx context.Context, req CompileRequest) (*macc.Program, macc.Config, error) {
	cfg, err := s.configFor(req)
	if err != nil {
		return nil, cfg, err
	}
	cfg.Telemetry = telemetry.NewRecorder()
	cfg.Tracer = s.tracer
	prog, err := macc.CompileCtx(ctx, req.Source, cfg)
	if err != nil {
		return nil, cfg, badRequest("compile: %v", err)
	}
	return prog, cfg, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.farm != nil {
		s.farm.PublishStats()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteServiceJSON(w, s.service); err != nil {
		s.fail(w, http.StatusInternalServerError, err.Error())
	}
}

// handleDebugSpans ingests spans pushed by clients (loadgen, macc -server)
// so this replica can answer /debug/trace/<id> with the client-side view
// of the request included.
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var in farm.SpanIngest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&in); err != nil {
		s.fail(w, http.StatusBadRequest, "bad span batch: "+err.Error())
		return
	}
	s.tracer.Ingest(in.Spans)
	fmt.Fprintf(w, "accepted %d spans\n", len(in.Spans))
}

// handleDebugTrace serves one assembled trace. By default the replica
// merges its local spans with each peer's (?scope=local pulls, so replicas
// never recurse) and renders Chrome trace_event JSON; ?format=spans
// returns the raw span set instead (used replica-to-replica and by
// loadgen for per-hop breakdowns).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, farm.DebugTracePrefix)
	if _, err := dtrace.ParseTraceID(id); err != nil {
		s.fail(w, http.StatusBadRequest, "bad trace id: want 32 hex digits")
		return
	}
	spans := s.tracer.Spans(id)
	if r.URL.Query().Get("scope") != "local" && s.farm != nil {
		spans = mergeSpans(spans, s.pullPeerSpans(r.Context(), id))
	}
	if len(spans) == 0 {
		s.fail(w, http.StatusNotFound, "unknown trace "+id)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		dtrace.WriteChromeTrace(w, spans)
	case "spans":
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(farm.TraceDump{Trace: id, Spans: spans})
	default:
		s.fail(w, http.StatusBadRequest, "unknown format (want chrome or spans)")
	}
}

// pullPeerSpans fetches each peer's local spans for one trace. Failures
// are fine — a dead peer just means its hops are missing from the view.
func (s *Server) pullPeerSpans(ctx context.Context, id string) []dtrace.Span {
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var out []dtrace.Span
	for _, base := range s.farm.PeerURLs() {
		url := base + farm.DebugTracePrefix + id + "?scope=local&format=spans"
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
		if err != nil {
			continue
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			continue
		}
		var dump farm.TraceDump
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&dump)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK {
			out = append(out, dump.Spans...)
		}
	}
	return out
}

// mergeSpans unions local and remote spans, deduplicating by span ID (a
// span pushed to us earlier may also come back in a peer pull).
func mergeSpans(local, remote []dtrace.Span) []dtrace.Span {
	seen := make(map[string]bool, len(local))
	for _, sp := range local {
		seen[sp.ID] = true
	}
	out := local
	for _, sp := range remote {
		if !seen[sp.ID] {
			seen[sp.ID] = true
			out = append(out, sp)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// handleDebugFlight dumps the flight recorder: one summary line per
// retained trace (incidents pinned), full spans with ?full=1.
func (s *Server) handleDebugFlight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.tracer.WriteFlight(w, r.URL.Query().Get("full") == "1")
}

// handleDebugFarm is the plain-text at-a-glance dashboard: request and
// shed counters, cache tier ratios, hedge win rate, per-peer breaker
// state and latency, and flight-recorder depth.
func (s *Server) handleDebugFarm(w http.ResponseWriter, r *http.Request) {
	if s.farm != nil {
		s.farm.PublishStats()
	}
	snap := s.reg.Snapshot()
	c := snap.Counters
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "service   %s draining=%v workers=%d\n", s.service, s.draining.Load(), cap(s.sem))
	fmt.Fprintf(w, "requests  total=%d errors=%d panics=%d shed_draining=%d shed_batch=%d queue_timeouts=%d timeouts=%d\n",
		c["maccd.requests"], c["maccd.errors"], c["maccd.panics"],
		c["maccd.shed_draining"], c["maccd.shed_batch"], c["maccd.queue_timeouts"], c["maccd.timeouts"])
	hits := c["ccache.mem_hits"] + c["ccache.disk_hits"] + c["ccache.peer_hits"]
	lookups := hits + c["ccache.misses"]
	ratio := 0.0
	if lookups > 0 {
		ratio = float64(hits) / float64(lookups)
	}
	fmt.Fprintf(w, "cache     hit_ratio=%.3f mem=%d disk=%d peer=%d miss=%d dedup_waits=%d evictions=%d\n",
		ratio, c["ccache.mem_hits"], c["ccache.disk_hits"], c["ccache.peer_hits"],
		c["ccache.misses"], c["ccache.dedup_waiters"], c["ccache.evictions"])
	winRate := 0.0
	if c["farm.hedges"] > 0 {
		winRate = float64(c["farm.hedge_wins"]) / float64(c["farm.hedges"])
	}
	fmt.Fprintf(w, "farm      hedges=%d hedge_wins=%d win_rate=%.3f retries=%d attempt_errors=%d attempt_5xx=%d peer_lookup_hits=%d\n",
		c["farm.hedges"], c["farm.hedge_wins"], winRate, c["farm.retries"],
		c["farm.attempt_errors"], c["farm.attempt_5xx"], c["farm.peer_lookup_hits"])
	traces := s.tracer.Summaries()
	incidents := 0
	for _, t := range traces {
		if t.Incident {
			incidents++
		}
	}
	fmt.Fprintf(w, "flight    traces=%d incidents=%d\n", len(traces), incidents)
	if s.farm != nil {
		for _, p := range s.farm.PeerStats() {
			fmt.Fprintf(w, "peer      %-28s state=%-9s trips=%d samples=%d p50=%v p99=%v\n",
				p.URL, p.State, p.Trips, p.Samples,
				time.Duration(p.P50NS).Round(time.Microsecond),
				time.Duration(p.P99NS).Round(time.Microsecond))
		}
	}
}

// parseCall parses "fn(1,2,3)" into a name and integer arguments.
func parseCall(s string) (string, []int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("want fn(arg,...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return "", nil, fmt.Errorf("missing function name in %q", s)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var args []int64
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return "", nil, fmt.Errorf("bad argument %q", part)
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}
