package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"macc/internal/telemetry"
)

// TestDebugSurfaceSplit checks the -debug-addr layout: the service mux
// keeps the wire protocol (/metrics, /debug/spans, /debug/trace) but
// drops the operator surface, which the debug mux serves instead —
// including pprof and the metrics-history ring.
func TestDebugSurfaceSplit(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	service := httptest.NewServer(s.ServiceHandler())
	defer service.Close()
	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()

	status := func(base, path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s%s: %v", base, path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Production listener: wire protocol present, operator surface absent.
	for path, want := range map[string]int{
		"/metrics":         200,
		"/healthz":         200,
		"/debug/trace/zzz": 400, // mounted: bad trace id, not 404
		"/debug/flight":    404,
		"/debug/farm":      404,
		"/metrics/history": 404,
		"/debug/pprof/":    404,
	} {
		if got := status(service.URL, path); got != want {
			t.Errorf("service %s = %d, want %d", path, got, want)
		}
	}

	// Debug listener: operator surface present, including dual-homed
	// trace assembly and continuous profiling.
	for path, want := range map[string]int{
		"/debug/flight":        200,
		"/debug/farm":          200,
		"/metrics/history":     200,
		"/debug/pprof/":        200,
		"/debug/pprof/cmdline": 200,
		"/debug/trace/zzz":     400,
	} {
		if got := status(debug.URL, path); got != want {
			t.Errorf("debug %s = %d, want %d", path, got, want)
		}
	}

	// The single-listener layout still carries the operator surface.
	full := httptest.NewServer(s.Handler())
	defer full.Close()
	for _, path := range []string{"/debug/flight", "/debug/farm", "/metrics/history"} {
		if got := status(full.URL, path); got != 200 {
			t.Errorf("full %s = %d, want 200", path, got)
		}
	}
}

// TestFiveHundredPinsIncident checks the serve() path end to end: a 5xx
// response pins its ingress trace into the flight recorder's incident
// ring, so the trace is still there when an operator pulls /debug/flight
// after the fact.
func TestFiveHundredPinsIncident(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1})
	defer s.Close()
	service := httptest.NewServer(s.ServiceHandler())
	defer service.Close()

	s.StartDrain() // every new compile now sheds with 503
	resp, err := http.Post(service.URL+"/compile", "application/json",
		strings.NewReader(`{"source": "int f(void) { return 1; }"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining compile = %d, want 503", resp.StatusCode)
	}

	incidents := 0
	for _, sum := range s.Tracer().Summaries() {
		if sum.Incident {
			incidents++
		}
	}
	if incidents == 0 {
		t.Fatal("5xx response did not pin an incident trace")
	}
}

// TestMetricsHistoryAccumulates runs the sampler at a fast interval and
// checks that /metrics/history serves the schema with multiple snapshots
// — the acceptance shape of the continuous-profiling criterion.
func TestMetricsHistoryAccumulates(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1, HistoryInterval: 5 * time.Millisecond, HistoryCap: 8})
	defer s.Close()
	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(debug.URL + "/metrics/history")
		if err != nil {
			t.Fatal(err)
		}
		var payload struct {
			Schema  string            `json:"schema"`
			Samples []json.RawMessage `json:"samples"`
		}
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if payload.Schema != telemetry.HistorySchema {
			t.Fatalf("schema = %q, want %q", payload.Schema, telemetry.HistorySchema)
		}
		if len(payload.Samples) >= 2 {
			if len(payload.Samples) > 8 {
				t.Errorf("ring overflowed its capacity: %d samples", len(payload.Samples))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never reached 2 samples (have %d)", len(payload.Samples))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
