package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"macc/internal/bench"
)

func newTestServer(t *testing.T, opts ServerOptions) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewServer(opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post[Resp any](t *testing.T, url string, body any) (int, Resp) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Resp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

const addOneSrc = "int addone(int x) { return x + 1; }"

func TestCompileColdThenWarm(t *testing.T) {
	ts := newTestServer(t, ServerOptions{CacheDir: t.TempDir()})

	code, first := post[CompileResponse](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("cold compile: status %d", code)
	}
	if first.Cached {
		t.Error("cold compile reported cached")
	}
	if !strings.Contains(first.RTL, "func addone") {
		t.Errorf("RTL missing function:\n%s", first.RTL)
	}

	code, second := post[CompileResponse](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("warm compile: status %d", code)
	}
	if !second.Cached {
		t.Error("warm compile not served from cache")
	}
	if first.RTL != second.RTL {
		t.Errorf("warm RTL differs from cold:\n%s\nvs\n%s", first.RTL, second.RTL)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Counters["ccache.mem_hits"] != 1 {
		t.Errorf("ccache.mem_hits = %d, want 1 (counters: %v)", metrics.Counters["ccache.mem_hits"], metrics.Counters)
	}
	if metrics.Counters["maccd.requests"] != 2 {
		t.Errorf("maccd.requests = %d, want 2", metrics.Counters["maccd.requests"])
	}
}

func TestRunEndpoint(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})

	src := `
int sum(short *a, int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++)
		s += a[i];
	return s;
}
`
	req := RunRequest{
		CompileRequest: CompileRequest{Source: src},
		Call:           "sum(4096, 5)",
		Data: []DataWrite{
			{Addr: 4096, Width: 2, Ints: []int64{1, 2, 3, 4, 5}},
		},
	}
	code, out := post[RunResponse](t, ts.URL+"/run", req)
	if code != http.StatusOK {
		t.Fatalf("run: status %d", code)
	}
	if out.Ret != 15 {
		t.Errorf("sum returned %d, want 15", out.Ret)
	}
	if out.Cycles <= 0 || out.MemRefs <= 0 {
		t.Errorf("suspicious stats: cycles=%d mem_refs=%d", out.Cycles, out.MemRefs)
	}

	// Second run of the same source must hit the cache and agree.
	code, again := post[RunResponse](t, ts.URL+"/run", req)
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("warm run: status %d cached %v", code, again.Cached)
	}
	if again.Ret != out.Ret || again.Cycles != out.Cycles || again.MemRefs != out.MemRefs {
		t.Errorf("cached run diverged: %+v vs %+v", again, out)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, ServerOptions{})

	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"empty source", "/compile", CompileRequest{}, http.StatusBadRequest},
		{"bad machine", "/compile", CompileRequest{Source: addOneSrc, Machine: "vax"}, http.StatusBadRequest},
		{"bad coalesce", "/compile", CompileRequest{Source: addOneSrc, Coalesce: "sideways"}, http.StatusBadRequest},
		{"bad unroll", "/compile", CompileRequest{Source: addOneSrc, Unroll: "1"}, http.StatusBadRequest},
		{"syntax error", "/compile", CompileRequest{Source: "int f( {"}, http.StatusBadRequest},
		{"missing call", "/run", RunRequest{CompileRequest: CompileRequest{Source: addOneSrc}}, http.StatusBadRequest},
		{"bad data width", "/run", RunRequest{
			CompileRequest: CompileRequest{Source: addOneSrc},
			Call:           "addone(1)",
			Data:           []DataWrite{{Addr: 0, Width: 3, Ints: []int64{1}}},
		}, http.StatusBadRequest},
		{"data out of range", "/run", RunRequest{
			CompileRequest: CompileRequest{Source: addOneSrc},
			Call:           "addone(1)",
			Mem:            4096,
			Data:           []DataWrite{{Addr: 4090, Width: 8, Ints: []int64{1, 2}}},
		}, http.StatusBadRequest},
		{"unknown field", "/compile", map[string]any{"source": addOneSrc, "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post[map[string]any](t, ts.URL+tc.path, tc.body)
			if code != tc.want {
				t.Errorf("status %d, want %d (body %v)", code, tc.want, body)
			}
		})
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: status %d, want 405", resp.StatusCode)
	}
}

// TestSaturationShedsLoad fills the worker pool from the test and checks a
// queued request is rejected with 503 when its deadline expires in queue.
func TestSaturationShedsLoad(t *testing.T) {
	s := NewServer(ServerOptions{Workers: 1, Timeout: 50 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only worker slot
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := post[map[string]any](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %v)", code, body)
	}
	if s.reg.CounterValue("maccd.queue_timeouts") != 1 {
		t.Errorf("queue_timeouts = %d, want 1", s.reg.CounterValue("maccd.queue_timeouts"))
	}
	<-s.sem

	// With the slot free again the same request succeeds.
	code, _ = post[CompileResponse](t, ts.URL+"/compile", CompileRequest{Source: addOneSrc})
	if code != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", code)
	}
}

// TestConcurrentStress hammers /compile and /run with a handful of distinct
// sources from many goroutines. Run under -race this exercises the cache,
// singleflight, worker pool, and metrics registry concurrently; every
// response for a given source must print identical RTL.
func TestConcurrentStress(t *testing.T) {
	ts := newTestServer(t, ServerOptions{CacheDir: t.TempDir(), Workers: 4})

	sources := []string{
		bench.ConvolutionSrc,
		bench.ImageAddSrc,
		addOneSrc,
	}
	const goroutines = 8
	const perG = 6

	var mu sync.Mutex
	rtlBySource := make(map[string]string)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				src := sources[(g+i)%len(sources)]
				b, _ := json.Marshal(CompileRequest{Source: src})
				resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(b))
				if err != nil {
					errc <- err
					return
				}
				var out CompileResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				mu.Lock()
				if prev, ok := rtlBySource[src]; ok && prev != out.RTL {
					errc <- fmt.Errorf("divergent RTL for same source")
				}
				rtlBySource[src] = out.RTL
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if len(rtlBySource) != len(sources) {
		t.Errorf("saw %d distinct sources, want %d", len(rtlBySource), len(sources))
	}
}

func TestParseCallServer(t *testing.T) {
	name, args, err := parseCall("f(1, -2, 0x10)")
	if err != nil || name != "f" || len(args) != 3 || args[2] != 16 {
		t.Errorf("parseCall: %q %v %v", name, args, err)
	}
	for _, bad := range []string{"", "f", "f(1", "(1)", "f(x)"} {
		if _, _, err := parseCall(bad); err == nil {
			t.Errorf("parseCall(%q) should fail", bad)
		}
	}
}
