package main

import (
	"bytes"
	"testing"

	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/telemetry/report"
)

func testOptions() options {
	return options{
		corpus:   10,
		seed:     1,
		machines: []*machine.Machine{machine.Alpha()},
		workers:  4,
		workload: bench.SmallWorkload(),
	}
}

// TestGenerateReport: kernels + a small corpus produce a report with a
// nonzero coverage rate, a missed-reason histogram, and every kernel
// present — the acceptance shape, scaled down for test time.
func TestGenerateReport(t *testing.T) {
	rep, err := generate(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage <= 0 {
		t.Error("coverage rate is zero")
	}
	if len(rep.MissedReasons) == 0 {
		t.Error("missed-reason histogram is empty")
	}
	wantUnits := len(allKernels()) + 10
	if rep.Units != wantUnits {
		t.Errorf("units = %d, want %d (kernels + corpus)", rep.Units, wantUnits)
	}
	units := make(map[string]bool)
	for _, g := range rep.Groups {
		units[g.Unit] = true
	}
	for _, k := range kernelUnits() {
		if !units[k] {
			t.Errorf("kernel %s missing from the report", k)
		}
	}
	var buf bytes.Buffer
	rep.WriteTable(&buf, false)
	if buf.Len() == 0 {
		t.Error("empty coverage table")
	}
}

// TestGateTripsWhenCoalescerDegrades is the acceptance criterion end to
// end: degrading the coalescer (runtime checks disabled — loops that
// needed them flip Passed→Missed) must trip the -gate diff against a
// healthy baseline, and an identical re-run must pass it.
func TestGateTripsWhenCoalescerDegrades(t *testing.T) {
	o := testOptions()
	baseline, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}

	// Identical re-run: clean diff, gate passes.
	again, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}
	d, err := report.DiffReports(baseline, again)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions)+len(d.Wins)+len(d.Added)+len(d.Removed) != 0 {
		t.Fatalf("identical re-run diffed dirty: %+v", d)
	}
	if err := d.Gate(); err != nil {
		t.Fatalf("gate failed on identical re-run: %v", err)
	}

	// Sabotaged run: the coalescer loses its runtime checks.
	o.sabotage = true
	degraded, err := generate(o)
	if err != nil {
		t.Fatal(err)
	}
	d, err = report.DiffReports(baseline, degraded)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) == 0 {
		t.Fatal("disabling runtime checks caused no Passed→Missed regressions; gate demo is vacuous")
	}
	if err := d.Gate(); err == nil {
		t.Fatal("gate passed despite coalescing regressions")
	}
	if degraded.Coverage >= baseline.Coverage {
		t.Errorf("coverage did not drop: %.3f -> %.3f", baseline.Coverage, degraded.Coverage)
	}
}
