// Command optreport is the optimization observatory's front end: it runs
// the eight paper kernels and a seeded rtlgen corpus of generated mini-C
// programs through every machine model and coalescing configuration,
// folds the resulting optimization remarks into one macc-optreport/v1
// artifact (BENCH_optreport.json), and renders the coalescing coverage
// table the paper's statistical claim is judged by.
//
//	optreport -out BENCH_optreport.json          regenerate the artifact
//	optreport -diff old.json new.json            show verdict flips
//	optreport -diff old.json new.json -gate      exit nonzero on regressions
//
// Every corpus compile is differentially checked: the optimized program's
// behaviour fingerprint must match its unoptimized compile, so the report
// doubles as a miscompile hunt (the count must be zero). The diff matches
// loops by their stable identity key (unit:fn/loop), classifies
// Passed→Missed flips as regressions and Missed→Passed flips as wins, and
// -gate turns any regression — including a previously-Passed loop that
// vanished — into a CI failure, the committed-baseline pattern hotpath and
// loadgen use for performance applied to optimizer decisions.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/rtlgen"
	"macc/internal/telemetry"
	"macc/internal/telemetry/report"
)

func main() {
	out := flag.String("out", "BENCH_optreport.json", "write the artifact to this path (\"-\" for stdout)")
	corpusN := flag.Int("corpus", 200, "number of generated corpus programs (0 disables the corpus)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	machinesFlag := flag.String("machines", "alpha,m88100,m68030", "comma-separated machine models")
	workers := flag.Int("j", 0, "parallel compile workers (0 = GOMAXPROCS)")
	md := flag.Bool("md", false, "render tables as markdown instead of aligned text")
	diff := flag.Bool("diff", false, "diff two artifacts: optreport -diff old.json new.json")
	gate := flag.Bool("gate", false, "with -diff: exit nonzero on any coalescing regression")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /metrics/history on this address while running")
	flag.Parse()

	if *diff {
		// Standard flag parsing stops at the first positional, so in the
		// documented form `optreport -diff old.json new.json -gate` the
		// trailing -gate arrives as an argument; honor it either way.
		var paths []string
		for _, a := range flag.Args() {
			if a == "-gate" || a == "--gate" {
				*gate = true
				continue
			}
			paths = append(paths, a)
		}
		if len(paths) != 2 {
			fatal(fmt.Errorf("-diff needs exactly two artifact paths, got %d", len(paths)))
		}
		runDiff(paths[0], paths[1], *gate)
		return
	}

	if *debugAddr != "" {
		addr, err := telemetry.StartDebugServer(*debugAddr, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "optreport: debug server on %s\n", addr)
	}

	machines, err := parseMachines(*machinesFlag)
	if err != nil {
		fatal(err)
	}
	o := options{
		corpus:   *corpusN,
		seed:     *seed,
		machines: machines,
		workers:  *workers,
		workload: bench.SmallWorkload(),
	}
	rep, err := generate(o)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fatal(err)
	}

	fmt.Println("Paper kernels:")
	rep.WriteGroupTable(os.Stdout, *md, kernelUnits()...)
	fmt.Println("\nCoverage:")
	rep.WriteTable(os.Stdout, *md)
}

// options parameterizes one report generation run.
type options struct {
	corpus   int
	seed     int64
	machines []*machine.Machine
	workers  int
	workload bench.Workload
	// sabotage disables the coalescer's runtime checks, flipping
	// runtime-check-dependent loops from Passed to Missed. It exists so the
	// gate can be demonstrated end to end (see main_test.go); there is no
	// flag for it.
	sabotage bool
}

// corpusDesc identifies the workload; diffs refuse mismatched descriptions.
func (o options) corpusDesc() string {
	names := make([]string, len(o.machines))
	for i, m := range o.machines {
		names[i] = m.Name
	}
	return fmt.Sprintf("%d paper kernels + %d rtlgen programs (seed %d) on %s",
		len(allKernels()), o.corpus, o.seed, strings.Join(names, ","))
}

func allKernels() []bench.Benchmark {
	return append(bench.Benchmarks(), bench.DotProduct())
}

func kernelUnits() []string {
	var units []string
	for _, b := range allKernels() {
		units = append(units, b.Entry)
	}
	return units
}

// generate runs kernels and corpus through every machine × configuration
// and folds the remark streams into one report.
func generate(o options) (*report.Report, error) {
	builder := report.NewBuilder()

	// Kernels: measured through the bench harness, so every compile is also
	// validated against its Go reference before its remarks count.
	type job struct {
		b     bench.Benchmark
		m     *machine.Machine
		cname string
	}
	var jobs []job
	for _, b := range allKernels() {
		for _, m := range o.machines {
			for _, cname := range bench.CorpusConfigs {
				jobs = append(jobs, job{b, m, cname})
			}
		}
	}
	workers := o.workers
	if workers <= 0 {
		workers = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []string
		ch   = make(chan job)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				cfg := bench.NamedConfig(j.cname, j.m)
				cfg.Unit = j.b.Entry
				cfg.Coalesce.NoRuntimeChecks = o.sabotage
				rec := telemetry.NewRecorder()
				if _, err := bench.MeasureTraced(j.b, cfg, o.workload, rec); err != nil {
					mu.Lock()
					errs = append(errs, err.Error())
					mu.Unlock()
					continue
				}
				builder.Add(j.m.Name, j.cname, rec.Remarks())
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if len(errs) > 0 {
		sort.Strings(errs)
		return nil, fmt.Errorf("kernel measurement failed:\n  %s", strings.Join(errs, "\n  "))
	}

	// Corpus: differentially checked generated programs.
	if o.corpus > 0 {
		progs := rtlgen.Corpus(o.seed, o.corpus)
		outcome := bench.RunCorpus(progs, o.machines, o.workers,
			func(mname, cname string, rec *telemetry.Recorder) {
				builder.Add(mname, cname, rec.Remarks())
			})
		if !outcome.Ok() {
			all := append(outcome.Miscompiles, outcome.Failures...)
			return nil, fmt.Errorf("corpus run not clean (%d miscompiles, %d failures):\n  %s",
				len(outcome.Miscompiles), len(outcome.Failures), strings.Join(all, "\n  "))
		}
		fmt.Fprintf(os.Stderr, "optreport: corpus ok: %d programs, %d compiles, 0 miscompiles\n",
			outcome.Programs, outcome.Compiles)
	}

	return builder.Build(o.corpusDesc()), nil
}

func runDiff(oldPath, newPath string, gate bool) {
	oldRep, err := readReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fatal(err)
	}
	d, err := report.DiffReports(oldRep, newRep)
	if err != nil {
		fatal(err)
	}
	d.WriteText(os.Stdout)
	if gate {
		if err := d.Gate(); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "optreport: gate clean vs", oldPath)
	}
}

func readReport(path string) (*report.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := report.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func parseMachines(s string) ([]*machine.Machine, error) {
	var ms []*machine.Machine
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := machine.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown machine %q", name)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, fmt.Errorf("no machines selected")
	}
	return ms, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "optreport:", err)
	os.Exit(1)
}
