// Command loadgen replays multi-tenant compile-farm traffic against one or
// more maccd replicas and verifies every answer differentially: each
// completed /compile must return RTL byte-identical to a local uncached
// compile of the same source, and each completed /run must report the same
// return value and cycle count as a local simulation. Chaos in the farm
// (sabotaged peers, failing disks, killed replicas) may therefore cost
// latency or throughput, but any correctness loss fails the run loudly.
//
// Traffic shape: a fixed number of tenants whose request frequencies follow
// a Zipf distribution (a few hot tenants, a long cold tail — each tenant's
// sources are distinct, so hot tenants exercise the cache tiers and cold
// ones force compiles), a configurable batch-priority fraction, and a
// compile/run split. The whole stream is seeded and closed-loop: a worker
// sends its next request when the previous one completes.
//
//	loadgen -targets http://localhost:8080,http://localhost:8081 \
//	        -requests 400 -concurrency 8 -seed 42 -out BENCH_service.json
//
// The artifact records latency quantiles, saturation throughput, shed and
// error counts, the farm-wide peer-hit ratio, and breaker trips. Every
// request is distributed-traced: the slowest N land in the artifact with
// their trace IDs and per-hop span breakdowns (pull the full tree from any
// replica at /debug/trace/<id>), and the embedded client metrics snapshot
// carries latency-bucket exemplars naming the same traces. A second
// invocation gates on an artifact (optionally against a baseline):
//
//	loadgen -gate BENCH_service.json -baseline BENCH_single.json -max-5xx-frac 0.02
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macc"
	"macc/internal/bench"
	"macc/internal/core"
	"macc/internal/farm"
	"macc/internal/machine"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
)

// Schema identifies the artifact format.
const Schema = "macc-service/v1"

// kernel is one workload shape in the corpus; every tenant gets its own
// variant of each kernel (distinct source, hence distinct cache key).
type kernel struct {
	name string
	src  string
	call string
	data []farm.DataWrite
	mem  int
}

// corpus builds the kernel set. The shapes mirror the paper's kernels —
// reductions, elementwise image ops, and a store-heavy update loop — sized
// so a single compile stays in the milliseconds.
func corpus() []kernel {
	n := 64
	ints := make([]int64, n)
	for i := range ints {
		ints[i] = int64((i*7 + 3) % 251)
	}
	data := []farm.DataWrite{{Addr: 4096, Width: 4, Ints: ints}}
	data2 := []farm.DataWrite{
		{Addr: 4096, Width: 4, Ints: ints},
		{Addr: 8192, Width: 4, Ints: ints},
	}
	return []kernel{
		{
			name: "sum",
			src:  "int sum(int *a, int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }",
			call: fmt.Sprintf("sum(4096,%d)", n),
			data: data, mem: 1 << 16,
		},
		{
			name: "dot",
			src:  "int dot(int *a, int *b, int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; } return s; }",
			call: fmt.Sprintf("dot(4096,8192,%d)", n),
			data: data2, mem: 1 << 16,
		},
		{
			name: "scale",
			src:  "int scale(int *a, int *b, int n) { int i; for (i = 0; i < n; i = i + 1) { b[i] = a[i] * 3 + 1; } return b[n - 1]; }",
			call: fmt.Sprintf("scale(4096,8192,%d)", n),
			data: data, mem: 1 << 16,
		},
		{
			name: "diff",
			src:  "int diff(int *a, int *b, int n) { int s; int i; s = 0; for (i = 0; i < n; i = i + 1) { s = s + a[i] - b[i] / 2; } return s; }",
			call: fmt.Sprintf("diff(4096,8192,%d)", n),
			data: data2, mem: 1 << 16,
		},
	}
}

// tenantSrc derives tenant t's variant of a kernel: an extra private
// function changes the translation unit (and so the content address and
// code layout) without changing the entry point's behaviour.
func tenantSrc(k kernel, t int) string {
	return fmt.Sprintf("%s\nint tenant%d(int x) { return x + %d; }\n", k.src, t, t*13+1)
}

// reference is the local ground truth for one exact source.
type reference struct {
	rtl    string
	ret    int64
	cycles int64
}

// refStore computes-and-caches local reference compiles/runs keyed by the
// exact source text.
type refStore struct {
	mu   sync.Mutex
	refs map[string]*reference
}

// get returns the reference for (src, k), compiling and simulating locally
// on first use. The config mirrors maccd's defaults exactly.
func (rs *refStore) get(src string, k kernel) (*reference, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if r, ok := rs.refs[src]; ok {
		return r, nil
	}
	m, _ := machine.ByName("alpha")
	prog, err := macc.Compile(src, macc.Config{
		Machine:  m,
		Optimize: true,
		Schedule: true,
		Unroll:   true,
		Coalesce: core.Options{Loads: true, Stores: true},
	})
	if err != nil {
		return nil, fmt.Errorf("reference compile: %w", err)
	}
	r := &reference{rtl: prog.RTL.String()}
	s := prog.NewSim(k.mem)
	defer s.Release()
	for _, d := range k.data {
		s.WriteInts(d.Addr, 4, d.Ints)
	}
	name, args, err := parseCall(k.call)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(name, args...)
	if err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}
	r.ret, r.cycles = res.Ret, res.Cycles
	if rs.refs == nil {
		rs.refs = make(map[string]*reference)
	}
	rs.refs[src] = r
	return r, nil
}

// Artifact is the persisted measurement (BENCH_service.json).
type Artifact struct {
	Schema string `json:"schema"`
	// Provenance records where the measurement ran (git commit, Go
	// version, OS/arch, CPUs); the gate refuses relative throughput
	// comparisons across differing hosts.
	Provenance  bench.Provenance `json:"provenance"`
	Label       string           `json:"label,omitempty"`
	Targets     []string         `json:"targets"`
	Requests    int              `json:"requests"`
	Concurrency int              `json:"concurrency"`
	Tenants     int              `json:"tenants"`
	Zipf        float64          `json:"zipf"`
	Seed        int64            `json:"seed"`
	BatchFrac   float64          `json:"batch_frac"`
	RunFrac     float64          `json:"run_frac"`
	Chaos       string           `json:"chaos,omitempty"`

	DurationNS    int64   `json:"duration_ns"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`

	Completed    int64 `json:"completed"`
	Shed         int64 `json:"shed"`
	HTTP5xx      int64 `json:"http_5xx"`
	ClientErrors int64 `json:"client_errors"`
	Miscompiles  int64 `json:"miscompiles"`

	PeerHits     int64   `json:"peer_hits"`
	PeerHitRatio float64 `json:"peer_hit_ratio"`
	BreakerTrips int64   `json:"breaker_trips"`
	Hedges       int64   `json:"hedges"`
	Retries      int64   `json:"retries"`
	CacheHits    int64   `json:"cache_hits"`
	TornWrites   int64   `json:"recovered_torn"`

	// Slowest names the tail: the slowest completed requests with their
	// distributed-trace IDs (fetchable from any replica at
	// /debug/trace/<id>) and per-hop span breakdowns.
	Slowest []SlowRequest `json:"slowest,omitempty"`
	// ClientMetrics embeds the load generator's own registry snapshot in
	// the shared macc-metrics/v1 envelope (latency exemplars included).
	ClientMetrics *telemetry.Snapshot `json:"client_metrics,omitempty"`
}

// SlowRequest is one tail-latency exemplar: enough to pull the full trace
// and see where the time went without re-running anything.
type SlowRequest struct {
	Trace    string `json:"trace"`
	NS       int64  `json:"ns"`
	Kernel   string `json:"kernel"`
	Tenant   int    `json:"tenant"`
	Endpoint string `json:"endpoint"`
	// Spans counts the assembled trace's spans; BreakdownNS sums span
	// durations by kind (ingress, attempt, cache, compute, pass, ...).
	// Zero/nil when the trace could not be fetched back.
	Spans       int              `json:"spans,omitempty"`
	BreakdownNS map[string]int64 `json:"breakdown_ns,omitempty"`
}

// slowTracker keeps the N slowest completed requests, concurrency-safe.
type slowTracker struct {
	mu  sync.Mutex
	n   int
	top []SlowRequest
}

func (st *slowTracker) offer(s SlowRequest) {
	if st.n <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.top = append(st.top, s)
	sort.Slice(st.top, func(i, j int) bool { return st.top[i].NS > st.top[j].NS })
	if len(st.top) > st.n {
		st.top = st.top[:st.n]
	}
}

func main() {
	targets := flag.String("targets", "", "comma-separated maccd base URLs")
	requests := flag.Int("requests", 200, "total requests to send")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers")
	tenants := flag.Int("tenants", 4, "distinct tenants (Zipf-distributed request shares)")
	zipfS := flag.Float64("zipf", 1.2, "Zipf exponent for tenant popularity (> 1)")
	seed := flag.Int64("seed", 42, "deterministic traffic seed")
	batchFrac := flag.Float64("batch-frac", 0.3, "fraction of requests sent at batch priority")
	runFrac := flag.Float64("run-frac", 0.1, "fraction of requests that are /run (rest /compile)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-attempt request timeout")
	out := flag.String("out", "BENCH_service.json", "artifact output path")
	label := flag.String("label", "", "free-form label recorded in the artifact")
	chaos := flag.String("chaos", "", "chaos spec in effect on the targets (recorded, not enforced)")
	slowest := flag.Int("slowest", 5, "slowest requests to record with trace IDs and span breakdowns (0: off)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/pprof and /metrics/history over the client registry on this address")

	gate := flag.String("gate", "", "gate mode: path of the artifact to check (skips load generation)")
	baseline := flag.String("baseline", "", "gate mode: artifact to beat on throughput")
	max5xxFrac := flag.Float64("max-5xx-frac", 0.02, "gate mode: max hard-failure fraction of requests")
	flag.Parse()

	if *gate != "" {
		os.Exit(runGate(*gate, *baseline, *max5xxFrac))
	}
	if *targets == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -targets required (or -gate for gate mode)")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -zipf must be > 1")
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	if *debugAddr != "" {
		addr, err := telemetry.StartDebugServer(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: debug server on %s\n", addr)
	}

	art, err := run(urls, reg, *requests, *concurrency, *tenants, *zipfS, *seed, *batchFrac, *runFrac, *timeout, *slowest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	art.Label = *label
	art.Chaos = *chaos

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	f.Close()

	fmt.Printf("loadgen: %d/%d completed, %.1f req/s, p50 %v p99 %v, shed %d, 5xx %d, miscompiles %d, peer hits %d (ratio %.2f), breaker trips %d\n",
		art.Completed, art.Requests, art.ThroughputRPS,
		time.Duration(art.P50NS), time.Duration(art.P99NS),
		art.Shed, art.HTTP5xx, art.Miscompiles, art.PeerHits, art.PeerHitRatio, art.BreakerTrips)
	if art.Miscompiles > 0 {
		fmt.Fprintln(os.Stderr, "loadgen: MISCOMPILES DETECTED")
		os.Exit(1)
	}
}

// run drives the closed-loop workers and assembles the artifact. reg is
// the client-side metrics registry (nil: a fresh one), shared with the
// -debug-addr continuous-profiling surface when enabled.
func run(urls []string, reg *telemetry.Registry, requests, concurrency, tenants int, zipfS float64, seed int64,
	batchFrac, runFrac float64, timeout time.Duration, slowest int) (*Artifact, error) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tracer := dtrace.New("loadgen", 0)
	client := farm.NewClient(farm.ClientOptions{
		Peers:          urls,
		AttemptTimeout: timeout,
		Seed:           seed,
		Metrics:        reg,
		Tracer:         tracer,
	})
	defer client.Close()

	kernels := corpus()
	refs := &refStore{}
	// Precompute every (kernel, tenant) source and its reference before
	// timing starts, so reference compiles don't pollute the measurement.
	srcs := make([][]string, len(kernels))
	for ki, k := range kernels {
		srcs[ki] = make([]string, tenants)
		for t := 0; t < tenants; t++ {
			srcs[ki][t] = tenantSrc(k, t)
			if _, err := refs.get(srcs[ki][t], k); err != nil {
				return nil, fmt.Errorf("kernel %s tenant %d: %w", k.name, t, err)
			}
		}
	}

	var completed, shed, http5xx, clientErrs, miscompiles atomic.Int64
	// Request latency lives in the client registry so the artifact's
	// embedded snapshot carries the histogram and its trace exemplars.
	lat := client.Metrics().Histogram("loadgen.request_ns")
	slow := &slowTracker{n: slowest}

	start := time.Now()
	var wg sync.WaitGroup
	idxc := make(chan int)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(worker)*7919))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(tenants-1))
			for range idxc {
				tenant := int(zipf.Uint64())
				ki := rng.Intn(len(kernels))
				k := kernels[ki]
				src := srcs[ki][tenant]
				ref, err := refs.get(src, k)
				if err != nil {
					clientErrs.Add(1)
					continue
				}
				req := farm.CompileRequest{Source: src}
				if rng.Float64() < batchFrac {
					req.Priority = farm.PriorityBatch
				}
				isRun := rng.Float64() < runFrac
				endpoint := "/compile"
				if isRun {
					endpoint = "/run"
				}

				// Every request is a trace: the root span's context rides
				// the farm client's attempt legs into the serving replica.
				root := tracer.StartRoot(endpoint+" "+k.name, dtrace.KindRequest)
				root.SetAttr("kernel", k.name)
				root.SetAttr("tenant", fmt.Sprintf("%d", tenant))
				ctx := dtrace.ContextWith(context.Background(), root.Context())

				t0 := time.Now()
				var ok, wrong bool
				if isRun {
					var resp farm.RunResponse
					_, err = client.PostJSON(ctx, "/run",
						farm.RunRequest{CompileRequest: req, Call: k.call, Mem: k.mem, Data: k.data}, &resp)
					ok = err == nil
					wrong = ok && (resp.Ret != ref.ret || resp.Cycles != ref.cycles)
				} else {
					var resp farm.CompileResponse
					_, err = client.PostJSON(ctx, "/compile", req, &resp)
					ok = err == nil
					wrong = ok && resp.RTL != ref.rtl
				}
				elapsed := time.Since(t0).Nanoseconds()
				if err != nil {
					root.SetErr(err.Error())
				}
				root.End()
				switch {
				case wrong:
					miscompiles.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: MISCOMPILE kernel=%s tenant=%d run=%v\n", k.name, tenant, isRun)
				case ok:
					completed.Add(1)
					// The exemplar ties the latency bucket to the trace, so
					// a fat tail in the artifact names traces to pull.
					lat.ObserveExemplar(elapsed, root.TraceID())
					slow.offer(SlowRequest{
						Trace: root.TraceID(), NS: elapsed,
						Kernel: k.name, Tenant: tenant, Endpoint: endpoint,
					})
				default:
					var se *farm.StatusError
					switch {
					case errors.As(err, &se) && se.Code == http.StatusServiceUnavailable:
						shed.Add(1)
					case errors.As(err, &se):
						http5xx.Add(1)
					default:
						clientErrs.Add(1)
					}
				}
			}
		}(w)
	}
	for i := 0; i < requests; i++ {
		idxc <- i
	}
	close(idxc)
	wg.Wait()
	elapsed := time.Since(start)

	client.PublishStats()
	creg := client.Metrics()
	art := &Artifact{
		Schema:        Schema,
		Provenance:    bench.NewProvenance(Schema),
		Targets:       urls,
		Requests:      requests,
		Concurrency:   concurrency,
		Tenants:       tenants,
		Zipf:          zipfS,
		Seed:          seed,
		BatchFrac:     batchFrac,
		RunFrac:       runFrac,
		DurationNS:    elapsed.Nanoseconds(),
		ThroughputRPS: float64(completed.Load()) / elapsed.Seconds(),
		P50NS:         lat.Quantile(0.50),
		P99NS:         lat.Quantile(0.99),
		Completed:     completed.Load(),
		Shed:          shed.Load(),
		HTTP5xx:       http5xx.Load(),
		ClientErrors:  clientErrs.Load(),
		Miscompiles:   miscompiles.Load(),
		Hedges:        creg.CounterValue("farm.hedges"),
		Retries:       creg.CounterValue("farm.retries"),
	}

	// Scrape every replica's final metrics for the farm-side counters.
	for _, u := range urls {
		snap, err := scrape(u)
		if err != nil {
			continue // a killed replica has no final metrics
		}
		art.PeerHits += snap.Counters["ccache.peer_hits"]
		art.CacheHits += snap.Counters["ccache.mem_hits"] + snap.Counters["ccache.disk_hits"]
		art.TornWrites += snap.Counters["ccache.recovered_torn"]
		art.BreakerTrips += int64(snap.Gauges["farm.breaker_trips"])
	}
	if c := completed.Load(); c > 0 {
		art.PeerHitRatio = float64(art.PeerHits) / float64(c)
	}

	// Push the slowest traces' client-side spans to the farm, then pull
	// each assembled trace back for its per-hop breakdown.
	slow.mu.Lock()
	art.Slowest = append([]SlowRequest(nil), slow.top...)
	slow.mu.Unlock()
	for i := range art.Slowest {
		s := &art.Slowest[i]
		client.ReportTrace(context.Background(), s.Trace)
		if spans := fetchTrace(urls, s.Trace); len(spans) > 0 {
			s.Spans = len(spans)
			s.BreakdownNS = make(map[string]int64)
			for _, sp := range spans {
				s.BreakdownNS[sp.Kind] += sp.Dur
			}
		}
	}

	snap := creg.Snapshot()
	snap.Service = "loadgen"
	art.ClientMetrics = &snap
	return art, nil
}

// fetchTrace pulls one assembled trace's raw spans from the first replica
// that has it (best-effort: a dead replica just yields no breakdown).
func fetchTrace(urls []string, traceID string) []dtrace.Span {
	c := &http.Client{Timeout: 5 * time.Second}
	for _, u := range urls {
		resp, err := c.Get(u + farm.DebugTracePrefix + traceID + "?format=spans")
		if err != nil {
			continue
		}
		var dump farm.TraceDump
		err = json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&dump)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK && len(dump.Spans) > 0 {
			return dump.Spans
		}
	}
	return nil
}

// scrapeSnapshot is the subset of a /metrics answer the artifact needs.
type scrapeSnapshot struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

func scrape(base string) (*scrapeSnapshot, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	var snap scrapeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// runGate checks an artifact against the correctness and resilience
// acceptance bars; returns the process exit code.
func runGate(path, baselinePath string, max5xxFrac float64) int {
	cur, err := loadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen gate:", err)
		return 1
	}
	failed := false
	check := func(ok bool, format string, args ...any) {
		if ok {
			return
		}
		failed = true
		fmt.Fprintf(os.Stderr, "loadgen gate: FAIL: "+format+"\n", args...)
	}
	check(cur.Schema == Schema, "schema %q, want %q", cur.Schema, Schema)
	check(cur.Miscompiles == 0, "%d miscompiles — completed responses must be byte-identical to local compiles", cur.Miscompiles)
	check(cur.Completed > 0, "no requests completed")
	frac := 0.0
	if cur.Requests > 0 {
		frac = float64(cur.HTTP5xx+cur.ClientErrors) / float64(cur.Requests)
	}
	check(frac <= max5xxFrac, "hard-failure fraction %.3f exceeds budget %.3f (5xx=%d client=%d; 503 shed excluded)",
		frac, max5xxFrac, cur.HTTP5xx, cur.ClientErrors)
	if len(cur.Targets) > 1 {
		check(cur.PeerHits > 0, "multi-replica run with zero verified peer cache hits")
	}
	if baselinePath != "" {
		base, err := loadArtifact(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen gate:", err)
			return 1
		}
		if cur.Provenance.SameHost(base.Provenance) {
			check(cur.ThroughputRPS > base.ThroughputRPS,
				"farm throughput %.1f req/s does not beat baseline %.1f req/s",
				cur.ThroughputRPS, base.ThroughputRPS)
		} else {
			fmt.Fprintf(os.Stderr,
				"loadgen gate: baseline host differs (%s vs %s): throughput comparison skipped\n",
				base.Provenance.Host(), cur.Provenance.Host())
		}
	}
	if failed {
		return 1
	}
	fmt.Printf("loadgen gate: PASS (%d completed, %.1f req/s, %d peer hits, %d breaker trips)\n",
		cur.Completed, cur.ThroughputRPS, cur.PeerHits, cur.BreakerTrips)
	return 0
}

func loadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &a, nil
}

// parseCall parses "fn(1,2,3)" into a name and integer arguments.
func parseCall(s string) (string, []int64, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("want fn(arg,...), got %q", s)
	}
	name := strings.TrimSpace(s[:open])
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	var args []int64
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			var v int64
			if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
				return "", nil, fmt.Errorf("bad argument %q", part)
			}
			args = append(args, v)
		}
	}
	return name, args, nil
}
