package macc_test

import (
	"strings"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/faultinject"
	"macc/internal/telemetry"
)

// TestEveryExaminedLoopGetsOneRemark is the issue's acceptance criterion:
// every loop the coalescer examines yields exactly one Passed or Missed
// remark, each carrying a machine-readable reason token.
func TestEveryExaminedLoopGetsOneRemark(t *testing.T) {
	for _, src := range []string{dotSrc, bench.ConvolutionSrc, bench.EqntottSrc, bench.MirrorSrc} {
		rec := telemetry.NewRecorder()
		cfg := macc.DefaultConfig()
		cfg.Telemetry = rec
		p, err := macc.Compile(src, cfg)
		if err != nil {
			t.Fatal(err)
		}
		perLoop := make(map[string]int)
		for _, r := range rec.Remarks() {
			if r.Pass != "coalesce" || (r.Kind != telemetry.Passed && r.Kind != telemetry.Missed) {
				continue
			}
			perLoop[r.Fn+"/"+r.Loop]++
			if r.Reason == "" || !strings.Contains(r.Reason, ":") {
				t.Errorf("remark %s has no machine-readable reason token", r)
			}
		}
		for key, n := range perLoop {
			if n != 1 {
				t.Errorf("loop %s got %d Passed/Missed remarks, want exactly 1", key, n)
			}
		}
		if got, want := len(perLoop), len(p.Reports); got != want {
			t.Errorf("%d loops remarked but %d loop reports: every examined loop must be remarked", got, want)
		}
		examined := rec.Metrics().CounterValue("coalesce.loops_examined")
		if examined != int64(len(perLoop)) {
			t.Errorf("coalesce.loops_examined = %d, remarked loops = %d", examined, len(perLoop))
		}
	}
}

// TestRollbackRetractsCoalesceRemarks drives the staging semantics through
// the real pipeline: a fault injected into the coalesce pass must retract
// every remark and metric delta the pass staged, while leaving a span marked
// rolled back that lines up with Program.Diagnostics.
func TestRollbackRetractsCoalesceRemarks(t *testing.T) {
	rec := telemetry.NewRecorder()
	inj := &faultinject.Injector{Pass: "coalesce", Kind: faultinject.ClobberReg, Seed: 1}
	cfg := macc.DefaultConfig()
	cfg.Telemetry = rec
	cfg.WrapPass = inj.Hook()
	p, err := macc.Compile(dotSrc, cfg)
	if err != nil {
		t.Fatalf("non-strict compile died: %v", err)
	}
	if !inj.Fired() {
		t.Fatal("injector never fired; test exercises nothing")
	}
	if !p.Diagnostics.Degraded() {
		t.Fatal("fault was not caught; pipeline hardening regressed")
	}

	for _, r := range rec.Remarks() {
		if r.Pass == "coalesce" {
			t.Errorf("rolled-back coalesce pass leaked remark: %s", r)
		}
	}
	reg := rec.Metrics()
	for _, name := range []string{"coalesce.loops_examined", "coalesce.loops_coalesced", "coalesce.wide_loads"} {
		if n := reg.CounterValue(name); n != 0 {
			t.Errorf("rolled-back pass committed %s = %d, want 0", name, n)
		}
	}
	if n := reg.CounterValue("pipeline.pass_rollbacks"); n == 0 {
		t.Error("pipeline.pass_rollbacks = 0, want at least 1")
	}

	var sawRollbackSpan bool
	for _, sp := range rec.Spans() {
		if sp.Pass == "coalesce" && sp.RolledBack {
			sawRollbackSpan = true
			if sp.Err == "" {
				t.Error("rolled-back span carries no error message")
			}
			if sp.Remarks != 0 {
				t.Errorf("rolled-back span claims %d committed remarks", sp.Remarks)
			}
		}
	}
	if !sawRollbackSpan {
		t.Error("no rolled-back coalesce span recorded; rollback linkage missing")
	}

	// The clean baseline emits coalesce remarks for the same source, so the
	// retraction above is meaningful (not just an empty pass).
	cleanRec := telemetry.NewRecorder()
	ccfg := macc.DefaultConfig()
	ccfg.Telemetry = cleanRec
	if _, err := macc.Compile(dotSrc, ccfg); err != nil {
		t.Fatal(err)
	}
	var cleanCoalesce int
	for _, r := range cleanRec.Remarks() {
		if r.Pass == "coalesce" {
			cleanCoalesce++
		}
	}
	if cleanCoalesce == 0 {
		t.Fatal("clean compile emitted no coalesce remarks; retraction test is vacuous")
	}
}

// TestSimMetricsShareRegistry checks the end-to-end wiring: a program
// compiled with a recorder feeds its simulator runs into the same registry,
// so static decisions and dynamic traffic appear side by side.
func TestSimMetricsShareRegistry(t *testing.T) {
	rec := telemetry.NewRecorder()
	cfg := macc.DefaultConfig()
	cfg.Telemetry = rec
	p, err := macc.Compile(dotSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := p.NewSim(resilienceMem)
	if _, err := s.Run("dotproduct", 0, 4096, 33); err != nil {
		t.Fatal(err)
	}
	reg := rec.Metrics()
	if n := reg.CounterValue("sim.runs"); n != 1 {
		t.Errorf("sim.runs = %d, want 1", n)
	}
	if reg.CounterValue("sim.cycles") == 0 || reg.CounterValue("sim.mem_refs") == 0 {
		t.Error("simulator counters missing from the shared registry")
	}
	if reg.CounterValue("coalesce.loops_examined") == 0 {
		t.Error("static coalesce counters missing from the shared registry")
	}
}
