package faultinject_test

import (
	"errors"
	"testing"

	"macc/internal/faultinject"
	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtl"
	"macc/internal/rtlgen"
)

func genFn(t *testing.T, seed int64) *rtl.Fn {
	t.Helper()
	f, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// branchyFn guarantees control flow so RetargetBranch always has a victim:
//
//	f(a,b,c) { if (a) M[64] = b; else M[64] = c; return M[64] }
func branchyFn() *rtl.Fn {
	f := rtl.NewFn("f", 3)
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	f.Entry().Instrs = append(f.Entry().Instrs, rtl.BranchI(rtl.R(f.Params[0]), then, els))
	then.Instrs = append(then.Instrs,
		rtl.StoreI(rtl.C(64), 0, rtl.R(f.Params[1]), rtl.W8), rtl.JumpI(join))
	els.Instrs = append(els.Instrs,
		rtl.StoreI(rtl.C(64), 0, rtl.R(f.Params[2]), rtl.W8), rtl.JumpI(join))
	r := f.NewReg()
	join.Instrs = append(join.Instrs,
		rtl.LoadI(r, rtl.C(64), 0, rtl.W8, true), rtl.RetI(rtl.R(r)))
	return f
}

var testArgs = [][]int64{{0, 0, 0}, {1, 2, 3}, {255, 1023, -7}}

func behavior(t *testing.T, f *rtl.Fn) string {
	t.Helper()
	fp, err := pipeline.Behavior(rtl.NewProgram(f), machine.M68030(), rtlgen.MemWindow*2, f.Name, testArgs)
	if err != nil {
		t.Fatalf("behavior: %v", err)
	}
	return fp
}

// TestStructuralFaultsAreCaughtAndRolledBack injects every checkpoint-visible
// fault into a pass and asserts the hardened pipeline's contract: the fault
// is caught, the function rolls back to bit-identical simulator behaviour,
// and the incident names the sabotaged pass.
func TestStructuralFaultsAreCaughtAndRolledBack(t *testing.T) {
	kinds := []faultinject.Kind{
		faultinject.Panic, faultinject.ClobberReg,
		faultinject.DropTerminator, faultinject.RetargetBranch,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			fired := 0
			for seed := int64(0); seed < 20; seed++ {
				f := genFn(t, seed)
				if seed == 0 {
					f = branchyFn() // every kind has a victim here
				}
				want := behavior(t, f)
				orig := f.String()

				inj := &faultinject.Injector{Pass: "victim", Kind: kind, Seed: seed}
				diags := &pipeline.Diagnostics{}
				passes := []pipeline.Pass{
					inj.Wrap(pipeline.Pass{Name: "victim", Run: func(*rtl.Fn) error { return nil }}),
				}
				if err := pipeline.Run(f, passes, pipeline.Options{Diags: diags}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !inj.Fired() {
					// The seed's function had no eligible victim (e.g. no
					// branch to retarget); the compile must stay clean.
					if diags.Degraded() {
						t.Fatalf("seed %d: incident without an injection: %+v", seed, diags.Incidents)
					}
					continue
				}
				fired++
				if len(diags.Incidents) != 1 || diags.Incidents[0].Pass != "victim" {
					t.Fatalf("seed %d: fault not caught/attributed: %+v", seed, diags.Incidents)
				}
				if f.String() != orig {
					t.Fatalf("seed %d: function not rolled back", seed)
				}
				if behavior(t, f) != want {
					t.Fatalf("seed %d: behaviour not bit-identical after rollback", seed)
				}
			}
			if fired < 3 {
				t.Fatalf("injector fired on only %d/20 seeds", fired)
			}
		})
	}
}

// TestFlipOpIsSilentButBisectable: the semantic fault passes the verifier
// (a silent miscompile), so the pipeline cannot catch it — but differential
// bisection attributes it.
func TestFlipOpIsSilentButBisectable(t *testing.T) {
	// Find a seed whose function has a flippable op that actually changes
	// behaviour; the injection itself must stay checkpoint-invisible.
	var (
		orig, f *rtl.Fn
		want    string
		seed    int64
	)
	for seed = 0; ; seed++ {
		if seed == 30 {
			t.Fatal("no seed in 0..29 produced a divergent flip")
		}
		orig = genFn(t, seed)
		want = behavior(t, orig)
		f = orig.Clone()
		inj := &faultinject.Injector{Pass: "victim", Kind: faultinject.FlipOp, Seed: seed}
		diags := &pipeline.Diagnostics{}
		passes := []pipeline.Pass{
			{Name: "pre", Run: func(*rtl.Fn) error { return nil }},
			inj.Wrap(pipeline.Pass{Name: "victim", Run: func(*rtl.Fn) error { return nil }}),
			{Name: "post", Run: func(*rtl.Fn) error { return nil }},
		}
		if err := pipeline.Run(f, passes, pipeline.Options{Diags: diags}); err != nil {
			t.Fatal(err)
		}
		if diags.Degraded() {
			t.Fatalf("seed %d: flip-op should evade the structural checkpoint, got %+v", seed, diags.Incidents)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: flip-op must keep the function verifiable: %v", seed, err)
		}
		if inj.Fired() && behavior(t, f) != want {
			break
		}
	}

	// A fresh injector reproduces the same corruption during bisection and
	// the differential predicate pins it on the sabotaged pass.
	inj2 := &faultinject.Injector{Pass: "victim", Kind: faultinject.FlipOp, Seed: seed}
	passes2 := []pipeline.Pass{
		{Name: "pre", Run: func(*rtl.Fn) error { return nil }},
		inj2.Wrap(pipeline.Pass{Name: "victim", Run: func(*rtl.Fn) error { return nil }}),
		{Name: "post", Run: func(*rtl.Fn) error { return nil }},
	}
	bad := func(f *rtl.Fn) error {
		if behavior(t, f) != want {
			return errors.New("diverges from reference")
		}
		return nil
	}
	res, err := pipeline.Bisect(func() *rtl.Fn { return orig.Clone() }, passes2, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Pass != "victim" {
		t.Fatalf("bisect = %v, want victim", res)
	}
}

// TestDeterminism: equal seeds corrupt identically, so every failure
// reproduces exactly.
func TestDeterminism(t *testing.T) {
	corrupt := func() string {
		f := genFn(t, 7)
		inj := &faultinject.Injector{Pass: "p", Kind: faultinject.ClobberReg, Seed: 42}
		inj.Wrap(pipeline.Pass{Name: "p", Run: func(*rtl.Fn) error { return nil }}).Run(f)
		return f.String()
	}
	if corrupt() != corrupt() {
		t.Error("same seed must inject the same corruption")
	}
}

func TestWrapLeavesOtherPassesAlone(t *testing.T) {
	inj := &faultinject.Injector{Pass: "victim", Kind: faultinject.Panic}
	p := pipeline.Pass{Name: "other", Run: func(*rtl.Fn) error { return nil }}
	if err := inj.Wrap(p).Run(genFn(t, 0)); err != nil {
		t.Fatal(err)
	}
	if inj.Fired() {
		t.Error("injector fired on a pass it does not target")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range faultinject.Kinds() {
		got, err := faultinject.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := faultinject.ParseKind("nonsense"); err == nil {
		t.Error("ParseKind must reject unknown kinds")
	}
}

// flatten wraps f in a single-function flat program.
func flatten(t *testing.T, f *rtl.Fn) *rtl.FlatProgram {
	t.Helper()
	fp, err := rtl.Flatten(rtl.NewProgram(f))
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	return fp
}

// TestFlatStructuralFaultsAreCaughtAndRolledBack is the flat-pipeline twin of
// TestStructuralFaultsAreCaughtAndRolledBack: every checkpoint-visible fault,
// injected as a direct mutation of the struct-of-arrays form, must be caught
// by VerifyFn, rolled back by the flat snapshot journal to a byte-identical
// image with bit-identical behaviour, and attributed to the sabotaged pass.
func TestFlatStructuralFaultsAreCaughtAndRolledBack(t *testing.T) {
	kinds := []faultinject.Kind{
		faultinject.Panic, faultinject.ClobberReg,
		faultinject.DropTerminator, faultinject.RetargetBranch,
	}
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			fired := 0
			for seed := int64(0); seed < 20; seed++ {
				f := genFn(t, seed)
				if seed == 0 {
					f = branchyFn() // every kind has a victim here
				}
				want := behavior(t, f)
				fp := flatten(t, f)
				orig, err := fp.Unflatten()
				if err != nil {
					t.Fatalf("seed %d: unflatten: %v", seed, err)
				}
				origText := orig.String()

				inj := &faultinject.Injector{Pass: "victim", Kind: kind, Seed: seed}
				diags := &pipeline.Diagnostics{}
				passes := []pipeline.FlatPass{
					inj.WrapFlat(pipeline.FlatPass{Name: "victim",
						Run: func(*rtl.FlatProgram, int) error { return nil }}),
				}
				if err := pipeline.RunFlat(fp, 0, passes, pipeline.Options{Diags: diags}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !inj.Fired() {
					if diags.Degraded() {
						t.Fatalf("seed %d: incident without an injection: %+v", seed, diags.Incidents)
					}
					continue
				}
				fired++
				if len(diags.Incidents) != 1 || diags.Incidents[0].Pass != "victim" {
					t.Fatalf("seed %d: fault not caught/attributed: %+v", seed, diags.Incidents)
				}
				back, err := fp.Unflatten()
				if err != nil {
					t.Fatalf("seed %d: unflatten after rollback: %v", seed, err)
				}
				if back.String() != origText {
					t.Fatalf("seed %d: flat image not rolled back", seed)
				}
				if behavior(t, back.Fns[0]) != want {
					t.Fatalf("seed %d: behaviour not bit-identical after rollback", seed)
				}
			}
			if fired < 3 {
				t.Fatalf("injector fired on only %d/20 seeds", fired)
			}
		})
	}
}

// TestFlatFlipOpIsSilent: the semantic fault must evade the flat verifier
// exactly as it evades the graph one — the pipeline keeps the corrupted
// image, visible only to differential execution.
func TestFlatFlipOpIsSilent(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := genFn(t, seed)
		fp := flatten(t, f)
		inj := &faultinject.Injector{Pass: "victim", Kind: faultinject.FlipOp, Seed: seed}
		diags := &pipeline.Diagnostics{}
		passes := []pipeline.FlatPass{
			inj.WrapFlat(pipeline.FlatPass{Name: "victim",
				Run: func(*rtl.FlatProgram, int) error { return nil }}),
		}
		if err := pipeline.RunFlat(fp, 0, passes, pipeline.Options{Diags: diags}); err != nil {
			t.Fatal(err)
		}
		if diags.Degraded() {
			t.Fatalf("seed %d: flip-op should evade the flat checkpoint, got %+v", seed, diags.Incidents)
		}
		if err := fp.VerifyFn(0); err != nil {
			t.Fatalf("seed %d: flip-op must keep the image verifiable: %v", seed, err)
		}
		if inj.Fired() {
			return
		}
	}
	t.Fatal("no seed in 0..29 had a flippable op")
}
