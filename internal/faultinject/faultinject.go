// Package faultinject provides deterministic, seedable fault injectors that
// sabotage optimization passes on purpose: they wrap a pipeline.Pass so that
// after the real pass runs, the function is corrupted (or the pass panics).
// The injectors exist to prove the hardened pipeline's guarantees — every
// injected fault must be caught by the per-pass checkpoint, rolled back to
// behaviour bit-identical with the unoptimized build, and attributed to the
// sabotaged pass by pipeline.Bisect.
package faultinject

import (
	"fmt"
	"math/rand"

	"macc/internal/pipeline"
	"macc/internal/rtl"
)

// Kind selects the fault to inject.
type Kind int

const (
	// Panic makes the pass panic after running.
	Panic Kind = iota
	// ClobberReg rewrites one source operand to a register outside the
	// function's pool (caught by the verifier's register check).
	ClobberReg
	// DropTerminator deletes one block's terminator instruction (caught
	// by the verifier's block-shape check).
	DropTerminator
	// RetargetBranch points one control transfer at a block that does not
	// belong to the function (caught by the verifier's edge check).
	RetargetBranch
	// FlipOp swaps one arithmetic/compare opcode for its opposite
	// (Add<->Sub, SetLT<->SetGE, ...). The result still verifies — this
	// is a silent miscompile, visible only to differential execution, and
	// exercises the behavioural predicates of pipeline.Bisect.
	FlipOp
)

var kindNames = map[Kind]string{
	Panic:          "panic",
	ClobberReg:     "clobber-reg",
	DropTerminator: "drop-terminator",
	RetargetBranch: "retarget-branch",
	FlipOp:         "flip-op",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every injectable fault.
func Kinds() []Kind {
	return []Kind{Panic, ClobberReg, DropTerminator, RetargetBranch, FlipOp}
}

// ParseKind resolves a fault name as printed by Kind.String.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown fault kind %q (want panic, clobber-reg, drop-terminator, retarget-branch, or flip-op)", s)
}

// Injector sabotages the named pass. The zero Seed is valid; equal seeds
// pick the same victim instruction, so failures reproduce exactly.
type Injector struct {
	Pass string // name of the pass to sabotage; "" sabotages every pass
	Kind Kind
	Seed int64

	fired bool
}

// Fired reports whether the injector actually corrupted (or panicked) at
// least one function. It stays false when the sabotaged pass never ran or
// the function had no instruction eligible for the chosen fault.
func (in *Injector) Fired() bool { return in.fired }

// Hook returns a pass wrapper suitable for macc's Config.WrapPass: passes
// other than the target are returned unchanged.
func (in *Injector) Hook() func(pipeline.Pass) pipeline.Pass {
	return in.Wrap
}

// Wrap returns p with the fault appended to its Run step. The pass keeps
// its name and OnSuccess hook, so a caught fault suppresses the pass's side
// records exactly as a real pass bug would.
func (in *Injector) Wrap(p pipeline.Pass) pipeline.Pass {
	if in.Pass != "" && p.Name != in.Pass {
		return p
	}
	inner := p.Run
	p.Run = func(f *rtl.Fn) error {
		if inner != nil {
			if err := inner(f); err != nil {
				return err
			}
		}
		in.apply(f)
		return nil
	}
	return p
}

// HookFlat returns the flat-pipeline counterpart of Hook.
func (in *Injector) HookFlat() func(pipeline.FlatPass) pipeline.FlatPass {
	return in.WrapFlat
}

// WrapFlat is Wrap for the flat pipeline: the same faults, expressed as
// array mutations on the struct-of-arrays form, so the flat journal's
// catch/rollback/attribute contract is provable under identical sabotage.
func (in *Injector) WrapFlat(p pipeline.FlatPass) pipeline.FlatPass {
	if in.Pass != "" && p.Name != in.Pass {
		return p
	}
	inner := p.Run
	p.Run = func(fp *rtl.FlatProgram, fi int) error {
		if inner != nil {
			if err := inner(fp, fi); err != nil {
				return err
			}
		}
		in.applyFlat(fp, fi)
		return nil
	}
	return p
}

// applyFlat corrupts function fi of fp (or panics) according to the
// injector's kind, mutating the flat arrays directly.
func (in *Injector) applyFlat(fp *rtl.FlatProgram, fi int) {
	f := &fp.Fns[fi]
	rng := rand.New(rand.NewSource(in.Seed))
	switch in.Kind {
	case Panic:
		in.fired = true
		panic(fmt.Sprintf("faultinject: injected panic in %s", fp.Syms[f.Name]))
	case ClobberReg:
		var cands []*rtl.Operand
		for i := int32(0); i < int32(f.NumInstrs()); i++ {
			f.SrcSlots(i, func(o *rtl.Operand) {
				if o.Kind == rtl.KindReg {
					cands = append(cands, o)
				}
			})
		}
		if len(cands) == 0 {
			return
		}
		cands[rng.Intn(len(cands))].Reg = rtl.Reg(f.NumRegs() + 7)
		in.fired = true
	case DropTerminator:
		bi := int32(rng.Intn(len(f.Blocks)))
		b := &f.Blocks[bi]
		if b.InstrEnd == b.InstrStart {
			return
		}
		f.SpliceInstrs(bi, b.InstrEnd-b.InstrStart-1, 1, nil)
		in.fired = true
	case RetargetBranch:
		var cands []int32
		for i := int32(0); i < int32(f.NumInstrs()); i++ {
			if f.Op[i] == rtl.Jump || f.Op[i] == rtl.Branch {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return
		}
		// A block index past the table is the flat phantom block.
		f.Target[cands[rng.Intn(len(cands))]] = int32(len(f.Blocks)) + 7
		in.fired = true
	case FlipOp:
		flip := map[rtl.Op]rtl.Op{
			rtl.Add: rtl.Sub, rtl.Sub: rtl.Add,
			rtl.SetLT: rtl.SetGE, rtl.SetGE: rtl.SetLT,
			rtl.SetEQ: rtl.SetNE, rtl.SetNE: rtl.SetEQ,
		}
		var cands []int32
		for i := int32(0); i < int32(f.NumInstrs()); i++ {
			if _, ok := flip[f.Op[i]]; ok {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return
		}
		victim := cands[rng.Intn(len(cands))]
		f.Op[victim] = flip[f.Op[victim]]
		in.fired = true
	}
}

// apply corrupts f (or panics) according to the injector's kind.
func (in *Injector) apply(f *rtl.Fn) {
	rng := rand.New(rand.NewSource(in.Seed))
	switch in.Kind {
	case Panic:
		in.fired = true
		panic(fmt.Sprintf("faultinject: injected panic in %s", f.Name))
	case ClobberReg:
		var cands []*rtl.Operand
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				for _, o := range instr.SrcOperands() {
					if _, ok := o.IsReg(); ok {
						cands = append(cands, o)
					}
				}
			}
		}
		if len(cands) == 0 {
			return
		}
		cands[rng.Intn(len(cands))].Reg = rtl.Reg(f.NumRegs() + 7)
		in.fired = true
	case DropTerminator:
		b := f.Blocks[rng.Intn(len(f.Blocks))]
		if len(b.Instrs) == 0 {
			return
		}
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		in.fired = true
	case RetargetBranch:
		var cands []*rtl.Instr
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				if instr.Op == rtl.Jump || instr.Op == rtl.Branch {
					cands = append(cands, instr)
				}
			}
		}
		if len(cands) == 0 {
			return
		}
		cands[rng.Intn(len(cands))].Target = &rtl.Block{Name: "phantom"}
		in.fired = true
	case FlipOp:
		flip := map[rtl.Op]rtl.Op{
			rtl.Add: rtl.Sub, rtl.Sub: rtl.Add,
			rtl.SetLT: rtl.SetGE, rtl.SetGE: rtl.SetLT,
			rtl.SetEQ: rtl.SetNE, rtl.SetNE: rtl.SetEQ,
		}
		var cands []*rtl.Instr
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				if _, ok := flip[instr.Op]; ok {
					cands = append(cands, instr)
				}
			}
		}
		if len(cands) == 0 {
			return
		}
		victim := cands[rng.Intn(len(cands))]
		victim.Op = flip[victim.Op]
		in.fired = true
	}
}
