package faultinject

// Service saboteurs: deterministic chaos for the compile farm. Where the
// pass saboteurs corrupt RTL to prove the pipeline's rollback guarantees,
// these corrupt the service fabric — dropped connections, delayed and
// corrupted peer responses, full disks, crashed writers — to prove the farm
// layer's guarantee: a degraded replica can cost latency, never
// correctness.

import (
	"bufio"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"macc/internal/ccache"
)

// ServiceSpec configures a ServiceSaboteur. All probabilities are in
// [0, 1] and independent per request.
type ServiceSpec struct {
	// Drop aborts the exchange with no response (connection torn down).
	Drop float64
	// Delay stalls the exchange by a uniform duration in (0, MaxDelay].
	Delay float64
	// Corrupt flips bytes in an otherwise valid response body.
	Corrupt float64
	// MaxDelay bounds injected stalls (default 50ms).
	MaxDelay time.Duration
	// DiskFull makes a cache disk write fail with ENOSPC-style errors.
	DiskFull float64
	// CrashWrite kills a cache disk write mid-stream (torn temp file,
	// journaled intent, no visible entry) as a kill -9 would.
	CrashWrite float64
	// Seed makes every coin flip reproducible; runs with equal seeds and
	// equal request orders inject identical faults.
	Seed int64
}

// ParseServiceSpec parses the -chaos flag format: comma-separated
// key=value pairs, e.g. "drop=0.05,delay=0.2,corrupt=0.05,maxdelay=50ms,
// diskfull=0.1,crashwrite=0.05,seed=42". An empty string is a no-op spec.
func ParseServiceSpec(s string) (ServiceSpec, error) {
	var spec ServiceSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return spec, fmt.Errorf("chaos: want key=value, got %q", part)
		}
		var err error
		switch k {
		case "drop":
			spec.Drop, err = parseProb(v)
		case "delay":
			spec.Delay, err = parseProb(v)
		case "corrupt":
			spec.Corrupt, err = parseProb(v)
		case "diskfull":
			spec.DiskFull, err = parseProb(v)
		case "crashwrite":
			spec.CrashWrite, err = parseProb(v)
		case "maxdelay":
			spec.MaxDelay, err = time.ParseDuration(v)
		case "seed":
			spec.Seed, err = strconv.ParseInt(v, 0, 64)
		default:
			return spec, fmt.Errorf("chaos: unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("chaos: bad %s: %v", k, err)
		}
	}
	return spec, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// Active reports whether the spec injects anything at all.
func (s ServiceSpec) Active() bool {
	return s.Drop > 0 || s.Delay > 0 || s.Corrupt > 0 || s.DiskFull > 0 || s.CrashWrite > 0
}

// ServiceSaboteur injects the spec's faults into HTTP exchanges and disk
// writes. Safe for concurrent use; the shared rng is mutex-guarded, so
// fault ordering is deterministic for a serial request stream and
// reproducibly seeded (though not order-stable) for a concurrent one.
type ServiceSaboteur struct {
	spec ServiceSpec

	mu  sync.Mutex
	rng *rand.Rand

	dropped   int64
	delayed   int64
	corrupted int64
	diskFulls int64
	crashes   int64
}

// NewServiceSaboteur builds a saboteur for the spec. The zero Seed is valid
// and deterministic.
func NewServiceSaboteur(spec ServiceSpec) *ServiceSaboteur {
	if spec.MaxDelay <= 0 {
		spec.MaxDelay = 50 * time.Millisecond
	}
	return &ServiceSaboteur{spec: spec, rng: rand.New(rand.NewSource(spec.Seed))}
}

// Counts reports how many faults of each kind fired.
func (sb *ServiceSaboteur) Counts() (dropped, delayed, corrupted, diskFulls, crashes int64) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.dropped, sb.delayed, sb.corrupted, sb.diskFulls, sb.crashes
}

// roll returns true with probability p, and a uniform delay when asked.
func (sb *ServiceSaboteur) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.rng.Float64() < p
}

func (sb *ServiceSaboteur) someDelay() time.Duration {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return time.Duration(1 + sb.rng.Int63n(int64(sb.spec.MaxDelay)))
}

// WrapHandler returns h with the saboteur in front: requests may be
// delayed, answered with corrupted bytes, or aborted mid-response. The
// farm's verification gates must turn every one of these into a retry or a
// silent miss, never a wrong answer.
func (sb *ServiceSaboteur) WrapHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sb.roll(sb.spec.Delay) {
			sb.mu.Lock()
			sb.delayed++
			sb.mu.Unlock()
			time.Sleep(sb.someDelay())
		}
		if sb.roll(sb.spec.Drop) {
			sb.mu.Lock()
			sb.dropped++
			sb.mu.Unlock()
			// Tear the connection down with no (complete) response:
			// http.ErrAbortHandler is the server's sanctioned way to
			// abort an exchange.
			panic(http.ErrAbortHandler)
		}
		if !sb.roll(sb.spec.Corrupt) {
			h.ServeHTTP(w, r)
			return
		}
		rec := &recordingWriter{header: make(http.Header)}
		h.ServeHTTP(rec, r)
		sb.mu.Lock()
		sb.corrupted++
		body := append([]byte(nil), rec.body...)
		for i := 0; i < 3 && len(body) > 0; i++ {
			body[sb.rng.Intn(len(body))] ^= 0x5a
		}
		sb.mu.Unlock()
		for k, vs := range rec.header {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = vs
		}
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		w.WriteHeader(code)
		w.Write(body)
	})
}

// recordingWriter buffers a response so the saboteur can corrupt it whole.
type recordingWriter struct {
	header http.Header
	code   int
	body   []byte
}

func (r *recordingWriter) Header() http.Header { return r.header }

func (r *recordingWriter) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}

func (r *recordingWriter) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// Transport wraps an http.RoundTripper with client-side sabotage: delayed,
// dropped, or corrupted responses as seen by the farm client. inner nil
// means http.DefaultTransport.
func (sb *ServiceSaboteur) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if sb.roll(sb.spec.Delay) {
			sb.mu.Lock()
			sb.delayed++
			sb.mu.Unlock()
			d := sb.someDelay()
			select {
			case <-time.After(d):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		}
		if sb.roll(sb.spec.Drop) {
			sb.mu.Lock()
			sb.dropped++
			sb.mu.Unlock()
			return nil, fmt.Errorf("faultinject: connection dropped")
		}
		resp, err := inner.RoundTrip(req)
		if err != nil || !sb.roll(sb.spec.Corrupt) {
			return resp, err
		}
		sb.mu.Lock()
		sb.corrupted++
		sb.mu.Unlock()
		resp.Body = &corruptReader{inner: bufio.NewReader(resp.Body), sb: sb, closer: resp.Body}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// corruptReader XORs a byte every so often as the body streams through.
type corruptReader struct {
	inner  *bufio.Reader
	sb     *ServiceSaboteur
	closer interface{ Close() error }
	n      int
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	for i := 0; i < n; i++ {
		c.n++
		if c.n%37 == 19 { // deterministic, independent of read chunking
			p[i] ^= 0x5a
		}
	}
	return n, err
}

func (c *corruptReader) Close() error { return c.closer.Close() }

// DiskFault returns a hook for ccache.Options.DiskFault that injects
// ENOSPC-style failures and mid-write crashes at the spec's rates. Wire it
// into a replica's cache to chaos-test the crash-recovery path.
func (sb *ServiceSaboteur) DiskFault() func(op string) error {
	if sb.spec.DiskFull <= 0 && sb.spec.CrashWrite <= 0 {
		return nil
	}
	return func(op string) error {
		switch op {
		case "create":
			if sb.roll(sb.spec.DiskFull) {
				sb.mu.Lock()
				sb.diskFulls++
				sb.mu.Unlock()
				return fmt.Errorf("faultinject: no space left on device")
			}
		case "write", "rename":
			if sb.roll(sb.spec.CrashWrite / 2) { // split across the two steps
				sb.mu.Lock()
				sb.crashes++
				sb.mu.Unlock()
				return ccache.ErrSimulatedCrash
			}
		}
		return nil
	}
}
