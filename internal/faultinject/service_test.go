package faultinject

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseServiceSpec(t *testing.T) {
	spec, err := ParseServiceSpec("drop=0.1,delay=0.25,corrupt=0.05,maxdelay=75ms,diskfull=0.2,crashwrite=0.3,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := ServiceSpec{Drop: 0.1, Delay: 0.25, Corrupt: 0.05,
		MaxDelay: 75 * time.Millisecond, DiskFull: 0.2, CrashWrite: 0.3, Seed: 42}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if !spec.Active() {
		t.Error("spec not Active")
	}

	empty, err := ParseServiceSpec("")
	if err != nil || empty.Active() {
		t.Errorf("empty spec: %+v err=%v, want inactive no-op", empty, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-1", "maxdelay=abc", "nonsense=1"} {
		if _, err := ParseServiceSpec(bad); err == nil {
			t.Errorf("ParseServiceSpec(%q) accepted", bad)
		}
	}
}

// TestWrapHandlerCorrupts: with corrupt=1 every response body differs from
// the handler's answer but keeps its status code.
func TestWrapHandlerCorrupts(t *testing.T) {
	sb := NewServiceSaboteur(ServiceSpec{Corrupt: 1, Seed: 7})
	payload := strings.Repeat("the quick brown fox ", 10)
	h := sb.WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, payload)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Errorf("status = %d, want teapot preserved", resp.StatusCode)
	}
	if bytes.Equal(body, []byte(payload)) {
		t.Error("corrupt=1 left the body intact")
	}
	if len(body) != len(payload) {
		t.Errorf("corruption changed the length: %d vs %d", len(body), len(payload))
	}
	_, _, corrupted, _, _ := sb.Counts()
	if corrupted != 1 {
		t.Errorf("corrupted = %d, want 1", corrupted)
	}
}

// TestWrapHandlerDrops: with drop=1 the client sees a transport error, not
// a response.
func TestWrapHandlerDrops(t *testing.T) {
	sb := NewServiceSaboteur(ServiceSpec{Drop: 1})
	ts := httptest.NewServer(sb.WrapHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "never delivered")
	})))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("dropped request produced a response: %d %q", resp.StatusCode, body)
	}
	dropped, _, _, _, _ := sb.Counts()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

// TestTransportCorrupts: the client-side saboteur corrupts bodies streaming
// through the wrapped transport.
func TestTransportCorrupts(t *testing.T) {
	payload := strings.Repeat("0123456789abcdef", 16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()

	sb := NewServiceSaboteur(ServiceSpec{Corrupt: 1, Seed: 3})
	client := &http.Client{Transport: sb.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Equal(body, []byte(payload)) {
		t.Error("transport corrupt=1 left the body intact")
	}
}

// TestTransportDeterministicWithSeed: equal seeds and request orders fire
// the same faults.
func TestTransportDeterministicWithSeed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	run := func(seed int64) []bool {
		sb := NewServiceSaboteur(ServiceSpec{Drop: 0.5, Seed: seed})
		client := &http.Client{Transport: sb.Transport(nil)}
		var outcomes []bool
		for i := 0; i < 32; i++ {
			resp, err := client.Get(ts.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: outcomes diverge under equal seeds", i)
		}
	}
	c := run(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns (suspicious)")
	}
}
