// Package machine describes the three evaluation targets of the paper — a
// DEC Alpha-like 64-bit RISC, a Motorola 88100-like 32-bit RISC, and a
// Motorola 68030-like CISC — as cost and capability models. The RTL stays
// target independent; everything the paper attributes to the instruction
// set (no narrow loads on the Alpha, cheap extract but expensive insert on
// the 88100, microcoded bit-field operations on the 68030) enters through
// these tables.
//
// Each machine carries two cost tables. Sched is what the compiler's
// instruction scheduler and the coalescer's profitability analysis believe
// (datasheet latencies); Exec is what the simulated hardware delivers. They
// coincide for the RISCs. For the 68030 the Exec table charges the
// microcode overhead of the bit-field unit that the datasheet timings
// understate, which is how the paper's "slower on every program" result
// arises even though the static profitability analysis predicted a win.
package machine

import "macc/internal/rtl"

// Costs is a latency and occupancy table in cycles. Latency (the named
// fields) is when a consumer may use the result; occupancy is how many
// issue slots the operation holds the pipeline, which models ISAs where one
// RTL operation really expands to an instruction sequence — the paper's
// central example being the Alpha, where a byte load is ldq_u plus an
// extract-and-extend sequence and a byte store is a read-modify-write.
type Costs struct {
	Alu     int // simple integer ops, moves, compares
	Mul     int // integer multiply
	Div     int // integer divide
	Load    map[rtl.Width]int
	Store   map[rtl.Width]int
	Extract int // extract a narrow field from a register
	Insert  int // deposit a narrow field into a register
	Branch  int // taken-branch penalty
	Call    int

	// Occupancy tables; missing entries (or zero values) mean one slot.
	LoadOcc    map[rtl.Width]int
	StoreOcc   map[rtl.Width]int
	ExtractOcc int
	InsertOcc  int
}

// OccOf returns how many issue slots the instruction occupies on a
// pipelined machine.
func (c *Costs) OccOf(in *rtl.Instr) int {
	occ := 1
	switch in.Op {
	case rtl.Load:
		if c.LoadOcc != nil {
			if v := c.LoadOcc[in.Width]; v > 0 {
				occ = v
			}
		}
	case rtl.Store:
		if c.StoreOcc != nil {
			if v := c.StoreOcc[in.Width]; v > 0 {
				occ = v
			}
		}
	case rtl.Extract:
		if c.ExtractOcc > 0 {
			occ = c.ExtractOcc
		}
	case rtl.Insert:
		if c.InsertOcc > 0 {
			occ = c.InsertOcc
		}
	}
	return occ
}

// Of returns the latency of one instruction under this table.
func (c *Costs) Of(in *rtl.Instr) int {
	switch in.Op {
	case rtl.Nop:
		return 1
	case rtl.Mul:
		return c.Mul
	case rtl.Div, rtl.Rem:
		return c.Div
	case rtl.Load:
		return c.Load[in.Width]
	case rtl.Store:
		return c.Store[in.Width]
	case rtl.Extract:
		return c.Extract
	case rtl.Insert:
		return c.Insert
	case rtl.Jump, rtl.Branch, rtl.Ret:
		return c.Branch
	case rtl.Call:
		return c.Call
	default:
		return c.Alu
	}
}

// Machine is one target description.
type Machine struct {
	Name string
	// WordBytes is the widest memory access the ISA supports; coalescing
	// never builds a wider reference.
	WordBytes rtl.Width
	// MustAlign requires wide accesses to be naturally aligned; violating
	// it traps in the simulator, which is why the coalescer emits run-time
	// alignment checks.
	MustAlign bool
	// Pipelined selects the pipeline model: a pipelined machine issues one
	// instruction per cycle and hides latency behind independent work,
	// while an unpipelined (microcoded) machine occupies the pipe for the
	// instruction's full cost.
	Pipelined bool
	// ICacheBytes and BytesPerInstr drive the unrolling heuristic and the
	// simulator's loop-thrash penalty: a loop body whose estimated
	// footprint exceeds the I-cache pays ICacheMissPenalty per miss.
	ICacheBytes       int
	BytesPerInstr     int
	ICacheMissPenalty int
	// DCacheBytes enables a direct-mapped data cache model (16-byte
	// lines); zero disables it. Misses stall the pipeline for
	// DCacheMissPenalty cycles. Streaming kernels miss equally with and
	// without coalescing (same lines are touched), which is what keeps the
	// paper's percentages lower than a pure-pipeline model would predict.
	DCacheBytes       int
	DCacheMissPenalty int

	Sched Costs // what the compiler believes
	Exec  Costs // what the simulated hardware delivers
}

// MaxCoalesceFactor returns how many narrow references of width w fit in
// one wide reference on this machine.
func (m *Machine) MaxCoalesceFactor(w rtl.Width) int {
	if w >= m.WordBytes {
		return 1
	}
	return int(m.WordBytes) / int(w)
}

func uniform(v int) map[rtl.Width]int {
	return map[rtl.Width]int{rtl.W1: v, rtl.W2: v, rtl.W4: v, rtl.W8: v}
}

// Alpha models a DEC Alpha 21064-class machine: 64-bit, load/store
// architecture with *no* byte or shortword memory operations. A narrow load
// really executes ldq_u plus an extract-and-sign-extend sequence, and a
// narrow store is a read-modify-write (ldq_u, insert, mask, stq_u); the
// narrow-width costs charge those sequences. Extract and insert themselves
// are single fast instructions (EXTxx/INSxx), which is exactly why
// coalescing pays off so well here.
func Alpha() *Machine {
	sched := Costs{
		Alu: 1, Mul: 6, Div: 30,
		Load:    map[rtl.Width]int{rtl.W1: 6, rtl.W2: 6, rtl.W4: 3, rtl.W8: 3},
		Store:   map[rtl.Width]int{rtl.W1: 8, rtl.W2: 8, rtl.W4: 3, rtl.W8: 3},
		Extract: 1, Insert: 2, Branch: 2, Call: 4,
		// A narrow load is ldq_u + address adjust + extract + extend; a
		// narrow store additionally merges and writes back.
		LoadOcc:  map[rtl.Width]int{rtl.W1: 4, rtl.W2: 4},
		StoreOcc: map[rtl.Width]int{rtl.W1: 5, rtl.W2: 5},
	}
	return &Machine{
		Name:              "alpha",
		WordBytes:         rtl.W8,
		MustAlign:         true,
		Pipelined:         true,
		ICacheBytes:       8 * 1024,
		BytesPerInstr:     4,
		ICacheMissPenalty: 10,
		DCacheBytes:       8 * 1024,
		DCacheMissPenalty: 16,
		Sched:             sched,
		Exec:              sched,
	}
}

// M88100 models a Motorola 88100: 32-bit RISC with byte/halfword loads and
// stores (ld.b, ld.h) and a single-cycle EXT extract instruction, but no
// insert: depositing a field costs a shift/mask/or sequence, charged on
// Insert. That asymmetry reproduces the paper's Table III, where coalescing
// loads wins but coalescing stores loses.
func M88100() *Machine {
	sched := Costs{
		Alu: 1, Mul: 4, Div: 38,
		Load:    uniform(3),
		Store:   uniform(2),
		Extract: 1, Insert: 1, Branch: 2, Call: 4,
		// The data unit sustains one memory operation every other cycle.
		LoadOcc:  uniform(2),
		StoreOcc: uniform(2),
	}
	// The compiler's tables treat a field deposit as one RTL; the hardware
	// has no insert instruction, so it really executes a shift/mask/or
	// sequence. This datasheet-vs-reality gap is how the paper's Table III
	// ends up with the loads+stores column slower than loads-only: the
	// static profitability analysis predicts a small win and applies the
	// transformation, and the measurement shows the loss.
	exec := sched
	exec.Insert = 3
	exec.InsertOcc = 3
	return &Machine{
		Name:              "m88100",
		WordBytes:         rtl.W4,
		MustAlign:         true,
		Pipelined:         true,
		ICacheBytes:       4 * 1024,
		BytesPerInstr:     4,
		ICacheMissPenalty: 8,
		DCacheBytes:       16 * 1024,
		DCacheMissPenalty: 10,
		Sched:             sched,
		Exec:              exec,
	}
}

// M68030 models a Motorola 68030: a microcoded CISC with cheap narrow
// memory operations (a byte access costs the same bus cycle as a long one)
// and bit-field extract/insert instructions (BFEXTU/BFINS) that the
// datasheet prices optimistically but that execute through slow microcode.
// The compiler's tables therefore predict a small win for coalescing while
// the hardware delivers a loss on every program — the paper's §3 result.
func M68030() *Machine {
	sched := Costs{
		Alu: 2, Mul: 28, Div: 56,
		Load:    uniform(4),
		Store:   uniform(4),
		Extract: 1, Insert: 1, Branch: 4, Call: 8,
	}
	exec := sched
	exec.Extract = 8
	exec.Insert = 10
	return &Machine{
		Name:              "m68030",
		WordBytes:         rtl.W4,
		MustAlign:         false, // the 68030 tolerates misaligned accesses
		Pipelined:         false,
		ICacheBytes:       256,
		BytesPerInstr:     4,
		ICacheMissPenalty: 6,
		DCacheBytes:       256,
		DCacheMissPenalty: 6,
		Sched:             sched,
		Exec:              exec,
	}
}

// ByName returns the named machine model.
func ByName(name string) (*Machine, bool) {
	switch name {
	case "alpha":
		return Alpha(), true
	case "m88100":
		return M88100(), true
	case "m68030":
		return M68030(), true
	}
	return nil, false
}

// All returns the three evaluation targets in the paper's order.
func All() []*Machine { return []*Machine{Alpha(), M88100(), M68030()} }
