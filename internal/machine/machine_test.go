package machine_test

import (
	"testing"

	"macc/internal/machine"
	"macc/internal/rtl"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"alpha", "m88100", "m68030"} {
		m, ok := machine.ByName(name)
		if !ok || m.Name != name {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := machine.ByName("pdp11"); ok {
		t.Error("unknown machine accepted")
	}
	if len(machine.All()) != 3 {
		t.Error("All() should return the paper's three targets")
	}
}

func TestMaxCoalesceFactor(t *testing.T) {
	alpha := machine.Alpha()
	cases := []struct {
		w    rtl.Width
		want int
	}{{rtl.W1, 8}, {rtl.W2, 4}, {rtl.W4, 2}, {rtl.W8, 1}}
	for _, c := range cases {
		if got := alpha.MaxCoalesceFactor(c.w); got != c.want {
			t.Errorf("alpha factor(%d) = %d, want %d", c.w, got, c.want)
		}
	}
	m88 := machine.M88100()
	if m88.MaxCoalesceFactor(rtl.W1) != 4 || m88.MaxCoalesceFactor(rtl.W4) != 1 {
		t.Error("m88100 factors wrong")
	}
}

func TestOccupancyDefaultsToOne(t *testing.T) {
	m := machine.M68030()
	in := rtl.LoadI(1, rtl.R(0), 0, rtl.W1, false)
	if got := m.Exec.OccOf(in); got != 1 {
		t.Errorf("occupancy default = %d, want 1", got)
	}
	alpha := machine.Alpha()
	if got := alpha.Exec.OccOf(in); got <= 1 {
		t.Errorf("alpha narrow load occupancy = %d, want the emulation sequence", got)
	}
	wide := rtl.LoadI(1, rtl.R(0), 0, rtl.W8, false)
	if got := alpha.Exec.OccOf(wide); got != 1 {
		t.Errorf("alpha wide load occupancy = %d, want 1", got)
	}
}

// TestISAShapeProperties pins the qualitative ISA facts the paper's results
// hinge on, so cost-table edits cannot silently invert the reproduction.
func TestISAShapeProperties(t *testing.T) {
	alpha, m88, m030 := machine.Alpha(), machine.M88100(), machine.M68030()

	// Alpha: narrow memory ops are much more expensive than wide ones.
	if alpha.Exec.Load[rtl.W1] <= alpha.Exec.Load[rtl.W8] {
		t.Error("alpha narrow load must out-cost wide load")
	}
	if alpha.Exec.StoreOcc[rtl.W1] <= 1 {
		t.Error("alpha narrow store must be a read-modify-write sequence")
	}
	// M88100: extract cheap, insert expensive at execution.
	if m88.Exec.Insert <= m88.Exec.Extract {
		t.Error("m88100 insert must out-cost extract")
	}
	// ...but the compiler's table understates insert (the Table III gap).
	if m88.Sched.Insert >= m88.Exec.Insert {
		t.Error("m88100 scheduler must believe the datasheet insert cost")
	}
	// M68030: extract/insert execute slower than narrow memory ops.
	if m030.Exec.Extract <= m030.Exec.Load[rtl.W1]-1 {
		t.Error("m68030 extract must rival memory cost")
	}
	if m030.Sched.Extract >= m030.Exec.Extract {
		t.Error("m68030 scheduler must underestimate extract")
	}
	if m030.Pipelined {
		t.Error("m68030 is microcoded, not pipelined")
	}
	if !alpha.MustAlign || !m88.MustAlign || m030.MustAlign {
		t.Error("alignment requirements wrong")
	}
	if alpha.WordBytes != rtl.W8 || m88.WordBytes != rtl.W4 || m030.WordBytes != rtl.W4 {
		t.Error("word widths wrong")
	}
}
