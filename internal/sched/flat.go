package sched

import (
	"macc/internal/machine"
	"macc/internal/rtl"
)

// Flat entry points for the list scheduler. Rather than re-deriving the
// dependence DAG over arrays (and risking a divergent schedule), a block
// body is decoded into a reusable scratch slab of rtl.Instr values and fed
// through the exact buildDAG/order/makespan used by the graph path — the
// permutation is then scattered back into the dense arrays. Decode+scatter
// is linear and allocation-free once the scratch is warm, and the resulting
// schedules are identical to Schedule's by construction.

// FlatScratch holds reusable decode buffers for flat scheduling calls.
type FlatScratch struct {
	instrs []rtl.Instr
	views  []*rtl.Instr
	fis    []rtl.FlatInstr
}

// decodeBody materializes block bi's body (terminator excluded) into the
// scratch and returns the instruction views plus the terminator index (-1
// when the block has none). Call argument slices alias the flat arrays —
// the DAG only reads them.
func (sc *FlatScratch) decodeBody(f *rtl.FlatFn, bi int32) ([]*rtl.Instr, int32) {
	b := &f.Blocks[bi]
	end := b.InstrEnd
	ti := int32(-1)
	if end > b.InstrStart && f.Op[end-1].IsTerminator() {
		ti = end - 1
		end--
	}
	n := int(end - b.InstrStart)
	if cap(sc.instrs) < n {
		sc.instrs = make([]rtl.Instr, n)
		sc.views = make([]*rtl.Instr, n)
	}
	sc.instrs = sc.instrs[:n]
	sc.views = sc.views[:n]
	for j := 0; j < n; j++ {
		i := b.InstrStart + int32(j)
		in := &sc.instrs[j]
		*in = rtl.Instr{
			Op: f.Op[i], Dst: f.Dst[i], A: f.A[i], B: f.B[i], C: f.C[i],
			Width: f.Width[i], Signed: f.Signed[i], Disp: f.Disp[i],
		}
		if ci := f.CallIdx[i]; ci >= 0 {
			c := &f.Calls[ci]
			in.Args = f.Args[c.ArgStart:c.ArgEnd]
		}
		sc.views[j] = in
	}
	return sc.views, ti
}

// EstimateFlat is Estimate for block bi of a flat function.
func EstimateFlat(f *rtl.FlatFn, bi int32, m *machine.Machine, sc *FlatScratch) int {
	body, ti := sc.decodeBody(f, bi)
	nodes := buildDAG(body, &m.Sched)
	ord := order(nodes)
	cycles := makespan(nodes, ord, &m.Sched, m.Pipelined)
	if ti >= 0 {
		var term rtl.Instr
		term.Op = f.Op[ti]
		cycles += m.Sched.Of(&term)
	}
	return cycles
}

// ScheduleFlat is Schedule for block bi: the body is reordered in place in
// the dense arrays according to the list schedule.
func ScheduleFlat(f *rtl.FlatFn, bi int32, m *machine.Machine, sc *FlatScratch) int {
	body, ti := sc.decodeBody(f, bi)
	nodes := buildDAG(body, &m.Sched)
	ord := order(nodes)
	cycles := makespan(nodes, ord, &m.Sched, m.Pipelined)
	b := &f.Blocks[bi]
	n := len(body)
	if cap(sc.fis) < n {
		sc.fis = make([]rtl.FlatInstr, n)
	}
	sc.fis = sc.fis[:n]
	for j := 0; j < n; j++ {
		sc.fis[j] = f.Instr(b.InstrStart + int32(j))
	}
	for pos, j := range ord {
		f.SetInstr(b.InstrStart+int32(pos), sc.fis[j])
	}
	if ti >= 0 {
		var term rtl.Instr
		term.Op = f.Op[ti]
		cycles += m.Sched.Of(&term)
	}
	return cycles
}

// ScheduleFlatFn schedules every block of flat function fi.
func ScheduleFlatFn(fp *rtl.FlatProgram, fi int, m *machine.Machine) {
	f := &fp.Fns[fi]
	var sc FlatScratch
	for bi := range f.Blocks {
		ScheduleFlat(f, int32(bi), m, &sc)
	}
}
