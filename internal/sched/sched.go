// Package sched implements the dependence-DAG list scheduler vpo applies to
// basic blocks. The coalescer's profitability analysis (Figure 3 of the
// paper) calls Estimate on the original loop body and on the coalesced
// copy and keeps whichever needs fewer cycles, so the scheduler's cost
// model is the machine's Sched table — what the compiler believes, which on
// the 68030 deliberately diverges from what the simulator delivers.
package sched

import (
	"sort"

	"macc/internal/machine"
	"macc/internal/rtl"
)

type node struct {
	in       *rtl.Instr
	idx      int
	preds    []pred
	nsucc    []int
	priority int // longest latency path to any sink
	indeg    int
}

type pred struct {
	idx int
	lat int // cycles that must elapse between issue of pred and this
}

// buildDAG constructs dependence edges over the block body (terminator
// excluded): register RAW/WAR/WAW, memory ordering with base+displacement
// disambiguation, and call barriers.
func buildDAG(instrs []*rtl.Instr, costs *machine.Costs) []*node {
	n := len(instrs)
	nodes := make([]*node, n)
	for i, in := range instrs {
		nodes[i] = &node{in: in, idx: i}
	}
	addEdge := func(from, to, lat int) {
		if from == to {
			return
		}
		nodes[to].preds = append(nodes[to].preds, pred{idx: from, lat: lat})
		nodes[from].nsucc = append(nodes[from].nsucc, to)
		nodes[to].indeg++
	}

	lastDef := make(map[rtl.Reg]int) // reg -> instr index of last definition
	lastUses := make(map[rtl.Reg][]int)
	var memOps []int
	lastBarrier := -1
	var regs []rtl.Reg

	defsBetween := func(r rtl.Reg, i, j int) bool {
		for k := i + 1; k <= j; k++ {
			if d, ok := instrs[k].Def(); ok && d == r {
				return true
			}
		}
		return false
	}
	overlaps := func(a, b *rtl.Instr) bool {
		ra, okA := a.A.IsReg()
		rb, okB := b.A.IsReg()
		if !okA || !okB || ra != rb {
			return true // different or unknown bases: assume aliasing
		}
		aLo, aHi := a.Disp, a.Disp+int64(a.Width)
		bLo, bHi := b.Disp, b.Disp+int64(b.Width)
		return aLo < bHi && bLo < aHi
	}

	for i, in := range instrs {
		// Register RAW edges.
		regs = in.Uses(regs[:0])
		for _, r := range regs {
			if di, ok := lastDef[r]; ok {
				addEdge(di, i, costs.Of(instrs[di]))
			}
		}
		// Register WAR and WAW edges.
		if d, ok := in.Def(); ok {
			for _, ui := range lastUses[d] {
				addEdge(ui, i, 0)
			}
			if di, ok := lastDef[d]; ok {
				addEdge(di, i, 0)
			}
		}
		// Memory ordering.
		if in.Op == rtl.Call {
			for _, mi := range memOps {
				addEdge(mi, i, 0)
			}
			if lastBarrier >= 0 {
				addEdge(lastBarrier, i, 0)
			}
			lastBarrier = i
		}
		if lastBarrier >= 0 && in.IsMem() {
			addEdge(lastBarrier, i, 0)
		}
		if in.IsMem() {
			for _, mi := range memOps {
				prev := instrs[mi]
				if prev.Op == rtl.Load && in.Op == rtl.Load {
					continue // loads commute
				}
				// A store is involved: keep order unless provably disjoint.
				if br, ok := in.A.IsReg(); ok {
					if pbr, ok2 := prev.A.IsReg(); ok2 && br == pbr && defsBetween(br, mi, i) {
						addEdge(mi, i, 0) // base changed: cannot disambiguate
						continue
					}
				}
				if overlaps(prev, in) {
					lat := 0
					if prev.Op == rtl.Store && in.Op == rtl.Load {
						lat = costs.Of(prev) // store-to-load forwarding delay
					}
					addEdge(mi, i, lat)
				}
			}
			memOps = append(memOps, i)
		}

		// Update tables.
		for _, r := range regs {
			lastUses[r] = append(lastUses[r], i)
		}
		if d, ok := in.Def(); ok {
			lastDef[d] = i
			lastUses[d] = nil
		}
	}

	// Priorities: longest path (by latency) to a sink, computed backwards.
	for i := n - 1; i >= 0; i-- {
		nd := nodes[i]
		nd.priority = costs.Of(nd.in)
		for _, s := range nd.nsucc {
			// Edge latency is stored on the successor's pred entry; use the
			// conservative producer latency for the path metric.
			if p := nodes[s].priority + costs.Of(nd.in); p > nd.priority {
				nd.priority = p
			}
		}
	}
	return nodes
}

// order produces a list schedule: repeatedly issue the ready node with the
// longest critical path, tie-broken by original position (stability).
func order(nodes []*node) []int {
	n := len(nodes)
	indeg := make([]int, n)
	for i, nd := range nodes {
		indeg[i] = nd.indeg
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			na, nb := nodes[ready[a]], nodes[ready[b]]
			if na.priority != nb.priority {
				return na.priority > nb.priority
			}
			return na.idx < nb.idx
		})
		pick := ready[0]
		ready = ready[1:]
		out = append(out, pick)
		for _, s := range nodes[pick].nsucc {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return out
}

// makespan simulates in-order single-issue execution of the given order and
// returns the cycle count, mirroring the simulator's pipeline model.
func makespan(nodes []*node, ord []int, costs *machine.Costs, pipelined bool) int {
	issueAt := make([]int, len(nodes))
	clock := 0
	for _, i := range ord {
		nd := nodes[i]
		start := clock
		for _, p := range nd.preds {
			if t := issueAt[p.idx] + p.lat; t > start {
				start = t
			}
		}
		issueAt[i] = start
		if pipelined {
			clock = start + costs.OccOf(nd.in)
		} else {
			clock = start + costs.Of(nd.in)
		}
	}
	// Account for the block's terminator/branch overhead.
	return clock
}

// Estimate returns the scheduled cycle count of the block body without
// modifying it.
func Estimate(b *rtl.Block, m *machine.Machine) int {
	body := b.Body()
	nodes := buildDAG(body, &m.Sched)
	ord := order(nodes)
	cycles := makespan(nodes, ord, &m.Sched, m.Pipelined)
	if t := b.Term(); t != nil {
		cycles += m.Sched.Of(t)
	}
	return cycles
}

// Schedule reorders the block body in place according to the list schedule
// and returns the estimated cycle count.
func Schedule(b *rtl.Block, m *machine.Machine) int {
	body := b.Body()
	nodes := buildDAG(body, &m.Sched)
	ord := order(nodes)
	cycles := makespan(nodes, ord, &m.Sched, m.Pipelined)
	newBody := make([]*rtl.Instr, 0, len(body))
	for _, i := range ord {
		newBody = append(newBody, nodes[i].in)
	}
	if t := b.Term(); t != nil {
		newBody = append(newBody, t)
		cycles += m.Sched.Of(t)
	}
	b.Instrs = newBody
	return cycles
}

// ScheduleFn schedules every block of the function.
func ScheduleFn(f *rtl.Fn, m *machine.Machine) {
	for _, b := range f.Blocks {
		Schedule(b, m)
	}
}
