package sched_test

import (
	"testing"

	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/sched"
)

func block(f *rtl.Fn, ins ...*rtl.Instr) *rtl.Block {
	b := f.Entry()
	b.Instrs = ins
	return b
}

// order returns the position of each instruction after scheduling.
func positions(b *rtl.Block) map[*rtl.Instr]int {
	m := make(map[*rtl.Instr]int)
	for i, in := range b.Instrs {
		m[in] = i
	}
	return m
}

func TestScheduleKeepsDataDependences(t *testing.T) {
	f := rtl.NewFn("t", 2)
	a, b := f.Params[0], f.Params[1]
	t1, t2, t3 := f.NewReg(), f.NewReg(), f.NewReg()
	i1 := rtl.BinI(rtl.Add, t1, rtl.R(a), rtl.R(b))
	i2 := rtl.BinI(rtl.Mul, t2, rtl.R(t1), rtl.C(3))
	i3 := rtl.BinI(rtl.Add, t3, rtl.R(t2), rtl.C(1))
	bb := block(f, i1, i2, i3, rtl.RetI(rtl.R(t3)))
	sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if !(pos[i1] < pos[i2] && pos[i2] < pos[i3]) {
		t.Errorf("RAW chain reordered: %v", bb.Instrs)
	}
	if bb.Term().Op != rtl.Ret {
		t.Error("terminator must stay last")
	}
}

func TestScheduleHoistsLoadsAboveIndependentWork(t *testing.T) {
	// load late in the block with a dependent add after: the scheduler
	// should pull the load early so its latency overlaps the alu chain.
	f := rtl.NewFn("t", 2)
	p := f.Params[0]
	x := f.Params[1]
	t1, t2, v, s := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	a1 := rtl.BinI(rtl.Add, t1, rtl.R(x), rtl.C(1))
	a2 := rtl.BinI(rtl.Add, t2, rtl.R(t1), rtl.C(1))
	ld := rtl.LoadI(v, rtl.R(p), 0, rtl.W8, false)
	use := rtl.BinI(rtl.Add, s, rtl.R(v), rtl.R(t2))
	bb := block(f, a1, a2, ld, use, rtl.RetI(rtl.R(s)))
	cycles := sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if pos[ld] != 0 {
		t.Errorf("load not hoisted to front: %v", bb.Instrs)
	}
	if cycles <= 0 {
		t.Errorf("cycles = %d", cycles)
	}
}

func TestScheduleRespectsMemoryOrder(t *testing.T) {
	// store then load of a possibly-aliasing address must not swap.
	f := rtl.NewFn("t", 2)
	p, q := f.Params[0], f.Params[1]
	v := f.NewReg()
	st := rtl.StoreI(rtl.R(p), 0, rtl.C(1), rtl.W4)
	ld := rtl.LoadI(v, rtl.R(q), 0, rtl.W4, true)
	bb := block(f, st, ld, rtl.RetI(rtl.R(v)))
	sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if pos[st] > pos[ld] {
		t.Error("aliasing store/load reordered")
	}
}

func TestScheduleDisambiguatesSameBase(t *testing.T) {
	// store [p+0] and load [p+8] cannot alias: the load (with a long
	// dependent chain behind it) may move above the store.
	f := rtl.NewFn("t", 2)
	p := f.Params[0]
	x := f.Params[1]
	v, s, u1, u2 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	slow := rtl.BinI(rtl.Mul, s, rtl.R(x), rtl.R(x))
	st := rtl.StoreI(rtl.R(p), 0, rtl.R(s), rtl.W4)
	ld := rtl.LoadI(v, rtl.R(p), 8, rtl.W4, true)
	use1 := rtl.BinI(rtl.Mul, u1, rtl.R(v), rtl.R(v))
	use2 := rtl.BinI(rtl.Add, u2, rtl.R(u1), rtl.C(1))
	bb := block(f, slow, st, ld, use1, use2, rtl.RetI(rtl.R(u2)))
	sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if pos[ld] > pos[st] {
		t.Errorf("provably disjoint load stuck behind store: %v", bb.Instrs)
	}
	// Sanity: with an overlapping displacement the order must hold.
	f2 := rtl.NewFn("t2", 2)
	p2, x2 := f2.Params[0], f2.Params[1]
	v2, s2, w1, w2 := f2.NewReg(), f2.NewReg(), f2.NewReg(), f2.NewReg()
	slow2 := rtl.BinI(rtl.Mul, s2, rtl.R(x2), rtl.R(x2))
	st2 := rtl.StoreI(rtl.R(p2), 0, rtl.R(s2), rtl.W4)
	ld2 := rtl.LoadI(v2, rtl.R(p2), 2, rtl.W4, true) // overlaps [0,4)
	useA := rtl.BinI(rtl.Mul, w1, rtl.R(v2), rtl.R(v2))
	useB := rtl.BinI(rtl.Add, w2, rtl.R(w1), rtl.C(1))
	bb2 := block(f2, slow2, st2, ld2, useA, useB, rtl.RetI(rtl.R(w2)))
	sched.Schedule(bb2, machine.Alpha())
	pos2 := positions(bb2)
	if pos2[ld2] < pos2[st2] {
		t.Errorf("overlapping load hoisted above store: %v", bb2.Instrs)
	}
}

func TestScheduleKeepsOrderWhenBaseChanges(t *testing.T) {
	// p is rewritten between two references that use "the same" register;
	// they are not comparable and must stay ordered.
	f := rtl.NewFn("t", 1)
	p := f.Params[0]
	v := f.NewReg()
	st := rtl.StoreI(rtl.R(p), 0, rtl.C(7), rtl.W4)
	bump := rtl.BinI(rtl.Add, p, rtl.R(p), rtl.C(8))
	ld := rtl.LoadI(v, rtl.R(p), 0, rtl.W4, true)
	bb := block(f, st, bump, ld, rtl.RetI(rtl.R(v)))
	sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if !(pos[st] < pos[bump] && pos[bump] < pos[ld]) {
		t.Errorf("reordered across base update: %v", bb.Instrs)
	}
}

func TestCallIsBarrier(t *testing.T) {
	f := rtl.NewFn("t", 1)
	p := f.Params[0]
	v := f.NewReg()
	d := f.NewReg()
	st := rtl.StoreI(rtl.R(p), 0, rtl.C(1), rtl.W4)
	call := rtl.CallI(d, "g")
	ld := rtl.LoadI(v, rtl.R(p), 0, rtl.W4, true)
	bb := block(f, st, call, ld, rtl.RetI(rtl.R(v)))
	sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if !(pos[st] < pos[call] && pos[call] < pos[ld]) {
		t.Errorf("memory moved across call: %v", bb.Instrs)
	}
}

func TestEstimateDoesNotMutate(t *testing.T) {
	f := rtl.NewFn("t", 2)
	a, b := f.Params[0], f.Params[1]
	t1, t2 := f.NewReg(), f.NewReg()
	i1 := rtl.BinI(rtl.Mul, t1, rtl.R(a), rtl.R(b))
	i2 := rtl.BinI(rtl.Add, t2, rtl.R(a), rtl.C(1))
	bb := block(f, i1, i2, rtl.RetI(rtl.R(t2)))
	before := append([]*rtl.Instr(nil), bb.Instrs...)
	c1 := sched.Estimate(bb, machine.Alpha())
	for i := range before {
		if bb.Instrs[i] != before[i] {
			t.Fatal("Estimate reordered the block")
		}
	}
	c2 := sched.Schedule(bb, machine.Alpha())
	if c1 != c2 {
		t.Errorf("Estimate (%d) and Schedule (%d) disagree", c1, c2)
	}
}

func TestUnpipelinedCostIsSumOfCosts(t *testing.T) {
	f := rtl.NewFn("t", 2)
	a, b := f.Params[0], f.Params[1]
	t1, t2 := f.NewReg(), f.NewReg()
	i1 := rtl.BinI(rtl.Add, t1, rtl.R(a), rtl.R(b))
	i2 := rtl.BinI(rtl.Add, t2, rtl.R(a), rtl.R(b))
	bb := block(f, i1, i2, rtl.RetI(rtl.R(t2)))
	m := machine.M68030()
	got := sched.Estimate(bb, m)
	want := 2*m.Sched.Alu + m.Sched.Branch
	if got != want {
		t.Errorf("unpipelined estimate = %d, want %d", got, want)
	}
}

func TestSchedulingReducesEstimatedCycles(t *testing.T) {
	// Two independent load->use pairs: interleaving hides latency.
	f := rtl.NewFn("t", 2)
	p, q := f.Params[0], f.Params[1]
	v1, v2, s1, s2, s3 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	ins := []*rtl.Instr{
		rtl.LoadI(v1, rtl.R(p), 0, rtl.W8, false),
		rtl.BinI(rtl.Add, s1, rtl.R(v1), rtl.C(1)),
		rtl.LoadI(v2, rtl.R(q), 0, rtl.W8, false),
		rtl.BinI(rtl.Add, s2, rtl.R(v2), rtl.C(1)),
		rtl.BinI(rtl.Add, s3, rtl.R(s1), rtl.R(s2)),
		rtl.RetI(rtl.R(s3)),
	}
	bb := block(f, ins...)
	// Cost of the original order, simulated naively: load latency stalls
	// both adds. After scheduling the loads should lead.
	after := sched.Schedule(bb, machine.Alpha())
	pos := positions(bb)
	if pos[ins[2]] > pos[ins[1]] {
		t.Errorf("independent load not hoisted: %v", bb.Instrs)
	}
	if after <= 0 {
		t.Error("bad cycle estimate")
	}
}
