package opt_test

import (
	"testing"

	"macc/internal/opt"
	"macc/internal/rtl"
	"macc/internal/rtlgen"
)

// runTwin applies graphPass to a pointer-graph copy and flatPass to a flat
// copy of the same generated function and requires byte-identical printed
// RTL afterwards — the unit-level pin behind the whole-pipeline
// differentials: each flat pass must be indistinguishable from its twin.
func runTwin(t *testing.T, name string, graphPass func(*rtl.Fn) bool, flatPass func(*rtl.FlatProgram, int) bool) {
	t.Helper()
	seeds := int64(120)
	if testing.Short() {
		seeds = 20
	}
	for seed := int64(1); seed <= seeds; seed++ {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		prog := &rtl.Program{Fns: []*rtl.Fn{fn}}
		fp, err := rtl.Flatten(prog)
		if err != nil {
			t.Fatalf("seed %d: flatten: %v", seed, err)
		}

		gChanged := graphPass(fn)
		fChanged := flatPass(fp, 0)
		if gChanged != fChanged {
			t.Fatalf("%s seed %d: changed disagrees: graph=%v flat=%v", name, seed, gChanged, fChanged)
		}
		if err := fp.VerifyFn(0); err != nil {
			t.Fatalf("%s seed %d: flat verify: %v", name, seed, err)
		}
		back, err := fp.Unflatten()
		if err != nil {
			t.Fatalf("%s seed %d: unflatten: %v", name, seed, err)
		}
		want, got := prog.String(), back.String()
		if want != got {
			t.Fatalf("%s seed %d: flat output differs:\n--- graph ---\n%s\n--- flat ---\n%s", name, seed, want, got)
		}
	}
}

func TestFlatPassTwins(t *testing.T) {
	cases := []struct {
		name  string
		graph func(*rtl.Fn) bool
		flat  func(*rtl.FlatProgram, int) bool
	}{
		{"RemoveUnreachable", opt.RemoveUnreachable, opt.FlatRemoveUnreachable},
		{"FoldConstants", opt.FoldConstants, opt.FlatFoldConstants},
		{"PropagateLocal", opt.PropagateLocal, opt.FlatPropagateLocal},
		{"PropagateImmutable", opt.PropagateImmutable, opt.FlatPropagateImmutable},
		{"LocalCSE", opt.LocalCSE, opt.FlatLocalCSE},
		{"CollapseMovChains", opt.CollapseMovChains, opt.FlatCollapseMovChains},
		{"Peephole", opt.Peephole, opt.FlatPeephole},
		{"DeadCodeElim", opt.DeadCodeElim, opt.FlatDeadCodeElim},
		{"GlobalDCE", opt.GlobalDCE, opt.FlatGlobalDCE},
		{"EliminateDeadIVs", opt.EliminateDeadIVs, opt.FlatEliminateDeadIVs},
		{"ThreadJumps", opt.ThreadJumps, opt.FlatThreadJumps},
		{"NormalizeAddresses", opt.NormalizeAddresses, opt.FlatNormalizeAddresses},
		{"Clean", opt.Clean, opt.FlatClean},
		{"Clean+ThreadJumps", func(f *rtl.Fn) bool {
			c := opt.Clean(f)
			return opt.ThreadJumps(f) || c
		}, func(fp *rtl.FlatProgram, fi int) bool {
			c := opt.FlatClean(fp, fi)
			return opt.FlatThreadJumps(fp, fi) || c
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) { runTwin(t, tc.name, tc.graph, tc.flat) })
	}
}
