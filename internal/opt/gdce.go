package opt

import (
	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
)

// GlobalDCE removes pure instructions whose destination is dead at the
// definition point, using liveness rather than use counts. The distinction
// matters after loop replication: the unroller's mov-backs restore
// loop-carried names for the *other* loop version, so every register has
// textual uses somewhere, but inside one version many of those values are
// never live — use-count DCE keeps them, liveness kills them. Iterates to a
// fixpoint since removing one dead definition can kill the chain feeding it.
func GlobalDCE(f *rtl.Fn) bool {
	changedEver := false
	for {
		g := cfg.New(f)
		lv := dataflow.ComputeLiveness(g)
		changed := false
		var regs []rtl.Reg
		for _, b := range f.Blocks {
			if !g.Reachable(b) {
				continue
			}
			live := lv.LiveOutSet(b).Clone()
			// Walk backwards; an instruction whose def is not live here is
			// removable when side-effect free.
			kept := make([]*rtl.Instr, 0, len(b.Instrs))
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				d, hasDef := in.Def()
				if hasDef && !live.Has(int(d)) && sideEffectFree(in) {
					changed = true
					continue
				}
				if hasDef {
					live.Clear(int(d))
				}
				regs = in.Uses(regs[:0])
				for _, r := range regs {
					live.Set(int(r))
				}
				kept = append(kept, in)
			}
			// Reverse back into program order.
			for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
				kept[l], kept[r] = kept[r], kept[l]
			}
			b.Instrs = kept
		}
		if !changed {
			return changedEver
		}
		changedEver = true
	}
}
