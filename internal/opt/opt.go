// Package opt implements the machine-independent clean-up optimizations the
// vpo back end applies around memory access coalescing: constant folding and
// propagation, copy propagation, algebraic simplification, local common
// subexpression elimination, dead code elimination, and control-flow
// tidying. They matter here because the coalescer's offset and induction
// analyses expect addresses in a canonical base+displacement form that these
// passes produce.
package opt

import (
	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
)

// Clean runs the full clean-up pipeline to a fixpoint (bounded) and reports
// whether anything changed.
func Clean(f *rtl.Fn) bool {
	changedEver := false
	for i := 0; i < 8; i++ {
		changed := false
		changed = RemoveUnreachable(f) || changed
		changed = FoldConstants(f) || changed
		changed = PropagateLocal(f) || changed
		changed = PropagateImmutable(f) || changed
		changed = LocalCSE(f) || changed
		changed = CollapseMovChains(f) || changed
		changed = Peephole(f) || changed
		changed = DeadCodeElim(f) || changed
		changed = GlobalDCE(f) || changed
		changed = EliminateDeadIVs(f) || changed
		if !changed {
			break
		}
		changedEver = true
	}
	return changedEver
}

// RemoveUnreachable drops blocks that cannot be reached from the entry.
func RemoveUnreachable(f *rtl.Fn) bool {
	g := cfg.New(f)
	var kept []*rtl.Block
	for _, b := range f.Blocks {
		if g.Reachable(b) {
			kept = append(kept, b)
		}
	}
	if len(kept) == len(f.Blocks) {
		return false
	}
	f.Blocks = kept
	return true
}

// FoldConstants evaluates instructions whose operands are constants and
// simplifies algebraic identities (x+0, x*1, x*0, x<<0, branch-on-constant).
func FoldConstants(f *rtl.Fn) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if foldInstr(in) {
				changed = true
			}
		}
	}
	return changed
}

func foldInstr(in *rtl.Instr) bool {
	a, aok := in.A.IsConst()
	bv, bok := in.B.IsConst()
	set := func(v int64) bool {
		*in = rtl.Instr{Op: rtl.Mov, Dst: in.Dst, A: rtl.C(v)}
		return true
	}
	switch in.Op {
	case rtl.Neg:
		if aok {
			return set(-a)
		}
	case rtl.Not:
		if aok {
			return set(^a)
		}
	case rtl.Branch:
		if aok {
			t := in.Target
			if a == 0 {
				t = in.Else
			}
			*in = rtl.Instr{Op: rtl.Jump, Target: t}
			return true
		}
		if in.Target == in.Else {
			*in = rtl.Instr{Op: rtl.Jump, Target: in.Target}
			return true
		}
	case rtl.Extract:
		if aok && bok {
			return set(rtl.EvalExtract(a, bv, in.Width, in.Signed))
		}
	case rtl.Insert:
		if cv, cok := in.C.IsConst(); aok && bok && cok {
			return set(rtl.EvalInsert(a, bv, cv, in.Width))
		}
	}
	if !in.Op.IsBinary() {
		return false
	}
	if aok && bok {
		if v, ok := rtl.EvalBinary(in.Op, a, bv, in.Signed); ok {
			return set(v)
		}
		return false
	}
	// Algebraic identities with one constant side.
	isMov := func(o rtl.Operand) bool {
		*in = rtl.Instr{Op: rtl.Mov, Dst: in.Dst, A: o}
		return true
	}
	switch in.Op {
	case rtl.Add:
		if aok && a == 0 {
			return isMov(in.B)
		}
		if bok && bv == 0 {
			return isMov(in.A)
		}
	case rtl.Sub:
		if bok && bv == 0 {
			return isMov(in.A)
		}
		if ra, okA := in.A.IsReg(); okA {
			if rb, okB := in.B.IsReg(); okB && ra == rb {
				return set(0)
			}
		}
	case rtl.Mul:
		if (aok && a == 0) || (bok && bv == 0) {
			return set(0)
		}
		if aok && a == 1 {
			return isMov(in.B)
		}
		if bok && bv == 1 {
			return isMov(in.A)
		}
	case rtl.Shl, rtl.Shr:
		if bok && bv == 0 {
			return isMov(in.A)
		}
	case rtl.And:
		if (aok && a == 0) || (bok && bv == 0) {
			return set(0)
		}
		if aok && a == -1 {
			return isMov(in.B)
		}
		if bok && bv == -1 {
			return isMov(in.A)
		}
	case rtl.Or, rtl.Xor:
		if aok && a == 0 {
			return isMov(in.B)
		}
		if bok && bv == 0 {
			return isMov(in.A)
		}
	}
	return false
}

// PropagateLocal forwards constants and copies within each block, tracking
// kills precisely, so chains like "t=2; u=t; v=a+u" collapse without any
// global analysis.
func PropagateLocal(f *rtl.Fn) bool {
	changed := false
	for _, b := range f.Blocks {
		val := make(map[rtl.Reg]rtl.Operand) // reg -> known const or copy source
		for _, in := range b.Instrs {
			for _, o := range in.SrcOperands() {
				if r, ok := o.IsReg(); ok {
					if v, ok := val[r]; ok {
						*o = v
						changed = true
					}
				}
			}
			if d, ok := in.Def(); ok {
				// Kill anything that referenced the redefined register.
				delete(val, d)
				for r, v := range val {
					if vr, ok := v.IsReg(); ok && vr == d {
						delete(val, r)
					}
				}
				if in.Op == rtl.Mov {
					if _, isC := in.A.IsConst(); isC {
						val[d] = in.A
					} else if sr, ok := in.A.IsReg(); ok && sr != d {
						val[d] = in.A
						_ = sr
					}
				}
			}
		}
	}
	return changed
}

// PropagateImmutable performs global constant/copy propagation restricted to
// registers with a single definition: if r is defined exactly once as a
// constant, or as a copy of another immutable register, its uses dominated
// by the definition are rewritten.
func PropagateImmutable(f *rtl.Fn) bool {
	du := dataflow.ComputeDefUse(f)
	g := cfg.New(f)
	changed := false
	for _, b := range f.Blocks {
		if !g.Reachable(b) {
			continue
		}
		for idx, in := range b.Instrs {
			for _, o := range in.SrcOperands() {
				r, ok := o.IsReg()
				if !ok {
					continue
				}
				site, ok := du.SingleDef(r)
				if !ok || site.Instr.Op != rtl.Mov {
					continue
				}
				var repl rtl.Operand
				if c, isC := site.Instr.A.IsConst(); isC {
					repl = rtl.C(c)
				} else if sr, isR := site.Instr.A.IsReg(); isR && du.Immutable(sr) {
					repl = rtl.R(sr)
				} else {
					continue
				}
				if !dominatesUse(g, site, b, idx) {
					continue
				}
				*o = repl
				changed = true
			}
		}
	}
	return changed
}

func dominatesUse(g *cfg.Graph, site dataflow.DefSite, useBlock *rtl.Block, useIdx int) bool {
	if site.Block == useBlock {
		return site.Index < useIdx
	}
	return g.Dominates(site.Block, useBlock)
}

// LocalCSE removes redundant pure computations within a block using value
// numbering keyed on (op, operands, width, signedness). Loads are reused
// until a store or call intervenes.
func LocalCSE(f *rtl.Fn) bool {
	type key struct {
		op      rtl.Op
		a, b, c rtl.Operand
		w       rtl.Width
		signed  bool
		disp    int64
	}
	mentions := func(k key, d rtl.Reg) bool {
		for _, o := range [...]rtl.Operand{k.a, k.b, k.c} {
			if r, ok := o.IsReg(); ok && r == d {
				return true
			}
		}
		return false
	}
	changed := false
	for _, b := range f.Blocks {
		avail := make(map[key]rtl.Reg)
		loadKeys := make(map[key]bool)
		kill := func(d rtl.Reg) {
			for k, r := range avail {
				if r == d || mentions(k, d) {
					delete(avail, k)
					delete(loadKeys, k)
				}
			}
		}
		for idx := 0; idx < len(b.Instrs); idx++ {
			in := b.Instrs[idx]
			switch in.Op {
			case rtl.Store, rtl.Call:
				// Conservatively kill remembered loads.
				for k := range loadKeys {
					delete(avail, k)
					delete(loadKeys, k)
				}
			}
			d, hasDef := in.Def()
			if !hasDef {
				continue
			}
			pure := in.Op.IsBinary() || in.Op == rtl.Neg || in.Op == rtl.Not ||
				in.Op == rtl.Extract || in.Op == rtl.Insert || in.Op == rtl.Load
			if !pure {
				kill(d)
				continue
			}
			k := key{op: in.Op, a: in.A, b: in.B, c: in.C, w: in.Width, signed: in.Signed, disp: in.Disp}
			if prev, ok := avail[k]; ok && prev != d {
				*in = rtl.Instr{Op: rtl.Mov, Dst: d, A: rtl.R(prev)}
				kill(d)
				changed = true
				continue
			}
			kill(d)
			// Self-referential defs (r = r + 1) are not available afterwards.
			if !in.UsesReg(d) {
				avail[k] = d
				if in.Op == rtl.Load {
					loadKeys[k] = true
				}
			}
		}
	}
	return changed
}

// DeadCodeElim removes pure instructions whose results are never used,
// iterating so chains of dead temporaries disappear.
func DeadCodeElim(f *rtl.Fn) bool {
	changedEver := false
	for {
		use := make([]int, f.NumRegs())
		var regs []rtl.Reg
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				regs = in.Uses(regs[:0])
				for _, r := range regs {
					use[r]++
				}
			}
		}
		changed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if d, ok := in.Def(); ok && use[d] == 0 && sideEffectFree(in) {
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !changed {
			return changedEver
		}
		changedEver = true
	}
}

func sideEffectFree(in *rtl.Instr) bool {
	switch in.Op {
	case rtl.Store, rtl.Call, rtl.Jump, rtl.Branch, rtl.Ret:
		return false
	}
	return true
}

// ThreadJumps redirects edges that point at blocks containing only an
// unconditional jump, then removes the now-unreachable trampolines. It keeps
// loop headers intact (a self-jump is never threaded).
func ThreadJumps(f *rtl.Fn) bool {
	changed := false
	target := make(map[*rtl.Block]*rtl.Block)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 1 {
			if t := b.Term(); t != nil && t.Op == rtl.Jump && t.Target != b {
				target[b] = t.Target
			}
		}
	}
	resolve := func(b *rtl.Block) *rtl.Block {
		seen := map[*rtl.Block]bool{}
		for {
			t, ok := target[b]
			if !ok || seen[b] {
				return b
			}
			seen[b] = true
			b = t
		}
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		if t.Target != nil {
			if r := resolve(t.Target); r != t.Target {
				t.Target = r
				changed = true
			}
		}
		if t.Else != nil {
			if r := resolve(t.Else); r != t.Else {
				t.Else = r
				changed = true
			}
		}
	}
	if changed {
		RemoveUnreachable(f)
	}
	return changed
}
