package opt

import "macc/internal/rtl"

// NormalizeAddresses is the local pass behind the paper's
// CalculateRelativeOffsets step. Within each block it tracks which
// registers currently hold "entry value of register b plus constant k" and
// uses that to (a) rewrite memory operands into base+displacement form off
// the block-entry register and (b) turn copies of offset values into adds
// off the base. After unrolling, the renamed induction chains
// (p0 = p+2; p1 = p0+2; ...) feed loads at [p+0], [p+2], [p+4], ... and the
// chain itself dies, leaving exactly the consecutive-displacement pattern
// the coalescer partitions.
func NormalizeAddresses(f *rtl.Fn) bool {
	changed := false
	for _, b := range f.Blocks {
		if normalizeBlock(b) {
			changed = true
		}
	}
	return changed
}

type affVal struct {
	base rtl.Reg // register whose block-entry value anchors this
	k    int64
}

func normalizeBlock(b *rtl.Block) bool {
	changed := false
	aff := make(map[rtl.Reg]affVal)     // reg -> entry(base)+k
	redefined := make(map[rtl.Reg]bool) // regs no longer holding entry value

	lookup := func(r rtl.Reg) (affVal, bool) {
		if v, ok := aff[r]; ok {
			return v, true
		}
		if redefined[r] {
			return affVal{}, false
		}
		return affVal{base: r, k: 0}, true
	}

	for _, in := range b.Instrs {
		// Rewrite memory references to anchor at the entry value.
		if in.IsMem() {
			if base, ok := in.A.IsReg(); ok {
				if v, ok := lookup(base); ok && (v.base != base || v.k != 0) {
					in.A = rtl.R(v.base)
					in.Disp += v.k
					changed = true
				}
			}
		}

		d, hasDef := in.Def()
		if !hasDef {
			continue
		}

		// Compute the transfer before recording the redefinition.
		var newVal *affVal
		switch in.Op {
		case rtl.Mov:
			if r, ok := in.A.IsReg(); ok {
				if v, ok := lookup(r); ok {
					newVal = &v
				}
			}
		case rtl.Add:
			if r, ok := in.A.IsReg(); ok {
				if c, okc := in.B.IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k + c}
						newVal = &nv
					}
				}
			}
			if r, ok := in.B.IsReg(); ok && newVal == nil {
				if c, okc := in.A.IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k + c}
						newVal = &nv
					}
				}
			}
		case rtl.Sub:
			if r, ok := in.A.IsReg(); ok {
				if c, okc := in.B.IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k - c}
						newVal = &nv
					}
				}
			}
		}

		// Canonicalize the instruction itself onto the entry anchor, which
		// disconnects it from the renamed chain so the chain can die: e.g.
		// "p3 = p2 + 2" where p2 = entry(p)+4 becomes "p3 = p + 6", and a
		// mov-back "p = p3" becomes "p = p + 8".
		if newVal != nil && !(newVal.base == d && newVal.k == 0) {
			rewritten := rtl.Instr{Op: rtl.Add, Dst: d, A: rtl.R(newVal.base), B: rtl.C(newVal.k)}
			if newVal.k == 0 {
				rewritten = rtl.Instr{Op: rtl.Mov, Dst: d, A: rtl.R(newVal.base)}
			}
			if !sameInstr(in, &rewritten) {
				*in = rewritten
				changed = true
			}
		}

		// Record the redefinition: d stops holding its entry value, and
		// anything anchored on d's entry value is still fine (the anchor is
		// the value at block entry, which d no longer holds — so those
		// entries must be dropped for future rewrites).
		redefined[d] = true
		delete(aff, d)
		for r, v := range aff {
			if v.base == d {
				delete(aff, r)
			}
		}
		if newVal != nil && newVal.base != d && !redefined[newVal.base] {
			aff[d] = *newVal
		}
	}
	return changed
}

func sameInstr(a, b *rtl.Instr) bool {
	return a.Op == b.Op && a.Dst == b.Dst && a.A == b.A && a.B == b.B &&
		a.C == b.C && a.Width == b.Width && a.Signed == b.Signed && a.Disp == b.Disp
}
