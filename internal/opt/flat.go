package opt

import (
	"math/bits"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
)

// This file is the native flat-form port of the clean-up suite: every pass
// here is a line-for-line twin of its pointer-graph counterpart in this
// package, operating on FlatFn's dense arrays through the flat editing
// layer (in-place SetInstr rewrites, kill marks + one Compact sweep where
// the graph pass rebuilds an instruction slice). The twins must stay
// behaviorally identical — the differential tests pin flat-pipeline output
// byte-identical to the graph pipeline — so any change to a graph pass in
// opt.go/gdce.go/collapse.go/peephole.go/addrfold.go must land here too.

// FlatClean runs the full clean-up pipeline to a bounded fixpoint on the
// flat form, mirroring Clean's exact pass order.
func FlatClean(fp *rtl.FlatProgram, fi int) bool {
	changedEver := false
	for i := 0; i < 8; i++ {
		changed := false
		changed = FlatRemoveUnreachable(fp, fi) || changed
		changed = FlatFoldConstants(fp, fi) || changed
		changed = FlatPropagateLocal(fp, fi) || changed
		changed = FlatPropagateImmutable(fp, fi) || changed
		changed = FlatLocalCSE(fp, fi) || changed
		changed = FlatCollapseMovChains(fp, fi) || changed
		changed = FlatPeephole(fp, fi) || changed
		changed = FlatDeadCodeElim(fp, fi) || changed
		changed = FlatGlobalDCE(fp, fi) || changed
		changed = FlatEliminateDeadIVs(fp, fi) || changed
		if !changed {
			break
		}
		changedEver = true
	}
	return changedEver
}

// FlatRemoveUnreachable drops blocks unreachable from the entry.
func FlatRemoveUnreachable(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	g := cfg.NewFlat(fp, fi)
	keep := make([]bool, len(f.Blocks))
	n := 0
	for bi := range f.Blocks {
		if g.Reachable(int32(bi)) {
			keep[bi] = true
			n++
		}
	}
	if n == len(f.Blocks) {
		return false
	}
	f.RemoveBlocks(keep)
	return true
}

// FlatFoldConstants mirrors FoldConstants.
func FlatFoldConstants(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changed := false
	for i := int32(0); i < int32(len(f.Op)); i++ {
		if flatFoldInstr(f, i) {
			changed = true
		}
	}
	return changed
}

func flatFoldInstr(f *rtl.FlatFn, i int32) bool {
	a, aok := f.A[i].IsConst()
	bv, bok := f.B[i].IsConst()
	set := func(v int64) bool {
		in := rtl.MkInstr(rtl.Mov)
		in.Dst = f.Dst[i]
		in.A = rtl.C(v)
		f.SetInstr(i, in)
		return true
	}
	switch f.Op[i] {
	case rtl.Neg:
		if aok {
			return set(-a)
		}
	case rtl.Not:
		if aok {
			return set(^a)
		}
	case rtl.Branch:
		if aok {
			t := f.Target[i]
			if a == 0 {
				t = f.Else[i]
			}
			in := rtl.MkInstr(rtl.Jump)
			in.Target = t
			f.SetInstr(i, in)
			return true
		}
		if f.Target[i] == f.Else[i] {
			in := rtl.MkInstr(rtl.Jump)
			in.Target = f.Target[i]
			f.SetInstr(i, in)
			return true
		}
	case rtl.Extract:
		if aok && bok {
			return set(rtl.EvalExtract(a, bv, f.Width[i], f.Signed[i]))
		}
	case rtl.Insert:
		if cv, cok := f.C[i].IsConst(); aok && bok && cok {
			return set(rtl.EvalInsert(a, bv, cv, f.Width[i]))
		}
	}
	if !f.Op[i].IsBinary() {
		return false
	}
	if aok && bok {
		if v, ok := rtl.EvalBinary(f.Op[i], a, bv, f.Signed[i]); ok {
			return set(v)
		}
		return false
	}
	// Algebraic identities with one constant side.
	isMov := func(o rtl.Operand) bool {
		in := rtl.MkInstr(rtl.Mov)
		in.Dst = f.Dst[i]
		in.A = o
		f.SetInstr(i, in)
		return true
	}
	switch f.Op[i] {
	case rtl.Add:
		if aok && a == 0 {
			return isMov(f.B[i])
		}
		if bok && bv == 0 {
			return isMov(f.A[i])
		}
	case rtl.Sub:
		if bok && bv == 0 {
			return isMov(f.A[i])
		}
		if ra, okA := f.A[i].IsReg(); okA {
			if rb, okB := f.B[i].IsReg(); okB && ra == rb {
				return set(0)
			}
		}
	case rtl.Mul:
		if (aok && a == 0) || (bok && bv == 0) {
			return set(0)
		}
		if aok && a == 1 {
			return isMov(f.B[i])
		}
		if bok && bv == 1 {
			return isMov(f.A[i])
		}
	case rtl.Shl, rtl.Shr:
		if bok && bv == 0 {
			return isMov(f.A[i])
		}
	case rtl.And:
		if (aok && a == 0) || (bok && bv == 0) {
			return set(0)
		}
		if aok && a == -1 {
			return isMov(f.B[i])
		}
		if bok && bv == -1 {
			return isMov(f.A[i])
		}
	case rtl.Or, rtl.Xor:
		if aok && a == 0 {
			return isMov(f.B[i])
		}
		if bok && bv == 0 {
			return isMov(f.A[i])
		}
	}
	return false
}

// FlatPropagateLocal mirrors PropagateLocal.
func FlatPropagateLocal(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changed := false
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		val := make(map[rtl.Reg]rtl.Operand) // reg -> known const or copy source
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			f.SrcSlots(i, func(o *rtl.Operand) {
				if r, ok := o.IsReg(); ok {
					if v, ok := val[r]; ok {
						*o = v
						changed = true
					}
				}
			})
			if d, ok := f.Def(i); ok {
				// Kill anything that referenced the redefined register.
				delete(val, d)
				for r, v := range val {
					if vr, ok := v.IsReg(); ok && vr == d {
						delete(val, r)
					}
				}
				if f.Op[i] == rtl.Mov {
					if _, isC := f.A[i].IsConst(); isC {
						val[d] = f.A[i]
					} else if sr, ok := f.A[i].IsReg(); ok && sr != d {
						val[d] = f.A[i]
					}
				}
			}
		}
	}
	return changed
}

// FlatPropagateImmutable mirrors PropagateImmutable.
func FlatPropagateImmutable(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	du := dataflow.ComputeFlatDefUse(f)
	g := cfg.NewFlat(fp, fi)
	changed := false
	for bi := range f.Blocks {
		if !g.Reachable(int32(bi)) {
			continue
		}
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			idx := i - b.InstrStart
			f.SrcSlots(i, func(o *rtl.Operand) {
				r, ok := o.IsReg()
				if !ok {
					return
				}
				site, ok := du.SingleDef(r)
				if !ok || f.Op[site.Instr] != rtl.Mov {
					return
				}
				var repl rtl.Operand
				if c, isC := f.A[site.Instr].IsConst(); isC {
					repl = rtl.C(c)
				} else if sr, isR := f.A[site.Instr].IsReg(); isR && du.Immutable(sr) {
					repl = rtl.R(sr)
				} else {
					return
				}
				if !flatDominatesUse(g, site, int32(bi), idx) {
					return
				}
				*o = repl
				changed = true
			})
		}
	}
	return changed
}

func flatDominatesUse(g *cfg.FlatGraph, site dataflow.FlatDefSite, useBlock, useIdx int32) bool {
	if site.Block == useBlock {
		return site.Index < useIdx
	}
	return g.Dominates(site.Block, useBlock)
}

// FlatLocalCSE mirrors LocalCSE. Availability is tracked with a
// register-indexed kill list instead of a full map sweep per definition:
// killing a register visits only the entries that mention it, which turns
// the graph pass's O(defs x available) behaviour into O(defs + mentions)
// without changing which expressions are considered available.
func FlatLocalCSE(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	type key struct {
		op      rtl.Op
		a, b, c rtl.Operand
		w       rtl.Width
		signed  bool
		disp    int64
	}
	type entry struct {
		k    key
		r    rtl.Reg
		dead bool
	}
	var (
		entries []entry
		loads   []int32 // entry indices holding Load expressions
	)
	avail := make(map[key]int32)
	byReg := make([][]int32, f.NumRegs())
	retire := func(idx int32) {
		e := &entries[idx]
		if !e.dead {
			e.dead = true
			delete(avail, e.k)
		}
	}
	kill := func(d rtl.Reg) {
		lst := byReg[d]
		byReg[d] = lst[:0]
		for _, idx := range lst {
			retire(idx)
		}
	}
	changed := false
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			switch f.Op[i] {
			case rtl.Store, rtl.Call:
				// Conservatively kill remembered loads.
				for _, idx := range loads {
					retire(idx)
				}
				loads = loads[:0]
			}
			d, hasDef := f.Def(i)
			if !hasDef {
				continue
			}
			op := f.Op[i]
			pure := op.IsBinary() || op == rtl.Neg || op == rtl.Not ||
				op == rtl.Extract || op == rtl.Insert || op == rtl.Load
			if !pure {
				kill(d)
				continue
			}
			k := key{op: op, a: f.A[i], b: f.B[i], c: f.C[i], w: f.Width[i], signed: f.Signed[i], disp: f.Disp[i]}
			if idx, ok := avail[k]; ok && entries[idx].r != d {
				in := rtl.MkInstr(rtl.Mov)
				in.Dst = d
				in.A = rtl.R(entries[idx].r)
				f.SetInstr(i, in)
				kill(d)
				changed = true
				continue
			}
			kill(d)
			// Self-referential defs (r = r + 1) are not available afterwards.
			if !f.UsesReg(i, d) {
				idx := int32(len(entries))
				entries = append(entries, entry{k: k, r: d})
				avail[k] = idx
				byReg[d] = append(byReg[d], idx)
				for _, o := range [...]rtl.Operand{k.a, k.b, k.c} {
					if r, ok := o.IsReg(); ok {
						byReg[r] = append(byReg[r], idx)
					}
				}
				if op == rtl.Load {
					loads = append(loads, idx)
				}
			}
		}
		// Availability is block-local: drop every entry and clear only the
		// kill lists this block touched, keeping their capacity for reuse.
		for idx := range entries {
			e := &entries[idx]
			byReg[e.r] = byReg[e.r][:0]
			for _, o := range [...]rtl.Operand{e.k.a, e.k.b, e.k.c} {
				if r, ok := o.IsReg(); ok {
					byReg[r] = byReg[r][:0]
				}
			}
		}
		entries = entries[:0]
		loads = loads[:0]
		clear(avail)
	}
	return changed
}

// FlatCollapseMovChains mirrors CollapseMovChains: the fused temporary is
// overwritten with a Nop kill-mark exactly as the graph pass does, and one
// Compact sweep at the end drops the marks the graph pass filters per block.
func FlatCollapseMovChains(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	defCount := make([]int, f.NumRegs())
	useCount := make([]int, f.NumRegs())
	for i := int32(0); i < int32(len(f.Op)); i++ {
		if d, ok := f.Def(i); ok {
			defCount[d]++
		}
		f.SrcSlots(i, func(o *rtl.Operand) {
			if o.Kind == rtl.KindReg {
				useCount[o.Reg]++
			}
		})
	}
	for _, p := range f.Params {
		defCount[p]++
	}

	changed := false
	kill := make([]bool, len(f.Op))
	anyKill := false
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		defAt := make(map[rtl.Reg]int32) // reg -> absolute index of def within this block
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			if f.Op[i] == rtl.Mov {
				if t, ok := f.A[i].IsReg(); ok && defCount[t] == 1 && useCount[t] == 1 {
					if di, here := defAt[t]; here && flatMovable(f, di, i, f.Dst[i]) {
						if flatFusable(f, di) {
							nd := f.Dst[i]
							def := f.Instr(di)
							def.Dst = nd
							f.SetInstr(i, def)
							f.SetInstr(di, rtl.MkInstr(rtl.Nop))
							changed = true
						}
					}
				}
			}
			if d, ok := f.Def(i); ok {
				defAt[d] = i
			}
		}
		if changed {
			for i := b.InstrStart; i < b.InstrEnd; i++ {
				if f.Op[i] == rtl.Nop {
					kill[i] = true
					anyKill = true
				}
			}
		}
	}
	if anyKill {
		f.Compact(kill)
	}
	return changed
}

// flatFusable mirrors fusable for the instruction at index i.
func flatFusable(f *rtl.FlatFn, i int32) bool {
	switch f.Op[i] {
	case rtl.Mov, rtl.Neg, rtl.Not, rtl.Extract, rtl.Insert:
		return true
	}
	return f.Op[i].IsBinary()
}

// flatMovable mirrors movable over absolute indices di..j in one block.
func flatMovable(f *rtl.FlatFn, di, j int32, v rtl.Reg) bool {
	var srcs []rtl.Reg
	f.SrcSlots(di, func(o *rtl.Operand) {
		if o.Kind == rtl.KindReg {
			srcs = append(srcs, o.Reg)
		}
	})
	for k := di + 1; k < j; k++ {
		if d, ok := f.Def(k); ok {
			if d == v {
				return false
			}
			for _, s := range srcs {
				if d == s {
					return false
				}
			}
		}
		if f.UsesReg(k, v) {
			return false
		}
	}
	return true
}

// FlatPeephole mirrors Peephole.
func FlatPeephole(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changed := false
	for i := int32(0); i < int32(len(f.Op)); i++ {
		if flatReduceInstr(f, i) {
			changed = true
		}
	}
	if flatSimplifyBranches(f) {
		changed = true
	}
	return changed
}

func flatReduceInstr(f *rtl.FlatFn, i int32) bool {
	cOf := func(o rtl.Operand) (int64, bool) {
		v, ok := o.IsConst()
		if !ok || v <= 0 || v&(v-1) != 0 {
			return 0, false
		}
		return int64(bits.TrailingZeros64(uint64(v))), true
	}
	mk := func(op rtl.Op, a rtl.Operand, b rtl.Operand) bool {
		in := rtl.MkInstr(op)
		in.Dst = f.Dst[i]
		in.A = a
		in.B = b
		f.SetInstr(i, in)
		return true
	}
	switch f.Op[i] {
	case rtl.Mul:
		if sh, ok := cOf(f.B[i]); ok {
			return mk(rtl.Shl, f.A[i], rtl.C(sh))
		}
		if sh, ok := cOf(f.A[i]); ok {
			return mk(rtl.Shl, f.B[i], rtl.C(sh))
		}
	case rtl.Div:
		if f.Signed[i] {
			return false // signed division by 2^k needs rounding fixups
		}
		if sh, ok := cOf(f.B[i]); ok {
			return mk(rtl.Shr, f.A[i], rtl.C(sh))
		}
	case rtl.Rem:
		if f.Signed[i] {
			return false
		}
		if v, ok := f.B[i].IsConst(); ok && v > 0 && v&(v-1) == 0 {
			return mk(rtl.And, f.A[i], rtl.C(v-1))
		}
	}
	return false
}

func flatSimplifyBranches(f *rtl.FlatFn) bool {
	du := dataflow.ComputeFlatDefUse(f)
	changed := false
	for bi := range f.Blocks {
		ti, op, ok := f.TermIdx(int32(bi))
		if !ok || op != rtl.Branch {
			continue
		}
		condReg, ok := f.A[ti].IsReg()
		if !ok {
			continue
		}
		site, ok := du.SingleDef(condReg)
		if !ok || site.Block != int32(bi) || du.UseCount(condReg) != 1 {
			continue
		}
		def := site.Instr
		zeroCmp := func() (rtl.Operand, bool) {
			if v, isC := f.B[def].IsConst(); isC && v == 0 {
				return f.A[def], true
			}
			return rtl.Operand{}, false
		}
		switch f.Op[def] {
		case rtl.SetNE:
			// branch (x != 0) T F  =>  branch x T F
			if x, ok := zeroCmp(); ok {
				f.A[ti] = x
				f.SetInstr(def, rtl.MkInstr(rtl.Nop))
				changed = true
			}
		case rtl.SetEQ:
			// branch (x == 0) T F  =>  branch x F T
			if x, ok := zeroCmp(); ok {
				f.A[ti] = x
				f.Target[ti], f.Else[ti] = f.Else[ti], f.Target[ti]
				f.SetInstr(def, rtl.MkInstr(rtl.Nop))
				changed = true
			}
		}
	}
	if changed {
		kill := make([]bool, len(f.Op))
		for i := range f.Op {
			if f.Op[i] == rtl.Nop {
				kill[i] = true
			}
		}
		f.Compact(kill)
	}
	return changed
}

// FlatDeadCodeElim mirrors DeadCodeElim.
func FlatDeadCodeElim(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changedEver := false
	for {
		use := make([]int, f.NumRegs())
		for i := int32(0); i < int32(len(f.Op)); i++ {
			f.SrcSlots(i, func(o *rtl.Operand) {
				if o.Kind == rtl.KindReg {
					use[o.Reg]++
				}
			})
		}
		kill := make([]bool, len(f.Op))
		changed := false
		for i := int32(0); i < int32(len(f.Op)); i++ {
			if d, ok := f.Def(i); ok && use[d] == 0 && flatSideEffectFree(f.Op[i]) {
				kill[i] = true
				changed = true
			}
		}
		if !changed {
			return changedEver
		}
		f.Compact(kill)
		changedEver = true
	}
}

func flatSideEffectFree(op rtl.Op) bool {
	switch op {
	case rtl.Store, rtl.Call, rtl.Jump, rtl.Branch, rtl.Ret:
		return false
	}
	return true
}

// FlatGlobalDCE mirrors GlobalDCE: liveness-based removal, iterated to a
// fixpoint, skipping unreachable blocks.
func FlatGlobalDCE(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changedEver := false
	for {
		g := cfg.NewFlat(fp, fi)
		lv := dataflow.ComputeFlatLiveness(g)
		changed := false
		kill := make([]bool, len(f.Op))
		for bi := range f.Blocks {
			if !g.Reachable(int32(bi)) {
				continue
			}
			b := &f.Blocks[bi]
			live := lv.LiveOutSet(int32(bi)).Clone()
			for i := b.InstrEnd - 1; i >= b.InstrStart; i-- {
				d, hasDef := f.Def(i)
				if hasDef && !live.Has(int(d)) && flatSideEffectFree(f.Op[i]) {
					kill[i] = true
					changed = true
					continue
				}
				if hasDef {
					live.Clear(int(d))
				}
				f.SrcSlots(i, func(o *rtl.Operand) {
					if o.Kind == rtl.KindReg {
						live.Set(int(o.Reg))
					}
				})
			}
		}
		if !changed {
			return changedEver
		}
		f.Compact(kill)
		changedEver = true
	}
}

// FlatEliminateDeadIVs mirrors EliminateDeadIVs.
func FlatEliminateDeadIVs(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	n := f.NumRegs()
	selfOnly := make([]bool, n) // candidate: all uses are self-updates
	for i := range selfOnly {
		selfOnly[i] = true
	}
	for i := int32(0); i < int32(len(f.Op)); i++ {
		d, hasDef := f.Def(i)
		f.SrcSlots(i, func(o *rtl.Operand) {
			if o.Kind != rtl.KindReg {
				return
			}
			r := o.Reg
			// A use is harmless only if this instruction redefines the
			// same register as a pure self-update.
			if !(hasDef && d == r && flatIsSelfUpdate(f, i, r)) {
				selfOnly[r] = false
			}
		})
	}
	kill := make([]bool, len(f.Op))
	changed := false
	for i := int32(0); i < int32(len(f.Op)); i++ {
		if d, ok := f.Def(i); ok && selfOnly[d] && flatIsSelfUpdate(f, i, d) {
			kill[i] = true
			changed = true
		}
	}
	if changed {
		f.Compact(kill)
	}
	return changed
}

func flatIsSelfUpdate(f *rtl.FlatFn, i int32, r rtl.Reg) bool {
	op := f.Op[i]
	if op != rtl.Add && op != rtl.Sub && op != rtl.Mov {
		return false
	}
	d, ok := f.Def(i)
	if !ok || d != r {
		return false
	}
	// Every register operand must be r itself.
	pure := true
	f.SrcSlots(i, func(o *rtl.Operand) {
		if or, ok := o.IsReg(); ok && or != r {
			pure = false
		}
	})
	return pure
}

// FlatThreadJumps mirrors ThreadJumps: redirect edges through jump-only
// trampolines, then drop what became unreachable.
func FlatThreadJumps(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changed := false
	target := make(map[int32]int32)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.InstrEnd-b.InstrStart == 1 {
			if ti, op, ok := f.TermIdx(int32(bi)); ok && op == rtl.Jump && f.Target[ti] != int32(bi) {
				target[int32(bi)] = f.Target[ti]
			}
		}
	}
	resolve := func(b int32) int32 {
		seen := map[int32]bool{}
		for {
			t, ok := target[b]
			if !ok || seen[b] {
				return b
			}
			seen[b] = true
			b = t
		}
	}
	for bi := range f.Blocks {
		ti, _, ok := f.TermIdx(int32(bi))
		if !ok {
			continue
		}
		if t := f.Target[ti]; t >= 0 {
			if r := resolve(t); r != t {
				f.Target[ti] = r
				changed = true
			}
		}
		if e := f.Else[ti]; e >= 0 {
			if r := resolve(e); r != e {
				f.Else[ti] = r
				changed = true
			}
		}
	}
	if changed {
		FlatRemoveUnreachable(fp, fi)
	}
	return changed
}

// FlatNormalizeAddresses mirrors NormalizeAddresses.
func FlatNormalizeAddresses(fp *rtl.FlatProgram, fi int) bool {
	f := &fp.Fns[fi]
	changed := false
	for bi := range f.Blocks {
		if flatNormalizeBlock(f, int32(bi)) {
			changed = true
		}
	}
	return changed
}

func flatNormalizeBlock(f *rtl.FlatFn, bi int32) bool {
	changed := false
	aff := make(map[rtl.Reg]affVal)     // reg -> entry(base)+k
	redefined := make(map[rtl.Reg]bool) // regs no longer holding entry value

	lookup := func(r rtl.Reg) (affVal, bool) {
		if v, ok := aff[r]; ok {
			return v, true
		}
		if redefined[r] {
			return affVal{}, false
		}
		return affVal{base: r, k: 0}, true
	}

	b := &f.Blocks[bi]
	for i := b.InstrStart; i < b.InstrEnd; i++ {
		// Rewrite memory references to anchor at the entry value.
		if f.IsMem(i) {
			if base, ok := f.A[i].IsReg(); ok {
				if v, ok := lookup(base); ok && (v.base != base || v.k != 0) {
					f.A[i] = rtl.R(v.base)
					f.Disp[i] += v.k
					changed = true
				}
			}
		}

		d, hasDef := f.Def(i)
		if !hasDef {
			continue
		}

		// Compute the transfer before recording the redefinition.
		var newVal *affVal
		switch f.Op[i] {
		case rtl.Mov:
			if r, ok := f.A[i].IsReg(); ok {
				if v, ok := lookup(r); ok {
					newVal = &v
				}
			}
		case rtl.Add:
			if r, ok := f.A[i].IsReg(); ok {
				if c, okc := f.B[i].IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k + c}
						newVal = &nv
					}
				}
			}
			if r, ok := f.B[i].IsReg(); ok && newVal == nil {
				if c, okc := f.A[i].IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k + c}
						newVal = &nv
					}
				}
			}
		case rtl.Sub:
			if r, ok := f.A[i].IsReg(); ok {
				if c, okc := f.B[i].IsConst(); okc {
					if v, ok := lookup(r); ok {
						nv := affVal{base: v.base, k: v.k - c}
						newVal = &nv
					}
				}
			}
		}

		// Canonicalize the instruction itself onto the entry anchor (see
		// normalizeBlock for why).
		if newVal != nil && !(newVal.base == d && newVal.k == 0) {
			rewritten := rtl.MkInstr(rtl.Add)
			rewritten.Dst = d
			rewritten.A = rtl.R(newVal.base)
			rewritten.B = rtl.C(newVal.k)
			if newVal.k == 0 {
				rewritten = rtl.MkInstr(rtl.Mov)
				rewritten.Dst = d
				rewritten.A = rtl.R(newVal.base)
			}
			if !flatSameInstr(f, i, rewritten) {
				f.SetInstr(i, rewritten)
				changed = true
			}
		}

		// Record the redefinition (see normalizeBlock).
		redefined[d] = true
		delete(aff, d)
		for r, v := range aff {
			if v.base == d {
				delete(aff, r)
			}
		}
		if newVal != nil && newVal.base != d && !redefined[newVal.base] {
			aff[d] = *newVal
		}
	}
	return changed
}

func flatSameInstr(f *rtl.FlatFn, i int32, in rtl.FlatInstr) bool {
	return f.Op[i] == in.Op && f.Dst[i] == in.Dst && f.A[i] == in.A && f.B[i] == in.B &&
		f.C[i] == in.C && f.Width[i] == in.Width && f.Signed[i] == in.Signed && f.Disp[i] == in.Disp
}
