package opt_test

import (
	"testing"

	"macc/internal/opt"
	"macc/internal/rtl"
)

func TestPeepholeMulToShift(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Mul, r1, rtl.R(p), rtl.C(8)),
			rtl.BinI(rtl.Mul, r2, rtl.C(16), rtl.R(p)),
			rtl.BinI(rtl.Mul, r3, rtl.R(p), rtl.C(6)), // not a power of two
			rtl.RetI(rtl.R(r3)),
		}
	})
	opt.Peephole(f)
	ins := f.Entry().Instrs
	if ins[0].Op != rtl.Shl || ins[0].B.Const != 3 {
		t.Errorf("mul by 8 not reduced: %s", ins[0])
	}
	if ins[1].Op != rtl.Shl || ins[1].B.Const != 4 {
		t.Errorf("16*x not reduced: %s", ins[1])
	}
	if ins[2].Op != rtl.Mul {
		t.Errorf("mul by 6 must stay: %s", ins[2])
	}
}

func TestPeepholeUnsignedDivRem(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Div, r1, rtl.R(p), rtl.C(4)),  // unsigned
			rtl.BinI(rtl.Rem, r2, rtl.R(p), rtl.C(8)),  // unsigned
			rtl.SBinI(rtl.Div, r3, rtl.R(p), rtl.C(4)), // signed: keep
			rtl.RetI(rtl.R(r3)),
		}
	})
	opt.Peephole(f)
	ins := f.Entry().Instrs
	if ins[0].Op != rtl.Shr || ins[0].Signed {
		t.Errorf("unsigned div by 4 not reduced: %s", ins[0])
	}
	if ins[1].Op != rtl.And || ins[1].B.Const != 7 {
		t.Errorf("unsigned rem by 8 not reduced: %s", ins[1])
	}
	if ins[2].Op != rtl.Div {
		t.Errorf("signed division must not be naively reduced: %s", ins[2])
	}
}

func TestPeepholeBranchOnSetNE(t *testing.T) {
	f := rtl.NewFn("t", 1)
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	cond := f.NewReg()
	f.Entry().Instrs = []*rtl.Instr{
		rtl.BinI(rtl.SetNE, cond, rtl.R(f.Params[0]), rtl.C(0)),
		rtl.BranchI(rtl.R(cond), thenB, elseB),
	}
	thenB.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(1))}
	elseB.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(2))}
	opt.Peephole(f)
	term := f.Entry().Term()
	if r, ok := term.A.IsReg(); !ok || r != f.Params[0] {
		t.Errorf("branch not folded onto the tested value: %s", term)
	}
	if term.Target != thenB {
		t.Error("SetNE fold must not swap targets")
	}
	if len(f.Entry().Instrs) != 1 {
		t.Error("dead compare not removed")
	}
}

func TestPeepholeBranchOnSetEQInverts(t *testing.T) {
	f := rtl.NewFn("t", 1)
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	cond := f.NewReg()
	f.Entry().Instrs = []*rtl.Instr{
		rtl.BinI(rtl.SetEQ, cond, rtl.R(f.Params[0]), rtl.C(0)),
		rtl.BranchI(rtl.R(cond), thenB, elseB),
	}
	thenB.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(1))}
	elseB.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(2))}
	opt.Peephole(f)
	term := f.Entry().Term()
	if term.Target != elseB || term.Else != thenB {
		t.Errorf("SetEQ fold must swap targets: %s", term)
	}
}

func TestPeepholeBranchKeepsMultiUseCompare(t *testing.T) {
	f := rtl.NewFn("t", 1)
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	cond := f.NewReg()
	f.Entry().Instrs = []*rtl.Instr{
		rtl.BinI(rtl.SetNE, cond, rtl.R(f.Params[0]), rtl.C(0)),
		rtl.BranchI(rtl.R(cond), thenB, elseB),
	}
	thenB.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(cond))} // second use
	elseB.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(2))}
	opt.Peephole(f)
	if f.Entry().Instrs[0].Op != rtl.SetNE {
		t.Error("compare with other uses must be kept")
	}
}
