package opt

import (
	"macc/internal/cfg"
	"macc/internal/rtl"
)

// HoistInvariants performs loop-invariant code motion for one loop: pure
// instructions whose operands are loop invariant and that are the sole
// definition of their register move to the preheader. Divisions are hoisted
// only when the divisor is a non-zero constant, since hoisting may execute
// them speculatively. The loop must already have a preheader.
func HoistInvariants(f *rtl.Fn, g *cfg.Graph, l *cfg.Loop) bool {
	if l.Preheader == nil {
		return false
	}
	defsInLoop := make(map[rtl.Reg]int)
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok {
				defsInLoop[d]++
			}
		}
	}
	invariantOp := func(o rtl.Operand) bool {
		if r, ok := o.IsReg(); ok {
			return defsInLoop[r] == 0
		}
		return true
	}
	hoistable := func(in *rtl.Instr) bool {
		switch in.Op {
		case rtl.Mov, rtl.Neg, rtl.Not, rtl.Extract, rtl.Insert:
		case rtl.Div, rtl.Rem:
			if c, ok := in.B.IsConst(); !ok || c == 0 {
				return false
			}
		default:
			if !in.Op.IsBinary() {
				return false
			}
		}
		for _, o := range in.SrcOperands() {
			if !invariantOp(*o) {
				return false
			}
		}
		return true
	}
	changed := false
	for {
		moved := false
		for _, b := range l.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				d, hasDef := in.Def()
				if hasDef && defsInLoop[d] == 1 && hoistable(in) {
					l.Preheader.Append(in)
					defsInLoop[d] = 0
					moved = true
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !moved {
			return changed
		}
	}
}

// EliminateDeadIVs removes induction-variable updates whose value feeds
// nothing but themselves: after linear function test replacement the
// original counter's only remaining uses are its own "i = i + 1"
// definitions, which plain dead-code elimination cannot see because the
// use count never reaches zero. This is the paper's
// EliminateInductionVariables step.
func EliminateDeadIVs(f *rtl.Fn) bool {
	n := f.NumRegs()
	selfOnly := make([]bool, n) // candidate: all uses are self-updates
	for i := range selfOnly {
		selfOnly[i] = true
	}
	var regs []rtl.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			d, hasDef := in.Def()
			regs = in.Uses(regs[:0])
			for _, r := range regs {
				// A use is harmless only if this instruction redefines the
				// same register as a pure self-update.
				if !(hasDef && d == r && isSelfUpdate(in, r)) {
					selfOnly[r] = false
				}
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok && selfOnly[d] && isSelfUpdate(in, d) {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

func isSelfUpdate(in *rtl.Instr, r rtl.Reg) bool {
	if in.Op != rtl.Add && in.Op != rtl.Sub && in.Op != rtl.Mov {
		return false
	}
	d, ok := in.Def()
	if !ok || d != r {
		return false
	}
	// Every register operand must be r itself.
	for _, o := range in.SrcOperands() {
		if or, ok := o.IsReg(); ok && or != r {
			return false
		}
	}
	return true
}
