package opt_test

import (
	"testing"

	"macc/internal/cfg"
	"macc/internal/opt"
	"macc/internal/rtl"
)

// linear builds a single-block function from instructions plus a return.
func linear(nparams int, build func(f *rtl.Fn) []*rtl.Instr) *rtl.Fn {
	f := rtl.NewFn("t", nparams)
	ins := build(f)
	f.Entry().Instrs = ins
	return f
}

func countOp(f *rtl.Fn, op rtl.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestFoldConstantsArithmetic(t *testing.T) {
	f := linear(0, func(f *rtl.Fn) []*rtl.Instr {
		r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Add, r1, rtl.C(2), rtl.C(3)),
			rtl.BinI(rtl.Mul, r2, rtl.C(4), rtl.C(5)),
			rtl.SBinI(rtl.SetLT, r3, rtl.C(-1), rtl.C(1)),
			rtl.RetI(rtl.R(r3)),
		}
	})
	opt.FoldConstants(f)
	for i, want := range []int64{5, 20, 1} {
		in := f.Entry().Instrs[i]
		if in.Op != rtl.Mov {
			t.Errorf("instr %d not folded: %s", i, in)
			continue
		}
		if v, _ := in.A.IsConst(); v != want {
			t.Errorf("instr %d folded to %d, want %d", i, v, want)
		}
	}
}

func TestFoldIdentities(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		r1, r2, r3, r4, r5 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Add, r1, rtl.R(p), rtl.C(0)), // p
			rtl.BinI(rtl.Mul, r2, rtl.R(p), rtl.C(1)), // p
			rtl.BinI(rtl.Mul, r3, rtl.R(p), rtl.C(0)), // 0
			rtl.BinI(rtl.Sub, r4, rtl.R(p), rtl.R(p)), // 0
			rtl.BinI(rtl.Shl, r5, rtl.R(p), rtl.C(0)), // p
			rtl.RetI(rtl.R(r5)),
		}
	})
	opt.FoldConstants(f)
	ins := f.Entry().Instrs
	for _, i := range []int{0, 1, 4} {
		if ins[i].Op != rtl.Mov {
			t.Errorf("identity %d not simplified: %s", i, ins[i])
		}
		if r, ok := ins[i].A.IsReg(); !ok || r != f.Params[0] {
			t.Errorf("identity %d wrong value: %s", i, ins[i])
		}
	}
	for _, i := range []int{2, 3} {
		if v, ok := ins[i].A.IsConst(); ins[i].Op != rtl.Mov || !ok || v != 0 {
			t.Errorf("zero identity %d not simplified: %s", i, ins[i])
		}
	}
}

func TestFoldBranchOnConstant(t *testing.T) {
	f := rtl.NewFn("t", 0)
	b1 := f.NewBlock("then")
	b2 := f.NewBlock("else")
	f.Entry().Instrs = []*rtl.Instr{rtl.BranchI(rtl.C(0), b1, b2)}
	b1.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(1))}
	b2.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(2))}
	opt.FoldConstants(f)
	term := f.Entry().Term()
	if term.Op != rtl.Jump || term.Target != b2 {
		t.Errorf("branch on 0 should become jump to else: %s", term)
	}
	opt.RemoveUnreachable(f)
	if len(f.Blocks) != 2 {
		t.Errorf("unreachable then-block not removed: %d blocks", len(f.Blocks))
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	f := linear(0, func(f *rtl.Fn) []*rtl.Instr {
		r := f.NewReg()
		return []*rtl.Instr{
			rtl.SBinI(rtl.Div, r, rtl.C(5), rtl.C(0)),
			rtl.RetI(rtl.R(r)),
		}
	})
	opt.FoldConstants(f)
	if f.Entry().Instrs[0].Op != rtl.Div {
		t.Error("division by zero must stay a runtime trap")
	}
}

func TestPropagateLocalChains(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		t1, t2, t3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.MovI(t1, rtl.C(7)),
			rtl.MovI(t2, rtl.R(t1)),
			rtl.BinI(rtl.Add, t3, rtl.R(t2), rtl.R(p)),
			rtl.RetI(rtl.R(t3)),
		}
	})
	opt.PropagateLocal(f)
	add := f.Entry().Instrs[2]
	if v, ok := add.A.IsConst(); !ok || v != 7 {
		t.Errorf("constant not propagated through copy chain: %s", add)
	}
}

func TestPropagateLocalRespectsKills(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		t1, t2 := f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.MovI(t1, rtl.R(p)),                   // t1 = p
			rtl.BinI(rtl.Add, p, rtl.R(p), rtl.C(1)), // p changes
			rtl.MovI(t2, rtl.R(t1)),                  // must NOT become p
			rtl.RetI(rtl.R(t2)),
		}
	})
	opt.PropagateLocal(f)
	mv := f.Entry().Instrs[2]
	if r, ok := mv.A.IsReg(); !ok || r != f.Entry().Instrs[0].Dst {
		t.Errorf("stale copy propagated across kill: %s", mv)
	}
}

func TestLocalCSE(t *testing.T) {
	f := linear(2, func(f *rtl.Fn) []*rtl.Instr {
		a, b := f.Params[0], f.Params[1]
		t1, t2, t3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Add, t1, rtl.R(a), rtl.R(b)),
			rtl.BinI(rtl.Add, t2, rtl.R(a), rtl.R(b)), // CSE with t1
			rtl.BinI(rtl.Mul, t3, rtl.R(t1), rtl.R(t2)),
			rtl.RetI(rtl.R(t3)),
		}
	})
	opt.LocalCSE(f)
	second := f.Entry().Instrs[1]
	if second.Op != rtl.Mov {
		t.Errorf("redundant add not CSEd: %s", second)
	}
}

func TestLocalCSEKilledByOperandRedef(t *testing.T) {
	f := linear(2, func(f *rtl.Fn) []*rtl.Instr {
		a, b := f.Params[0], f.Params[1]
		t1, t2 := f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Add, t1, rtl.R(a), rtl.R(b)),
			rtl.BinI(rtl.Add, a, rtl.R(a), rtl.C(1)),  // a changes
			rtl.BinI(rtl.Add, t2, rtl.R(a), rtl.R(b)), // NOT the same value
			rtl.RetI(rtl.R(t2)),
		}
	})
	opt.LocalCSE(f)
	third := f.Entry().Instrs[2]
	if third.Op != rtl.Add {
		t.Errorf("CSE across operand redefinition: %s", third)
	}
}

func TestLocalCSELoadsKilledByStore(t *testing.T) {
	f := linear(2, func(f *rtl.Fn) []*rtl.Instr {
		p, q := f.Params[0], f.Params[1]
		t1, t2 := f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.LoadI(t1, rtl.R(p), 0, rtl.W4, true),
			rtl.StoreI(rtl.R(q), 0, rtl.C(5), rtl.W4),
			rtl.LoadI(t2, rtl.R(p), 0, rtl.W4, true), // may alias the store
			rtl.RetI(rtl.R(t2)),
		}
	})
	opt.LocalCSE(f)
	if f.Entry().Instrs[2].Op != rtl.Load {
		t.Error("load reused across a potentially aliasing store")
	}
}

func TestLocalCSELoadsReusedWithoutStore(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		t1, t2, t3 := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.LoadI(t1, rtl.R(p), 4, rtl.W2, false),
			rtl.LoadI(t2, rtl.R(p), 4, rtl.W2, false),
			rtl.BinI(rtl.Add, t3, rtl.R(t1), rtl.R(t2)),
			rtl.RetI(rtl.R(t3)),
		}
	})
	opt.LocalCSE(f)
	if f.Entry().Instrs[1].Op != rtl.Mov {
		t.Error("identical load not reused")
	}
}

func TestDeadCodeElimChains(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		d1, d2, live := f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.BinI(rtl.Add, d1, rtl.R(p), rtl.C(1)),  // dead via d2
			rtl.BinI(rtl.Mul, d2, rtl.R(d1), rtl.C(3)), // dead
			rtl.BinI(rtl.Add, live, rtl.R(p), rtl.C(2)),
			rtl.RetI(rtl.R(live)),
		}
	})
	opt.DeadCodeElim(f)
	if n := len(f.Entry().Instrs); n != 2 {
		t.Errorf("dead chain not removed: %d instrs", n)
	}
}

func TestDeadCodeKeepsSideEffects(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		d := f.NewReg()
		return []*rtl.Instr{
			rtl.StoreI(rtl.R(p), 0, rtl.C(1), rtl.W4),
			rtl.CallI(d, "g"), // result unused, call must stay
			rtl.RetI(rtl.C(0)),
		}
	})
	opt.DeadCodeElim(f)
	if countOp(f, rtl.Store) != 1 || countOp(f, rtl.Call) != 1 {
		t.Error("side-effecting instructions removed")
	}
}

func TestCollapseMovChains(t *testing.T) {
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		i := f.NewReg()
		tmp := f.NewReg()
		return []*rtl.Instr{
			rtl.MovI(i, rtl.C(0)),
			rtl.BinI(rtl.Add, tmp, rtl.R(i), rtl.C(1)),
			rtl.MovI(i, rtl.R(tmp)),
			rtl.RetI(rtl.R(i)),
		}
	})
	opt.CollapseMovChains(f)
	opt.DeadCodeElim(f)
	// The add should now target i directly: i = i + 1.
	found := false
	for _, in := range f.Entry().Instrs {
		if in.Op == rtl.Add {
			if r, ok := in.A.IsReg(); ok && in.Dst == r {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("induction update not collapsed:\n%s", f)
	}
}

func TestCollapseRefusesWhenUnsafe(t *testing.T) {
	// v is read between the def of t and the mov v = t: collapsing would
	// change the read.
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		v := f.NewReg()
		tm := f.NewReg()
		sink := f.NewReg()
		return []*rtl.Instr{
			rtl.MovI(v, rtl.C(5)),
			rtl.BinI(rtl.Add, tm, rtl.R(v), rtl.C(1)),
			rtl.BinI(rtl.Mul, sink, rtl.R(v), rtl.C(2)), // reads v
			rtl.MovI(v, rtl.R(tm)),
			rtl.BinI(rtl.Add, sink, rtl.R(sink), rtl.R(v)),
			rtl.RetI(rtl.R(sink)),
		}
	})
	before := f.String()
	opt.CollapseMovChains(f)
	// The mul must still read the OLD v; verify v=tm mov either stayed or
	// the rewrite kept the read-before-write ordering. Simplest check: the
	// mul still precedes any redefinition of v.
	ins := f.Entry().Instrs
	mulIdx, defIdx := -1, -1
	for i, in := range ins {
		if in.Op == rtl.Mul {
			mulIdx = i
		}
		if d, ok := in.Def(); ok && d == ins[0].Dst && i > 0 && defIdx < 0 {
			defIdx = i
		}
	}
	if mulIdx == -1 || defIdx == -1 || mulIdx > defIdx {
		t.Errorf("unsafe collapse reordered read/write:\nbefore:\n%safter:\n%s", before, f)
	}
}

func TestThreadJumps(t *testing.T) {
	f := rtl.NewFn("t", 0)
	tramp := f.NewBlock("tramp")
	final := f.NewBlock("final")
	f.Entry().Instrs = []*rtl.Instr{rtl.JumpI(tramp)}
	tramp.Instrs = []*rtl.Instr{rtl.JumpI(final)}
	final.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(0))}
	opt.ThreadJumps(f)
	if f.Entry().Term().Target != final {
		t.Error("jump not threaded through trampoline")
	}
	if len(f.Blocks) != 2 {
		t.Errorf("trampoline not removed: %d blocks", len(f.Blocks))
	}
}

func TestEliminateDeadIVs(t *testing.T) {
	// i is initialized and self-incremented but otherwise unused (the
	// post-LFTR shape); v is a live accumulator that must stay.
	f := rtl.NewFn("t", 1)
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	exit := f.NewBlock("e")
	i, v, cond := f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{
		rtl.MovI(i, rtl.C(0)), rtl.MovI(v, rtl.C(0)), rtl.JumpI(header),
	}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(v), rtl.R(f.Params[0])),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)),
		rtl.BinI(rtl.Add, v, rtl.R(v), rtl.C(2)),
		rtl.JumpI(header),
	}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(v))}

	if !opt.EliminateDeadIVs(f) {
		t.Fatal("dead IV not found")
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok && d == i {
				t.Errorf("dead IV definition survives: %s", in)
			}
			if d, ok := in.Def(); ok && d == v && in.Op == rtl.Add {
				// good: live accumulator kept
			}
		}
	}
	if countOp(f, rtl.Add) != 1 {
		t.Errorf("live accumulator update removed")
	}
}

func TestNormalizeAddressesFoldsUnrolledChain(t *testing.T) {
	// p0 = p + 2 ; load [p0] ; p1 = p0 + 2 ; load [p1] ; p = p1
	f := linear(1, func(f *rtl.Fn) []*rtl.Instr {
		p := f.Params[0]
		p0, p1, v0, v1, s := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
		return []*rtl.Instr{
			rtl.LoadI(v0, rtl.R(p), 0, rtl.W2, true),
			rtl.BinI(rtl.Add, p0, rtl.R(p), rtl.C(2)),
			rtl.LoadI(v1, rtl.R(p0), 0, rtl.W2, true),
			rtl.BinI(rtl.Add, p1, rtl.R(p0), rtl.C(2)),
			rtl.MovI(p, rtl.R(p1)),
			rtl.BinI(rtl.Add, s, rtl.R(v0), rtl.R(v1)),
			rtl.RetI(rtl.R(s)),
		}
	})
	opt.NormalizeAddresses(f)
	ins := f.Entry().Instrs
	// Second load must now be [p+2].
	ld := ins[2]
	if r, _ := ld.A.IsReg(); r != f.Params[0] || ld.Disp != 2 {
		t.Errorf("load not rebased: %s", ld)
	}
	// The mov-back must become p = p + 4.
	mv := ins[4]
	if mv.Op != rtl.Add || mv.Disp != 0 {
		t.Errorf("mov-back not rewritten to add: %s", mv)
	}
	if c, _ := mv.B.IsConst(); c != 4 {
		t.Errorf("mov-back folded to wrong constant: %s", mv)
	}
	opt.DeadCodeElim(f)
	if countOp(f, rtl.Add) != 2 { // p update + the live sum
		t.Errorf("chain not dead after rebasing:\n%s", f)
	}
}

func TestHoistInvariants(t *testing.T) {
	f := rtl.NewFn("t", 2)
	n, k := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, acc, inv, cond := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Mul, inv, rtl.R(k), rtl.C(3)), // invariant
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(inv)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}

	g := cfg.New(f)
	l := g.FindLoops()[0]
	g.EnsurePreheader(l)
	if !opt.HoistInvariants(f, g, l) {
		t.Fatal("nothing hoisted")
	}
	if countOp(f, rtl.Mul) != 1 {
		t.Fatal("multiply lost")
	}
	for _, in := range body.Instrs {
		if in.Op == rtl.Mul {
			t.Error("invariant multiply still in loop body")
		}
	}
	found := false
	for _, in := range l.Preheader.Instrs {
		if in.Op == rtl.Mul {
			found = true
		}
	}
	if !found {
		t.Error("multiply not in preheader")
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
}

func TestHoistRefusesVariantAndDivision(t *testing.T) {
	f := rtl.NewFn("t", 2)
	n, k := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, acc, varying, quot, cond := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Mul, varying, rtl.R(i), rtl.C(3)), // depends on IV
		rtl.SBinI(rtl.Div, quot, rtl.C(100), rtl.R(k)), // divisor not constant: may trap
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(varying)),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(quot)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}

	g := cfg.New(f)
	l := g.FindLoops()[0]
	g.EnsurePreheader(l)
	opt.HoistInvariants(f, g, l)
	for _, in := range l.Preheader.Instrs {
		if in.Op == rtl.Mul || in.Op == rtl.Div {
			t.Errorf("unsafe hoist: %s", in)
		}
	}
}

func TestGlobalDCERemovesVersionLocalDeadCode(t *testing.T) {
	// Two alternative paths define and use r9 ("v"); on the left path the
	// value is recomputed but never consumed before the path rejoins and
	// returns a constant, so the left path's definition is dead even though
	// r9 has textual uses on the right path. Use-count DCE cannot see this;
	// liveness-based DCE must.
	f := rtl.NewFn("t", 1)
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")
	v := f.NewReg()
	f.Entry().Instrs = []*rtl.Instr{
		rtl.MovI(v, rtl.C(1)),
		rtl.BranchI(rtl.R(f.Params[0]), left, right),
	}
	left.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Mul, v, rtl.R(v), rtl.C(100)), // dead: join returns const
		rtl.JumpI(join),
	}
	right.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, v, rtl.R(v), rtl.C(1)), // also dead at join
		rtl.JumpI(join),
	}
	join.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(42))}
	if !opt.GlobalDCE(f) {
		t.Fatal("nothing removed")
	}
	if countOp(f, rtl.Mul) != 0 || countOp(f, rtl.Add) != 0 {
		t.Errorf("dead path-local defs survive:\n%s", f)
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
}

func TestGlobalDCEKeepsLoopCarried(t *testing.T) {
	f := rtl.NewFn("t", 1)
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	exit := f.NewBlock("e")
	i, cond := f.NewReg(), f.NewReg()
	f.Entry().Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(f.Params[0])),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)),
		rtl.JumpI(header),
	}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(i))}
	opt.GlobalDCE(f)
	if countOp(f, rtl.Add) != 1 {
		t.Error("loop-carried increment removed")
	}
}
