package opt

import (
	"math/bits"

	"macc/internal/dataflow"
	"macc/internal/rtl"
)

// Peephole applies machine-independent strength reductions and branch
// simplifications:
//
//   - multiply by a power-of-two constant becomes a shift;
//   - unsigned divide/remainder by a power of two becomes a shift/mask;
//   - a branch on "x != 0" branches on x directly;
//   - a branch on "cmp == 0" branches on the inverted comparison.
//
// These mirror vpo's peephole stage; they also keep the scheduler's latency
// estimates honest, since multiplies are the slowest ALU operation on all
// three machine models.
func Peephole(f *rtl.Fn) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if reduceInstr(in) {
				changed = true
			}
		}
	}
	if simplifyBranches(f) {
		changed = true
	}
	return changed
}

func reduceInstr(in *rtl.Instr) bool {
	cOf := func(o rtl.Operand) (int64, bool) {
		v, ok := o.IsConst()
		if !ok || v <= 0 || v&(v-1) != 0 {
			return 0, false
		}
		return int64(bits.TrailingZeros64(uint64(v))), true
	}
	switch in.Op {
	case rtl.Mul:
		if sh, ok := cOf(in.B); ok {
			*in = rtl.Instr{Op: rtl.Shl, Dst: in.Dst, A: in.A, B: rtl.C(sh)}
			return true
		}
		if sh, ok := cOf(in.A); ok {
			*in = rtl.Instr{Op: rtl.Shl, Dst: in.Dst, A: in.B, B: rtl.C(sh)}
			return true
		}
	case rtl.Div:
		if in.Signed {
			return false // signed division by 2^k needs rounding fixups
		}
		if sh, ok := cOf(in.B); ok {
			*in = rtl.Instr{Op: rtl.Shr, Dst: in.Dst, A: in.A, B: rtl.C(sh)}
			return true
		}
	case rtl.Rem:
		if in.Signed {
			return false
		}
		if v, ok := in.B.IsConst(); ok && v > 0 && v&(v-1) == 0 {
			*in = rtl.Instr{Op: rtl.And, Dst: in.Dst, A: in.A, B: rtl.C(v - 1)}
			return true
		}
	}
	return false
}

// simplifyBranches looks at each block terminator: when the branch
// condition is a single-definition, single-use comparison against zero
// defined in the same block, the comparison folds into the branch.
func simplifyBranches(f *rtl.Fn) bool {
	du := dataflow.ComputeDefUse(f)
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != rtl.Branch {
			continue
		}
		condReg, ok := t.A.IsReg()
		if !ok {
			continue
		}
		site, ok := du.SingleDef(condReg)
		if !ok || site.Block != b || du.UseCount(condReg) != 1 {
			continue
		}
		def := site.Instr
		zeroCmp := func() (rtl.Operand, bool) {
			if v, isC := def.B.IsConst(); isC && v == 0 {
				return def.A, true
			}
			return rtl.Operand{}, false
		}
		switch def.Op {
		case rtl.SetNE:
			// branch (x != 0) T F  =>  branch x T F
			if x, ok := zeroCmp(); ok {
				t.A = x
				*def = rtl.Instr{Op: rtl.Nop}
				changed = true
			}
		case rtl.SetEQ:
			// branch (x == 0) T F  =>  branch x F T
			if x, ok := zeroCmp(); ok {
				t.A = x
				t.Target, t.Else = t.Else, t.Target
				*def = rtl.Instr{Op: rtl.Nop}
				changed = true
			}
		}
	}
	if changed {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op != rtl.Nop {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
	}
	return changed
}
