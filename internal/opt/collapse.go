package opt

import "macc/internal/rtl"

// CollapseMovChains rewrites "t = x op y; ...; v = t" (t defined and used
// exactly once, both in the same block) into "...; v = x op y", deleting the
// temporary. Front-end output assigns every expression to a fresh register
// and then moves it into the variable's home register, which hides
// induction updates ("i = i + 1" arrives as "t = i + 1; i = t") from the
// loop analyses; this pass restores the canonical form.
func CollapseMovChains(f *rtl.Fn) bool {
	// Global single-def/single-use counts.
	defCount := make([]int, f.NumRegs())
	useCount := make([]int, f.NumRegs())
	var regs []rtl.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok {
				defCount[d]++
			}
			regs = in.Uses(regs[:0])
			for _, r := range regs {
				useCount[r]++
			}
		}
	}
	for _, p := range f.Params {
		defCount[p]++
	}

	changed := false
	for _, b := range f.Blocks {
		defAt := make(map[rtl.Reg]int) // reg -> index of def within this block
		for i, in := range b.Instrs {
			if in.Op == rtl.Mov {
				if t, ok := in.A.IsReg(); ok && defCount[t] == 1 && useCount[t] == 1 {
					if di, here := defAt[t]; here && movable(b, di, i, in.Dst) {
						def := b.Instrs[di]
						if fusable(def) {
							nd := in.Dst
							*in = *def
							in.Dst = nd
							*def = rtl.Instr{Op: rtl.Nop}
							changed = true
						}
					}
				}
			}
			if d, ok := in.Def(); ok {
				defAt[d] = i
			}
		}
		if changed {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op != rtl.Nop {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
	}
	return changed
}

// fusable ops are pure register computations safe to relocate forward.
func fusable(in *rtl.Instr) bool {
	switch in.Op {
	case rtl.Mov, rtl.Neg, rtl.Not, rtl.Extract, rtl.Insert:
		return true
	}
	return in.Op.IsBinary()
}

// movable checks that relocating the computation at di down to position j
// is safe: none of its source registers is redefined in between, and the
// destination register v is neither read nor written in between.
func movable(b *rtl.Block, di, j int, v rtl.Reg) bool {
	def := b.Instrs[di]
	srcs := def.Uses(nil)
	for k := di + 1; k < j; k++ {
		in := b.Instrs[k]
		if d, ok := in.Def(); ok {
			if d == v {
				return false
			}
			for _, s := range srcs {
				if d == s {
					return false
				}
			}
		}
		if in.UsesReg(v) {
			return false
		}
	}
	return true
}
