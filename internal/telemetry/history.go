package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// HistorySchema versions the /metrics/history payload.
const HistorySchema = "macc-metrics-history/v1"

// DefaultHistoryCap bounds the history ring: at the default 5s interval,
// 120 samples cover the last ten minutes.
const DefaultHistoryCap = 120

// DefaultHistoryInterval is the snapshot period when the caller does not
// choose one.
const DefaultHistoryInterval = 5 * time.Second

// HistorySample is one periodic freeze of a registry, with the counter
// deltas and per-second rates since the previous sample — the view that
// turns lifetime totals into rates over time.
type HistorySample struct {
	Seq      int      `json:"seq"`
	At       string   `json:"at"` // RFC 3339 with sub-second precision, UTC
	UnixNano int64    `json:"unix_nano"`
	Snapshot Snapshot `json:"snapshot"`
	// CounterDeltas holds, for each counter that moved since the previous
	// sample, how far it moved. Empty on the first sample.
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
	// CounterRates is CounterDeltas divided by the elapsed seconds.
	CounterRates map[string]float64 `json:"counter_rates,omitempty"`
}

// History is a bounded ring of periodic registry snapshots. Safe for
// concurrent use; Record may be driven by a ticker goroutine (Start) or
// called manually (tests, one-shot tools).
type History struct {
	mu      sync.Mutex
	reg     *Registry
	cap     int
	samples []HistorySample
	seq     int
	prev    Snapshot
	prevAt  time.Time
	hasPrev bool
}

// NewHistory returns an empty history over reg. capacity <= 0 selects
// DefaultHistoryCap.
func NewHistory(reg *Registry, capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCap
	}
	return &History{reg: reg, cap: capacity}
}

// Record takes one snapshot now and appends it to the ring, evicting the
// oldest sample when full. Deltas are computed against the previous Record
// call even if that sample has been evicted.
func (h *History) Record() HistorySample {
	now := time.Now()
	snap := h.reg.Snapshot()

	h.mu.Lock()
	defer h.mu.Unlock()
	h.seq++
	s := HistorySample{
		Seq:      h.seq,
		At:       now.UTC().Format(time.RFC3339Nano),
		UnixNano: now.UnixNano(),
		Snapshot: snap,
	}
	if h.hasPrev {
		elapsed := now.Sub(h.prevAt).Seconds()
		for name, v := range snap.Counters {
			d := v - h.prev.Counters[name]
			if d == 0 {
				continue
			}
			if s.CounterDeltas == nil {
				s.CounterDeltas = make(map[string]int64)
				s.CounterRates = make(map[string]float64)
			}
			s.CounterDeltas[name] = d
			if elapsed > 0 {
				s.CounterRates[name] = float64(d) / elapsed
			}
		}
	}
	h.prev, h.prevAt, h.hasPrev = snap, now, true
	h.samples = append(h.samples, s)
	if len(h.samples) > h.cap {
		h.samples = h.samples[len(h.samples)-h.cap:]
	}
	return s
}

// Start records every interval until the returned stop function is called.
// interval <= 0 selects DefaultHistoryInterval.
func (h *History) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Record()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Samples returns the retained samples, oldest first.
func (h *History) Samples() []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HistorySample, len(h.samples))
	copy(out, h.samples)
	return out
}

// historyPayload is the /metrics/history JSON envelope.
type historyPayload struct {
	Schema   string          `json:"schema"`
	Capacity int             `json:"capacity"`
	Samples  []HistorySample `json:"samples"`
}

// WriteJSON renders the ring under the macc-metrics-history/v1 envelope.
func (h *History) WriteJSON(w io.Writer) error {
	p := historyPayload{Schema: HistorySchema, Capacity: h.cap, Samples: h.Samples()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ServeHTTP serves the ring as JSON (mount at /metrics/history).
func (h *History) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := h.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
