package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Span is one pass run over one function: its wall time, its IR delta
// (instruction and block counts before → after), and whether the hardened
// pipeline rolled it back. Rolled-back spans carry the failure message, the
// trace-side mirror of the pipeline.Diagnostics incident.
type Span struct {
	Pass         string        `json:"pass"`
	Fn           string        `json:"fn"`
	Start        time.Duration `json:"start_ns"`
	Dur          time.Duration `json:"dur_ns"`
	InstrsBefore int           `json:"instrs_before"`
	InstrsAfter  int           `json:"instrs_after"`
	BlocksBefore int           `json:"blocks_before"`
	BlocksAfter  int           `json:"blocks_after"`
	Remarks      int           `json:"remarks"`
	RolledBack   bool          `json:"rolled_back,omitempty"`
	Err          string        `json:"err,omitempty"`
}

// traceEvent is one Chrome trace_event entry. The format is documented in
// the Trace Event Format spec; "ph":"X" complete events with microsecond
// ts/dur load directly in about://tracing and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the recorder's spans as Chrome trace_event JSON. Each
// function gets its own tid row so per-function pipelines read as lanes;
// rolled-back passes are categorized "rollback" and colored differently by
// the viewer.
func (r *Recorder) WriteTrace(w io.Writer) error {
	spans := r.Spans()
	tids := make(map[string]int)
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for _, s := range spans {
		tid, ok := tids[s.Fn]
		if !ok {
			tid = len(tids) + 1
			tids[s.Fn] = tid
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": s.Fn},
			})
		}
		cat := "pass"
		if s.RolledBack {
			cat = "rollback"
		}
		ev := traceEvent{
			Name: s.Pass,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{
				"fn":            s.Fn,
				"instrs_before": s.InstrsBefore,
				"instrs_after":  s.InstrsAfter,
				"instrs_delta":  s.InstrsAfter - s.InstrsBefore,
				"blocks_before": s.BlocksBefore,
				"blocks_after":  s.BlocksAfter,
				"remarks":       s.Remarks,
			},
		}
		if s.RolledBack {
			ev.Args["rolled_back"] = true
			ev.Args["error"] = s.Err
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
