package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Span is one pass run over one function: its wall time, its IR delta
// (instruction and block counts before → after), and whether the hardened
// pipeline rolled it back. Rolled-back spans carry the failure message, the
// trace-side mirror of the pipeline.Diagnostics incident.
type Span struct {
	Pass         string        `json:"pass"`
	Fn           string        `json:"fn"`
	Start        time.Duration `json:"start_ns"`
	Dur          time.Duration `json:"dur_ns"`
	InstrsBefore int           `json:"instrs_before"`
	InstrsAfter  int           `json:"instrs_after"`
	BlocksBefore int           `json:"blocks_before"`
	BlocksAfter  int           `json:"blocks_after"`
	Remarks      int           `json:"remarks"`
	RolledBack   bool          `json:"rolled_back,omitempty"`
	Err          string        `json:"err,omitempty"`
	// PID identifies the worker (or process) that recorded the span; 0
	// means unattributed and renders as process 1. The parallel bench
	// harness stamps each cell's spans with its worker's ID so merged
	// traces from RunTable -j get one process row per worker instead of
	// interleaving into one.
	PID int `json:"pid,omitempty"`
}

// traceEvent is one Chrome trace_event entry. The format is documented in
// the Trace Event Format spec; "ph":"X" complete events with microsecond
// ts/dur load directly in about://tracing and Perfetto.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the recorder's spans as Chrome trace_event JSON. Each
// function gets its own tid row so per-function pipelines read as lanes;
// rolled-back passes are categorized "rollback" and colored differently by
// the viewer.
func (r *Recorder) WriteTrace(w io.Writer) error {
	return WriteTraceEvents(w, r.Spans())
}

// SpansSince returns the recorder's spans rebased onto epoch: each span's
// Start becomes its offset from epoch instead of from the recorder's own
// start time. Merging spans from many recorders (one per bench cell) onto
// one timeline is then just concatenation.
func (r *Recorder) SpansSince(epoch time.Time) []Span {
	shift := r.StartTime().Sub(epoch)
	spans := r.Spans()
	for i := range spans {
		spans[i].Start += shift
	}
	return spans
}

// WriteTraceEvents renders pass spans — possibly harvested from several
// recorders — as Chrome trace_event JSON. Spans are grouped by PID into
// process rows (pid 0 renders as process 1, unnamed); within a process,
// each function gets its own tid lane. The parallel bench harness stamps
// spans with worker PIDs before merging, so a -j trace shows one labeled
// process row per worker rather than every worker interleaved on one row.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	pidSeen := make(map[int]bool)
	type laneKey struct {
		pid int
		fn  string
	}
	tids := make(map[laneKey]int)
	laneCount := make(map[int]int)
	for _, s := range spans {
		pid := s.PID
		if pid == 0 {
			pid = 1
		}
		if s.PID != 0 && !pidSeen[pid] {
			pidSeen[pid] = true
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
				Args: map[string]any{"name": "worker " + itoa(int64(pid))},
			})
		}
		key := laneKey{pid, s.Fn}
		tid, ok := tids[key]
		if !ok {
			laneCount[pid]++
			tid = laneCount[pid]
			tids[key] = tid
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": s.Fn},
			})
		}
		cat := "pass"
		if s.RolledBack {
			cat = "rollback"
		}
		ev := traceEvent{
			Name: s.Pass,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  tid,
			Args: map[string]any{
				"fn":            s.Fn,
				"instrs_before": s.InstrsBefore,
				"instrs_after":  s.InstrsAfter,
				"instrs_delta":  s.InstrsAfter - s.InstrsBefore,
				"blocks_before": s.BlocksBefore,
				"blocks_after":  s.BlocksAfter,
				"remarks":       s.Remarks,
			},
		}
		if s.RolledBack {
			ev.Args["rolled_back"] = true
			ev.Args["error"] = s.Err
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
