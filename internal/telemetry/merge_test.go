package telemetry

import (
	"testing"
	"unsafe"
)

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(3)
	b.Counter("x").Add(4)
	b.Counter("y").Add(1)
	b.Gauge("g").Set(2.5)
	a.Histogram("h").Observe(10)
	b.Histogram("h").Observe(1000)
	b.Histogram("h").Observe(2)

	a.Merge(b)
	if got := a.CounterValue("x"); got != 7 {
		t.Errorf("x = %d, want 7", got)
	}
	if got := a.CounterValue("y"); got != 1 {
		t.Errorf("y = %d, want 1", got)
	}
	if got := a.Gauge("g").Value(); got != 2.5 {
		t.Errorf("g = %v, want 2.5", got)
	}
	hs := a.Histogram("h").Snapshot()
	if hs.Count != 3 || hs.Sum != 1012 || hs.Min != 2 || hs.Max != 1000 {
		t.Errorf("h = %+v, want count 3 sum 1012 min 2 max 1000", hs)
	}
}

func TestRegistryMergeEmptyHistogram(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h").Observe(5)
	b.Histogram("h") // registered but never observed
	a.Merge(b)
	hs := a.Histogram("h").Snapshot()
	if hs.Count != 1 || hs.Min != 5 || hs.Max != 5 {
		t.Errorf("merge of empty histogram corrupted state: %+v", hs)
	}
}

// TestCounterPadding pins the false-sharing pad: adjacent counters must not
// share a 64-byte cache line.
func TestCounterPadding(t *testing.T) {
	if n := unsafe.Sizeof(Counter{}); n < 64 {
		t.Errorf("Counter is %d bytes, want >= 64 (cache-line pad)", n)
	}
	if n := unsafe.Sizeof(Gauge{}); n < 64 {
		t.Errorf("Gauge is %d bytes, want >= 64 (cache-line pad)", n)
	}
}
