// Package dtrace is a dependency-free distributed-tracing layer for the
// compile farm. It propagates W3C-traceparent-style context across HTTP
// hops, records spans into a per-process Tracer whose bounded ring of
// recent traces doubles as a flight recorder, and exports any trace as
// Chrome trace_event JSON.
//
// The model is deliberately small: a Span is a completed interval with a
// trace ID, a span ID, an optional parent, a service name, a kind, and
// string attributes. Processes exchange spans two ways: the traceparent
// header parents a server's ingress span under the caller's attempt span,
// and completed spans can be pushed (POST /debug/spans) or pulled
// (/debug/trace/<id>?scope=local) so the replica answering a trace query
// can assemble the full tree.
package dtrace

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceID identifies one request end to end across every hop.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }
func (s SpanID) IsZero() bool  { return s == SpanID{} }

// SpanContext is the propagated part of a span: enough to parent children
// in another process.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a usable trace and span ID.
func (sc SpanContext) Valid() bool { return !sc.Trace.IsZero() && !sc.Span.IsZero() }

// Header is the propagation header name (the W3C trace-context header).
const Header = "traceparent"

// Traceparent renders the context in W3C form:
// "00-<32 hex trace-id>-<16 hex span-id>-01".
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

var errTraceparent = errors.New("dtrace: malformed traceparent")

// ParseTraceparent parses a W3C traceparent header. Unknown versions are
// accepted as long as the field shape matches version 00; all-zero trace or
// span IDs are rejected, per the spec.
func ParseTraceparent(s string) (SpanContext, error) {
	// version(2) '-' trace(32) '-' span(16) '-' flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, errTraceparent
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, errTraceparent
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, errTraceparent
	}
	if !sc.Valid() {
		return SpanContext{}, errTraceparent
	}
	return sc, nil
}

// ParseTraceID parses a 32-hex-digit trace ID (as printed by
// TraceID.String and surfaced in exemplars and /debug/trace URLs).
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return TraceID{}, errTraceparent
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, errTraceparent
	}
	if t.IsZero() {
		return TraceID{}, errTraceparent
	}
	return t, nil
}

// Span is one completed interval. IDs are hex strings so spans serialize
// directly on the wire and merge trivially across processes; Start is
// absolute unix nanoseconds so spans recorded by different processes on
// the same machine line up on one timeline.
type Span struct {
	Trace   string            `json:"trace"`
	ID      string            `json:"id"`
	Parent  string            `json:"parent,omitempty"`
	Service string            `json:"service"`
	Name    string            `json:"name"`
	Kind    string            `json:"kind"`
	Start   int64             `json:"start_unix_ns"`
	Dur     int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Err     string            `json:"err,omitempty"`
}

// Span kinds recorded by the farm. Kind is the coarse taxonomy queries and
// CI assertions key on; Name carries the specific operation.
const (
	KindIngress = "ingress" // maccd HTTP handler, queue wait included
	KindCall    = "call"    // one farm.Client logical call (all attempts)
	KindAttempt = "attempt" // one HTTP attempt leg (primary or hedge)
	KindLookup  = "lookup"  // peer cache lookup round
	KindCache   = "cache"   // ccache tier decision (mem/disk/peer/miss)
	KindWait    = "wait"    // singleflight wait behind an identical compile
	KindCompute = "compute" // cold compile under the singleflight leader
	KindPass    = "pass"    // one pipeline pass (linked from telemetry.Recorder)
	KindRun     = "run"     // simulator execution for /run
	KindBreaker = "breaker" // breaker short-circuit (no peer admitted)
	KindRequest = "request" // client-side root (loadgen, macc -server)
)

// maxSpansPerTrace bounds one trace's buffered spans, so a buggy or
// malicious /debug/spans pusher cannot grow a replica without bound.
const maxSpansPerTrace = 4096

// DefaultFlightCap is the default number of recent traces a Tracer
// retains (per ring: recent and incident).
const DefaultFlightCap = 256

type traceBuf struct {
	spans    []Span
	incident bool
	touched  time.Time
}

// Tracer records spans for one process ("service"). It keeps a bounded
// ring of recent traces — the flight recorder — plus a parallel ring of
// incident traces (marked on 5xx) that survive recent-ring churn.
//
// A nil *Tracer is a valid no-op: every method works and records nothing,
// so call sites thread tracers without nil checks.
type Tracer struct {
	service string
	cap     int

	mu        sync.Mutex
	traces    map[string]*traceBuf
	recent    []string // FIFO of non-incident trace IDs
	incidents []string // FIFO of incident trace IDs
	rng       *rand.Rand
	spanCount int64
}

// New returns a Tracer for the named service retaining up to capacity
// recent traces (and as many incident traces). capacity <= 0 uses
// DefaultFlightCap.
func New(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	seed := time.Now().UnixNano() ^ int64(os.Getpid())<<32
	return &Tracer{
		service: service,
		cap:     capacity,
		traces:  make(map[string]*traceBuf),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Service returns the service name spans are stamped with.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	t.rng.Read(id[:])
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	t.rng.Read(id[:])
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// ActiveSpan is an in-progress span. End() stamps the duration and files
// it with the tracer. Methods on a nil ActiveSpan no-op.
type ActiveSpan struct {
	t     *Tracer
	sc    SpanContext
	span  Span
	start time.Time
	mu    sync.Mutex
	done  bool
}

// StartRoot opens a new trace with a root span.
func (t *Tracer) StartRoot(name, kind string) *ActiveSpan {
	return t.StartSpan(SpanContext{}, name, kind)
}

// StartSpan opens a span under parent; an invalid parent starts a new
// trace (the span becomes a root).
func (t *Tracer) StartSpan(parent SpanContext, name, kind string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var sc SpanContext
	if parent.Valid() {
		sc.Trace = parent.Trace
	} else {
		sc.Trace = t.newTraceID()
	}
	sc.Span = t.newSpanID()
	t.mu.Unlock()

	s := &ActiveSpan{
		t:     t,
		sc:    sc,
		start: time.Now(),
	}
	s.span = Span{
		Trace:   sc.Trace.String(),
		ID:      sc.Span.String(),
		Service: t.service,
		Name:    name,
		Kind:    kind,
		Start:   s.start.UnixNano(),
	}
	if parent.Valid() {
		s.span.Parent = parent.Span.String()
	}
	return s
}

// Context returns the propagation context for parenting children (valid
// even before End).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// TraceID returns the span's trace ID as hex ("" on nil).
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.span.Trace
}

// SetAttr attaches a string attribute.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// SetErr marks the span failed with msg.
func (s *ActiveSpan) SetErr(msg string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		s.span.Err = msg
	}
}

// End stamps the duration and files the span. Safe to call once; later
// calls no-op.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.span.Dur = int64(time.Since(s.start))
	sp := s.span
	s.mu.Unlock()
	s.t.Add(sp)
}

// Add files a completed span (used by End, Ingest, and LinkRecorder).
func (t *Tracer) Add(sp Span) {
	if t == nil || sp.Trace == "" || sp.ID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := t.traces[sp.Trace]
	if buf == nil {
		buf = &traceBuf{}
		t.traces[sp.Trace] = buf
		t.recent = append(t.recent, sp.Trace)
		t.evictLocked()
	}
	if len(buf.spans) >= maxSpansPerTrace {
		return
	}
	buf.spans = append(buf.spans, sp)
	buf.touched = time.Now()
	t.spanCount++
}

// Ingest files foreign spans (pushed by clients via POST /debug/spans).
// Spans with empty IDs are dropped; per-trace and ring bounds apply.
func (t *Tracer) Ingest(spans []Span) {
	if t == nil {
		return
	}
	for _, sp := range spans {
		t.Add(sp)
	}
}

// evictLocked drops the oldest recent traces above capacity. Incident
// traces live in their own FIFO with the same capacity.
func (t *Tracer) evictLocked() {
	for len(t.recent) > t.cap {
		id := t.recent[0]
		t.recent = t.recent[1:]
		if buf := t.traces[id]; buf != nil && !buf.incident {
			t.spanCount -= int64(len(buf.spans))
			delete(t.traces, id)
		}
	}
	for len(t.incidents) > t.cap {
		id := t.incidents[0]
		t.incidents = t.incidents[1:]
		if buf := t.traces[id]; buf != nil && buf.incident {
			t.spanCount -= int64(len(buf.spans))
			delete(t.traces, id)
		}
	}
}

// MarkIncident pins the trace into the incident ring so it survives
// recent-ring churn (called on 5xx responses). An unknown trace is pinned
// eagerly: its buffer is created empty so spans that End after the mark
// still attach — the ingress span of a failing request ends (and files)
// only after its handler has already marked the incident.
func (t *Tracer) MarkIncident(traceID string) {
	if t == nil || traceID == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buf := t.traces[traceID]
	if buf != nil && buf.incident {
		return
	}
	if buf == nil {
		buf = &traceBuf{touched: time.Now()}
		t.traces[traceID] = buf
	}
	buf.incident = true
	t.incidents = append(t.incidents, traceID)
	t.evictLocked()
}

// Spans returns a copy of the buffered spans for traceID, sorted by start
// time (nil when the trace is unknown or evicted).
func (t *Tracer) Spans(traceID string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	buf := t.traces[traceID]
	var out []Span
	if buf != nil {
		out = append([]Span(nil), buf.spans...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// TraceSummary is one flight-recorder line: enough to pick a trace worth
// pulling in full.
type TraceSummary struct {
	Trace    string `json:"trace"`
	Root     string `json:"root,omitempty"` // root span name, if buffered
	StartNS  int64  `json:"start_unix_ns"`
	DurNS    int64  `json:"dur_ns"` // root span duration (or span envelope)
	Spans    int    `json:"spans"`
	Incident bool   `json:"incident,omitempty"`
	Err      string `json:"err,omitempty"` // first span error, if any
}

// Summaries returns one line per retained trace, most recent first.
func (t *Tracer) Summaries() []TraceSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSummary, 0, len(t.traces))
	for id, buf := range t.traces {
		s := TraceSummary{Trace: id, Spans: len(buf.spans), Incident: buf.incident}
		var minStart, maxEnd int64
		for i, sp := range buf.spans {
			end := sp.Start + sp.Dur
			if i == 0 || sp.Start < minStart {
				minStart = sp.Start
			}
			if end > maxEnd {
				maxEnd = end
			}
			if sp.Parent == "" && s.Root == "" {
				s.Root = sp.Name
			}
			if sp.Err != "" && s.Err == "" {
				s.Err = sp.Err
			}
		}
		s.StartNS = minStart
		s.DurNS = maxEnd - minStart
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS > out[j].StartNS })
	return out
}

// FlightDump is the flight recorder serialized: every retained trace
// summary, plus full spans when Full is requested.
type FlightDump struct {
	Schema  string            `json:"schema"`
	Service string            `json:"service"`
	Traces  []TraceSummary    `json:"traces"`
	Spans   map[string][]Span `json:"spans,omitempty"`
}

// FlightSchema versions the flight-recorder dump format.
const FlightSchema = "macc-flight/v1"

// WriteFlight dumps the flight recorder as indented JSON. full includes
// every retained span (large); otherwise only summaries.
func (t *Tracer) WriteFlight(w io.Writer, full bool) error {
	d := FlightDump{Schema: FlightSchema, Service: t.Service(), Traces: t.Summaries()}
	if t != nil && full {
		d.Spans = make(map[string][]Span, len(d.Traces))
		for _, s := range d.Traces {
			d.Spans[s.Trace] = t.Spans(s.Trace)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc; children started from it parent
// under sc's span.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx (invalid zero value
// when absent).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
