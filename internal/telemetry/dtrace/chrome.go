package dtrace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event entry ("ph":"X" complete events
// plus "M" metadata rows), loadable in about://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans (typically one assembled trace) as Chrome
// trace_event JSON. Each service becomes a process row (pid); within a
// service, spans are packed into lanes (tids) greedily so that
// overlapping-but-unrelated spans — hedge legs, concurrent attempts —
// render on separate rows instead of interleaving, while properly nested
// spans share their parent's lane.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		// Longer span first at equal start: parents open before children.
		return sorted[i].Dur > sorted[j].Dur
	})

	// Stable pid per service, in first-appearance order.
	pids := make(map[string]int)
	var services []string
	for _, s := range sorted {
		if _, ok := pids[s.Service]; !ok {
			pids[s.Service] = len(pids) + 1
			services = append(services, s.Service)
		}
	}

	var epoch int64
	if len(sorted) > 0 {
		epoch = sorted[0].Start
	}

	tf := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for i, svc := range services {
		tf.TraceEvents = append(tf.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: i + 1,
			Args: map[string]any{"name": svc},
		})
	}

	// laneEnd[pid] holds, per lane, a stack of open interval end times;
	// a span fits a lane if it nests inside the innermost open interval,
	// or if the lane's intervals have all closed before it starts.
	type lane struct{ ends []int64 }
	lanes := make(map[int][]*lane)
	for _, s := range sorted {
		pid := pids[s.Service]
		end := s.Start + s.Dur
		tid := 0
		for i, ln := range lanes[pid] {
			for len(ln.ends) > 0 && ln.ends[len(ln.ends)-1] <= s.Start {
				ln.ends = ln.ends[:len(ln.ends)-1]
			}
			if len(ln.ends) == 0 || end <= ln.ends[len(ln.ends)-1] {
				ln.ends = append(ln.ends, end)
				tid = i + 1
				break
			}
		}
		if tid == 0 {
			lanes[pid] = append(lanes[pid], &lane{ends: []int64{end}})
			tid = len(lanes[pid])
		}

		args := map[string]any{
			"trace":   s.Trace,
			"span":    s.ID,
			"service": s.Service,
			"kind":    s.Kind,
		}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		cat := s.Kind
		if cat == "" {
			cat = "span"
		}
		if s.Err != "" {
			args["error"] = s.Err
			cat = cat + ",error"
		}
		tf.TraceEvents = append(tf.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(s.Start-epoch) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  pid,
			Tid:  tid,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}
