package dtrace

import (
	"strconv"

	"macc/internal/telemetry"
)

// LinkRecorder republishes rec's per-pass pipeline spans as children of
// parent in t, converting the recorder's relative timestamps onto the
// absolute trace timeline. This is how one request trace reaches from HTTP
// ingress down to individual passes: maccd gives each cold compile a fresh
// Recorder, the pipeline fills it, and the compile path links it under the
// request's compute span. Returns the number of spans linked.
func LinkRecorder(t *Tracer, parent SpanContext, rec *telemetry.Recorder) int {
	if t == nil || rec == nil || !parent.Valid() {
		return 0
	}
	epoch := rec.StartTime().UnixNano()
	spans := rec.Spans()
	t.mu.Lock()
	ids := make([]SpanID, len(spans))
	for i := range ids {
		ids[i] = t.newSpanID()
	}
	t.mu.Unlock()
	for i, ps := range spans {
		sp := Span{
			Trace:   parent.Trace.String(),
			ID:      ids[i].String(),
			Parent:  parent.Span.String(),
			Service: t.Service(),
			Name:    ps.Pass,
			Kind:    KindPass,
			Start:   epoch + int64(ps.Start),
			Dur:     int64(ps.Dur),
			Attrs: map[string]string{
				"fn":           ps.Fn,
				"instrs_delta": strconv.Itoa(ps.InstrsAfter - ps.InstrsBefore),
				"remarks":      strconv.Itoa(ps.Remarks),
			},
			Err: ps.Err,
		}
		if ps.RolledBack {
			sp.Attrs["rolled_back"] = "true"
		}
		t.Add(sp)
	}
	return len(spans)
}
