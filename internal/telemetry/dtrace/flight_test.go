package dtrace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestFlightRecentRingWraparound drives the recent ring around many times
// its capacity: exactly the newest cap traces survive, every older one is
// gone, and the span buffers go with them (no leak through t.traces).
func TestFlightRecentRingWraparound(t *testing.T) {
	const capacity = 8
	tr := New("svc", capacity)
	var ids []string
	for i := 0; i < 5*capacity; i++ {
		sp := tr.StartRoot(fmt.Sprintf("req%d", i), KindIngress)
		sp.End()
		ids = append(ids, sp.TraceID())
	}
	sums := tr.Summaries()
	if len(sums) != capacity {
		t.Fatalf("recorder retains %d traces after wraparound, want exactly %d", len(sums), capacity)
	}
	for _, id := range ids[:len(ids)-capacity] {
		if got := tr.Spans(id); got != nil {
			t.Fatalf("evicted trace %s still has %d spans", id, len(got))
		}
	}
	for _, id := range ids[len(ids)-capacity:] {
		if got := tr.Spans(id); len(got) != 1 {
			t.Fatalf("retained trace %s has %d spans, want 1", id, len(got))
		}
	}
}

// TestIncidentSurvivesChurnThenAgesOut pins one incident, churns the
// recent ring far past capacity, and checks the incident both survives
// (with its spans) and is flagged in the WriteFlight dump. It then fills
// the incident ring itself, which must also be bounded: enough newer
// incidents eventually age the original out.
func TestIncidentSurvivesChurnThenAgesOut(t *testing.T) {
	const capacity = 4
	tr := New("svc", capacity)
	sp := tr.StartRoot("failing-request", KindIngress)
	sp.SetErr("internal panic")
	sp.End()
	incident := sp.TraceID()
	tr.MarkIncident(incident)

	for i := 0; i < 20*capacity; i++ {
		s := tr.StartRoot("ok", KindIngress)
		s.End()
	}
	if got := tr.Spans(incident); len(got) != 1 {
		t.Fatalf("pinned incident lost to recent-ring churn: %d spans", len(got))
	}
	var buf bytes.Buffer
	if err := tr.WriteFlight(&buf, true); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range dump.Traces {
		if s.Trace == incident {
			found = true
			if !s.Incident {
				t.Error("surviving incident not flagged in the dump")
			}
			if s.Err == "" {
				t.Error("incident summary lost its error message")
			}
		}
	}
	if !found {
		t.Fatal("incident missing from the flight dump")
	}
	if len(dump.Spans[incident]) != 1 {
		t.Errorf("full dump has %d spans for the incident, want 1", len(dump.Spans[incident]))
	}

	// The incident ring is itself a FIFO of the same capacity: newer
	// incidents push the original out, so a 5xx storm cannot grow the
	// recorder without bound.
	for i := 0; i < capacity+1; i++ {
		s := tr.StartRoot("also-failing", KindIngress)
		s.End()
		tr.MarkIncident(s.TraceID())
	}
	if got := tr.Spans(incident); got != nil {
		t.Fatalf("incident ring unbounded: original incident still retained after %d newer incidents", capacity+1)
	}
	incidents := 0
	for _, s := range tr.Summaries() {
		if s.Incident {
			incidents++
		}
	}
	if incidents > capacity {
		t.Fatalf("%d incidents retained, cap %d", incidents, capacity)
	}
}

// TestMarkIncidentBeforeSpanEnds reproduces the serve() ordering: a
// handler marks the incident while its ingress span is still open (End
// runs deferred, after the 5xx is written). The mark must pin the trace
// eagerly so the span files into it when it finally ends.
func TestMarkIncidentBeforeSpanEnds(t *testing.T) {
	tr := New("svc", 4)
	sp := tr.StartRoot("POST /compile", KindIngress)
	tr.MarkIncident(sp.TraceID()) // before End, as serve()'s fail() does
	sp.SetErr("saturated")
	sp.End()

	if got := tr.Spans(sp.TraceID()); len(got) != 1 {
		t.Fatalf("span did not attach to the eagerly-pinned trace: %d spans", len(got))
	}
	for _, s := range tr.Summaries() {
		if s.Trace == sp.TraceID() {
			if !s.Incident {
				t.Fatal("trace not flagged as incident")
			}
			return
		}
	}
	t.Fatal("pinned trace missing from summaries")
}

// TestConcurrentMarkIncidentWriteFlight hammers span creation, incident
// marking, and flight dumps from concurrent goroutines — the shape of a
// replica serving traffic while an operator pulls /debug/flight during a
// 5xx storm. Run under -race this is the data-race check for the
// recorder's ring bookkeeping.
func TestConcurrentMarkIncidentWriteFlight(t *testing.T) {
	tr := New("svc", 16)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartRoot(fmt.Sprintf("req-%d-%d", g, i), KindIngress)
				child := tr.StartSpan(sp.Context(), "attempt", KindAttempt)
				child.End()
				if i%3 == 0 {
					sp.SetErr("boom")
					sp.End()
					tr.MarkIncident(sp.TraceID())
				} else {
					sp.End()
				}
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := tr.WriteFlight(io.Discard, i%2 == 0); err != nil {
					t.Errorf("WriteFlight: %v", err)
					return
				}
				tr.Summaries()
			}
		}()
	}
	wg.Wait()
	if err := tr.WriteFlight(io.Discard, true); err != nil {
		t.Fatal(err)
	}
}
