package dtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"macc/internal/telemetry"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New("test", 8)
	sp := tr.StartRoot("req", KindRequest)
	hdr := sp.Context().Traceparent()
	sc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", hdr, err)
	}
	if sc != sp.Context() {
		t.Fatalf("round trip: got %+v want %+v", sc, sp.Context())
	}
	if got := sc.Trace.String(); len(got) != 32 {
		t.Fatalf("trace id hex len = %d", len(got))
	}
	id, err := ParseTraceID(sc.Trace.String())
	if err != nil || id != sc.Trace {
		t.Fatalf("ParseTraceID: %v %v", id, err)
	}
}

func TestTraceparentMalformed(t *testing.T) {
	bad := []string{
		"",
		"00",
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-1111111111111111-01",
		"00-00000000000000000000000000000000-1111111111111111-01", // zero trace id
		"00-11111111111111111111111111111111-0000000000000000-01", // zero span id
		"00-1111-2222-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
	good := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, err := ParseTraceparent(good); err != nil {
		t.Errorf("ParseTraceparent(%q): %v", good, err)
	}
}

func TestSpanParenting(t *testing.T) {
	tr := New("svc", 8)
	root := tr.StartRoot("req", KindRequest)
	child := tr.StartSpan(root.Context(), "attempt", KindAttempt)
	child.SetAttr("peer", "A")
	child.End()
	root.End()

	spans := tr.Spans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var rootSpan, childSpan *Span
	for i := range spans {
		if spans[i].Parent == "" {
			rootSpan = &spans[i]
		} else {
			childSpan = &spans[i]
		}
	}
	if rootSpan == nil || childSpan == nil {
		t.Fatalf("missing root or child: %+v", spans)
	}
	if childSpan.Parent != rootSpan.ID {
		t.Fatalf("child.Parent = %s, want %s", childSpan.Parent, rootSpan.ID)
	}
	if childSpan.Trace != rootSpan.Trace {
		t.Fatalf("trace mismatch: %s vs %s", childSpan.Trace, rootSpan.Trace)
	}
	if childSpan.Attrs["peer"] != "A" {
		t.Fatalf("attr lost: %+v", childSpan.Attrs)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x", KindRequest)
	sp.SetAttr("k", "v")
	sp.SetErr("boom")
	sp.End()
	if sp.TraceID() != "" || sp.Context().Valid() {
		t.Fatal("nil tracer produced a live span")
	}
	tr.Ingest([]Span{{Trace: "t", ID: "s"}})
	tr.MarkIncident("t")
	if got := tr.Spans("t"); got != nil {
		t.Fatalf("nil tracer stored spans: %v", got)
	}
	if tr.Summaries() != nil {
		t.Fatal("nil tracer has summaries")
	}
	var buf bytes.Buffer
	if err := tr.WriteFlight(&buf, true); err != nil {
		t.Fatalf("WriteFlight on nil: %v", err)
	}
}

func TestFlightEvictionAndIncidentPinning(t *testing.T) {
	tr := New("svc", 4)
	var ids []string
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot(fmt.Sprintf("req%d", i), KindIngress)
		sp.End()
		ids = append(ids, sp.TraceID())
		if i == 1 {
			tr.MarkIncident(sp.TraceID()) // pin the second trace
		}
	}
	// The pinned incident survives even though 8 traces arrived after it.
	if got := tr.Spans(ids[1]); len(got) != 1 {
		t.Fatalf("incident trace evicted: %v", got)
	}
	// The first (unpinned) trace is long gone.
	if got := tr.Spans(ids[0]); got != nil {
		t.Fatalf("old trace survived: %v", got)
	}
	// Recent ring holds at most cap traces plus the incident.
	sums := tr.Summaries()
	if len(sums) > 5 {
		t.Fatalf("flight recorder holds %d traces, cap 4 + 1 incident", len(sums))
	}
	var incidents int
	for _, s := range sums {
		if s.Incident {
			incidents++
		}
	}
	if incidents != 1 {
		t.Fatalf("want exactly 1 incident, got %d", incidents)
	}
}

func TestIngestBounds(t *testing.T) {
	tr := New("svc", 2)
	spans := make([]Span, maxSpansPerTrace+100)
	for i := range spans {
		spans[i] = Span{Trace: "aaaa", ID: fmt.Sprintf("s%d", i), Service: "x", Name: "n"}
	}
	tr.Ingest(spans)
	if got := len(tr.Spans("aaaa")); got != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want cap %d", got, maxSpansPerTrace)
	}
	// Spans with missing IDs are dropped.
	tr.Ingest([]Span{{Trace: "", ID: "x"}, {Trace: "bbbb", ID: ""}})
	if got := tr.Spans("bbbb"); got != nil {
		t.Fatalf("id-less span stored: %v", got)
	}
}

func TestConcurrentTracer(t *testing.T) {
	tr := New("svc", 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartRoot("req", KindRequest)
				child := tr.StartSpan(root.Context(), "child", KindAttempt)
				child.End()
				root.End()
				tr.Spans(root.TraceID())
				if i%10 == 0 {
					tr.MarkIncident(root.TraceID())
					tr.Summaries()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestChromeExport(t *testing.T) {
	now := time.Now().UnixNano()
	us := int64(time.Microsecond)
	spans := []Span{
		{Trace: "t1", ID: "root", Service: "loadgen", Name: "/compile", Kind: KindRequest, Start: now, Dur: 100 * us},
		{Trace: "t1", ID: "a1", Parent: "root", Service: "loadgen", Name: "attempt", Kind: KindAttempt, Start: now + 5*us, Dur: 60 * us},
		// Hedge leg overlaps the primary: must land on a different lane.
		{Trace: "t1", ID: "a2", Parent: "root", Service: "loadgen", Name: "attempt", Kind: KindAttempt, Start: now + 30*us, Dur: 50 * us, Attrs: map[string]string{"leg": "hedge"}},
		{Trace: "t1", ID: "ing", Parent: "a1", Service: "maccd:1", Name: "/compile", Kind: KindIngress, Start: now + 10*us, Dur: 40 * us},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid chrome JSON: %v", err)
	}
	pids := map[int]bool{}
	lanes := map[string]int{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pids[ev.Pid] = true
		if span, _ := ev.Args["span"].(string); span != "" {
			lanes[span] = ev.Pid*1000 + ev.Tid
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 process rows (loadgen, maccd:1), got %v", pids)
	}
	if lanes["a1"] == lanes["a2"] {
		t.Fatalf("overlapping hedge legs share a lane: %v", lanes)
	}
	if lanes["ing"]/1000 == lanes["root"]/1000 {
		t.Fatalf("maccd span shares loadgen's pid: %v", lanes)
	}
}

func TestLinkRecorder(t *testing.T) {
	rec := telemetry.NewRecorder()
	rec.BeginPass("coalesce", "translate", 10, 2)
	rec.EndPass(8, 2, false, "")
	rec.BeginPass("schedule", "translate", 8, 2)
	rec.EndPass(8, 2, true, "verifier: boom")

	tr := New("maccd:1", 8)
	root := tr.StartRoot("/compile", KindIngress)
	n := LinkRecorder(tr, root.Context(), rec)
	root.End()
	if n != 2 {
		t.Fatalf("linked %d spans, want 2", n)
	}
	spans := tr.Spans(root.TraceID())
	var passes, rolled int
	for _, sp := range spans {
		if sp.Kind != KindPass {
			continue
		}
		passes++
		if sp.Parent != root.Context().Span.String() {
			t.Fatalf("pass span parent = %s, want root %s", sp.Parent, root.Context().Span)
		}
		if sp.Attrs["rolled_back"] == "true" {
			rolled++
			if !strings.Contains(sp.Err, "boom") {
				t.Fatalf("rolled-back pass lost error: %+v", sp)
			}
		}
	}
	if passes != 2 || rolled != 1 {
		t.Fatalf("passes=%d rolled=%d, want 2/1", passes, rolled)
	}
	// Nil / invalid inputs are no-ops.
	if LinkRecorder(nil, root.Context(), rec) != 0 {
		t.Fatal("nil tracer linked spans")
	}
	if LinkRecorder(tr, SpanContext{}, rec) != 0 {
		t.Fatal("invalid parent linked spans")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := New("svc", 8)
	sp := tr.StartRoot("req", KindRequest)
	ctx := ContextWith(context.Background(), sp.Context())
	if got := FromContext(ctx); got != sp.Context() {
		t.Fatalf("FromContext = %+v, want %+v", got, sp.Context())
	}
	if FromContext(context.Background()).Valid() {
		t.Fatal("empty context carries a span")
	}
}
