package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a remark, following LLVM's taxonomy: Passed marks an
// optimization that was applied, Missed one that was declined (with the
// reason), Analysis a fact the optimizer established along the way.
type Kind uint8

// Remark kinds.
const (
	Passed Kind = iota
	Missed
	Analysis
)

func (k Kind) String() string {
	switch k {
	case Passed:
		return "Passed"
	case Missed:
		return "Missed"
	case Analysis:
		return "Analysis"
	}
	return fmt.Sprintf("Kind(%d)", k)
}

// MarshalJSON renders the kind as its name, so grep-level consumers (the CI
// smoke check) can match `"kind":"Passed"`.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts the names Passed/Missed/Analysis.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "Passed":
		*k = Passed
	case "Missed":
		*k = Missed
	case "Analysis":
		*k = Analysis
	default:
		return fmt.Errorf("unknown remark kind %q", s)
	}
	return nil
}

// Remark is one structured optimization decision. Reason is machine
// readable: a colon-joined token such as "hazard:intervening-store",
// "profitability:sched-cycles 14>=14", or
// "alignment:runtime-check-emitted". Args carries the remark's numeric
// evidence (cycle counts, reference counts, factors).
type Remark struct {
	Kind Kind   `json:"kind"`
	Pass string `json:"pass"`
	// Unit names the translation unit the remark came from — the kernel or
	// source file compiled (macc.Config.Unit). Together with Fn and Loop it
	// forms the remark's stable identity key, so the same loop keys
	// identically across runs and configurations and reports are diffable.
	Unit   string           `json:"unit,omitempty"`
	Fn     string           `json:"fn"`
	Loop   string           `json:"loop,omitempty"`
	Name   string           `json:"name"`
	Reason string           `json:"reason,omitempty"`
	Args   map[string]int64 `json:"args,omitempty"`
}

// Key is the remark's stable loop identity: unit:fn/loop. The loop label
// comes from minic's uniquely numbered loop-header names ("loop", "loop2",
// "loop2.unrolled", ...), which are derived from source structure alone, so
// the same source loop produces the same key in every run and under every
// configuration; keys from different units never collide as long as Unit is
// set. An empty Loop keys the function itself.
func (r Remark) Key() string {
	k := r.Fn
	if r.Unit != "" {
		k = r.Unit + ":" + k
	}
	if r.Loop != "" {
		k += "/" + r.Loop
	}
	return k
}

// ReasonToken reduces Reason to its machine-readable token: everything up
// to the first space, so "profitability:sched-cycles 14>=14" and
// "profitability:sched-cycles 9>=9" histogram into one
// "profitability:sched-cycles" bucket while "hazard:intervening-store"
// passes through unchanged.
func (r Remark) ReasonToken() string {
	if i := strings.IndexByte(r.Reason, ' '); i >= 0 {
		return r.Reason[:i]
	}
	return r.Reason
}

// String renders the remark one line, text-report style:
//
//	coalesce: convolution/L7: Passed Coalesced (profitability:sched-cycles 9<14) {narrowLoads=8 wideLoads=2}
func (r Remark) String() string {
	var sb strings.Builder
	sb.WriteString(r.Pass)
	sb.WriteString(": ")
	sb.WriteString(r.Fn)
	if r.Loop != "" {
		sb.WriteByte('/')
		sb.WriteString(r.Loop)
	}
	sb.WriteString(": ")
	sb.WriteString(r.Kind.String())
	sb.WriteByte(' ')
	sb.WriteString(r.Name)
	if r.Reason != "" {
		fmt.Fprintf(&sb, " (%s)", r.Reason)
	}
	if len(r.Args) > 0 {
		keys := make([]string, 0, len(r.Args))
		for k := range r.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString(" {")
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%s=%d", k, r.Args[k])
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// FormatRemarks renders remarks one per line; mode "json" emits one JSON
// object per line (JSONL), anything else the text form.
func FormatRemarks(remarks []Remark, mode string) string {
	var sb strings.Builder
	for _, r := range remarks {
		if mode == "json" {
			b, err := json.Marshal(r)
			if err != nil {
				continue
			}
			sb.Write(b)
		} else {
			sb.WriteString(r.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Summarize aggregates remarks for one pass into a compact diagnostic like
// "coalesce: 2 passed, 1 missed (hazard:intervening-call x1)". An empty
// pass aggregates everything.
func Summarize(remarks []Remark, pass string) string {
	var passed, missed int
	reasons := make(map[string]int)
	for _, r := range remarks {
		if pass != "" && r.Pass != pass {
			continue
		}
		switch r.Kind {
		case Passed:
			passed++
		case Missed:
			missed++
			if r.Reason != "" {
				reasons[r.Reason]++
			}
		}
	}
	if passed == 0 && missed == 0 {
		return "no remarks"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d passed, %d missed", passed, missed)
	if len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for k := range reasons {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString(" (")
		for i, k := range keys {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s x%d", k, reasons[k])
		}
		sb.WriteByte(')')
	}
	return sb.String()
}
