package telemetry_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"macc/internal/telemetry"
)

func TestHistoryDeltasAndRing(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := telemetry.NewHistory(reg, 3)

	reg.Counter("x").Add(5)
	first := h.Record()
	if first.Seq != 1 || len(first.CounterDeltas) != 0 {
		t.Errorf("first sample = %+v, want seq 1 and no deltas", first)
	}
	reg.Counter("x").Add(7)
	second := h.Record()
	if second.CounterDeltas["x"] != 7 {
		t.Errorf("delta = %v, want x=7", second.CounterDeltas)
	}
	if second.CounterRates["x"] <= 0 {
		t.Errorf("rate = %v, want positive", second.CounterRates)
	}
	// No movement: delta map stays empty.
	third := h.Record()
	if len(third.CounterDeltas) != 0 {
		t.Errorf("idle sample has deltas: %v", third.CounterDeltas)
	}

	// Ring eviction: capacity 3, a fourth sample evicts the first, and the
	// delta chain survives eviction.
	reg.Counter("x").Add(1)
	h.Record()
	samples := h.Samples()
	if len(samples) != 3 {
		t.Fatalf("%d samples retained, want 3", len(samples))
	}
	if samples[0].Seq != 2 || samples[2].Seq != 4 {
		t.Errorf("ring kept seqs %d..%d, want 2..4", samples[0].Seq, samples[2].Seq)
	}
	if samples[2].CounterDeltas["x"] != 1 {
		t.Errorf("post-eviction delta = %v, want x=1", samples[2].CounterDeltas)
	}
}

func TestHistoryJSONAndHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := telemetry.NewHistory(reg, 0)
	reg.Counter("c").Add(1)
	h.Record()
	h.Record()

	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Schema   string            `json:"schema"`
		Capacity int               `json:"capacity"`
		Samples  []json.RawMessage `json:"samples"`
	}
	if err := json.Unmarshal(buf.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Schema != telemetry.HistorySchema {
		t.Errorf("schema = %q", payload.Schema)
	}
	if payload.Capacity != telemetry.DefaultHistoryCap {
		t.Errorf("capacity = %d", payload.Capacity)
	}
	if len(payload.Samples) != 2 {
		t.Errorf("%d samples, want 2", len(payload.Samples))
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics/history", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), telemetry.HistorySchema) {
		t.Errorf("HTTP serve: code %d body %q", rr.Code, rr.Body.String())
	}
}

func TestDebugMuxServesPprofAndHistory(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := telemetry.NewHistory(reg, 0)
	h.Record()
	mux := telemetry.DebugMux(h)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/metrics/history"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rr.Code)
		}
	}
}
