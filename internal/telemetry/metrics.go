package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a dependency-free metrics registry: named counters, gauges,
// and histograms, all safe for concurrent use. Names are dotted paths
// ("coalesce.wide_loads", "sim.dcache_misses") so snapshots sort into
// readable groups.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically growing sum. The trailing pad keeps two hot
// counters from sharing a 64-byte cache line, so the parallel bench harness's
// per-worker increments do not false-share.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current sum.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float value (ratios like bytes/ref). Padded
// against false sharing like Counter.
type Gauge struct {
	bits atomic.Uint64
	_    [56]byte
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates int64 samples into power-of-two buckets: bucket i
// counts samples v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1).
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [65]int64
	// exemplars holds, per bucket, the largest-valued sample that carried a
	// trace ID — the Prometheus exemplar idiom. Lazily allocated so plain
	// Observe-only histograms (the bench hot path) pay nothing.
	exemplars *[65]Exemplar
}

// Exemplar ties one observed sample to the distributed trace that produced
// it, so a latency bucket in /metrics can be followed to /debug/trace/<id>.
type Exemplar struct {
	Value int64  `json:"value"`
	Trace string `json:"trace"`
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observeLocked(v)
}

func (h *Histogram) observeLocked(v int64) int {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := bucketOf(v)
	h.buckets[b]++
	return b
}

// ObserveExemplar records one sample and, when trace is non-empty, offers
// it as the bucket's exemplar. Each bucket keeps the largest-valued
// exemplar it has seen — deterministic under Merge regardless of worker
// interleaving, and the most useful one for tail-latency forensics.
func (h *Histogram) ObserveExemplar(v int64, trace string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.observeLocked(v)
	if trace == "" {
		return
	}
	h.offerExemplarLocked(b, Exemplar{Value: v, Trace: trace})
}

func (h *Histogram) offerExemplarLocked(bucket int, e Exemplar) {
	if h.exemplars == nil {
		h.exemplars = new([65]Exemplar)
	}
	cur := h.exemplars[bucket]
	if cur.Trace == "" || e.Value > cur.Value {
		h.exemplars[bucket] = e
	}
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// observed samples, resolved to the power-of-two bucket boundaries and
// tightened by the observed min/max. An empty histogram returns 0. The
// farm client's hedging policy reads its p99 from here, so the estimate is
// deliberately conservative (never below the true quantile's bucket).
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum < target {
			continue
		}
		if i >= 63 { // 1<<i would overflow; the max is the tightest bound
			return h.max
		}
		ub := int64(1) << uint(i)
		if ub > h.max {
			ub = h.max
		}
		if ub < h.min {
			ub = h.min
		}
		return ub
	}
	return h.max
}

// Count returns the number of observed samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps the inclusive upper bound 2^i to its sample count;
	// empty buckets are omitted.
	Buckets map[string]int64 `json:"buckets,omitempty"`
	// Exemplars maps bucket labels to the trace-carrying sample retained
	// for that bucket (see ObserveExemplar); buckets without one are
	// omitted.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// Snapshot freezes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if s.Buckets == nil {
			s.Buckets = make(map[string]int64)
		}
		s.Buckets[bucketLabel(i)] = n
	}
	if h.exemplars != nil {
		for i, e := range h.exemplars {
			if e.Trace == "" {
				continue
			}
			if s.Exemplars == nil {
				s.Exemplars = make(map[string]Exemplar)
			}
			s.Exemplars[bucketLabel(i)] = e
		}
	}
	return s
}

func bucketLabel(i int) string {
	le := int64(1) << uint(i)
	return "le_" + itoa(le)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// MetricsSchema versions the metrics JSON envelope. Every exporter in the
// tree — `macc -metrics`, maccd's /metrics and final flush, loadgen's
// embedded snapshot — emits this same shape, so tooling parses one format.
const MetricsSchema = "macc-metrics/v1"

// Snapshot is the registry frozen for export.
type Snapshot struct {
	Schema     string                       `json:"schema,omitempty"`
	Service    string                       `json:"service,omitempty"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot freezes every metric under the shared schema envelope.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s := Snapshot{
		Schema:     MetricsSchema,
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// Merge folds every metric of o into r: counters and histograms add, gauges
// take o's value when o has set one. The parallel bench harness gives each
// worker a private registry and merges them at the barrier, so the hot path
// never contends on shared metric cache lines.
func (r *Registry) Merge(o *Registry) {
	o.mu.Lock()
	counters := make(map[string]int64, len(o.counters))
	for k, c := range o.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]float64, len(o.gauges))
	for k, g := range o.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]*Histogram, len(o.hists))
	for k, h := range o.hists {
		hists[k] = h
	}
	o.mu.Unlock()

	for k, v := range counters {
		if v != 0 {
			r.Counter(k).Add(v)
		}
	}
	for k, v := range gauges {
		r.Gauge(k).Set(v)
	}
	for k, h := range hists {
		r.Histogram(k).merge(h)
	}
}

// merge folds o's samples into h. Exemplars merge by the same
// largest-value rule ObserveExemplar applies, so the merged result is
// independent of merge order.
func (h *Histogram) merge(o *Histogram) {
	o.mu.Lock()
	count, sum, min, max, buckets := o.count, o.sum, o.min, o.max, o.buckets
	var exemplars *[65]Exemplar
	if o.exemplars != nil {
		ex := *o.exemplars
		exemplars = &ex
	}
	o.mu.Unlock()
	if count == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || min < h.min {
		h.min = min
	}
	if h.count == 0 || max > h.max {
		h.max = max
	}
	h.count += count
	h.sum += sum
	for i, n := range buckets {
		h.buckets[i] += n
	}
	if exemplars != nil {
		for i, e := range exemplars {
			if e.Trace != "" {
				h.offerExemplarLocked(i, e)
			}
		}
	}
}

// CounterValue is a convenience read of one counter (zero when absent).
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Names returns every registered metric name, sorted (for stable reports).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// WriteJSON renders a snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteSnapshot(w, r.Snapshot())
}

// WriteServiceJSON renders a snapshot stamped with the emitting service's
// name — the one shared encoder behind `macc -metrics`, maccd's /metrics
// endpoint and final flush, and loadgen's artifact embed.
func (r *Registry) WriteServiceJSON(w io.Writer, service string) error {
	s := r.Snapshot()
	s.Service = service
	return WriteSnapshot(w, s)
}

// WriteSnapshot renders one snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
