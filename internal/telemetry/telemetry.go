// Package telemetry is the compiler's observability layer: structured
// optimization remarks (the LLVM -Rpass idiom), per-pass spans exportable as
// Chrome trace_event JSON, and a dependency-free metrics registry of
// counters, gauges, and histograms shared by the static pipeline and the
// dynamic simulator.
//
// The paper justifies every coalescing decision with evidence — hazard
// verdicts, static schedule cycle counts, measured memory-reference
// reductions. This package makes our reproduction do the same: every
// accept/reject is an explainable, machine-readable event rather than a
// silent branch.
//
// The Recorder cooperates with the hardened pass manager's rollback
// semantics: remarks and metric increments emitted while a pass is running
// are staged, and committed only when the pass survives its verification
// checkpoint. A rolled-back pass therefore retracts its remarks — the span
// remains, marked RolledBack, as the durable record of the incident.
package telemetry

import (
	"io"
	"runtime/metrics"
	"sync"
	"time"
)

// Emitter is the sink passes emit remarks and metric deltas into. A nil
// Emitter is never passed around; use Nop for "observability off".
type Emitter interface {
	// Emit records one optimization remark.
	Emit(r Remark)
	// Count adds n to the named counter.
	Count(name string, n int64)
	// Observe records one histogram sample.
	Observe(name string, v int64)
}

// Nop is an Emitter that discards everything.
type Nop struct{}

func (Nop) Emit(Remark)           {}
func (Nop) Count(string, int64)   {}
func (Nop) Observe(string, int64) {}

// OrNop returns em, or a Nop when em is nil, so passes can emit
// unconditionally.
func OrNop(em Emitter) Emitter {
	if em == nil {
		return Nop{}
	}
	return em
}

// WithUnit wraps em so every remark that does not already carry a unit is
// stamped with unit (the kernel/source name being compiled). Counters and
// histogram samples pass through untouched. A nil em or empty unit returns
// em unchanged (modulo the OrNop guarantee).
func WithUnit(em Emitter, unit string) Emitter {
	em = OrNop(em)
	if unit == "" {
		return em
	}
	return unitEmitter{em: em, unit: unit}
}

type unitEmitter struct {
	em   Emitter
	unit string
}

func (u unitEmitter) Emit(r Remark) {
	if r.Unit == "" {
		r.Unit = u.unit
	}
	u.em.Emit(r)
}
func (u unitEmitter) Count(name string, n int64)   { u.em.Count(name, n) }
func (u unitEmitter) Observe(name string, v int64) { u.em.Observe(name, v) }

// stage buffers one active pass's uncommitted output.
type stage struct {
	span     Span
	began    time.Time
	allocAt  uint64
	remarks  []Remark
	counts   map[string]int64
	observes map[string][]int64
}

// allocBytes reads the runtime's cumulative heap allocation total. Unlike
// runtime.ReadMemStats this does not stop the world, so sampling it on
// every pass boundary is essentially free. The counter is process-wide:
// per-pass deltas are exact for a serial compile and an upper bound when
// other goroutines allocate concurrently.
func allocBytes() uint64 {
	s := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// Recorder accumulates one compilation-plus-run's remarks, spans, and
// metrics. It is safe for concurrent use; pass staging (BeginPass/EndPass)
// applies to the goroutine-serial compile pipeline.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	remarks []Remark
	spans   []Span
	reg     *Registry
	staged  *stage
}

// NewRecorder returns an empty Recorder with a fresh metrics Registry.
func NewRecorder() *Recorder {
	return &Recorder{start: time.Now(), reg: NewRegistry()}
}

// Metrics returns the recorder's registry (shared with the simulator via
// sim.AttachMetrics, so static and dynamic counters live side by side).
func (r *Recorder) Metrics() *Registry { return r.reg }

// StartTime returns the recorder's epoch: span Start offsets are relative
// to it. Consumers that merge spans from several recorders (the parallel
// bench harness, the distributed-trace linker) use it to rebase spans onto
// a shared absolute timeline.
func (r *Recorder) StartTime() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.start
}

// Emit records a remark, staging it when a pass is active.
func (r *Recorder) Emit(rem Remark) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.staged != nil {
		r.staged.remarks = append(r.staged.remarks, rem)
		return
	}
	r.remarks = append(r.remarks, rem)
}

// Count adds n to the named counter, staging the delta when a pass is
// active.
func (r *Recorder) Count(name string, n int64) {
	r.mu.Lock()
	if r.staged != nil {
		r.staged.counts[name] += n
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.reg.Counter(name).Add(n)
}

// Observe records a histogram sample, staged when a pass is active.
func (r *Recorder) Observe(name string, v int64) {
	r.mu.Lock()
	if r.staged != nil {
		r.staged.observes[name] = append(r.staged.observes[name], v)
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.reg.Histogram(name).Observe(v)
}

// BeginPass opens a span for one pass run over one function and starts
// staging remarks and metric deltas. instrs and blocks are the function's
// pre-pass IR size.
func (r *Recorder) BeginPass(pass, fn string, instrs, blocks int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.staged != nil {
		// Defensive: a dangling stage commits rather than silently vanishing.
		r.commitLocked(r.staged, time.Now())
	}
	now := time.Now()
	r.staged = &stage{
		span: Span{
			Pass: pass, Fn: fn,
			Start:        now.Sub(r.start),
			InstrsBefore: instrs, BlocksBefore: blocks,
		},
		began:    now,
		allocAt:  allocBytes(),
		counts:   make(map[string]int64),
		observes: make(map[string][]int64),
	}
}

// EndPass closes the active span. When rolledBack is false the staged
// remarks and metric deltas commit; when true they are retracted and only
// the span survives, carrying the failure message (the rollback linkage
// into pipeline.Diagnostics). instrs and blocks are the post-pass (or
// post-restore) IR size.
func (r *Recorder) EndPass(instrs, blocks int, rolledBack bool, errMsg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.staged
	if st == nil {
		return
	}
	r.staged = nil
	now := time.Now()
	st.span.Dur = now.Sub(st.began)
	st.span.InstrsAfter = instrs
	st.span.BlocksAfter = blocks
	st.span.RolledBack = rolledBack
	st.span.Err = errMsg
	if rolledBack {
		st.span.Remarks = 0
		r.spans = append(r.spans, st.span)
		// The pass's remarks retract but its cost was real: the self-time
		// and allocation profile still commits.
		r.selfProfileLocked(st)
		r.reg.Counter("pipeline.pass_rollbacks").Add(1)
		r.reg.Counter("pipeline.pass_runs").Add(1)
		return
	}
	r.commitLocked(st, now)
}

// selfProfileLocked records one finished pass's self time and heap
// allocation delta as registry counters (pass.<name>.self_ns,
// pass.<name>.alloc_bytes) plus an overall histogram, so the continuous
// profiler (/metrics and the /metrics/history ring) shows where compile
// time and memory go per pass, not just per request. Allocation deltas are
// process-wide (see allocBytes): exact for serial compiles, an upper bound
// under concurrency.
func (r *Recorder) selfProfileLocked(st *stage) {
	r.reg.Counter("pass."+st.span.Pass+".self_ns").Add(int64(st.span.Dur))
	if d := int64(allocBytes() - st.allocAt); d > 0 {
		r.reg.Counter("pass." + st.span.Pass + ".alloc_bytes").Add(d)
	}
	r.reg.Histogram("pipeline.pass_self_ns").Observe(int64(st.span.Dur))
}

// commitLocked flushes one stage's remarks, counters, and samples. r.mu is
// held; registry primitives take their own locks, which is safe because the
// registry never calls back into the recorder.
func (r *Recorder) commitLocked(st *stage, now time.Time) {
	if st.span.Dur == 0 {
		st.span.Dur = now.Sub(st.began)
	}
	st.span.Remarks = len(st.remarks)
	r.remarks = append(r.remarks, st.remarks...)
	r.spans = append(r.spans, st.span)
	r.selfProfileLocked(st)
	for name, n := range st.counts {
		r.reg.Counter(name).Add(n)
	}
	for name, vs := range st.observes {
		h := r.reg.Histogram(name)
		for _, v := range vs {
			h.Observe(v)
		}
	}
	r.reg.Counter("pipeline.pass_runs").Add(1)
}

// Remarks returns a copy of the committed remarks in emission order.
func (r *Recorder) Remarks() []Remark {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Remark, len(r.remarks))
	copy(out, r.remarks)
	return out
}

// Spans returns a copy of the recorded spans in completion order.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// WriteMetrics renders the registry as JSON.
func (r *Recorder) WriteMetrics(w io.Writer) error { return r.reg.WriteJSON(w) }
