package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// AttachPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// mux. It exists (rather than importing net/http/pprof for its side effect)
// so the profiling surface lands only on the mux the caller chose — the
// -debug-addr listener, never the production one — and never on
// http.DefaultServeMux.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux builds the continuous-profiling surface: /debug/pprof/* and,
// when hist is non-nil, /metrics/history.
func DebugMux(hist *History) *http.ServeMux {
	mux := http.NewServeMux()
	AttachPprof(mux)
	if hist != nil {
		mux.Handle("/metrics/history", hist)
	}
	return mux
}

// StartDebugServer serves DebugMux on addr in a background goroutine and
// returns the bound address (useful with a ":0" port). A history ring over
// reg (a fresh registry when nil) records at the default interval for the
// life of the process — batch tools like cmd/tables, cmd/loadgen, and
// cmd/optreport wire this behind their -debug-addr flag so a long corpus
// run can be profiled live.
func StartDebugServer(addr string, reg *Registry) (string, error) {
	if reg == nil {
		reg = NewRegistry()
	}
	hist := NewHistory(reg, 0)
	hist.Record()
	hist.Start(0)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux(hist)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
