package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestHistogramExemplar(t *testing.T) {
	h := &Histogram{}
	h.ObserveExemplar(100, "trace-a")
	h.ObserveExemplar(120, "trace-b") // same bucket (le_128), larger value wins
	h.ObserveExemplar(90, "trace-c")  // same bucket, smaller: ignored
	h.ObserveExemplar(3, "trace-d")   // different bucket (le_4)
	h.Observe(5)                      // no trace: counted, no exemplar

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if e := s.Exemplars["le_128"]; e.Trace != "trace-b" || e.Value != 120 {
		t.Fatalf("le_128 exemplar = %+v, want trace-b/120", e)
	}
	if e := s.Exemplars["le_4"]; e.Trace != "trace-d" || e.Value != 3 {
		t.Fatalf("le_4 exemplar = %+v, want trace-d/3", e)
	}
	if _, ok := s.Exemplars["le_8"]; ok {
		t.Fatal("trace-less sample produced an exemplar")
	}
}

func TestExemplarMergeKeepsMax(t *testing.T) {
	mk := func(v int64, trace string) *Registry {
		r := NewRegistry()
		r.Histogram("lat").ObserveExemplar(v, trace)
		return r
	}
	// Merge in both orders: result must be identical (largest value wins).
	for _, order := range [][]int64{{100, 120}, {120, 100}} {
		dst := NewRegistry()
		dst.Merge(mk(order[0], fmt.Sprintf("t%d", order[0])))
		dst.Merge(mk(order[1], fmt.Sprintf("t%d", order[1])))
		s := dst.Histogram("lat").Snapshot()
		if e := s.Exemplars["le_128"]; e.Trace != "t120" || e.Value != 120 {
			t.Fatalf("order %v: exemplar = %+v, want t120/120", order, e)
		}
		if s.Count != 2 {
			t.Fatalf("order %v: count = %d, want 2", order, s.Count)
		}
	}
	// Merging an exemplar-less histogram does not disturb existing ones.
	dst := mk(100, "keep")
	src := NewRegistry()
	src.Histogram("lat").Observe(110)
	dst.Merge(src)
	if e := dst.Histogram("lat").Snapshot().Exemplars["le_128"]; e.Trace != "keep" {
		t.Fatalf("exemplar lost on plain merge: %+v", e)
	}
}

// TestConcurrentSnapshotMerge hammers one registry with concurrent
// writers (counters, gauges, exemplar-carrying histograms), concurrent
// mergers folding in per-worker registries, and a concurrent snapshotter
// — the -race proof for the registry's export path.
func TestConcurrentSnapshotMerge(t *testing.T) {
	shared := NewRegistry()
	const workers = 8
	const iters = 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				shared.Counter("reqs").Add(1)
				shared.Gauge("load").Set(float64(w))
				shared.Histogram("lat").ObserveExemplar(int64(i+1), fmt.Sprintf("w%d-i%d", w, i))
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				private := NewRegistry()
				private.Counter("merged").Add(1)
				private.Histogram("lat").ObserveExemplar(int64(1<<uint(w%8)), fmt.Sprintf("m%d-%d", w, i))
				shared.Merge(private)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := shared.Snapshot()
			if s.Counters["reqs"] < 0 {
				t.Error("negative counter")
				return
			}
			for label, e := range s.Histograms["lat"].Exemplars {
				if e.Trace == "" {
					t.Errorf("bucket %s has empty exemplar trace", label)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done

	s := shared.Snapshot()
	if got := s.Counters["reqs"]; got != workers*iters {
		t.Fatalf("reqs = %d, want %d", got, workers*iters)
	}
	if got := s.Counters["merged"]; got != workers*(iters/10) {
		t.Fatalf("merged = %d, want %d", got, workers*(iters/10))
	}
	if got := s.Histograms["lat"].Count; got != int64(workers*iters+workers*(iters/10)) {
		t.Fatalf("lat count = %d", got)
	}
	if len(s.Histograms["lat"].Exemplars) == 0 {
		t.Fatal("no exemplars survived the merge storm")
	}
}

func TestSnapshotSchemaEnvelope(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	if s := r.Snapshot(); s.Schema != MetricsSchema {
		t.Fatalf("schema = %q, want %q", s.Schema, MetricsSchema)
	}
	var buf bytes.Buffer
	if err := r.WriteServiceJSON(&buf, "maccd:x"); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != MetricsSchema || m["service"] != "maccd:x" {
		t.Fatalf("envelope = %v/%v", m["schema"], m["service"])
	}
	if _, ok := m["counters"].(map[string]any); !ok {
		t.Fatal("counters field missing from envelope")
	}
}
