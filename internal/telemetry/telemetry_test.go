package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"macc/internal/telemetry"
)

func passed(pass, fn, loop string) telemetry.Remark {
	return telemetry.Remark{
		Kind: telemetry.Passed, Pass: pass, Fn: fn, Loop: loop,
		Name: "Coalesced", Reason: "profitability:sched-cycles 10<20",
		Args: map[string]int64{"wide_loads": 2},
	}
}

// TestRollbackRetractsStagedOutput is the staging contract: remarks and
// metric deltas emitted while a pass is active vanish when the pass is
// rolled back, while the span survives as the durable incident record.
func TestRollbackRetractsStagedOutput(t *testing.T) {
	r := telemetry.NewRecorder()

	r.BeginPass("coalesce", "f", 10, 2)
	r.Emit(passed("coalesce", "f", "loop"))
	r.Count("coalesce.loops_coalesced", 1)
	r.Observe("coalesce.check_instrs_per_loop", 12)
	r.EndPass(10, 2, true, "pass coalesce on f: injected")

	if got := r.Remarks(); len(got) != 0 {
		t.Errorf("rolled-back pass leaked %d remarks: %v", len(got), got)
	}
	if n := r.Metrics().CounterValue("coalesce.loops_coalesced"); n != 0 {
		t.Errorf("rolled-back counter delta committed: got %d, want 0", n)
	}
	if n := r.Metrics().CounterValue("pipeline.pass_rollbacks"); n != 1 {
		t.Errorf("pipeline.pass_rollbacks = %d, want 1", n)
	}
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.RolledBack || sp.Err == "" || sp.Remarks != 0 {
		t.Errorf("span = %+v, want RolledBack with Err and zero remarks", sp)
	}

	// A subsequent clean pass commits normally: the retraction is scoped to
	// the rolled-back pass, not the recorder.
	r.BeginPass("coalesce", "g", 10, 2)
	r.Emit(passed("coalesce", "g", "loop"))
	r.Count("coalesce.loops_coalesced", 1)
	r.EndPass(8, 2, false, "")

	if got := r.Remarks(); len(got) != 1 || got[0].Fn != "g" {
		t.Errorf("committed remarks = %v, want the one from g", got)
	}
	if n := r.Metrics().CounterValue("coalesce.loops_coalesced"); n != 1 {
		t.Errorf("committed counter = %d, want 1", n)
	}
	if n := r.Metrics().CounterValue("pipeline.pass_runs"); n != 2 {
		t.Errorf("pipeline.pass_runs = %d, want 2", n)
	}
}

// TestEmitOutsidePassCommitsImmediately: with no active stage, emissions go
// straight to the durable stores (the simulator's flushMetrics path).
func TestEmitOutsidePassCommitsImmediately(t *testing.T) {
	r := telemetry.NewRecorder()
	r.Emit(passed("coalesce", "f", "loop"))
	r.Count("sim.cycles", 100)
	if len(r.Remarks()) != 1 {
		t.Error("remark emitted outside a pass was not committed")
	}
	if n := r.Metrics().CounterValue("sim.cycles"); n != 100 {
		t.Errorf("sim.cycles = %d, want 100", n)
	}
}

// TestTraceEventJSON checks the Chrome trace_event schema invariants that
// about://tracing relies on: a top-level traceEvents array, complete ("X")
// events with name/pid/tid/ts/dur, and thread-name metadata ("M") events.
func TestTraceEventJSON(t *testing.T) {
	r := telemetry.NewRecorder()
	r.BeginPass("unroll", "f", 10, 2)
	r.EndPass(30, 4, false, "")
	r.BeginPass("coalesce", "f", 30, 4)
	r.Emit(passed("coalesce", "f", "loop"))
	r.EndPass(28, 4, false, "")
	r.BeginPass("schedule", "f", 28, 4)
	r.EndPass(28, 4, true, "pass schedule on f: injected")

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   *float64        `json:"ts"`
			Dur  *float64        `json:"dur"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta, rollback int
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "" || ev.Ts == nil || ev.Dur == nil || *ev.Ts < 0 || *ev.Dur < 0 {
				t.Errorf("malformed complete event: %+v", ev)
			}
			if ev.Cat == "rollback" {
				rollback++
			}
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name = %q, want thread_name", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Errorf("got %d complete events, want 3 (one per pass run)", complete)
	}
	if meta == 0 {
		t.Error("no thread_name metadata events; lanes would be unlabeled")
	}
	if rollback != 1 {
		t.Errorf("got %d rollback-category events, want 1", rollback)
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines; run
// with -race this validates the lock-free counter/gauge/histogram paths.
func TestRegistryConcurrency(t *testing.T) {
	reg := telemetry.NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("c.shared").Add(1)
				reg.Counter(fmt.Sprintf("c.%d", w%2)).Add(2)
				reg.Gauge("g.shared").Set(float64(i))
				reg.Histogram("h.shared").Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if n := reg.CounterValue("c.shared"); n != workers*iters {
		t.Errorf("c.shared = %d, want %d", n, workers*iters)
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["h.shared"]; !ok || h.Count != workers*iters {
		t.Errorf("h.shared count = %+v, want %d samples", snap.Histograms["h.shared"], workers*iters)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("registry JSON is invalid")
	}
}

// TestRecorderConcurrentEmit exercises Emit/Count racing against pass
// staging transitions (the simulator can flush while no pass is active, but
// the recorder must stay internally consistent under -race regardless).
func TestRecorderConcurrentEmit(t *testing.T) {
	r := telemetry.NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(passed("coalesce", "f", "loop"))
				r.Count("c", 1)
				r.Observe("h", int64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Remarks()); got != 2000 {
		t.Errorf("remarks = %d, want 2000", got)
	}
}

// TestRemarkFormats pins the two output modes of -remarks: the human line
// format and the machine-greppable JSONL.
func TestRemarkFormats(t *testing.T) {
	rem := passed("coalesce", "dotproduct", "loop.unrolled")
	text := telemetry.FormatRemarks([]telemetry.Remark{rem}, "text")
	for _, want := range []string{"coalesce", "dotproduct/loop.unrolled", "Passed", "Coalesced", "profitability:sched-cycles"} {
		if !strings.Contains(text, want) {
			t.Errorf("text format %q missing %q", text, want)
		}
	}
	jl := telemetry.FormatRemarks([]telemetry.Remark{rem}, "json")
	line := strings.TrimSpace(jl)
	var decoded telemetry.Remark
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("JSONL line does not parse: %v: %q", err, line)
	}
	if !strings.Contains(line, `"kind":"Passed"`) {
		t.Errorf("kind must marshal as its name for grepability: %q", line)
	}
}
