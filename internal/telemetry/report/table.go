package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTable renders the report's coverage summary — one row per
// machine × configuration, a totals row, then the missed-reason histogram
// ranked by count. markdown switches from aligned text to GitHub table
// syntax (the form README and PR comments embed).
func (r *Report) WriteTable(w io.Writer, markdown bool) {
	type cell struct{ loops, passed int }
	rows := make(map[string]*cell)
	var keys []string
	for _, v := range r.Loops {
		k := v.Machine + "|" + v.Config
		c := rows[k]
		if c == nil {
			c = &cell{}
			rows[k] = c
			keys = append(keys, k)
		}
		c.loops++
		if v.Passed {
			c.passed++
		}
	}
	sort.Strings(keys)

	t := newTable(w, markdown)
	t.row("machine", "config", "loops", "coalesced", "coverage")
	t.rule()
	total := cell{}
	for _, k := range keys {
		c := rows[k]
		mc := strings.SplitN(k, "|", 2)
		t.row(mc[0], mc[1], fmt.Sprint(c.loops), fmt.Sprint(c.passed), pct(c.passed, c.loops))
		total.loops += c.loops
		total.passed += c.passed
	}
	t.rule()
	t.row("total", "", fmt.Sprint(total.loops), fmt.Sprint(total.passed), pct(total.passed, total.loops))
	t.flush()

	if len(r.MissedReasons) == 0 {
		return
	}
	fmt.Fprintln(w)
	type bucket struct {
		tok string
		n   int
	}
	var hist []bucket
	missedTotal := 0
	for tok, n := range r.MissedReasons {
		hist = append(hist, bucket{tok, n})
		missedTotal += n
	}
	sort.Slice(hist, func(i, j int) bool {
		if hist[i].n != hist[j].n {
			return hist[i].n > hist[j].n
		}
		return hist[i].tok < hist[j].tok
	})
	h := newTable(w, markdown)
	h.row("missed reason", "count", "share")
	h.rule()
	for _, b := range hist {
		h.row(b.tok, fmt.Sprint(b.n), pct(b.n, missedTotal))
	}
	h.flush()
}

// WriteGroupTable renders the per-unit × per-machine breakdown. When units
// is non-empty only those units are shown, in the given order — cmd/optreport
// uses this to print the eight paper kernels without drowning them in the
// generated corpus.
func (r *Report) WriteGroupTable(w io.Writer, markdown bool, units ...string) {
	groups := r.Groups
	if len(units) > 0 {
		want := make(map[string]int, len(units))
		for i, u := range units {
			want[u] = i
		}
		var sel []Group
		for _, g := range groups {
			if _, ok := want[g.Unit]; ok {
				sel = append(sel, g)
			}
		}
		sort.Slice(sel, func(i, j int) bool {
			if sel[i].Unit != sel[j].Unit {
				return want[sel[i].Unit] < want[sel[j].Unit]
			}
			return sel[i].Machine < sel[j].Machine
		})
		groups = sel
	}
	t := newTable(w, markdown)
	t.row("kernel", "machine", "loops", "coalesced", "coverage")
	t.rule()
	for _, g := range groups {
		t.row(g.Unit, g.Machine, fmt.Sprint(g.Loops), fmt.Sprint(g.Coalesced), pct(g.Coalesced, g.Loops))
	}
	t.flush()
}

func pct(n, of int) string {
	if of == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(of))
}

// table is a minimal column aligner with a markdown mode.
type table struct {
	w        io.Writer
	markdown bool
	rows     [][]string
	rules    map[int]bool
}

func newTable(w io.Writer, markdown bool) *table {
	return &table{w: w, markdown: markdown, rules: make(map[int]bool)}
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }
func (t *table) rule()               { t.rules[len(t.rows)] = true }

func (t *table) flush() {
	var width []int
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for i, r := range t.rows {
		// Markdown only allows the one separator after the header row.
		if t.rules[i] && (!t.markdown || i == 1) {
			t.writeRule(width)
		}
		var sb strings.Builder
		if t.markdown {
			sb.WriteString("|")
		}
		for j := 0; j < len(width); j++ {
			c := ""
			if j < len(r) {
				c = r[j]
			}
			if t.markdown {
				fmt.Fprintf(&sb, " %s |", c)
			} else {
				if j > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", width[j], c)
			}
		}
		fmt.Fprintln(t.w, strings.TrimRight(sb.String(), " "))
	}
	if t.rules[len(t.rows)] && !t.markdown {
		t.writeRule(width)
	}
}

func (t *table) writeRule(width []int) {
	if t.markdown {
		var sb strings.Builder
		sb.WriteString("|")
		for range width {
			sb.WriteString(" --- |")
		}
		fmt.Fprintln(t.w, sb.String())
		return
	}
	n := 0
	for i, wd := range width {
		if i > 0 {
			n += 2
		}
		n += wd
	}
	fmt.Fprintln(t.w, strings.Repeat("-", n))
}
