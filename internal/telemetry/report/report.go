// Package report is the aggregation layer of the optimization observatory:
// it folds the remark streams of many compiles — the eight paper kernels,
// a generated corpus of hundreds of programs, every machine model and
// coalescing configuration — into one machine-readable artifact
// (macc-optreport/v1) that answers the paper's statistical question: what
// fraction of loops coalesce, per machine, across a workload?
//
// Because every remark carries a stable identity key (unit:fn/loop, see
// telemetry.Remark.Key), two reports over the same corpus are diffable
// loop by loop: DiffReports classifies Passed→Missed flips as regressions
// and Missed→Passed flips as wins, and Diff.Gate turns any regression into
// a CI failure — the same committed-baseline pattern cmd/hotpath and
// cmd/loadgen use for performance numbers, applied to optimizer decisions.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"macc/internal/bench"
	"macc/internal/telemetry"
)

// Schema versions the BENCH_optreport.json layout.
const Schema = "macc-optreport/v1"

// CoalescePass is the pass whose Passed/Missed verdicts define coverage.
const CoalescePass = "coalesce"

// Verdict is one loop's final coalescing decision under one
// (machine, configuration) pair — the diffable unit of the report.
type Verdict struct {
	// Key is the loop's stable identity: unit:fn/loop (telemetry.Remark.Key).
	Key     string `json:"key"`
	Machine string `json:"machine"`
	Config  string `json:"config"`
	Passed  bool   `json:"passed"`
	// Reason is the full machine-readable reason the coalescer gave.
	Reason string `json:"reason,omitempty"`
}

// ID is the verdict's diff identity: the same loop under the same machine
// and configuration has the same ID in every run.
func (v Verdict) ID() string {
	return v.Machine + "|" + v.Config + "|" + v.Key
}

// PassCounts aggregates one pass's remark kinds across all compiles.
type PassCounts struct {
	Passed   int `json:"passed"`
	Missed   int `json:"missed"`
	Analysis int `json:"analysis"`
}

// Group is the per-unit × per-machine coalescing breakdown, aggregated
// over configurations.
type Group struct {
	Unit      string  `json:"unit"`
	Machine   string  `json:"machine"`
	Loops     int     `json:"loops"`
	Coalesced int     `json:"coalesced"`
	Coverage  float64 `json:"coverage"`
}

// Report is the macc-optreport/v1 artifact.
type Report struct {
	Provenance bench.Provenance `json:"provenance"`
	// Corpus describes what was folded in (e.g. "8 kernels + 200 rtlgen
	// programs, seed 1"); diffs refuse to compare different corpora.
	Corpus   string `json:"corpus"`
	Units    int    `json:"units"`
	Compiles int    `json:"compiles"`
	// Passes counts remarks per pass across everything.
	Passes map[string]PassCounts `json:"passes"`
	// Coverage is the coalescing coverage rate: Passed verdicts over all
	// Passed+Missed verdicts.
	Coverage float64 `json:"coverage"`
	// MissedReasons histograms the reason tokens of Missed coalesce
	// verdicts — the ranked list of analysis upgrades to attack next.
	MissedReasons map[string]int `json:"missed_reasons"`
	Groups        []Group        `json:"groups"`
	Loops         []Verdict      `json:"loops"`
}

// Builder folds remark streams into a Report. Safe for concurrent use: the
// parallel harness calls Add from many workers.
type Builder struct {
	mu       sync.Mutex
	passes   map[string]*PassCounts
	missed   map[string]int
	verdicts map[string]Verdict
	units    map[string]bool
	compiles int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		passes:   make(map[string]*PassCounts),
		missed:   make(map[string]int),
		verdicts: make(map[string]Verdict),
		units:    make(map[string]bool),
	}
}

// Add folds one compile's remarks in, attributed to the machine model and
// configuration column it compiled under. Remarks are expected to carry
// their Unit (set macc.Config.Unit); unitless remarks still aggregate but
// group under "".
func (b *Builder) Add(machine, config string, remarks []telemetry.Remark) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.compiles++
	for _, r := range remarks {
		pc := b.passes[r.Pass]
		if pc == nil {
			pc = &PassCounts{}
			b.passes[r.Pass] = pc
		}
		switch r.Kind {
		case telemetry.Passed:
			pc.Passed++
		case telemetry.Missed:
			pc.Missed++
		case telemetry.Analysis:
			pc.Analysis++
		}
		if r.Unit != "" {
			b.units[r.Unit] = true
		}
		if r.Pass != CoalescePass || (r.Kind != telemetry.Passed && r.Kind != telemetry.Missed) {
			continue
		}
		v := Verdict{
			Key: r.Key(), Machine: machine, Config: config,
			Passed: r.Kind == telemetry.Passed, Reason: r.Reason,
		}
		b.verdicts[v.ID()] = v
		if !v.Passed {
			b.missed[r.ReasonToken()]++
		}
	}
}

// Build assembles the report, stamped with fresh provenance. The corpus
// string identifies the workload so diffs can refuse mismatched ones.
func (b *Builder) Build(corpus string) *Report {
	b.mu.Lock()
	defer b.mu.Unlock()
	rep := &Report{
		Provenance:    bench.NewProvenance(Schema),
		Corpus:        corpus,
		Units:         len(b.units),
		Compiles:      b.compiles,
		Passes:        make(map[string]PassCounts, len(b.passes)),
		MissedReasons: make(map[string]int, len(b.missed)),
	}
	for name, pc := range b.passes {
		rep.Passes[name] = *pc
	}
	for tok, n := range b.missed {
		rep.MissedReasons[tok] = n
	}
	ids := make([]string, 0, len(b.verdicts))
	for id := range b.verdicts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rep.Loops = make([]Verdict, 0, len(ids))
	passed := 0
	groups := make(map[string]*Group)
	for _, id := range ids {
		v := b.verdicts[id]
		rep.Loops = append(rep.Loops, v)
		if v.Passed {
			passed++
		}
		unit := v.Key
		if i := strings.IndexByte(unit, ':'); i >= 0 {
			unit = unit[:i]
		} else {
			unit = ""
		}
		gk := unit + "|" + v.Machine
		g := groups[gk]
		if g == nil {
			g = &Group{Unit: unit, Machine: v.Machine}
			groups[gk] = g
		}
		g.Loops++
		if v.Passed {
			g.Coalesced++
		}
	}
	if len(rep.Loops) > 0 {
		rep.Coverage = float64(passed) / float64(len(rep.Loops))
	}
	for _, g := range groups {
		if g.Loops > 0 {
			g.Coverage = float64(g.Coalesced) / float64(g.Loops)
		}
		rep.Groups = append(rep.Groups, *g)
	}
	sort.Slice(rep.Groups, func(i, j int) bool {
		if rep.Groups[i].Unit != rep.Groups[j].Unit {
			return rep.Groups[i].Unit < rep.Groups[j].Unit
		}
		return rep.Groups[i].Machine < rep.Groups[j].Machine
	})
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report and validates its schema.
func ReadJSON(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, err
	}
	if rep.Provenance.Schema != Schema {
		return nil, fmt.Errorf("not a %s artifact (schema %q)", Schema, rep.Provenance.Schema)
	}
	return &rep, nil
}
