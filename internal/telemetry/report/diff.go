package report

import (
	"fmt"
	"io"
	"sort"
)

// Change records one loop whose coalescing verdict flipped between two
// reports. Verdict carries the new state; OldReason the reason it left
// behind.
type Change struct {
	Verdict
	OldReason string `json:"old_reason,omitempty"`
}

// Diff is the loop-by-loop comparison of two reports over the same corpus.
type Diff struct {
	OldCoverage float64 `json:"old_coverage"`
	NewCoverage float64 `json:"new_coverage"`
	// Regressions are loops that flipped Passed→Missed.
	Regressions []Change `json:"regressions,omitempty"`
	// Wins are loops that flipped Missed→Passed.
	Wins []Change `json:"wins,omitempty"`
	// Added/Removed are loops present in only one report (source or
	// generator changes; a Removed loop that was Passed also gates).
	Added   []Verdict `json:"added,omitempty"`
	Removed []Verdict `json:"removed,omitempty"`
	// Warnings carries non-fatal comparability notes (host mismatch).
	Warnings []string `json:"warnings,omitempty"`
}

// DiffReports compares old and new loop by loop. It errors when the
// artifacts are not comparable at all — different schemas or different
// corpora. A host mismatch only warns: compile decisions are deterministic
// and host-insensitive, unlike the performance ratios hotpath gates on.
func DiffReports(oldRep, newRep *Report) (*Diff, error) {
	if err := oldRep.Provenance.CheckComparable(newRep.Provenance); err != nil {
		return nil, err
	}
	if oldRep.Corpus != newRep.Corpus {
		return nil, fmt.Errorf("corpus mismatch: old %q vs new %q — reports over different workloads are not diffable", oldRep.Corpus, newRep.Corpus)
	}
	d := &Diff{OldCoverage: oldRep.Coverage, NewCoverage: newRep.Coverage}
	if !oldRep.Provenance.SameHost(newRep.Provenance) {
		d.Warnings = append(d.Warnings, fmt.Sprintf(
			"host mismatch (old %s, new %s): verdicts are host-insensitive, proceeding",
			oldRep.Provenance.Host(), newRep.Provenance.Host()))
	}
	oldByID := make(map[string]Verdict, len(oldRep.Loops))
	for _, v := range oldRep.Loops {
		oldByID[v.ID()] = v
	}
	for _, nv := range newRep.Loops {
		ov, ok := oldByID[nv.ID()]
		if !ok {
			d.Added = append(d.Added, nv)
			continue
		}
		delete(oldByID, nv.ID())
		switch {
		case ov.Passed && !nv.Passed:
			d.Regressions = append(d.Regressions, Change{Verdict: nv, OldReason: ov.Reason})
		case !ov.Passed && nv.Passed:
			d.Wins = append(d.Wins, Change{Verdict: nv, OldReason: ov.Reason})
		}
	}
	for _, ov := range oldByID {
		d.Removed = append(d.Removed, ov)
	}
	sortChanges(d.Regressions)
	sortChanges(d.Wins)
	sortVerdicts(d.Added)
	sortVerdicts(d.Removed)
	return d, nil
}

func sortChanges(cs []Change)  { sort.Slice(cs, func(i, j int) bool { return cs[i].ID() < cs[j].ID() }) }
func sortVerdicts(vs []Verdict) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].ID() < vs[j].ID() })
}

// Gate returns a non-nil error when the diff contains any coalescing
// regression: a loop that flipped Passed→Missed, or a previously-Passed
// loop that disappeared entirely. Wins and added loops never gate.
func (d *Diff) Gate() error {
	lostPassed := 0
	for _, v := range d.Removed {
		if v.Passed {
			lostPassed++
		}
	}
	if len(d.Regressions) == 0 && lostPassed == 0 {
		return nil
	}
	return fmt.Errorf("coalescing regressed: %d loop(s) flipped Passed→Missed, %d Passed loop(s) vanished",
		len(d.Regressions), lostPassed)
}

// WriteText renders the diff as a human-readable summary.
func (d *Diff) WriteText(w io.Writer) {
	fmt.Fprintf(w, "coverage: %.1f%% -> %.1f%%\n", 100*d.OldCoverage, 100*d.NewCoverage)
	for _, warn := range d.Warnings {
		fmt.Fprintf(w, "warning: %s\n", warn)
	}
	for _, c := range d.Regressions {
		fmt.Fprintf(w, "REGRESSION %s [%s/%s]: Passed (%s) -> Missed (%s)\n",
			c.Key, c.Machine, c.Config, c.OldReason, c.Reason)
	}
	for _, c := range d.Wins {
		fmt.Fprintf(w, "win %s [%s/%s]: Missed (%s) -> Passed (%s)\n",
			c.Key, c.Machine, c.Config, c.OldReason, c.Reason)
	}
	if len(d.Added) > 0 {
		fmt.Fprintf(w, "added: %d loop(s)\n", len(d.Added))
	}
	for _, v := range d.Removed {
		state := "Missed"
		if v.Passed {
			state = "Passed"
		}
		fmt.Fprintf(w, "removed %s [%s/%s]: was %s\n", v.Key, v.Machine, v.Config, state)
	}
	if len(d.Regressions) == 0 && len(d.Wins) == 0 && len(d.Added) == 0 && len(d.Removed) == 0 {
		fmt.Fprintln(w, "no verdict changes")
	}
}
