package report_test

import (
	"bytes"
	"strings"
	"testing"

	"macc/internal/telemetry"
	"macc/internal/telemetry/report"
)

func rem(kind telemetry.Kind, unit, fn, loop, reason string) telemetry.Remark {
	name := "Coalesced"
	if kind == telemetry.Missed {
		name = "NotCoalesced"
	}
	return telemetry.Remark{
		Kind: kind, Pass: "coalesce", Unit: unit, Fn: fn, Loop: loop,
		Name: name, Reason: reason,
	}
}

func sampleReport(t *testing.T, flip bool) *report.Report {
	t.Helper()
	b := report.NewBuilder()
	convLoop := rem(telemetry.Passed, "conv", "conv", "loop", "profitability:sched-cycles 9<14")
	if flip {
		convLoop = rem(telemetry.Missed, "conv", "conv", "loop", "hazard:runtime-checks-disabled")
	}
	b.Add("Alpha", "loads", []telemetry.Remark{
		convLoop,
		rem(telemetry.Missed, "conv", "conv", "loop2", "hazard:intervening-store"),
		{Kind: telemetry.Analysis, Pass: "coalesce", Unit: "conv", Fn: "conv", Loop: "loop2", Name: "HazardReject", Reason: "hazard:intervening-store"},
	})
	b.Add("M88100", "loads", []telemetry.Remark{
		rem(telemetry.Passed, "xor", "xor", "loop", "profitability:sched-cycles 7<9"),
		rem(telemetry.Missed, "xor", "xor", "loop2", "shape:refs-span-blocks"),
	})
	return b.Build("test-corpus")
}

func TestBuildAggregates(t *testing.T) {
	rep := sampleReport(t, false)
	if rep.Provenance.Schema != report.Schema {
		t.Fatalf("schema = %q", rep.Provenance.Schema)
	}
	if rep.Units != 2 || rep.Compiles != 2 {
		t.Errorf("units=%d compiles=%d, want 2/2", rep.Units, rep.Compiles)
	}
	pc := rep.Passes["coalesce"]
	if pc.Passed != 2 || pc.Missed != 2 || pc.Analysis != 1 {
		t.Errorf("coalesce counts = %+v", pc)
	}
	if rep.Coverage != 0.5 {
		t.Errorf("coverage = %v, want 0.5", rep.Coverage)
	}
	if rep.MissedReasons["hazard:intervening-store"] != 1 || rep.MissedReasons["shape:refs-span-blocks"] != 1 {
		t.Errorf("missed-reason histogram = %v", rep.MissedReasons)
	}
	if len(rep.Loops) != 4 {
		t.Fatalf("%d loop verdicts, want 4", len(rep.Loops))
	}
	// Groups: conv×Alpha and xor×M88100, each 2 loops 1 coalesced.
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	for _, g := range rep.Groups {
		if g.Loops != 2 || g.Coalesced != 1 || g.Coverage != 0.5 {
			t.Errorf("group %+v, want 2 loops 1 coalesced", g)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := sampleReport(t, false), sampleReport(t, false)
	var wa, wb bytes.Buffer
	a.Provenance.CreatedAt, b.Provenance.CreatedAt = "", ""
	if err := a.WriteJSON(&wa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if wa.String() != wb.String() {
		t.Error("identical inputs produced different artifacts")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport(t, false)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := report.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Coverage != rep.Coverage || len(back.Loops) != len(rep.Loops) {
		t.Error("round trip lost data")
	}
	if _, err := report.ReadJSON(strings.NewReader(`{"provenance":{"schema":"macc-bench/v1"}}`)); err == nil {
		t.Error("foreign schema accepted")
	}
}

func TestDiffIdenticalIsClean(t *testing.T) {
	d, err := report.DiffReports(sampleReport(t, false), sampleReport(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions)+len(d.Wins)+len(d.Added)+len(d.Removed) != 0 {
		t.Errorf("identical reports diffed dirty: %+v", d)
	}
	if err := d.Gate(); err != nil {
		t.Errorf("gate failed on identical reports: %v", err)
	}
}

func TestDiffClassifiesAndGates(t *testing.T) {
	oldRep, newRep := sampleReport(t, false), sampleReport(t, true)
	d, err := report.DiffReports(oldRep, newRep)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want 1", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Key != "conv:conv/loop" || r.Passed || r.OldReason == "" {
		t.Errorf("regression = %+v", r)
	}
	if err := d.Gate(); err == nil {
		t.Error("gate passed despite a Passed→Missed flip")
	}
	// The reverse direction is a win, and wins never gate.
	d2, err := report.DiffReports(newRep, oldRep)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Wins) != 1 || len(d2.Regressions) != 0 {
		t.Errorf("reverse diff: wins=%d regressions=%d", len(d2.Wins), len(d2.Regressions))
	}
	if err := d2.Gate(); err != nil {
		t.Errorf("gate failed on a pure win: %v", err)
	}
}

func TestDiffAddedRemovedAndLostPassedGates(t *testing.T) {
	oldRep := sampleReport(t, false)
	b := report.NewBuilder()
	b.Add("Alpha", "loads", []telemetry.Remark{
		rem(telemetry.Passed, "conv", "conv", "loop", "profitability:sched-cycles 9<14"),
		rem(telemetry.Missed, "conv", "conv", "loop2", "hazard:intervening-store"),
		rem(telemetry.Missed, "newkern", "newkern", "loop", "alias:trip-count-unknown"),
	})
	newRep := b.Build("test-corpus")
	d, err := report.DiffReports(oldRep, newRep)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || d.Added[0].Key != "newkern:newkern/loop" {
		t.Errorf("added = %+v", d.Added)
	}
	// The xor kernel vanished — one of its loops was Passed, which gates.
	if len(d.Removed) != 2 {
		t.Errorf("removed = %+v", d.Removed)
	}
	if err := d.Gate(); err == nil {
		t.Error("gate passed despite a vanished Passed loop")
	}
}

func TestDiffRefusesMismatchedCorpusAndSchema(t *testing.T) {
	a := sampleReport(t, false)
	b := report.NewBuilder().Build("other-corpus")
	if _, err := report.DiffReports(a, b); err == nil {
		t.Error("corpus mismatch accepted")
	}
	c := sampleReport(t, false)
	c.Provenance.Schema = "macc-optreport/v0"
	if _, err := report.DiffReports(a, c); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDiffWarnsOnHostMismatch(t *testing.T) {
	a, b := sampleReport(t, false), sampleReport(t, false)
	b.Provenance.CPUs = a.Provenance.CPUs + 7
	d, err := report.DiffReports(a, b)
	if err != nil {
		t.Fatalf("host mismatch must warn, not error: %v", err)
	}
	if len(d.Warnings) == 0 {
		t.Error("no warning for host mismatch")
	}
}

func TestWriteTable(t *testing.T) {
	rep := sampleReport(t, false)
	var txt bytes.Buffer
	rep.WriteTable(&txt, false)
	for _, want := range []string{"Alpha", "M88100", "total", "50.0%", "hazard:intervening-store", "shape:refs-span-blocks"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text table missing %q:\n%s", want, txt.String())
		}
	}
	var md bytes.Buffer
	rep.WriteTable(&md, true)
	if !strings.Contains(md.String(), "| --- |") {
		t.Errorf("markdown table missing separator:\n%s", md.String())
	}
	if strings.Count(md.String(), "--- | --- | --- | --- | ---") != 1 {
		t.Errorf("markdown coverage table must have exactly one header separator:\n%s", md.String())
	}
	var grp bytes.Buffer
	rep.WriteGroupTable(&grp, false, "xor")
	if strings.Contains(grp.String(), "conv") || !strings.Contains(grp.String(), "xor") {
		t.Errorf("group filter broken:\n%s", grp.String())
	}
}

func TestDiffWriteText(t *testing.T) {
	d, err := report.DiffReports(sampleReport(t, false), sampleReport(t, true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	d.WriteText(&buf)
	if !strings.Contains(buf.String(), "REGRESSION conv:conv/loop") {
		t.Errorf("diff text missing regression line:\n%s", buf.String())
	}
}
