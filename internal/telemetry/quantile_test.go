package telemetry

import "testing"

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %d, want 0", got)
	}
	// 100 samples 1..100: p50 upper bound is the bucket holding 50 (le_64),
	// p99 the bucket holding 99, tightened by max=100.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i))
	}
	if got := h.Quantile(0.5); got != 64 {
		t.Errorf("p50 = %d, want 64", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100 (bucket le_128 clamped to max)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p1.0 = %d, want max 100", got)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	// A single huge sample must not overflow the bucket upper bound.
	big := &Histogram{}
	big.Observe(1 << 62)
	if got := big.Quantile(0.99); got != 1<<62 {
		t.Errorf("big p99 = %d, want %d", got, int64(1)<<62)
	}
}
