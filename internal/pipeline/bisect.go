package pipeline

import (
	"fmt"
	"hash/fnv"

	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/sim"
)

// Predicate judges the function produced by a prefix of the pass list.
// A nil return means the prefix is healthy; an error describes the failure
// (verifier rejection, simulator trap, behavioural divergence, ...).
type Predicate func(f *rtl.Fn) error

// BisectResult identifies the first culprit pass found by Bisect.
type BisectResult struct {
	// Index is the position of the culprit in the pass list, or -1 when
	// the full pipeline satisfies the predicate.
	Index int
	// Pass is the culprit's name ("" when Index is -1).
	Pass string
	// Err is the failure observed with the culprit included.
	Err error
}

// Found reports whether a culprit was identified.
func (r BisectResult) Found() bool { return r.Index >= 0 }

func (r BisectResult) String() string {
	if !r.Found() {
		return "bisect: no culprit pass (full pipeline is healthy)"
	}
	return fmt.Sprintf("bisect: first culprit is pass %d %q: %v", r.Index, r.Pass, r.Err)
}

// Bisect binary-searches the pass list for the first pass whose inclusion
// makes the predicate fail, in the style of LLVM's -opt-bisect-limit and
// bugpoint. fresh must return an independent copy of the unoptimized
// function for each probe; probes run their prefix fail-fast (a panic or
// verifier rejection inside the prefix counts as a failure), then apply the
// predicate. Bisection assumes the usual monotonicity: once the culprit has
// run, longer prefixes stay bad.
//
// An error is returned only when bisection itself cannot proceed, i.e. the
// predicate already fails on the unoptimized function.
func Bisect(fresh func() *rtl.Fn, passes []Pass, bad Predicate) (BisectResult, error) {
	probe := func(k int) error {
		f := fresh()
		if err := Run(f, passes[:k], Options{Strict: true}); err != nil {
			return err
		}
		return bad(f)
	}
	if err := probe(0); err != nil {
		return BisectResult{Index: -1}, fmt.Errorf("bisect: predicate fails before any pass runs: %w", err)
	}
	hiErr := probe(len(passes))
	if hiErr == nil {
		return BisectResult{Index: -1}, nil
	}
	lo, hi := 0, len(passes) // invariant: probe(lo) good, probe(hi) bad
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if err := probe(mid); err != nil {
			hi, hiErr = mid, err
		} else {
			lo = mid
		}
	}
	return BisectResult{Index: hi - 1, Pass: passes[hi-1].Name, Err: hiErr}, nil
}

// Behavior fingerprints the observable behaviour of entry in prog: for each
// argument set it runs the simulator over a deterministically seeded memory
// image and folds the return value and final memory into the fingerprint.
// Two programs with equal fingerprints returned the same values and left
// memory bit-identical on every run; any simulator trap is returned as an
// error. This is the divergence oracle differential predicates are built on.
func Behavior(prog *rtl.Program, m *machine.Machine, memBytes int, entry string, argSets [][]int64) (string, error) {
	h := fnv.New64a()
	for _, args := range argSets {
		s := sim.New(prog, m, memBytes)
		s.Fuel = 1 << 26
		for i := range s.Mem {
			s.Mem[i] = byte(i * 7)
		}
		res, err := s.Run(entry, args...)
		if err != nil {
			return "", fmt.Errorf("args %v: %w", args, err)
		}
		fmt.Fprintf(h, "%v->%d;", args, res.Ret)
		h.Write(s.Mem)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}
