// Package pipeline is the hardened pass manager for the optimizer: it runs
// a sequence of named transformation passes over an RTL function with
// per-pass panic recovery, a post-pass verification checkpoint, and rollback
// to the last-known-good snapshot when a pass misbehaves.
//
// The design mirrors the paper's Figure-5 philosophy at the level of the
// compiler itself: every unsafe transformation is guarded by a check, and
// when the check fails the system falls back to the safe version (the
// function as it stood before the pass) instead of dying. In the default,
// non-strict mode a faulty pass therefore degrades a compile — the remaining
// safe passes still run, and the incident is recorded in a Diagnostics
// report — while Strict mode restores classic fail-fast behaviour.
package pipeline

import (
	"fmt"
	"runtime/debug"
	"strings"

	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// Pass is one named transformation stage.
type Pass struct {
	// Name identifies the stage in diagnostics, dumps, and bisection.
	Name string
	// Run applies the transformation in place. A returned error (or a
	// panic, or a subsequent verifier rejection) marks the pass as failed.
	Run func(f *rtl.Fn) error
	// OnSuccess, when non-nil, is called only after the pass has run AND
	// the verification checkpoint has accepted the result. Side records
	// (coalescing reports, unroll factors) belong here so a rolled-back
	// pass leaves no trace of work that was undone.
	OnSuccess func()
}

// Options configures a Run.
type Options struct {
	// Strict makes the first pass failure abort the run with a *PassError
	// (today's fail-fast behaviour). The default rolls the function back
	// and continues with the remaining passes.
	Strict bool
	// NoVerify skips the post-pass verification checkpoints; panics are
	// still recovered. Used by probes that apply their own predicate.
	NoVerify bool
	// OnPass, when non-nil, observes the function after each successful
	// pass (the -dump hook).
	OnPass func(name string, f *rtl.Fn)
	// Diags, when non-nil, collects an Incident for every pass that was
	// rolled back.
	Diags *Diagnostics
	// Recorder, when non-nil, receives one telemetry span per pass run
	// (wall time, IR instruction/block deltas, rollback linkage) and
	// commits or retracts the remarks and metric deltas the pass staged
	// while running.
	Recorder *telemetry.Recorder
}

// PassError describes a pass failure: a recovered panic, a pass-returned
// error, or a verification rejection of the pass's output.
type PassError struct {
	Pass      string // pass name
	Fn        string // function being compiled
	Recovered any    // non-nil when the pass panicked
	Stack     []byte // goroutine stack at the panic, when Recovered != nil
	Err       error  // pass-returned or verifier error, when Recovered == nil
}

func (e *PassError) Error() string {
	if e.Recovered != nil {
		return fmt.Sprintf("pass %s on %s: panic: %v", e.Pass, e.Fn, e.Recovered)
	}
	return fmt.Sprintf("pass %s on %s: %v", e.Pass, e.Fn, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// Incident is one rolled-back pass failure in a degraded compile.
type Incident struct {
	Pass string
	Fn   string
	Err  *PassError
}

// Diagnostics accumulates the incidents of one compilation. A compile with
// an empty Diagnostics ran every pass cleanly; a non-empty one completed in
// degraded mode (the named passes were undone, the rest applied).
type Diagnostics struct {
	Incidents []Incident
}

// Degraded reports whether any pass was rolled back.
func (d *Diagnostics) Degraded() bool { return d != nil && len(d.Incidents) > 0 }

// FailedPasses returns the distinct names of passes that were rolled back,
// in first-failure order.
func (d *Diagnostics) FailedPasses() []string {
	if d == nil {
		return nil
	}
	seen := make(map[string]bool)
	var names []string
	for _, in := range d.Incidents {
		if !seen[in.Pass] {
			seen[in.Pass] = true
			names = append(names, in.Pass)
		}
	}
	return names
}

// String renders a one-line-per-incident report.
func (d *Diagnostics) String() string {
	if !d.Degraded() {
		return "clean"
	}
	var sb strings.Builder
	for _, in := range d.Incidents {
		fmt.Fprintf(&sb, "degraded: %s (rolled back)\n", in.Err)
	}
	return sb.String()
}

// Run executes the passes over f. Each pass runs under panic recovery and,
// unless NoVerify is set, is followed by an f.Verify() checkpoint. On
// failure the function is restored from the copy-on-write journal snapshot
// advanced after the last good pass; in Strict mode the *PassError is
// returned instead and f is left rolled back to that same snapshot.
//
// The journal replaces the whole-function Clone this loop used to take
// before every pass: committing a pass now recaptures only the blocks the
// pass dirtied (rtl.Snapshot.Update), so a pass that changes nothing costs a
// comparison sweep with zero allocations, and rollback replays the journal
// instead of deep-copying a clone back in.
func Run(f *rtl.Fn, passes []Pass, opts Options) error {
	good := rtl.NewSnapshot(f)
	for _, p := range passes {
		if opts.Recorder != nil {
			ni, nb := irSize(f)
			opts.Recorder.BeginPass(p.Name, f.Name, ni, nb)
		}
		perr := runOne(p, f)
		if perr == nil && !opts.NoVerify {
			if verr := f.Verify(); verr != nil {
				perr = &PassError{Pass: p.Name, Fn: f.Name, Err: verr}
			}
		}
		if perr != nil {
			good.Restore()
			if opts.Recorder != nil {
				// Retract the pass's staged remarks and metric deltas; the
				// span survives, marked rolled back, mirroring the Incident.
				ni, nb := irSize(f)
				opts.Recorder.EndPass(ni, nb, true, perr.Error())
			}
			if opts.Strict {
				return perr
			}
			if opts.Diags != nil {
				opts.Diags.Incidents = append(opts.Diags.Incidents,
					Incident{Pass: p.Name, Fn: f.Name, Err: perr})
			}
			continue
		}
		dirty := good.Update()
		if p.OnSuccess != nil {
			p.OnSuccess()
		}
		if opts.Recorder != nil {
			ni, nb := irSize(f)
			opts.Recorder.EndPass(ni, nb, false, "")
			opts.Recorder.Count("pipeline.snapshot_dirty_blocks", int64(dirty))
		}
		if opts.OnPass != nil {
			opts.OnPass(p.Name, f)
		}
	}
	return nil
}

// irSize measures a function for span deltas: total instructions and block
// count.
func irSize(f *rtl.Fn) (instrs, blocks int) {
	for _, b := range f.Blocks {
		instrs += len(b.Instrs)
	}
	return instrs, len(f.Blocks)
}

// runOne applies one pass, converting a panic into a structured *PassError.
func runOne(p Pass, f *rtl.Fn) (perr *PassError) {
	defer func() {
		if r := recover(); r != nil {
			perr = &PassError{Pass: p.Name, Fn: f.Name, Recovered: r, Stack: debug.Stack()}
		}
	}()
	if err := p.Run(f); err != nil {
		return &PassError{Pass: p.Name, Fn: f.Name, Err: err}
	}
	return nil
}
