package pipeline_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtl"
)

// testFn builds a small function with arithmetic, memory traffic, and
// control flow:
//
//	f(a) { if (a) M[64] = a+5; else M[64] = a-5; return M[64] }
func testFn() *rtl.Fn {
	f := rtl.NewFn("f", 1)
	a := f.Params[0]
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	f.Entry().Instrs = append(f.Entry().Instrs, rtl.BranchI(rtl.R(a), then, els))
	r1 := f.NewReg()
	then.Instrs = append(then.Instrs,
		rtl.BinI(rtl.Add, r1, rtl.R(a), rtl.C(5)),
		rtl.StoreI(rtl.C(64), 0, rtl.R(r1), rtl.W8),
		rtl.JumpI(join))
	r2 := f.NewReg()
	els.Instrs = append(els.Instrs,
		rtl.BinI(rtl.Sub, r2, rtl.R(a), rtl.C(5)),
		rtl.StoreI(rtl.C(64), 0, rtl.R(r2), rtl.W8),
		rtl.JumpI(join))
	r3 := f.NewReg()
	join.Instrs = append(join.Instrs,
		rtl.LoadI(r3, rtl.C(64), 0, rtl.W8, true),
		rtl.RetI(rtl.R(r3)))
	return f
}

var testArgs = [][]int64{{0}, {1}, {-9}, {1024}}

func behavior(t *testing.T, f *rtl.Fn) string {
	t.Helper()
	fp, err := pipeline.Behavior(rtl.NewProgram(f), machine.M68030(), 4096, f.Name, testArgs)
	if err != nil {
		t.Fatalf("behavior of %s: %v", f.Name, err)
	}
	return fp
}

func noop(name string) pipeline.Pass {
	return pipeline.Pass{Name: name, Run: func(*rtl.Fn) error { return nil }}
}

// faultyPasses are the misbehaviours the recovery machinery must contain.
// Every entry both corrupts behaviour and (except where noted) fails the
// verification checkpoint, so rollback is observable two ways.
var faultyPasses = []struct {
	name      string
	pass      pipeline.Pass
	wantPanic bool // incident should carry a recovered panic + stack
}{
	{
		name: "panic-in-pass",
		pass: pipeline.Pass{Name: "bad", Run: func(f *rtl.Fn) error {
			f.Blocks[0].Instrs = nil // corrupt first, then die
			panic("pass exploded")
		}},
		wantPanic: true,
	},
	{
		name: "verifier-rejection",
		pass: pipeline.Pass{Name: "bad", Run: func(f *rtl.Fn) error {
			b := f.Blocks[len(f.Blocks)-1]
			b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop the terminator
			return nil
		}},
	},
	{
		name: "pass-returned-error",
		pass: pipeline.Pass{Name: "bad", Run: func(f *rtl.Fn) error {
			f.Blocks[0].Instrs = nil
			return errors.New("resource exhausted")
		}},
	},
}

func TestRecoveryRollsBackAndContinues(t *testing.T) {
	for _, tc := range faultyPasses {
		t.Run(tc.name, func(t *testing.T) {
			f := testFn()
			orig := f.String()
			wantFP := behavior(t, f)

			var after int
			diags := &pipeline.Diagnostics{}
			passes := []pipeline.Pass{noop("pre"), tc.pass,
				{Name: "post", Run: func(*rtl.Fn) error { after++; return nil }}}
			if err := pipeline.Run(f, passes, pipeline.Options{Diags: diags}); err != nil {
				t.Fatalf("non-strict Run returned %v", err)
			}
			if after != 1 {
				t.Errorf("degraded mode must still run the remaining passes; post ran %d times", after)
			}
			if got := f.String(); got != orig {
				t.Errorf("function not rolled back:\n%s\nwant:\n%s", got, orig)
			}
			if got := behavior(t, f); got != wantFP {
				t.Error("rollback did not preserve simulator behaviour")
			}
			if !diags.Degraded() || len(diags.Incidents) != 1 {
				t.Fatalf("want exactly one incident, got %+v", diags.Incidents)
			}
			in := diags.Incidents[0]
			if in.Pass != "bad" || in.Fn != "f" {
				t.Errorf("incident attributes pass %q fn %q", in.Pass, in.Fn)
			}
			if tc.wantPanic {
				if in.Err.Recovered == nil || len(in.Err.Stack) == 0 {
					t.Error("panic incident must carry the recovered value and stack")
				}
			} else if in.Err.Err == nil {
				t.Error("non-panic incident must carry the underlying error")
			}
			if got := diags.FailedPasses(); len(got) != 1 || got[0] != "bad" {
				t.Errorf("FailedPasses = %v", got)
			}
			if !strings.Contains(diags.String(), "bad") {
				t.Errorf("diagnostics report %q does not name the pass", diags.String())
			}
		})
	}
}

func TestStrictModePropagatesPassError(t *testing.T) {
	for _, tc := range faultyPasses {
		t.Run(tc.name, func(t *testing.T) {
			f := testFn()
			orig := f.String()
			err := pipeline.Run(f, []pipeline.Pass{noop("pre"), tc.pass, noop("post")},
				pipeline.Options{Strict: true})
			var pe *pipeline.PassError
			if !errors.As(err, &pe) {
				t.Fatalf("want *PassError, got %v", err)
			}
			if pe.Pass != "bad" || pe.Fn != "f" {
				t.Errorf("PassError names pass %q fn %q", pe.Pass, pe.Fn)
			}
			if tc.wantPanic != (pe.Recovered != nil) {
				t.Errorf("Recovered = %v, wantPanic = %v", pe.Recovered, tc.wantPanic)
			}
			if got := f.String(); got != orig {
				t.Error("strict mode must still leave the function rolled back")
			}
		})
	}
}

func TestHooksFireOnlyOnSuccess(t *testing.T) {
	f := testFn()
	var committed, observed []string
	mk := func(name string, fail bool) pipeline.Pass {
		return pipeline.Pass{
			Name: name,
			Run: func(f *rtl.Fn) error {
				if fail {
					panic(name)
				}
				return nil
			},
			OnSuccess: func() { committed = append(committed, name) },
		}
	}
	err := pipeline.Run(f, []pipeline.Pass{mk("a", false), mk("b", true), mk("c", false)},
		pipeline.Options{OnPass: func(name string, _ *rtl.Fn) { observed = append(observed, name) }})
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(committed); got != "[a c]" {
		t.Errorf("OnSuccess fired for %v, want [a c]", committed)
	}
	if got := fmt.Sprint(observed); got != "[a c]" {
		t.Errorf("OnPass fired for %v, want [a c]", observed)
	}
}

// flipPass silently miscompiles: it turns the then-arm's Add into a Sub,
// which still verifies and is only visible to differential execution.
func flipPass(name string) pipeline.Pass {
	return pipeline.Pass{Name: name, Run: func(f *rtl.Fn) error {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == rtl.Add {
					in.Op = rtl.Sub
					return nil
				}
			}
		}
		return nil
	}}
}

func TestBisectFindsBehaviouralCulprit(t *testing.T) {
	orig := testFn()
	want := behavior(t, orig)
	bad := func(f *rtl.Fn) error {
		if got := behavior(t, f); got != want {
			return errors.New("diverges")
		}
		return nil
	}
	passes := []pipeline.Pass{noop("a"), flipPass("culprit"), noop("c"), noop("d")}
	res, err := pipeline.Bisect(func() *rtl.Fn { return orig.Clone() }, passes, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Index != 1 || res.Pass != "culprit" {
		t.Fatalf("bisect = %v, want culprit at index 1", res)
	}
}

func TestBisectFindsStructuralCulprit(t *testing.T) {
	orig := testFn()
	healthy := func(*rtl.Fn) error { return nil }
	passes := []pipeline.Pass{noop("a"), noop("b"),
		{Name: "boom", Run: func(*rtl.Fn) error { panic("boom") }}, noop("d")}
	res, err := pipeline.Bisect(func() *rtl.Fn { return orig.Clone() }, passes, healthy)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() || res.Index != 2 || res.Pass != "boom" {
		t.Fatalf("bisect = %v, want boom at index 2", res)
	}
	var pe *pipeline.PassError
	if !errors.As(res.Err, &pe) || pe.Pass != "boom" {
		t.Errorf("culprit error should be the pass's own *PassError, got %v", res.Err)
	}
}

func TestBisectHealthyPipeline(t *testing.T) {
	orig := testFn()
	res, err := pipeline.Bisect(func() *rtl.Fn { return orig.Clone() },
		[]pipeline.Pass{noop("a"), noop("b")}, func(*rtl.Fn) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("healthy pipeline reported culprit %v", res)
	}
}

func TestBisectRejectsBrokenBaseline(t *testing.T) {
	orig := testFn()
	_, err := pipeline.Bisect(func() *rtl.Fn { return orig.Clone() },
		[]pipeline.Pass{noop("a")}, func(*rtl.Fn) error { return errors.New("always bad") })
	if err == nil {
		t.Fatal("a predicate failing before any pass must be reported as an error")
	}
}
