package pipeline

import (
	"runtime/debug"

	"macc/internal/rtl"
)

// FlatPass is one named transformation stage over the flat (struct-of-arrays)
// form of one function.
type FlatPass struct {
	// Name identifies the stage in diagnostics, dumps, and bisection; flat
	// stages use the same names as their graph twins so incident reports and
	// telemetry spans read identically whichever form ran.
	Name string
	// Run applies the transformation to function fi of fp in place.
	Run func(fp *rtl.FlatProgram, fi int) error
	// OnSuccess mirrors Pass.OnSuccess: called only after the verification
	// checkpoint has accepted the result.
	OnSuccess func()
}

// RunFlat is Run for a flat function: the same per-pass panic recovery,
// post-pass verification checkpoint (VerifyFn), and rollback discipline, with
// the copy-on-write block journal replaced by a flat snapshot whose restore
// copies array ranges instead of rebuilding a block graph. Options.OnPass is
// not invoked — it observes pointer-graph functions, and the callers that
// set it (stage dumping) run the graph pipeline instead.
func RunFlat(fp *rtl.FlatProgram, fi int, passes []FlatPass, opts Options) error {
	f := &fp.Fns[fi]
	fnName := fp.Syms[f.Name]
	good := rtl.NewFlatSnapshot(fp, fi)
	for _, p := range passes {
		if opts.Recorder != nil {
			opts.Recorder.BeginPass(p.Name, fnName, f.NumInstrs(), len(f.Blocks))
		}
		perr := runOneFlat(p, fp, fi, fnName)
		if perr == nil && !opts.NoVerify {
			if verr := fp.VerifyFn(fi); verr != nil {
				perr = &PassError{Pass: p.Name, Fn: fnName, Err: verr}
			}
		}
		if perr != nil {
			good.Restore()
			if opts.Recorder != nil {
				// Retract the pass's staged remarks and metric deltas; the
				// span survives, marked rolled back, mirroring the Incident.
				opts.Recorder.EndPass(f.NumInstrs(), len(f.Blocks), true, perr.Error())
			}
			if opts.Strict {
				return perr
			}
			if opts.Diags != nil {
				opts.Diags.Incidents = append(opts.Diags.Incidents,
					Incident{Pass: p.Name, Fn: fnName, Err: perr})
			}
			continue
		}
		dirty := good.Update()
		if p.OnSuccess != nil {
			p.OnSuccess()
		}
		if opts.Recorder != nil {
			opts.Recorder.EndPass(f.NumInstrs(), len(f.Blocks), false, "")
			opts.Recorder.Count("pipeline.snapshot_dirty_blocks", int64(dirty))
		}
	}
	return nil
}

// runOneFlat applies one flat pass, converting a panic into a *PassError.
func runOneFlat(p FlatPass, fp *rtl.FlatProgram, fi int, fnName string) (perr *PassError) {
	defer func() {
		if r := recover(); r != nil {
			perr = &PassError{Pass: p.Name, Fn: fnName, Recovered: r, Stack: debug.Stack()}
		}
	}()
	if err := p.Run(fp, fi); err != nil {
		return &PassError{Pass: p.Name, Fn: fnName, Err: err}
	}
	return nil
}
