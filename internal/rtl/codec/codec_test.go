package codec_test

import (
	"bytes"
	"testing"

	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/rtlgen"
)

const fixture = `global tab @4096 size 16 init deadbeef
global bss @8192 size 64
func f(r0, r1) frame 24 @r7 {
entry:
	r2 = M.4u[r0+8]
	r3 = r2 + 17
	if r3 goto body else exit
body:
	M.4[r1-4] = r3
	r4 = extract.2s r2 @1
	r5 = insert.1 r2 <- r3 @2
	r6 = g(r4, 3)
	jump exit
exit:
	ret r3
}
func g(r0, r1) {
entry:
	r2 = r0 * r1
	ret r2
}
`

func flatFixture(t *testing.T) (*rtl.FlatProgram, string) {
	t.Helper()
	p, err := rtl.ParseProgram(fixture)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	return fp, p.String()
}

func TestCodecRoundTripFixture(t *testing.T) {
	fp, want := flatFixture(t)
	enc := codec.EncodeProgram(fp)
	dec, err := codec.DecodeProgram(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back, err := dec.Unflatten()
	if err != nil {
		t.Fatalf("unflatten: %v", err)
	}
	if got := back.String(); got != want {
		t.Fatalf("codec round trip not lossless:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Encoding is deterministic and canonical: re-encoding the decoded
	// image reproduces the exact bytes.
	if re := codec.EncodeProgram(dec); !bytes.Equal(re, enc) {
		t.Fatal("re-encode of decoded program differs from original encoding")
	}
}

func TestCodecRoundTripEmptyAndGlobalsOnly(t *testing.T) {
	for name, src := range map[string]string{
		"empty":        "",
		"globals-only": "global g @0 size 8\n",
		"no-frame":     "func f() {\nentry:\n\tret\n}\n",
	} {
		t.Run(name, func(t *testing.T) {
			p, err := rtl.ParseProgram(src)
			if err != nil {
				t.Fatal(err)
			}
			fp, err := rtl.Flatten(p)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := codec.DecodeProgram(codec.EncodeProgram(fp))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			back, err := dec.Unflatten()
			if err != nil {
				t.Fatal(err)
			}
			if got := back.String(); got != p.String() {
				t.Fatalf("round trip differs: %q vs %q", got, p.String())
			}
		})
	}
}

func TestCodecRoundTripCorpus(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := rtl.NewProgram(fn)
		fp, err := rtl.Flatten(p)
		if err != nil {
			t.Fatalf("seed %d: flatten: %v", seed, err)
		}
		dec, err := codec.DecodeProgram(codec.EncodeProgram(fp))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		back, err := dec.Unflatten()
		if err != nil {
			t.Fatalf("seed %d: unflatten: %v", seed, err)
		}
		if got, want := back.String(), p.String(); got != want {
			t.Fatalf("seed %d: round trip differs:\n%s\nvs\n%s", seed, got, want)
		}
	}
}

// TestCodecEveryTruncationErrors decodes every strict prefix of a valid
// encoding: all must error (the checksum trailer guards them) and none may
// panic.
func TestCodecEveryTruncationErrors(t *testing.T) {
	fp, _ := flatFixture(t)
	enc := codec.EncodeProgram(fp)
	for i := 0; i < len(enc); i++ {
		if _, err := codec.DecodeProgram(enc[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", i, len(enc))
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	fp, _ := flatFixture(t)
	enc := codec.EncodeProgram(fp)
	cases := map[string]func([]byte) []byte{
		"bad-magic": func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad-version": func(b []byte) []byte {
			b[4] = 0x7F // version 127
			return b
		},
		"flipped-body-byte": func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"flipped-trailer":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated-half":    func(b []byte) []byte { return b[:len(b)/2] },
		"empty":             func(b []byte) []byte { return nil },
		"garbage":           func(b []byte) []byte { return []byte("not a flat program at all") },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			buf := corrupt(append([]byte(nil), enc...))
			if _, err := codec.DecodeProgram(buf); err == nil {
				t.Fatal("corrupt buffer decoded successfully")
			}
		})
	}
}

func BenchmarkEncodeProgram(b *testing.B) {
	p, err := rtl.ParseProgram(fixture)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := rtl.Flatten(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		codec.EncodeProgram(fp)
	}
}

func BenchmarkDecodeProgram(b *testing.B) {
	p, err := rtl.ParseProgram(fixture)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := rtl.Flatten(p)
	if err != nil {
		b.Fatal(err)
	}
	enc := codec.EncodeProgram(fp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeProgram(enc); err != nil {
			b.Fatal(err)
		}
	}
}
