package codec_test

// FuzzFlatRoundTrip pins the two safety properties the compile cache's
// binary disk tier depends on:
//
//  1. Losslessness: for any rtlgen-generated program, Flatten → encode →
//     decode → Unflatten → print is byte-identical to printing the
//     original, and re-encoding the decoded image reproduces the exact
//     bytes.
//  2. Robustness: DecodeProgram on corrupted, truncated, or arbitrary
//     buffers returns an error (or, for full-checksum-valid mutations, a
//     validated program) — it never panics and never produces an image
//     Unflatten rejects.
//  3. Pass safety: running a flat optimization pass over any decoded image
//     keeps it index-safe — Validate still accepts it. No pass may ever
//     produce unparallel arrays, broken block ranges, or dangling call
//     indices, whatever image the codec hands it.

import (
	"bytes"
	"testing"

	"macc/internal/opt"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/rtlgen"
)

// runFlatPass applies one flat pass (the clean sweep, which exercises the
// in-place rewrite, kill-marker compaction, and block-removal primitives)
// to every function of a decoded image and asserts index safety.
func runFlatPass(t *testing.T, fp *rtl.FlatProgram, what string) {
	t.Helper()
	for fi := range fp.Fns {
		opt.FlatClean(fp, fi)
	}
	if err := fp.Validate(); err != nil {
		t.Fatalf("flat pass over %s broke index safety: %v", what, err)
	}
}

func FuzzFlatRoundTrip(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed, []byte{})
	}
	f.Add(int64(3), []byte{0x00, 0x13, 0x37})
	f.Add(int64(-9), []byte("MFP1 but not really"))
	f.Fuzz(func(t *testing.T, seed int64, corrupt []byte) {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Skip("generator rejected seed")
		}
		p := rtl.NewProgram(fn)
		want := p.String()

		fp, err := rtl.Flatten(p)
		if err != nil {
			t.Fatalf("flatten: %v", err)
		}
		enc := codec.EncodeProgram(fp)
		dec, err := codec.DecodeProgram(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding: %v", err)
		}
		back, err := dec.Unflatten()
		if err != nil {
			t.Fatalf("unflatten of valid decode: %v", err)
		}
		if got := back.String(); got != want {
			t.Fatalf("round trip not byte-identical:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
		if re := codec.EncodeProgram(dec); !bytes.Equal(re, enc) {
			t.Fatal("re-encode differs from original encoding")
		}
		runFlatPass(t, dec, "valid decode")

		// Truncations of a valid encoding must error, never panic.
		if len(corrupt) > 0 {
			cut := int(corrupt[0]) % len(enc)
			if _, err := codec.DecodeProgram(enc[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d bytes decoded successfully", cut, len(enc))
			}
		}

		// Arbitrary mutations and raw junk: decode must not panic, and
		// anything it does accept must be safe to materialize.
		mut := append([]byte(nil), enc...)
		for i, b := range corrupt {
			mut[i%len(mut)] ^= b
		}
		for _, buf := range [][]byte{mut, corrupt} {
			if got, err := codec.DecodeProgram(buf); err == nil {
				if _, err := got.Unflatten(); err != nil {
					t.Fatalf("decode accepted an image Unflatten rejects: %v", err)
				}
				runFlatPass(t, got, "accepted mutation")
			}
		}
	})
}
