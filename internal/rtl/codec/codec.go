// Package codec is the versioned binary wire/disk format for the flat IR
// (rtl.FlatProgram). It replaces the printer/parser text round trip in the
// compile cache's disk tier: a warm disk hit decodes straight into the flat
// form with no reparse, which is what the hotpath codec gate measures.
//
// Layout:
//
//	magic "MFP1"
//	uvarint format version (currently 1)
//	sections: uvarint section id, uvarint payload length, payload
//	  1 = symbol table   (once, before any function)
//	  2 = globals        (at most once)
//	  3 = one function   (repeated, in program order)
//	8-byte little-endian FNV-64a checksum over everything before it
//
// Integers are unsigned varints; values that can be negative (registers,
// displacements, constants, block ids) are zigzag varints. Per-instruction
// fields are stored as struct-of-arrays streams so the decoder fills the
// FlatFn arrays with tight per-field loops. Successor/predecessor edge
// tables are derived state and are recomputed after decode, not stored.
//
// DecodeProgram validates everything — magic, version, checksum, section
// structure, then rtl.(*FlatProgram).Validate for index consistency — and
// returns errors, never panics, on corrupt or truncated input. The fuzz
// target FuzzFlatRoundTrip pins that property.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"macc/internal/rtl"
)

// Version is the current format version; decoders reject anything else.
const Version = 1

var magic = [4]byte{'M', 'F', 'P', '1'}

// Section ids.
const (
	secSyms    = 1
	secGlobals = 2
	secFn      = 3
)

// ErrCorrupt wraps all decode failures so callers can treat any malformed
// buffer uniformly (the cache turns it into a miss, never an error).
var ErrCorrupt = errors.New("codec: corrupt flat program")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// EncodeProgram serializes fp. The result always carries a valid checksum
// trailer and decodes back to an identical FlatProgram (modulo the derived
// edge tables, which DecodeProgram recomputes).
func EncodeProgram(fp *rtl.FlatProgram) []byte {
	buf := make([]byte, 0, encSizeHint(fp))
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, Version)

	var scratch []byte

	// Symbol table.
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(fp.Syms)))
	for _, s := range fp.Syms {
		scratch = binary.AppendUvarint(scratch, uint64(len(s)))
		scratch = append(scratch, s...)
	}
	buf = appendSection(buf, secSyms, scratch)

	// Globals.
	if len(fp.Globals) > 0 {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(fp.Globals)))
		for gi := range fp.Globals {
			g := &fp.Globals[gi]
			scratch = binary.AppendUvarint(scratch, uint64(g.Name))
			scratch = binary.AppendVarint(scratch, g.Addr)
			scratch = binary.AppendVarint(scratch, g.Size)
			scratch = binary.AppendUvarint(scratch, uint64(len(g.Init)))
			scratch = append(scratch, g.Init...)
		}
		buf = appendSection(buf, secGlobals, scratch)
	}

	// Functions.
	for fi := range fp.Fns {
		scratch = appendFn(scratch[:0], &fp.Fns[fi])
		buf = appendSection(buf, secFn, scratch)
	}

	return appendChecksum(buf)
}

func encSizeHint(fp *rtl.FlatProgram) int {
	n := 64
	for _, s := range fp.Syms {
		n += len(s) + 2
	}
	for gi := range fp.Globals {
		n += len(fp.Globals[gi].Init) + 16
	}
	for fi := range fp.Fns {
		f := &fp.Fns[fi]
		n += 32 + 12*len(f.Blocks) + 14*f.NumInstrs() + 8*len(f.Args) + 8*len(f.Calls)
	}
	return n
}

func appendSection(buf []byte, id uint64, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, id)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

func appendChecksum(buf []byte) []byte {
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64())
}

func appendFn(b []byte, f *rtl.FlatFn) []byte {
	b = binary.AppendUvarint(b, uint64(f.Name))
	b = binary.AppendUvarint(b, uint64(len(f.Params)))
	for _, p := range f.Params {
		b = binary.AppendVarint(b, int64(p))
	}
	b = binary.AppendVarint(b, f.FrameBytes)
	b = binary.AppendVarint(b, int64(f.FrameReg))
	b = binary.AppendVarint(b, int64(f.NextReg))
	b = binary.AppendVarint(b, int64(f.NextBlk))

	b = binary.AppendUvarint(b, uint64(len(f.Blocks)))
	for bi := range f.Blocks {
		blk := &f.Blocks[bi]
		b = binary.AppendVarint(b, int64(blk.ID))
		b = binary.AppendUvarint(b, uint64(blk.Name))
		b = binary.AppendUvarint(b, uint64(blk.InstrEnd-blk.InstrStart))
	}

	n := f.NumInstrs()
	for i := 0; i < n; i++ {
		b = append(b, byte(f.Op[i]))
	}
	for i := 0; i < n; i++ {
		b = binary.AppendVarint(b, int64(f.Dst[i]))
	}
	b = appendOperands(b, f.A)
	b = appendOperands(b, f.B)
	b = appendOperands(b, f.C)
	for i := 0; i < n; i++ {
		b = append(b, byte(f.Width[i]))
	}
	b = appendBitset(b, f.Signed)
	for i := 0; i < n; i++ {
		b = binary.AppendVarint(b, f.Disp[i])
	}
	for i := 0; i < n; i++ {
		b = binary.AppendVarint(b, int64(f.Target[i]))
	}
	for i := 0; i < n; i++ {
		b = binary.AppendVarint(b, int64(f.Else[i]))
	}

	b = binary.AppendUvarint(b, uint64(len(f.Calls)))
	prev := int32(-1)
	for i := 0; i < n; i++ {
		ci := f.CallIdx[i]
		if ci < 0 {
			continue
		}
		c := &f.Calls[ci]
		b = binary.AppendUvarint(b, uint64(int32(i)-prev)) // delta-coded instr index
		prev = int32(i)
		b = binary.AppendUvarint(b, uint64(c.Callee))
		b = binary.AppendUvarint(b, uint64(c.ArgEnd-c.ArgStart))
		b = appendOperands(b, f.Args[c.ArgStart:c.ArgEnd])
	}
	return b
}

func appendOperands(b []byte, ops []rtl.Operand) []byte {
	for _, o := range ops {
		b = append(b, byte(o.Kind))
		switch o.Kind {
		case rtl.KindReg:
			b = binary.AppendVarint(b, int64(o.Reg))
		case rtl.KindConst:
			b = binary.AppendVarint(b, o.Const)
		}
	}
	return b
}

func appendBitset(b []byte, bits []bool) []byte {
	nb := (len(bits) + 7) / 8
	start := len(b)
	for i := 0; i < nb; i++ {
		b = append(b, 0)
	}
	for i, v := range bits {
		if v {
			b[start+i/8] |= 1 << (i % 8)
		}
	}
	return b
}

// reader is a bounds-checked cursor over the encoded buffer. All failures
// latch into err; callers check once per logical unit.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

// uvarint and varint keep their single-byte fast path small enough to
// inline at every call site; multi-byte values and error states take the
// out-of-line slow path. Single-byte values dominate real encodings.

func (r *reader) uvarint() uint64 {
	// The fast path skips the latched-error check to stay under the inline
	// budget: after an error it may decode garbage, but every consumer that
	// sizes an allocation or trusts a value re-checks r.err first.
	if r.off < len(r.b) && r.b[r.off] < 0x80 {
		v := uint64(r.b[r.off])
		r.off++
		return v
	}
	return r.uvarintSlow()
}

func (r *reader) uvarintSlow() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.off < len(r.b) && r.b[r.off] < 0x80 {
		v := int64(r.b[r.off])
		r.off++
		return v>>1 ^ -(v & 1) // zigzag decode
	}
	return r.varintSlow()
}

func (r *reader) varintSlow() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("truncated varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("truncated %d-byte field at %d", n, r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// count validates an element count against the remaining bytes, with each
// element costing at least min bytes — the guard that stops a hostile
// length prefix from triggering a giant allocation.
func (r *reader) count(v uint64, min int) int {
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if v > uint64((len(r.b)-r.off)/min)+1 {
		r.fail("count %d exceeds remaining input", v)
		return 0
	}
	return int(v)
}

// DecodeProgram parses an EncodeProgram buffer back into a validated
// FlatProgram, recomputing the derived edge tables.
func DecodeProgram(data []byte) (*rtl.FlatProgram, error) {
	if len(data) < len(magic)+1+8 {
		return nil, corruptf("short buffer (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(trailer); got != want {
		return nil, corruptf("checksum mismatch: %016x != %016x", got, want)
	}
	if string(body[:4]) != string(magic[:]) {
		return nil, corruptf("bad magic %q", body[:4])
	}
	r := &reader{b: body, off: 4}
	if v := r.uvarint(); r.err == nil && v != Version {
		return nil, corruptf("unsupported version %d", v)
	}

	fp := &rtl.FlatProgram{}
	sawSyms, sawGlobals := false, false
	for r.err == nil && r.off < len(r.b) {
		id := r.uvarint()
		plen := r.uvarint()
		payload := r.bytes(int(plen))
		if r.err != nil {
			break
		}
		sr := &reader{b: payload}
		switch id {
		case secSyms:
			if sawSyms {
				r.fail("duplicate symbol section")
				break
			}
			sawSyms = true
			decodeSyms(sr, fp)
		case secGlobals:
			if sawGlobals {
				r.fail("duplicate globals section")
				break
			}
			sawGlobals = true
			decodeGlobals(sr, fp)
		case secFn:
			fp.Fns = append(fp.Fns, rtl.FlatFn{})
			decodeFn(sr, &fp.Fns[len(fp.Fns)-1])
		default:
			r.fail("unknown section id %d", id)
		}
		if sr.err != nil {
			return nil, sr.err
		}
		if sr.off != len(sr.b) {
			return nil, corruptf("section %d has %d trailing bytes", id, len(sr.b)-sr.off)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if !sawSyms {
		return nil, corruptf("missing symbol section")
	}
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	for fi := range fp.Fns {
		fp.Fns[fi].ComputeEdges()
	}
	return fp, nil
}

func decodeSyms(r *reader, fp *rtl.FlatProgram) {
	n := r.count(r.uvarint(), 1)
	fp.Syms = make([]string, 0, n)
	// Copy every name into one backing string and hand out substrings, so
	// the symbol table costs two allocations instead of one per name.
	buf := make([]byte, 0, len(r.b)-r.off)
	ends := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		l := r.uvarint()
		buf = append(buf, r.bytes(int(l))...)
		ends = append(ends, len(buf))
	}
	all := string(buf)
	start := 0
	for _, end := range ends {
		fp.Syms = append(fp.Syms, all[start:end])
		start = end
	}
}

func decodeGlobals(r *reader, fp *rtl.FlatProgram) {
	n := r.count(r.uvarint(), 4)
	fp.Globals = make([]rtl.FlatGlobal, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		g := rtl.FlatGlobal{
			Name: rtl.Sym(r.uvarint()),
			Addr: r.varint(),
			Size: r.varint(),
		}
		l := r.uvarint()
		g.Init = append([]byte(nil), r.bytes(int(l))...)
		fp.Globals = append(fp.Globals, g)
	}
}

func decodeFn(r *reader, f *rtl.FlatFn) {
	f.Name = rtl.Sym(r.uvarint())
	np := r.count(r.uvarint(), 1)
	f.Params = make([]rtl.Reg, 0, np)
	for i := 0; i < np && r.err == nil; i++ {
		f.Params = append(f.Params, rtl.Reg(r.varint()))
	}
	f.FrameBytes = r.varint()
	f.FrameReg = rtl.Reg(r.varint())
	f.NextReg = rtl.Reg(r.varint())
	f.NextBlk = int32(r.varint())

	nblk := r.count(r.uvarint(), 3)
	f.Blocks = make([]rtl.FlatBlock, 0, nblk)
	total := 0
	for i := 0; i < nblk && r.err == nil; i++ {
		id := int32(r.varint())
		name := rtl.Sym(r.uvarint())
		ni := r.count(r.uvarint(), 1) // each instruction is >= 1 byte of opcode
		blk := rtl.FlatBlock{
			ID: id, Name: name,
			InstrStart: int32(total), InstrEnd: int32(total + ni),
		}
		total += ni
		if total > len(r.b) { // opcodes alone would overrun the section
			r.fail("instruction count %d exceeds section size", total)
			return
		}
		f.Blocks = append(f.Blocks, blk)
	}
	if r.err != nil {
		return
	}
	n := total

	ops := r.bytes(n)
	f.Op = make([]rtl.Op, n)
	for i, o := range ops {
		f.Op[i] = rtl.Op(o)
	}
	f.Dst = make([]rtl.Reg, n)
	varints(r, f.Dst)
	// One slab backs all three operand arrays; the capacity caps make any
	// later append copy out instead of clobbering its neighbour.
	slab := make([]rtl.Operand, 3*n)
	f.A = slab[:n:n]
	f.B = slab[n : 2*n : 2*n]
	f.C = slab[2*n : 3*n : 3*n]
	decodeOperandsInto(r, f.A)
	decodeOperandsInto(r, f.B)
	decodeOperandsInto(r, f.C)
	widths := r.bytes(n)
	f.Width = make([]rtl.Width, n)
	for i, w := range widths {
		f.Width[i] = rtl.Width(w)
	}
	f.Signed = decodeBitset(r, n)
	f.Disp = make([]int64, n)
	varints(r, f.Disp)
	f.Target = make([]int32, n)
	varints(r, f.Target)
	f.Else = make([]int32, n)
	varints(r, f.Else)

	f.CallIdx = make([]int32, n)
	for i := range f.CallIdx {
		f.CallIdx[i] = -1
	}
	ncall := r.count(r.uvarint(), 3)
	f.Calls = make([]rtl.FlatCall, 0, ncall)
	prev := int64(-1)
	for ci := 0; ci < ncall && r.err == nil; ci++ {
		idx := prev + int64(r.uvarint())
		if r.err != nil {
			return
		}
		if idx <= prev || idx >= int64(n) {
			r.fail("call instruction index %d out of order or range", idx)
			return
		}
		prev = idx
		callee := rtl.Sym(r.uvarint())
		na := r.count(r.uvarint(), 1)
		start := int32(len(f.Args))
		args := decodeOperands(r, na)
		f.Args = append(f.Args, args...)
		f.Calls = append(f.Calls, rtl.FlatCall{
			Callee: callee, ArgStart: start, ArgEnd: int32(len(f.Args)),
		})
		f.CallIdx[idx] = int32(ci)
	}
}

// varints bulk-decodes len(dst) zigzag varints with a local cursor, so the
// per-value cost is a branch and two shifts instead of a method call. On a
// truncated stream it latches the error and leaves the tail zeroed, exactly
// like a per-value r.varint() loop.
func varints[T ~int32 | ~int64](r *reader, dst []T) {
	if r.err != nil {
		return
	}
	b, off := r.b, r.off
	for i := range dst {
		var v int64
		if off < len(b) && b[off] < 0x80 {
			v = int64(b[off])
			v = v>>1 ^ -(v & 1)
			off++
		} else {
			vv, m := binary.Varint(b[off:])
			if m <= 0 {
				r.off = off
				r.fail("truncated varint at %d", off)
				return
			}
			v = vv
			off += m
		}
		dst[i] = T(v)
	}
	r.off = off
}

func decodeOperands(r *reader, n int) []rtl.Operand {
	out := make([]rtl.Operand, n)
	decodeOperandsInto(r, out)
	return out
}

func decodeOperandsInto(r *reader, out []rtl.Operand) {
	if r.err != nil {
		return
	}
	n := len(out)
	b, off := r.b, r.off
	for i := 0; i < n; i++ {
		if off >= len(b) {
			r.off = off
			r.fail("truncated operand stream")
			return
		}
		kind := rtl.OperandKind(b[off])
		off++
		switch kind {
		case rtl.KindNone:
		case rtl.KindReg, rtl.KindConst:
			var v int64
			if off < len(b) && b[off] < 0x80 {
				v = int64(b[off])
				v = v>>1 ^ -(v & 1)
				off++
			} else {
				vv, m := binary.Varint(b[off:])
				if m <= 0 {
					r.off = off
					r.fail("truncated varint at %d", off)
					return
				}
				v = vv
				off += m
			}
			if kind == rtl.KindReg {
				out[i] = rtl.Operand{Kind: rtl.KindReg, Reg: rtl.Reg(v)}
			} else {
				out[i] = rtl.Operand{Kind: rtl.KindConst, Const: v}
			}
		default:
			r.off = off
			r.fail("bad operand kind %d", kind)
			return
		}
	}
	r.off = off
	return
}

func decodeBitset(r *reader, n int) []bool {
	raw := r.bytes((n + 7) / 8)
	out := make([]bool, n)
	if r.err != nil {
		return out
	}
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}
