package rtl

import (
	"strings"
	"testing"
)

// TestProgramStringRoundTripGlobals pins the program-level print↔parse
// fixpoint the compile cache's disk tier relies on: globals (with and
// without initializers) and functions survive a full round trip.
func TestProgramStringRoundTripGlobals(t *testing.T) {
	f := NewFn("f", 1)
	r := f.NewReg()
	b := f.Entry()
	b.Instrs = append(b.Instrs,
		&Instr{Op: Load, Dst: r, A: R(f.Params[0]), Width: W4, Signed: true},
		&Instr{Op: Ret, A: R(r)},
	)
	p := NewProgram(f)
	p.Globals = []*Global{
		{Name: "table", Addr: 4096, Size: 64, Init: []byte{0x00, 0x01, 0xfe, 0xff}},
		{Name: "bss", Addr: 8192, Size: 128},
	}

	text := p.String()
	got, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("ParseProgram: %v\n%s", err, text)
	}
	if got.String() != text {
		t.Fatalf("round trip not a fixpoint:\n--- printed ---\n%s--- reprinted ---\n%s", text, got.String())
	}
	if len(got.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(got.Globals))
	}
	g := got.Globals[0]
	if g.Name != "table" || g.Addr != 4096 || g.Size != 64 || string(g.Init) != string(p.Globals[0].Init) {
		t.Errorf("global[0] = %+v", g)
	}
	if got.Globals[1].Init != nil {
		t.Errorf("global[1] grew an initializer: %x", got.Globals[1].Init)
	}
}

// TestFnStringRoundTripFrame pins the spill-frame header round trip, so
// register-allocated functions are losslessly cacheable on disk.
func TestFnStringRoundTripFrame(t *testing.T) {
	f := NewFn("spilly", 1)
	fr := f.NewReg()
	r := f.NewReg()
	f.FrameBytes = 24
	f.FrameReg = fr
	b := f.Entry()
	b.Instrs = append(b.Instrs,
		&Instr{Op: Store, A: R(fr), B: R(f.Params[0]), Width: W8},
		&Instr{Op: Load, Dst: r, A: R(fr), Width: W8},
		&Instr{Op: Ret, A: R(r)},
	)

	text := f.String()
	if !strings.Contains(text, "frame 24 @r1") {
		t.Fatalf("header does not carry the frame clause:\n%s", text)
	}
	got, err := ParseFn(text)
	if err != nil {
		t.Fatalf("ParseFn: %v\n%s", err, text)
	}
	if got.FrameBytes != 24 || got.FrameReg != fr {
		t.Fatalf("frame = (%d, %s), want (24, %s)", got.FrameBytes, got.FrameReg, fr)
	}
	if got.String() != text {
		t.Fatalf("round trip not a fixpoint:\n%s\nvs\n%s", text, got.String())
	}
}

// TestParseGlobalErrors rejects malformed global directives.
func TestParseGlobalErrors(t *testing.T) {
	for _, src := range []string{
		"global\n",
		"global x\n",
		"global x @12 size\n",
		"global x 12 size 4\n",
		"global x @12 extent 4\n",
		"global x @12 size 4 init zz\n",
		"global x @12 size 2 init aabbcc\n",
	} {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) accepted malformed global", src)
		}
	}
}

// TestCallRoundTripAnyArity pins call parsing for every argument count:
// a call with two or more comma-separated register arguments splits into
// three-plus fields and must not be mistaken for a binary operation.
func TestCallRoundTripAnyArity(t *testing.T) {
	for arity := 0; arity <= 4; arity++ {
		f := NewFn("caller", arity)
		dst := f.NewReg()
		call := &Instr{Op: Call, Dst: dst, Callee: "callee"}
		for _, p := range f.Params {
			call.Args = append(call.Args, R(p))
		}
		b := f.Entry()
		b.Instrs = append(b.Instrs, call, &Instr{Op: Ret, A: R(dst)})

		text := f.String()
		got, err := ParseFn(text)
		if err != nil {
			t.Fatalf("arity %d: ParseFn: %v\n%s", arity, err, text)
		}
		in := got.Entry().Instrs[0]
		if in.Op != Call || in.Callee != "callee" || len(in.Args) != arity {
			t.Fatalf("arity %d: parsed %v (callee %q, %d args)", arity, in.Op, in.Callee, len(in.Args))
		}
		if got.String() != text {
			t.Fatalf("arity %d: round trip not a fixpoint:\n%s\nvs\n%s", arity, text, got.String())
		}
	}
}
