package rtl

import (
	"testing"
)

// snapFn builds a function with arithmetic, memory traffic, a call, and
// control flow so every instruction shape passes through the journal.
func snapFn() *Fn {
	f := NewFn("f", 2)
	a, b := f.Params[0], f.Params[1]
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
	f.Entry().Instrs = append(f.Entry().Instrs,
		MovI(r1, C(0)),
		JumpI(loop))
	loop.Instrs = append(loop.Instrs,
		LoadI(r2, R(a), 4, W2, true),
		BinI(Add, r1, R(r1), R(r2)),
		StoreI(R(b), 0, R(r1), W8),
		&Instr{Op: Call, Dst: r3, Callee: "g", Args: []Operand{R(r1), C(7)}},
		BinI(SetLT, r3, R(r1), C(100)),
		BranchI(R(r3), loop, exit))
	exit.Instrs = append(exit.Instrs, RetI(R(r1)))
	return f
}

// mutations is a catalogue of pass-like edits. Each tolerates an arbitrary
// current shape (the composed tests apply them to already-mutated
// functions), mutating only when the structure it targets exists.
var mutations = []struct {
	name string
	do   func(f *Fn)
}{
	{"in-place operand rewrite", func(f *Fn) {
		for _, b := range f.Blocks {
			if len(b.Instrs) > 1 {
				b.Instrs[1].A = C(42)
				return
			}
		}
	}},
	{"in-place opcode flip", func(f *Fn) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == Add {
					in.Op = Sub
					return
				}
			}
		}
	}},
	{"call args rewrite", func(f *Fn) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == Call && len(in.Args) > 1 {
					in.Args[1] = C(99)
					return
				}
			}
		}
	}},
	{"instruction insert", func(f *Fn) {
		f.Blocks[len(f.Blocks)-1].InsertAt(0, MovI(f.NewReg(), C(5)))
	}},
	{"instruction remove", func(f *Fn) {
		if b := f.Blocks[len(f.Blocks)-1]; len(b.Instrs) > 1 {
			b.RemoveAt(0)
		}
	}},
	{"drop terminator", func(f *Fn) {
		if b := f.Blocks[len(f.Blocks)-1]; len(b.Instrs) > 0 {
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
		}
	}},
	{"retarget branch", func(f *Fn) {
		for _, b := range f.Blocks {
			if t := b.Term(); t != nil && t.Op == Branch {
				t.Target = f.Blocks[len(f.Blocks)-1]
				return
			}
		}
	}},
	{"new block and rewire", func(f *Fn) {
		last := f.Blocks[len(f.Blocks)-1]
		nb := f.NewBlock("detour")
		nb.Instrs = append(nb.Instrs, JumpI(last))
		f.RedirectEdges(last, nb)
	}},
	{"remove block", func(f *Fn) {
		if len(f.Blocks) < 3 {
			return
		}
		f.RedirectEdges(f.Blocks[1], f.Blocks[2])
		f.RemoveBlock(f.Blocks[1])
	}},
	{"reorder blocks", func(f *Fn) {
		if len(f.Blocks) < 3 {
			return
		}
		f.Blocks[1], f.Blocks[2] = f.Blocks[2], f.Blocks[1]
	}},
	{"frame and params", func(f *Fn) {
		f.FrameBytes = 64
		f.FrameReg = f.NewReg()
		if len(f.Params) > 1 {
			f.Params = f.Params[:1]
		}
	}},
	{"rename registers", func(f *Fn) {
		RenameRegs(f.Blocks, map[Reg]Reg{2: 9})
		f.EnsureRegs(10)
	}},
}

// TestSnapshotRestoreIsByteIdentical proves rollback through the journal
// reproduces the Clone-based semantics exactly, for every mutation shape.
func TestSnapshotRestoreIsByteIdentical(t *testing.T) {
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			f := snapFn()
			want := f.String()
			snap := NewSnapshot(f)
			m.do(f)
			snap.Restore()
			if got := f.String(); got != want {
				t.Errorf("restore not byte-identical after %s:\n--- got ---\n%s--- want ---\n%s", m.name, got, want)
			}
			if err := f.Verify(); err != nil {
				t.Errorf("restored function does not verify: %v", err)
			}
		})
	}
}

// TestSnapshotUpdateAdvancesBaseline: a committed mutation becomes the new
// rollback point, and a later failed mutation rolls back to it — the
// pipeline's snapshot-after-success, restore-after-failure protocol.
func TestSnapshotUpdateAdvancesBaseline(t *testing.T) {
	for _, good := range mutations {
		for _, bad := range mutations {
			t.Run(good.name+"/then/"+bad.name, func(t *testing.T) {
				f := snapFn()
				snap := NewSnapshot(f)
				good.do(f)
				snap.Update()
				want := f.String()
				bad.do(f)
				snap.Restore()
				if got := f.String(); got != want {
					t.Errorf("rollback after committed %q + failed %q:\n--- got ---\n%s--- want ---\n%s",
						good.name, bad.name, got, want)
				}
			})
		}
	}
}

// TestSnapshotRepeatedRestore: the journal stays valid across multiple
// rollbacks, as the pipeline needs when several passes fail in sequence.
func TestSnapshotRepeatedRestore(t *testing.T) {
	f := snapFn()
	want := f.String()
	snap := NewSnapshot(f)
	for i := 0; i < 3; i++ {
		for _, m := range mutations {
			m.do(f)
		}
		snap.Restore()
		if got := f.String(); got != want {
			t.Fatalf("round %d: restore diverged:\n%s", i, got)
		}
	}
}

// TestSnapshotCleanUpdateIsFree: an unchanged pass must cost zero
// allocations — the whole point of replacing the per-pass Clone.
func TestSnapshotCleanUpdateIsFree(t *testing.T) {
	f := snapFn()
	snap := NewSnapshot(f)
	allocs := testing.AllocsPerRun(100, func() {
		if dirty := snap.Update(); dirty != 0 {
			t.Fatalf("clean function reported %d dirty blocks", dirty)
		}
	})
	if allocs != 0 {
		t.Errorf("clean Update allocates %v objects per run, want 0", allocs)
	}
}

// TestSnapshotDirtyCount: Update recaptures only what changed.
func TestSnapshotDirtyCount(t *testing.T) {
	f := snapFn()
	snap := NewSnapshot(f)
	f.Blocks[1].Instrs[1].A = C(42)
	if dirty := snap.Update(); dirty != 1 {
		t.Errorf("one-block edit recaptured %d blocks, want 1", dirty)
	}
	if dirty := snap.Update(); dirty != 0 {
		t.Errorf("second Update recaptured %d blocks, want 0", dirty)
	}
}

// TestSnapshotMatchesClone cross-checks the journal against the trusted
// deep Clone under composed mutations.
func TestSnapshotMatchesClone(t *testing.T) {
	f := snapFn()
	snap := NewSnapshot(f)
	ref := f.Clone()
	for _, m := range mutations {
		m.do(f)
	}
	snap.Restore()
	if got, want := f.String(), ref.String(); got != want {
		t.Errorf("journal restore diverges from Clone reference:\n--- journal ---\n%s--- clone ---\n%s", got, want)
	}
}
