package rtl

// Flat editing layer: index-based mutation primitives over FlatFn so
// optimization passes can run natively on the struct-of-arrays form. The
// idiom mirrors the pointer-graph passes instruction for instruction —
// in-place field rewrites for per-instruction transforms, kill markers plus
// one compaction sweep for deletion passes, and block-range splicing for the
// surgery passes (preheader checks, loop replication) — so a flat pass and
// its graph twin produce byte-identical programs.
//
// Invariants preserved by every primitive here (and checked by VerifyFn /
// Validate): instruction arrays stay parallel, block ranges stay contiguous
// in block order, and (Op==Call) == (CallIdx>=0). The Succs/Preds edge
// tables are derived state; primitives that change control flow leave them
// stale and callers recompute with ComputeEdges when needed (the flat
// analyses read Target/Else directly, so most passes never need the tables).

// FlatInstr is the value form of one instruction, gathered from / scattered
// to the parallel arrays. Target and Else are block indices (-1 none);
// CallIdx indexes FlatFn.Calls (-1 for non-calls).
type FlatInstr struct {
	Op      Op
	Dst     Reg
	A, B, C Operand
	Width   Width
	Signed  bool
	Disp    int64
	Target  int32
	Else    int32
	CallIdx int32
}

// MkInstr returns a FlatInstr with no control-flow edges and no call
// attachment — the flat equivalent of a zero rtl.Instr literal, whose nil
// Target/Else pointers map to -1 indices.
func MkInstr(op Op) FlatInstr {
	return FlatInstr{Op: op, Target: -1, Else: -1, CallIdx: -1}
}

// Instr gathers instruction i into value form.
func (f *FlatFn) Instr(i int32) FlatInstr {
	return FlatInstr{
		Op: f.Op[i], Dst: f.Dst[i], A: f.A[i], B: f.B[i], C: f.C[i],
		Width: f.Width[i], Signed: f.Signed[i], Disp: f.Disp[i],
		Target: f.Target[i], Else: f.Else[i], CallIdx: f.CallIdx[i],
	}
}

// SetInstr scatters value in into instruction slot i. Operands are
// canonicalized exactly as Flatten does, so a flat rewrite and a graph
// rewrite of the same instruction flatten to identical bytes.
func (f *FlatFn) SetInstr(i int32, in FlatInstr) {
	f.Op[i] = in.Op
	f.Dst[i] = in.Dst
	f.A[i] = canonOperand(in.A)
	f.B[i] = canonOperand(in.B)
	f.C[i] = canonOperand(in.C)
	f.Width[i] = in.Width
	f.Signed[i] = in.Signed
	f.Disp[i] = in.Disp
	f.Target[i] = in.Target
	f.Else[i] = in.Else
	f.CallIdx[i] = in.CallIdx
}

// NumRegs mirrors Fn.NumRegs: the size of the virtual register pool.
func (f *FlatFn) NumRegs() int { return int(f.NextReg) }

// NewReg allocates a fresh virtual register, advancing the same counter the
// pointer graph would, so flat and graph transforms name new registers
// identically.
func (f *FlatFn) NewReg() Reg {
	r := f.NextReg
	f.NextReg++
	return r
}

// Def mirrors Instr.Def for instruction i: the register defined, if any.
func (f *FlatFn) Def(i int32) (Reg, bool) {
	if f.Dst[i] != NoReg {
		switch f.Op[i] {
		case Store, Jump, Branch, Ret, Nop:
			return NoReg, false
		}
		return f.Dst[i], true
	}
	return NoReg, false
}

// SrcSlots invokes fn on a pointer to every source operand slot instruction
// i actually uses, mirroring Instr.SrcOperands' opcode shapes — but without
// allocating the slice of pointers, which is one of the graph walk's hottest
// allocation sites.
func (f *FlatFn) SrcSlots(i int32, fn func(o *Operand)) {
	add := func(o *Operand) {
		if o.Kind != KindNone {
			fn(o)
		}
	}
	switch f.Op[i] {
	case Nop, Jump:
	case Mov, Neg, Not, Load, Ret:
		add(&f.A[i])
	case Branch:
		add(&f.A[i])
	case Store:
		add(&f.A[i])
		add(&f.B[i])
	case Extract:
		add(&f.A[i])
		add(&f.B[i])
	case Insert:
		add(&f.A[i])
		add(&f.B[i])
		add(&f.C[i])
	case Call:
		c := &f.Calls[f.CallIdx[i]]
		for ai := c.ArgStart; ai < c.ArgEnd; ai++ {
			add(&f.Args[ai])
		}
	default: // binary ops
		add(&f.A[i])
		add(&f.B[i])
	}
}

// UsesReg reports whether instruction i reads register r.
func (f *FlatFn) UsesReg(i int32, r Reg) bool {
	used := false
	f.SrcSlots(i, func(o *Operand) {
		if o.Kind == KindReg && o.Reg == r {
			used = true
		}
	})
	return used
}

// IsMem reports whether instruction i touches memory.
func (f *FlatFn) IsMem(i int32) bool { return f.Op[i] == Load || f.Op[i] == Store }

// TermIdx returns the index of block bi's terminator and its opcode; ok is
// false for an empty or unterminated block.
func (f *FlatFn) TermIdx(bi int32) (int32, Op, bool) {
	return f.termOf(&f.Blocks[bi])
}

// Intern returns the symbol for name in the program's table, appending it if
// new. A linear scan: the table is small and interning is rare (fresh block
// labels only).
func (fp *FlatProgram) Intern(name string) Sym {
	for i, s := range fp.Syms {
		if s == name {
			return Sym(i)
		}
	}
	fp.Syms = append(fp.Syms, name)
	return Sym(len(fp.Syms) - 1)
}

// NewBlock appends a fresh empty block (at the end of the block table, with
// an empty instruction range at the end of the arrays) and returns its
// index. ID assignment advances NextBlk exactly as Fn.NewBlock does.
func (f *FlatFn) NewBlock(name Sym) int32 {
	end := int32(len(f.Op))
	f.Blocks = append(f.Blocks, FlatBlock{
		ID: f.NextBlk, Name: name, InstrStart: end, InstrEnd: end,
	})
	f.NextBlk++
	return int32(len(f.Blocks) - 1)
}

// SpliceInstrs replaces del instructions at block-relative position rel of
// block bi with ins, shifting later instructions and adjusting every block
// range after the edit. Block indices are stable across a splice, so cached
// Target/Else values and analysis results keyed by block stay valid; only
// absolute instruction offsets move.
func (f *FlatFn) SpliceInstrs(bi int32, rel int32, del int32, ins []FlatInstr) {
	b := &f.Blocks[bi]
	at := b.InstrStart + rel
	grow := int32(len(ins)) - del
	spliceSlice(&f.Op, at, del, len(ins))
	spliceSlice(&f.Dst, at, del, len(ins))
	spliceSlice(&f.A, at, del, len(ins))
	spliceSlice(&f.B, at, del, len(ins))
	spliceSlice(&f.C, at, del, len(ins))
	spliceSlice(&f.Width, at, del, len(ins))
	spliceSlice(&f.Signed, at, del, len(ins))
	spliceSlice(&f.Disp, at, del, len(ins))
	spliceSlice(&f.Target, at, del, len(ins))
	spliceSlice(&f.Else, at, del, len(ins))
	spliceSlice(&f.CallIdx, at, del, len(ins))
	for j, in := range ins {
		f.SetInstr(at+int32(j), in)
	}
	b.InstrEnd += grow
	for i := int(bi) + 1; i < len(f.Blocks); i++ {
		f.Blocks[i].InstrStart += grow
		f.Blocks[i].InstrEnd += grow
	}
}

// spliceSlice opens (or closes) a hole of n-del elements at position at.
func spliceSlice[T any](s *[]T, at, del int32, n int) {
	old := *s
	grow := n - int(del)
	switch {
	case grow > 0:
		var zero T
		for k := 0; k < grow; k++ {
			old = append(old, zero)
		}
		copy(old[int(at)+n:], old[at+del:])
	case grow < 0:
		copy(old[int(at)+n:], old[at+del:])
		old = old[:len(old)+grow]
	}
	*s = old
}

// AppendInstr inserts in before block bi's terminator when one exists (the
// flat Block.Append), otherwise at the block's end.
func (f *FlatFn) AppendInstr(bi int32, in FlatInstr) {
	b := &f.Blocks[bi]
	rel := b.InstrEnd - b.InstrStart
	if _, _, ok := f.termOf(b); ok {
		rel--
	}
	f.SpliceInstrs(bi, rel, 0, []FlatInstr{in})
}

// Compact removes every instruction whose kill mark is set — the one
// compaction sweep that follows a marking pass. Block ranges shrink in
// place; the Calls/Args tables are rebuilt from the surviving call
// instructions so call indices stay dense and the (Op==Call) == (CallIdx>=0)
// invariant holds.
func (f *FlatFn) Compact(kill []bool) {
	var newCalls []FlatCall
	var newArgs []Operand
	w := int32(0)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		start := w
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			if kill[i] {
				continue
			}
			ci := f.CallIdx[i]
			if ci >= 0 {
				c := f.Calls[ci]
				as := int32(len(newArgs))
				newArgs = append(newArgs, f.Args[c.ArgStart:c.ArgEnd]...)
				ci = int32(len(newCalls))
				newCalls = append(newCalls, FlatCall{Callee: c.Callee, ArgStart: as, ArgEnd: int32(len(newArgs))})
			}
			if w != i {
				f.Op[w] = f.Op[i]
				f.Dst[w] = f.Dst[i]
				f.A[w] = f.A[i]
				f.B[w] = f.B[i]
				f.C[w] = f.C[i]
				f.Width[w] = f.Width[i]
				f.Signed[w] = f.Signed[i]
				f.Disp[w] = f.Disp[i]
				f.Target[w] = f.Target[i]
				f.Else[w] = f.Else[i]
			}
			f.CallIdx[w] = ci
			w++
		}
		b.InstrStart, b.InstrEnd = start, w
	}
	f.truncateInstrs(w)
	f.Calls = newCalls
	f.Args = newArgs
}

func (f *FlatFn) truncateInstrs(n int32) {
	f.Op = f.Op[:n]
	f.Dst = f.Dst[:n]
	f.A = f.A[:n]
	f.B = f.B[:n]
	f.C = f.C[:n]
	f.Width = f.Width[:n]
	f.Signed = f.Signed[:n]
	f.Disp = f.Disp[:n]
	f.Target = f.Target[:n]
	f.Else = f.Else[:n]
	f.CallIdx = f.CallIdx[:n]
}

// RemoveBlocks drops every block whose keep mark is clear, together with its
// instruction range, remapping the Target/Else indices of the surviving
// instructions. The caller guarantees no surviving edge points at a dropped
// block (the flat RemoveUnreachable guarantees it by construction).
func (f *FlatFn) RemoveBlocks(keep []bool) {
	remap := make([]int32, len(f.Blocks))
	kill := make([]bool, len(f.Op))
	nb := int32(0)
	for bi := range f.Blocks {
		if keep[bi] {
			remap[bi] = nb
			nb++
			continue
		}
		remap[bi] = -1
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			kill[i] = true
		}
	}
	f.Compact(kill)
	kept := f.Blocks[:0]
	for bi := range f.Blocks {
		if keep[bi] {
			kept = append(kept, f.Blocks[bi])
		}
	}
	f.Blocks = kept
	for i := range f.Target {
		if t := f.Target[i]; t >= 0 {
			f.Target[i] = remap[t]
		}
		if e := f.Else[i]; e >= 0 {
			f.Else[i] = remap[e]
		}
	}
}

// CloneRegion is Fn.CloneRegion on the flat form: append one fresh block per
// region block (in region order, so block-ID assignment matches the graph
// path), then copy the instructions, remapping Target/Else edges that stay
// inside the region and duplicating call payloads so the Calls/Args tables
// keep one entry per call instruction. Returns the original→clone index map.
func (fp *FlatProgram) CloneRegion(fi int, blocks []int32, nameSuffix string) map[int32]int32 {
	f := &fp.Fns[fi]
	m := make(map[int32]int32, len(blocks))
	for _, bi := range blocks {
		name := fp.Intern(fp.Syms[f.Blocks[bi].Name] + nameSuffix)
		m[bi] = f.NewBlock(name)
	}
	for _, bi := range blocks {
		b := f.Blocks[bi]
		ins := make([]FlatInstr, 0, b.InstrEnd-b.InstrStart)
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			ci := f.Instr(i)
			if ci.Target >= 0 {
				if t, ok := m[ci.Target]; ok {
					ci.Target = t
				}
			}
			if ci.Else >= 0 {
				if t, ok := m[ci.Else]; ok {
					ci.Else = t
				}
			}
			if ci.CallIdx >= 0 {
				c := f.Calls[ci.CallIdx]
				as := int32(len(f.Args))
				f.Args = append(f.Args, f.Args[c.ArgStart:c.ArgEnd]...)
				ci.CallIdx = int32(len(f.Calls))
				f.Calls = append(f.Calls, FlatCall{Callee: c.Callee, ArgStart: as, ArgEnd: int32(len(f.Args))})
			}
			ins = append(ins, ci)
		}
		f.SpliceInstrs(m[bi], 0, 0, ins)
	}
	return m
}

// TruncateBlocks removes blocks n.. (used to discard a replicated region
// appended at the end, the flat removeClones). Register and block-ID
// counters deliberately stay advanced, matching the graph path, which never
// rolls them back after an unprofitable replication.
func (f *FlatFn) TruncateBlocks(n int32) {
	if int(n) >= len(f.Blocks) {
		return
	}
	cut := f.Blocks[n].InstrStart
	f.truncateInstrs(cut)
	f.Blocks = f.Blocks[:n]
	// Calls/Args referenced by dropped instructions stay as dead table
	// entries until the next Compact; every live index remains valid.
}

// UnflattenFn materializes one function as a private pointer graph — the
// per-function bridge the flat pipeline uses for passes that still run on
// the graph form. No whole-program validation: the pipeline's verify
// checkpoints guard the image.
func (fp *FlatProgram) UnflattenFn(fi int) *Fn {
	ff := &fp.Fns[fi]
	f := &Fn{
		Name:       fp.Syms[ff.Name],
		Params:     append([]Reg(nil), ff.Params...),
		FrameBytes: int(ff.FrameBytes),
		FrameReg:   ff.FrameReg,
		nextReg:    ff.NextReg,
		nextBlk:    int(ff.NextBlk),
	}
	n := ff.NumInstrs()
	islab := make([]Instr, n)
	bslab := make([]Block, len(ff.Blocks))
	blocks := make([]*Block, len(ff.Blocks))
	for bi := range ff.Blocks {
		blocks[bi] = &bslab[bi]
	}
	for bi := range ff.Blocks {
		fb := &ff.Blocks[bi]
		b := blocks[bi]
		b.ID = int(fb.ID)
		b.Name = fp.Syms[fb.Name]
		nb := int(fb.InstrEnd - fb.InstrStart)
		b.Instrs = make([]*Instr, nb)
		for j := 0; j < nb; j++ {
			i := int(fb.InstrStart) + j
			in := &islab[i]
			in.Op = ff.Op[i]
			in.Dst = ff.Dst[i]
			in.A = ff.A[i]
			in.B = ff.B[i]
			in.C = ff.C[i]
			in.Width = ff.Width[i]
			in.Signed = ff.Signed[i]
			in.Disp = ff.Disp[i]
			if t := ff.Target[i]; t >= 0 {
				in.Target = blocks[t]
			}
			if e := ff.Else[i]; e >= 0 {
				in.Else = blocks[e]
			}
			if ci := ff.CallIdx[i]; ci >= 0 {
				c := &ff.Calls[ci]
				in.Callee = fp.Syms[c.Callee]
				if c.ArgEnd > c.ArgStart {
					in.Args = append([]Operand(nil), ff.Args[c.ArgStart:c.ArgEnd]...)
				}
			}
			b.Instrs[j] = in
		}
	}
	f.Blocks = blocks
	return f
}

// FlattenFnInto re-flattens a bridged function back into slot fi, interning
// any block labels the graph pass introduced. The inverse of UnflattenFn.
func (fp *FlatProgram) FlattenFnInto(fi int, f *Fn) error {
	it := &interner{syms: fp.Syms, idx: make(map[string]Sym, len(fp.Syms))}
	for i, s := range fp.Syms {
		it.idx[s] = Sym(i)
	}
	ff, err := flattenFn(f, it)
	if err != nil {
		return err
	}
	fp.Syms = it.syms
	fp.Fns[fi] = ff
	return nil
}
