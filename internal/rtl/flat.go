package rtl

// Flat IR: an arena-backed, index-based (struct-of-arrays) image of a
// Program. Where the pointer graph spends a heap object per instruction and
// per block, the flat form packs every function into a handful of parallel
// slices indexed by a dense instruction number: one slice per field (opcode,
// destination, operand slots, width, displacement, ...), block tables that
// address instructions by [start,end) index ranges, successor/predecessor
// edge tables as index ranges into shared edge arrays, and an interned
// symbol table shared by function names, block labels, global names and call
// targets.
//
// The flat form is the canonical at-rest representation: the compile cache
// stores it (see internal/ccache and rtl/codec), the simulator predecodes
// from it directly (sim.NewFlat), and Unflatten materializes a private
// pointer graph on demand — it allocates each function's instructions in a
// single slab, which is what makes cache hits cheaper than the deep
// clone-on-hit copies it replaces.
//
// Flatten/Unflatten are lossless with respect to the printer: for any
// verifier-clean program, p.String() == must-equal
// Flatten(p).Unflatten().String(), and the simulator observes identical
// behaviour. Both directions validate indices and return errors — never
// panic — so codec-decoded (possibly hostile) images are safe to
// materialize.

import "fmt"

// Sym is an index into FlatProgram.Syms, the interned string table.
type Sym int32

// FlatProgram is the struct-of-arrays image of a Program.
type FlatProgram struct {
	Syms    []string
	Globals []FlatGlobal
	Fns     []FlatFn
}

// FlatGlobal mirrors Global with an interned name.
type FlatGlobal struct {
	Name Sym
	Addr int64
	Size int64
	Init []byte
}

// FlatBlock addresses one basic block's instructions and CFG edges as index
// ranges into the owning FlatFn's arrays.
type FlatBlock struct {
	ID         int32
	Name       Sym
	InstrStart int32 // [InstrStart, InstrEnd) into the instruction arrays
	InstrEnd   int32
	SuccStart  int32 // [SuccStart, SuccEnd) into FlatFn.Succs
	SuccEnd    int32
	PredStart  int32 // [PredStart, PredEnd) into FlatFn.Preds
	PredEnd    int32
}

// FlatCall is the variable-length tail of a Call instruction: the callee
// symbol and the argument operand range into FlatFn.Args.
type FlatCall struct {
	Callee   Sym
	ArgStart int32 // [ArgStart, ArgEnd) into FlatFn.Args
	ArgEnd   int32
}

// FlatFn is one function in struct-of-arrays form. All per-instruction
// slices (Op, Dst, A, B, C, Width, Signed, Disp, Target, Else, CallIdx)
// share the same length and are indexed by the dense instruction number
// assigned in block order.
type FlatFn struct {
	Name       Sym
	Params     []Reg
	FrameBytes int64
	FrameReg   Reg
	NextReg    Reg   // register counter, preserved so NewReg stays correct
	NextBlk    int32 // block-id counter, preserved so NewBlock stays correct

	Blocks []FlatBlock
	Succs  []int32 // successor block indices, addressed by FlatBlock ranges
	Preds  []int32 // predecessor block indices, addressed by FlatBlock ranges

	Op      []Op
	Dst     []Reg
	A, B, C []Operand
	Width   []Width
	Signed  []bool
	Disp    []int64
	Target  []int32 // taken-target block index, -1 if none
	Else    []int32 // fall-through block index, -1 if none
	CallIdx []int32 // index into Calls, -1 for non-call instructions

	Calls []FlatCall
	Args  []Operand // call argument operands, addressed by FlatCall ranges
}

// NumInstrs returns the function's dense instruction count.
func (f *FlatFn) NumInstrs() int { return len(f.Op) }

// SymName returns the interned string for s, or "" when out of range.
func (fp *FlatProgram) SymName(s Sym) string {
	if s < 0 || int(s) >= len(fp.Syms) {
		return ""
	}
	return fp.Syms[s]
}

// canonOperand normalizes an operand so unused fields are zero: the codec
// only transports the meaningful field, and normalizing here keeps direct
// Flatten output byte-comparable with a decode round trip.
func canonOperand(o Operand) Operand {
	switch o.Kind {
	case KindReg:
		return Operand{Kind: KindReg, Reg: o.Reg}
	case KindConst:
		return Operand{Kind: KindConst, Const: o.Const}
	default:
		return Operand{}
	}
}

type interner struct {
	syms []string
	idx  map[string]Sym
}

func (it *interner) intern(s string) Sym {
	if i, ok := it.idx[s]; ok {
		return i
	}
	i := Sym(len(it.syms))
	it.syms = append(it.syms, s)
	it.idx[s] = i
	return i
}

// Flatten converts a pointer-graph program into its flat image. It is
// strict: a Jump/Branch whose target block is not a member of the owning
// function is an error (the verifier enforces the same invariant), as is a
// function with more instructions or blocks than the 32-bit index space.
func Flatten(p *Program) (*FlatProgram, error) {
	it := &interner{idx: make(map[string]Sym)}
	fp := &FlatProgram{}
	for _, g := range p.Globals {
		init := append([]byte(nil), g.Init...)
		fp.Globals = append(fp.Globals, FlatGlobal{
			Name: it.intern(g.Name), Addr: g.Addr, Size: g.Size, Init: init,
		})
	}
	fp.Fns = make([]FlatFn, 0, len(p.Fns))
	for _, f := range p.Fns {
		ff, err := flattenFn(f, it)
		if err != nil {
			return nil, fmt.Errorf("flatten %s: %w", f.Name, err)
		}
		fp.Fns = append(fp.Fns, ff)
	}
	fp.Syms = it.syms
	return fp, nil
}

func flattenFn(f *Fn, it *interner) (FlatFn, error) {
	ff := FlatFn{
		Name:       it.intern(f.Name),
		Params:     append([]Reg(nil), f.Params...),
		FrameBytes: int64(f.FrameBytes),
		FrameReg:   f.FrameReg,
		NextReg:    f.nextReg,
		NextBlk:    int32(f.nextBlk),
	}
	nblk := len(f.Blocks)
	if nblk > 1<<30 {
		return ff, fmt.Errorf("%d blocks exceed flat index space", nblk)
	}
	blockIdx := make(map[*Block]int32, nblk)
	total := 0
	for i, b := range f.Blocks {
		blockIdx[b] = int32(i)
		total += len(b.Instrs)
	}
	if total > 1<<30 {
		return ff, fmt.Errorf("%d instructions exceed flat index space", total)
	}

	ff.Blocks = make([]FlatBlock, 0, nblk)
	ff.Op = make([]Op, 0, total)
	ff.Dst = make([]Reg, 0, total)
	ff.A = make([]Operand, 0, total)
	ff.B = make([]Operand, 0, total)
	ff.C = make([]Operand, 0, total)
	ff.Width = make([]Width, 0, total)
	ff.Signed = make([]bool, 0, total)
	ff.Disp = make([]int64, 0, total)
	ff.Target = make([]int32, 0, total)
	ff.Else = make([]int32, 0, total)
	ff.CallIdx = make([]int32, 0, total)

	resolve := func(b *Block) (int32, error) {
		if b == nil {
			return -1, nil
		}
		i, ok := blockIdx[b]
		if !ok {
			return -1, fmt.Errorf("dangling edge to block %s", b)
		}
		return i, nil
	}

	for _, b := range f.Blocks {
		fb := FlatBlock{
			ID:         int32(b.ID),
			Name:       it.intern(b.Name),
			InstrStart: int32(len(ff.Op)),
		}
		for _, in := range b.Instrs {
			tgt, err := resolve(in.Target)
			if err != nil {
				return ff, fmt.Errorf("block %s: %s: %w", b, in, err)
			}
			els, err := resolve(in.Else)
			if err != nil {
				return ff, fmt.Errorf("block %s: %s: %w", b, in, err)
			}
			ci := int32(-1)
			if in.Op == Call {
				ci = int32(len(ff.Calls))
				start := int32(len(ff.Args))
				for _, a := range in.Args {
					ff.Args = append(ff.Args, canonOperand(a))
				}
				ff.Calls = append(ff.Calls, FlatCall{
					Callee: it.intern(in.Callee), ArgStart: start, ArgEnd: int32(len(ff.Args)),
				})
			}
			ff.Op = append(ff.Op, in.Op)
			ff.Dst = append(ff.Dst, in.Dst)
			ff.A = append(ff.A, canonOperand(in.A))
			ff.B = append(ff.B, canonOperand(in.B))
			ff.C = append(ff.C, canonOperand(in.C))
			ff.Width = append(ff.Width, in.Width)
			ff.Signed = append(ff.Signed, in.Signed)
			ff.Disp = append(ff.Disp, in.Disp)
			ff.Target = append(ff.Target, tgt)
			ff.Else = append(ff.Else, els)
			ff.CallIdx = append(ff.CallIdx, ci)
		}
		fb.InstrEnd = int32(len(ff.Op))
		ff.Blocks = append(ff.Blocks, fb)
	}
	ff.ComputeEdges()
	return ff, nil
}

// ComputeEdges (re)derives the successor/predecessor tables from each
// block's terminator. The edge tables are derived state: the codec does not
// transport them, it recomputes them after decode.
func (f *FlatFn) ComputeEdges() {
	nedge := 0
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if i, op, ok := f.termOf(b); ok {
			switch op {
			case Jump:
				if f.Target[i] >= 0 {
					nedge++
				}
			case Branch:
				if f.Target[i] >= 0 {
					nedge++
				}
				if f.Else[i] >= 0 {
					nedge++
				}
			}
		}
	}
	f.Succs = make([]int32, 0, nedge)
	f.Preds = make([]int32, 0, nedge)
	npred := make([]int32, len(f.Blocks))
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		b.SuccStart = int32(len(f.Succs))
		if i, op, ok := f.termOf(b); ok {
			add := func(t int32) {
				if t >= 0 && int(t) < len(f.Blocks) {
					f.Succs = append(f.Succs, t)
					npred[t]++
				}
			}
			switch op {
			case Jump:
				add(f.Target[i])
			case Branch:
				add(f.Target[i])
				add(f.Else[i])
			}
		}
		b.SuccEnd = int32(len(f.Succs))
	}
	// Bucket predecessors by prefix-summed counts.
	off := int32(0)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		b.PredStart = off
		off += npred[bi]
		b.PredEnd = b.PredStart
	}
	f.Preds = make([]int32, off)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		for _, s := range f.Succs[b.SuccStart:b.SuccEnd] {
			sb := &f.Blocks[s]
			f.Preds[sb.PredEnd] = int32(bi)
			sb.PredEnd++
		}
	}
}

// termOf returns the index and opcode of b's terminator instruction.
func (f *FlatFn) termOf(b *FlatBlock) (int32, Op, bool) {
	if b.InstrEnd <= b.InstrStart {
		return 0, Nop, false
	}
	i := b.InstrEnd - 1
	op := f.Op[i]
	if !op.IsTerminator() {
		return 0, Nop, false
	}
	return i, op, true
}

// BlockSuccs returns block bi's successor indices (aliasing internal state).
func (f *FlatFn) BlockSuccs(bi int) []int32 {
	b := &f.Blocks[bi]
	return f.Succs[b.SuccStart:b.SuccEnd]
}

// BlockPreds returns block bi's predecessor indices (aliasing internal state).
func (f *FlatFn) BlockPreds(bi int) []int32 {
	b := &f.Blocks[bi]
	return f.Preds[b.PredStart:b.PredEnd]
}

// Validate checks every index in the image — symbols, instruction ranges,
// edge targets, call and argument ranges — so that consumers (Unflatten,
// sim.NewFlat) can index without bounds panics even on a hostile image.
func (fp *FlatProgram) Validate() error {
	checkSym := func(s Sym, what string) error {
		if s < 0 || int(s) >= len(fp.Syms) {
			return fmt.Errorf("%s: symbol %d out of range (have %d)", what, s, len(fp.Syms))
		}
		return nil
	}
	for gi := range fp.Globals {
		if err := checkSym(fp.Globals[gi].Name, "global"); err != nil {
			return err
		}
	}
	for fi := range fp.Fns {
		f := &fp.Fns[fi]
		if err := checkSym(f.Name, "fn"); err != nil {
			return err
		}
		n := len(f.Op)
		for _, l := range []struct {
			name string
			got  int
		}{
			{"dst", len(f.Dst)}, {"a", len(f.A)}, {"b", len(f.B)}, {"c", len(f.C)},
			{"width", len(f.Width)}, {"signed", len(f.Signed)}, {"disp", len(f.Disp)},
			{"target", len(f.Target)}, {"else", len(f.Else)}, {"callidx", len(f.CallIdx)},
		} {
			if l.got != n {
				return fmt.Errorf("fn %d: %s array length %d != %d instructions", fi, l.name, l.got, n)
			}
		}
		for _, p := range f.Params {
			if p < 0 {
				return fmt.Errorf("fn %d: negative parameter register %d", fi, p)
			}
		}
		prevEnd := int32(0)
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			if err := checkSym(b.Name, "block"); err != nil {
				return err
			}
			if b.InstrStart != prevEnd || b.InstrEnd < b.InstrStart || int(b.InstrEnd) > n {
				return fmt.Errorf("fn %d block %d: bad instruction range [%d,%d) (prev end %d, total %d)",
					fi, bi, b.InstrStart, b.InstrEnd, prevEnd, n)
			}
			prevEnd = b.InstrEnd
		}
		if len(f.Blocks) > 0 && int(prevEnd) != n {
			return fmt.Errorf("fn %d: blocks cover %d of %d instructions", fi, prevEnd, n)
		}
		if len(f.Blocks) == 0 && n != 0 {
			return fmt.Errorf("fn %d: %d instructions but no blocks", fi, n)
		}
		for i := 0; i < n; i++ {
			if f.Op[i] >= numOps {
				return fmt.Errorf("fn %d instr %d: bad opcode %d", fi, i, f.Op[i])
			}
			if f.Dst[i] < NoReg {
				return fmt.Errorf("fn %d instr %d: bad dst register %d", fi, i, f.Dst[i])
			}
			for _, o := range [3]Operand{f.A[i], f.B[i], f.C[i]} {
				if o.Kind > KindConst {
					return fmt.Errorf("fn %d instr %d: bad operand kind %d", fi, i, o.Kind)
				}
				if o.Kind == KindReg && o.Reg < 0 {
					return fmt.Errorf("fn %d instr %d: bad operand register %d", fi, i, o.Reg)
				}
			}
			for _, t := range [2]int32{f.Target[i], f.Else[i]} {
				if t < -1 || int(t) >= len(f.Blocks) {
					return fmt.Errorf("fn %d instr %d: edge target %d out of range", fi, i, t)
				}
			}
			ci := f.CallIdx[i]
			if ci < -1 || int(ci) >= len(f.Calls) {
				return fmt.Errorf("fn %d instr %d: call index %d out of range", fi, i, ci)
			}
			if (f.Op[i] == Call) != (ci >= 0) {
				return fmt.Errorf("fn %d instr %d: op %s with call index %d", fi, i, f.Op[i], ci)
			}
		}
		for ci := range f.Calls {
			c := &f.Calls[ci]
			if err := checkSym(c.Callee, "callee"); err != nil {
				return err
			}
			if c.ArgStart < 0 || c.ArgEnd < c.ArgStart || int(c.ArgEnd) > len(f.Args) {
				return fmt.Errorf("fn %d call %d: bad argument range [%d,%d) of %d",
					fi, ci, c.ArgStart, c.ArgEnd, len(f.Args))
			}
		}
		for ai := range f.Args {
			o := f.Args[ai]
			if o.Kind > KindConst {
				return fmt.Errorf("fn %d arg %d: bad operand kind %d", fi, ai, o.Kind)
			}
			if o.Kind == KindReg && o.Reg < 0 {
				return fmt.Errorf("fn %d arg %d: bad argument register %d", fi, ai, o.Reg)
			}
		}
	}
	return nil
}

// Unflatten materializes a private pointer-graph Program from the flat
// image. Each function's instructions live in one slab allocation, its
// blocks in another; the result shares no mutable state with the image
// (operand slices and global initializers are copied), so callers may
// optimize it in place while the flat image stays cached.
func (fp *FlatProgram) Unflatten() (*Program, error) {
	if err := fp.Validate(); err != nil {
		return nil, fmt.Errorf("unflatten: %w", err)
	}
	p := NewProgram()
	for gi := range fp.Globals {
		g := &fp.Globals[gi]
		p.Globals = append(p.Globals, &Global{
			Name: fp.Syms[g.Name],
			Addr: g.Addr,
			Size: g.Size,
			Init: append([]byte(nil), g.Init...),
		})
	}
	for fi := range fp.Fns {
		p.Add(fp.UnflattenFn(fi))
	}
	return p, nil
}
