package rtl

// FlatSnapshot is the flat pipeline's rollback journal: a last-known-good
// image of one function captured by copying its dense arrays — no block
// graph cloning, no per-instruction pointers, just range copies. Restore
// writes the image back over the live function; Update recaptures after a
// pass succeeds and reports how many blocks actually changed (the same
// dirty metric the graph journal feeds telemetry).
//
// The snapshot also records the program symbol-table length: symbols are
// append-only, so rolling back a failed pass that interned fresh block
// labels is a truncation, keeping the table byte-identical to a run in
// which the pass never executed.
type FlatSnapshot struct {
	p     *FlatProgram
	fi    int
	img   FlatFn
	nsyms int
}

// NewFlatSnapshot captures function fi of p.
func NewFlatSnapshot(p *FlatProgram, fi int) *FlatSnapshot {
	s := &FlatSnapshot{p: p, fi: fi}
	s.capture()
	return s
}

func (s *FlatSnapshot) capture() {
	f := &s.p.Fns[s.fi]
	s.img = FlatFn{
		Name:       f.Name,
		Params:     append([]Reg(nil), f.Params...),
		FrameBytes: f.FrameBytes,
		FrameReg:   f.FrameReg,
		NextReg:    f.NextReg,
		NextBlk:    f.NextBlk,
		Blocks:     append([]FlatBlock(nil), f.Blocks...),
		Succs:      append([]int32(nil), f.Succs...),
		Preds:      append([]int32(nil), f.Preds...),
		Op:         append([]Op(nil), f.Op...),
		Dst:        append([]Reg(nil), f.Dst...),
		A:          append([]Operand(nil), f.A...),
		B:          append([]Operand(nil), f.B...),
		C:          append([]Operand(nil), f.C...),
		Width:      append([]Width(nil), f.Width...),
		Signed:     append([]bool(nil), f.Signed...),
		Disp:       append([]int64(nil), f.Disp...),
		Target:     append([]int32(nil), f.Target...),
		Else:       append([]int32(nil), f.Else...),
		CallIdx:    append([]int32(nil), f.CallIdx...),
		Calls:      append([]FlatCall(nil), f.Calls...),
		Args:       append([]Operand(nil), f.Args...),
	}
	s.nsyms = len(s.p.Syms)
}

// Restore rolls the live function back to the captured image and truncates
// any symbols interned since the capture. The image itself stays pristine
// (fresh copies are written out), so a snapshot survives repeated restores.
func (s *FlatSnapshot) Restore() {
	img := &s.img
	s.p.Fns[s.fi] = FlatFn{
		Name:       img.Name,
		Params:     append([]Reg(nil), img.Params...),
		FrameBytes: img.FrameBytes,
		FrameReg:   img.FrameReg,
		NextReg:    img.NextReg,
		NextBlk:    img.NextBlk,
		Blocks:     append([]FlatBlock(nil), img.Blocks...),
		Succs:      append([]int32(nil), img.Succs...),
		Preds:      append([]int32(nil), img.Preds...),
		Op:         append([]Op(nil), img.Op...),
		Dst:        append([]Reg(nil), img.Dst...),
		A:          append([]Operand(nil), img.A...),
		B:          append([]Operand(nil), img.B...),
		C:          append([]Operand(nil), img.C...),
		Width:      append([]Width(nil), img.Width...),
		Signed:     append([]bool(nil), img.Signed...),
		Disp:       append([]int64(nil), img.Disp...),
		Target:     append([]int32(nil), img.Target...),
		Else:       append([]int32(nil), img.Else...),
		CallIdx:    append([]int32(nil), img.CallIdx...),
		Calls:      append([]FlatCall(nil), img.Calls...),
		Args:       append([]Operand(nil), img.Args...),
	}
	s.p.Syms = s.p.Syms[:s.nsyms]
}

// Update recaptures the live function as the new last-known-good image and
// returns the number of blocks whose contents changed since the previous
// capture (new blocks count as dirty).
func (s *FlatSnapshot) Update() int {
	f := &s.p.Fns[s.fi]
	dirty := 0
	for bi := range f.Blocks {
		if bi >= len(s.img.Blocks) || !s.blockEqual(f, bi) {
			dirty++
		}
	}
	s.capture()
	return dirty
}

func (s *FlatSnapshot) blockEqual(f *FlatFn, bi int) bool {
	nb, ob := &f.Blocks[bi], &s.img.Blocks[bi]
	if *nb != *ob {
		return false
	}
	for i := nb.InstrStart; i < nb.InstrEnd; i++ {
		if f.Op[i] != s.img.Op[i] || f.Dst[i] != s.img.Dst[i] ||
			f.A[i] != s.img.A[i] || f.B[i] != s.img.B[i] || f.C[i] != s.img.C[i] ||
			f.Width[i] != s.img.Width[i] || f.Signed[i] != s.img.Signed[i] ||
			f.Disp[i] != s.img.Disp[i] || f.Target[i] != s.img.Target[i] ||
			f.Else[i] != s.img.Else[i] {
			return false
		}
		ci, oci := f.CallIdx[i], s.img.CallIdx[i]
		if (ci >= 0) != (oci >= 0) {
			return false
		}
		if ci >= 0 {
			c, oc := &f.Calls[ci], &s.img.Calls[oci]
			if c.Callee != oc.Callee || c.ArgEnd-c.ArgStart != oc.ArgEnd-oc.ArgStart {
				return false
			}
			for k := int32(0); k < c.ArgEnd-c.ArgStart; k++ {
				if f.Args[c.ArgStart+k] != s.img.Args[oc.ArgStart+k] {
					return false
				}
			}
		}
	}
	return true
}
