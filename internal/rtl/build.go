package rtl

// Constructors for the common instruction shapes. They keep pass code and
// tests terse and make the intended operand layout explicit.

// MovI builds dst = a.
func MovI(dst Reg, a Operand) *Instr { return &Instr{Op: Mov, Dst: dst, A: a} }

// BinI builds dst = a op b.
func BinI(op Op, dst Reg, a, b Operand) *Instr {
	return &Instr{Op: op, Dst: dst, A: a, B: b}
}

// SBinI builds a signed dst = a op b (Div/Rem/Shr/ordered compares).
func SBinI(op Op, dst Reg, a, b Operand) *Instr {
	return &Instr{Op: op, Dst: dst, A: a, B: b, Signed: true}
}

// UnI builds dst = op a (Neg/Not).
func UnI(op Op, dst Reg, a Operand) *Instr { return &Instr{Op: op, Dst: dst, A: a} }

// LoadI builds dst = M[w](base + disp).
func LoadI(dst Reg, base Operand, disp int64, w Width, signed bool) *Instr {
	return &Instr{Op: Load, Dst: dst, A: base, Disp: disp, Width: w, Signed: signed}
}

// StoreI builds M[w](base + disp) = val.
func StoreI(base Operand, disp int64, val Operand, w Width) *Instr {
	return &Instr{Op: Store, A: base, B: val, Disp: disp, Width: w}
}

// ExtractI builds dst = extract w bytes of a at byte offset off.
func ExtractI(dst Reg, a, off Operand, w Width, signed bool) *Instr {
	return &Instr{Op: Extract, Dst: dst, A: a, B: off, Width: w, Signed: signed}
}

// InsertI builds dst = a with the low w bytes of val deposited at byte
// offset off.
func InsertI(dst Reg, a, val, off Operand, w Width) *Instr {
	return &Instr{Op: Insert, Dst: dst, A: a, B: val, C: off, Width: w}
}

// JumpI builds an unconditional jump.
func JumpI(target *Block) *Instr { return &Instr{Op: Jump, Target: target} }

// BranchI builds: if cond != 0 goto then else goto els.
func BranchI(cond Operand, then, els *Block) *Instr {
	return &Instr{Op: Branch, A: cond, Target: then, Else: els}
}

// RetI builds a return; pass Operand{} for a void return.
func RetI(val Operand) *Instr { return &Instr{Op: Ret, A: val} }

// CallI builds dst = callee(args...); pass NoReg to discard the result.
func CallI(dst Reg, callee string, args ...Operand) *Instr {
	return &Instr{Op: Call, Dst: dst, Callee: callee, Args: args}
}
