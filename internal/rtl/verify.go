package rtl

import "fmt"

// Verify checks the structural invariants every pass must preserve: blocks
// end in exactly one terminator, branch targets belong to the function,
// memory widths are valid, operand slots match the opcode's shape, and all
// registers come from the function's pool. It returns the first violation
// found.
func (f *Fn) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	inFn := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFn[b] = true
	}
	checkReg := func(r Reg) error {
		if r < 0 || int(r) >= f.NumRegs() {
			return fmt.Errorf("register %s outside pool of %d", r, f.NumRegs())
		}
		return nil
	}
	checkOperand := func(o Operand) error {
		if o.Kind == KindReg {
			return checkReg(o.Reg)
		}
		return nil
	}
	for _, p := range f.Params {
		if err := checkReg(p); err != nil {
			return fmt.Errorf("%s: param: %w", f.Name, err)
		}
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s/%s: empty block", f.Name, b)
		}
		// The location prefix is formatted only on the failure path: building
		// it eagerly per instruction was the single hottest allocation site
		// in a cold compile (verify checkpoints run after every pass).
		where := func(i int, in *Instr) string {
			return fmt.Sprintf("%s/%s[%d] %s", f.Name, b, i, in)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("%s: block does not end in terminator", where(i, in))
				}
				return fmt.Errorf("%s: terminator in middle of block", where(i, in))
			}
			if err := verifyShape(in); err != nil {
				return fmt.Errorf("%s: %w", where(i, in), err)
			}
			if d, ok := in.Def(); ok {
				if err := checkReg(d); err != nil {
					return fmt.Errorf("%s: dst: %w", where(i, in), err)
				}
			}
			for _, o := range in.SrcOperands() {
				if err := checkOperand(*o); err != nil {
					return fmt.Errorf("%s: %w", where(i, in), err)
				}
			}
			switch in.Op {
			case Jump:
				if !inFn[in.Target] {
					return fmt.Errorf("%s: jump target outside function", where(i, in))
				}
			case Branch:
				if !inFn[in.Target] || !inFn[in.Else] {
					return fmt.Errorf("%s: branch target outside function", where(i, in))
				}
			}
		}
	}
	return nil
}

func verifyShape(in *Instr) error {
	needDst := func() error {
		if in.Dst == NoReg {
			return fmt.Errorf("missing destination")
		}
		return nil
	}
	needA := func() error {
		if in.A.Kind == KindNone {
			return fmt.Errorf("missing operand A")
		}
		return nil
	}
	needB := func() error {
		if in.B.Kind == KindNone {
			return fmt.Errorf("missing operand B")
		}
		return nil
	}
	needWidth := func() error {
		if !in.Width.Valid() {
			return fmt.Errorf("invalid width %d", in.Width)
		}
		return nil
	}
	switch in.Op {
	case Nop, Ret:
		return nil
	case Mov, Neg, Not:
		return firstErr(needDst, needA)
	case Load:
		return firstErr(needDst, needA, needWidth)
	case Store:
		return firstErr(needA, needB, needWidth)
	case Extract:
		return firstErr(needDst, needA, needB, needWidth)
	case Insert:
		if in.C.Kind == KindNone {
			return fmt.Errorf("insert missing operand C")
		}
		return firstErr(needDst, needA, needB, needWidth)
	case Jump:
		return nil
	case Branch:
		return needA()
	case Call:
		if in.Callee == "" {
			return fmt.Errorf("call without callee")
		}
		return nil
	default:
		if in.Op.IsBinary() {
			return firstErr(needDst, needA, needB)
		}
		if in.Op >= numOps {
			return fmt.Errorf("unknown opcode %d", in.Op)
		}
		return nil
	}
}

func firstErr(checks ...func() error) error {
	for _, c := range checks {
		if err := c(); err != nil {
			return err
		}
	}
	return nil
}
