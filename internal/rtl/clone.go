package rtl

// CloneRegion deep-copies a set of blocks into the function, rewiring
// control transfers among the copied blocks to their copies while leaving
// edges that leave the region pointing at the original targets. It returns
// the original-to-copy mapping. Registers are not renamed; callers that need
// independent register names apply RenameRegs afterwards.
//
// The coalescing pass uses this to build the "safe loop" copy the run-time
// checks fall back to (Figure 5 of the paper), and the unroller uses it for
// both body copies and the remainder loop.
func (f *Fn) CloneRegion(blocks []*Block, nameSuffix string) map[*Block]*Block {
	m := make(map[*Block]*Block, len(blocks))
	for _, b := range blocks {
		nb := f.NewBlock(b.Name + nameSuffix)
		m[b] = nb
	}
	for _, b := range blocks {
		nb := m[b]
		for _, in := range b.Instrs {
			cp := in.Clone()
			if cp.Target != nil {
				if t, ok := m[cp.Target]; ok {
					cp.Target = t
				}
			}
			if cp.Else != nil {
				if t, ok := m[cp.Else]; ok {
					cp.Else = t
				}
			}
			nb.Instrs = append(nb.Instrs, cp)
		}
	}
	return m
}

// RenameRegs rewrites register names in the given blocks according to the
// rename map applied to both definitions and uses. Registers absent from the
// map are left untouched (they are live-in values shared with the rest of
// the function).
func RenameRegs(blocks []*Block, rename map[Reg]Reg) {
	for _, b := range blocks {
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok {
				if nr, ok := rename[d]; ok {
					in.Dst = nr
				}
			}
			for _, o := range in.SrcOperands() {
				if r, ok := o.IsReg(); ok {
					if nr, ok := rename[r]; ok {
						o.Reg = nr
					}
				}
			}
		}
	}
}

// Clone deep-copies the whole function.
func (f *Fn) Clone() *Fn {
	nf := &Fn{Name: f.Name, nextReg: f.nextReg, nextBlk: f.nextBlk,
		FrameBytes: f.FrameBytes, FrameReg: f.FrameReg}
	nf.Params = append([]Reg(nil), f.Params...)
	m := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Name: b.Name}
		m[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := m[b]
		for _, in := range b.Instrs {
			cp := in.Clone()
			if cp.Target != nil {
				cp.Target = m[cp.Target]
			}
			if cp.Else != nil {
				cp.Else = m[cp.Else]
			}
			nb.Instrs = append(nb.Instrs, cp)
		}
	}
	return nf
}

// Restore overwrites f in place with a deep copy of snap, so every existing
// pointer to f (program tables, simulators) observes the restored body. The
// pass pipeline uses this to roll a function back to its last-known-good
// snapshot after a pass panics or fails verification; snap itself is left
// untouched and may be restored from again.
func (f *Fn) Restore(snap *Fn) {
	c := snap.Clone()
	f.Params = c.Params
	f.Blocks = c.Blocks
	f.FrameBytes = c.FrameBytes
	f.FrameReg = c.FrameReg
	f.nextReg = c.nextReg
	f.nextBlk = c.nextBlk
}

// RedirectEdges replaces every control-flow edge in the function that points
// at from with an edge to to.
func (f *Fn) RedirectEdges(from, to *Block) {
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		if t.Target == from {
			t.Target = to
		}
		if t.Else == from {
			t.Else = to
		}
	}
}
