package rtl

import "fmt"

// VerifyFn checks one flat function against the same invariants Fn.Verify
// enforces on the pointer graph — blocks end in exactly one terminator,
// operand slots match the opcode's shape, registers come from the pool,
// branch targets are real blocks — plus the flat-specific structural ones
// (parallel arrays, contiguous block ranges, call-table consistency). It
// allocates nothing on the success path; failure messages are formatted
// lazily.
func (fp *FlatProgram) VerifyFn(fi int) error {
	f := &fp.Fns[fi]
	if err := f.verifyStructure(fp, fi); err != nil {
		return err
	}
	name := func() string { return fp.symName(f.Name) }
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", name())
	}
	nregs := f.NumRegs()
	for _, p := range f.Params {
		if p < 0 || int(p) >= nregs {
			return fmt.Errorf("%s: param: register %s outside pool of %d", name(), p, nregs)
		}
	}
	nb := int32(len(f.Blocks))
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.InstrEnd == b.InstrStart {
			return fmt.Errorf("%s/%s: empty block", name(), fp.blockName(f, int32(bi)))
		}
		where := func(i int32) string {
			return fmt.Sprintf("%s/%s[%d] op=%s", name(), fp.blockName(f, int32(bi)), i-b.InstrStart, f.Op[i])
		}
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			isLast := i == b.InstrEnd-1
			if f.Op[i].IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("%s: block does not end in terminator", where(i))
				}
				return fmt.Errorf("%s: terminator in middle of block", where(i))
			}
			if err := f.verifyFlatShape(i); err != nil {
				return fmt.Errorf("%s: %w", where(i), err)
			}
			if d, ok := f.Def(i); ok {
				if d < 0 || int(d) >= nregs {
					return fmt.Errorf("%s: dst: register %s outside pool of %d", where(i), d, nregs)
				}
			}
			if err := f.verifySrcRegs(i, nregs); err != nil {
				return fmt.Errorf("%s: %w", where(i), err)
			}
			switch f.Op[i] {
			case Jump:
				if t := f.Target[i]; t < 0 || t >= nb {
					return fmt.Errorf("%s: jump target outside function", where(i))
				}
			case Branch:
				if t := f.Target[i]; t < 0 || t >= nb {
					return fmt.Errorf("%s: branch target outside function", where(i))
				}
				if e := f.Else[i]; e < 0 || e >= nb {
					return fmt.Errorf("%s: branch target outside function", where(i))
				}
			}
		}
	}
	return nil
}

func (fp *FlatProgram) symName(s Sym) string {
	if s >= 0 && int(s) < len(fp.Syms) {
		return fp.Syms[s]
	}
	return fmt.Sprintf("sym#%d", s)
}

func (fp *FlatProgram) blockName(f *FlatFn, bi int32) string {
	b := &f.Blocks[bi]
	if n := fp.symName(b.Name); n != "" {
		return n
	}
	return fmt.Sprintf("b%d", b.ID)
}

// verifyStructure holds the Validate-style index-safety checks, scoped to
// one function so the flat pipeline can checkpoint per fn without
// revalidating the whole program.
func (f *FlatFn) verifyStructure(fp *FlatProgram, fi int) error {
	n := len(f.Op)
	if len(f.Dst) != n || len(f.A) != n || len(f.B) != n || len(f.C) != n ||
		len(f.Width) != n || len(f.Signed) != n || len(f.Disp) != n ||
		len(f.Target) != n || len(f.Else) != n || len(f.CallIdx) != n {
		return fmt.Errorf("fn %d: instruction arrays not parallel", fi)
	}
	prevEnd := int32(0)
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.InstrStart != prevEnd || b.InstrEnd < b.InstrStart || int(b.InstrEnd) > n {
			return fmt.Errorf("fn %d block %d: range [%d,%d) not contiguous at %d", fi, bi, b.InstrStart, b.InstrEnd, prevEnd)
		}
		if b.Name < 0 || int(b.Name) >= len(fp.Syms) {
			return fmt.Errorf("fn %d block %d: name sym out of range", fi, bi)
		}
		prevEnd = b.InstrEnd
	}
	if int(prevEnd) != n {
		return fmt.Errorf("fn %d: %d instructions not covered by blocks", fi, n-int(prevEnd))
	}
	for i := 0; i < n; i++ {
		if f.Op[i] >= numOps {
			return fmt.Errorf("fn %d instr %d: unknown opcode %d", fi, i, f.Op[i])
		}
		ci := f.CallIdx[i]
		if ci < -1 || int(ci) >= len(f.Calls) {
			return fmt.Errorf("fn %d instr %d: call index %d out of range", fi, i, ci)
		}
		if (f.Op[i] == Call) != (ci >= 0) {
			return fmt.Errorf("fn %d instr %d: call index inconsistent with opcode", fi, i)
		}
	}
	for ci := range f.Calls {
		c := &f.Calls[ci]
		if c.Callee < 0 || int(c.Callee) >= len(fp.Syms) {
			return fmt.Errorf("fn %d call %d: callee sym out of range", fi, ci)
		}
		if c.ArgStart < 0 || c.ArgEnd < c.ArgStart || int(c.ArgEnd) > len(f.Args) {
			return fmt.Errorf("fn %d call %d: arg range [%d,%d) invalid", fi, ci, c.ArgStart, c.ArgEnd)
		}
	}
	return nil
}

// verifyFlatShape mirrors verifyShape over the arrays.
func (f *FlatFn) verifyFlatShape(i int32) error {
	needDst := f.Dst[i] != NoReg
	needA := f.A[i].Kind != KindNone
	needB := f.B[i].Kind != KindNone
	widthOK := f.Width[i].Valid()
	switch f.Op[i] {
	case Nop, Ret:
		return nil
	case Mov, Neg, Not:
		return shapeErr(needDst, needA, true, true, f.Width[i])
	case Load:
		return shapeErr(needDst, needA, true, widthOK, f.Width[i])
	case Store:
		return shapeErr(true, needA, needB, widthOK, f.Width[i])
	case Extract:
		return shapeErr(needDst, needA, needB, widthOK, f.Width[i])
	case Insert:
		if f.C[i].Kind == KindNone {
			return fmt.Errorf("insert missing operand C")
		}
		return shapeErr(needDst, needA, needB, widthOK, f.Width[i])
	case Jump:
		return nil
	case Branch:
		if !needA {
			return fmt.Errorf("missing operand A")
		}
		return nil
	case Call:
		return nil // callee sym range is covered by verifyStructure
	default:
		if f.Op[i].IsBinary() {
			return shapeErr(needDst, needA, needB, true, f.Width[i])
		}
		return nil
	}
}

func shapeErr(dst, a, b, width bool, w Width) error {
	switch {
	case !dst:
		return fmt.Errorf("missing destination")
	case !a:
		return fmt.Errorf("missing operand A")
	case !b:
		return fmt.Errorf("missing operand B")
	case !width:
		return fmt.Errorf("invalid width %d", w)
	}
	return nil
}

func (f *FlatFn) verifySrcRegs(i int32, nregs int) error {
	bad, found := Reg(0), false
	f.SrcSlots(i, func(o *Operand) {
		if o.Kind == KindReg && (o.Reg < 0 || int(o.Reg) >= nregs) && !found {
			bad, found = o.Reg, true
		}
	})
	if found {
		return fmt.Errorf("register %s outside pool of %d", bad, nregs)
	}
	return nil
}
