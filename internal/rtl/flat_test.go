package rtl_test

// Flatten/Unflatten losslessness and strictness. The printer is the
// correctness anchor: a round trip through the flat form must print
// byte-identically, preserve the register/block counters, and derive the
// same CFG edges the pointer graph reports.

import (
	"strings"
	"testing"

	"macc/internal/rtl"
	"macc/internal/rtlgen"
)

const flatFixture = `global tab @4096 size 16 init deadbeef
global bss @8192 size 64
func f(r0, r1) frame 24 @r7 {
entry:
	r2 = M.4u[r0+8]
	r3 = r2 + 17
	if r3 goto body else exit
body:
	M.4[r1-4] = r3
	r4 = extract.2s r2 @1
	r5 = insert.1 r2 <- r3 @2
	r6 = g(r4, 3)
	jump exit
exit:
	ret r3
}
func g(r0, r1) {
entry:
	r2 = r0 * r1
	ret r2
}
`

func mustParse(t *testing.T, src string) *rtl.Program {
	t.Helper()
	p, err := rtl.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func roundTrip(t *testing.T, p *rtl.Program) *rtl.Program {
	t.Helper()
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	if err := fp.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	back, err := fp.Unflatten()
	if err != nil {
		t.Fatalf("unflatten: %v", err)
	}
	return back
}

func TestFlatRoundTripFixture(t *testing.T) {
	p := mustParse(t, flatFixture)
	want := p.String()
	back := roundTrip(t, p)
	if got := back.String(); got != want {
		t.Fatalf("round trip not lossless:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The materialized program must be fully private: mutating it must not
	// disturb a second materialization from the same image.
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	one, err := fp.Unflatten()
	if err != nil {
		t.Fatal(err)
	}
	one.Fns[0].Blocks[0].Instrs[0].Disp = 999
	one.Globals[0].Init[0] = 0xFF
	if f, ok := one.Lookup("g"); ok {
		f.Blocks[0].Instrs[0].Op = rtl.Add
	}
	two, err := fp.Unflatten()
	if err != nil {
		t.Fatal(err)
	}
	if got := two.String(); got != want {
		t.Fatalf("images share state: second unflatten differs:\n%s", got)
	}
}

func TestFlatPreservesCounters(t *testing.T) {
	p := mustParse(t, flatFixture)
	f := p.Fns[0]
	wantReg := f.NewReg() // consume one so the counter is past max-used
	wantBlk := f.NewBlock("extra")
	wantBlk.Instrs = append(wantBlk.Instrs, &rtl.Instr{Op: rtl.Ret})
	back := roundTrip(t, p)
	bf, ok := back.Lookup("f")
	if !ok {
		t.Fatal("f missing after round trip")
	}
	if got := bf.NewReg(); got != wantReg+1 {
		t.Fatalf("register counter lost: got r%d want r%d", got, wantReg+1)
	}
	nb := bf.NewBlock("post")
	if nb.ID != wantBlk.ID+1 {
		t.Fatalf("block counter lost: got id %d want %d", nb.ID, wantBlk.ID+1)
	}
}

func TestFlatEdges(t *testing.T) {
	p := mustParse(t, flatFixture)
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatal(err)
	}
	ff := &fp.Fns[0] // f: entry -> {body, exit}, body -> {exit}
	name := func(bi int32) string { return fp.SymName(ff.Blocks[bi].Name) }
	var succs []string
	for _, s := range ff.BlockSuccs(0) {
		succs = append(succs, name(s))
	}
	if strings.Join(succs, ",") != "body,exit" {
		t.Fatalf("entry succs = %v", succs)
	}
	var preds []string
	for _, pr := range ff.BlockPreds(2) {
		preds = append(preds, name(pr))
	}
	if strings.Join(preds, ",") != "entry,body" {
		t.Fatalf("exit preds = %v", preds)
	}
	if got := len(ff.BlockPreds(0)); got != 0 {
		t.Fatalf("entry has %d preds", got)
	}
}

func TestFlattenRejectsDanglingEdge(t *testing.T) {
	f := rtl.NewFn("f", 0)
	stray := &rtl.Block{ID: 99, Name: "stray"}
	f.Entry().Instrs = append(f.Entry().Instrs, &rtl.Instr{Op: rtl.Jump, Target: stray})
	if _, err := rtl.Flatten(rtl.NewProgram(f)); err == nil {
		t.Fatal("Flatten accepted a jump to a block outside the function")
	}
}

func TestUnflattenRejectsCorruptImage(t *testing.T) {
	base := func(t *testing.T) *rtl.FlatProgram {
		fp, err := rtl.Flatten(mustParse(t, flatFixture))
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	cases := map[string]func(*rtl.FlatProgram){
		"sym-out-of-range":    func(fp *rtl.FlatProgram) { fp.Fns[0].Name = rtl.Sym(len(fp.Syms)) },
		"edge-out-of-range":   func(fp *rtl.FlatProgram) { fp.Fns[0].Target[2] = 99 },
		"bad-opcode":          func(fp *rtl.FlatProgram) { fp.Fns[0].Op[0] = 250 },
		"ragged-arrays":       func(fp *rtl.FlatProgram) { fp.Fns[0].Dst = fp.Fns[0].Dst[:1] },
		"bad-call-args":       func(fp *rtl.FlatProgram) { fp.Fns[0].Calls[0].ArgEnd = 99 },
		"bad-operand-kind":    func(fp *rtl.FlatProgram) { fp.Fns[0].A[0].Kind = 7 },
		"blocks-do-not-tile":  func(fp *rtl.FlatProgram) { fp.Fns[0].Blocks[1].InstrStart++ },
		"call-idx-mismatched": func(fp *rtl.FlatProgram) { fp.Fns[0].CallIdx[0] = 0 },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			fp := base(t)
			corrupt(fp)
			if _, err := fp.Unflatten(); err == nil {
				t.Fatal("Unflatten accepted a corrupt image")
			}
		})
	}
}

func TestFlatRoundTripRTLGenCorpus(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := rtl.NewProgram(fn)
		want := p.String()
		back := roundTrip(t, p)
		if got := back.String(); got != want {
			t.Fatalf("seed %d: round trip not lossless:\n%s\nvs\n%s", seed, got, want)
		}
	}
}
