// Package rtl defines the register-transfer-list intermediate representation
// used throughout the compiler. It is modelled on the machine-level RTLs of
// the vpo optimizer that hosts the memory access coalescing transformation in
// Davidson & Jinturkar (PLDI 1994): straight-line instructions over an
// unbounded set of 64-bit virtual registers, grouped into basic blocks whose
// last instruction is the only control transfer.
//
// Memory is byte addressable. Loads and stores carry an access width (1, 2,
// 4, or 8 bytes) and address memory as base register plus constant
// displacement, the addressing shape the coalescing analysis reasons about.
// Extract and Insert mirror the Alpha-style byte-manipulation instructions
// the paper relies on: they pull a narrow value out of, or deposit one into,
// a wide register without touching memory.
package rtl

import "fmt"

// Width is a memory access width in bytes.
type Width uint8

// Supported access widths.
const (
	W1 Width = 1
	W2 Width = 2
	W4 Width = 4
	W8 Width = 8
)

// Valid reports whether w is one of the supported access widths.
func (w Width) Valid() bool {
	switch w {
	case W1, W2, W4, W8:
		return true
	}
	return false
}

// Bits returns the width in bits.
func (w Width) Bits() int { return int(w) * 8 }

// Mask returns the bitmask covering a value of width w.
func (w Width) Mask() uint64 {
	if w == W8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * uint(w))) - 1
}

// Reg names a virtual register. Registers are 64 bits wide, matching the
// Alpha model in the paper; narrower machines are expressed through the
// machine cost model, not through the IR.
type Reg int32

// NoReg is the invalid register, used when an instruction defines nothing.
const NoReg Reg = -1

func (r Reg) String() string {
	if r == NoReg {
		return "r?"
	}
	return fmt.Sprintf("r%d", int32(r))
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	KindNone  OperandKind = iota // absent operand
	KindReg                      // virtual register
	KindConst                    // 64-bit immediate
)

// Operand is a register or immediate source operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Const int64
}

// R builds a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// C builds a constant operand.
func C(v int64) Operand { return Operand{Kind: KindConst, Const: v} }

// IsReg reports whether o is a register operand, and if so which register.
func (o Operand) IsReg() (Reg, bool) {
	if o.Kind == KindReg {
		return o.Reg, true
	}
	return NoReg, false
}

// IsConst reports whether o is a constant operand, and if so its value.
func (o Operand) IsConst() (int64, bool) {
	if o.Kind == KindConst {
		return o.Const, true
	}
	return 0, false
}

func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindConst:
		return fmt.Sprintf("%d", o.Const)
	default:
		return "_"
	}
}

// Op is an RTL opcode.
type Op uint8

// Opcodes. Arithmetic is 64-bit two's complement; the Signed flag on the
// instruction selects signed versus unsigned behaviour for Div, Rem, Shr and
// the ordered comparisons.
const (
	Nop Op = iota

	Mov // dst = A

	Add // dst = A + B
	Sub // dst = A - B
	Mul // dst = A * B
	Div // dst = A / B   (Signed selects arithmetic)
	Rem // dst = A % B   (Signed selects arithmetic)
	Neg // dst = -A

	And // dst = A & B
	Or  // dst = A | B
	Xor // dst = A ^ B
	Not // dst = ^A
	Shl // dst = A << B
	Shr // dst = A >> B  (Signed: arithmetic shift)

	SetEQ // dst = A == B ? 1 : 0
	SetNE // dst = A != B ? 1 : 0
	SetLT // dst = A <  B ? 1 : 0 (Signed selects ordering)
	SetLE // dst = A <= B ? 1 : 0 (Signed selects ordering)
	SetGT // dst = A >  B ? 1 : 0 (Signed selects ordering)
	SetGE // dst = A >= B ? 1 : 0 (Signed selects ordering)

	Load  // dst = M[Width](A + Disp); Signed selects sign extension
	Store // M[Width](A + Disp) = B

	// Extract reads the Width bytes of register A that begin at byte offset
	// B (mod 8) and places them, sign- or zero-extended per Signed, in dst.
	// It is the IR image of the Alpha EXTxx instructions.
	Extract
	// Insert deposits the low Width bytes of B into register A at byte
	// offset C (mod 8), leaving the other bytes of A intact, and places the
	// result in dst. It is the IR image of INSxx/MSKxx sequences.
	Insert

	Jump   // goto Target
	Branch // if A != 0 goto Target else goto Else
	Ret    // return A (A may be absent)
	Call   // dst = Callee(Args...)

	numOps // sentinel
)

var opNames = [numOps]string{
	Nop: "nop", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem", Neg: "neg",
	And: "and", Or: "or", Xor: "xor", Not: "not", Shl: "shl", Shr: "shr",
	SetEQ: "seteq", SetNE: "setne", SetLT: "setlt", SetLE: "setle",
	SetGT: "setgt", SetGE: "setge",
	Load: "load", Store: "store", Extract: "extract", Insert: "insert",
	Jump: "jump", Branch: "branch", Ret: "ret", Call: "call",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	switch op {
	case Jump, Branch, Ret:
		return true
	}
	return false
}

// IsCompare reports whether op is one of the Set* comparisons.
func (op Op) IsCompare() bool { return op >= SetEQ && op <= SetGE }

// IsBinary reports whether op takes two source operands A and B and defines
// dst (arithmetic, logic, and comparisons).
func (op Op) IsBinary() bool {
	return (op >= Add && op <= Shr && op != Neg && op != Not) || op.IsCompare()
}

// IsCommutative reports whether swapping A and B preserves semantics.
func (op Op) IsCommutative() bool {
	switch op {
	case Add, Mul, And, Or, Xor, SetEQ, SetNE:
		return true
	}
	return false
}

// Instr is a single RTL instruction. Which fields are meaningful depends on
// Op; the Verify pass enforces the shape.
type Instr struct {
	Op     Op
	Dst    Reg     // destination register, NoReg if none
	A, B   Operand // source operands
	C      Operand // third source (Insert only)
	Width  Width   // memory/extract/insert access width
	Signed bool    // signedness for Div/Rem/Shr/Set*/Load/Extract
	Disp   int64   // address displacement for Load/Store

	Target *Block // Jump/Branch taken target
	Else   *Block // Branch fall-through target

	Callee string    // Call only
	Args   []Operand // Call only
}

// Def returns the register this instruction defines, if any.
func (in *Instr) Def() (Reg, bool) {
	if in.Dst != NoReg {
		switch in.Op {
		case Store, Jump, Branch, Ret, Nop:
			return NoReg, false
		}
		return in.Dst, true
	}
	return NoReg, false
}

// SrcOperands returns pointers to every source operand slot the instruction
// actually uses, enabling in-place substitution by optimization passes.
func (in *Instr) SrcOperands() []*Operand {
	var ops []*Operand
	add := func(o *Operand) {
		if o.Kind != KindNone {
			ops = append(ops, o)
		}
	}
	switch in.Op {
	case Nop, Jump:
	case Mov, Neg, Not, Load, Ret:
		add(&in.A)
	case Branch:
		add(&in.A)
	case Store:
		add(&in.A)
		add(&in.B)
	case Extract:
		add(&in.A)
		add(&in.B)
	case Insert:
		add(&in.A)
		add(&in.B)
		add(&in.C)
	case Call:
		for i := range in.Args {
			add(&in.Args[i])
		}
	default: // binary ops
		add(&in.A)
		add(&in.B)
	}
	return ops
}

// Uses appends the registers read by the instruction to dst and returns it.
func (in *Instr) Uses(dst []Reg) []Reg {
	for _, o := range in.SrcOperands() {
		if r, ok := o.IsReg(); ok {
			dst = append(dst, r)
		}
	}
	return dst
}

// UsesReg reports whether the instruction reads register r.
func (in *Instr) UsesReg(r Reg) bool {
	for _, o := range in.SrcOperands() {
		if rr, ok := o.IsReg(); ok && rr == r {
			return true
		}
	}
	return false
}

// ReplaceUses substitutes every use of register from with operand to and
// returns the number of substitutions made.
func (in *Instr) ReplaceUses(from Reg, to Operand) int {
	n := 0
	for _, o := range in.SrcOperands() {
		if r, ok := o.IsReg(); ok && r == from {
			*o = to
			n++
		}
	}
	return n
}

// IsMem reports whether the instruction touches memory.
func (in *Instr) IsMem() bool { return in.Op == Load || in.Op == Store }

// Clone returns a deep copy of the instruction. Block targets still point at
// the original blocks; callers rewire them when cloning regions.
func (in *Instr) Clone() *Instr {
	cp := *in
	if in.Args != nil {
		cp.Args = append([]Operand(nil), in.Args...)
	}
	return &cp
}

// Block is a basic block: zero or more straight-line instructions followed
// by exactly one terminator.
type Block struct {
	ID     int
	Name   string
	Instrs []*Instr
}

// Term returns the block's terminator instruction, or nil if the block is
// empty or malformed.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Body returns the instructions before the terminator.
func (b *Block) Body() []*Instr {
	if b.Term() == nil {
		return b.Instrs
	}
	return b.Instrs[:len(b.Instrs)-1]
}

// Succs returns the block's successor blocks in (taken, fallthrough) order.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case Jump:
		return []*Block{t.Target}
	case Branch:
		return []*Block{t.Target, t.Else}
	}
	return nil
}

// Append adds an instruction before the terminator if one exists, otherwise
// at the end.
func (b *Block) Append(in *Instr) {
	if t := b.Term(); t != nil {
		b.Instrs = append(b.Instrs[:len(b.Instrs)-1], in, t)
		return
	}
	b.Instrs = append(b.Instrs, in)
}

// InsertAt inserts an instruction at index i.
func (b *Block) InsertAt(i int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// RemoveAt deletes the instruction at index i.
func (b *Block) RemoveAt(i int) {
	b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
}

// Index returns the position of in within the block, or -1.
func (b *Block) Index(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

func (b *Block) String() string {
	if b == nil {
		return "b?"
	}
	if b.Name != "" {
		return b.Name
	}
	return fmt.Sprintf("b%d", b.ID)
}

// Fn is a function: an entry block (Blocks[0]), parameters pre-assigned to
// registers, and a pool of virtual registers.
type Fn struct {
	Name   string
	Params []Reg
	Blocks []*Block
	// FrameBytes, when non-zero, asks the execution environment to reserve
	// a stack frame of that many bytes and to place its base address in
	// FrameReg before the function runs. The register allocator uses the
	// frame for spill slots.
	FrameBytes int
	FrameReg   Reg
	nextReg    Reg
	nextBlk    int
}

// NewFn creates a function with nparams parameters bound to registers
// 0..nparams-1 and a fresh entry block.
func NewFn(name string, nparams int) *Fn {
	f := &Fn{Name: name}
	for i := 0; i < nparams; i++ {
		f.Params = append(f.Params, f.NewReg())
	}
	f.NewBlock("entry")
	return f
}

// Entry returns the function's entry block.
func (f *Fn) Entry() *Block { return f.Blocks[0] }

// NumRegs returns the number of virtual registers allocated so far.
func (f *Fn) NumRegs() int { return int(f.nextReg) }

// NewReg allocates a fresh virtual register.
func (f *Fn) NewReg() Reg {
	r := f.nextReg
	f.nextReg++
	return r
}

// EnsureRegs bumps the register pool so ids below n are considered
// allocated. Used after cloning or renaming introduces explicit ids.
func (f *Fn) EnsureRegs(n int) {
	if Reg(n) > f.nextReg {
		f.nextReg = Reg(n)
	}
}

// NewBlock appends a fresh block with the given name (a unique name is
// generated when empty).
func (f *Fn) NewBlock(name string) *Block {
	b := &Block{ID: f.nextBlk}
	f.nextBlk++
	if name == "" {
		name = fmt.Sprintf("b%d", b.ID)
	}
	b.Name = name
	f.Blocks = append(f.Blocks, b)
	return b
}

// BlockIndex returns the position of b in f.Blocks, or -1.
func (f *Fn) BlockIndex(b *Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}

// RemoveBlock deletes block b from the function. The caller must have
// rewired all edges into b beforehand.
func (f *Fn) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// Global is a statically allocated data object. The front end lays globals
// out at fixed addresses; the simulator materializes Init (zero-padded to
// Size) at Addr before execution.
type Global struct {
	Name string
	Addr int64
	Size int64
	Init []byte
}

// Program is a set of functions, keyed by name for the Call instruction and
// the simulator, plus statically allocated globals.
type Program struct {
	Fns     []*Fn
	Globals []*Global
	byName  map[string]*Fn
}

// NewProgram builds a program from functions.
func NewProgram(fns ...*Fn) *Program {
	p := &Program{byName: make(map[string]*Fn)}
	for _, f := range fns {
		p.Add(f)
	}
	return p
}

// Add registers a function with the program, replacing any previous function
// of the same name.
func (p *Program) Add(f *Fn) {
	if old, ok := p.byName[f.Name]; ok {
		for i, x := range p.Fns {
			if x == old {
				p.Fns[i] = f
				p.byName[f.Name] = f
				return
			}
		}
	}
	p.Fns = append(p.Fns, f)
	p.byName[f.Name] = f
}

// Lookup returns the function with the given name, if present.
func (p *Program) Lookup(name string) (*Fn, bool) {
	f, ok := p.byName[name]
	return f, ok
}
