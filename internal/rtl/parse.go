package rtl

// A parser for the textual RTL format the printer emits, so that test
// fixtures, golden files, and cmd/macc can work with .rtl files directly.
// ParseFn(f.String()) round-trips every function the compiler can build;
// the property tests in parse_test.go pin that.

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses one or more textual functions, optionally preceded or
// interleaved with `global` directives as printed by Program.String.
func ParseProgram(src string) (*Program, error) {
	p := NewProgram()
	rest := src
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return p, nil
		}
		if strings.HasPrefix(rest, "global ") || rest == "global" {
			line := rest
			if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
				line, rest = rest[:nl], rest[nl+1:]
			} else {
				rest = ""
			}
			g, err := parseGlobal(strings.TrimSpace(line))
			if err != nil {
				return nil, err
			}
			p.Globals = append(p.Globals, g)
			continue
		}
		fn, remaining, err := parseOneFn(rest)
		if err != nil {
			return nil, err
		}
		p.Add(fn)
		rest = remaining
	}
}

// parseGlobal parses "global name @addr size N [init hex]".
func parseGlobal(line string) (*Global, error) {
	// fields: global <name> @<addr> size <size> [init <hex>]
	fields := strings.Fields(line)
	if len(fields) != 5 && len(fields) != 7 {
		return nil, fmt.Errorf("rtl: malformed global %q", line)
	}
	if fields[0] != "global" || !strings.HasPrefix(fields[2], "@") || fields[3] != "size" {
		return nil, fmt.Errorf("rtl: malformed global %q", line)
	}
	addr, err := strconv.ParseInt(fields[2][1:], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("rtl: bad global address in %q", line)
	}
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || size < 0 {
		return nil, fmt.Errorf("rtl: bad global size in %q", line)
	}
	g := &Global{Name: fields[1], Addr: addr, Size: size}
	if len(fields) == 7 {
		if fields[5] != "init" {
			return nil, fmt.Errorf("rtl: malformed global %q", line)
		}
		init, err := hex.DecodeString(fields[6])
		if err != nil {
			return nil, fmt.Errorf("rtl: bad global init in %q", line)
		}
		if int64(len(init)) > size {
			return nil, fmt.Errorf("rtl: global init longer than size in %q", line)
		}
		g.Init = init
	}
	return g, nil
}

// ParseFn parses a single textual function.
func ParseFn(src string) (*Fn, error) {
	fn, rest, err := parseOneFn(strings.TrimSpace(src))
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("rtl: trailing input after function %s", fn.Name)
	}
	return fn, nil
}

type fnParser struct {
	fn     *Fn
	blocks map[string]*Block
	// patches records (instr, label, isElse) fixups resolved after all
	// blocks are known.
	patches []patch
	maxReg  int
}

type patch struct {
	in     *Instr
	label  string
	isElse bool
}

func parseOneFn(src string) (*Fn, string, error) {
	lines := strings.Split(src, "\n")
	if len(lines) == 0 {
		return nil, "", fmt.Errorf("rtl: empty input")
	}
	head := strings.TrimSpace(lines[0])
	if !strings.HasPrefix(head, "func ") {
		return nil, "", fmt.Errorf("rtl: expected 'func', got %q", head)
	}
	open := strings.IndexByte(head, '(')
	closeP := strings.IndexByte(head, ')')
	if open < 0 || closeP < open || !strings.HasSuffix(head, "{") {
		return nil, "", fmt.Errorf("rtl: malformed function header %q", head)
	}
	name := strings.TrimSpace(head[5:open])
	fp := &fnParser{fn: &Fn{Name: name}, blocks: make(map[string]*Block)}

	// An optional spill-frame clause sits between ')' and '{':
	// "frame <bytes> @r<reg>".
	tail := strings.TrimSpace(strings.TrimSuffix(head[closeP+1:], "{"))
	if tail != "" {
		fields := strings.Fields(tail)
		if len(fields) != 3 || fields[0] != "frame" || !strings.HasPrefix(fields[2], "@") {
			return nil, "", fmt.Errorf("rtl: malformed frame clause %q", tail)
		}
		fb, err := strconv.Atoi(fields[1])
		if err != nil || fb < 0 {
			return nil, "", fmt.Errorf("rtl: bad frame size in %q", tail)
		}
		fr, err := fp.parseReg(fields[2][1:])
		if err != nil {
			return nil, "", fmt.Errorf("rtl: bad frame register in %q: %v", tail, err)
		}
		fp.fn.FrameBytes = fb
		fp.fn.FrameReg = fr
	}

	paramList := strings.TrimSpace(head[open+1 : closeP])
	if paramList != "" {
		for _, ps := range strings.Split(paramList, ",") {
			r, err := fp.parseReg(strings.TrimSpace(ps))
			if err != nil {
				return nil, "", fmt.Errorf("rtl: bad parameter %q: %v", ps, err)
			}
			fp.fn.Params = append(fp.fn.Params, r)
		}
	}

	var cur *Block
	i := 1
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		switch {
		case line == "" || strings.HasPrefix(line, "//"):
			continue
		case line == "}":
			i++
			goto done
		case strings.HasSuffix(line, ":"):
			label := strings.TrimSuffix(line, ":")
			cur = fp.block(label)
			fp.fn.Blocks = append(fp.fn.Blocks, cur)
		default:
			if cur == nil {
				return nil, "", fmt.Errorf("rtl: instruction before first label: %q", line)
			}
			in, err := fp.parseInstr(line)
			if err != nil {
				return nil, "", fmt.Errorf("rtl: %v in %q", err, line)
			}
			cur.Instrs = append(cur.Instrs, in)
		}
	}
	return nil, "", fmt.Errorf("rtl: missing closing brace in %s", name)

done:
	for _, pt := range fp.patches {
		b, ok := fp.blocks[pt.label]
		if !ok {
			return nil, "", fmt.Errorf("rtl: undefined label %q", pt.label)
		}
		if pt.isElse {
			pt.in.Else = b
		} else {
			pt.in.Target = b
		}
	}
	// Every referenced block must actually appear in the function.
	for _, b := range fp.blocks {
		if !blockDeclared(fp.fn, b) {
			return nil, "", fmt.Errorf("rtl: label %q referenced but never defined", b.Name)
		}
	}
	fp.fn.EnsureRegs(fp.maxReg + 1)
	fp.fn.nextBlk = len(fp.fn.Blocks)
	if err := fp.fn.Verify(); err != nil {
		return nil, "", fmt.Errorf("rtl: parsed function invalid: %w", err)
	}
	return fp.fn, strings.Join(lines[i:], "\n"), nil
}

func blockDeclared(f *Fn, b *Block) bool {
	for _, x := range f.Blocks {
		if x == b {
			return true
		}
	}
	return false
}

func (fp *fnParser) block(label string) *Block {
	if b, ok := fp.blocks[label]; ok {
		return b
	}
	b := &Block{ID: len(fp.blocks), Name: label}
	fp.blocks[label] = b
	return b
}

func (fp *fnParser) parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return NoReg, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return NoReg, fmt.Errorf("bad register %q", s)
	}
	if n > fp.maxReg {
		fp.maxReg = n
	}
	return Reg(n), nil
}

func (fp *fnParser) parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "r") {
		if r, err := fp.parseReg(s); err == nil {
			return R(r), nil
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
	return C(v), nil
}

// binOps maps printed operator spellings back to opcodes (with signedness).
var binOpSpellings = map[string]struct {
	op     Op
	signed bool
}{
	"+": {Add, false}, "-": {Sub, false}, "*": {Mul, false},
	"/": {Div, true}, "/u": {Div, false},
	"%": {Rem, true}, "%u": {Rem, false},
	"&": {And, false}, "|": {Or, false}, "^": {Xor, false},
	"<<": {Shl, false}, ">>": {Shr, true}, ">>u": {Shr, false},
	"==": {SetEQ, false}, "!=": {SetNE, false},
	"<": {SetLT, true}, "<u": {SetLT, false},
	"<=": {SetLE, true}, "<=u": {SetLE, false},
	">": {SetGT, true}, ">u": {SetGT, false},
	">=": {SetGE, true}, ">=u": {SetGE, false},
}

func (fp *fnParser) parseInstr(line string) (*Instr, error) {
	switch {
	case line == "nop":
		return &Instr{Op: Nop}, nil
	case strings.HasPrefix(line, "jump "):
		in := &Instr{Op: Jump}
		fp.patches = append(fp.patches, patch{in: in, label: strings.TrimSpace(line[5:])})
		fp.block(strings.TrimSpace(line[5:]))
		return in, nil
	case strings.HasPrefix(line, "if "):
		// if COND goto L1 else L2
		rest := line[3:]
		gi := strings.Index(rest, " goto ")
		ei := strings.Index(rest, " else ")
		if gi < 0 || ei < gi {
			return nil, fmt.Errorf("malformed branch")
		}
		cond, err := fp.parseOperand(rest[:gi])
		if err != nil {
			return nil, err
		}
		l1 := strings.TrimSpace(rest[gi+6 : ei])
		l2 := strings.TrimSpace(rest[ei+6:])
		in := &Instr{Op: Branch, A: cond}
		fp.patches = append(fp.patches,
			patch{in: in, label: l1}, patch{in: in, label: l2, isElse: true})
		fp.block(l1)
		fp.block(l2)
		return in, nil
	case line == "ret":
		return &Instr{Op: Ret}, nil
	case strings.HasPrefix(line, "ret "):
		v, err := fp.parseOperand(line[4:])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: Ret, A: v}, nil
	case strings.HasPrefix(line, "M."):
		return fp.parseStore(line)
	}
	// Everything else is "dst = rhs" or a bare call.
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return fp.parseCall(NoReg, line)
	}
	lhs := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+3:])
	dst, err := fp.parseReg(lhs)
	if err != nil {
		return nil, err
	}
	return fp.parseAssign(dst, rhs)
}

// parseAddr parses "[base]", "[base+4]", "[base-4]", or "[1234]".
func (fp *fnParser) parseAddr(s string) (base Operand, disp int64, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, 0, fmt.Errorf("bad address %q", s)
	}
	inner := s[1 : len(s)-1]
	// Find a +/- separating base and displacement (not a leading sign).
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			base, err = fp.parseOperand(inner[:i])
			if err != nil {
				return Operand{}, 0, err
			}
			d, derr := strconv.ParseInt(inner[i+1:], 10, 64)
			if derr != nil {
				return Operand{}, 0, fmt.Errorf("bad displacement in %q", s)
			}
			if inner[i] == '-' {
				d = -d
			}
			return base, d, nil
		}
	}
	base, err = fp.parseOperand(inner)
	return base, 0, err
}

// parseWidthSuffix parses "2s"/"4u"/"8" style width(+signedness) suffixes.
func parseWidthSuffix(s string) (Width, bool, error) {
	signed := false
	if strings.HasSuffix(s, "s") {
		signed = true
		s = s[:len(s)-1]
	} else if strings.HasSuffix(s, "u") {
		s = s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || !Width(n).Valid() {
		return 0, false, fmt.Errorf("bad width %q", s)
	}
	return Width(n), signed, nil
}

func (fp *fnParser) parseStore(line string) (*Instr, error) {
	// M.2[rB+4] = v
	eq := strings.Index(line, " = ")
	if eq < 0 {
		return nil, fmt.Errorf("malformed store")
	}
	lhs := line[:eq]
	bracket := strings.IndexByte(lhs, '[')
	if bracket < 0 {
		return nil, fmt.Errorf("malformed store address")
	}
	w, _, err := parseWidthSuffix(lhs[2:bracket])
	if err != nil {
		return nil, err
	}
	base, disp, err := fp.parseAddr(lhs[bracket:])
	if err != nil {
		return nil, err
	}
	val, err := fp.parseOperand(line[eq+3:])
	if err != nil {
		return nil, err
	}
	return &Instr{Op: Store, A: base, B: val, Width: w, Disp: disp}, nil
}

func (fp *fnParser) parseAssign(dst Reg, rhs string) (*Instr, error) {
	switch {
	case strings.HasPrefix(rhs, "M."):
		bracket := strings.IndexByte(rhs, '[')
		if bracket < 0 {
			return nil, fmt.Errorf("malformed load")
		}
		w, signed, err := parseWidthSuffix(rhs[2:bracket])
		if err != nil {
			return nil, err
		}
		base, disp, err := fp.parseAddr(rhs[bracket:])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: Load, Dst: dst, A: base, Width: w, Signed: signed, Disp: disp}, nil

	case strings.HasPrefix(rhs, "extract."):
		// extract.2s rA @off
		fields := strings.Fields(rhs)
		if len(fields) != 3 || !strings.HasPrefix(fields[2], "@") {
			return nil, fmt.Errorf("malformed extract")
		}
		w, signed, err := parseWidthSuffix(strings.TrimPrefix(fields[0], "extract."))
		if err != nil {
			return nil, err
		}
		a, err := fp.parseOperand(fields[1])
		if err != nil {
			return nil, err
		}
		off, err := fp.parseOperand(fields[2][1:])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: Extract, Dst: dst, A: a, B: off, Width: w, Signed: signed}, nil

	case strings.HasPrefix(rhs, "insert."):
		// insert.2 rA <- val @off
		fields := strings.Fields(rhs)
		if len(fields) != 5 || fields[2] != "<-" || !strings.HasPrefix(fields[4], "@") {
			return nil, fmt.Errorf("malformed insert")
		}
		w, _, err := parseWidthSuffix(strings.TrimPrefix(fields[0], "insert."))
		if err != nil {
			return nil, err
		}
		a, err := fp.parseOperand(fields[1])
		if err != nil {
			return nil, err
		}
		val, err := fp.parseOperand(fields[3])
		if err != nil {
			return nil, err
		}
		off, err := fp.parseOperand(fields[4][1:])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: Insert, Dst: dst, A: a, B: val, C: off, Width: w}, nil

	}

	// Calls are the only remaining form with parentheses; a multi-argument
	// call like "f(r1, r2, r3)" splits into any number of fields, so
	// dispatch on the paren before counting fields.
	if strings.Contains(rhs, "(") {
		return fp.parseCall(dst, rhs)
	}
	fields := strings.Fields(rhs)
	switch len(fields) {
	case 1:
		tok := fields[0]
		// "-rN" and "--5" are negations ("-5" alone is a constant move).
		if strings.HasPrefix(tok, "-") &&
			(strings.HasPrefix(tok[1:], "r") || strings.HasPrefix(tok[1:], "-")) {
			a, err := fp.parseOperand(tok[1:])
			if err != nil {
				return nil, err
			}
			return &Instr{Op: Neg, Dst: dst, A: a}, nil
		}
		if strings.HasPrefix(tok, "~") {
			a, err := fp.parseOperand(tok[1:])
			if err != nil {
				return nil, err
			}
			return &Instr{Op: Not, Dst: dst, A: a}, nil
		}
		a, err := fp.parseOperand(tok)
		if err != nil {
			return nil, err
		}
		return &Instr{Op: Mov, Dst: dst, A: a}, nil
	case 3:
		spec, ok := binOpSpellings[fields[1]]
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", fields[1])
		}
		a, err := fp.parseOperand(fields[0])
		if err != nil {
			return nil, err
		}
		b, err := fp.parseOperand(fields[2])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: spec.op, Dst: dst, A: a, B: b, Signed: spec.signed}, nil
	default:
		return nil, fmt.Errorf("cannot parse %q", rhs)
	}
}

func (fp *fnParser) parseCall(dst Reg, s string) (*Instr, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("malformed call %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return nil, fmt.Errorf("call without callee")
	}
	in := &Instr{Op: Call, Dst: dst, Callee: name}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner != "" {
		for _, as := range strings.Split(inner, ",") {
			a, err := fp.parseOperand(as)
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, a)
		}
	}
	return in, nil
}
