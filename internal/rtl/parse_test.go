package rtl

import (
	"strings"
	"testing"
)

const sampleRTL = `
func dot(r0, r1, r2) {
entry:
	r3 = 0
	r4 = 0
	jump loop
loop:
	r5 = r4 < r2
	if r5 goto body else exit
body:
	r6 = r4 << 1
	r7 = r0 + r6
	r8 = M.2s[r7]
	r9 = r1 + r6
	r10 = M.2s[r9+0]
	r11 = r8 * r10
	r3 = r3 + r11
	r4 = r4 + 1
	jump loop
exit:
	ret r3
}
`

func TestParseFnBasics(t *testing.T) {
	f, err := ParseFn(sampleRTL)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "dot" || len(f.Params) != 3 {
		t.Errorf("header parsed wrong: %s/%d", f.Name, len(f.Params))
	}
	if len(f.Blocks) != 4 {
		t.Errorf("blocks = %d, want 4", len(f.Blocks))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// Reparse of the printed form must be stable.
	printed := f.String()
	f2, err := ParseFn(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if f2.String() != printed {
		t.Errorf("print/parse/print not a fixpoint:\n%s\nvs\n%s", printed, f2.String())
	}
}

func TestParseRoundTripAllShapes(t *testing.T) {
	// Build a function exercising every instruction shape the printer can
	// emit, then check print -> parse -> print is the identity.
	f := NewFn("shapes", 2)
	a, b := f.Params[0], f.Params[1]
	entry := f.Entry()
	other := f.NewBlock("other")
	done := f.NewBlock("done")
	rs := make([]Reg, 24)
	for i := range rs {
		rs[i] = f.NewReg()
	}
	entry.Instrs = []*Instr{
		MovI(rs[0], C(-7)),
		MovI(rs[1], R(a)),
		UnI(Neg, rs[2], R(b)),
		UnI(Not, rs[3], R(b)),
		BinI(Add, rs[4], R(a), C(3)),
		BinI(Sub, rs[5], R(a), R(b)),
		BinI(Mul, rs[6], R(a), R(b)),
		SBinI(Div, rs[7], R(a), C(3)),
		BinI(Div, rs[8], R(a), C(3)),
		SBinI(Rem, rs[9], R(a), C(5)),
		BinI(And, rs[10], R(a), C(255)),
		BinI(Or, rs[11], R(a), R(b)),
		BinI(Xor, rs[12], R(a), R(b)),
		BinI(Shl, rs[13], R(a), C(2)),
		SBinI(Shr, rs[14], R(a), C(2)),
		BinI(Shr, rs[15], R(a), C(2)),
		BinI(SetEQ, rs[16], R(a), R(b)),
		SBinI(SetLT, rs[17], R(a), R(b)),
		BinI(SetLT, rs[18], R(a), R(b)),
		SBinI(SetGE, rs[19], R(a), C(0)),
		LoadI(rs[20], R(a), -4, W2, true),
		LoadI(rs[21], R(a), 8, W8, false),
		ExtractI(rs[22], R(rs[21]), C(2), W2, true),
		InsertI(rs[23], R(rs[21]), R(rs[20]), C(4), W2),
		StoreI(R(b), 16, R(rs[23]), W4),
		BranchI(R(rs[16]), other, done),
	}
	other.Instrs = []*Instr{
		CallI(rs[0], "helper", R(a), C(9)),
		CallI(NoReg, "effect"),
		JumpI(done),
	}
	done.Instrs = []*Instr{RetI(R(rs[0]))}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}

	printed := f.String()
	f2, err := ParseFn(printed)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, printed)
	}
	if got := f2.String(); got != printed {
		t.Errorf("round trip differs:\n--- printed ---\n%s--- reparsed ---\n%s", printed, got)
	}
}

func TestParseProgramMultipleFunctions(t *testing.T) {
	src := `
func one() {
entry:
	ret 1
}

func two() {
entry:
	r0 = one()
	ret r0
}
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fns) != 2 {
		t.Fatalf("functions = %d", len(p.Fns))
	}
	if _, ok := p.Lookup("two"); !ok {
		t.Error("lookup failed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no func", "ret 1"},
		{"bad header", "func f( {"},
		{"missing brace", "func f() {\nentry:\n\tret 1"},
		{"instr before label", "func f() {\n\tret 1\n}"},
		{"undefined label", "func f() {\nentry:\n\tjump nowhere2\n}"},
		{"bad operand", "func f() {\nentry:\n\tr0 = @\n\tret r0\n}"},
		{"bad width", "func f() {\nentry:\n\tr0 = M.3s[r1]\n\tret r0\n}"},
		{"unknown op", "func f() {\nentry:\n\tr0 = r1 ** r2\n\tret r0\n}"},
		{"trailing junk", "func f() {\nentry:\n\tret 1\n}\ngarbage"},
	}
	for _, c := range cases {
		if _, err := ParseFn(c.src); err == nil {
			t.Errorf("%s: ParseFn should fail", c.name)
		}
	}
}

func TestParseNegativeDisplacement(t *testing.T) {
	f, err := ParseFn("func f(r0) {\nentry:\n\tr1 = M.1u[r0-3]\n\tret r1\n}")
	if err != nil {
		t.Fatal(err)
	}
	ld := f.Entry().Instrs[0]
	if ld.Disp != -3 || ld.Width != W1 || ld.Signed {
		t.Errorf("load parsed wrong: %s", ld)
	}
}

func TestParseAbsoluteAddress(t *testing.T) {
	f, err := ParseFn("func f() {\nentry:\n\tM.4[4096] = 7\n\tret\n}")
	if err != nil {
		t.Fatal(err)
	}
	st := f.Entry().Instrs[0]
	if v, ok := st.A.IsConst(); !ok || v != 4096 {
		t.Errorf("absolute address parsed wrong: %s", st)
	}
	if !strings.Contains(st.String(), "[4096]") {
		t.Errorf("absolute address printed wrong: %s", st)
	}
}
