package rtl

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWidthValid(t *testing.T) {
	for _, w := range []Width{W1, W2, W4, W8} {
		if !w.Valid() {
			t.Errorf("width %d should be valid", w)
		}
	}
	for _, w := range []Width{0, 3, 5, 6, 7, 9, 16} {
		if Width(w).Valid() {
			t.Errorf("width %d should be invalid", w)
		}
	}
}

func TestWidthMask(t *testing.T) {
	cases := map[Width]uint64{
		W1: 0xFF, W2: 0xFFFF, W4: 0xFFFFFFFF, W8: ^uint64(0),
	}
	for w, want := range cases {
		if got := w.Mask(); got != want {
			t.Errorf("mask(%d) = %#x, want %#x", w, got, want)
		}
	}
}

func TestOperandAccessors(t *testing.T) {
	if r, ok := R(5).IsReg(); !ok || r != 5 {
		t.Errorf("R(5).IsReg() = %v, %v", r, ok)
	}
	if _, ok := R(5).IsConst(); ok {
		t.Error("register operand should not be const")
	}
	if c, ok := C(-9).IsConst(); !ok || c != -9 {
		t.Errorf("C(-9).IsConst() = %v, %v", c, ok)
	}
	if _, ok := (Operand{}).IsReg(); ok {
		t.Error("empty operand should not be a register")
	}
}

func TestInstrDefUses(t *testing.T) {
	cases := []struct {
		in     *Instr
		def    Reg
		hasDef bool
		uses   []Reg
	}{
		{BinI(Add, 3, R(1), R(2)), 3, true, []Reg{1, 2}},
		{MovI(4, C(7)), 4, true, nil},
		{LoadI(5, R(1), 8, W4, true), 5, true, []Reg{1}},
		{StoreI(R(1), 0, R(2), W2), NoReg, false, []Reg{1, 2}},
		{BranchI(R(9), nil, nil), NoReg, false, []Reg{9}},
		{RetI(R(0)), NoReg, false, []Reg{0}},
		{InsertI(6, R(1), R(2), C(3), W1), 6, true, []Reg{1, 2}},
		{CallI(7, "f", R(1), C(2), R(3)), 7, true, []Reg{1, 3}},
	}
	for _, tc := range cases {
		d, ok := tc.in.Def()
		if ok != tc.hasDef || (ok && d != tc.def) {
			t.Errorf("%s: Def() = %v,%v want %v,%v", tc.in, d, ok, tc.def, tc.hasDef)
		}
		uses := tc.in.Uses(nil)
		if len(uses) != len(tc.uses) {
			t.Errorf("%s: Uses() = %v, want %v", tc.in, uses, tc.uses)
			continue
		}
		for i := range uses {
			if uses[i] != tc.uses[i] {
				t.Errorf("%s: Uses()[%d] = %v, want %v", tc.in, i, uses[i], tc.uses[i])
			}
		}
	}
}

func TestReplaceUses(t *testing.T) {
	in := BinI(Add, 3, R(1), R(1))
	if n := in.ReplaceUses(1, C(42)); n != 2 {
		t.Errorf("ReplaceUses = %d, want 2", n)
	}
	if _, ok := in.A.IsConst(); !ok {
		t.Error("A not replaced")
	}
	// The destination must not be touched.
	in2 := BinI(Add, 1, R(1), C(2))
	in2.ReplaceUses(1, R(9))
	if in2.Dst != 1 {
		t.Error("destination register must not be rewritten by ReplaceUses")
	}
}

func TestBlockEditing(t *testing.T) {
	f := NewFn("t", 0)
	b := f.Entry()
	r := f.NewReg()
	b.Instrs = append(b.Instrs, MovI(r, C(1)), RetI(R(r)))
	ins := MovI(f.NewReg(), C(2))
	b.Append(ins)
	if b.Instrs[1] != ins {
		t.Error("Append must insert before the terminator")
	}
	if b.Term() == nil || b.Term().Op != Ret {
		t.Error("terminator lost")
	}
	if i := b.Index(ins); i != 1 {
		t.Errorf("Index = %d, want 1", i)
	}
	b.InsertAt(0, MovI(f.NewReg(), C(3)))
	if v, _ := b.Instrs[0].A.IsConst(); v != 3 {
		t.Error("InsertAt(0) failed")
	}
	b.RemoveAt(0)
	if v, _ := b.Instrs[0].A.IsConst(); v != 1 {
		t.Error("RemoveAt(0) failed")
	}
}

func TestSuccs(t *testing.T) {
	f := NewFn("t", 0)
	a := f.Entry()
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	cond := f.NewReg()
	a.Instrs = append(a.Instrs, MovI(cond, C(1)), BranchI(R(cond), b, c))
	b.Instrs = append(b.Instrs, JumpI(c))
	c.Instrs = append(c.Instrs, RetI(Operand{}))
	if s := a.Succs(); len(s) != 2 || s[0] != b || s[1] != c {
		t.Errorf("branch succs wrong: %v", s)
	}
	if s := b.Succs(); len(s) != 1 || s[0] != c {
		t.Errorf("jump succs wrong: %v", s)
	}
	if s := c.Succs(); s != nil {
		t.Errorf("ret should have no succs: %v", s)
	}
}

func TestVerifyCatchesBadShapes(t *testing.T) {
	mk := func() *Fn {
		f := NewFn("t", 1)
		f.Entry().Instrs = append(f.Entry().Instrs, RetI(R(f.Params[0])))
		return f
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("valid fn rejected: %v", err)
	}

	f := mk()
	f.Entry().Instrs = nil
	if err := f.Verify(); err == nil {
		t.Error("empty block accepted")
	}

	f = mk()
	f.Entry().Instrs = append(f.Entry().Instrs, MovI(f.NewReg(), C(0)))
	if err := f.Verify(); err == nil {
		t.Error("terminator in middle accepted")
	}

	f = mk()
	f.Entry().Instrs = []*Instr{MovI(f.NewReg(), C(0))}
	if err := f.Verify(); err == nil {
		t.Error("missing terminator accepted")
	}

	f = mk()
	f.Entry().Instrs = []*Instr{LoadI(f.NewReg(), R(0), 0, 3, false), RetI(C(0))}
	if err := f.Verify(); err == nil {
		t.Error("invalid width accepted")
	}

	f = mk()
	f.Entry().Instrs = []*Instr{MovI(999, C(0)), RetI(C(0))}
	if err := f.Verify(); err == nil {
		t.Error("register outside pool accepted")
	}

	f = mk()
	other := NewFn("o", 0)
	foreign := other.NewBlock("x")
	f.Entry().Instrs = []*Instr{JumpI(foreign)}
	if err := f.Verify(); err == nil {
		t.Error("jump to foreign block accepted")
	}
}

func TestCloneRegionRewiresInternalEdges(t *testing.T) {
	f := NewFn("t", 1)
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	exit := f.NewBlock("e")
	cond := f.NewReg()
	entry.Instrs = []*Instr{JumpI(header)}
	header.Instrs = []*Instr{MovI(cond, C(1)), BranchI(R(cond), body, exit)}
	body.Instrs = []*Instr{JumpI(header)}
	exit.Instrs = []*Instr{RetI(C(0))}

	m := f.CloneRegion([]*rtlBlockAlias{header, body}, ".copy")
	h2, b2 := m[header], m[body]
	if h2 == nil || b2 == nil {
		t.Fatal("clone missing blocks")
	}
	// Internal edge header->body must point at the copy.
	if h2.Term().Target != b2 {
		t.Error("internal branch edge not rewired to copy")
	}
	// External edge header->exit stays.
	if h2.Term().Else != exit {
		t.Error("external edge should still point at the original exit")
	}
	// The back edge in the copied body points at the copied header.
	if b2.Term().Target != h2 {
		t.Error("back edge not rewired")
	}
	// Mutating the copy must not touch the original.
	h2.Instrs[0].A = C(99)
	if v, _ := header.Instrs[0].A.IsConst(); v != 1 {
		t.Error("clone shares instruction storage with original")
	}
}

// rtlBlockAlias exists to keep the test readable; CloneRegion takes the
// package's Block type.
type rtlBlockAlias = Block

func TestRenameRegs(t *testing.T) {
	f := NewFn("t", 0)
	r1, r2 := f.NewReg(), f.NewReg()
	b := f.Entry()
	b.Instrs = []*Instr{
		BinI(Add, r1, R(r1), C(1)),
		MovI(r2, R(r1)),
		RetI(R(r2)),
	}
	nr := f.NewReg()
	RenameRegs([]*Block{b}, map[Reg]Reg{r1: nr})
	if b.Instrs[0].Dst != nr || b.Instrs[0].A.Reg != nr {
		t.Error("def and self-use not renamed")
	}
	if b.Instrs[1].A.Reg != nr {
		t.Error("use not renamed")
	}
	if b.Instrs[2].A.Reg != r2 {
		t.Error("unrelated register renamed")
	}
}

func TestProgramLookupAndReplace(t *testing.T) {
	f1 := NewFn("f", 0)
	f1.Entry().Instrs = []*Instr{RetI(C(1))}
	p := NewProgram(f1)
	if got, ok := p.Lookup("f"); !ok || got != f1 {
		t.Error("lookup failed")
	}
	f2 := NewFn("f", 0)
	f2.Entry().Instrs = []*Instr{RetI(C(2))}
	p.Add(f2)
	if got, _ := p.Lookup("f"); got != f2 {
		t.Error("Add should replace same-named function")
	}
	if len(p.Fns) != 1 {
		t.Errorf("replacement should not grow Fns: %d", len(p.Fns))
	}
}

func TestEvalBinaryAgainstGo(t *testing.T) {
	err := quick.Check(func(a, b int64) bool {
		checks := []struct {
			op   Op
			want int64
		}{
			{Add, a + b}, {Sub, a - b}, {Mul, a * b},
			{And, a & b}, {Or, a | b}, {Xor, a ^ b},
		}
		for _, c := range checks {
			got, ok := EvalBinary(c.op, a, b, true)
			if !ok || got != c.want {
				return false
			}
		}
		if b != 0 {
			if got, ok := EvalBinary(Div, a, b, false); !ok || got != int64(uint64(a)/uint64(b)) {
				return false
			}
		}
		sh := b & 63
		if got, _ := EvalBinary(Shl, a, sh, false); got != a<<uint(sh) {
			return false
		}
		if got, _ := EvalBinary(Shr, a, sh, true); got != a>>uint(sh) {
			return false
		}
		if got, _ := EvalBinary(SetLT, a, b, true); (got == 1) != (a < b) {
			return false
		}
		if got, _ := EvalBinary(SetLT, a, b, false); (got == 1) != (uint64(a) < uint64(b)) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestEvalDivTraps(t *testing.T) {
	if _, ok := EvalBinary(Div, 5, 0, true); ok {
		t.Error("division by zero must not fold")
	}
	if _, ok := EvalBinary(Rem, 5, 0, false); ok {
		t.Error("remainder by zero must not fold")
	}
	// INT64_MIN / -1 wraps rather than trapping the folder.
	if v, ok := EvalBinary(Div, -1<<63, -1, true); !ok || v != -1<<63 {
		t.Errorf("INT64_MIN/-1 = %d, %v", v, ok)
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	err := quick.Check(func(wide int64, val int64, offRaw uint8, wSel uint8) bool {
		widths := []Width{W1, W2, W4}
		w := widths[int(wSel)%len(widths)]
		maxOff := 8 - int64(w)
		off := int64(offRaw) % (maxOff + 1)
		inserted := EvalInsert(wide, val, off, w)
		got := EvalExtract(inserted, off, w, false)
		want := val & int64(w.Mask())
		if got != want {
			return false
		}
		// Bytes outside the field are untouched.
		for i := int64(0); i < 8; i++ {
			if i >= off && i < off+int64(w) {
				continue
			}
			if EvalExtract(inserted, i, W1, false) != EvalExtract(wide, i, W1, false) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestExtractSignExtends(t *testing.T) {
	// 0xFF at offset 2, extracted signed as a byte, is -1.
	wide := EvalInsert(0, 0xFF, 2, W1)
	if got := EvalExtract(wide, 2, W1, true); got != -1 {
		t.Errorf("signed extract = %d, want -1", got)
	}
	if got := EvalExtract(wide, 2, W1, false); got != 255 {
		t.Errorf("unsigned extract = %d, want 255", got)
	}
}

func TestExtendMatchesGoConversions(t *testing.T) {
	err := quick.Check(func(v int64) bool {
		return Extend(v, W1, true) == int64(int8(v)) &&
			Extend(v, W1, false) == int64(uint8(v)) &&
			Extend(v, W2, true) == int64(int16(v)) &&
			Extend(v, W2, false) == int64(uint16(v)) &&
			Extend(v, W4, true) == int64(int32(v)) &&
			Extend(v, W4, false) == int64(uint32(v)) &&
			Extend(v, W8, true) == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPrinterShapes(t *testing.T) {
	f := NewFn("dot", 2)
	r := f.NewReg()
	f.Entry().Instrs = []*Instr{
		LoadI(r, R(f.Params[0]), 4, W2, true),
		RetI(R(r)),
	}
	s := f.String()
	for _, want := range []string{"func dot(r0, r1)", "M.2s[r0+4]", "ret r2"} {
		if !strings.Contains(s, want) {
			t.Errorf("printer output missing %q:\n%s", want, s)
		}
	}
	dot := f.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "entry") {
		t.Errorf("dot output malformed:\n%s", dot)
	}
}

func TestRedirectEdges(t *testing.T) {
	f := NewFn("t", 0)
	a := f.Entry()
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	a.Instrs = []*Instr{JumpI(b)}
	b.Instrs = []*Instr{RetI(C(0))}
	c.Instrs = []*Instr{RetI(C(1))}
	f.RedirectEdges(b, c)
	if a.Term().Target != c {
		t.Error("edge not redirected")
	}
}
