package rtl

// Evaluation semantics for the pure operations, shared by the constant
// folder, the simulator, and tests so there is a single source of truth.

// EvalBinary computes a binary operation on 64-bit values. ok is false for
// division by zero, which the caller must treat as a run-time trap (the
// folder simply declines to fold).
func EvalBinary(op Op, a, b int64, signed bool) (v int64, ok bool) {
	boolV := func(cond bool) (int64, bool) {
		if cond {
			return 1, true
		}
		return 0, true
	}
	switch op {
	case Add:
		return a + b, true
	case Sub:
		return a - b, true
	case Mul:
		return a * b, true
	case Div:
		if b == 0 {
			return 0, false
		}
		if signed {
			if a == -1<<63 && b == -1 {
				return a, true // wraps, as two's-complement hardware does
			}
			return a / b, true
		}
		return int64(uint64(a) / uint64(b)), true
	case Rem:
		if b == 0 {
			return 0, false
		}
		if signed {
			if a == -1<<63 && b == -1 {
				return 0, true
			}
			return a % b, true
		}
		return int64(uint64(a) % uint64(b)), true
	case And:
		return a & b, true
	case Or:
		return a | b, true
	case Xor:
		return a ^ b, true
	case Shl:
		return a << (uint64(b) & 63), true
	case Shr:
		if signed {
			return a >> (uint64(b) & 63), true
		}
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case SetEQ:
		return boolV(a == b)
	case SetNE:
		return boolV(a != b)
	case SetLT:
		if signed {
			return boolV(a < b)
		}
		return boolV(uint64(a) < uint64(b))
	case SetLE:
		if signed {
			return boolV(a <= b)
		}
		return boolV(uint64(a) <= uint64(b))
	case SetGT:
		if signed {
			return boolV(a > b)
		}
		return boolV(uint64(a) > uint64(b))
	case SetGE:
		if signed {
			return boolV(a >= b)
		}
		return boolV(uint64(a) >= uint64(b))
	}
	return 0, false
}

// EvalExtract pulls the w bytes of a that start at byte offset off (mod 8)
// and extends them per signed.
func EvalExtract(a, off int64, w Width, signed bool) int64 {
	v := uint64(a) >> (uint(off&7) * 8)
	v &= w.Mask()
	if signed && w != W8 {
		shift := 64 - uint(w.Bits())
		return int64(v<<shift) >> shift
	}
	return int64(v)
}

// EvalInsert deposits the low w bytes of val into a at byte offset off
// (mod 8).
func EvalInsert(a, val, off int64, w Width) int64 {
	sh := uint(off&7) * 8
	mask := w.Mask() << sh
	return int64((uint64(a) &^ mask) | ((uint64(val) << sh) & mask))
}

// EvalUnary computes Neg/Not.
func EvalUnary(op Op, a int64) (int64, bool) {
	switch op {
	case Neg:
		return -a, true
	case Not:
		return ^a, true
	}
	return 0, false
}

// Extend sign- or zero-extends the low w bytes of v to 64 bits.
func Extend(v int64, w Width, signed bool) int64 {
	if w == W8 {
		return v
	}
	u := uint64(v) & w.Mask()
	if signed {
		shift := 64 - uint(w.Bits())
		return int64(u<<shift) >> shift
	}
	return int64(u)
}
