package rtl

// Snapshot is the pass pipeline's copy-on-write rollback journal. It shadows
// a function with per-block images — flat value copies of the instructions,
// carved out of one shared arena slab per snapshot — and keeps them in sync
// incrementally: after a successful pass, Update recaptures only the blocks
// the pass actually touched, and a pass that changed nothing costs a
// structural comparison with zero allocations instead of the full deep Clone
// the pipeline used to pay before (and after) every pass.
//
// Rollback correctness deliberately does not depend on passes announcing
// their mutations: dirtiness is detected by exact structural diff against
// the journal, never by a hash or a version counter a pass could forget to
// bump. The faultinject suite proves Restore is byte-identical with the
// Clone-based scheme it replaces.
type Snapshot struct {
	fn         *Fn
	params     []Reg
	frameBytes int
	frameReg   Reg
	nextReg    Reg
	nextBlk    int
	blocks     []blockImage
	index      map[*Block]int // live block -> position in blocks
	arena      []Instr        // shared slab the block images subslice
}

// blockImage is the journal entry for one live block: its identity plus a
// flat value copy of its instructions, held in a capacity-clamped subslice
// of the snapshot's arena. Target/Else pointers inside the copied
// instructions refer to live *Block objects; those objects stay reachable
// through the journal even when a pass unlinks them, so Restore can rewire
// edges without a remapping table.
type blockImage struct {
	live   *Block
	id     int
	name   string
	instrs []Instr
}

// NewSnapshot journals the current state of f. All block images are captured
// into one exactly-sized arena slab: the whole journal is a single
// allocation (plus Call argument copies), not one per block.
func NewSnapshot(f *Fn) *Snapshot {
	s := &Snapshot{fn: f, index: make(map[*Block]int, len(f.Blocks))}
	s.captureHeader()
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	s.arena = make([]Instr, 0, total)
	s.blocks = make([]blockImage, len(f.Blocks))
	for i, b := range f.Blocks {
		s.captureBlock(&s.blocks[i], b)
		s.index[b] = i
	}
	return s
}

// alloc carves an n-instruction image out of the arena, starting a fresh
// slab when the current one is full. The returned slice's capacity is
// clamped to n so a later in-place recapture of one image can never spill
// into its neighbour's region.
func (s *Snapshot) alloc(n int) []Instr {
	if len(s.arena)+n > cap(s.arena) {
		size := 2 * n
		if size < 64 {
			size = 64
		}
		// Old images keep the retired slab alive until they are recaptured;
		// the waste is bounded by one generation of the journal.
		s.arena = make([]Instr, 0, size)
	}
	off := len(s.arena)
	s.arena = s.arena[:off+n]
	return s.arena[off : off+n : off+n]
}

func (s *Snapshot) captureHeader() {
	f := s.fn
	s.params = append(s.params[:0], f.Params...)
	s.frameBytes = f.FrameBytes
	s.frameReg = f.FrameReg
	s.nextReg = f.nextReg
	s.nextBlk = f.nextBlk
}

// captureBlock (re)images one block. Instruction values are copied into the
// block's existing arena region when they still fit, or a fresh arena
// carve-out when the block grew; Call argument slices are the only
// per-instruction allocation, and only when present.
func (s *Snapshot) captureBlock(img *blockImage, b *Block) {
	img.live = b
	img.id = b.ID
	img.name = b.Name
	if cap(img.instrs) < len(b.Instrs) {
		img.instrs = s.alloc(len(b.Instrs))
	} else {
		img.instrs = img.instrs[:len(b.Instrs)]
	}
	for i, in := range b.Instrs {
		img.instrs[i] = *in
		if in.Args != nil {
			img.instrs[i].Args = append([]Operand(nil), in.Args...)
		}
	}
}

// instrEqual reports whether the live instruction matches its journal image
// exactly. Target/Else compare by pointer: the image holds live block
// pointers, so a retargeted edge is always detected.
func instrEqual(img *Instr, in *Instr) bool {
	if img.Op != in.Op || img.Dst != in.Dst ||
		img.A != in.A || img.B != in.B || img.C != in.C ||
		img.Width != in.Width || img.Signed != in.Signed || img.Disp != in.Disp ||
		img.Target != in.Target || img.Else != in.Else ||
		img.Callee != in.Callee || len(img.Args) != len(in.Args) {
		return false
	}
	for i := range img.Args {
		if img.Args[i] != in.Args[i] {
			return false
		}
	}
	return true
}

// blockClean reports whether b still matches its image.
func blockClean(img *blockImage, b *Block) bool {
	if img.id != b.ID || img.name != b.Name || len(img.instrs) != len(b.Instrs) {
		return false
	}
	for i, in := range b.Instrs {
		if !instrEqual(&img.instrs[i], in) {
			return false
		}
	}
	return true
}

// Update re-journals the function after a successful pass and returns how
// many blocks had to be recaptured. Unchanged blocks cost one comparison
// sweep and no allocations; only dirty blocks pay the copy. The block list
// itself is rebuilt only when the pass added, removed, or reordered blocks.
func (s *Snapshot) Update() (dirty int) {
	f := s.fn
	s.captureHeader()

	structural := len(f.Blocks) != len(s.blocks)
	if !structural {
		for i, b := range f.Blocks {
			if s.blocks[i].live != b {
				structural = true
				break
			}
		}
	}
	if !structural {
		for i, b := range f.Blocks {
			if !blockClean(&s.blocks[i], b) {
				s.captureBlock(&s.blocks[i], b)
				dirty++
			}
		}
		return dirty
	}

	// The pass changed the block list: rebuild it, carrying over the images
	// of surviving clean blocks so they are not recopied.
	blocks := make([]blockImage, len(f.Blocks))
	for i, b := range f.Blocks {
		if j, ok := s.index[b]; ok && blockClean(&s.blocks[j], b) {
			blocks[i] = s.blocks[j]
		} else {
			s.captureBlock(&blocks[i], b)
			dirty++
		}
	}
	s.blocks = blocks
	clear(s.index)
	for i, b := range f.Blocks {
		s.index[b] = i
	}
	return dirty
}

// Restore rolls the function back to the journaled state in place, so every
// existing pointer to the function observes the rollback — the same contract
// Fn.Restore gives the pipeline, at O(journal) cost. Blocks the failed pass
// removed are relinked (their objects live on in the journal), blocks it
// added are dropped, and every instruction is rebuilt from its image. The
// snapshot remains valid: a later pass can fail and Restore again.
func (s *Snapshot) Restore() {
	f := s.fn
	f.Params = append(f.Params[:0], s.params...)
	f.FrameBytes = s.frameBytes
	f.FrameReg = s.frameReg
	f.nextReg = s.nextReg
	f.nextBlk = s.nextBlk
	if cap(f.Blocks) < len(s.blocks) {
		f.Blocks = make([]*Block, len(s.blocks))
	} else {
		f.Blocks = f.Blocks[:len(s.blocks)]
	}
	for i := range s.blocks {
		img := &s.blocks[i]
		b := img.live
		b.ID = img.id
		b.Name = img.name
		b.Instrs = make([]*Instr, len(img.instrs))
		for j := range img.instrs {
			in := img.instrs[j]
			if in.Args != nil {
				in.Args = append([]Operand(nil), in.Args...)
			}
			b.Instrs[j] = &in
		}
		f.Blocks[i] = b
	}
}

// Fn returns the function the snapshot journals.
func (s *Snapshot) Fn() *Fn { return s.fn }
