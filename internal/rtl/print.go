package rtl

import (
	"fmt"
	"strings"
)

// String renders the instruction in a compact assembly-like syntax that
// echoes the register transfer lists in Figure 1 of the paper.
func (in *Instr) String() string {
	suffix := func() string {
		s := fmt.Sprintf(".%d", int(in.Width))
		if in.Signed {
			s += "s"
		} else {
			s += "u"
		}
		return s
	}
	mem := func() string {
		if d, ok := in.A.IsConst(); ok {
			return fmt.Sprintf("[%d]", d+in.Disp)
		}
		if in.Disp == 0 {
			return fmt.Sprintf("[%s]", in.A)
		}
		if in.Disp < 0 {
			return fmt.Sprintf("[%s-%d]", in.A, -in.Disp)
		}
		return fmt.Sprintf("[%s+%d]", in.A, in.Disp)
	}
	switch in.Op {
	case Nop:
		return "nop"
	case Mov:
		return fmt.Sprintf("%s = %s", in.Dst, in.A)
	case Neg:
		return fmt.Sprintf("%s = -%s", in.Dst, in.A)
	case Not:
		return fmt.Sprintf("%s = ~%s", in.Dst, in.A)
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		sym := map[Op]string{Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
			And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>"}[in.Op]
		sign := ""
		if (in.Op == Div || in.Op == Rem || in.Op == Shr) && !in.Signed {
			sign = "u"
		}
		return fmt.Sprintf("%s = %s %s%s %s", in.Dst, in.A, sym, sign, in.B)
	case SetEQ, SetNE, SetLT, SetLE, SetGT, SetGE:
		sym := map[Op]string{SetEQ: "==", SetNE: "!=", SetLT: "<", SetLE: "<=",
			SetGT: ">", SetGE: ">="}[in.Op]
		sign := ""
		if in.Op >= SetLT && !in.Signed {
			sign = "u"
		}
		return fmt.Sprintf("%s = %s %s%s %s", in.Dst, in.A, sym, sign, in.B)
	case Load:
		return fmt.Sprintf("%s = M%s%s", in.Dst, suffix(), mem())
	case Store:
		return fmt.Sprintf("M.%d%s = %s", int(in.Width), mem(), in.B)
	case Extract:
		return fmt.Sprintf("%s = extract%s %s @%s", in.Dst, suffix(), in.A, in.B)
	case Insert:
		return fmt.Sprintf("%s = insert.%d %s <- %s @%s", in.Dst, int(in.Width), in.A, in.B, in.C)
	case Jump:
		return fmt.Sprintf("jump %s", in.Target)
	case Branch:
		return fmt.Sprintf("if %s goto %s else %s", in.A, in.Target, in.Else)
	case Ret:
		if in.A.Kind == KindNone {
			return "ret"
		}
		return fmt.Sprintf("ret %s", in.A)
	case Call:
		var args []string
		for _, a := range in.Args {
			args = append(args, a.String())
		}
		callStr := fmt.Sprintf("%s(%s)", in.Callee, strings.Join(args, ", "))
		if in.Dst == NoReg {
			return callStr
		}
		return fmt.Sprintf("%s = %s", in.Dst, callStr)
	}
	return in.Op.String()
}

// String renders the whole function, one block per label. A function that
// carries a spill frame (regalloc ran) prints it in the header so the
// textual form stays lossless: `func f(r0, r1) frame 24 @r7 {`.
func (f *Fn) String() string {
	var sb strings.Builder
	var params []string
	for _, p := range f.Params {
		params = append(params, p.String())
	}
	if f.FrameBytes != 0 {
		fmt.Fprintf(&sb, "func %s(%s) frame %d @%s {\n",
			f.Name, strings.Join(params, ", "), f.FrameBytes, f.FrameReg)
	} else {
		fmt.Fprintf(&sb, "func %s(%s) {\n", f.Name, strings.Join(params, ", "))
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders the whole program: one `global` directive per static data
// object followed by every function. ParseProgram reads this format back,
// and the round trip is lossless — the content-addressed compile cache's
// disk tier depends on it.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s @%d size %d", g.Name, g.Addr, g.Size)
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " init %x", g.Init)
		}
		sb.WriteByte('\n')
	}
	for _, f := range p.Fns {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Dot renders the function's control-flow graph in Graphviz DOT syntax,
// used to visualise the Figure-5 flow graph (alignment/alias checks feeding
// either the coalesced or the original safe loop).
func (f *Fn) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", f.Name)
	sb.WriteString("\tnode [shape=box fontname=\"monospace\"];\n")
	for _, b := range f.Blocks {
		var lines []string
		for _, in := range b.Instrs {
			lines = append(lines, in.String())
		}
		label := b.String() + ":\\l" + strings.Join(lines, "\\l") + "\\l"
		label = strings.ReplaceAll(label, `"`, `\"`)
		fmt.Fprintf(&sb, "\t%q [label=\"%s\"];\n", b.String(), label)
		for i, s := range b.Succs() {
			edge := ""
			if t := b.Term(); t != nil && t.Op == Branch {
				if i == 0 {
					edge = " [label=\"T\"]"
				} else {
					edge = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&sb, "\t%q -> %q%s;\n", b.String(), s.String(), edge)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
