// Predecoded execution core. The interpreter used to walk the RTL object
// graph on every dynamic instruction: a map lookup per fetch for the static
// address, a SrcOperands() slice allocation per instruction for operand
// readiness, and cost-table lookups per execution. Decoding happens once per
// Sim instead: each function is compiled into a dense []dInstr array with
// resolved block indices, operand slots, precomputed Exec-table costs, and
// precomputed instruction-cache geometry. The decoded image is retained
// across Reset() and every subsequent Run, so repeated measurements pay the
// decode exactly once.
package sim

import (
	"fmt"

	"macc/internal/rtl"
)

// opBadBlock is the sentinel appended after a block that does not end in a
// terminator: executing past the block's last instruction traps, exactly as
// the object-graph interpreter did, without consuming fuel or statistics.
const opBadBlock rtl.Op = 0xFF

// Operand slot register sentinels.
const (
	constSrc  int32 = -1 // slot holds a constant, read val
	absentSrc int32 = -2 // operand not present (Ret with no value)
)

// dOp is a decoded operand slot: a register index, or a constant when
// reg == constSrc.
type dOp struct {
	reg int32
	val int64
}

// dInstr is one predecoded instruction. Everything the hot loop needs is
// resolved: costs from the machine's Exec table, icache line and set for the
// static address, register source slots for readiness tracking, and branch
// targets as block indices.
type dInstr struct {
	op         rtl.Op
	width      rtl.Width
	signed     bool
	nsrc       uint8    // live entries in srcs
	dst        int32    // destination register, -1 when none
	srcs       [3]int32 // register sources (readiness); Call reads args instead
	a, b, c    dOp
	disp       int64
	lat        int64 // Exec latency
	occ        int64 // Exec occupancy (pipelined machines)
	iline      int64 // icache line of the static address
	iset       int32 // icache set of that line
	target     int32 // taken-branch block index
	els        int32 // fall-through block index
	callee     *dFn
	calleeName string
	args       []dOp
}

// dBlock ties a decoded block to its code range, plus the name and length
// the profiler reports. The decoded image carries everything the profiler
// needs, so profiling works identically whether the Sim was built from the
// pointer graph (New) or from a flat image (NewFlat).
type dBlock struct {
	name   string
	start  int32 // index of the block's first instruction in dFn.code
	ninstr int32 // source instructions in the block (sentinels excluded)
}

// dFn is one predecoded function.
type dFn struct {
	name       string
	params     []int32
	nregs      int
	frameBytes int64
	frameReg   int32
	code       []dInstr
	blocks     []dBlock // real blocks followed by one phantom entry
	execs      []int64  // per-block execution counts; nil unless profiling
}

// image is a fully decoded program.
type image struct {
	fns    []*dFn
	byName map[string]*dFn
}

func decodeOperand(o rtl.Operand) dOp {
	switch o.Kind {
	case rtl.KindReg:
		return dOp{reg: int32(o.Reg)}
	case rtl.KindConst:
		return dOp{reg: constSrc, val: o.Const}
	default:
		return dOp{reg: absentSrc}
	}
}

// decode compiles the program against the simulator's machine model. Static
// instruction addresses are assigned in the same function-by-function,
// block-by-block order the interpreter used (sentinels get no address), so
// instruction-cache behaviour is bit-identical with the previous core.
func (s *Sim) decode(prog *rtl.Program) *image {
	img := &image{byName: make(map[string]*dFn, len(prog.Fns))}
	for _, f := range prog.Fns {
		df := &dFn{
			name:       f.Name,
			nregs:      f.NumRegs(),
			frameBytes: int64(f.FrameBytes),
			frameReg:   int32(f.FrameReg),
		}
		for _, p := range f.Params {
			df.params = append(df.params, int32(p))
		}
		img.fns = append(img.fns, df)
		img.byName[f.Name] = df
	}
	costs := &s.mach.Exec
	nsets := int64(len(s.icache))
	addr := int64(0)
	for fi, f := range prog.Fns {
		df := img.fns[fi]
		blockIdx := make(map[*rtl.Block]int32, len(f.Blocks))
		for bi, b := range f.Blocks {
			blockIdx[b] = int32(bi)
			df.blocks = append(df.blocks, dBlock{name: b.Name, ninstr: int32(len(b.Instrs))})
		}
		// Index len(f.Blocks) is the phantom block: an edge that leaves the
		// function (a malformed program) lands here and traps on the next
		// step, after the branch itself executed — the same accounting the
		// object-graph interpreter had.
		phantom := int32(len(f.Blocks))
		target := func(b *rtl.Block) int32 {
			if idx, ok := blockIdx[b]; ok {
				return idx
			}
			return phantom
		}
		for bi, b := range f.Blocks {
			df.blocks[bi].start = int32(len(df.code))
			for _, in := range b.Instrs {
				line := addr / icacheLineBytes
				d := dInstr{
					op:     in.Op,
					width:  in.Width,
					signed: in.Signed,
					dst:    int32(in.Dst),
					a:      decodeOperand(in.A),
					b:      decodeOperand(in.B),
					c:      decodeOperand(in.C),
					disp:   in.Disp,
					lat:    int64(costs.Of(in)),
					occ:    int64(costs.OccOf(in)),
					iline:  line,
					iset:   int32(line % nsets),
				}
				addr += int64(s.mach.BytesPerInstr)
				for _, o := range in.SrcOperands() {
					if r, ok := o.IsReg(); ok && in.Op != rtl.Call {
						d.srcs[d.nsrc] = int32(r)
						d.nsrc++
					}
				}
				if in.Target != nil {
					d.target = target(in.Target)
				}
				if in.Else != nil {
					d.els = target(in.Else)
				}
				if in.Op == rtl.Call {
					d.calleeName = in.Callee
					d.callee = img.byName[in.Callee] // nil traps at execution
					for _, a := range in.Args {
						d.args = append(d.args, decodeOperand(a))
					}
				}
				df.code = append(df.code, d)
			}
			// Sentinel: running past the last instruction of the block (no
			// terminator, or an empty block) traps.
			df.code = append(df.code, dInstr{op: opBadBlock})
		}
		df.blocks = append(df.blocks, dBlock{start: int32(len(df.code))})
		df.code = append(df.code, dInstr{op: opBadBlock})
	}
	return img
}

// decodeFlat compiles a flat program image directly against the machine
// model, without materializing the pointer graph. Static addresses are
// assigned in the same function-by-function, block-by-block, instruction-by-
// instruction order as decode (sentinels get no address), and flat blocks
// tile the instruction arrays in exactly that order, so the decoded image —
// including instruction-cache geometry — is bit-identical to decoding the
// unflattened program. Flatten rejects edges that leave the function, so
// only the phantom slot appended per function mirrors decode's layout; no
// flat edge can reach it.
func (s *Sim) decodeFlat(fp *rtl.FlatProgram) *image {
	img := &image{byName: make(map[string]*dFn, len(fp.Fns))}
	for i := range fp.Fns {
		f := &fp.Fns[i]
		df := &dFn{
			name:       fp.SymName(f.Name),
			nregs:      int(f.NextReg),
			frameBytes: f.FrameBytes,
			frameReg:   int32(f.FrameReg),
		}
		for _, p := range f.Params {
			df.params = append(df.params, int32(p))
		}
		img.fns = append(img.fns, df)
		img.byName[df.name] = df
	}
	costs := &s.mach.Exec
	nsets := int64(len(s.icache))
	addr := int64(0)
	for fi := range fp.Fns {
		f := &fp.Fns[fi]
		df := img.fns[fi]
		for bi := range f.Blocks {
			fb := &f.Blocks[bi]
			df.blocks = append(df.blocks, dBlock{
				name:   fp.SymName(fb.Name),
				start:  int32(len(df.code)),
				ninstr: fb.InstrEnd - fb.InstrStart,
			})
			for i := fb.InstrStart; i < fb.InstrEnd; i++ {
				// Reconstruct one instruction record so the machine's cost
				// table and the operand-source rules are shared verbatim
				// with the graph decoder.
				in := &rtl.Instr{
					Op:     f.Op[i],
					Dst:    f.Dst[i],
					A:      f.A[i],
					B:      f.B[i],
					C:      f.C[i],
					Width:  f.Width[i],
					Signed: f.Signed[i],
					Disp:   f.Disp[i],
				}
				line := addr / icacheLineBytes
				d := dInstr{
					op:     in.Op,
					width:  in.Width,
					signed: in.Signed,
					dst:    int32(in.Dst),
					a:      decodeOperand(in.A),
					b:      decodeOperand(in.B),
					c:      decodeOperand(in.C),
					disp:   in.Disp,
					lat:    int64(costs.Of(in)),
					occ:    int64(costs.OccOf(in)),
					iline:  line,
					iset:   int32(line % nsets),
				}
				addr += int64(s.mach.BytesPerInstr)
				if in.Op != rtl.Call {
					for _, o := range in.SrcOperands() {
						if r, ok := o.IsReg(); ok {
							d.srcs[d.nsrc] = int32(r)
							d.nsrc++
						}
					}
				}
				if t := f.Target[i]; t >= 0 {
					d.target = t
				}
				if e := f.Else[i]; e >= 0 {
					d.els = e
				}
				if ci := f.CallIdx[i]; ci >= 0 {
					c := &f.Calls[ci]
					d.calleeName = fp.SymName(c.Callee)
					d.callee = img.byName[d.calleeName] // nil traps at execution
					for _, a := range f.Args[c.ArgStart:c.ArgEnd] {
						d.args = append(d.args, decodeOperand(a))
					}
				}
				df.code = append(df.code, d)
			}
			df.code = append(df.code, dInstr{op: opBadBlock})
		}
		df.blocks = append(df.blocks, dBlock{start: int32(len(df.code))})
		df.code = append(df.code, dInstr{op: opBadBlock})
	}
	return img
}

// exec is the hot loop: it interprets one decoded function, mirroring the
// cycle accounting of the object-graph interpreter exactly (issue when
// operands are ready, occupancy vs latency on pipelined machines, cache
// stalls added to both clock and result-ready time for loads).
func (s *Sim) exec(df *dFn, args []int64, depth int) (ret int64, cycles int64, err error) {
	if depth > maxCallDepth {
		return 0, 0, &Trap{Kind: TrapBadProgram, Fn: df.name, Msg: "call depth exceeded"}
	}
	if len(args) != len(df.params) {
		return 0, 0, &Trap{Kind: TrapBadProgram, Fn: df.name,
			Msg: fmt.Sprintf("expected %d arguments, got %d", len(df.params), len(args))}
	}
	fr := s.frames.get(df.nregs)
	defer s.frames.put(fr)
	regs, ready := fr.regs, fr.ready
	for i, p := range df.params {
		regs[p] = args[i]
	}
	if df.frameBytes > 0 {
		s.stackTop -= df.frameBytes
		if s.stackTop < 0 {
			return 0, 0, &Trap{Kind: TrapOutOfBounds, Fn: df.name, Addr: s.stackTop,
				Msg: "stack overflow"}
		}
		regs[df.frameReg] = s.stackTop
		defer func() { s.stackTop += df.frameBytes }()
	}
	val := func(o dOp) int64 {
		if o.reg >= 0 {
			return regs[o.reg]
		}
		return o.val
	}
	pipelined := s.mach.Pipelined
	icache := s.icache
	ipenalty := int64(s.mach.ICacheMissPenalty)
	clock := int64(0)
	code := df.code
	pc := df.blocks[0].start
	if s.profiling {
		df.execs[0]++
	}
	for {
		d := &code[pc]
		if d.op == opBadBlock {
			return 0, clock, &Trap{Kind: TrapBadProgram, Fn: df.name, Msg: "block without terminator"}
		}
		if s.fuel--; s.fuel < 0 {
			return 0, clock, &Trap{Kind: TrapFuel, Fn: df.name}
		}
		s.stats.Instrs++
		if icache[d.iset] != d.iline {
			icache[d.iset] = d.iline
			s.stats.ICacheMisses++
			clock += ipenalty
		}

		// Issue when the operands are ready.
		issue := clock
		if d.op == rtl.Call {
			for i := range d.args {
				if r := d.args[i].reg; r >= 0 && ready[r] > issue {
					issue = ready[r]
				}
			}
		} else {
			for k := uint8(0); k < d.nsrc; k++ {
				if r := d.srcs[k]; ready[r] > issue {
					issue = ready[r]
				}
			}
		}
		if pipelined {
			clock = issue + d.occ
		} else {
			clock = issue + d.lat
		}
		done := issue + d.lat

		switch d.op {
		case rtl.Nop:
		case rtl.Mov:
			regs[d.dst] = val(d.a)
			ready[d.dst] = done
		case rtl.Neg:
			regs[d.dst] = -val(d.a)
			ready[d.dst] = done
		case rtl.Not:
			regs[d.dst] = ^val(d.a)
			ready[d.dst] = done
		case rtl.Load:
			addr := val(d.a) + d.disp
			v, trap := s.load(df.name, addr, d.width, d.signed)
			if trap != nil {
				return 0, clock, trap
			}
			s.stats.Loads++
			s.loadsW[d.width]++
			if stall := s.dcacheAccess(addr, d.width); stall > 0 {
				clock += stall
				done += stall
			}
			regs[d.dst] = v
			ready[d.dst] = done
		case rtl.Store:
			addr := val(d.a) + d.disp
			if trap := s.store(df.name, addr, d.width, val(d.b)); trap != nil {
				return 0, clock, trap
			}
			s.stats.Stores++
			s.storesW[d.width]++
			if stall := s.dcacheAccess(addr, d.width); stall > 0 {
				clock += stall
			}
		case rtl.Extract:
			regs[d.dst] = rtl.EvalExtract(val(d.a), val(d.b), d.width, d.signed)
			ready[d.dst] = done
		case rtl.Insert:
			regs[d.dst] = rtl.EvalInsert(val(d.a), val(d.b), val(d.c), d.width)
			ready[d.dst] = done
		case rtl.Jump:
			s.stats.Branches++
			pc = df.blocks[d.target].start
			if s.profiling {
				df.execs[d.target]++
			}
			continue
		case rtl.Branch:
			s.stats.Branches++
			bi := d.els
			if val(d.a) != 0 {
				bi = d.target
			}
			pc = df.blocks[bi].start
			if s.profiling {
				df.execs[bi]++
			}
			continue
		case rtl.Ret:
			s.stats.Cycles += clock
			if d.a.reg == absentSrc {
				return 0, clock, nil
			}
			return val(d.a), clock, nil
		case rtl.Call:
			if d.callee == nil {
				return 0, clock, &Trap{Kind: TrapBadProgram, Fn: df.name,
					Msg: "call to undefined function " + d.calleeName}
			}
			var cargs []int64
			for i := range d.args {
				cargs = append(cargs, val(d.args[i]))
			}
			rv, sub, cerr := s.exec(d.callee, cargs, depth+1)
			if cerr != nil {
				return 0, clock, cerr
			}
			// The callee added its own cycles to stats.Cycles at Ret; account
			// for them inline in the caller's clock instead.
			s.stats.Cycles -= sub
			clock = done + sub
			if d.dst >= 0 {
				regs[d.dst] = rv
				ready[d.dst] = clock
			}
		default:
			if d.op.IsBinary() {
				v, ok := rtl.EvalBinary(d.op, val(d.a), val(d.b), d.signed)
				if !ok {
					return 0, clock, &Trap{Kind: TrapDivideByZero, Fn: df.name}
				}
				regs[d.dst] = v
				ready[d.dst] = done
			} else {
				return 0, clock, &Trap{Kind: TrapBadProgram, Fn: df.name,
					Msg: "unknown opcode " + d.op.String()}
			}
		}
		pc++
	}
}

// frameCache recycles register/ready frames across calls and Runs, so a
// measurement loop does not reallocate two slices per simulated call.
type frameCache struct {
	free []*frame
}

type frame struct {
	regs  []int64
	ready []int64
}

func (c *frameCache) get(nregs int) *frame {
	if n := len(c.free); n > 0 {
		fr := c.free[n-1]
		c.free = c.free[:n-1]
		if cap(fr.regs) >= nregs {
			fr.regs = fr.regs[:nregs]
			fr.ready = fr.ready[:nregs]
			clear(fr.regs)
			clear(fr.ready)
			return fr
		}
	}
	return &frame{regs: make([]int64, nregs), ready: make([]int64, nregs)}
}

func (c *frameCache) put(fr *frame) { c.free = append(c.free, fr) }
