package sim_test

import (
	"testing"

	"macc/internal/machine"
	"macc/internal/minic"
	"macc/internal/rtl"
	"macc/internal/sim"
)

func compile(t *testing.T, src string) *rtl.Program {
	t.Helper()
	prog, err := minic.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func run(t *testing.T, prog *rtl.Program, fn string, args ...int64) sim.Result {
	t.Helper()
	s := sim.New(prog, machine.Alpha(), 1<<20)
	res, err := s.Run(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	prog := compile(t, `
		long f(long a, long b) { return (a + b) * 3 - a / b; }
	`)
	res := run(t, prog, "f", 10, 3)
	if want := int64((10+3)*3 - 10/3); res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}

func TestDotProduct(t *testing.T) {
	// The paper's Figure 1a kernel.
	prog := compile(t, `
		int dotproduct(short a[], short b[], int n) {
			int c, i;
			c = 0;
			for (i = 0; i < n; i++)
				c += a[i] * b[i];
			return c;
		}
	`)
	s := sim.New(prog, machine.Alpha(), 1<<20)
	a := []int64{1, -2, 3, 4, 5, 6, 7, -8}
	b := []int64{2, 3, -4, 5, 6, 7, 8, 9}
	s.WriteInts(0, rtl.W2, a)
	s.WriteInts(1024, rtl.W2, b)
	res, err := s.Run("dotproduct", 0, 1024, int64(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := range a {
		want += a[i] * b[i]
	}
	if res.Ret != want {
		t.Errorf("dot product = %d, want %d", res.Ret, want)
	}
	if res.Loads != int64(2*len(a)) {
		t.Errorf("loads = %d, want %d", res.Loads, 2*len(a))
	}
}

func TestLoopsAndConditionals(t *testing.T) {
	prog := compile(t, `
		long collatzSteps(long n) {
			long steps = 0;
			while (n != 1) {
				if (n % 2 == 0) n = n / 2;
				else n = 3 * n + 1;
				steps++;
			}
			return steps;
		}
	`)
	if got := run(t, prog, "collatzSteps", 27).Ret; got != 111 {
		t.Errorf("collatz(27) = %d, want 111", got)
	}
}

func TestNarrowStoreTruncates(t *testing.T) {
	prog := compile(t, `
		void f(char *p, int v) { p[0] = v; }
		int g(char *p) { return p[0]; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	if _, err := s.Run("f", 100, 0x1FF); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run("g", 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != -1 { // 0xFF sign-extends to -1 through signed char
		t.Errorf("got %d, want -1", res.Ret)
	}
}

func TestUnsignedLoad(t *testing.T) {
	prog := compile(t, `
		long f(unsigned char *p) { return p[0]; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	s.Mem[50] = 0xFF
	res, err := s.Run("f", 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 255 {
		t.Errorf("got %d, want 255", res.Ret)
	}
}

func TestAlignmentTrap(t *testing.T) {
	prog := compile(t, `
		long f(long *p) { return p[0]; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	if _, err := s.Run("f", 3); !sim.IsTrap(err, sim.TrapAlignment) {
		t.Errorf("expected alignment trap, got %v", err)
	}
	// The 68030 model tolerates misalignment.
	s2 := sim.New(prog, machine.M68030(), 4096)
	if _, err := s2.Run("f", 3); err != nil {
		t.Errorf("m68030 should allow misaligned access, got %v", err)
	}
}

func TestOutOfBoundsTrap(t *testing.T) {
	prog := compile(t, `
		long f(long *p) { return p[0]; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	if _, err := s.Run("f", 4096); !sim.IsTrap(err, sim.TrapOutOfBounds) {
		t.Errorf("expected bounds trap, got %v", err)
	}
	if _, err := s.Run("f", -8); !sim.IsTrap(err, sim.TrapOutOfBounds) {
		t.Errorf("expected bounds trap for negative address, got %v", err)
	}
}

func TestDivideByZeroTrap(t *testing.T) {
	prog := compile(t, `
		long f(long a, long b) { return a / b; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	if _, err := s.Run("f", 1, 0); !sim.IsTrap(err, sim.TrapDivideByZero) {
		t.Errorf("expected divide trap, got %v", err)
	}
}

func TestFuelTrap(t *testing.T) {
	prog := compile(t, `
		long f() { long i = 0; while (1) { i++; } return i; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	s.Fuel = 1000
	if _, err := s.Run("f"); !sim.IsTrap(err, sim.TrapFuel) {
		t.Errorf("expected fuel trap, got %v", err)
	}
}

func TestCalls(t *testing.T) {
	prog := compile(t, `
		long square(long x) { return x * x; }
		long sumsq(long a, long b) { return square(a) + square(b); }
	`)
	if got := run(t, prog, "sumsq", 3, 4).Ret; got != 25 {
		t.Errorf("sumsq = %d, want 25", got)
	}
}

func TestRecursion(t *testing.T) {
	prog := compile(t, `
		long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
	`)
	if got := run(t, prog, "fib", 15).Ret; got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not execute when the left is false;
	// here it would trap (division by zero).
	prog := compile(t, `
		long f(long a, long b) {
			if (a != 0 && 10 / a > b) return 1;
			return 0;
		}
	`)
	if got := run(t, prog, "f", 0, 5).Ret; got != 0 {
		t.Errorf("short-circuit failed, got %d", got)
	}
	if got := run(t, prog, "f", 1, 5).Ret; got != 1 {
		t.Errorf("got %d, want 1", got)
	}
}

func TestTernaryAndUnary(t *testing.T) {
	prog := compile(t, `
		long f(long a, long b) { return a < b ? -a : ~b; }
	`)
	if got := run(t, prog, "f", 1, 2).Ret; got != -1 {
		t.Errorf("got %d, want -1", got)
	}
	if got := run(t, prog, "f", 5, 2).Ret; got != ^int64(2) {
		t.Errorf("got %d, want %d", got, ^int64(2))
	}
}

func TestPointerArithmetic(t *testing.T) {
	prog := compile(t, `
		long f(short *p, long n) {
			long sum = 0;
			short *end = p + n;
			while (p < end) { sum += *p; p++; }
			return sum;
		}
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	s.WriteInts(0, rtl.W2, []int64{5, -3, 7, 100})
	res, err := s.Run("f", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 109 {
		t.Errorf("got %d, want 109", res.Ret)
	}
}

func TestCyclesMonotonic(t *testing.T) {
	prog := compile(t, `
		long f(long n) { long i, s = 0; for (i = 0; i < n; i++) s += i; return s; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	r10, err := s.Run("f", 10)
	if err != nil {
		t.Fatal(err)
	}
	r100, err := s.Run("f", 100)
	if err != nil {
		t.Fatal(err)
	}
	if r100.Cycles <= r10.Cycles {
		t.Errorf("cycles should grow with trip count: %d vs %d", r10.Cycles, r100.Cycles)
	}
	if r10.Ret != 45 || r100.Ret != 4950 {
		t.Errorf("wrong sums: %d, %d", r10.Ret, r100.Ret)
	}
}

func TestUnpipelinedCostsMore(t *testing.T) {
	src := `
		long f(long n) { long i, s = 0; for (i = 0; i < n; i++) s += i * 3; return s; }
	`
	prog := compile(t, src)
	fast := sim.New(prog, machine.Alpha(), 4096)
	rf, err := fast.Run("f", 50)
	if err != nil {
		t.Fatal(err)
	}
	prog2 := compile(t, src)
	slow := sim.New(prog2, machine.M68030(), 4096)
	rs, err := slow.Run("f", 50)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles <= rf.Cycles {
		t.Errorf("the unpipelined CISC should be slower: alpha=%d m68030=%d", rf.Cycles, rs.Cycles)
	}
}

func TestStatsCounters(t *testing.T) {
	prog := compile(t, `
		void copy(int *dst, int *src, long n) {
			long i;
			for (i = 0; i < n; i++) dst[i] = src[i];
		}
	`)
	s := sim.New(prog, machine.Alpha(), 1<<16)
	res, err := s.Run("copy", 0, 4096, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loads != 100 || res.Stores != 100 {
		t.Errorf("loads=%d stores=%d, want 100/100", res.Loads, res.Stores)
	}
	if res.LoadsByWidth[rtl.W4] != 100 {
		t.Errorf("W4 loads = %d, want 100", res.LoadsByWidth[rtl.W4])
	}
	if res.MemRefs() != 200 {
		t.Errorf("memrefs = %d, want 200", res.MemRefs())
	}
}

func TestMemHelpersRoundTrip(t *testing.T) {
	prog := compile(t, `long id(long x) { return x; }`)
	s := sim.New(prog, machine.Alpha(), 4096)
	vals := []int64{1, -1, 32767, -32768, 255}
	s.WriteInts(64, rtl.W2, vals)
	got := s.ReadInts(64, rtl.W2, len(vals), true)
	for i := range vals {
		want := rtl.Extend(vals[i], rtl.W2, true)
		if got[i] != want {
			t.Errorf("idx %d: got %d, want %d", i, got[i], want)
		}
	}
	s.WriteBytes(200, []byte{1, 2, 3})
	if b := s.ReadBytes(200, 3); b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Errorf("byte round trip failed: %v", b)
	}
}

func TestDCacheModel(t *testing.T) {
	// Sequential byte loads over one 16-byte line: 1 miss, 15 hits.
	prog := compile(t, `
		long f(unsigned char *p, long n) {
			long i, s = 0;
			for (i = 0; i < n; i++) s += p[i];
			return s;
		}
	`)
	m := machine.Alpha()
	s := sim.New(prog, m, 1<<14)
	res, err := s.Run("f", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.DCacheMisses != 1 {
		t.Errorf("16 sequential bytes should miss once, got %d", res.DCacheMisses)
	}
	// Strided accesses hitting a new line each time: one miss per access.
	prog2 := compile(t, `
		long g(unsigned char *p, long n) {
			long i, s = 0;
			for (i = 0; i < n; i++) s += p[i*64];
			return s;
		}
	`)
	s2 := sim.New(prog2, m, 1<<14)
	res2, err := s2.Run("g", 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DCacheMisses != 16 {
		t.Errorf("64-byte strided loads should miss every time, got %d", res2.DCacheMisses)
	}
	if res2.Cycles <= res.Cycles {
		t.Error("thrashing access pattern should cost more cycles")
	}
}

func TestDCacheDisabled(t *testing.T) {
	prog := compile(t, `long f(long *p) { return p[0]; }`)
	m := machine.Alpha()
	m.DCacheBytes = 0
	s := sim.New(prog, m, 4096)
	res, err := s.Run("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DCacheMisses != 0 {
		t.Errorf("disabled dcache recorded %d misses", res.DCacheMisses)
	}
}

func TestDCacheSplitLineAccess(t *testing.T) {
	// The 68030 allows misaligned accesses; one spanning a line boundary
	// touches two lines.
	prog := compile(t, `long f(long *p) { return p[0]; }`)
	m := machine.M68030()
	s := sim.New(prog, m, 4096)
	res, err := s.Run("f", 12) // [12,20) spans lines 0 and 1
	if err != nil {
		t.Fatal(err)
	}
	if res.DCacheMisses != 2 {
		t.Errorf("split access should miss twice, got %d", res.DCacheMisses)
	}
}

func TestDoWhile(t *testing.T) {
	prog := compile(t, `
		long f(long n) {
			long s = 0;
			do {
				s += n;
				n--;
			} while (n > 0);
			return s;
		}
	`)
	if got := run(t, prog, "f", 4).Ret; got != 10 {
		t.Errorf("do-while sum = %d, want 10", got)
	}
	// The body must run at least once even when the condition is false.
	if got := run(t, prog, "f", -3).Ret; got != -3 {
		t.Errorf("do-while must run once: got %d, want -3", got)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	prog := compile(t, `
		long f(long n) {
			long s = 0, i = 0;
			do {
				i++;
				if (i == 3) continue;
				if (i > n) break;
				s += i;
			} while (1);
			return s;
		}
	`)
	// i: 1,2 summed; 3 skipped; 4,5 summed while <= n=5; 6 breaks.
	if got := run(t, prog, "f", 5).Ret; got != 1+2+4+5 {
		t.Errorf("got %d, want 12", got)
	}
}

func TestProfile(t *testing.T) {
	prog := compile(t, `
		long f(long n) { long i, s = 0; for (i = 0; i < n; i++) s += i; return s; }
	`)
	s := sim.New(prog, machine.Alpha(), 4096)
	s.EnableProfile()
	if _, err := s.Run("f", 25); err != nil {
		t.Fatal(err)
	}
	rows := s.Profile()
	if len(rows) == 0 {
		t.Fatal("no profile rows")
	}
	// The hottest block must be a loop block executed ~25 times.
	if rows[0].Execs < 25 {
		t.Errorf("hottest block execs = %d, want >= 25", rows[0].Execs)
	}
	if out := sim.FormatProfile(rows, 3); len(out) == 0 {
		t.Error("empty formatted profile")
	}
}

func TestGlobals(t *testing.T) {
	prog := compile(t, `
		short weights[5] = {3, -1, 4, -1, 5};
		int scale = 2;
		long counter;

		long weighted(short *a, int n) {
			long s = 0;
			int i;
			for (i = 0; i < n; i++)
				s += a[i] * weights[i % 5];
			counter = counter + 1;
			return s * scale;
		}
	`)
	s := sim.New(prog, machine.Alpha(), 1<<16)
	a := []int64{1, 2, 3, 4, 5, 6}
	s.WriteInts(8192, rtl.W2, a)
	res, err := s.Run("weighted", 8192, int64(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	w := []int64{3, -1, 4, -1, 5}
	var want int64
	for i, v := range a {
		want += v * w[i%5]
	}
	want *= 2
	if res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
	// Globals reload on each Run: counter starts at zero every time.
	res2, err := s.Run("weighted", 8192, int64(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Ret != want {
		t.Errorf("second run differs: %d", res2.Ret)
	}
}

func TestGlobalLUT(t *testing.T) {
	// A gamma-style lookup table: data-dependent loads from a global.
	prog := compile(t, `
		unsigned char lut[8] = {7, 6, 5, 4, 3, 2, 1, 0};

		void apply(unsigned char *img, unsigned char *out, int n) {
			int i;
			for (i = 0; i < n; i++)
				out[i] = lut[img[i] & 7];
		}
	`)
	s := sim.New(prog, machine.Alpha(), 1<<16)
	img := []byte{0, 1, 2, 3, 4, 5, 6, 7, 3, 1}
	s.WriteBytes(8192, img)
	if _, err := s.Run("apply", 8192, 12288, int64(len(img))); err != nil {
		t.Fatal(err)
	}
	out := s.ReadBytes(12288, len(img))
	for i, v := range img {
		if out[i] != 7-v&7 {
			t.Errorf("out[%d] = %d, want %d", i, out[i], 7-v&7)
		}
	}
}
