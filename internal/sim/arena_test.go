package sim

import (
	"testing"

	"macc/internal/machine"
	"macc/internal/rtl"
)

// storeFn builds a function that stores n words at base and returns the sum
// it loaded back — enough traffic to exercise the dirty watermark.
func storeFn() *rtl.Program {
	f := rtl.NewFn("work", 2) // base, n
	base, n := f.Params[0], f.Params[1]
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	i := f.NewReg()
	sum := f.NewReg()
	addr := f.NewReg()
	v := f.NewReg()
	cond := f.NewReg()
	f.Entry().Instrs = append(f.Entry().Instrs,
		rtl.MovI(i, rtl.C(0)),
		rtl.MovI(sum, rtl.C(0)),
		rtl.JumpI(loop))
	loop.Instrs = append(loop.Instrs,
		rtl.BinI(rtl.Mul, addr, rtl.R(i), rtl.C(4)),
		rtl.BinI(rtl.Add, addr, rtl.R(addr), rtl.R(base)),
		rtl.StoreI(rtl.R(addr), 0, rtl.R(i), rtl.W4),
		rtl.LoadI(v, rtl.R(addr), 0, rtl.W4, true),
		rtl.BinI(rtl.Add, sum, rtl.R(sum), rtl.R(v)),
		rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)),
		rtl.BinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), loop, exit))
	exit.Instrs = append(exit.Instrs, rtl.RetI(rtl.R(sum)))
	return &rtl.Program{Fns: []*rtl.Fn{f}}
}

// TestResetZeroesDirtyRange: after a run that stored into memory, Reset must
// clear every written byte while only touching the watermarked range.
func TestResetZeroesDirtyRange(t *testing.T) {
	s := New(storeFn(), machine.Alpha(), 1<<16)
	if _, err := s.Run("work", 1024, 8); err != nil {
		t.Fatal(err)
	}
	if s.dirtyLo > 1024 || s.dirtyHi < 1024+32 {
		t.Fatalf("watermark [%d,%d) does not cover stores [1024,1056)", s.dirtyLo, s.dirtyHi)
	}
	s.Reset()
	for i, b := range s.Mem {
		if b != 0 {
			t.Fatalf("Mem[%d] = %d after Reset, want 0", i, b)
		}
	}
	if s.dirtyLo != int64(len(s.Mem)) || s.dirtyHi != 0 {
		t.Fatalf("watermark not reset: [%d,%d)", s.dirtyLo, s.dirtyHi)
	}
}

// TestResetWatermarkCoversHarnessWrites: WriteBytes and WriteInts feed the
// watermark too, so harness setup is also undone by Reset.
func TestResetWatermarkCoversHarnessWrites(t *testing.T) {
	s := New(storeFn(), machine.Alpha(), 1<<16)
	s.WriteBytes(100, []byte{1, 2, 3})
	s.WriteInts(4096, rtl.W4, []int64{7, 8, 9})
	s.Reset()
	for _, a := range []int64{100, 101, 102, 4096, 4100, 4104} {
		if s.Mem[a] != 0 {
			t.Fatalf("Mem[%d] = %d after Reset, want 0", a, s.Mem[a])
		}
	}
}

// TestRunAfterResetIsIdentical: the decoded image and recycled arena must
// make a second measurement indistinguishable from the first.
func TestRunAfterResetIsIdentical(t *testing.T) {
	s := New(storeFn(), machine.Alpha(), 1<<16)
	first, err := s.Run("work", 2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	second, err := s.Run("work", 2048, 16)
	if err != nil {
		t.Fatal(err)
	}
	if first.Ret != second.Ret || first.Cycles != second.Cycles ||
		first.Instrs != second.Instrs || first.ICacheMisses != second.ICacheMisses ||
		first.DCacheMisses != second.DCacheMisses {
		t.Fatalf("run after Reset diverged:\nfirst:  %+v\nsecond: %+v", first.Stats, second.Stats)
	}
}

// TestReleaseReturnsZeroedArena: a Released buffer re-enters circulation
// fully zero, so the next New starts from clean memory even though only the
// dirty range was cleared.
func TestReleaseReturnsZeroedArena(t *testing.T) {
	const memBytes = 1 << 16
	s := New(storeFn(), machine.Alpha(), memBytes)
	s.WriteInts(512, rtl.W8, []int64{-1, -1, -1, -1})
	if _, err := s.Run("work", 8192, 32); err != nil {
		t.Fatal(err)
	}
	s.Release()
	if s.Mem != nil {
		t.Fatal("Release must detach Mem")
	}
	buf := arenaGet(memBytes)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("recycled arena byte %d = %d, want 0", i, b)
		}
	}
}
