package sim

import (
	"fmt"
	"sort"
	"strings"

	"macc/internal/rtl"
)

// BlockProfile reports how often one basic block executed during Run.
type BlockProfile struct {
	Fn     string
	Block  string
	Execs  int64
	Instrs int64 // Execs × block length
}

// EnableProfile turns on per-block execution counting for subsequent Run
// calls (small overhead; off by default).
func (s *Sim) EnableProfile() {
	if s.blockFn == nil {
		s.blockFn = make(map[*rtl.Block]string)
		for _, f := range s.prog.Fns {
			for _, b := range f.Blocks {
				s.blockFn[b] = f.Name
			}
		}
	}
	s.blockExecs = make(map[*rtl.Block]int64)
}

// Profile returns the blocks executed by the last Run, hottest first.
func (s *Sim) Profile() []BlockProfile {
	var out []BlockProfile
	for b, n := range s.blockExecs {
		out = append(out, BlockProfile{
			Fn:     s.blockFn[b],
			Block:  b.Name,
			Execs:  n,
			Instrs: n * int64(len(b.Instrs)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instrs != out[j].Instrs {
			return out[i].Instrs > out[j].Instrs
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// FormatProfile renders the top-n profile rows as a table.
func FormatProfile(rows []BlockProfile, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-28s %12s %14s\n", "function", "block", "execs", "instrs")
	for i, r := range rows {
		if i >= n {
			break
		}
		fmt.Fprintf(&sb, "%-16s %-28s %12d %14d\n", r.Fn, r.Block, r.Execs, r.Instrs)
	}
	return sb.String()
}
