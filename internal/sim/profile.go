package sim

import (
	"fmt"
	"sort"
	"strings"
)

// BlockProfile reports how often one basic block executed during Run.
type BlockProfile struct {
	Fn     string
	Block  string
	Execs  int64
	Instrs int64 // Execs × block length
}

// EnableProfile turns on per-block execution counting for subsequent Run
// calls (small overhead; off by default). Counters live in the decoded
// image, indexed by block number, so profiling works the same whether the
// Sim was built from the pointer graph or from a flat image. Calling
// EnableProfile again resets the counters.
func (s *Sim) EnableProfile() {
	s.profiling = true
	for _, df := range s.img.fns {
		df.execs = make([]int64, len(df.blocks))
	}
}

// Profile returns the blocks executed since EnableProfile, hottest first.
func (s *Sim) Profile() []BlockProfile {
	var out []BlockProfile
	for _, df := range s.img.fns {
		// The last entry is the phantom block (see decode); it is never
		// reported.
		for bi := 0; bi < len(df.execs)-1; bi++ {
			n := df.execs[bi]
			if n == 0 {
				continue
			}
			b := &df.blocks[bi]
			out = append(out, BlockProfile{
				Fn:     df.name,
				Block:  b.name,
				Execs:  n,
				Instrs: n * int64(b.ninstr),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Instrs != out[j].Instrs {
			return out[i].Instrs > out[j].Instrs
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// FormatProfile renders the top-n profile rows as a table.
func FormatProfile(rows []BlockProfile, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-28s %12s %14s\n", "function", "block", "execs", "instrs")
	for i, r := range rows {
		if i >= n {
			break
		}
		fmt.Fprintf(&sb, "%-16s %-28s %12d %14d\n", r.Fn, r.Block, r.Execs, r.Instrs)
	}
	return sb.String()
}
