// Package sim executes RTL programs on a simulated machine. It plays the
// role of the paper's hardware testbeds: a byte-addressable memory, an
// in-order single-issue pipeline timed by the target's Exec cost table, a
// direct-mapped instruction cache, and per-width memory reference counters.
// Because the model enforces natural alignment where the target requires it
// (the Alpha), the coalescer's run-time alignment checks are genuinely load
// bearing: removing them makes misaligned workloads trap.
package sim

import (
	"errors"
	"fmt"

	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// TrapKind classifies run-time faults.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapAlignment
	TrapOutOfBounds
	TrapDivideByZero
	TrapFuel
	TrapBadProgram
)

var trapNames = map[TrapKind]string{
	TrapAlignment:    "alignment fault",
	TrapOutOfBounds:  "memory access out of bounds",
	TrapDivideByZero: "integer divide by zero",
	TrapFuel:         "instruction budget exhausted",
	TrapBadProgram:   "malformed program",
}

// Trap is a simulated hardware fault.
type Trap struct {
	Kind TrapKind
	Fn   string
	Addr int64
	Msg  string
}

func (t *Trap) Error() string {
	s := fmt.Sprintf("%s in %s", trapNames[t.Kind], t.Fn)
	if t.Kind == TrapAlignment || t.Kind == TrapOutOfBounds {
		s += fmt.Sprintf(" at address %d", t.Addr)
	}
	if t.Msg != "" {
		s += ": " + t.Msg
	}
	return s
}

// IsTrap reports whether err is a trap of the given kind.
func IsTrap(err error, kind TrapKind) bool {
	var t *Trap
	return errors.As(err, &t) && t.Kind == kind
}

// Stats aggregates the counters the paper's evaluation reports.
type Stats struct {
	Cycles        int64
	Instrs        int64
	Loads         int64
	Stores        int64
	LoadsByWidth  map[rtl.Width]int64
	StoresByWidth map[rtl.Width]int64
	ICacheMisses  int64
	DCacheMisses  int64
	Branches      int64
}

// MemRefs is the total number of memory references executed.
func (s *Stats) MemRefs() int64 { return s.Loads + s.Stores }

func newStats() Stats {
	return Stats{
		LoadsByWidth:  make(map[rtl.Width]int64),
		StoresByWidth: make(map[rtl.Width]int64),
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.Instrs += o.Instrs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.ICacheMisses += o.ICacheMisses
	s.DCacheMisses += o.DCacheMisses
	s.Branches += o.Branches
	for w, n := range o.LoadsByWidth {
		s.LoadsByWidth[w] += n
	}
	for w, n := range o.StoresByWidth {
		s.StoresByWidth[w] += n
	}
}

// Result is the outcome of one simulated call.
type Result struct {
	Ret int64
	Stats
}

const (
	icacheLineBytes = 16
	dcacheLineBytes = 16
	defaultFuel     = 1 << 30
	maxCallDepth    = 128
)

// Sim is a loaded program plus machine state. Memory persists across Run
// calls so harnesses can initialize arrays, run, and inspect results.
type Sim struct {
	prog *rtl.Program
	mach *machine.Machine
	Mem  []byte
	// Fuel bounds the number of executed instructions per Run (guards
	// against miscompiled infinite loops in tests). Zero means default.
	Fuel int64

	addrOf   map[*rtl.Instr]int64 // static instruction addresses for the icache
	icache   []int64              // per-set tag, -1 invalid
	dcache   []int64              // per-set tag, -1 invalid; nil when disabled
	fuel     int64
	stats    *Stats
	stackTop int64 // grows down from the top of memory for spill frames

	// Profiling state (see profile.go); nil unless EnableProfile was called.
	blockFn    map[*rtl.Block]string
	blockExecs map[*rtl.Block]int64

	// metrics, when non-nil, receives each Run's dynamic memory-traffic
	// counters (see AttachMetrics).
	metrics *telemetry.Registry
}

// AttachMetrics publishes every subsequent Run's dynamic statistics —
// per-width reference counts, narrow vs word-wide traffic, bytes per
// reference, cache misses — into reg under the "sim." prefix. Attaching the
// registry of the compile's telemetry.Recorder puts the coalescer's static
// decisions and the measured memory-traffic deltas in one report.
func (s *Sim) AttachMetrics(reg *telemetry.Registry) { s.metrics = reg }

// flushMetrics accumulates one Run's stats into the attached registry.
func (s *Sim) flushMetrics(st *Stats) {
	reg := s.metrics
	if reg == nil {
		return
	}
	reg.Counter("sim.runs").Add(1)
	reg.Counter("sim.cycles").Add(st.Cycles)
	reg.Counter("sim.instrs").Add(st.Instrs)
	reg.Counter("sim.loads").Add(st.Loads)
	reg.Counter("sim.stores").Add(st.Stores)
	reg.Counter("sim.mem_refs").Add(st.MemRefs())
	reg.Counter("sim.branches").Add(st.Branches)
	reg.Counter("sim.icache_misses").Add(st.ICacheMisses)
	reg.Counter("sim.dcache_misses").Add(st.DCacheMisses)
	var bytes, narrow, wide int64
	count := func(byWidth map[rtl.Width]int64, kind string) {
		for w, n := range byWidth {
			reg.Counter(fmt.Sprintf("sim.%s.w%d", kind, int64(w))).Add(n)
			bytes += int64(w) * n
			if int64(w) < int64(s.mach.WordBytes) {
				narrow += n
			} else {
				wide += n
			}
		}
	}
	count(st.LoadsByWidth, "loads")
	count(st.StoresByWidth, "stores")
	reg.Counter("sim.bytes_accessed").Add(bytes)
	reg.Counter("sim.narrow_refs").Add(narrow)
	reg.Counter("sim.wide_refs").Add(wide)
	if refs := st.MemRefs(); refs > 0 {
		reg.Gauge("sim.bytes_per_ref").Set(float64(bytes) / float64(refs))
	}
	reg.Histogram("sim.run_cycles").Observe(st.Cycles)
}

// New builds a simulator for prog on mach with memBytes of RAM.
func New(prog *rtl.Program, mach *machine.Machine, memBytes int) *Sim {
	s := &Sim{
		prog:   prog,
		mach:   mach,
		Mem:    make([]byte, memBytes),
		addrOf: make(map[*rtl.Instr]int64),
	}
	// Lay out instruction addresses function by function, block by block,
	// mirroring a linear code layout.
	addr := int64(0)
	for _, f := range prog.Fns {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				s.addrOf[in] = addr
				addr += int64(mach.BytesPerInstr)
			}
		}
	}
	sets := mach.ICacheBytes / icacheLineBytes
	if sets < 1 {
		sets = 1
	}
	s.icache = make([]int64, sets)
	if mach.DCacheBytes > 0 {
		dsets := mach.DCacheBytes / dcacheLineBytes
		if dsets < 1 {
			dsets = 1
		}
		s.dcache = make([]int64, dsets)
	}
	return s
}

// Reset clears memory and the instruction cache.
func (s *Sim) Reset() {
	for i := range s.Mem {
		s.Mem[i] = 0
	}
	for i := range s.icache {
		s.icache[i] = -1
	}
}

// Run calls the named function with the given arguments and returns its
// result and execution statistics.
func (s *Sim) Run(fnName string, args ...int64) (Result, error) {
	f, ok := s.prog.Lookup(fnName)
	if !ok {
		return Result{}, &Trap{Kind: TrapBadProgram, Fn: fnName, Msg: "no such function"}
	}
	s.fuel = s.Fuel
	if s.fuel == 0 {
		s.fuel = defaultFuel
	}
	for i := range s.icache {
		s.icache[i] = -1
	}
	for i := range s.dcache {
		s.dcache[i] = -1
	}
	s.stackTop = int64(len(s.Mem))
	s.loadGlobals()
	st := newStats()
	s.stats = &st
	ret, _, err := s.call(f, args, 0)
	s.flushMetrics(&st)
	if err != nil {
		return Result{Stats: st}, err
	}
	return Result{Ret: ret, Stats: st}, nil
}

type frame struct {
	regs  []int64
	ready []int64 // cycle at which each register's value is available
}

func (s *Sim) call(f *rtl.Fn, args []int64, depth int) (ret int64, cycles int64, err error) {
	if depth > maxCallDepth {
		return 0, 0, &Trap{Kind: TrapBadProgram, Fn: f.Name, Msg: "call depth exceeded"}
	}
	if len(args) != len(f.Params) {
		return 0, 0, &Trap{Kind: TrapBadProgram, Fn: f.Name,
			Msg: fmt.Sprintf("expected %d arguments, got %d", len(f.Params), len(args))}
	}
	fr := frame{
		regs:  make([]int64, f.NumRegs()),
		ready: make([]int64, f.NumRegs()),
	}
	for i, p := range f.Params {
		fr.regs[p] = args[i]
	}
	if f.FrameBytes > 0 {
		// Reserve a spill frame below the current stack top.
		s.stackTop -= int64(f.FrameBytes)
		if s.stackTop < 0 {
			return 0, 0, &Trap{Kind: TrapOutOfBounds, Fn: f.Name, Addr: s.stackTop,
				Msg: "stack overflow"}
		}
		fr.regs[f.FrameReg] = s.stackTop
		defer func() { s.stackTop += int64(f.FrameBytes) }()
	}
	costs := &s.mach.Exec
	clock := int64(0)

	b := f.Entry()
	for {
		if s.blockExecs != nil {
			s.blockExecs[b]++
		}
		for _, in := range b.Instrs {
			if s.fuel--; s.fuel < 0 {
				return 0, clock, &Trap{Kind: TrapFuel, Fn: f.Name}
			}
			s.stats.Instrs++
			clock += s.fetch(in)

			// Pipeline timing: issue when the operands are ready.
			issue := clock
			for _, o := range in.SrcOperands() {
				if r, ok := o.IsReg(); ok && fr.ready[r] > issue {
					issue = fr.ready[r]
				}
			}
			lat := int64(costs.Of(in))
			if s.mach.Pipelined {
				clock = issue + int64(costs.OccOf(in))
			} else {
				clock = issue + lat
			}
			done := issue + lat

			opVal := func(o rtl.Operand) int64 {
				if r, ok := o.IsReg(); ok {
					return fr.regs[r]
				}
				return o.Const
			}
			setDst := func(v int64) {
				fr.regs[in.Dst] = v
				fr.ready[in.Dst] = done
			}

			switch in.Op {
			case rtl.Nop:
			case rtl.Mov:
				setDst(opVal(in.A))
			case rtl.Neg, rtl.Not:
				v, _ := rtl.EvalUnary(in.Op, opVal(in.A))
				setDst(v)
			case rtl.Load:
				addr := opVal(in.A) + in.Disp
				v, trap := s.load(f.Name, addr, in.Width, in.Signed)
				if trap != nil {
					return 0, clock, trap
				}
				s.stats.Loads++
				s.stats.LoadsByWidth[in.Width]++
				if stall := s.dcacheAccess(addr, in.Width); stall > 0 {
					clock += stall
					done += stall
				}
				setDst(v)
			case rtl.Store:
				addr := opVal(in.A) + in.Disp
				if trap := s.store(f.Name, addr, in.Width, opVal(in.B)); trap != nil {
					return 0, clock, trap
				}
				s.stats.Stores++
				s.stats.StoresByWidth[in.Width]++
				if stall := s.dcacheAccess(addr, in.Width); stall > 0 {
					clock += stall
				}
			case rtl.Extract:
				setDst(rtl.EvalExtract(opVal(in.A), opVal(in.B), in.Width, in.Signed))
			case rtl.Insert:
				setDst(rtl.EvalInsert(opVal(in.A), opVal(in.B), opVal(in.C), in.Width))
			case rtl.Jump:
				s.stats.Branches++
				b = in.Target
			case rtl.Branch:
				s.stats.Branches++
				if opVal(in.A) != 0 {
					b = in.Target
				} else {
					b = in.Else
				}
			case rtl.Ret:
				s.stats.Cycles += clock
				if in.A.Kind == rtl.KindNone {
					return 0, clock, nil
				}
				return opVal(in.A), clock, nil
			case rtl.Call:
				callee, ok := s.prog.Lookup(in.Callee)
				if !ok {
					return 0, clock, &Trap{Kind: TrapBadProgram, Fn: f.Name,
						Msg: "call to undefined function " + in.Callee}
				}
				var cargs []int64
				for _, a := range in.Args {
					cargs = append(cargs, opVal(a))
				}
				rv, sub, cerr := callResult(s, callee, cargs, depth)
				if cerr != nil {
					return 0, clock, cerr
				}
				clock = done + sub
				if in.Dst != rtl.NoReg {
					fr.regs[in.Dst] = rv
					fr.ready[in.Dst] = clock
				}
			default:
				if in.Op.IsBinary() {
					v, ok := rtl.EvalBinary(in.Op, opVal(in.A), opVal(in.B), in.Signed)
					if !ok {
						return 0, clock, &Trap{Kind: TrapDivideByZero, Fn: f.Name}
					}
					setDst(v)
				} else {
					return 0, clock, &Trap{Kind: TrapBadProgram, Fn: f.Name,
						Msg: "unknown opcode " + in.Op.String()}
				}
			}
			if in.Op == rtl.Jump || in.Op == rtl.Branch {
				break
			}
		}
		if t := b.Term(); t == nil {
			return 0, clock, &Trap{Kind: TrapBadProgram, Fn: f.Name, Msg: "block without terminator"}
		}
	}
}

// callResult runs a nested call; the callee's Ret already added its cycles
// into stats, and we also thread them into the caller's clock.
func callResult(s *Sim, callee *rtl.Fn, args []int64, depth int) (int64, int64, error) {
	rv, cycles, err := s.call(callee, args, depth+1)
	if err != nil {
		return 0, 0, err
	}
	// The callee added its own cycles to stats.Cycles at Ret; remove them
	// there and account for them inline in the caller instead.
	s.stats.Cycles -= cycles
	return rv, cycles, nil
}

// loadGlobals materializes the program's static data. It runs at the start
// of every Run so a prior run's stores cannot leak into the next.
func (s *Sim) loadGlobals() {
	for _, g := range s.prog.Globals {
		if g.Addr < 0 || g.Addr+g.Size > int64(len(s.Mem)) {
			continue // impossible layout; execution will trap on access
		}
		region := s.Mem[g.Addr : g.Addr+g.Size]
		copy(region, g.Init)
		for i := len(g.Init); i < len(region); i++ {
			region[i] = 0
		}
	}
}

// dcacheAccess charges the data cache for one access touching
// [addr, addr+w) and returns stall cycles (an access spanning two lines
// charges both).
func (s *Sim) dcacheAccess(addr int64, w rtl.Width) int64 {
	if s.dcache == nil {
		return 0
	}
	var stall int64
	first := addr / dcacheLineBytes
	last := (addr + int64(w) - 1) / dcacheLineBytes
	for line := first; line <= last; line++ {
		set := line % int64(len(s.dcache))
		if s.dcache[set] != line {
			s.dcache[set] = line
			s.stats.DCacheMisses++
			stall += int64(s.mach.DCacheMissPenalty)
		}
	}
	return stall
}

// fetch charges the instruction cache for one instruction fetch and returns
// the stall cycles.
func (s *Sim) fetch(in *rtl.Instr) int64 {
	addr := s.addrOf[in]
	line := addr / icacheLineBytes
	set := line % int64(len(s.icache))
	if s.icache[set] != line {
		s.icache[set] = line
		s.stats.ICacheMisses++
		return int64(s.mach.ICacheMissPenalty)
	}
	return 0
}

func (s *Sim) load(fn string, addr int64, w rtl.Width, signed bool) (int64, *Trap) {
	if trap := s.checkAddr(fn, addr, w); trap != nil {
		return 0, trap
	}
	var v uint64
	for i := 0; i < int(w); i++ {
		v |= uint64(s.Mem[addr+int64(i)]) << (8 * uint(i))
	}
	return rtl.Extend(int64(v), w, signed), nil
}

func (s *Sim) store(fn string, addr int64, w rtl.Width, v int64) *Trap {
	if trap := s.checkAddr(fn, addr, w); trap != nil {
		return trap
	}
	for i := 0; i < int(w); i++ {
		s.Mem[addr+int64(i)] = byte(uint64(v) >> (8 * uint(i)))
	}
	return nil
}

func (s *Sim) checkAddr(fn string, addr int64, w rtl.Width) *Trap {
	if addr < 0 || addr+int64(w) > int64(len(s.Mem)) {
		return &Trap{Kind: TrapOutOfBounds, Fn: fn, Addr: addr}
	}
	if s.mach.MustAlign && addr%int64(w) != 0 {
		return &Trap{Kind: TrapAlignment, Fn: fn, Addr: addr}
	}
	return nil
}

// WriteBytes copies data into memory at addr.
func (s *Sim) WriteBytes(addr int64, data []byte) {
	copy(s.Mem[addr:], data)
}

// ReadBytes copies n bytes out of memory at addr.
func (s *Sim) ReadBytes(addr int64, n int) []byte {
	out := make([]byte, n)
	copy(out, s.Mem[addr:])
	return out
}

// WriteInts stores a slice of integer values of width w starting at addr,
// little-endian, for harness setup.
func (s *Sim) WriteInts(addr int64, w rtl.Width, vals []int64) {
	for i, v := range vals {
		a := addr + int64(i)*int64(w)
		for j := 0; j < int(w); j++ {
			s.Mem[a+int64(j)] = byte(uint64(v) >> (8 * uint(j)))
		}
	}
}

// ReadInts loads n integer values of width w starting at addr.
func (s *Sim) ReadInts(addr int64, w rtl.Width, n int, signed bool) []int64 {
	out := make([]int64, n)
	for i := range out {
		a := addr + int64(i)*int64(w)
		var v uint64
		for j := 0; j < int(w); j++ {
			v |= uint64(s.Mem[a+int64(j)]) << (8 * uint(j))
		}
		out[i] = rtl.Extend(int64(v), w, signed)
	}
	return out
}
