// Package sim executes RTL programs on a simulated machine. It plays the
// role of the paper's hardware testbeds: a byte-addressable memory, an
// in-order single-issue pipeline timed by the target's Exec cost table, a
// direct-mapped instruction cache, and per-width memory reference counters.
// Because the model enforces natural alignment where the target requires it
// (the Alpha), the coalescer's run-time alignment checks are genuinely load
// bearing: removing them makes misaligned workloads trap.
//
// The execution core is predecoded: sim.New compiles each function into a
// dense instruction array with resolved operand slots, costs, and block
// indices (see decode.go), and the decoded image is reused across Reset and
// every Run. Memory is tracked with a dirty-range watermark so Reset zeroes
// only the bytes a run actually wrote, and Release returns the memory arena
// to a pool for the next measurement instead of reallocating it.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// TrapKind classifies run-time faults.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	TrapAlignment
	TrapOutOfBounds
	TrapDivideByZero
	TrapFuel
	TrapBadProgram
)

var trapNames = map[TrapKind]string{
	TrapAlignment:    "alignment fault",
	TrapOutOfBounds:  "memory access out of bounds",
	TrapDivideByZero: "integer divide by zero",
	TrapFuel:         "instruction budget exhausted",
	TrapBadProgram:   "malformed program",
}

// Trap is a simulated hardware fault.
type Trap struct {
	Kind TrapKind
	Fn   string
	Addr int64
	Msg  string
}

func (t *Trap) Error() string {
	s := fmt.Sprintf("%s in %s", trapNames[t.Kind], t.Fn)
	if t.Kind == TrapAlignment || t.Kind == TrapOutOfBounds {
		s += fmt.Sprintf(" at address %d", t.Addr)
	}
	if t.Msg != "" {
		s += ": " + t.Msg
	}
	return s
}

// IsTrap reports whether err is a trap of the given kind.
func IsTrap(err error, kind TrapKind) bool {
	var t *Trap
	return errors.As(err, &t) && t.Kind == kind
}

// Stats aggregates the counters the paper's evaluation reports.
type Stats struct {
	Cycles        int64
	Instrs        int64
	Loads         int64
	Stores        int64
	LoadsByWidth  map[rtl.Width]int64
	StoresByWidth map[rtl.Width]int64
	ICacheMisses  int64
	DCacheMisses  int64
	Branches      int64
}

// MemRefs is the total number of memory references executed.
func (s *Stats) MemRefs() int64 { return s.Loads + s.Stores }

func newStats() Stats {
	return Stats{
		LoadsByWidth:  make(map[rtl.Width]int64),
		StoresByWidth: make(map[rtl.Width]int64),
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Cycles += o.Cycles
	s.Instrs += o.Instrs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.ICacheMisses += o.ICacheMisses
	s.DCacheMisses += o.DCacheMisses
	s.Branches += o.Branches
	for w, n := range o.LoadsByWidth {
		s.LoadsByWidth[w] += n
	}
	for w, n := range o.StoresByWidth {
		s.StoresByWidth[w] += n
	}
}

// Result is the outcome of one simulated call.
type Result struct {
	Ret int64
	Stats
}

const (
	icacheLineBytes = 16
	dcacheLineBytes = 16
	defaultFuel     = 1 << 30
	maxCallDepth    = 128
)

// Sim is a loaded program plus machine state. Memory persists across Run
// calls so harnesses can initialize arrays, run, and inspect results.
type Sim struct {
	mach *machine.Machine
	// Mem is the simulated RAM. Reads are free-form, but writes should go
	// through WriteBytes/WriteInts (or simulated stores): the dirty-range
	// watermark that lets Reset and Release zero only the touched bytes
	// cannot see direct element assignment. A Sim whose Mem was written
	// directly must not be Released back to the arena pool.
	Mem []byte
	// Fuel bounds the number of executed instructions per Run (guards
	// against miscompiled infinite loops in tests). Zero means default.
	Fuel int64

	img      *image        // predecoded program, built once in New/NewFlat
	globals  []*rtl.Global // static data materialized at the start of each Run
	icache   []int64       // per-set tag, -1 invalid
	dcache   []int64 // per-set tag, -1 invalid; nil when disabled
	fuel     int64
	stats    *Stats
	stackTop int64 // grows down from the top of memory for spill frames
	frames   frameCache

	// Dirty-range watermark over Mem: every tracked write widens
	// [dirtyLo, dirtyHi). Reset and Release zero only this range.
	dirtyLo, dirtyHi int64

	// Per-width reference counters, folded into Stats maps when a Run
	// finishes (array indexing keeps the hot loop free of map operations).
	loadsW  [int(rtl.W8) + 1]int64
	storesW [int(rtl.W8) + 1]int64

	// Profiling state (see profile.go): when set, per-block execution
	// counters live in each dFn's execs array, indexed by block number, so
	// profiling needs no pointer back to the source graph.
	profiling bool

	// metrics, when non-nil, receives each Run's dynamic memory-traffic
	// counters (see AttachMetrics).
	metrics *telemetry.Registry
}

// AttachMetrics publishes every subsequent Run's dynamic statistics —
// per-width reference counts, narrow vs word-wide traffic, bytes per
// reference, cache misses — into reg under the "sim." prefix. Attaching the
// registry of the compile's telemetry.Recorder puts the coalescer's static
// decisions and the measured memory-traffic deltas in one report.
func (s *Sim) AttachMetrics(reg *telemetry.Registry) { s.metrics = reg }

// flushMetrics accumulates one Run's stats into the attached registry.
func (s *Sim) flushMetrics(st *Stats) {
	reg := s.metrics
	if reg == nil {
		return
	}
	reg.Counter("sim.runs").Add(1)
	reg.Counter("sim.cycles").Add(st.Cycles)
	reg.Counter("sim.instrs").Add(st.Instrs)
	reg.Counter("sim.loads").Add(st.Loads)
	reg.Counter("sim.stores").Add(st.Stores)
	reg.Counter("sim.mem_refs").Add(st.MemRefs())
	reg.Counter("sim.branches").Add(st.Branches)
	reg.Counter("sim.icache_misses").Add(st.ICacheMisses)
	reg.Counter("sim.dcache_misses").Add(st.DCacheMisses)
	var bytes, narrow, wide int64
	count := func(byWidth map[rtl.Width]int64, kind string) {
		for w, n := range byWidth {
			reg.Counter(fmt.Sprintf("sim.%s.w%d", kind, int64(w))).Add(n)
			bytes += int64(w) * n
			if int64(w) < int64(s.mach.WordBytes) {
				narrow += n
			} else {
				wide += n
			}
		}
	}
	count(st.LoadsByWidth, "loads")
	count(st.StoresByWidth, "stores")
	reg.Counter("sim.bytes_accessed").Add(bytes)
	reg.Counter("sim.narrow_refs").Add(narrow)
	reg.Counter("sim.wide_refs").Add(wide)
	if refs := st.MemRefs(); refs > 0 {
		reg.Gauge("sim.bytes_per_ref").Set(float64(bytes) / float64(refs))
	}
	reg.Histogram("sim.run_cycles").Observe(st.Cycles)
}

// arena recycles simulated-memory buffers between measurements. Buffers in
// the pool are always fully zero: Release zeroes the dirty range before
// returning one.
var arenaPool sync.Pool

func arenaGet(n int) []byte {
	if v := arenaPool.Get(); v != nil {
		buf := v.([]byte)
		if cap(buf) >= n {
			return buf[:n]
		}
		// Too small for this simulator; drop it and allocate fresh.
	}
	return make([]byte, n)
}

// newSim allocates the machine state (memory arena, cache tag arrays)
// shared by both constructors.
func newSim(mach *machine.Machine, memBytes int) *Sim {
	s := &Sim{
		mach:    mach,
		Mem:     arenaGet(memBytes),
		dirtyLo: int64(memBytes),
	}
	sets := mach.ICacheBytes / icacheLineBytes
	if sets < 1 {
		sets = 1
	}
	s.icache = make([]int64, sets)
	if mach.DCacheBytes > 0 {
		dsets := mach.DCacheBytes / dcacheLineBytes
		if dsets < 1 {
			dsets = 1
		}
		s.dcache = make([]int64, dsets)
	}
	return s
}

// New builds a simulator for prog on mach with memBytes of RAM. The program
// is predecoded here, once; Reset and repeated Runs reuse the decoded image.
func New(prog *rtl.Program, mach *machine.Machine, memBytes int) *Sim {
	s := newSim(mach, memBytes)
	s.globals = prog.Globals
	s.img = s.decode(prog)
	return s
}

// NewFlat builds a simulator directly from a flat program image, skipping
// the pointer-graph walk entirely: the predecoder reads the SoA instruction
// arrays in place, so a cache hit that decoded into flat form never has to
// materialize *rtl.Program to be executed. The decoded image — addresses,
// icache geometry, costs, operand slots — is bit-identical to
// New(fp.Unflatten(), ...).
func NewFlat(fp *rtl.FlatProgram, mach *machine.Machine, memBytes int) *Sim {
	s := newSim(mach, memBytes)
	for i := range fp.Globals {
		g := &fp.Globals[i]
		s.globals = append(s.globals, &rtl.Global{
			Name: fp.SymName(g.Name),
			Addr: g.Addr,
			Size: g.Size,
			Init: g.Init,
		})
	}
	s.img = s.decodeFlat(fp)
	return s
}

// Release zeroes the dirty range of the simulator's memory and returns the
// buffer to the arena pool for the next New. The Sim must not be used
// afterwards. Callers that wrote Mem directly (bypassing WriteBytes /
// WriteInts) must not Release: the watermark never saw those writes.
func (s *Sim) Release() {
	if s.Mem == nil {
		return
	}
	s.zeroDirty()
	arenaPool.Put(s.Mem[:cap(s.Mem)])
	s.Mem = nil
}

// markDirty widens the watermark to cover [addr, addr+n).
func (s *Sim) markDirty(addr, n int64) {
	if addr < s.dirtyLo {
		s.dirtyLo = addr
	}
	if addr+n > s.dirtyHi {
		s.dirtyHi = addr + n
	}
}

// zeroDirty clears every byte the watermark saw written and resets it.
func (s *Sim) zeroDirty() {
	lo, hi := s.dirtyLo, s.dirtyHi
	if lo < 0 {
		lo = 0
	}
	if hi > int64(len(s.Mem)) {
		hi = int64(len(s.Mem))
	}
	if lo < hi {
		clear(s.Mem[lo:hi])
	}
	s.dirtyLo = int64(len(s.Mem))
	s.dirtyHi = 0
}

// Reset clears memory and the instruction cache. Only the dirty range the
// tracked write paths touched is zeroed, so resetting between measurements
// costs O(bytes written), not O(arena).
func (s *Sim) Reset() {
	s.zeroDirty()
	for i := range s.icache {
		s.icache[i] = -1
	}
}

// Run calls the named function with the given arguments and returns its
// result and execution statistics.
func (s *Sim) Run(fnName string, args ...int64) (Result, error) {
	df, ok := s.img.byName[fnName]
	if !ok {
		return Result{}, &Trap{Kind: TrapBadProgram, Fn: fnName, Msg: "no such function"}
	}
	s.fuel = s.Fuel
	if s.fuel == 0 {
		s.fuel = defaultFuel
	}
	for i := range s.icache {
		s.icache[i] = -1
	}
	for i := range s.dcache {
		s.dcache[i] = -1
	}
	s.stackTop = int64(len(s.Mem))
	s.loadGlobals()
	st := newStats()
	s.stats = &st
	clear(s.loadsW[:])
	clear(s.storesW[:])
	ret, _, err := s.exec(df, args, 0)
	s.foldWidths(&st)
	s.flushMetrics(&st)
	if err != nil {
		return Result{Stats: st}, err
	}
	return Result{Ret: ret, Stats: st}, nil
}

// foldWidths moves the array-indexed per-width counters into the Stats maps.
func (s *Sim) foldWidths(st *Stats) {
	for w, n := range s.loadsW {
		if n != 0 {
			st.LoadsByWidth[rtl.Width(w)] += n
		}
	}
	for w, n := range s.storesW {
		if n != 0 {
			st.StoresByWidth[rtl.Width(w)] += n
		}
	}
}

// loadGlobals materializes the program's static data. It runs at the start
// of every Run so a prior run's stores cannot leak into the next.
func (s *Sim) loadGlobals() {
	for _, g := range s.globals {
		if g.Addr < 0 || g.Addr+g.Size > int64(len(s.Mem)) {
			continue // impossible layout; execution will trap on access
		}
		region := s.Mem[g.Addr : g.Addr+g.Size]
		copy(region, g.Init)
		for i := len(g.Init); i < len(region); i++ {
			region[i] = 0
		}
		s.markDirty(g.Addr, g.Size)
	}
}

// dcacheAccess charges the data cache for one access touching
// [addr, addr+w) and returns stall cycles (an access spanning two lines
// charges both).
func (s *Sim) dcacheAccess(addr int64, w rtl.Width) int64 {
	if s.dcache == nil {
		return 0
	}
	var stall int64
	first := addr / dcacheLineBytes
	last := (addr + int64(w) - 1) / dcacheLineBytes
	for line := first; line <= last; line++ {
		set := line % int64(len(s.dcache))
		if s.dcache[set] != line {
			s.dcache[set] = line
			s.stats.DCacheMisses++
			stall += int64(s.mach.DCacheMissPenalty)
		}
	}
	return stall
}

func (s *Sim) load(fn string, addr int64, w rtl.Width, signed bool) (int64, *Trap) {
	if trap := s.checkAddr(fn, addr, w); trap != nil {
		return 0, trap
	}
	var v uint64
	for i := 0; i < int(w); i++ {
		v |= uint64(s.Mem[addr+int64(i)]) << (8 * uint(i))
	}
	return rtl.Extend(int64(v), w, signed), nil
}

func (s *Sim) store(fn string, addr int64, w rtl.Width, v int64) *Trap {
	if trap := s.checkAddr(fn, addr, w); trap != nil {
		return trap
	}
	for i := 0; i < int(w); i++ {
		s.Mem[addr+int64(i)] = byte(uint64(v) >> (8 * uint(i)))
	}
	s.markDirty(addr, int64(w))
	return nil
}

func (s *Sim) checkAddr(fn string, addr int64, w rtl.Width) *Trap {
	if addr < 0 || addr+int64(w) > int64(len(s.Mem)) {
		return &Trap{Kind: TrapOutOfBounds, Fn: fn, Addr: addr}
	}
	if s.mach.MustAlign && addr%int64(w) != 0 {
		return &Trap{Kind: TrapAlignment, Fn: fn, Addr: addr}
	}
	return nil
}

// WriteBytes copies data into memory at addr.
func (s *Sim) WriteBytes(addr int64, data []byte) {
	copy(s.Mem[addr:], data)
	s.markDirty(addr, int64(len(data)))
}

// ReadBytes copies n bytes out of memory at addr.
func (s *Sim) ReadBytes(addr int64, n int) []byte {
	out := make([]byte, n)
	copy(out, s.Mem[addr:])
	return out
}

// WriteInts stores a slice of integer values of width w starting at addr,
// little-endian, for harness setup.
func (s *Sim) WriteInts(addr int64, w rtl.Width, vals []int64) {
	for i, v := range vals {
		a := addr + int64(i)*int64(w)
		for j := 0; j < int(w); j++ {
			s.Mem[a+int64(j)] = byte(uint64(v) >> (8 * uint(j)))
		}
	}
	s.markDirty(addr, int64(len(vals))*int64(w))
}

// ReadInts loads n integer values of width w starting at addr.
func (s *Sim) ReadInts(addr int64, w rtl.Width, n int, signed bool) []int64 {
	out := make([]int64, n)
	for i := range out {
		a := addr + int64(i)*int64(w)
		var v uint64
		for j := 0; j < int(w); j++ {
			v |= uint64(s.Mem[a+int64(j)]) << (8 * uint(j))
		}
		out[i] = rtl.Extend(int64(v), w, signed)
	}
	return out
}
