package core

import (
	"sort"

	"macc/internal/cfg"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/sched"
	"macc/internal/telemetry"
)

// Flat driver for memory access coalescing: the Figure 2/3/4/5 pipeline run
// natively on rtl.FlatProgram. The classification, hazard, and check
// generation stages are the exact shared code the pointer-graph driver uses
// (over a decoded view of the body block), and the surgery stages — loop
// replication, wide-reference insertion, preheader check emission, and
// terminator retargeting — mirror their graph twins operation for operation,
// including the NewReg/NewBlock allocation order, so both drivers produce
// byte-identical functions, reports, remarks, and counters.

// flatIV adapts iv.FlatInfo to ivSource.
type flatIV struct{ info *iv.FlatInfo }

func (s flatIV) Invariant(r rtl.Reg) bool { return s.info.Invariant(r) }

func (s flatIV) IVStep(r rtl.Reg) (int64, bool) {
	if biv := s.info.BasicIVs[r]; biv != nil {
		return biv.Step, true
	}
	return 0, false
}

func (s flatIV) ControlInfo() (rtl.Reg, rtl.Operand, bool) {
	if c := s.info.Control; c != nil {
		return c.IV, c.Bound, true
	}
	return rtl.NoReg, rtl.Operand{}, false
}

// CoalesceMemoryAccessesFlat is CoalesceMemoryAccesses for function fi of a
// flat program.
func CoalesceMemoryAccessesFlat(fp *rtl.FlatProgram, fi int, m *machine.Machine, opts Options, em telemetry.Emitter) []LoopReport {
	if !opts.Loads && !opts.Stores {
		return nil
	}
	em = telemetry.OrNop(em)
	var reports []LoopReport
	g := cfg.NewFlat(fp, fi)
	loops := g.FindLoops()
	for _, l := range loops {
		rep := coalesceLoopFlat(fp, fi, g, l, m, opts, em)
		reports = append(reports, *rep)
		emitLoopRemark(em, rep)
		if rep.Applied {
			// The CFG is stale after surgery; recompute for further loops.
			g = cfg.NewFlat(fp, fi)
		}
	}
	return reports
}

// flatBodyBlock is bodyBlock over block indices (-1 when no single body
// block carries the references).
func flatBodyBlock(f *rtl.FlatFn, l *cfg.FlatLoop) (int32, string) {
	body := int32(-1)
	for _, bi := range l.Blocks {
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			if f.IsMem(i) {
				if body >= 0 && body != bi {
					return -1, "shape:refs-span-blocks"
				}
				body = bi
			}
		}
	}
	if body < 0 {
		return -1, "shape:no-memory-refs"
	}
	return body, ""
}

// decodeFlatBlock materializes block bi as instruction views for the shared
// read-only analyses (classification, hazard walk, check ranges). The
// decoded values are snapshots: later preheader emission moves absolute
// instruction offsets but never changes the body's content.
func decodeFlatBlock(fp *rtl.FlatProgram, f *rtl.FlatFn, bi int32) []*rtl.Instr {
	b := &f.Blocks[bi]
	n := int(b.InstrEnd - b.InstrStart)
	slab := make([]rtl.Instr, n)
	views := make([]*rtl.Instr, n)
	for j := 0; j < n; j++ {
		i := b.InstrStart + int32(j)
		in := &slab[j]
		in.Op = f.Op[i]
		in.Dst = f.Dst[i]
		in.A = f.A[i]
		in.B = f.B[i]
		in.C = f.C[i]
		in.Width = f.Width[i]
		in.Signed = f.Signed[i]
		in.Disp = f.Disp[i]
		if ci := f.CallIdx[i]; ci >= 0 {
			c := &f.Calls[ci]
			in.Callee = fp.Syms[c.Callee]
			in.Args = f.Args[c.ArgStart:c.ArgEnd]
		}
		views[j] = in
	}
	return views
}

func coalesceLoopFlat(fp *rtl.FlatProgram, fi int, g *cfg.FlatGraph, l *cfg.FlatLoop,
	m *machine.Machine, opts Options, em telemetry.Emitter) *LoopReport {

	f := &fp.Fns[fi]
	rep := &LoopReport{Header: fp.Syms[f.Blocks[l.Header].Name], Fn: fp.Syms[f.Name]}
	bodyBi, why := flatBodyBlock(f, l)
	if bodyBi < 0 {
		rep.Reason = why
		return rep
	}
	if bodyBi == l.Header && len(l.Blocks) > 2 {
		rep.Reason = "shape:refs-in-multi-block-header"
		return rep
	}
	// The body must run exactly once per iteration.
	if !g.Dominates(bodyBi, l.Latch) {
		rep.Reason = "shape:body-not-dominating-latch"
		return rep
	}
	info := iv.AnalyzeFlat(g, l)
	src := flatIV{info}

	body := decodeFlatBlock(fp, f, bodyBi)
	parts := classifyPartitions(body, src)
	if len(parts) == 0 {
		rep.Reason = "partition:no-analyzable-bases"
		return rep
	}
	chunks := findChunks(parts, m, opts)
	if len(chunks) == 0 {
		rep.Reason = "partition:no-consecutive-runs"
		return rep
	}
	safe := filterChunks(body, chunks, parts, src, m, opts, em, rep)
	if len(safe) == 0 {
		return rep
	}

	if l.Preheader < 0 {
		g.EnsurePreheader(l)
	}
	rep.Applied = doProfitabilityAnalysisAndModifyFlat(fp, fi, g, l, bodyBi, body, m, opts, safe, rep)
	finishReport(em, rep, opts)
	return rep
}

// doProfitabilityAnalysisAndModifyFlat is doProfitabilityAnalysisAndModify
// on the flat form; see that function for the Figure 3/5 structure.
func doProfitabilityAnalysisAndModifyFlat(fp *rtl.FlatProgram, fi int, g *cfg.FlatGraph,
	l *cfg.FlatLoop, bodyBi int32, body []*rtl.Instr, m *machine.Machine, opts Options,
	chunks []*chunk, rep *LoopReport) bool {

	f := &fp.Fns[fi]
	if m.MustAlign {
		var kept []*chunk
		for _, c := range chunks {
			if c.part.step%int64(c.wide) == 0 {
				kept = append(kept, c)
			}
		}
		chunks = kept
		if len(chunks) == 0 {
			rep.Reason = "alignment:step-incompatible-with-wide-width"
			return false
		}
	}

	// DoReplication: the clone blocks are appended at the end of the block
	// table, so discarding them is a truncation back to this watermark.
	nBlocks := int32(len(f.Blocks))
	cmap := fp.CloneRegion(fi, l.Blocks, ".coalesced")
	bodyCopy := cmap[bodyBi]

	// InsertWideReferences on the copy.
	applyChunksFlat(f, bodyCopy, chunks, rep)

	// Schedule both loops and compare.
	var sc sched.FlatScratch
	rep.CyclesOriginal = sched.EstimateFlat(f, bodyBi, m, &sc)
	rep.CyclesCoalesced = sched.EstimateFlat(f, bodyCopy, m, &sc)
	if !opts.Force && rep.CyclesCoalesced >= rep.CyclesOriginal {
		f.TruncateBlocks(nBlocks)
		return false
	}

	info := reanalyzeFlat(fp, fi, g, l)
	okCond, nInstrs, nPairs, nAligns, ok := emitChecks(flatChecks{f: f, bi: l.Preheader},
		body, m, chunks, flatIV{info})
	if !ok {
		f.TruncateBlocks(nBlocks)
		rep.Reason = "checks:ungeneratable"
		return false
	}
	rep.CheckInstrs = nInstrs
	rep.AliasCheckPairs = nPairs
	rep.AlignmentChecks = nAligns

	ti, _, _ := f.TermIdx(l.Preheader)
	copyHeader := cmap[l.Header]
	if okCond.Kind == rtl.KindNone {
		// Statically safe: enter the coalesced loop unconditionally; the
		// safe loop stays in place (unreachable-block cleanup removes it).
		if f.Target[ti] == l.Header {
			f.Target[ti] = copyHeader
		}
		if f.Else[ti] == l.Header {
			f.Else[ti] = copyHeader
		}
	} else {
		br := rtl.MkInstr(rtl.Branch)
		br.A = okCond
		br.Target = copyHeader
		br.Else = l.Header
		f.SetInstr(ti, br)
	}
	return true
}

// reanalyzeFlat is reanalyze on the flat form: a fresh CFG (on which the
// just-appended clone region is unreachable, exactly as on the graph side),
// the same loop found again by header, and fresh induction info.
func reanalyzeFlat(fp *rtl.FlatProgram, fi int, g *cfg.FlatGraph, l *cfg.FlatLoop) *iv.FlatInfo {
	g2 := cfg.NewFlat(fp, fi)
	for _, l2 := range g2.FindLoops() {
		if l2.Header == l.Header {
			l2.Preheader = l.Preheader
			return iv.AnalyzeFlat(g2, l2)
		}
	}
	return iv.AnalyzeFlat(g, l)
}

// applyChunksFlat is applyChunks on the flat copy of the body block. The
// refs' indices are block-relative positions recorded on the original body,
// valid in the copy because replication preserves layout; reads of the
// replaced instructions' fields come from the decoded snapshot (identical to
// the copy's content until the rewrite).
func applyChunksFlat(f *rtl.FlatFn, bodyCopy int32, chunks []*chunk, rep *LoopReport) {
	type insertion struct {
		pos   int // index in the original instruction numbering
		after bool
		in    rtl.FlatInstr
	}
	var insertions []insertion
	start := f.Blocks[bodyCopy].InstrStart

	for _, c := range chunks {
		base := rtl.R(c.part.base)
		if c.isLoad {
			wideReg := f.NewReg()
			wl := rtl.MkInstr(rtl.Load)
			wl.Dst = wideReg
			wl.A = base
			wl.Disp = c.minDisp
			wl.Width = c.wide
			insertions = append(insertions, insertion{pos: c.firstIndex(), in: wl})
			for _, r := range c.refs {
				off := r.disp - c.minDisp
				ex := rtl.MkInstr(rtl.Extract)
				ex.Dst = r.in.Dst
				ex.A = rtl.R(wideReg)
				ex.B = rtl.C(off)
				ex.Width = c.width
				ex.Signed = r.in.Signed
				f.SetInstr(start+int32(r.index), ex)
			}
			rep.WideLoads++
			rep.NarrowLoads += len(c.refs)
		} else {
			// Process stores in program order so the insert chain respects
			// any same-slot ordering.
			ordered := append([]ref(nil), c.refs...)
			sort.Slice(ordered, func(i, j int) bool { return ordered[i].index < ordered[j].index })
			cur := rtl.Operand{Kind: rtl.KindConst, Const: 0}
			for _, r := range ordered {
				val := r.in.B
				off := r.disp - c.minDisp
				nr := f.NewReg()
				ii := rtl.MkInstr(rtl.Insert)
				ii.Dst = nr
				ii.A = cur
				ii.B = val
				ii.C = rtl.C(off)
				ii.Width = c.width
				f.SetInstr(start+int32(r.index), ii)
				cur = rtl.R(nr)
			}
			ws := rtl.MkInstr(rtl.Store)
			ws.A = base
			ws.B = cur
			ws.Disp = c.minDisp
			ws.Width = c.wide
			insertions = append(insertions, insertion{pos: c.lastIndex(), after: true, in: ws})
			rep.WideStores++
			rep.NarrowStores += len(c.refs)
		}
	}

	// Apply insertions from the highest position down so earlier indices
	// stay valid.
	sort.Slice(insertions, func(i, j int) bool {
		if insertions[i].pos != insertions[j].pos {
			return insertions[i].pos > insertions[j].pos
		}
		// At equal positions, "after" insertions go in first so a "before"
		// at the same slot ends up earlier in the final order.
		return insertions[i].after && !insertions[j].after
	})
	for _, ins := range insertions {
		at := int32(ins.pos)
		if ins.after {
			at++
		}
		f.SpliceInstrs(bodyCopy, at, 0, []rtl.FlatInstr{ins.in})
	}
}
