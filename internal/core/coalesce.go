// Package core implements memory access coalescing, the contribution of
// Davidson & Jinturkar, "Memory Access Coalescing: A Technique for
// Eliminating Redundant Memory Accesses" (PLDI 1994). Narrow loads and
// stores that an unrolled loop issues at consecutive displacements off the
// same pointer induction variable are replaced by one wide memory reference
// plus register extract/insert operations. Safety is established by a
// hazard analysis (Figure 4 of the paper) backed by run-time alias and
// alignment checks in the loop preheader (Figure 5), and profitability by
// statically scheduling the original and transformed loop bodies and
// keeping the faster (Figure 3).
//
// The procedure names follow the paper: CoalesceMemoryAccesses is the
// Figure 2 driver; classifyPartitions is
// ClassifyMemoryReferencesIntoPartitions; IsHazard is Figure 4's safety
// walk; doProfitabilityAnalysisAndModify is Figure 3.
package core

import (
	"fmt"
	"sort"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// Options selects which reference kinds to coalesce, matching the paper's
// evaluation columns ("coalesce loads" vs "coalesce loads and stores").
type Options struct {
	Loads  bool
	Stores bool
	// Force applies the transformation even when the schedule comparison
	// predicts no win (used to reproduce behaviour where the prediction is
	// wrong, and for ablations).
	Force bool
	// NoRuntimeChecks restricts coalescing to cases provable at compile
	// time: partitions may need no alias checks and, on aligning machines,
	// no alignment checks. The paper's observation is that this eliminates
	// almost every opportunity.
	NoRuntimeChecks bool
}

// DefaultOptions coalesces both loads and stores with run-time checks.
func DefaultOptions() Options { return Options{Loads: true, Stores: true} }

// LoopReport describes what happened to one candidate loop. Reason is a
// machine-readable token ("hazard:intervening-store",
// "profitability:sched-cycles 14>=14", ...) shared verbatim with the
// loop's optimization remark.
type LoopReport struct {
	Header          string
	Fn              string
	Applied         bool
	Reason          string
	WideLoads       int
	WideStores      int
	NarrowLoads     int // narrow loads replaced
	NarrowStores    int // narrow stores replaced
	CyclesOriginal  int
	CyclesCoalesced int
	CheckInstrs     int // run-time check instructions added to the preheader
	AliasCheckPairs int
	AlignmentChecks int
}

// ivSource abstracts the induction-variable facts the coalescer reads —
// invariance, basic-IV steps, and the loop-control test — so the
// classification, hazard, and check-generation code below serves the
// pointer-graph and flat forms from one implementation.
type ivSource interface {
	Invariant(r rtl.Reg) bool
	// IVStep returns the per-iteration step of basic induction variable r.
	IVStep(r rtl.Reg) (int64, bool)
	// ControlInfo returns the loop-control IV register and its invariant
	// bound; ok is false when no control test was recognized.
	ControlInfo() (ctl rtl.Reg, bound rtl.Operand, ok bool)
}

// graphIV adapts iv.Info to ivSource.
type graphIV struct{ info *iv.Info }

func (s graphIV) Invariant(r rtl.Reg) bool { return s.info.Invariant(r) }

func (s graphIV) IVStep(r rtl.Reg) (int64, bool) {
	if biv := s.info.BasicIVs[r]; biv != nil {
		return biv.Step, true
	}
	return 0, false
}

func (s graphIV) ControlInfo() (rtl.Reg, rtl.Operand, bool) {
	if c := s.info.Control; c != nil {
		return c.IV, c.Bound, true
	}
	return rtl.NoReg, rtl.Operand{}, false
}

// ref is one narrow memory reference inside the loop body.
type ref struct {
	in    *rtl.Instr
	index int // position within the body block
	disp  int64
}

// partition groups the references that share a base register, the paper's
// "unique identifier" (most probably the register containing the start
// address of the array).
type partition struct {
	base     rtl.Reg
	step     int64 // bytes of base motion per loop iteration (0 = invariant)
	loads    []ref
	stores   []ref
	minDisp  int64
	maxDisp  int64
	maxWidth int64
}

// chunk is one group of consecutive same-width references that a single
// wide reference can replace.
type chunk struct {
	part    *partition
	isLoad  bool
	refs    []ref // sorted by displacement; full coverage, no gaps
	width   rtl.Width
	wide    rtl.Width
	minDisp int64
	// needsAliasCheck lists the partitions whose run-time range must be
	// shown disjoint from this chunk's partition.
	needsAliasCheck map[rtl.Reg]bool
}

// CoalesceMemoryAccesses walks every loop of the function innermost-first
// and applies memory access coalescing where safe and profitable. It
// returns one report per loop examined, and emits exactly one Passed or
// Missed optimization remark per examined loop into em (plus Analysis
// remarks for per-chunk hazard verdicts and run-time check emission). A nil
// em disables remarks.
func CoalesceMemoryAccesses(f *rtl.Fn, m *machine.Machine, opts Options, em telemetry.Emitter) []LoopReport {
	if !opts.Loads && !opts.Stores {
		return nil
	}
	em = telemetry.OrNop(em)
	var reports []LoopReport
	g := cfg.New(f)
	loops := g.FindLoops()
	for _, l := range loops {
		rep := coalesceLoop(f, g, l, m, opts, em)
		reports = append(reports, *rep)
		emitLoopRemark(em, rep)
		if rep.Applied {
			// The CFG is stale after surgery; recompute for further loops.
			g = cfg.New(f)
		}
	}
	return reports
}

// emitLoopRemark converts one loop report into its Passed/Missed remark and
// the registry counters the evaluation tables read.
func emitLoopRemark(em telemetry.Emitter, rep *LoopReport) {
	em.Count("coalesce.loops_examined", 1)
	rem := telemetry.Remark{
		Pass:   "coalesce",
		Fn:     rep.Fn,
		Loop:   rep.Header,
		Reason: rep.Reason,
	}
	if rep.Applied {
		rem.Kind = telemetry.Passed
		rem.Name = "Coalesced"
		rem.Args = map[string]int64{
			"wide_loads":    int64(rep.WideLoads),
			"wide_stores":   int64(rep.WideStores),
			"narrow_loads":  int64(rep.NarrowLoads),
			"narrow_stores": int64(rep.NarrowStores),
			"sched_before":  int64(rep.CyclesOriginal),
			"sched_after":   int64(rep.CyclesCoalesced),
			"check_instrs":  int64(rep.CheckInstrs),
		}
		em.Count("coalesce.loops_coalesced", 1)
		em.Count("coalesce.wide_loads", int64(rep.WideLoads))
		em.Count("coalesce.wide_stores", int64(rep.WideStores))
		em.Count("coalesce.narrow_loads_eliminated", int64(rep.NarrowLoads))
		em.Count("coalesce.narrow_stores_eliminated", int64(rep.NarrowStores))
		em.Count("coalesce.check_instrs", int64(rep.CheckInstrs))
		em.Count("coalesce.alias_check_pairs", int64(rep.AliasCheckPairs))
		em.Count("coalesce.alignment_checks", int64(rep.AlignmentChecks))
		if rep.CheckInstrs > 0 {
			em.Observe("coalesce.check_instrs_per_loop", int64(rep.CheckInstrs))
		}
	} else {
		rem.Kind = telemetry.Missed
		rem.Name = "NotCoalesced"
		rem.Args = map[string]int64{}
		if rep.CyclesOriginal != 0 || rep.CyclesCoalesced != 0 {
			rem.Args["sched_before"] = int64(rep.CyclesOriginal)
			rem.Args["sched_after"] = int64(rep.CyclesCoalesced)
		}
		em.Count("coalesce.loops_missed", 1)
	}
	em.Emit(rem)
}

// bodyBlock finds the single block carrying the loop's memory references;
// coalescing requires them all in one block (IsHazard's first test). The
// reason token distinguishes the two failure shapes.
func bodyBlock(l *cfg.Loop) (*rtl.Block, string) {
	var body *rtl.Block
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.IsMem() {
				if body != nil && body != b {
					return nil, "shape:refs-span-blocks"
				}
				body = b
			}
		}
	}
	if body == nil {
		return nil, "shape:no-memory-refs"
	}
	return body, ""
}

func coalesceLoop(f *rtl.Fn, g *cfg.Graph, l *cfg.Loop, m *machine.Machine, opts Options, em telemetry.Emitter) *LoopReport {
	rep := &LoopReport{Header: l.Header.Name, Fn: f.Name}
	body, why := bodyBlock(l)
	if body == nil {
		rep.Reason = why
		return rep
	}
	if body == l.Header && len(l.Blocks) > 2 {
		rep.Reason = "shape:refs-in-multi-block-header"
		return rep
	}
	// The body must run exactly once per iteration.
	if !g.Dominates(body, l.Latch) {
		rep.Reason = "shape:body-not-dominating-latch"
		return rep
	}
	du := dataflow.ComputeDefUse(f)
	info := iv.Analyze(g, l, du)
	src := graphIV{info}

	parts := classifyPartitions(body.Instrs, src)
	if len(parts) == 0 {
		rep.Reason = "partition:no-analyzable-bases"
		return rep
	}
	chunks := findChunks(parts, m, opts)
	if len(chunks) == 0 {
		rep.Reason = "partition:no-consecutive-runs"
		return rep
	}
	safe := filterChunks(body.Instrs, chunks, parts, src, m, opts, em, rep)
	if len(safe) == 0 {
		return rep
	}

	EnsureDedicatedPreheader(f, g, l)
	rep.Applied = doProfitabilityAnalysisAndModify(f, g, l, body, m, opts, safe, rep)
	finishReport(em, rep, opts)
	return rep
}

// filterChunks is the safety half of the Figure 2 driver: hazard analysis
// per chunk — chunks that fail are dropped, chunks that need run-time
// disambiguation record their alias pairs — followed by the trip-count
// restriction on alias checking. Each rejection is surfaced as an Analysis
// remark and a counter, so Table-IV-style "why not" questions have answers.
// On an empty result rep.Reason carries the first rejection.
func filterChunks(body []*rtl.Instr, chunks []*chunk, parts map[rtl.Reg]*partition,
	src ivSource, m *machine.Machine, opts Options, em telemetry.Emitter,
	rep *LoopReport) []*chunk {

	var safe []*chunk
	firstReject := ""
	for _, c := range chunks {
		hz, verdict := IsHazard(body, c, parts, src)
		reason := "hazard:" + verdict
		switch {
		case hz == hazardUnsafe:
		case hz == hazardNeedsChecks && opts.NoRuntimeChecks:
			reason = "hazard:runtime-checks-disabled"
		case opts.NoRuntimeChecks && m.MustAlign && c.wide > c.width:
			// Alignment cannot be proven statically for pointer parameters.
			reason = "alignment:unprovable-statically"
		default:
			safe = append(safe, c)
			continue
		}
		if firstReject == "" {
			firstReject = reason
		}
		em.Count("coalesce.hazard_rejects", 1)
		em.Emit(telemetry.Remark{
			Kind: telemetry.Analysis, Pass: "coalesce", Fn: rep.Fn,
			Loop: rep.Header, Name: "HazardReject", Reason: reason,
			Args: map[string]int64{"refs": int64(len(c.refs))},
		})
	}
	if len(safe) == 0 {
		rep.Reason = firstReject
		return nil
	}
	// Run-time alias ranges need the loop trip count; without a recognized
	// control test, keep only chunks that need no alias checks.
	if _, _, haveTrips := src.ControlInfo(); !haveTrips {
		var kept []*chunk
		for _, c := range safe {
			if len(c.needsAliasCheck) == 0 {
				kept = append(kept, c)
			}
		}
		safe = kept
		if len(safe) == 0 {
			rep.Reason = "alias:trip-count-unknown"
			return nil
		}
	}
	return safe
}

// finishReport fills the profitability reason once the transform decision is
// made, and emits the RuntimeChecks analysis remark for applied loops.
func finishReport(em telemetry.Emitter, rep *LoopReport, opts Options) {
	if rep.Applied {
		if opts.Force && rep.CyclesCoalesced >= rep.CyclesOriginal {
			rep.Reason = fmt.Sprintf("profitability:forced sched-cycles %d>=%d",
				rep.CyclesCoalesced, rep.CyclesOriginal)
		} else {
			rep.Reason = fmt.Sprintf("profitability:sched-cycles %d<%d",
				rep.CyclesCoalesced, rep.CyclesOriginal)
		}
		if rep.AlignmentChecks > 0 {
			em.Emit(telemetry.Remark{
				Kind: telemetry.Analysis, Pass: "coalesce", Fn: rep.Fn,
				Loop: rep.Header, Name: "RuntimeChecks",
				Reason: "alignment:runtime-check-emitted",
				Args: map[string]int64{
					"alignment_checks": int64(rep.AlignmentChecks),
					"alias_pairs":      int64(rep.AliasCheckPairs),
					"check_instrs":     int64(rep.CheckInstrs),
				},
			})
		} else if rep.AliasCheckPairs > 0 {
			em.Emit(telemetry.Remark{
				Kind: telemetry.Analysis, Pass: "coalesce", Fn: rep.Fn,
				Loop: rep.Header, Name: "RuntimeChecks",
				Reason: "alias:runtime-check-emitted",
				Args: map[string]int64{
					"alias_pairs":  int64(rep.AliasCheckPairs),
					"check_instrs": int64(rep.CheckInstrs),
				},
			})
		}
	} else if rep.Reason == "" {
		rep.Reason = fmt.Sprintf("profitability:sched-cycles %d>=%d",
			rep.CyclesCoalesced, rep.CyclesOriginal)
	}
}

// EnsureDedicatedPreheader guarantees l.Preheader exists and is used only
// as the loop's entry (safe to grow with check code).
func EnsureDedicatedPreheader(f *rtl.Fn, g *cfg.Graph, l *cfg.Loop) {
	if l.Preheader == nil {
		g.EnsurePreheader(l)
	}
}

// classifyPartitions groups the body's memory references by base register.
// Only bases that are loop invariant or basic induction variables qualify;
// anything else cannot be described relative to the induction variable and
// is unsafe to coalesce (CalculateRelativeOffsets failing in the paper).
func classifyPartitions(body []*rtl.Instr, info ivSource) map[rtl.Reg]*partition {
	parts := make(map[rtl.Reg]*partition)
	for i, in := range body {
		if !in.IsMem() {
			continue
		}
		base, ok := in.A.IsReg()
		if !ok {
			continue
		}
		step, isIV := info.IVStep(base)
		if !isIV && !info.Invariant(base) {
			continue
		}
		p := parts[base]
		if p == nil {
			p = &partition{base: base, step: step, minDisp: in.Disp, maxDisp: in.Disp}
			parts[base] = p
		}
		r := ref{in: in, index: i, disp: in.Disp}
		if in.Op == rtl.Load {
			p.loads = append(p.loads, r)
		} else {
			p.stores = append(p.stores, r)
		}
		if in.Disp < p.minDisp {
			p.minDisp = in.Disp
		}
		if in.Disp > p.maxDisp {
			p.maxDisp = in.Disp
		}
		if int64(in.Width) > p.maxWidth {
			p.maxWidth = int64(in.Width)
		}
	}
	return parts
}

// findChunks slices each partition's sorted references into maximal runs of
// consecutive displacements and cuts each run into power-of-two groups that
// a single aligned wide reference covers.
func findChunks(parts map[rtl.Reg]*partition, m *machine.Machine, opts Options) []*chunk {
	var bases []rtl.Reg
	for b := range parts {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var chunks []*chunk
	for _, b := range bases {
		p := parts[b]
		if opts.Loads {
			chunks = append(chunks, chunkRefs(p, p.loads, true, m)...)
		}
		if opts.Stores {
			chunks = append(chunks, chunkRefs(p, p.stores, false, m)...)
		}
	}
	return chunks
}

// dispSlot collects every reference sharing one displacement.
type dispSlot struct {
	disp int64
	refs []ref
}

func chunkRefs(p *partition, refs []ref, isLoad bool, m *machine.Machine) []*chunk {
	// Group by width; only same-width references coalesce. Several
	// references may share one displacement (an unrolled convolution
	// rereads the same pixels); they all ride the same wide reference —
	// that reuse is precisely the redundancy the paper's Figure 1 removes.
	byWidth := make(map[rtl.Width]map[int64][]ref)
	for _, r := range refs {
		m := byWidth[r.in.Width]
		if m == nil {
			m = make(map[int64][]ref)
			byWidth[r.in.Width] = m
		}
		m[r.disp] = append(m[r.disp], r)
	}
	var out []*chunk
	var widths []rtl.Width
	for w := range byWidth {
		widths = append(widths, w)
	}
	sort.Slice(widths, func(i, j int) bool { return widths[i] < widths[j] })
	for _, w := range widths {
		if w >= m.WordBytes {
			continue
		}
		var slots []dispSlot
		for d, rs := range byWidth[w] {
			slots = append(slots, dispSlot{disp: d, refs: rs})
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i].disp < slots[j].disp })
		// Split into maximal runs of consecutive displacements.
		var run []dispSlot
		flush := func() {
			out = append(out, cutRun(p, run, isLoad, w, m)...)
			run = nil
		}
		for _, s := range slots {
			if len(run) > 0 && s.disp != run[len(run)-1].disp+int64(w) {
				flush()
			}
			run = append(run, s)
		}
		flush()
	}
	return out
}

// cutRun cuts one consecutive run of displacement slots into the largest
// power-of-two groups the machine can load at once; groups covering fewer
// than two slots stay narrow.
func cutRun(p *partition, run []dispSlot, isLoad bool, w rtl.Width, m *machine.Machine) []*chunk {
	var out []*chunk
	i := 0
	for i < len(run) {
		c := m.MaxCoalesceFactor(w)
		for c > 1 && (i+c > len(run) || !rtl.Width(int64(c)*int64(w)).Valid()) {
			c /= 2
		}
		if c < 2 {
			i++
			continue
		}
		var group []ref
		for _, s := range run[i : i+c] {
			group = append(group, s.refs...)
		}
		out = append(out, &chunk{
			part:            p,
			isLoad:          isLoad,
			refs:            group,
			width:           w,
			wide:            rtl.Width(int64(c) * int64(w)),
			minDisp:         run[i].disp,
			needsAliasCheck: make(map[rtl.Reg]bool),
		})
		i += c
	}
	return out
}

// firstIndex and lastIndex give the chunk's extent in program order.
func (c *chunk) firstIndex() int {
	min := c.refs[0].index
	for _, r := range c.refs {
		if r.index < min {
			min = r.index
		}
	}
	return min
}

func (c *chunk) lastIndex() int {
	max := c.refs[0].index
	for _, r := range c.refs {
		if r.index > max {
			max = r.index
		}
	}
	return max
}

func (c *chunk) String() string {
	kind := "stores"
	if c.isLoad {
		kind = "loads"
	}
	return fmt.Sprintf("%s %s[%d..%d) w%d->w%d", kind, c.part.base,
		c.minDisp, c.minDisp+int64(c.wide), c.width, c.wide)
}
