package core

import (
	"math/bits"
	"sort"

	"macc/internal/dataflow"
	"macc/internal/machine"
	"macc/internal/rtl"
)

func dataflowDefUse(f *rtl.Fn) *dataflow.DefUse { return dataflow.ComputeDefUse(f) }

// checkBuilder abstracts where run-time check instructions land and how
// fresh registers are named, so emitChecks serves the graph preheader
// (Block.Append) and the flat preheader (AppendInstr) identically — the
// emission and register-allocation order is the shared code's, so both
// forms produce byte-identical check sequences.
type checkBuilder interface {
	NewReg() rtl.Reg
	Emit(in *rtl.Instr)
}

// graphChecks emits into a pointer-graph preheader.
type graphChecks struct {
	f  *rtl.Fn
	ph *rtl.Block
}

func (b graphChecks) NewReg() rtl.Reg   { return b.f.NewReg() }
func (b graphChecks) Emit(in *rtl.Instr) { b.ph.Append(in) }

// flatChecks emits into a flat preheader. Check instructions are pure ALU
// ops (no control flow, no calls), so only the value fields transfer.
type flatChecks struct {
	f  *rtl.FlatFn
	bi int32
}

func (b flatChecks) NewReg() rtl.Reg { return b.f.NewReg() }

func (b flatChecks) Emit(in *rtl.Instr) {
	fi := rtl.MkInstr(in.Op)
	fi.Dst = in.Dst
	fi.A = in.A
	fi.B = in.B
	fi.Signed = in.Signed
	b.f.AppendInstr(b.bi, fi)
}

// baseRange summarizes the memory region one partition touches over the
// whole loop: its pointer's entry value, per-iteration step, and the
// displacement envelope of its references.
type baseRange struct {
	base     rtl.Reg
	step     int64
	minDisp  int64
	maxDisp  int64
	maxWidth int64
	lo, hi   rtl.Operand // emitted bounds
}

// emitChecks generates the run-time alias and alignment tests into the
// loop preheader (the paper's InsertAlignmentCheckInPreheader and
// InsertAliasingChecksInPreheader). It returns the combined "all checks
// pass" condition (Kind None when no checks were necessary), and the number
// of instructions, alias pairs, and alignment tests emitted.
//
// Alias checking compares the byte ranges two partitions sweep during the
// loop: with T an over-approximate trip count, partition X with entry
// pointer pX, step sX, and displacement envelope [minD, maxD+w) covers
// [pX+minD, pX+T*sX+maxD+w+|sX|) for forward motion (mirrored for
// backward). Two ranges are safe when one ends before the other begins.
// The over-approximation only ever sends execution to the safe loop.
func emitChecks(cb checkBuilder, body []*rtl.Instr, m *machine.Machine,
	chunks []*chunk, info ivSource) (okCond rtl.Operand, nInstrs, nPairs, nAligns int, ok bool) {

	emit := func(in *rtl.Instr) {
		cb.Emit(in)
		nInstrs++
	}

	var acc rtl.Operand
	combine := func(cond rtl.Operand) {
		if acc.Kind == rtl.KindNone {
			acc = cond
			return
		}
		r := cb.NewReg()
		emit(rtl.BinI(rtl.And, r, acc, cond))
		acc = rtl.R(r)
	}

	// Alignment checks: ((base + minDisp) & (wide-1)) == 0, deduplicated.
	if m.MustAlign {
		type alignKey struct {
			base rtl.Reg
			wide rtl.Width
			res  int64
		}
		seen := make(map[alignKey]bool)
		for _, c := range chunks {
			res := ((c.minDisp % int64(c.wide)) + int64(c.wide)) % int64(c.wide)
			k := alignKey{c.part.base, c.wide, res}
			if seen[k] {
				continue
			}
			seen[k] = true
			addr := rtl.R(c.part.base)
			if c.minDisp != 0 {
				t := cb.NewReg()
				emit(rtl.BinI(rtl.Add, t, addr, rtl.C(c.minDisp)))
				addr = rtl.R(t)
			}
			masked := cb.NewReg()
			emit(rtl.BinI(rtl.And, masked, addr, rtl.C(int64(c.wide)-1)))
			okA := cb.NewReg()
			emit(rtl.BinI(rtl.SetEQ, okA, rtl.R(masked), rtl.C(0)))
			combine(rtl.R(okA))
			nAligns++
		}
	}

	// Alias pairs.
	type pairKey struct{ a, b rtl.Reg }
	pairs := make(map[pairKey]bool)
	for _, c := range chunks {
		for other := range c.needsAliasCheck {
			a, b := c.part.base, other
			if a > b {
				a, b = b, a
			}
			pairs[pairKey{a, b}] = true
		}
	}
	if len(pairs) > 0 {
		ctlIV, bound, haveCtl := info.ControlInfo()
		if !haveCtl {
			return rtl.Operand{}, nInstrs, 0, nAligns, false
		}
		ctlStep, isIV := info.IVStep(ctlIV)
		if !isIV {
			return rtl.Operand{}, nInstrs, 0, nAligns, false
		}
		// T = (bound - iv) / |step|  (signed; a non-positive result means
		// the loop will not run, and the guard prevents entry anyway).
		diff := cb.NewReg()
		if ctlStep > 0 {
			emit(rtl.BinI(rtl.Sub, diff, bound, rtl.R(ctlIV)))
		} else {
			emit(rtl.BinI(rtl.Sub, diff, rtl.R(ctlIV), bound))
		}
		abs := ctlStep
		if abs < 0 {
			abs = -abs
		}
		trips := cb.NewReg()
		if abs&(abs-1) == 0 {
			emit(rtl.SBinI(rtl.Shr, trips, rtl.R(diff), rtl.C(int64(bits.TrailingZeros64(uint64(abs))))))
		} else {
			emit(rtl.SBinI(rtl.Div, trips, rtl.R(diff), rtl.C(abs)))
		}

		ranges := make(map[rtl.Reg]*baseRange)
		boundsOf := func(base rtl.Reg) *baseRange {
			if r, ok := ranges[base]; ok {
				return r
			}
			r := rangeForBase(base, body, info)
			// delta = T * step
			var delta rtl.Operand
			if r.step != 0 {
				d := cb.NewReg()
				emit(rtl.BinI(rtl.Mul, d, rtl.R(trips), rtl.C(r.step)))
				delta = rtl.R(d)
			} else {
				delta = rtl.C(0)
			}
			// With T iterations the last access of a forward partition is
			// at base+(T-1)*step+maxDisp and touches maxWidth bytes; since
			// displacements stay below one step, base+T*step bounds it
			// exactly, keeping adjacent arrays distinguishable (the
			// paper's own check is the exact "b + n <= a" form).
			switch {
			case r.step > 0:
				lo := cb.NewReg()
				emit(rtl.BinI(rtl.Add, lo, rtl.R(base), rtl.C(r.minDisp)))
				extra := r.maxDisp + r.maxWidth - r.step
				if extra < 0 {
					extra = 0
				}
				h1 := cb.NewReg()
				emit(rtl.BinI(rtl.Add, h1, rtl.R(base), delta))
				hi := h1
				if extra != 0 {
					hi = cb.NewReg()
					emit(rtl.BinI(rtl.Add, hi, rtl.R(h1), rtl.C(extra)))
				}
				r.lo, r.hi = rtl.R(lo), rtl.R(hi)
			case r.step < 0:
				l1 := cb.NewReg()
				emit(rtl.BinI(rtl.Add, l1, rtl.R(base), delta))
				lo := cb.NewReg()
				emit(rtl.BinI(rtl.Add, lo, rtl.R(l1), rtl.C(r.minDisp)))
				hi := cb.NewReg()
				emit(rtl.BinI(rtl.Add, hi, rtl.R(base), rtl.C(r.maxDisp+r.maxWidth)))
				r.lo, r.hi = rtl.R(lo), rtl.R(hi)
			default:
				lo := cb.NewReg()
				emit(rtl.BinI(rtl.Add, lo, rtl.R(base), rtl.C(r.minDisp)))
				hi := cb.NewReg()
				emit(rtl.BinI(rtl.Add, hi, rtl.R(base), rtl.C(r.maxDisp+r.maxWidth)))
				r.lo, r.hi = rtl.R(lo), rtl.R(hi)
			}
			ranges[base] = r
			return r
		}

		var keys []pairKey
		for k := range pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		for _, k := range keys {
			ra, rb := boundsOf(k.a), boundsOf(k.b)
			c1 := cb.NewReg()
			emit(rtl.SBinI(rtl.SetLE, c1, ra.hi, rb.lo))
			c2 := cb.NewReg()
			emit(rtl.SBinI(rtl.SetLE, c2, rb.hi, ra.lo))
			okp := cb.NewReg()
			emit(rtl.BinI(rtl.Or, okp, rtl.R(c1), rtl.R(c2)))
			combine(rtl.R(okp))
			nPairs++
		}
	}
	return acc, nInstrs, nPairs, nAligns, true
}

// rangeForBase computes the displacement envelope of every reference off
// base inside the body, and its per-iteration step.
func rangeForBase(base rtl.Reg, body []*rtl.Instr, info ivSource) *baseRange {
	r := &baseRange{base: base}
	if step, isIV := info.IVStep(base); isIV {
		r.step = step
	}
	first := true
	for _, in := range body {
		if !in.IsMem() {
			continue
		}
		if b, ok := in.A.IsReg(); !ok || b != base {
			continue
		}
		if first {
			r.minDisp, r.maxDisp = in.Disp, in.Disp
			first = false
		}
		if in.Disp < r.minDisp {
			r.minDisp = in.Disp
		}
		if in.Disp > r.maxDisp {
			r.maxDisp = in.Disp
		}
		if int64(in.Width) > r.maxWidth {
			r.maxWidth = int64(in.Width)
		}
	}
	if r.maxWidth == 0 {
		r.maxWidth = 8
	}
	return r
}
