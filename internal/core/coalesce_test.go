package core_test

import (
	"strings"
	"testing"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
)

const addSrc = `
void f(unsigned char *a, unsigned char *b, unsigned char *o, int n) {
	int i;
	for (i = 0; i < n; i++) o[i] = a[i] + b[i];
}
`

const loadOnlySrc = `
int f(short *a, short *b, int n) {
	int i, c = 0;
	for (i = 0; i < n; i++) c += a[i] * b[i];
	return c;
}
`

func compileWith(t *testing.T, src string, m *machine.Machine, opts core.Options) *macc.Program {
	t.Helper()
	p, err := macc.Compile(src, macc.Config{
		Machine: m, Optimize: true, Unroll: true, Schedule: false, Coalesce: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func appliedReport(p *macc.Program) (core.LoopReport, bool) {
	for _, r := range p.Reports {
		if r.Applied {
			return r, true
		}
	}
	return core.LoopReport{}, false
}

func TestCoalesceAppliesOnAlpha(t *testing.T) {
	p := compileWith(t, addSrc, machine.Alpha(), core.Options{Loads: true, Stores: true})
	rep, ok := appliedReport(p)
	if !ok {
		t.Fatalf("not applied: %+v", p.Reports)
	}
	if rep.WideLoads != 2 || rep.WideStores != 1 {
		t.Errorf("wide refs = %d loads/%d stores, want 2/1", rep.WideLoads, rep.WideStores)
	}
	if rep.NarrowLoads != 16 || rep.NarrowStores != 8 {
		t.Errorf("narrow refs replaced = %d/%d, want 16/8", rep.NarrowLoads, rep.NarrowStores)
	}
	if rep.CyclesCoalesced >= rep.CyclesOriginal {
		t.Errorf("profitability: %d >= %d", rep.CyclesCoalesced, rep.CyclesOriginal)
	}
	if rep.AlignmentChecks == 0 || rep.AliasCheckPairs == 0 {
		t.Errorf("expected run-time checks: %+v", rep)
	}
}

// TestPreheaderCheckBudget verifies the paper's §4 claim: "Typically, 10 to
// 15 instructions must be added in the loop preheader to check for possible
// hazards." Our check generator lands in the same band for the dot-product
// shape (two partitions, no stores) and somewhat more for three partitions
// with stores.
func TestPreheaderCheckBudget(t *testing.T) {
	p := compileWith(t, loadOnlySrc, machine.Alpha(), core.Options{Loads: true})
	rep, ok := appliedReport(p)
	if !ok {
		t.Fatalf("not applied: %+v", p.Reports)
	}
	if rep.CheckInstrs < 3 || rep.CheckInstrs > 15 {
		t.Errorf("check instructions = %d, expected the paper's band", rep.CheckInstrs)
	}
	p2 := compileWith(t, addSrc, machine.Alpha(), core.Options{Loads: true, Stores: true})
	rep2, ok := appliedReport(p2)
	if !ok {
		t.Fatal("not applied")
	}
	if rep2.CheckInstrs > 40 {
		t.Errorf("check instructions = %d, unreasonably many", rep2.CheckInstrs)
	}
}

// TestFlowGraphShape checks the Figure 5 structure: the preheader branches
// on the check condition to either the coalesced loop or the original
// (safe) loop, and both eventually reach the rolled remainder loop.
func TestFlowGraphShape(t *testing.T) {
	p := compileWith(t, addSrc, machine.Alpha(), core.Options{Loads: true, Stores: true})
	f, _ := p.Fn("f")
	var coalescedHeader, unrolledHeader *rtl.Block
	for _, b := range f.Blocks {
		if strings.HasSuffix(b.Name, ".coalesced") && strings.Contains(b.Name, "unrolled") &&
			!strings.Contains(b.Name, "body") {
			coalescedHeader = b
		}
		if strings.HasSuffix(b.Name, ".unrolled") && !strings.Contains(b.Name, "body") {
			unrolledHeader = b
		}
	}
	if coalescedHeader == nil || unrolledHeader == nil {
		names := []string{}
		for _, b := range f.Blocks {
			names = append(names, b.Name)
		}
		t.Fatalf("expected coalesced and safe unrolled loops, blocks: %v", names)
	}
	// Some block must branch to both (the check branch).
	found := false
	for _, b := range f.Blocks {
		s := b.Succs()
		if len(s) == 2 &&
			((s[0] == coalescedHeader && s[1] == unrolledHeader) ||
				(s[1] == coalescedHeader && s[0] == unrolledHeader)) {
			found = true
		}
	}
	if !found {
		t.Error("no preheader branch selecting between coalesced and safe loops")
	}
	// Both loop headers exit to the same remainder (rolled) header.
	exitOf := func(h *rtl.Block) *rtl.Block {
		for _, s := range h.Succs() {
			if !strings.Contains(s.Name, "body") {
				return s
			}
		}
		return nil
	}
	if e1, e2 := exitOf(coalescedHeader), exitOf(unrolledHeader); e1 == nil || e1 != e2 {
		t.Errorf("coalesced and safe loops do not share the remainder loop: %v vs %v", e1, e2)
	}
}

// TestM88100StoresUnprofitableStatically: with an honest insert cost in the
// scheduler's table, store coalescing on the 88100 would be rejected. The
// shipped model mirrors the paper's compiler, which believed the datasheet;
// this test documents the knob by flipping it.
func TestM88100StoresRejectedWithHonestCosts(t *testing.T) {
	m := machine.M88100()
	m.Sched.Insert = m.Exec.Insert // tell the compiler the truth
	m.Sched.InsertOcc = m.Exec.InsertOcc
	p := compileWith(t, `
		void f(unsigned char *a, unsigned char *o, int n) {
			int i;
			for (i = 0; i < n; i++) o[i] = a[i];
		}`, m, core.Options{Stores: true})
	if rep, ok := appliedReport(p); ok && rep.WideStores > 0 {
		t.Errorf("store coalescing should be unprofitable with honest insert costs: %+v", rep)
	}
}

func TestForceOverridesProfitability(t *testing.T) {
	m := machine.M88100()
	m.Sched.Insert = m.Exec.Insert
	m.Sched.InsertOcc = m.Exec.InsertOcc
	p := compileWith(t, `
		void f(unsigned char *a, unsigned char *o, int n) {
			int i;
			for (i = 0; i < n; i++) o[i] = a[i];
		}`, m, core.Options{Stores: true, Force: true})
	rep, ok := appliedReport(p)
	if !ok || rep.WideStores == 0 {
		t.Errorf("Force must apply the transformation regardless: %+v", p.Reports)
	}
}

// TestNoRuntimeChecksEliminatesOpportunities reproduces the paper's
// motivation for run-time analysis: restricted to compile-time provable
// cases, coalescing of pointer-parameter loops is impossible on an aligning
// machine.
func TestNoRuntimeChecksEliminatesOpportunities(t *testing.T) {
	p := compileWith(t, addSrc, machine.Alpha(),
		core.Options{Loads: true, Stores: true, NoRuntimeChecks: true})
	if rep, ok := appliedReport(p); ok {
		t.Errorf("static-only analysis should find nothing here: %+v", rep)
	}
}

func TestEqnttotLoopNotCoalesced(t *testing.T) {
	// Control flow inside the loop body (the early exit) must defeat the
	// same-basic-block requirement.
	src := `
	int f(short *a, short *b, int n) {
		int i;
		for (i = 0; i < n; i++) {
			if (a[i] != b[i]) return i;
		}
		return -1;
	}`
	p := compileWith(t, src, machine.Alpha(), core.Options{Loads: true, Stores: true})
	if rep, ok := appliedReport(p); ok {
		t.Errorf("multi-block loop body must not coalesce: %+v", rep)
	}
}

func TestWidthMixKeepsSeparateChunks(t *testing.T) {
	// Mixed widths off one pointer: only same-width runs coalesce.
	src := `
	long f(unsigned char *a, int n) {
		int i;
		long s = 0;
		for (i = 0; i < n; i++) {
			s += a[2*i] + a[2*i+1];
		}
		return s;
	}`
	p := compileWith(t, src, machine.Alpha(), core.Options{Loads: true})
	rep, ok := appliedReport(p)
	if !ok {
		t.Fatalf("expected application: %+v", p.Reports)
	}
	if rep.WideLoads == 0 {
		t.Error("no wide loads created")
	}
}

func TestInvariantBasePartition(t *testing.T) {
	// References off an invariant base (same addresses every iteration)
	// also coalesce; the wide load is simply loop invariant afterwards.
	src := `
	long f(short *tbl, short *a, int n) {
		int i;
		long s = 0;
		for (i = 0; i < n; i++) {
			s += a[i] * (tbl[0] + tbl[1] + tbl[2] + tbl[3]);
		}
		return s;
	}`
	p, err := macc.Compile(src, macc.Config{
		Machine: machine.Alpha(), Optimize: true, Unroll: true,
		Coalesce: core.Options{Loads: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Correctness is what matters; the table reads may or may not be
	// hoisted before coalescing sees them.
	s := p.NewSim(1 << 14)
	s.WriteInts(256, rtl.W2, []int64{1, 2, 3, 4})
	s.WriteInts(512, rtl.W2, []int64{5, 6, 7})
	res, err := s.Run("f", 256, 512, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((5 + 6 + 7) * 10); res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}

func TestReportsReasonsArePopulated(t *testing.T) {
	p := compileWith(t, `
		void f(long *a, int n) {
			int i;
			for (i = 0; i < n; i++) a[i] = i;
		}`, machine.Alpha(), core.Options{Loads: true, Stores: true})
	for _, r := range p.Reports {
		if r.Reason == "" {
			t.Errorf("empty reason in report %+v", r)
		}
	}
}

// TestRecurrenceStoresNotCoalesced is the paper's §1.1 Livermore loop 5
// context: x[i] = z[i]*(y[i] - x[i-1]) carries a recurrence through memory.
// Deferring the narrow stores of x into one wide store would let the next
// unrolled copy's load of x[i-1] read stale memory, so the hazard analysis
// must reject the x partition while remaining free to coalesce z and y.
func TestRecurrenceStoresNotCoalesced(t *testing.T) {
	src := `
	void lloop5(short *x, short *y, short *z, int n) {
		int i;
		for (i = 2; i < n; i++)
			x[i] = z[i] * (y[i] - x[i-1]);
	}`
	p := compileWith(t, src, machine.Alpha(), core.Options{Loads: true, Stores: true})
	for _, r := range p.Reports {
		if r.Applied && r.WideStores > 0 {
			t.Errorf("recurrence stores must not be coalesced: %+v", r)
		}
	}
	// Semantics: compare against the plain compile on real data.
	plain, err := macc.Compile(src, macc.Config{Machine: machine.Alpha(), Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	run := func(pr *macc.Program) []int64 {
		s := pr.NewSim(1 << 14)
		n := int64(40)
		for i := int64(0); i < n; i++ {
			s.WriteInts(1024+2*i, rtl.W2, []int64{i % 7})
			s.WriteInts(2048+2*i, rtl.W2, []int64{(i % 5) + 1})
			s.WriteInts(4096+2*i, rtl.W2, []int64{(i % 3) + 1})
		}
		if _, err := s.Run("lloop5", 1024, 2048, 4096, n); err != nil {
			t.Fatal(err)
		}
		return s.ReadInts(1024, rtl.W2, int(n), true)
	}
	want := run(plain)
	got := run(p)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("recurrence broken at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestLoadBetweenStoresSamePartition drives the Figure 4 rule directly: a
// same-partition load positioned between the stores a wide store would
// absorb must veto store coalescing.
func TestLoadBetweenStoresSamePartition(t *testing.T) {
	src := `
	long f(unsigned char *o, unsigned char *a, int n) {
		int i;
		long s = 0;
		for (i = 0; i < n; i++) {
			o[i] = a[i];
			s += o[i];
		}
		return s;
	}`
	p := compileWith(t, src, machine.Alpha(), core.Options{Loads: true, Stores: true})
	for _, r := range p.Reports {
		if r.Applied && r.WideStores > 0 {
			t.Errorf("store coalescing across same-partition loads: %+v", r)
		}
	}
	// And it must still compute the right answer.
	s := p.NewSim(1 << 14)
	n := int64(30)
	var want int64
	for i := int64(0); i < n; i++ {
		s.Mem[4096+i] = byte(i * 5)
		want += int64(byte(i * 5))
	}
	res, err := s.Run("f", 1024, 4096, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}

// TestManuallyUnrolledSource: the paper isolates coalescing by unrolling
// source loops by hand; the coalescer must find the consecutive references
// in the rolled loop without any unrolling pass.
func TestManuallyUnrolledSource(t *testing.T) {
	src := `
	long f(unsigned char *a, int n) {
		int i;
		long s = 0;
		for (i = 0; i < n; i++) {
			s += a[4*i] + a[4*i+1] + a[4*i+2] + a[4*i+3];
		}
		return s;
	}`
	p, err := macc.Compile(src, macc.Config{
		Machine: machine.Alpha(), Optimize: true, // note: no Unroll
		Coalesce: core.Options{Loads: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := appliedReport(p)
	if !ok {
		t.Fatalf("hand-unrolled loop not coalesced: %+v", p.Reports)
	}
	if rep.WideLoads != 1 || rep.NarrowLoads != 4 {
		t.Errorf("wide/narrow = %d/%d, want 1/4", rep.WideLoads, rep.NarrowLoads)
	}
	s := p.NewSim(1 << 14)
	var want int64
	for i := 0; i < 32; i++ {
		s.Mem[1024+i] = byte(3 * i)
		want += int64(byte(3 * i))
	}
	res, err := s.Run("f", 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}
