package core

import (
	"sort"

	"macc/internal/cfg"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/sched"
)

// doProfitabilityAnalysisAndModify is the paper's Figure 3: replicate the
// loop, insert the wide references into the copy, statically schedule both
// bodies, and adopt the copy only if it is faster (or Force is set). On
// adoption the preheader gains the run-time alignment and alias checks that
// select between the coalesced copy and the original safe loop at run time
// (Figure 5's flow graph).
func doProfitabilityAnalysisAndModify(f *rtl.Fn, g *cfg.Graph, l *cfg.Loop,
	body *rtl.Block, m *machine.Machine, opts Options, chunks []*chunk,
	rep *LoopReport) bool {

	// Static alignment feasibility: the pointer must advance by a multiple
	// of the wide width or alignment cannot be preserved across iterations.
	if m.MustAlign {
		var kept []*chunk
		for _, c := range chunks {
			if c.part.step%int64(c.wide) == 0 {
				kept = append(kept, c)
			}
		}
		chunks = kept
		if len(chunks) == 0 {
			rep.Reason = "alignment:step-incompatible-with-wide-width"
			return false
		}
	}

	// DoReplication: clone the loop; the clone becomes the coalesced fast
	// path, the original remains the safe loop.
	cmap := f.CloneRegion(l.Blocks, ".coalesced")
	bodyCopy := cmap[body]

	// InsertWideReferences on the copy.
	applyChunks(f, bodyCopy, chunks, rep)

	// Schedule both loops and compare.
	rep.CyclesOriginal = sched.Estimate(body, m)
	rep.CyclesCoalesced = sched.Estimate(bodyCopy, m)
	if !opts.Force && rep.CyclesCoalesced >= rep.CyclesOriginal {
		removeClones(f, cmap)
		return false
	}

	// Build the run-time checks in the preheader and point its terminator
	// at the check branch: coalesced copy when every check passes, original
	// safe loop otherwise.
	info := reanalyze(f, g, l)
	okCond, nInstrs, nPairs, nAligns, ok := emitChecks(graphChecks{f: f, ph: l.Preheader},
		body.Instrs, m, chunks, graphIV{info})
	if !ok {
		removeClones(f, cmap)
		rep.Reason = "checks:ungeneratable"
		return false
	}
	rep.CheckInstrs = nInstrs
	rep.AliasCheckPairs = nPairs
	rep.AlignmentChecks = nAligns

	ph := l.Preheader
	term := ph.Term()
	copyHeader := cmap[l.Header]
	if okCond.Kind == rtl.KindNone {
		// Statically safe: enter the coalesced loop unconditionally; the
		// safe loop stays in place (unreachable-block cleanup removes it).
		retarget(term, l.Header, copyHeader)
	} else {
		*term = *rtl.BranchI(okCond, copyHeader, l.Header)
	}
	return true
}

func retarget(term *rtl.Instr, from, to *rtl.Block) {
	if term.Target == from {
		term.Target = to
	}
	if term.Else == from {
		term.Else = to
	}
}

func removeClones(f *rtl.Fn, cmap map[*rtl.Block]*rtl.Block) {
	for _, copy := range cmap {
		f.RemoveBlock(copy)
	}
}

// reanalyze recomputes induction info for the loop (the clone does not
// disturb it, but check generation wants fresh def/use data).
func reanalyze(f *rtl.Fn, g *cfg.Graph, l *cfg.Loop) *iv.Info {
	g2 := cfg.New(f)
	// Find the same loop by header in the fresh graph.
	for _, l2 := range g2.FindLoops() {
		if l2.Header == l.Header {
			l2.Preheader = l.Preheader
			du := dataflowDefUse(f)
			return iv.Analyze(g2, l2, du)
		}
	}
	du := dataflowDefUse(f)
	return iv.Analyze(g, l, du)
}

// applyChunks rewrites the body copy: narrow loads become extracts fed by a
// wide load placed before the first of the group; narrow stores become an
// insert chain completed by a wide store after the last of the group.
func applyChunks(f *rtl.Fn, body *rtl.Block, chunks []*chunk, rep *LoopReport) {
	type insertion struct {
		pos   int // index in the original instruction numbering
		after bool
		in    *rtl.Instr
	}
	var insertions []insertion

	for _, c := range chunks {
		base := rtl.R(c.part.base)
		if c.isLoad {
			wideReg := f.NewReg()
			wl := rtl.LoadI(wideReg, base, c.minDisp, c.wide, false)
			insertions = append(insertions, insertion{pos: c.firstIndex(), in: wl})
			for _, r := range c.refs {
				old := body.Instrs[r.index]
				off := r.disp - c.minDisp
				*old = *rtl.ExtractI(old.Dst, rtl.R(wideReg), rtl.C(off), c.width, old.Signed)
			}
			rep.WideLoads++
			rep.NarrowLoads += len(c.refs)
		} else {
			// Process stores in program order so the insert chain respects
			// any same-slot ordering.
			ordered := append([]ref(nil), c.refs...)
			sort.Slice(ordered, func(i, j int) bool { return ordered[i].index < ordered[j].index })
			cur := rtl.Operand{Kind: rtl.KindConst, Const: 0}
			for _, r := range ordered {
				old := body.Instrs[r.index]
				val := old.B
				off := r.disp - c.minDisp
				nr := f.NewReg()
				*old = *rtl.InsertI(nr, cur, val, rtl.C(off), c.width)
				cur = rtl.R(nr)
			}
			ws := rtl.StoreI(base, c.minDisp, cur, c.wide)
			insertions = append(insertions, insertion{pos: c.lastIndex(), after: true, in: ws})
			rep.WideStores++
			rep.NarrowStores += len(c.refs)
		}
	}

	// Apply insertions from the highest position down so earlier indices
	// stay valid.
	sort.Slice(insertions, func(i, j int) bool {
		if insertions[i].pos != insertions[j].pos {
			return insertions[i].pos > insertions[j].pos
		}
		// At equal positions, "after" insertions go in first so a "before"
		// at the same slot ends up earlier in the final order.
		return insertions[i].after && !insertions[j].after
	})
	for _, ins := range insertions {
		at := ins.pos
		if ins.after {
			at++
		}
		body.InsertAt(at, ins.in)
	}
}
