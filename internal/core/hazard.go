package core

import (
	"macc/internal/rtl"
)

// hazardResult classifies a chunk after the Figure 4 safety walk.
type hazardResult uint8

const (
	hazardSafe hazardResult = iota
	// hazardNeedsChecks means the only obstacles are potential aliases
	// between different partitions, resolvable by run-time checks.
	hazardNeedsChecks
	hazardUnsafe
)

// IsHazard is the paper's Figure 4 analysis. For a load chunk, the wide
// load is inserted before the first (dominating) narrow load, so every
// instruction between that position and the later narrow loads is examined;
// for a store chunk, the wide store lands after the last (dominated) narrow
// store, so the span between the first store and that position is examined.
// Within the span:
//
//   - a same-partition store overlapping a coalesced load's slot would make
//     a later narrow load see a value the earlier wide load missed: unsafe;
//   - a same-partition load reading a slot whose narrow store was deferred
//     into the wide store would read stale memory: unsafe;
//   - a same-partition store overlapping the deferred store range would be
//     clobbered out of order: unsafe;
//   - any reference from a different partition may alias: resolvable only
//     at run time, so the partition pair is recorded for check generation;
//   - a call, or a modification of the base register, is unsafe.
//
// The result is hazardSafe, hazardNeedsChecks (with c.needsAliasCheck
// filled), or hazardUnsafe; the second return is the machine-readable
// verdict token ("intervening-store", "unknown-base", ...) that feeds the
// optimization remark for the rejection.
func IsHazard(body []*rtl.Instr, c *chunk, parts map[rtl.Reg]*partition, info ivSource) (hazardResult, string) {
	lo, hi := c.firstIndex(), c.lastIndex()
	inChunk := make(map[*rtl.Instr]bool, len(c.refs))
	for _, r := range c.refs {
		inChunk[r.in] = true
	}
	rangeLo, rangeHi := c.minDisp, c.minDisp+int64(c.wide)
	result := hazardSafe

	for i := lo; i <= hi; i++ {
		in := body[i]
		if inChunk[in] {
			continue
		}
		switch in.Op {
		case rtl.Call:
			return hazardUnsafe, "intervening-call"
		case rtl.Load:
			if c.isLoad {
				continue // loads never conflict with a wide load
			}
			base, ok := in.A.IsReg()
			if !ok {
				return hazardUnsafe, "unknown-base"
			}
			if base == c.part.base {
				// Same partition: exact displacement disambiguation.
				if in.Disp < rangeHi && in.Disp+int64(in.Width) > rangeLo {
					return hazardUnsafe, "intervening-load"
				}
			} else {
				if !knownPartition(base, parts, info) {
					return hazardUnsafe, "unknown-base"
				}
				c.needsAliasCheck[base] = true
				result = hazardNeedsChecks
			}
		case rtl.Store:
			base, ok := in.A.IsReg()
			if !ok {
				return hazardUnsafe, "unknown-base"
			}
			if base == c.part.base {
				if in.Disp < rangeHi && in.Disp+int64(in.Width) > rangeLo {
					return hazardUnsafe, "intervening-store"
				}
			} else {
				if !knownPartition(base, parts, info) {
					return hazardUnsafe, "unknown-base"
				}
				c.needsAliasCheck[base] = true
				result = hazardNeedsChecks
			}
		default:
			// IsModifiedBase: redefining the base register inside the span
			// breaks the displacement arithmetic.
			if d, ok := in.Def(); ok && d == c.part.base {
				return hazardUnsafe, "base-modified"
			}
		}
	}
	// The wide reference itself must not extend past a base modification
	// elsewhere in the block between span edges; base updates outside the
	// span (the induction step at the block's end) are fine because every
	// replaced reference sits inside the span.
	if result == hazardNeedsChecks {
		return result, "alias-needs-runtime-check"
	}
	return result, "safe"
}

// knownPartition reports whether the base register belongs to an analyzable
// partition (invariant or basic IV), i.e. run-time range checks can be
// generated for it.
func knownPartition(base rtl.Reg, parts map[rtl.Reg]*partition, info ivSource) bool {
	if _, ok := parts[base]; ok {
		return true
	}
	if info.Invariant(base) {
		return true
	}
	_, isIV := info.IVStep(base)
	return isIV
}
