package dataflow

import "macc/internal/rtl"

// DefSite locates one definition of a register.
type DefSite struct {
	Block *rtl.Block
	Index int
	Instr *rtl.Instr
}

// DefUse summarises definition and use counts across a function. It treats
// function parameters as implicit definitions at entry.
type DefUse struct {
	defCount []int
	useCount []int
	single   []DefSite // valid where defCount==1
	isParam  []bool
}

// ComputeDefUse scans the function once and tabulates, for each register,
// how many instructions define it, how many operand slots read it, and (for
// single-definition registers) where that definition lives.
func ComputeDefUse(f *rtl.Fn) *DefUse {
	n := f.NumRegs()
	du := &DefUse{
		defCount: make([]int, n),
		useCount: make([]int, n),
		single:   make([]DefSite, n),
		isParam:  make([]bool, n),
	}
	for _, p := range f.Params {
		du.isParam[p] = true
		du.defCount[p]++
	}
	var regs []rtl.Reg
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			regs = in.Uses(regs[:0])
			for _, r := range regs {
				du.useCount[r]++
			}
			if d, ok := in.Def(); ok {
				du.defCount[d]++
				du.single[d] = DefSite{Block: b, Index: i, Instr: in}
			}
		}
	}
	return du
}

// DefCount returns how many definitions register r has (parameters count as
// one definition).
func (du *DefUse) DefCount(r rtl.Reg) int { return du.defCount[r] }

// UseCount returns how many operand slots read register r.
func (du *DefUse) UseCount(r rtl.Reg) int { return du.useCount[r] }

// IsParam reports whether r is a function parameter.
func (du *DefUse) IsParam(r rtl.Reg) bool { return du.isParam[r] }

// SingleDef returns the lone defining instruction of r, if r has exactly one
// definition and is not a parameter.
func (du *DefUse) SingleDef(r rtl.Reg) (DefSite, bool) {
	if du.isParam[r] || du.defCount[r] != 1 {
		return DefSite{}, false
	}
	return du.single[r], true
}

// Immutable reports whether r is never redefined after its initial value:
// either a parameter with no further definitions, or a register with exactly
// one definition. Such registers can be propagated without kill analysis.
func (du *DefUse) Immutable(r rtl.Reg) bool {
	if du.isParam[r] {
		return du.defCount[r] == 1 // the implicit entry definition only
	}
	return du.defCount[r] == 1
}
