package dataflow

import (
	"macc/internal/cfg"
	"macc/internal/rtl"
)

// FlatDefSite locates one definition of a register in a flat function:
// the owning block index, the block-relative position, and the absolute
// instruction index.
type FlatDefSite struct {
	Block int32
	Index int32
	Instr int32
}

// FlatDefUse is DefUse over a FlatFn, tabulated in one dense-array scan
// with no per-instruction allocation.
type FlatDefUse struct {
	defCount []int32
	useCount []int32
	single   []FlatDefSite // valid where defCount==1
	isParam  []bool
}

// ComputeFlatDefUse mirrors ComputeDefUse on the flat form.
func ComputeFlatDefUse(f *rtl.FlatFn) *FlatDefUse {
	n := f.NumRegs()
	du := &FlatDefUse{
		defCount: make([]int32, n),
		useCount: make([]int32, n),
		single:   make([]FlatDefSite, n),
		isParam:  make([]bool, n),
	}
	for _, p := range f.Params {
		du.isParam[p] = true
		du.defCount[p]++
	}
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			f.SrcSlots(i, func(o *rtl.Operand) {
				if o.Kind == rtl.KindReg {
					du.useCount[o.Reg]++
				}
			})
			if d, ok := f.Def(i); ok {
				du.defCount[d]++
				du.single[d] = FlatDefSite{Block: int32(bi), Index: i - b.InstrStart, Instr: i}
			}
		}
	}
	return du
}

// DefCount returns how many definitions register r has (parameters count
// as one definition).
func (du *FlatDefUse) DefCount(r rtl.Reg) int { return int(du.defCount[r]) }

// UseCount returns how many operand slots read register r.
func (du *FlatDefUse) UseCount(r rtl.Reg) int { return int(du.useCount[r]) }

// IsParam reports whether r is a function parameter.
func (du *FlatDefUse) IsParam(r rtl.Reg) bool { return du.isParam[r] }

// SingleDef returns the lone defining instruction of r, if r has exactly
// one definition and is not a parameter.
func (du *FlatDefUse) SingleDef(r rtl.Reg) (FlatDefSite, bool) {
	if du.isParam[r] || du.defCount[r] != 1 {
		return FlatDefSite{}, false
	}
	return du.single[r], true
}

// Immutable reports whether r is never redefined after its initial value.
func (du *FlatDefUse) Immutable(r rtl.Reg) bool { return du.defCount[r] == 1 }

// FlatLiveness holds per-block live-in/live-out sets for a flat function,
// indexed by block position instead of block pointer.
type FlatLiveness struct {
	liveIn  []BitSet
	liveOut []BitSet
}

// ComputeFlatLiveness runs the same iterative backward liveness as
// ComputeLiveness, over a FlatGraph.
func ComputeFlatLiveness(g *cfg.FlatGraph) *FlatLiveness {
	f := g.F
	n := f.NumRegs()
	nb := len(f.Blocks)
	lv := &FlatLiveness{
		liveIn:  make([]BitSet, nb),
		liveOut: make([]BitSet, nb),
	}
	use := make([]BitSet, nb)
	def := make([]BitSet, nb)
	for bi := range f.Blocks {
		u, d := NewBitSet(n), NewBitSet(n)
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			f.SrcSlots(i, func(o *rtl.Operand) {
				if o.Kind == rtl.KindReg && !d.Has(int(o.Reg)) {
					u.Set(int(o.Reg))
				}
			})
			if dr, ok := f.Def(i); ok {
				d.Set(int(dr))
			}
		}
		use[bi], def[bi] = u, d
		lv.liveIn[bi] = NewBitSet(n)
		lv.liveOut[bi] = NewBitSet(n)
	}
	changed := true
	tmp := NewBitSet(n)
	var sbuf [2]int32
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := lv.liveOut[b]
			for _, s := range cfg.FlatSuccs(f, b, sbuf[:0]) {
				if out.OrInto(lv.liveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.Copy(out)
			def[b].ForEach(func(i int) { tmp.Clear(i) })
			tmp.OrInto(use[b])
			if lv.liveIn[b].OrInto(tmp) {
				changed = true
			}
		}
	}
	return lv
}

// LiveOutSet returns the live-out set of block bi (shared, do not mutate).
func (lv *FlatLiveness) LiveOutSet(bi int32) BitSet { return lv.liveOut[bi] }

// LiveInSet returns the live-in set of block bi (shared, do not mutate).
func (lv *FlatLiveness) LiveInSet(bi int32) BitSet { return lv.liveIn[bi] }
