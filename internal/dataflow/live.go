package dataflow

import (
	"macc/internal/cfg"
	"macc/internal/rtl"
)

// Liveness holds per-block live-in/live-out register sets.
type Liveness struct {
	g       *cfg.Graph
	liveIn  map[*rtl.Block]BitSet
	liveOut map[*rtl.Block]BitSet
	nregs   int
}

// ComputeLiveness runs iterative backward liveness over the function.
func ComputeLiveness(g *cfg.Graph) *Liveness {
	f := g.Fn
	n := f.NumRegs()
	lv := &Liveness{
		g:       g,
		liveIn:  make(map[*rtl.Block]BitSet, len(f.Blocks)),
		liveOut: make(map[*rtl.Block]BitSet, len(f.Blocks)),
		nregs:   n,
	}
	use := make(map[*rtl.Block]BitSet, len(f.Blocks))
	def := make(map[*rtl.Block]BitSet, len(f.Blocks))
	for _, b := range f.Blocks {
		u, d := NewBitSet(n), NewBitSet(n)
		var regs []rtl.Reg
		for _, in := range b.Instrs {
			regs = in.Uses(regs[:0])
			for _, r := range regs {
				if !d.Has(int(r)) {
					u.Set(int(r))
				}
			}
			if dr, ok := in.Def(); ok {
				d.Set(int(dr))
			}
		}
		use[b], def[b] = u, d
		lv.liveIn[b] = NewBitSet(n)
		lv.liveOut[b] = NewBitSet(n)
	}
	// Iterate to fixpoint in reverse RPO for fast convergence.
	changed := true
	tmp := NewBitSet(n)
	for changed {
		changed = false
		for i := len(g.RPO) - 1; i >= 0; i-- {
			b := g.RPO[i]
			out := lv.liveOut[b]
			for _, s := range b.Succs() {
				if out.OrInto(lv.liveIn[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			tmp.Copy(out)
			def[b].ForEach(func(i int) { tmp.Clear(i) })
			tmp.OrInto(use[b])
			if lv.liveIn[b].OrInto(tmp) {
				changed = true
			}
		}
	}
	return lv
}

// LiveIn reports whether register r is live at entry to block b.
func (lv *Liveness) LiveIn(b *rtl.Block, r rtl.Reg) bool {
	s, ok := lv.liveIn[b]
	return ok && s.Has(int(r))
}

// LiveOut reports whether register r is live at exit from block b.
func (lv *Liveness) LiveOut(b *rtl.Block, r rtl.Reg) bool {
	s, ok := lv.liveOut[b]
	return ok && s.Has(int(r))
}

// LiveInSet returns the live-in set of b (shared, do not mutate).
func (lv *Liveness) LiveInSet(b *rtl.Block) BitSet { return lv.liveIn[b] }

// LiveOutSet returns the live-out set of b (shared, do not mutate).
func (lv *Liveness) LiveOutSet(b *rtl.Block) BitSet { return lv.liveOut[b] }

// MaxPressure estimates the peak number of simultaneously live registers in
// block b by walking it backwards from the live-out set. The unrolling
// heuristic uses this to decide whether another unroll factor would spill.
func (lv *Liveness) MaxPressure(b *rtl.Block) int {
	cur := lv.liveOut[b].Clone()
	max := cur.Count()
	var regs []rtl.Reg
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if d, ok := in.Def(); ok {
			cur.Clear(int(d))
		}
		regs = in.Uses(regs[:0])
		for _, r := range regs {
			cur.Set(int(r))
		}
		if c := cur.Count(); c > max {
			max = c
		}
	}
	return max
}
