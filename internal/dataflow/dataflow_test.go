package dataflow_test

import (
	"testing"
	"testing/quick"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
)

func TestBitSetBasics(t *testing.T) {
	s := dataflow.NewBitSet(200)
	for _, i := range []int{0, 63, 64, 65, 127, 199} {
		s.Set(i)
	}
	for _, i := range []int{0, 63, 64, 65, 127, 199} {
		if !s.Has(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Has(1) || s.Has(128) {
		t.Error("unexpected bits set")
	}
	if s.Count() != 6 {
		t.Errorf("count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 5 {
		t.Error("clear failed")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 65, 127, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestBitSetOrInto(t *testing.T) {
	a := dataflow.NewBitSet(128)
	b := dataflow.NewBitSet(128)
	b.Set(5)
	b.Set(100)
	if !a.OrInto(b) {
		t.Error("OrInto should report change")
	}
	if a.OrInto(b) {
		t.Error("second OrInto should be a no-op")
	}
	if !a.Has(5) || !a.Has(100) {
		t.Error("bits not merged")
	}
}

func TestBitSetQuick(t *testing.T) {
	err := quick.Check(func(xs []uint16) bool {
		s := dataflow.NewBitSet(1 << 16)
		seen := map[int]bool{}
		for _, x := range xs {
			s.Set(int(x))
			seen[int(x)] = true
		}
		if s.Count() != len(seen) {
			return false
		}
		for k := range seen {
			if !s.Has(k) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// buildLivenessFn: a loop where acc and i are live around the back edge and
// tmp is local to the body.
func buildLivenessFn() (*rtl.Fn, *rtl.Block, *rtl.Block, rtl.Reg, rtl.Reg, rtl.Reg) {
	f := rtl.NewFn("lv", 1)
	n := f.Params[0]
	entry := f.Entry()
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	i, acc, tmp, cond := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{
		rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header),
	}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Mul, tmp, rtl.R(i), rtl.C(3)),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(tmp)),
		rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)),
		rtl.JumpI(header),
	}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}
	return f, header, body, i, acc, tmp
}

func TestLiveness(t *testing.T) {
	f, header, body, i, acc, tmp := buildLivenessFn()
	g := cfg.New(f)
	lv := dataflow.ComputeLiveness(g)

	if !lv.LiveIn(header, i) || !lv.LiveIn(header, acc) {
		t.Error("i and acc must be live into the header")
	}
	if lv.LiveIn(header, tmp) {
		t.Error("tmp must not be live into the header")
	}
	if !lv.LiveOut(body, i) || !lv.LiveOut(body, acc) {
		t.Error("loop-carried registers must be live out of the body")
	}
	if lv.LiveOut(body, tmp) {
		t.Error("tmp dies inside the body")
	}
	// acc is live out of the loop (returned).
	if !lv.LiveOut(header, acc) {
		t.Error("acc must be live out of the header (used at exit)")
	}
}

func TestMaxPressure(t *testing.T) {
	f, _, body, _, _, _ := buildLivenessFn()
	g := cfg.New(f)
	lv := dataflow.ComputeLiveness(g)
	p := lv.MaxPressure(body)
	// i, acc, tmp, n(unused in body; not live) -> at least 3 live at once.
	if p < 3 {
		t.Errorf("pressure = %d, want >= 3", p)
	}
}

func TestDefUse(t *testing.T) {
	f := rtl.NewFn("du", 2)
	a, b := f.Params[0], f.Params[1]
	entry := f.Entry()
	t1, t2 := f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, t1, rtl.R(a), rtl.R(b)),
		rtl.BinI(rtl.Add, t2, rtl.R(t1), rtl.R(t1)),
		rtl.BinI(rtl.Add, t2, rtl.R(t2), rtl.C(1)),
		rtl.RetI(rtl.R(t2)),
	}
	du := dataflow.ComputeDefUse(f)
	if du.DefCount(t1) != 1 || du.UseCount(t1) != 2 {
		t.Errorf("t1 def/use = %d/%d, want 1/2", du.DefCount(t1), du.UseCount(t1))
	}
	if du.DefCount(t2) != 2 {
		t.Errorf("t2 defs = %d, want 2", du.DefCount(t2))
	}
	if !du.IsParam(a) || du.IsParam(t1) {
		t.Error("param classification wrong")
	}
	site, ok := du.SingleDef(t1)
	if !ok || site.Instr != entry.Instrs[0] {
		t.Error("single def site wrong")
	}
	if _, ok := du.SingleDef(t2); ok {
		t.Error("t2 is multiply defined")
	}
	if _, ok := du.SingleDef(a); ok {
		t.Error("params have no SingleDef site")
	}
	if !du.Immutable(t1) || du.Immutable(t2) {
		t.Error("immutability wrong")
	}
	if !du.Immutable(a) {
		t.Error("unassigned param should be immutable")
	}
	// A param that is reassigned is not immutable.
	f2 := rtl.NewFn("du2", 1)
	f2.Entry().Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, f2.Params[0], rtl.R(f2.Params[0]), rtl.C(1)),
		rtl.RetI(rtl.R(f2.Params[0])),
	}
	du2 := dataflow.ComputeDefUse(f2)
	if du2.Immutable(f2.Params[0]) {
		t.Error("reassigned param must not be immutable")
	}
}
