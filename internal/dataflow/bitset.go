// Package dataflow implements the classical dataflow analyses the optimizer
// and the coalescer rely on: liveness of virtual registers, definition/use
// accounting, and single-definition queries used by the propagation passes.
package dataflow

import "math/bits"

// BitSet is a dense bit vector over virtual register numbers.
type BitSet []uint64

// NewBitSet returns a set able to hold n elements.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds i to the set.
func (s BitSet) Set(i int) { s[i/64] |= 1 << uint(i%64) }

// Clear removes i from the set.
func (s BitSet) Clear(i int) { s[i/64] &^= 1 << uint(i%64) }

// Has reports whether i is in the set.
func (s BitSet) Has(i int) bool {
	w := i / 64
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<uint(i%64)) != 0
}

// OrInto ors o into s, reporting whether s changed.
func (s BitSet) OrInto(o BitSet) bool {
	changed := false
	for i := range o {
		if i >= len(s) {
			break
		}
		nv := s[i] | o[i]
		if nv != s[i] {
			s[i] = nv
			changed = true
		}
	}
	return changed
}

// Copy overwrites s with o.
func (s BitSet) Copy(o BitSet) {
	copy(s, o)
	for i := len(o); i < len(s); i++ {
		s[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of elements in the set.
func (s BitSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// ForEach calls fn for every element of the set in increasing order.
func (s BitSet) ForEach(fn func(i int)) {
	for wi, w := range s {
		for w != 0 {
			fn(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
