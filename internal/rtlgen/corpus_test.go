package rtlgen_test

import (
	"testing"

	"macc/internal/minic"
	"macc/internal/rtlgen"
)

// TestCorpusDeterministic: the same seed must yield byte-identical sources
// and argument vectors — reports over the corpus are diffable only if the
// corpus itself is reproducible.
func TestCorpusDeterministic(t *testing.T) {
	a := rtlgen.Corpus(42, 50)
	b := rtlgen.Corpus(42, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Name != b[i].Name || a[i].Entry != b[i].Entry {
			t.Fatalf("program %d differs between identical seeds", i)
		}
		for j := range a[i].Args {
			if a[i].Args[j] != b[i].Args[j] {
				t.Fatalf("program %d args differ", i)
			}
		}
	}
	c := rtlgen.Corpus(43, 50)
	same := 0
	for i := range a {
		if a[i].Src == c[i].Src {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced an identical corpus")
	}
}

// TestCorpusCompiles: every generated program must be a valid mini-C
// translation unit (the front end accepts it) with unique names/entries.
func TestCorpusCompiles(t *testing.T) {
	progs := rtlgen.Corpus(1, 200)
	names := make(map[string]bool)
	entries := make(map[string]bool)
	for _, p := range progs {
		if names[p.Name] || entries[p.Entry] {
			t.Fatalf("duplicate name/entry: %s/%s", p.Name, p.Entry)
		}
		names[p.Name], entries[p.Entry] = true, true
		if _, err := minic.Compile(p.Src); err != nil {
			t.Fatalf("%s does not compile: %v\n%s", p.Name, err, p.Src)
		}
		if len(p.Args) == 0 || p.MemBytes <= 0 {
			t.Fatalf("%s has no run recipe", p.Name)
		}
	}
}
