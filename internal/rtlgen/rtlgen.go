// Package rtlgen generates random, well-formed, terminating RTL functions
// for differential testing: every optimization pass must preserve the
// observable behaviour (return value and final memory) of any generated
// program. The generator confines memory accesses to an aligned scratch
// window, divides only by non-zero constants, and bounds every loop by a
// constant trip count, so generated programs never trap and always halt.
package rtlgen

import (
	"fmt"
	"math/rand"

	"macc/internal/rtl"
)

// MemWindow is the size of the scratch memory region generated programs
// address; simulators must provide at least this much memory.
const MemWindow = 4096

// Options tunes generation.
type Options struct {
	MaxDepth int // nesting depth of ifs/loops
	MaxStmts int // statements per block
	Loops    bool
	Branches bool
	MemOps   bool
	Extracts bool
}

// DefaultOptions exercises everything.
func DefaultOptions() Options {
	return Options{MaxDepth: 2, MaxStmts: 8, Loops: true, Branches: true, MemOps: true, Extracts: true}
}

type gen struct {
	rng  *rand.Rand
	f    *rtl.Fn
	cur  *rtl.Block
	opts Options
	// defined registers usable as operands at the current point.
	defined []rtl.Reg
	// counters marks active loop counters, which must never be mutated by
	// accumulator updates or the program may fail to terminate.
	counters map[rtl.Reg]bool
}

// Generate builds a random function "f(a, b, c)" from the seed. It returns
// an error (rather than a function that would corrupt downstream passes) if
// generation ever produces RTL the verifier rejects.
func Generate(seed int64, opts Options) (*rtl.Fn, error) {
	g := &gen{rng: rand.New(rand.NewSource(seed)), opts: opts, counters: make(map[rtl.Reg]bool)}
	g.f = rtl.NewFn("f", 3)
	g.cur = g.f.Entry()
	// Seed the register pool with masked parameter values so arithmetic
	// stays interesting but addresses stay bounded.
	for _, p := range g.f.Params {
		r := g.f.NewReg()
		g.emit(rtl.BinI(rtl.And, r, rtl.R(p), rtl.C(1023)))
		g.defined = append(g.defined, r)
	}
	g.stmts(opts.MaxDepth)
	g.emit(rtl.RetI(rtl.R(g.pick())))
	// Seal stray unterminated blocks (none expected, but keep Verify happy
	// if generation logic changes).
	for _, b := range g.f.Blocks {
		if b.Term() == nil {
			b.Instrs = append(b.Instrs, rtl.RetI(rtl.C(0)))
		}
	}
	if err := g.f.Verify(); err != nil {
		return nil, fmt.Errorf("rtlgen seed %d produced invalid function: %w", seed, err)
	}
	return g.f, nil
}

func (g *gen) emit(in *rtl.Instr) { g.cur.Instrs = append(g.cur.Instrs, in) }

func (g *gen) pick() rtl.Reg {
	return g.defined[g.rng.Intn(len(g.defined))]
}

func (g *gen) operand() rtl.Operand {
	if g.rng.Intn(3) == 0 {
		return rtl.C(int64(g.rng.Intn(2048) - 1024))
	}
	return rtl.R(g.pick())
}

func (g *gen) stmts(depth int) {
	n := 1 + g.rng.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(12); {
		case k < 6:
			g.arith()
		case k < 7 && g.opts.Extracts:
			g.extractInsert()
		case k < 9 && g.opts.MemOps:
			g.memOp()
		case k < 10 && g.opts.Branches && depth > 0:
			g.diamond(depth - 1)
		case k < 11 && g.opts.Loops && depth > 0:
			g.loop(depth - 1)
		default:
			g.arith()
		}
	}
}

var pureOps = []rtl.Op{
	rtl.Add, rtl.Sub, rtl.Mul, rtl.And, rtl.Or, rtl.Xor, rtl.Shl, rtl.Shr,
	rtl.SetEQ, rtl.SetNE, rtl.SetLT, rtl.SetLE, rtl.SetGT, rtl.SetGE,
	rtl.Mov, rtl.Neg, rtl.Not, rtl.Div, rtl.Rem,
}

func (g *gen) arith() {
	op := pureOps[g.rng.Intn(len(pureOps))]
	dst := g.f.NewReg()
	in := &rtl.Instr{Op: op, Dst: dst, Signed: g.rng.Intn(2) == 0}
	switch op {
	case rtl.Mov, rtl.Neg, rtl.Not:
		in.A = g.operand()
	case rtl.Div, rtl.Rem:
		in.A = g.operand()
		c := int64(g.rng.Intn(30) + 1)
		if g.rng.Intn(2) == 0 {
			c = -c
		}
		in.B = rtl.C(c)
	case rtl.Shl, rtl.Shr:
		in.A = g.operand()
		in.B = rtl.C(int64(g.rng.Intn(63)))
	default:
		in.A = g.operand()
		in.B = g.operand()
	}
	g.emit(in)
	g.defined = append(g.defined, dst)
}

// addr materializes an 8-aligned address within the scratch window.
func (g *gen) addr() rtl.Reg {
	t := g.f.NewReg()
	g.emit(rtl.BinI(rtl.And, t, rtl.R(g.pick()), rtl.C(MemWindow/2-8)))
	a := g.f.NewReg()
	g.emit(rtl.BinI(rtl.And, a, rtl.R(t), rtl.C(^int64(7))))
	return a
}

var widths = []rtl.Width{rtl.W1, rtl.W2, rtl.W4, rtl.W8}

func (g *gen) memOp() {
	base := g.addr()
	w := widths[g.rng.Intn(len(widths))]
	disp := int64(g.rng.Intn(MemWindow/16)) * 8
	if g.rng.Intn(2) == 0 {
		dst := g.f.NewReg()
		g.emit(rtl.LoadI(dst, rtl.R(base), disp, w, g.rng.Intn(2) == 0))
		g.defined = append(g.defined, dst)
	} else {
		g.emit(rtl.StoreI(rtl.R(base), disp, g.operand(), w))
	}
}

func (g *gen) extractInsert() {
	w := widths[g.rng.Intn(3)] // 1, 2, 4
	off := rtl.C(int64(g.rng.Intn(8 - int(w) + 1)))
	if g.rng.Intn(2) == 0 {
		dst := g.f.NewReg()
		g.emit(rtl.ExtractI(dst, rtl.R(g.pick()), off, w, g.rng.Intn(2) == 0))
		g.defined = append(g.defined, dst)
	} else {
		dst := g.f.NewReg()
		g.emit(rtl.InsertI(dst, rtl.R(g.pick()), g.operand(), off, w))
		g.defined = append(g.defined, dst)
	}
}

// diamond emits if/else with a join; registers defined inside the arms are
// retired at the join so later code never reads a half-defined value.
func (g *gen) diamond(depth int) {
	save := len(g.defined)
	cond := g.pick()
	thenB := g.f.NewBlock("")
	elseB := g.f.NewBlock("")
	join := g.f.NewBlock("")
	g.emit(rtl.BranchI(rtl.R(cond), thenB, elseB))

	g.cur = thenB
	g.stmts(depth)
	g.emit(rtl.JumpI(join))
	g.defined = g.defined[:save]

	g.cur = elseB
	g.stmts(depth)
	g.emit(rtl.JumpI(join))
	g.defined = g.defined[:save]

	g.cur = join
	// A join with no instructions yet; give it at least a landing arith so
	// blocks are never empty before the next statement arrives.
	g.arith()
}

// loop emits a constant-trip counted loop, optionally mutating one
// pre-existing register as an accumulator (a deliberate multi-def
// register to stress the analyses).
func (g *gen) loop(depth int) {
	save := len(g.defined)
	i := g.f.NewReg()
	g.emit(rtl.MovI(i, rtl.C(0)))
	trips := int64(g.rng.Intn(6) + 2)

	header := g.f.NewBlock("")
	body := g.f.NewBlock("")
	latch := g.f.NewBlock("")
	exit := g.f.NewBlock("")
	g.emit(rtl.JumpI(header))

	cond := g.f.NewReg()
	g.cur = header
	g.emit(rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.C(trips)))
	g.emit(rtl.BranchI(rtl.R(cond), body, exit))

	g.cur = body
	g.defined = append(g.defined, i)
	g.counters[i] = true
	g.stmts(depth)
	if g.rng.Intn(2) == 0 && save > 0 {
		// Mutate a pre-loop register as an accumulator — but never a live
		// loop counter, or the program may not terminate.
		acc := g.defined[g.rng.Intn(save)]
		if !g.counters[acc] {
			g.emit(rtl.BinI(rtl.Add, acc, rtl.R(acc), g.operand()))
		}
	}
	g.emit(rtl.JumpI(latch))

	g.cur = latch
	g.emit(rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)))
	g.emit(rtl.JumpI(header))

	g.defined = g.defined[:save]
	delete(g.counters, i)
	g.cur = exit
	g.arith()
}
