package rtlgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// CorpusProgram is one generated mini-C translation unit plus everything
// needed to run it: the entry point, concrete argument values (array
// addresses laid out in simulator memory, trip counts), and the memory size
// to simulate with. The corpus is the first slice of the ROADMAP's
// corpus-scale scenario engine: hundreds of programs spanning the space the
// paper cares about — element widths, access orders, alias layouts, trip
// counts, mixed load/store runs — for the (program × machine × config)
// matrix with differential checking.
type CorpusProgram struct {
	Name     string
	Src      string
	Entry    string
	Args     []int64
	MemBytes int
}

// CorpusMemBytes is the simulated memory size corpus programs need.
const CorpusMemBytes = 1 << 16

// Corpus generates n mini-C programs. Generation is deterministic per
// (seed, index): the same seed always yields the same corpus, so remark
// reports over it are diffable run to run, and any single program can be
// regenerated from its index for debugging.
func Corpus(seed int64, n int) []CorpusProgram {
	out := make([]CorpusProgram, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, corpusProgram(seed, i))
	}
	return out
}

// elemType is one array element type the paper's kernels span.
type elemType struct {
	c     string // mini-C type name
	bytes int64
}

var elemTypes = []elemType{
	{"unsigned char", 1},
	{"short", 2},
	{"unsigned short", 2},
	{"int", 4},
}

// binOps are the element-wise combining operators.
var binOps = []string{"+", "-", "^", "&", "|"}

func corpusProgram(seed int64, index int) CorpusProgram {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(index)))
	g := corpusGen{rng: rng, index: index}
	return g.build()
}

type corpusGen struct {
	rng   *rand.Rand
	index int
}

func (g *corpusGen) build() CorpusProgram {
	et := elemTypes[g.rng.Intn(len(elemTypes))]
	entry := fmt.Sprintf("k%d", g.index)
	name := fmt.Sprintf("corpus-%04d", g.index)
	// Trip counts deliberately avoid being multiples of the unroll factor
	// most of the time, so remainder loops are always in play.
	n := int64(5 + g.rng.Intn(37))

	// Each pointer parameter gets its own 8-aligned region big enough for
	// strided (i*2+1) and offset (i+8) subscripts; the "overlap" alias
	// layout instead aims a second pointer into the first's region, so the
	// runtime alias analysis faces genuinely overlapping streams.
	region := align8((2*n + 24) * et.bytes)
	base := int64(4096)
	addr := func() int64 {
		a := base
		base += region
		return a
	}
	overlap := g.rng.Intn(4) == 0 // 25% of programs alias out into a

	kind := g.rng.Intn(10)
	var src string
	var args []int64
	op := binOps[g.rng.Intn(len(binOps))]
	a, b, dst := addr(), addr(), addr()
	if overlap {
		dst = a + et.bytes*int64(1+g.rng.Intn(4))
	}
	switch kind {
	case 0: // element-wise combine: the imageadd/imagexor family
		src = fmt.Sprintf(`
void %s(%s *a, %s *b, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = a[i] %s b[i];
}
`, entry, et.c, et.c, et.c, op)
		args = []int64{a, b, dst, n}
	case 1: // reversed source walk: the mirror family
		src = fmt.Sprintf(`
void %s(%s *src, %s *dst, int n) {
	int i;
	for (i = 0; i < n; i++)
		dst[i] = src[n - 1 - i];
}
`, entry, et.c, et.c)
		args = []int64{a, dst, n}
	case 2: // strided reads, unit-stride store: adjacent-pair gather
		src = fmt.Sprintf(`
void %s(%s *a, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = a[i * 2] %s a[i * 2 + 1];
}
`, entry, et.c, et.c, op)
		args = []int64{a, dst, n}
	case 3: // strided store run: interleave two sources
		src = fmt.Sprintf(`
void %s(%s *a, %s *b, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++) {
		out[i * 2] = a[i];
		out[i * 2 + 1] = b[i];
	}
}
`, entry, et.c, et.c, et.c)
		args = []int64{a, b, dst, n}
	case 4: // store stream at a run-time-ish displacement: the translate family
		off := 1 + g.rng.Intn(8)
		src = fmt.Sprintf(`
void %s(%s *src, %s *dst, int n) {
	int i;
	for (i = 0; i < n; i++)
		dst[i + %d] = src[i] %s %d;
}
`, entry, et.c, et.c, off, op, 1+g.rng.Intn(100))
		args = []int64{a, dst, n}
	case 5: // read-modify-write of one stream: mixed load/store run
		src = fmt.Sprintf(`
void %s(%s *a, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = out[i] %s a[i];
}
`, entry, et.c, et.c, op)
		args = []int64{a, dst, n}
	case 6: // reduction: the dot-product family
		src = fmt.Sprintf(`
int %s(%s *a, %s *b, int n) {
	int s, i;
	s = 0;
	for (i = 0; i < n; i++)
		s += a[i] * b[i];
	return s;
}
`, entry, et.c, et.c)
		args = []int64{a, b, n}
	case 7: // nested 2-D sweep: the convolution family's shape
		w := int64(6 + g.rng.Intn(9))
		h := int64(3 + g.rng.Intn(5))
		src = fmt.Sprintf(`
void %s(%s *src, %s *dst, int w, int h) {
	int r, c;
	for (r = 0; r < h; r++)
		for (c = 0; c < w; c++)
			dst[r * w + c] = src[r * w + c] %s %d;
}
`, entry, et.c, et.c, op, 1+g.rng.Intn(50))
		args = []int64{a, dst, w, h}
	case 8: // control flow inside the body: the eqntott hazard shape
		src = fmt.Sprintf(`
void %s(%s *a, %s *b, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (a[i] > b[i])
			out[i] = a[i];
		else
			out[i] = b[i];
	}
}
`, entry, et.c, et.c, et.c)
		args = []int64{a, b, dst, n}
	default: // hand-unrolled adjacent pairs: the coalescer's ideal shape
		src = fmt.Sprintf(`
void %s(%s *a, %s *out, int n) {
	int i;
	for (i = 0; i < n; i++) {
		out[i * 2] = a[i * 2] %s 1;
		out[i * 2 + 1] = a[i * 2 + 1] %s 1;
	}
}
`, entry, et.c, et.c, op, op)
		args = []int64{a, dst, n}
	}
	return CorpusProgram{
		Name:     name,
		Src:      strings.TrimSpace(src) + "\n",
		Entry:    entry,
		Args:     args,
		MemBytes: CorpusMemBytes,
	}
}

func align8(x int64) int64 { return (x + 7) &^ 7 }
