package rtlgen_test

import (
	"bytes"
	"fmt"
	"testing"

	"macc/internal/cfg"
	"macc/internal/machine"
	"macc/internal/opt"
	"macc/internal/regalloc"
	"macc/internal/rtl"
	"macc/internal/rtlgen"
	"macc/internal/sched"
	"macc/internal/sim"
)

const memBytes = rtlgen.MemWindow * 2

// mustGen generates the seed's function, failing the test on a generator
// bug instead of panicking.
func mustGen(t *testing.T, seed int64) *rtl.Fn {
	t.Helper()
	f, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// behaviour runs f on a fixed set of argument triples and returns a
// fingerprint of every return value and final memory image.
func behaviour(t *testing.T, f *rtl.Fn, m *machine.Machine) string {
	t.Helper()
	var buf bytes.Buffer
	argSets := [][]int64{
		{0, 0, 0},
		{1, 2, 3},
		{255, 1023, -7},
		{4096, 12345, 999},
	}
	for _, args := range argSets {
		prog := rtl.NewProgram(f)
		s := sim.New(prog, m, memBytes)
		s.Fuel = 1 << 22
		for i := range s.Mem {
			s.Mem[i] = byte(i * 7)
		}
		res, err := s.Run("f", args...)
		if err != nil {
			t.Fatalf("args %v: %v\n%s", args, err, f)
		}
		fmt.Fprintf(&buf, "%v->%d;", args, res.Ret)
		buf.Write(s.Mem[:rtlgen.MemWindow])
	}
	return buf.String()
}

// checkPass verifies that transform preserves behaviour on many generated
// programs.
func checkPass(t *testing.T, name string, seeds int, transform func(*rtl.Fn)) {
	t.Helper()
	m := machine.M68030() // tolerant of any alignment; timing irrelevant here
	for seed := int64(0); seed < int64(seeds); seed++ {
		f := mustGen(t, seed)
		want := behaviour(t, f, m)
		f2 := f.Clone()
		transform(f2)
		if err := f2.Verify(); err != nil {
			t.Fatalf("%s seed %d: invalid output: %v\n%s", name, seed, err, f2)
		}
		got := behaviour(t, f2, m)
		if got != want {
			t.Fatalf("%s seed %d: behaviour changed\n--- before ---\n%s--- after ---\n%s",
				name, seed, f, f2)
		}
	}
}

const seeds = 60

func TestFoldConstantsPreservesBehaviour(t *testing.T) {
	checkPass(t, "FoldConstants", seeds, func(f *rtl.Fn) { opt.FoldConstants(f) })
}

func TestPropagateLocalPreservesBehaviour(t *testing.T) {
	checkPass(t, "PropagateLocal", seeds, func(f *rtl.Fn) { opt.PropagateLocal(f) })
}

func TestPropagateImmutablePreservesBehaviour(t *testing.T) {
	checkPass(t, "PropagateImmutable", seeds, func(f *rtl.Fn) { opt.PropagateImmutable(f) })
}

func TestLocalCSEPreservesBehaviour(t *testing.T) {
	checkPass(t, "LocalCSE", seeds, func(f *rtl.Fn) { opt.LocalCSE(f) })
}

func TestCollapseMovChainsPreservesBehaviour(t *testing.T) {
	checkPass(t, "CollapseMovChains", seeds, func(f *rtl.Fn) { opt.CollapseMovChains(f) })
}

func TestDeadCodeElimPreservesBehaviour(t *testing.T) {
	checkPass(t, "DeadCodeElim", seeds, func(f *rtl.Fn) { opt.DeadCodeElim(f) })
}

func TestEliminateDeadIVsPreservesBehaviour(t *testing.T) {
	checkPass(t, "EliminateDeadIVs", seeds, func(f *rtl.Fn) { opt.EliminateDeadIVs(f) })
}

func TestNormalizeAddressesPreservesBehaviour(t *testing.T) {
	checkPass(t, "NormalizeAddresses", seeds, func(f *rtl.Fn) { opt.NormalizeAddresses(f) })
}

func TestThreadJumpsPreservesBehaviour(t *testing.T) {
	checkPass(t, "ThreadJumps", seeds, func(f *rtl.Fn) { opt.ThreadJumps(f) })
}

func TestCleanPreservesBehaviour(t *testing.T) {
	checkPass(t, "Clean", seeds, func(f *rtl.Fn) { opt.Clean(f) })
}

func TestHoistInvariantsPreservesBehaviour(t *testing.T) {
	checkPass(t, "HoistInvariants", seeds, func(f *rtl.Fn) {
		g := cfg.New(f)
		loops := g.FindLoops()
		for _, l := range loops {
			g.EnsurePreheader(l)
		}
		for _, l := range loops {
			opt.HoistInvariants(f, g, l)
		}
	})
}

func TestSchedulePreservesBehaviour(t *testing.T) {
	for _, m := range machine.All() {
		checkPass(t, "Schedule/"+m.Name, seeds/2, func(f *rtl.Fn) {
			sched.ScheduleFn(f, m)
		})
	}
}

func TestRegallocPreservesBehaviour(t *testing.T) {
	for _, k := range []int{8, 16, 32} {
		checkPass(t, fmt.Sprintf("Regalloc/%d", k), seeds/2, func(f *rtl.Fn) {
			if _, err := regalloc.Run(f, k); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFullPipelinePreservesBehaviour(t *testing.T) {
	checkPass(t, "pipeline", seeds, func(f *rtl.Fn) {
		opt.Clean(f)
		g := cfg.New(f)
		loops := g.FindLoops()
		for _, l := range loops {
			g.EnsurePreheader(l)
		}
		for _, l := range loops {
			opt.HoistInvariants(f, g, l)
		}
		opt.Clean(f)
		opt.NormalizeAddresses(f)
		opt.Clean(f)
		sched.ScheduleFn(f, machine.Alpha())
	})
}

func TestGeneratedProgramsParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := mustGen(t, seed)
		printed := f.String()
		f2, err := rtl.ParseFn(printed)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, printed)
		}
		if got := f2.String(); got != printed {
			t.Fatalf("seed %d: round trip differs\n%s\nvs\n%s", seed, printed, got)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := mustGen(t, 5).String()
	b := mustGen(t, 5).String()
	if a != b {
		t.Error("same seed must generate the same program")
	}
	c := mustGen(t, 6).String()
	if a == c {
		t.Error("different seeds should differ")
	}
}
