package bench_test

import (
	"testing"

	"macc/internal/bench"
	"macc/internal/machine"
)

// TestTablesSmall runs every benchmark under every configuration on every
// machine with a small workload, verifying outputs against the Go
// references each time.
func TestTablesSmall(t *testing.T) {
	wl := bench.SmallWorkload()
	for _, m := range machine.All() {
		rows, err := bench.RunTable(m, wl)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, r := range rows {
			if r.Err != nil {
				t.Errorf("%s/%s: %v", m.Name, r.Name, r.Err)
			}
		}
		t.Logf("\n%s", bench.FormatTable(m.Name, rows))
	}
}
