// Package bench reproduces the paper's evaluation: the Table I benchmark
// kernels written in the mini-C subset, reference implementations in Go to
// verify every simulated run, and the harness that regenerates Table II
// (DEC Alpha), Table III (Motorola 88100), and the §3 Motorola 68030 result
// as cycle counts and percent savings.
package bench

// The kernels follow Table I of the paper: compute- and memory-intensive
// image processing loops over 500x500 8-bit frames, a 16-bit variant, and
// the SPEC89 eqntott comparison kernel. Each is written the way the paper's
// benchmarks were: plain loops over pointer parameters, with the arrays'
// size and addresses unknown at compile time, so every coalescing decision
// requires the run-time alias and alignment analysis.

// ConvolutionSrc is a 3x3 gradient/directional-edge convolution. The inner
// loop reads nine pixels from three image rows (three memory partitions)
// while storing the scaled response, so coalescing must disambiguate the
// output row against every input row at run time.
const ConvolutionSrc = `
void convolution(unsigned char *src, unsigned char *dst, int width, int height) {
	int r, c;
	for (r = 1; r < height - 1; r++) {
		for (c = 1; c < width - 1; c++) {
			int sum = 0;
			sum += src[(r-1)*width + (c-1)];
			sum += src[(r-1)*width + c] * 2;
			sum += src[(r-1)*width + (c+1)];
			sum -= src[(r+1)*width + (c-1)];
			sum -= src[(r+1)*width + c] * 2;
			sum -= src[(r+1)*width + (c+1)];
			sum += src[r*width + (c-1)] * 3;
			sum -= src[r*width + (c+1)] * 3;
			dst[r*width + (c-1)] = (sum >> 3) & 255;
		}
	}
}
`

// ImageAddSrc adds two 8-bit frames pixelwise (values wrap, as the paper's
// C code does when stored back into a char frame).
const ImageAddSrc = `
void imageadd(unsigned char *a, unsigned char *b, unsigned char *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = a[i] + b[i];
}
`

// ImageAdd16Src is the 16-bit variant from Table II.
const ImageAdd16Src = `
void imageadd16(unsigned short *a, unsigned short *b, unsigned short *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = a[i] + b[i];
}
`

// ImageXorSrc computes the pixelwise exclusive-or of two frames.
const ImageXorSrc = `
void imagexor(unsigned char *a, unsigned char *b, unsigned char *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = a[i] ^ b[i];
}
`

// TranslateSrc moves an image to a new position inside a destination
// frame: the store pointer is offset from its base by a run-time amount, so
// the alignment of the store stream genuinely varies at run time.
const TranslateSrc = `
void translate(unsigned char *src, unsigned char *dst, int n, int offset) {
	int i;
	for (i = 0; i < n; i++)
		dst[i + offset] = src[i];
}
`

// EqntottSrc is the SPEC89-style comparison kernel: cmppt compares two
// bit-vector rows with an early exit, and the driver reduces over row
// pairs. The early exit puts control flow inside the loop body, which is
// exactly why the paper saw only a few percent here — the hazard analysis
// (same-basic-block rule) rejects coalescing for the hot loop.
const EqntottSrc = `
int cmppt(short *a, short *b, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (a[i] != b[i]) {
			if (a[i] < b[i]) return -1;
			return 1;
		}
	}
	return 0;
}

int eqntott(short *pts, int npt, int nterm) {
	int i, j, total;
	total = 0;
	for (i = 0; i < npt; i++) {
		for (j = 0; j < npt; j++) {
			total += cmppt(pts + i*nterm, pts + j*nterm, nterm);
		}
	}
	return total;
}
`

// MirrorSrc writes the frame reversed: the source pointer walks backwards
// (a negative-step pointer induction variable) while the destination walks
// forwards, exercising coalescing of a descending displacement run.
const MirrorSrc = `
void mirror(unsigned char *src, unsigned char *dst, int n) {
	int i;
	for (i = 0; i < n; i++) {
		dst[i] = src[n-1-i];
	}
}
`

// DotProductSrc is the paper's Figure 1a motivating example.
const DotProductSrc = `
int dotproduct(short a[], short b[], int n) {
	int c, i;
	c = 0;
	for (i = 0; i < n; i++)
		c += a[i] * b[i];
	return c;
}
`
