package bench_test

import (
	"bytes"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/rtlgen"
	"macc/internal/telemetry"
	"macc/internal/telemetry/report"
)

// TestRunCorpusDifferentialAndCoverage drives a small corpus through the
// runner: zero miscompiles (the differential oracle), every compile folded,
// and a nonzero coalescing coverage rate with a populated missed-reason
// histogram — the acceptance shape cmd/optreport scales up to hundreds of
// programs.
func TestRunCorpusDifferentialAndCoverage(t *testing.T) {
	progs := rtlgen.Corpus(7, 30)
	machines := []*machine.Machine{machine.Alpha(), machine.M88100()}
	b := report.NewBuilder()
	out := bench.RunCorpus(progs, machines, 4, func(m, cfg string, rec *telemetry.Recorder) {
		b.Add(m, cfg, rec.Remarks())
	})
	if !out.Ok() {
		t.Fatalf("corpus run not clean: miscompiles=%v failures=%v", out.Miscompiles, out.Failures)
	}
	wantCompiles := len(progs) * len(machines) * len(bench.CorpusConfigs)
	if out.Compiles != wantCompiles {
		t.Errorf("compiles = %d, want %d", out.Compiles, wantCompiles)
	}
	rep := b.Build("corpus-test")
	if rep.Coverage <= 0 {
		t.Error("coverage rate is zero over a corpus built to coalesce")
	}
	if len(rep.MissedReasons) == 0 {
		t.Error("missed-reason histogram empty over a corpus built to include hazards")
	}
	if rep.Units != len(progs) {
		t.Errorf("units = %d, want %d", rep.Units, len(progs))
	}
}

// TestCorpusFlatPipelineMatchesGraph compiles a corpus slice under every
// named configuration through both pipelines and requires byte-identical
// printed RTL — the graph-vs-flat differential over generated programs,
// complementing RunCorpus's optimized-vs-unoptimized oracle.
func TestCorpusFlatPipelineMatchesGraph(t *testing.T) {
	progs := rtlgen.Corpus(11, 30)
	if testing.Short() {
		progs = progs[:8]
	}
	machines := []*machine.Machine{machine.Alpha(), machine.M88100()}
	for _, p := range progs {
		for _, m := range machines {
			for _, cname := range bench.CorpusConfigs {
				flatCfg := bench.NamedConfig(cname, m)
				flatCfg.GraphPipeline = false
				flat, err := macc.Compile(p.Src, flatCfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: flat compile: %v", p.Name, m.Name, cname, err)
				}
				graphCfg := bench.NamedConfig(cname, m)
				graphCfg.GraphPipeline = true
				graph, err := macc.Compile(p.Src, graphCfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: graph compile: %v", p.Name, m.Name, cname, err)
				}
				if got, want := flat.RTL.String(), graph.RTL.String(); got != want {
					t.Fatalf("%s/%s/%s: flat pipeline printed different RTL:\n--- graph ---\n%s\n--- flat ---\n%s",
						p.Name, m.Name, cname, want, got)
				}
			}
		}
	}
}

// TestRunCorpusDeterministicAcrossWorkers: the folded report must be
// byte-identical at any worker count, like the parallel table harness.
func TestRunCorpusDeterministicAcrossWorkers(t *testing.T) {
	progs := rtlgen.Corpus(3, 12)
	machines := []*machine.Machine{machine.Alpha()}
	build := func(workers int) string {
		b := report.NewBuilder()
		out := bench.RunCorpus(progs, machines, workers, func(m, cfg string, rec *telemetry.Recorder) {
			b.Add(m, cfg, rec.Remarks())
		})
		if !out.Ok() {
			t.Fatalf("workers=%d: %v %v", workers, out.Miscompiles, out.Failures)
		}
		rep := b.Build("det")
		rep.Provenance.CreatedAt = ""
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if build(1) != build(8) {
		t.Error("report differs between 1 and 8 workers")
	}
}
