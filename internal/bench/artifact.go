package bench

import (
	"encoding/json"
	"io"

	"macc/internal/machine"
)

// ArtifactSchema versions the BENCH_macc.json layout so downstream tooling
// (CI trend plots, regression gates) can detect incompatible changes.
const ArtifactSchema = "macc-bench/v1"

// Artifact is the machine-readable benchmark result uploaded by CI as
// BENCH_macc.json: one kernel entry per paper benchmark, each carrying the
// four configuration cells (cycles, memory references, and the static
// coalesce counts sourced from the telemetry registry).
type Artifact struct {
	Schema   string        `json:"schema"`
	Machine  string        `json:"machine"`
	Workload Workload      `json:"workload"`
	Kernels  []KernelEntry `json:"kernels"`
}

// KernelEntry is one benchmark's measurements across the table's four
// compiler configurations, plus the derived percent savings the paper
// reports. A failed row carries Error and zeroed cells.
type KernelEntry struct {
	Name             string  `json:"name"`
	Error            string  `json:"error,omitempty"`
	Native           Cell    `json:"native"`
	Vpo              Cell    `json:"vpo"`
	Loads            Cell    `json:"loads"`
	LoadsStores      Cell    `json:"loads_stores"`
	SavingsLoadsPct  float64 `json:"savings_loads_pct"`
	SavingsBothPct   float64 `json:"savings_both_pct"`
	MemRefSavingsPct float64 `json:"mem_ref_savings_pct"`
}

// NewArtifact packages table rows for machine m into the JSON artifact.
func NewArtifact(m *machine.Machine, wl Workload, rows []Row) Artifact {
	a := Artifact{Schema: ArtifactSchema, Machine: m.Name, Workload: wl}
	for _, r := range rows {
		e := KernelEntry{
			Name:        r.Name,
			Native:      r.Native,
			Vpo:         r.Vpo,
			Loads:       r.Loads,
			LoadsStores: r.LoadsStores,
		}
		if r.Err != nil {
			e.Error = r.Err.Error()
		} else {
			e.SavingsLoadsPct = r.SavingsLoads()
			e.SavingsBothPct = r.SavingsBoth()
			e.MemRefSavingsPct = r.MemRefSavings()
		}
		a.Kernels = append(a.Kernels, e)
	}
	return a
}

// WriteJSON writes the artifact as indented JSON.
func (a Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
