package bench_test

import (
	"runtime"
	"testing"

	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/rtl"
)

// BenchmarkSnapshotClone is the pass pipeline's old per-pass cost: a full
// deep Clone of every compiled paper-kernel function.
func BenchmarkSnapshotClone(b *testing.B) {
	fns, err := bench.KernelFns(machine.Alpha())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kf := range fns {
			_ = kf.Fn.Clone()
		}
	}
}

// BenchmarkSnapshotJournal is the replacement cost: a clean journal Update
// over the same functions — the price the pipeline now pays after a pass
// that changed nothing.
func BenchmarkSnapshotJournal(b *testing.B) {
	fns, err := bench.KernelFns(machine.Alpha())
	if err != nil {
		b.Fatal(err)
	}
	snaps := make([]*rtl.Snapshot, len(fns))
	for i, kf := range fns {
		snaps[i] = rtl.NewSnapshot(kf.Fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range snaps {
			if dirty := s.Update(); dirty != 0 {
				b.Fatalf("clean function reported %d dirty blocks", dirty)
			}
		}
	}
}

func benchmarkRunTable(b *testing.B, jobs int) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTableOpts(m, wl, bench.TableOptions{Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkRunTableSerial measures the full paper table on one worker.
func BenchmarkRunTableSerial(b *testing.B) { benchmarkRunTable(b, 1) }

// BenchmarkRunTableParallel measures the same table on a GOMAXPROCS-wide
// pool; on a multi-core host this is the tentpole's >= 2x scaling claim.
func BenchmarkRunTableParallel(b *testing.B) { benchmarkRunTable(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSimDotProduct measures the predecoded interpreter's raw rate,
// reported as simulated MIPS, on a single Sim reused across runs — the shape
// Measure's inner loop has after arena reuse.
func BenchmarkSimDotProduct(b *testing.B) {
	step, instrs, release, err := bench.SimStepper(machine.Alpha(), bench.SmallWorkload())
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(instrs)*float64(b.N)/secs/1e6, "MIPS")
	}
}
