package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
	"macc/internal/sim"
	"macc/internal/telemetry"
)

// Workload sizes the benchmark inputs. The paper uses 500x500 frames.
type Workload struct {
	Width  int   `json:"width"`
	Height int   `json:"height"`
	Npt    int   `json:"npt"`   // eqntott: rows
	Nterm  int   `json:"nterm"` // eqntott: row length
	Seed   int64 `json:"seed"`
}

// DefaultWorkload matches the paper's evaluation sizes.
func DefaultWorkload() Workload {
	return Workload{Width: 500, Height: 500, Npt: 60, Nterm: 16, Seed: 1994}
}

// SmallWorkload keeps unit tests fast while exercising every code path:
// the width is machine-word aligned (as the paper's 500-pixel rows are
// longword aligned) but trip counts are deliberately not multiples of the
// unroll factor, so the remainder loops run.
func SmallWorkload() Workload {
	return Workload{Width: 64, Height: 45, Npt: 12, Nterm: 9, Seed: 7}
}

// Cell is one measurement: the dynamic simulator counts plus the static
// coalescer decisions, the latter sourced from the telemetry metrics
// registry of the compile that produced the cell.
type Cell struct {
	Cycles         int64 `json:"cycles"`
	MemRefs        int64 `json:"mem_refs"`
	LoopsCoalesced int64 `json:"loops_coalesced"`
	WideLoads      int64 `json:"wide_loads"`
	WideStores     int64 `json:"wide_stores"`
	NarrowElim     int64 `json:"narrow_refs_eliminated"`
	CheckInstrs    int64 `json:"check_instrs"`
}

// Row is one line of a paper table.
type Row struct {
	Name        string
	Native      Cell // cc -O stand-in
	Vpo         Cell // vpcc/vpo -O (unrolled, scheduled, no coalescing)
	Loads       Cell // + coalesce loads
	LoadsStores Cell // + coalesce loads and stores
	// Err, when non-nil, marks the row as failed: one of the benchmark's
	// configurations did not compile or did not validate against the Go
	// reference. The other rows of the table are still measured.
	Err error
}

// SavingsLoads is the percent cycle saving of load coalescing over the vpo
// baseline, the paper's Table II/III "Percent Savings" with column 4.
func (r Row) SavingsLoads() float64 { return pct(r.Vpo.Cycles, r.Loads.Cycles) }

// SavingsBoth is the percent saving with loads and stores coalesced.
func (r Row) SavingsBoth() float64 { return pct(r.Vpo.Cycles, r.LoadsStores.Cycles) }

// MemRefSavings is the reduction in executed memory references.
func (r Row) MemRefSavings() float64 { return pct(r.Vpo.MemRefs, r.LoadsStores.MemRefs) }

func pct(base, new int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-new) / float64(base)
}

// Benchmark is one Table I entry.
type Benchmark struct {
	Name     string
	PaperLoC int // lines of code reported in Table I
	Src      string
	Entry    string
	// Run lays out memory, executes the entry point, and verifies the
	// result against the Go reference.
	Run func(p *macc.Program, wl Workload) (sim.Result, error)
}

const memBytes = 1 << 22

func align8(x int64) int64 { return (x + 7) &^ 7 }

func frames(wl Workload, count int, elem int64) []int64 {
	size := align8(int64(wl.Width*wl.Height) * elem)
	addrs := make([]int64, count)
	base := int64(4096)
	for i := range addrs {
		addrs[i] = base
		base += size
	}
	return addrs
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// Benchmarks returns the paper's benchmark suite (Table I) plus the
// Figure 1 dot product.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{
			Name: "Convolution", PaperLoC: 154, Src: ConvolutionSrc, Entry: "convolution",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				// Image rows are padded to a quadword stride, as image
				// libraries allocate frames; the kernel's width parameter
				// is the stride.
				stride := (wl.Width + 7) &^ 7
				n := stride * wl.Height
				src := randBytes(rng, n)
				addrs := []int64{4096, 4096 + align8(int64(n))}
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteBytes(addrs[0], src)
				res, err := s.Run("convolution", addrs[0], addrs[1], int64(stride), int64(wl.Height))
				if err != nil {
					return res, err
				}
				want := RefConvolution(src, stride, wl.Height)
				got := s.ReadBytes(addrs[1], n)
				if !bytes.Equal(got, want) {
					return res, fmt.Errorf("convolution output mismatch")
				}
				return res, nil
			},
		},
		{
			Name: "Image add", PaperLoC: 48, Src: ImageAddSrc, Entry: "imageadd",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Width * wl.Height
				a, b := randBytes(rng, n), randBytes(rng, n)
				addrs := frames(wl, 3, 1)
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteBytes(addrs[0], a)
				s.WriteBytes(addrs[1], b)
				res, err := s.Run("imageadd", addrs[0], addrs[1], addrs[2], int64(n))
				if err != nil {
					return res, err
				}
				if !bytes.Equal(s.ReadBytes(addrs[2], n), RefImageAdd(a, b)) {
					return res, fmt.Errorf("imageadd output mismatch")
				}
				return res, nil
			},
		},
		{
			Name: "Image add (16-bit)", PaperLoC: 48, Src: ImageAdd16Src, Entry: "imageadd16",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Width * wl.Height
				a := make([]uint16, n)
				b := make([]uint16, n)
				av := make([]int64, n)
				bv := make([]int64, n)
				for i := 0; i < n; i++ {
					a[i] = uint16(rng.Intn(1 << 16))
					b[i] = uint16(rng.Intn(1 << 16))
					av[i], bv[i] = int64(a[i]), int64(b[i])
				}
				addrs := frames(wl, 3, 2)
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteInts(addrs[0], rtl.W2, av)
				s.WriteInts(addrs[1], rtl.W2, bv)
				res, err := s.Run("imageadd16", addrs[0], addrs[1], addrs[2], int64(n))
				if err != nil {
					return res, err
				}
				want := RefImageAdd16(a, b)
				got := s.ReadInts(addrs[2], rtl.W2, n, false)
				for i := range want {
					if got[i] != int64(want[i]) {
						return res, fmt.Errorf("imageadd16 mismatch at %d", i)
					}
				}
				return res, nil
			},
		},
		{
			Name: "Image xor", PaperLoC: 48, Src: ImageXorSrc, Entry: "imagexor",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Width * wl.Height
				a, b := randBytes(rng, n), randBytes(rng, n)
				addrs := frames(wl, 3, 1)
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteBytes(addrs[0], a)
				s.WriteBytes(addrs[1], b)
				res, err := s.Run("imagexor", addrs[0], addrs[1], addrs[2], int64(n))
				if err != nil {
					return res, err
				}
				if !bytes.Equal(s.ReadBytes(addrs[2], n), RefImageXor(a, b)) {
					return res, fmt.Errorf("imagexor output mismatch")
				}
				return res, nil
			},
		},
		{
			Name: "Translate", PaperLoC: 48, Src: TranslateSrc, Entry: "translate",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Width * wl.Height
				src := randBytes(rng, n)
				addrs := frames(wl, 3, 1)       // dst frame is double-size below
				offset := int64(wl.Width/2) * 8 // 8-aligned so coalescing survives
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteBytes(addrs[0], src)
				res, err := s.Run("translate", addrs[0], addrs[1], int64(n), offset)
				if err != nil {
					return res, err
				}
				want := make([]byte, n+int(offset))
				RefTranslate(src, want, int(offset))
				got := s.ReadBytes(addrs[1], n+int(offset))
				if !bytes.Equal(got, want) {
					return res, fmt.Errorf("translate output mismatch")
				}
				return res, nil
			},
		},
		{
			Name: "Eqntott", PaperLoC: 146, Src: EqntottSrc, Entry: "eqntott",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Npt * wl.Nterm
				pts := make([]int16, n)
				vals := make([]int64, n)
				for i := range pts {
					// Low cardinality so many rows tie for long prefixes,
					// as eqntott's sorted bit vectors do.
					pts[i] = int16(rng.Intn(3))
					vals[i] = int64(pts[i])
				}
				addr := int64(4096)
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteInts(addr, rtl.W2, vals)
				res, err := s.Run("eqntott", addr, int64(wl.Npt), int64(wl.Nterm))
				if err != nil {
					return res, err
				}
				if want := RefEqntott(pts, wl.Npt, wl.Nterm); res.Ret != want {
					return res, fmt.Errorf("eqntott: got %d, want %d", res.Ret, want)
				}
				return res, nil
			},
		},
		{
			Name: "Mirror", PaperLoC: 50, Src: MirrorSrc, Entry: "mirror",
			Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
				rng := rand.New(rand.NewSource(wl.Seed))
				n := wl.Width * wl.Height
				src := randBytes(rng, n)
				addrs := frames(wl, 2, 1)
				s := p.NewSim(memBytes)
				defer s.Release()
				s.WriteBytes(addrs[0], src)
				res, err := s.Run("mirror", addrs[0], addrs[1], int64(n))
				if err != nil {
					return res, err
				}
				if !bytes.Equal(s.ReadBytes(addrs[1], n), RefMirror(src)) {
					return res, fmt.Errorf("mirror output mismatch")
				}
				return res, nil
			},
		},
	}
}

// DotProduct returns the Figure 1 benchmark (not part of Table II but used
// by the examples and the motivation figure).
func DotProduct() Benchmark {
	return Benchmark{
		Name: "Dot product", Src: DotProductSrc, Entry: "dotproduct",
		Run: func(p *macc.Program, wl Workload) (sim.Result, error) {
			rng := rand.New(rand.NewSource(wl.Seed))
			n := wl.Width * wl.Height
			a := make([]int16, n)
			b := make([]int16, n)
			av := make([]int64, n)
			bv := make([]int64, n)
			for i := 0; i < n; i++ {
				a[i] = int16(rng.Intn(1<<16) - 1<<15)
				b[i] = int16(rng.Intn(1<<16) - 1<<15)
				av[i], bv[i] = int64(a[i]), int64(b[i])
			}
			addrs := frames(wl, 2, 2)
			s := p.NewSim(memBytes)
			defer s.Release()
			s.WriteInts(addrs[0], rtl.W2, av)
			s.WriteInts(addrs[1], rtl.W2, bv)
			res, err := s.Run("dotproduct", addrs[0], addrs[1], int64(n))
			if err != nil {
				return res, err
			}
			if want := RefDotProduct(a, b); res.Ret != want {
				return res, fmt.Errorf("dotproduct: got %d, want %d", res.Ret, want)
			}
			return res, nil
		},
	}
}

// Configs returns the four compiler configurations of the paper's tables
// for machine m, in column order.
func Configs(m *machine.Machine) []macc.Config {
	loads := macc.BaselineConfig(m)
	loads.Coalesce = core.Options{Loads: true}
	both := macc.BaselineConfig(m)
	both.Coalesce = core.Options{Loads: true, Stores: true}
	return []macc.Config{
		macc.NativeConfig(m),
		macc.BaselineConfig(m),
		loads,
		both,
	}
}

// Measure runs one benchmark under one configuration. Each measurement
// compiles with its own telemetry recorder so the cell carries the static
// coalescer counters alongside the dynamic cycle counts, and so failure
// messages can summarize what the coalescer decided.
func Measure(b Benchmark, cfgc macc.Config, wl Workload) (Cell, error) {
	return MeasureTraced(b, cfgc, wl, telemetry.NewRecorder())
}

// MeasureTraced is Measure with a caller-supplied recorder, so a harness
// can harvest the compile's per-pass spans afterwards (the parallel table
// runner merges them into one worker-attributed Chrome trace).
func MeasureTraced(b Benchmark, cfgc macc.Config, wl Workload, rec *telemetry.Recorder) (Cell, error) {
	cfgc.Telemetry = rec
	p, err := macc.Compile(b.Src, cfgc)
	if err != nil {
		return Cell{}, fmt.Errorf("%s: compile: %w", b.Name, err)
	}
	if p.Diagnostics.Degraded() {
		// A degraded compile is still correct but no longer measures the
		// configuration it claims to; surface it as a row diagnostic.
		return Cell{}, fmt.Errorf("%s: compile degraded: %s (coalesce: %s)",
			b.Name, strings.Join(p.Diagnostics.FailedPasses(), ", "),
			telemetry.Summarize(rec.Remarks(), "coalesce"))
	}
	res, err := b.Run(p, wl)
	if err != nil {
		return Cell{}, fmt.Errorf("%s: %w (coalesce: %s)", b.Name, err,
			telemetry.Summarize(rec.Remarks(), "coalesce"))
	}
	reg := rec.Metrics()
	return Cell{
		Cycles:         res.Cycles,
		MemRefs:        res.MemRefs(),
		LoopsCoalesced: reg.CounterValue("coalesce.loops_coalesced"),
		WideLoads:      reg.CounterValue("coalesce.wide_loads"),
		WideStores:     reg.CounterValue("coalesce.wide_stores"),
		NarrowElim: reg.CounterValue("coalesce.narrow_loads_eliminated") +
			reg.CounterValue("coalesce.narrow_stores_eliminated"),
		CheckInstrs: reg.CounterValue("coalesce.check_instrs"),
	}, nil
}

// TableOptions configures RunTableOpts.
type TableOptions struct {
	// Jobs bounds the worker pool measuring table cells. Zero or negative
	// means GOMAXPROCS. Jobs == 1 is the serial schedule; any other value
	// produces byte-identical rows, remarks, and artifacts — the assembly
	// step reconstructs the serial first-failure semantics from the full
	// cell matrix.
	Jobs int
	// Registry, when non-nil, receives the harness's own telemetry (cells
	// measured, cell failures, per-cell wall time). Workers write to private
	// registries that are merged here at the pool barrier, so the hot path
	// never contends on shared counters.
	Registry *telemetry.Registry
	// Trace, when non-nil, receives the merged per-pass Chrome trace of
	// every cell compile. Each worker's spans are stamped with its worker
	// ID, so a -j run renders one process row per worker instead of all
	// workers interleaving on one timeline.
	Trace io.Writer
}

// columnNames are the table's configuration columns, in Configs order.
var columnNames = []string{"native", "vpo", "loads", "loads+stores"}

// RunTable produces the paper-table rows for machine m. A benchmark whose
// compile or reference validation fails does not abort the table: its row
// carries the error (Row.Err) and the remaining rows are still measured.
// The returned error is reserved for harness-level failures and is
// currently always nil. Cells are measured by a GOMAXPROCS-wide worker
// pool; use RunTableOpts to choose the width.
func RunTable(m *machine.Machine, wl Workload) ([]Row, error) {
	return RunTableOpts(m, wl, TableOptions{})
}

// RunTableOpts is RunTable with an explicit worker-pool width and telemetry
// sink.
func RunTableOpts(m *machine.Machine, wl Workload, opts TableOptions) ([]Row, error) {
	return runTable(Benchmarks(), Configs(m), wl, opts)
}

// cellResult is one measured (benchmark, config) cell.
type cellResult struct {
	cell Cell
	err  error
}

// measureCell runs one Measure under panic isolation: a panicking
// configuration (a miscompiled kernel tripping a harness invariant, say)
// degrades only its row, exactly like a returned error.
func measureCell(b Benchmark, cfgc macc.Config, wl Workload, rec *telemetry.Recorder) (cell Cell, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: panic: %v", b.Name, r)
		}
	}()
	return MeasureTraced(b, cfgc, wl, rec)
}

// runTable fans the (benchmark, configuration) cell matrix out over a
// bounded worker pool, then assembles rows with the serial schedule's
// semantics: a row reports the failure of its lowest-index failing
// configuration and zeroes every cell from that configuration on, so the
// output is byte-identical to a one-worker run regardless of pool width or
// completion order.
func runTable(benches []Benchmark, cfgs []macc.Config, wl Workload, opts TableOptions) ([]Row, error) {
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if n := len(benches) * len(cfgs); jobs > n {
		jobs = n
	}

	results := make([][]cellResult, len(benches))
	for i := range results {
		results[i] = make([]cellResult, len(cfgs))
	}

	type task struct{ bi, ci int }
	taskc := make(chan task)
	regs := make([]*telemetry.Registry, jobs)
	workerSpans := make([][]telemetry.Span, jobs)
	epoch := time.Now() // common timeline for every cell recorder's spans
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		reg := telemetry.NewRegistry()
		regs[w] = reg
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for t := range taskc {
				start := time.Now()
				rec := telemetry.NewRecorder()
				cell, err := measureCell(benches[t.bi], cfgs[t.ci], wl, rec)
				results[t.bi][t.ci] = cellResult{cell: cell, err: err}
				reg.Counter("bench.cells_measured").Add(1)
				if err != nil {
					reg.Counter("bench.cell_failures").Add(1)
				}
				reg.Histogram("bench.cell_wall_ns").Observe(time.Since(start).Nanoseconds())
				if opts.Trace != nil {
					// Rebase onto the shared epoch and stamp the worker ID
					// so the merged trace attributes each span's lane.
					spans := rec.SpansSince(epoch)
					for i := range spans {
						spans[i].PID = worker + 1
					}
					workerSpans[worker] = append(workerSpans[worker], spans...)
				}
			}
		}(w)
	}
	for bi := range benches {
		for ci := range cfgs {
			taskc <- task{bi, ci}
		}
	}
	close(taskc)
	wg.Wait() // barrier: every cell measured, worker registries quiescent

	if opts.Registry != nil {
		for _, reg := range regs {
			opts.Registry.Merge(reg)
		}
	}
	if opts.Trace != nil {
		var all []telemetry.Span
		for _, ws := range workerSpans {
			all = append(all, ws...)
		}
		sort.SliceStable(all, func(i, j int) bool { return all[i].Start < all[j].Start })
		if err := telemetry.WriteTraceEvents(opts.Trace, all); err != nil {
			return nil, fmt.Errorf("bench: write trace: %w", err)
		}
	}

	rows := make([]Row, 0, len(benches))
	for bi, b := range benches {
		row := Row{Name: b.Name}
		cells := []*Cell{&row.Native, &row.Vpo, &row.Loads, &row.LoadsStores}
		for ci := range cfgs {
			r := results[bi][ci]
			if r.err != nil {
				// Serial semantics: the first failing configuration defines
				// the row error; later cells stay zero as if never measured.
				row.Err = fmt.Errorf("config %q: %w", columnNames[ci], r.err)
				break
			}
			*cells[ci] = r.cell
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable renders rows the way the paper prints Tables II and III. The
// trailing "elim" column is the number of narrow references the coalescer
// statically eliminated in the loads+stores configuration, sourced from the
// telemetry registry of that compile.
func FormatTable(title string, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%-20s %12s %12s %12s %12s %9s %9s %8s %6s\n",
		"Program", "native", "vpo", "loads", "loads+st", "sav(ld)%", "sav(l+s)%", "refs-%", "elim")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(&sb, "%-20s FAILED: %v\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&sb, "%-20s %12d %12d %12d %12d %9.2f %9.2f %8.2f %6d\n",
			r.Name, r.Native.Cycles, r.Vpo.Cycles, r.Loads.Cycles, r.LoadsStores.Cycles,
			r.SavingsLoads(), r.SavingsBoth(), r.MemRefSavings(), r.LoadsStores.NarrowElim)
	}
	return sb.String()
}
