package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtlgen"
	"macc/internal/telemetry"
)

// CorpusConfigs names the coalescing configurations every corpus program is
// compiled under, in column order.
var CorpusConfigs = []string{"loads", "loads+stores"}

// NamedConfig builds the named coalescing configuration for machine m:
// "loads" coalesces loads only, "loads+stores" both — the last two columns
// of the paper's tables.
func NamedConfig(name string, m *machine.Machine) macc.Config {
	cfg := macc.BaselineConfig(m)
	cfg.Coalesce = core.Options{Loads: true, Stores: name == "loads+stores"}
	// Every corpus compile runs the flat pass pipeline, so the corpus
	// differential (optimized vs unoptimized fingerprint) exercises the
	// flat path even if the compile default ever changes.
	cfg.GraphPipeline = false
	return cfg
}

// CorpusFold receives one corpus compile's telemetry, attributed to the
// machine and configuration column it ran under. It is called from many
// workers concurrently and must be safe for that (report.Builder.Add is).
type CorpusFold func(machineName, config string, rec *telemetry.Recorder)

// CorpusOutcome summarizes a corpus run. Miscompiles must be empty: every
// entry is a program whose optimized behaviour fingerprint diverged from
// its unoptimized compile — the differential oracle the ROADMAP requires
// for the corpus engine.
type CorpusOutcome struct {
	Programs    int      `json:"programs"`
	Compiles    int      `json:"compiles"`
	Miscompiles []string `json:"miscompiles,omitempty"`
	Failures    []string `json:"failures,omitempty"`
}

// Ok reports whether the run completed with zero miscompiles and zero
// failed compiles.
func (o CorpusOutcome) Ok() bool { return len(o.Miscompiles) == 0 && len(o.Failures) == 0 }

// RunCorpus pushes every (program × machine) pair through the unoptimized
// reference compile and each coalescing configuration, verifying that
// optimization preserved the program's behaviour fingerprint
// (pipeline.Behavior over the program's concrete arguments) and handing
// each optimized compile's remarks to fold. Work is spread over the given
// number of workers (0 means GOMAXPROCS); the outcome is deterministic
// regardless of worker count.
func RunCorpus(progs []rtlgen.CorpusProgram, machines []*machine.Machine, workers int, fold CorpusFold) CorpusOutcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		prog rtlgen.CorpusProgram
		m    *machine.Machine
	}
	jobs := make(chan job)
	var mu sync.Mutex
	out := CorpusOutcome{Programs: len(progs)}
	fail := func(format string, args ...any) {
		mu.Lock()
		out.Failures = append(out.Failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				runCorpusJob(j.prog, j.m, fold, &mu, &out, fail)
			}
		}()
	}
	for _, p := range progs {
		for _, m := range machines {
			jobs <- job{p, m}
		}
	}
	close(jobs)
	wg.Wait()
	sort.Strings(out.Miscompiles)
	sort.Strings(out.Failures)
	return out
}

func runCorpusJob(p rtlgen.CorpusProgram, m *machine.Machine, fold CorpusFold,
	mu *sync.Mutex, out *CorpusOutcome, fail func(string, ...any)) {
	// The reference is the front end with every optimization off: the
	// fingerprint any optimizing configuration must reproduce.
	refProg, err := macc.Compile(p.Src, macc.Config{Machine: m})
	if err != nil {
		fail("%s/%s: reference compile: %v", p.Name, m.Name, err)
		return
	}
	refFP, err := pipeline.Behavior(refProg.RTL, m, p.MemBytes, p.Entry, [][]int64{p.Args})
	if err != nil {
		fail("%s/%s: reference run: %v", p.Name, m.Name, err)
		return
	}
	for _, cname := range CorpusConfigs {
		rec := telemetry.NewRecorder()
		cfg := NamedConfig(cname, m)
		cfg.Unit = p.Name
		cfg.Telemetry = rec
		prog, err := macc.Compile(p.Src, cfg)
		if err != nil {
			fail("%s/%s/%s: compile: %v", p.Name, m.Name, cname, err)
			continue
		}
		if prog.Diagnostics.Degraded() {
			fail("%s/%s/%s: compile degraded: %v", p.Name, m.Name, cname, prog.Diagnostics)
			continue
		}
		fp, err := pipeline.Behavior(prog.RTL, m, p.MemBytes, p.Entry, [][]int64{p.Args})
		if err != nil {
			fail("%s/%s/%s: optimized run: %v", p.Name, m.Name, cname, err)
			continue
		}
		mu.Lock()
		out.Compiles++
		if fp != refFP {
			out.Miscompiles = append(out.Miscompiles,
				fmt.Sprintf("%s/%s/%s: behaviour diverged from unoptimized compile", p.Name, m.Name, cname))
		}
		mu.Unlock()
		if fold != nil {
			fold(m.Name, cname, rec)
		}
	}
}
