package bench

import (
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Provenance is the shared identity block stamped into every benchmark and
// report artifact (BENCH_hotpath.json, BENCH_service.json,
// BENCH_optreport.json). Gates compare artifacts from different builds; the
// provenance block lets them refuse or downgrade cross-host and cross-schema
// comparisons loudly instead of silently comparing incomparable numbers.
type Provenance struct {
	Schema    string `json:"schema"`
	GitCommit string `json:"git_commit"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	CreatedAt string `json:"created_at"` // RFC 3339, UTC
}

// NewProvenance captures the current build and host identity under the
// given artifact schema. The git commit comes from the binary's embedded
// VCS stamp when present (release-style builds), falling back to asking git
// directly (the `go test` / `go run` path, which does not stamp), and
// finally to "unknown" so artifacts are always well-formed.
func NewProvenance(schema string) Provenance {
	return Provenance{
		Schema:    schema,
		GitCommit: gitCommit(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// Host renders the comparison-relevant host identity (everything except the
// commit and timestamp) in one line, for mismatch diagnostics.
func (p Provenance) Host() string {
	return fmt.Sprintf("%s/%s go=%s cpus=%d", p.GOOS, p.GOARCH, p.GoVersion, p.CPUs)
}

// SameHost reports whether two artifacts were produced on comparable hosts:
// same OS, architecture, toolchain, and CPU count. Relative performance
// gates should refuse (or fall back to absolute floors) when this is false;
// decision-level gates (remark diffs) may proceed with a warning since
// compile decisions are host-insensitive.
func (p Provenance) SameHost(q Provenance) bool {
	return p.GOOS == q.GOOS && p.GOARCH == q.GOARCH &&
		p.GoVersion == q.GoVersion && p.CPUs == q.CPUs
}

// CheckComparable errors when the two artifacts cannot be diffed at all —
// different schemas mean different layouts and semantics.
func (p Provenance) CheckComparable(q Provenance) error {
	if p.Schema != q.Schema {
		return fmt.Errorf("artifact schema mismatch: %q vs %q", p.Schema, q.Schema)
	}
	return nil
}
