package bench

import (
	"macc"
	"macc/internal/machine"
	"macc/internal/telemetry"
)

// RunTableBenches exposes the worker-pool core to tests that need a custom
// benchmark list (failure- and panic-isolation scenarios).
func RunTableBenches(benches []Benchmark, m *machine.Machine, wl Workload, opts TableOptions) ([]Row, error) {
	return runTable(benches, Configs(m), wl, opts)
}

// MeasureCell exposes the panic-isolating wrapper around Measure.
func MeasureCell(b Benchmark, cfgc macc.Config, wl Workload) (Cell, error) {
	return measureCell(b, cfgc, wl, telemetry.NewRecorder())
}
