package bench_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/machine"
	"macc/internal/sim"
	"macc/internal/telemetry"
)

// TestParallelTableIsByteIdentical is the harness's determinism contract:
// a four-worker run must produce the same rendered table and the same JSON
// artifact, byte for byte, as the serial schedule.
func TestParallelTableIsByteIdentical(t *testing.T) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()

	serial, err := bench.RunTableOpts(m, wl, bench.TableOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := bench.RunTableOpts(m, wl, bench.TableOptions{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}

	st := bench.FormatTable(m.Name, serial)
	pt := bench.FormatTable(m.Name, parallel)
	if st != pt {
		t.Errorf("parallel table diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s", st, pt)
	}

	var sj, pj bytes.Buffer
	if err := bench.NewArtifact(m, wl, serial).WriteJSON(&sj); err != nil {
		t.Fatal(err)
	}
	if err := bench.NewArtifact(m, wl, parallel).WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj.Bytes(), pj.Bytes()) {
		t.Errorf("parallel artifact diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			sj.String(), pj.String())
	}
}

// brokenBenchmarks returns a suite where the middle benchmark fails its
// reference validation and another panics outright.
func brokenBenchmarks() []bench.Benchmark {
	good := bench.DotProduct()
	failing := bench.DotProduct()
	failing.Name = "Failing"
	failing.Run = func(p *macc.Program, wl bench.Workload) (sim.Result, error) {
		return sim.Result{}, fmt.Errorf("reference mismatch (synthetic)")
	}
	panicking := bench.DotProduct()
	panicking.Name = "Panicking"
	panicking.Run = func(p *macc.Program, wl bench.Workload) (sim.Result, error) {
		panic("synthetic harness panic")
	}
	return []bench.Benchmark{good, failing, panicking}
}

// TestCellFailureDegradesOnlyItsRow: a failing or panicking configuration
// must not take down the table, the pool, or its neighbours — and the
// outcome must be identical at every pool width.
func TestCellFailureDegradesOnlyItsRow(t *testing.T) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()
	for _, jobs := range []int{1, 4} {
		rows, err := bench.RunTableBenches(brokenBenchmarks(), m, wl, bench.TableOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(rows) != 3 {
			t.Fatalf("jobs=%d: got %d rows, want 3", jobs, len(rows))
		}
		if rows[0].Err != nil {
			t.Errorf("jobs=%d: healthy row failed: %v", jobs, rows[0].Err)
		}
		if rows[0].Vpo.Cycles == 0 {
			t.Errorf("jobs=%d: healthy row not measured", jobs)
		}
		if rows[1].Err == nil || !strings.Contains(rows[1].Err.Error(), `config "native"`) {
			t.Errorf("jobs=%d: failing row error = %v, want first-config failure", jobs, rows[1].Err)
		}
		if rows[1].Native.Cycles != 0 || rows[1].Vpo.Cycles != 0 {
			t.Errorf("jobs=%d: failed row has non-zero cells (serial semantics zero them)", jobs)
		}
		if rows[2].Err == nil || !strings.Contains(rows[2].Err.Error(), "panic: synthetic harness panic") {
			t.Errorf("jobs=%d: panicking row error = %v, want recovered panic", jobs, rows[2].Err)
		}
	}
}

// TestWorkerTelemetryMerged: the per-worker registries must land in the
// caller's registry at the barrier, with one sample per cell.
func TestWorkerTelemetryMerged(t *testing.T) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()
	reg := telemetry.NewRegistry()
	rows, err := bench.RunTableBenches(brokenBenchmarks(), m, wl, bench.TableOptions{Jobs: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// 3 benches x 4 configs, every cell measured even on failing rows.
	if got := reg.CounterValue("bench.cells_measured"); got != 12 {
		t.Errorf("cells_measured = %d, want 12", got)
	}
	if got := reg.CounterValue("bench.cell_failures"); got < 2 {
		t.Errorf("cell_failures = %d, want >= 2 (failing + panicking rows)", got)
	}
	if hs := reg.Histogram("bench.cell_wall_ns").Snapshot(); hs.Count != 12 {
		t.Errorf("cell_wall_ns samples = %d, want 12", hs.Count)
	}
	_ = rows
}

// TestParallelTraceSeparatesWorkers: TableOptions.Trace must emit one Chrome
// trace where each pool worker owns a distinct pid (so a -j run renders one
// process row per worker), and every compile's pass spans must be present.
func TestParallelTraceSeparatesWorkers(t *testing.T) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()
	var buf bytes.Buffer
	_, err := bench.RunTableOpts(m, wl, bench.TableOptions{Jobs: 3, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	workers := map[int]bool{}
	passSpans := 0
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				name, _ := ev.Args["name"].(string)
				if !strings.HasPrefix(name, "worker ") {
					t.Errorf("process %d named %q, want worker prefix", ev.Pid, name)
				}
				workers[ev.Pid] = true
			}
		case "X":
			passSpans++
			if ev.Pid == 0 {
				t.Errorf("span %q has no worker pid", ev.Name)
			}
		}
	}
	if len(workers) < 2 {
		t.Errorf("trace names %d worker processes, want >= 2 at Jobs=3", len(workers))
	}
	if passSpans == 0 {
		t.Error("trace has no pass spans")
	}
}

// TestConcurrentMeasureSharedRegistry is the -race stress case: many
// goroutines measuring cells at once while their telemetry funnels into one
// shared registry.
func TestConcurrentMeasureSharedRegistry(t *testing.T) {
	m := machine.Alpha()
	wl := bench.SmallWorkload()
	cfgs := bench.Configs(m)
	b := bench.DotProduct()
	shared := telemetry.NewRegistry()
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(cfgs))
	for round := 0; round < 2; round++ {
		for _, cfgc := range cfgs {
			wg.Add(1)
			go func(cfgc macc.Config) {
				defer wg.Done()
				cell, err := bench.MeasureCell(b, cfgc, wl)
				if err != nil {
					errs <- err
					return
				}
				shared.Counter("stress.cells").Add(1)
				shared.Counter("stress.cycles").Add(cell.Cycles)
				shared.Histogram("stress.cell_cycles").Observe(cell.Cycles)
			}(cfgc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := shared.CounterValue("stress.cells"); got != int64(2*len(cfgs)) {
		t.Errorf("stress.cells = %d, want %d", got, 2*len(cfgs))
	}
}
