package bench

// Hot-path measurement cores, shared between the go-test microbenchmarks
// (hotpath_bench_test.go) and cmd/hotpath, which packages the same numbers
// into the committed BENCH_hotpath.json baseline. Three costs are tracked:
// the pipeline's per-pass snapshot (journal Update vs the whole-function
// Clone it replaced), the bench harness's table wall time (serial vs
// parallel pool), and the simulator's raw interpretation rate.

import (
	"fmt"
	"math/rand"

	"macc"
	"macc/internal/machine"
	"macc/internal/rtl"
)

// KernelFn is one compiled paper-kernel function, labelled by benchmark.
type KernelFn struct {
	Kernel string
	Fn     *rtl.Fn
}

// KernelFns compiles every Table I kernel plus the Figure 1 dot product with
// the baseline configuration for m and returns their RTL functions — the
// realistic inputs for snapshot-cost measurement (post-unroll sizes, real
// block structure).
func KernelFns(m *machine.Machine) ([]KernelFn, error) {
	var out []KernelFn
	for _, b := range append(Benchmarks(), DotProduct()) {
		p, err := macc.Compile(b.Src, macc.BaselineConfig(m))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		for _, f := range p.RTL.Fns {
			out = append(out, KernelFn{Kernel: b.Name, Fn: f})
		}
	}
	return out, nil
}

// SimStepper compiles the dot-product kernel for m and returns a step
// function that performs one full simulated measurement — Reset, input
// setup, Run — on a single long-lived Sim, plus the executed instruction
// count per step and a release function returning the arena to the pool.
// This is the simulator MIPS probe: one decode, many runs.
func SimStepper(m *machine.Machine, wl Workload) (step func() error, instrsPerStep int64, release func(), err error) {
	bm := DotProduct()
	p, err := macc.Compile(bm.Src, macc.BaselineConfig(m))
	if err != nil {
		return nil, 0, nil, fmt.Errorf("%s: %w", bm.Name, err)
	}
	rng := rand.New(rand.NewSource(wl.Seed))
	n := wl.Width * wl.Height
	av := make([]int64, n)
	bv := make([]int64, n)
	for i := 0; i < n; i++ {
		av[i] = int64(int16(rng.Intn(1<<16) - 1<<15))
		bv[i] = int64(int16(rng.Intn(1<<16) - 1<<15))
	}
	addrs := frames(wl, 2, 2)
	s := p.NewSim(memBytes)
	step = func() error {
		s.Reset()
		s.WriteInts(addrs[0], rtl.W2, av)
		s.WriteInts(addrs[1], rtl.W2, bv)
		res, err := s.Run("dotproduct", addrs[0], addrs[1], int64(n))
		if err != nil {
			return err
		}
		instrsPerStep = res.Instrs
		return nil
	}
	// Prime once so instrsPerStep is known to callers before their loop.
	if err := step(); err != nil {
		return nil, 0, nil, err
	}
	return step, instrsPerStep, func() { s.Release() }, nil
}
