package bench

// Reference implementations in Go. Every simulated run is checked against
// these, so the benchmark numbers can only come from semantically correct
// compiles — including the run-time check paths.

// RefConvolution mirrors ConvolutionSrc.
func RefConvolution(src []byte, width, height int) []byte {
	dst := make([]byte, width*height)
	at := func(r, c int) int64 { return int64(src[r*width+c]) }
	for r := 1; r < height-1; r++ {
		for c := 1; c < width-1; c++ {
			var sum int64
			sum += at(r-1, c-1)
			sum += at(r-1, c) * 2
			sum += at(r-1, c+1)
			sum -= at(r+1, c-1)
			sum -= at(r+1, c) * 2
			sum -= at(r+1, c+1)
			sum += at(r, c-1) * 3
			sum -= at(r, c+1) * 3
			dst[r*width+c-1] = byte((sum >> 3) & 255)
		}
	}
	return dst
}

// RefImageAdd mirrors ImageAddSrc.
func RefImageAdd(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// RefImageAdd16 mirrors ImageAdd16Src.
func RefImageAdd16(a, b []uint16) []uint16 {
	out := make([]uint16, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// RefImageXor mirrors ImageXorSrc.
func RefImageXor(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// RefTranslate mirrors TranslateSrc: dst must already hold its previous
// contents; the translated image lands at offset.
func RefTranslate(src, dst []byte, offset int) {
	for i := range src {
		dst[i+offset] = src[i]
	}
}

// RefEqntott mirrors EqntottSrc.
func RefEqntott(pts []int16, npt, nterm int) int64 {
	cmppt := func(a, b []int16) int64 {
		for i := 0; i < nterm; i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	var total int64
	for i := 0; i < npt; i++ {
		for j := 0; j < npt; j++ {
			total += cmppt(pts[i*nterm:], pts[j*nterm:])
		}
	}
	return total
}

// RefMirror mirrors MirrorSrc.
func RefMirror(src []byte) []byte {
	dst := make([]byte, len(src))
	for i := range src {
		dst[i] = src[len(src)-1-i]
	}
	return dst
}

// RefDotProduct mirrors DotProductSrc. The accumulator is kept at register
// width, matching the compiler's no-signed-overflow assumption.
func RefDotProduct(a, b []int16) int64 {
	var c int64
	for i := range a {
		c += int64(a[i]) * int64(b[i])
	}
	return c
}
