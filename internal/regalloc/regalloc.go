// Package regalloc implements a Poletto–Sarkar linear-scan register
// allocator with spilling. The paper's machines have 32 general registers,
// and the unrolling that feeds coalescing multiplies live ranges, so
// register pressure is the practical ceiling on the unroll factor; this
// allocator makes that pressure measurable (the ablation benchmarks sweep
// the register file size and watch spill traffic erase the coalescing win).
//
// Conventions after Run(f, k):
//
//   - the function uses physical registers 0..k-1 only;
//   - parameters arrive in physical registers 0..len(params)-1, matching
//     the simulator's calling convention;
//   - register k-1 is the frame pointer when spills exist (Fn.FrameReg);
//     spill slots live at [FP+0, FP+8, ...] and Fn.FrameBytes reports the
//     frame size the simulator must reserve;
//   - registers k-2 and k-3 are scratch for spill reloads.
package regalloc

import (
	"fmt"
	"sort"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
)

// MinRegs is the smallest register file Run accepts: two scratch registers,
// a frame pointer, and at least four allocatable registers.
const MinRegs = 7

// Stats reports what the allocation did.
type Stats struct {
	Physical  int // register file size
	Spilled   int // virtual registers assigned to stack slots
	FrameSize int // bytes of spill frame
	Intervals int // live intervals processed
}

type interval struct {
	vreg       rtl.Reg
	start, end int
	pinned     rtl.Reg // pre-colored physical register (params), or NoReg
	phys       rtl.Reg // assigned physical register, or NoReg when spilled
	slot       int     // spill slot index when phys == NoReg
}

// Run rewrites f to use at most k physical registers, inserting spill code
// as needed. Parameters must number at most k-4.
func Run(f *rtl.Fn, k int) (Stats, error) {
	if k < MinRegs {
		return Stats{}, fmt.Errorf("regalloc: need at least %d registers, have %d", MinRegs, k)
	}
	if len(f.Params) > k-4 {
		return Stats{}, fmt.Errorf("regalloc: %d parameters exceed %d-register convention", len(f.Params), k)
	}
	fp := rtl.Reg(k - 1)
	scratch := [2]rtl.Reg{rtl.Reg(k - 2), rtl.Reg(k - 3)}
	allocatable := k - 3

	ivs := buildIntervals(f)
	assignLocations(ivs, allocatable, f)

	loc := make(map[rtl.Reg]*interval, len(ivs))
	spilled := 0
	maxSlot := -1
	for _, iv := range ivs {
		loc[iv.vreg] = iv
		if iv.phys == rtl.NoReg {
			spilled++
			if iv.slot > maxSlot {
				maxSlot = iv.slot
			}
		}
	}
	rewrite(f, loc, fp, scratch)
	frame := 0
	if spilled > 0 {
		frame = (maxSlot + 1) * 8
		f.FrameReg = fp
		f.FrameBytes = frame
	}
	f.EnsureRegs(k)
	return Stats{Physical: k, Spilled: spilled, FrameSize: frame, Intervals: len(ivs)}, nil
}

// buildIntervals computes one conservative live interval per virtual
// register over the block layout order, extending intervals across whole
// blocks where liveness says the value crosses them (the standard
// adaptation that keeps linear scan sound on loops).
func buildIntervals(f *rtl.Fn) []*interval {
	g := cfg.New(f)
	lv := dataflow.ComputeLiveness(g)

	pos := 0
	blockRange := make(map[*rtl.Block][2]int, len(f.Blocks))
	instrPos := make(map[*rtl.Instr]int)
	for _, b := range f.Blocks {
		start := pos
		for _, in := range b.Instrs {
			instrPos[in] = pos
			pos++
		}
		blockRange[b] = [2]int{start, pos - 1}
	}

	ivs := make(map[rtl.Reg]*interval)
	extend := func(r rtl.Reg, p int) {
		iv := ivs[r]
		if iv == nil {
			iv = &interval{vreg: r, start: p, end: p, pinned: rtl.NoReg, phys: rtl.NoReg}
			ivs[r] = iv
			return
		}
		if p < iv.start {
			iv.start = p
		}
		if p > iv.end {
			iv.end = p
		}
	}
	for i, p := range f.Params {
		extend(p, 0)
		ivs[p].pinned = rtl.Reg(i)
	}
	var regs []rtl.Reg
	for _, b := range f.Blocks {
		r := blockRange[b]
		lv.LiveInSet(b).ForEach(func(i int) {
			extend(rtl.Reg(i), r[0])
		})
		lv.LiveOutSet(b).ForEach(func(i int) {
			extend(rtl.Reg(i), r[1])
		})
		for _, in := range b.Instrs {
			p := instrPos[in]
			regs = in.Uses(regs[:0])
			for _, u := range regs {
				extend(u, p)
			}
			if d, ok := in.Def(); ok {
				extend(d, p)
			}
		}
	}
	out := make([]*interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, iv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].vreg < out[j].vreg
	})
	return out
}

// assignLocations runs the linear scan: pinned intervals take their
// pre-colored registers, others take free registers, and when none is free
// the interval with the furthest end is spilled.
func assignLocations(ivs []*interval, allocatable int, f *rtl.Fn) {
	free := make([]bool, allocatable)
	for i := range free {
		free[i] = true
	}
	var active []*interval
	nextSlot := 0

	expire := func(start int) {
		kept := active[:0]
		for _, a := range active {
			if a.end < start {
				if a.phys != rtl.NoReg {
					free[a.phys] = true
				}
			} else {
				kept = append(kept, a)
			}
		}
		active = kept
	}
	addActive := func(iv *interval) {
		active = append(active, iv)
		sort.Slice(active, func(i, j int) bool { return active[i].end < active[j].end })
	}

	for _, iv := range ivs {
		expire(iv.start)
		if iv.pinned != rtl.NoReg {
			// Parameters take their convention register unconditionally;
			// any active interval holding it must move to a spill slot.
			for _, a := range active {
				if a.phys == iv.pinned {
					a.phys = rtl.NoReg
					a.slot = nextSlot
					nextSlot++
				}
			}
			iv.phys = iv.pinned
			free[iv.phys] = false
			addActive(iv)
			continue
		}
		picked := rtl.NoReg
		for r := 0; r < allocatable; r++ {
			if free[r] {
				picked = rtl.Reg(r)
				break
			}
		}
		if picked != rtl.NoReg {
			iv.phys = picked
			free[picked] = false
			addActive(iv)
			continue
		}
		// Spill the active interval ending last (unless pinned), or this one.
		victim := iv
		for i := len(active) - 1; i >= 0; i-- {
			if active[i].pinned == rtl.NoReg && active[i].phys != rtl.NoReg {
				if active[i].end > iv.end {
					victim = active[i]
				}
				break
			}
		}
		if victim != iv {
			iv.phys = victim.phys
			victim.phys = rtl.NoReg
			victim.slot = nextSlot
			nextSlot++
			addActive(iv)
		} else {
			iv.phys = rtl.NoReg
			iv.slot = nextSlot
			nextSlot++
		}
	}
}

// rewrite renames every operand to its physical register, or routes it
// through a scratch register with a reload/store when spilled.
func rewrite(f *rtl.Fn, loc map[rtl.Reg]*interval, fp rtl.Reg, scratch [2]rtl.Reg) {
	for _, b := range f.Blocks {
		out := make([]*rtl.Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			nextScratch := 0
			// Reload spilled sources into scratch registers.
			seen := map[rtl.Reg]rtl.Reg{} // vreg -> scratch already holding it
			for _, o := range in.SrcOperands() {
				r, ok := o.IsReg()
				if !ok {
					continue
				}
				iv := loc[r]
				if iv == nil {
					continue // never-used register (defensive)
				}
				if iv.phys != rtl.NoReg {
					o.Reg = iv.phys
					continue
				}
				if s, dup := seen[r]; dup {
					o.Reg = s
					continue
				}
				s := scratch[nextScratch]
				nextScratch = (nextScratch + 1) % len(scratch)
				out = append(out, rtl.LoadI(s, rtl.R(fp), int64(iv.slot)*8, rtl.W8, false))
				seen[r] = s
				o.Reg = s
			}
			d, hasDef := in.Def()
			var spillStore *rtl.Instr
			if hasDef {
				iv := loc[d]
				switch {
				case iv == nil:
					// dead def; leave as is (DCE normally removed it)
				case iv.phys != rtl.NoReg:
					in.Dst = iv.phys
				default:
					s := scratch[0]
					in.Dst = s
					spillStore = rtl.StoreI(rtl.R(fp), int64(iv.slot)*8, rtl.R(s), rtl.W8)
				}
			}
			out = append(out, in)
			if spillStore != nil {
				out = append(out, spillStore)
			}
		}
		b.Instrs = out
	}
	for i := range f.Params {
		f.Params[i] = rtl.Reg(i)
	}
}
