package regalloc_test

import (
	"fmt"
	"math/rand"
	"testing"

	"macc"
	"macc/internal/machine"
	"macc/internal/regalloc"
	"macc/internal/rtl"
	"macc/internal/sim"
)

const testSrc = `
int dotproduct(short a[], short b[], int n) {
	int c, i;
	c = 0;
	for (i = 0; i < n; i++)
		c += a[i] * b[i];
	return c;
}
`

func compileUnrolled(t *testing.T) *macc.Program {
	t.Helper()
	p, err := macc.Compile(testSrc, macc.Config{
		Machine: machine.Alpha(), Optimize: true, Unroll: true, UnrollFactor: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func maxRegUsed(f *rtl.Fn) rtl.Reg {
	max := rtl.Reg(-1)
	var regs []rtl.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok && d > max {
				max = d
			}
			regs = in.Uses(regs[:0])
			for _, r := range regs {
				if r > max {
					max = r
				}
			}
		}
	}
	return max
}

func runDot(t *testing.T, p *macc.Program, n int64) int64 {
	t.Helper()
	s := sim.New(p.RTL, machine.Alpha(), 1<<16)
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i%37 - 18)
		b[i] = int64(i%31 - 15)
	}
	s.WriteInts(1024, rtl.W2, a)
	s.WriteInts(8192, rtl.W2, b)
	res, err := s.Run("dotproduct", 1024, 8192, n)
	if err != nil {
		t.Fatal(err)
	}
	return res.Ret
}

func TestAllocationBoundsRegisters(t *testing.T) {
	for _, k := range []int{8, 12, 16, 32} {
		p := compileUnrolled(t)
		f, _ := p.Fn("dotproduct")
		before := maxRegUsed(f)
		stats, err := regalloc.Run(f, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := f.Verify(); err != nil {
			t.Fatalf("k=%d: invalid after allocation: %v", k, err)
		}
		if max := maxRegUsed(f); int(max) >= k {
			t.Errorf("k=%d: register %d used (had max %d before)", k, max, before)
		}
		if k >= 32 && stats.Spilled > 0 {
			t.Errorf("k=32 should not spill this kernel, spilled %d", stats.Spilled)
		}
		if stats.Spilled > 0 && stats.FrameSize == 0 {
			t.Error("spills without a frame")
		}
	}
}

func TestAllocatedCodeComputesSameResults(t *testing.T) {
	want := runDot(t, compileUnrolled(t), 57)
	for _, k := range []int{8, 10, 16, 32} {
		p := compileUnrolled(t)
		f, _ := p.Fn("dotproduct")
		if _, err := regalloc.Run(f, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := runDot(t, p, 57); got != want {
			t.Errorf("k=%d: result %d, want %d", k, got, want)
		}
	}
}

func TestSpillsIncreaseMemoryTraffic(t *testing.T) {
	measure := func(k int) int64 {
		p := compileUnrolled(t)
		f, _ := p.Fn("dotproduct")
		if _, err := regalloc.Run(f, k); err != nil {
			t.Fatal(err)
		}
		s := sim.New(p.RTL, machine.Alpha(), 1<<16)
		vals := make([]int64, 64)
		s.WriteInts(1024, rtl.W2, vals)
		s.WriteInts(8192, rtl.W2, vals)
		res, err := s.Run("dotproduct", 1024, 8192, 64)
		if err != nil {
			t.Fatal(err)
		}
		return res.MemRefs()
	}
	tight, roomy := measure(8), measure(32)
	if tight <= roomy {
		t.Errorf("8 registers (%d refs) should spill more than 32 (%d refs)", tight, roomy)
	}
}

func TestRunRejectsTinyFiles(t *testing.T) {
	p := compileUnrolled(t)
	f, _ := p.Fn("dotproduct")
	if _, err := regalloc.Run(f, 4); err == nil {
		t.Error("4 registers must be rejected")
	}
	fMany := rtl.NewFn("many", 6)
	fMany.Entry().Instrs = []*rtl.Instr{rtl.RetI(rtl.C(0))}
	if _, err := regalloc.Run(fMany, 8); err == nil {
		t.Error("too many parameters for the register file must be rejected")
	}
}

// TestRandomProgramsSurviveAllocation compiles a family of generated
// straight-line + loop programs, allocates with small register files, and
// checks results against the unallocated compile.
func TestRandomProgramsSurviveAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Generate expression-heavy sources with many simultaneously live
	// scalars to force spills.
	for trial := 0; trial < 10; trial++ {
		nVars := 6 + rng.Intn(6)
		src := "long f(long a, long b, long n) {\n"
		for v := 0; v < nVars; v++ {
			src += fmt.Sprintf("\tlong v%d = a * %d + b;\n", v, rng.Intn(9)+1)
		}
		src += "\tlong i, s = 0;\n\tfor (i = 0; i < n; i++) {\n"
		for v := 0; v < nVars; v++ {
			src += fmt.Sprintf("\t\ts += v%d * (i + %d);\n", v, rng.Intn(5))
		}
		src += "\t}\n\treturn s"
		for v := 0; v < nVars; v++ {
			src += fmt.Sprintf(" + v%d", v)
		}
		src += ";\n}\n"

		ref, err := macc.Compile(src, macc.Config{Machine: machine.Alpha(), Optimize: true})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		alloc, err := macc.Compile(src, macc.Config{Machine: machine.Alpha(), Optimize: true})
		if err != nil {
			t.Fatal(err)
		}
		af, _ := alloc.Fn("f")
		if _, err := regalloc.Run(af, 8); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := af.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		run := func(p *macc.Program) int64 {
			s := sim.New(p.RTL, machine.Alpha(), 1<<14)
			res, err := s.Run("f", int64(rngFixed(trial)), 7, 13)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			return res.Ret
		}
		if w, g := run(ref), run(alloc); w != g {
			t.Fatalf("trial %d: allocation changed result %d -> %d\n%s", trial, w, g, src)
		}
	}
}

func rngFixed(trial int) int { return 3 + trial }
