// Package cfg provides control-flow analyses over rtl functions:
// predecessor maps, reverse postorder, dominator trees, and natural-loop
// detection with preheader insertion. The coalescing algorithm of the paper
// is driven by "for each loop in the current function" (Figure 2), and its
// run-time checks are emitted into loop preheaders, so these analyses are
// its substrate.
package cfg

import (
	"sort"

	"macc/internal/rtl"
)

// Graph caches derived control-flow structure for one function. It becomes
// stale when the function's blocks or terminators change; recompute with New.
type Graph struct {
	Fn    *rtl.Fn
	Preds map[*rtl.Block][]*rtl.Block
	// RPO is the reverse postorder over reachable blocks.
	RPO []*rtl.Block
	// rpoIndex maps a block to its position in RPO (-1 when unreachable).
	rpoIndex map[*rtl.Block]int
	// idom maps each reachable block to its immediate dominator; the entry
	// maps to itself.
	idom map[*rtl.Block]*rtl.Block
}

// New computes predecessors, reverse postorder, and dominators for f.
func New(f *rtl.Fn) *Graph {
	g := &Graph{
		Fn:       f,
		Preds:    make(map[*rtl.Block][]*rtl.Block),
		rpoIndex: make(map[*rtl.Block]int),
		idom:     make(map[*rtl.Block]*rtl.Block),
	}
	// Depth-first postorder from the entry.
	seen := make(map[*rtl.Block]bool)
	var post []*rtl.Block
	var dfs func(b *rtl.Block)
	dfs = func(b *rtl.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			g.Preds[s] = append(g.Preds[s], b)
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		g.rpoIndex[post[i]] = len(g.RPO)
		g.RPO = append(g.RPO, post[i])
	}
	g.computeDominators()
	return g
}

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b *rtl.Block) bool {
	_, ok := g.rpoIndex[b]
	return ok
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm.
func (g *Graph) computeDominators() {
	entry := g.Fn.Entry()
	g.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO[1:] {
			var newIdom *rtl.Block
			for _, p := range g.Preds[b] {
				if _, ok := g.idom[p]; !ok {
					continue // predecessor not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom != nil && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *Graph) intersect(a, b *rtl.Block) *rtl.Block {
	for a != b {
		for g.rpoIndex[a] > g.rpoIndex[b] {
			a = g.idom[a]
		}
		for g.rpoIndex[b] > g.rpoIndex[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator (the entry dominates itself).
func (g *Graph) Idom(b *rtl.Block) *rtl.Block { return g.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (g *Graph) Dominates(a, b *rtl.Block) bool {
	if !g.Reachable(a) || !g.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b]
		if next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: a back edge latch->header plus the set of blocks
// that can reach the latch without passing through the header.
type Loop struct {
	Header *rtl.Block
	Latch  *rtl.Block // source of the back edge; with multiple back edges, one representative
	Blocks []*rtl.Block
	// Preheader is the unique out-of-loop predecessor of the header, once
	// EnsurePreheader has run.
	Preheader *rtl.Block
	// Exits are the blocks outside the loop targeted from inside it.
	Exits []*rtl.Block

	inLoop map[*rtl.Block]bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *rtl.Block) bool { return l.inLoop[b] }

// FindLoops discovers all natural loops, merging loops that share a header.
// The result is sorted innermost-first (fewer blocks first) so the coalescer
// visits inner loops before enclosing ones.
func (g *Graph) FindLoops() []*Loop {
	byHeader := make(map[*rtl.Block]*Loop)
	for _, b := range g.RPO {
		for _, s := range b.Succs() {
			if g.Dominates(s, b) {
				// back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Latch: b, inLoop: map[*rtl.Block]bool{s: true}}
					byHeader[s] = l
				}
				l.collect(g, b)
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		for b := range l.inLoop {
			l.Blocks = append(l.Blocks, b)
		}
		sort.Slice(l.Blocks, func(i, j int) bool {
			return g.rpoIndex[l.Blocks[i]] < g.rpoIndex[l.Blocks[j]]
		})
		l.findExits()
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return g.rpoIndex[loops[i].Header] < g.rpoIndex[loops[j].Header]
	})
	return loops
}

func (l *Loop) collect(g *Graph, latch *rtl.Block) {
	stack := []*rtl.Block{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.inLoop[b] {
			continue
		}
		l.inLoop[b] = true
		for _, p := range g.Preds[b] {
			if !l.inLoop[p] && g.Reachable(p) {
				stack = append(stack, p)
			}
		}
	}
}

func (l *Loop) findExits() {
	seen := make(map[*rtl.Block]bool)
	l.Exits = nil
	for _, b := range l.Blocks {
		for _, s := range b.Succs() {
			if !l.inLoop[s] && !seen[s] {
				seen[s] = true
				l.Exits = append(l.Exits, s)
			}
		}
	}
}

// EnsurePreheader guarantees the loop header has exactly one predecessor
// outside the loop, inserting a fresh forwarding block when needed, and
// records it in l.Preheader. It returns the (possibly new) preheader. The
// Graph is stale afterwards if a block was inserted.
func (g *Graph) EnsurePreheader(l *Loop) *rtl.Block {
	var outside []*rtl.Block
	for _, p := range g.Preds[l.Header] {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		// A lone outside predecessor that only falls into the header can
		// serve as the preheader directly.
		p := outside[0]
		if succs := p.Succs(); len(succs) == 1 && succs[0] == l.Header {
			l.Preheader = p
			return p
		}
	}
	ph := g.Fn.NewBlock(l.Header.Name + ".preheader")
	ph.Instrs = append(ph.Instrs, rtl.JumpI(l.Header))
	for _, p := range outside {
		t := p.Term()
		if t.Target == l.Header {
			t.Target = ph
		}
		if t.Else == l.Header {
			t.Else = ph
		}
	}
	l.Preheader = ph
	return ph
}
