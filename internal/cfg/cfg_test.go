package cfg_test

import (
	"testing"

	"macc/internal/cfg"
	"macc/internal/rtl"
)

// buildLoopFn constructs the canonical counted loop:
// entry -> header -> {body -> latch -> header | exit}.
func buildLoopFn() (*rtl.Fn, map[string]*rtl.Block) {
	f := rtl.NewFn("loopy", 1)
	entry := f.Entry()
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")

	i := f.NewReg()
	cond := f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(f.Params[0])),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{rtl.JumpI(latch)}
	latch.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)),
		rtl.JumpI(header),
	}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(i))}
	return f, map[string]*rtl.Block{
		"entry": entry, "header": header, "body": body, "latch": latch, "exit": exit,
	}
}

func TestPredsAndReachability(t *testing.T) {
	f, bs := buildLoopFn()
	g := cfg.New(f)
	if len(g.Preds[bs["header"]]) != 2 {
		t.Errorf("header preds = %d, want 2", len(g.Preds[bs["header"]]))
	}
	for name, b := range bs {
		if !g.Reachable(b) {
			t.Errorf("%s should be reachable", name)
		}
	}
	dead := f.NewBlock("dead")
	dead.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(0))}
	g = cfg.New(f)
	if g.Reachable(dead) {
		t.Error("dead block reported reachable")
	}
}

func TestDominators(t *testing.T) {
	f, bs := buildLoopFn()
	g := cfg.New(f)
	entry, header, body, latch, exit :=
		bs["entry"], bs["header"], bs["body"], bs["latch"], bs["exit"]

	cases := []struct {
		a, b *rtl.Block
		want bool
	}{
		{entry, exit, true},
		{header, body, true},
		{header, latch, true},
		{header, exit, true},
		{body, latch, true},
		{body, exit, false}, // exit reachable from header directly
		{latch, header, false},
		{body, body, true},
	}
	for _, c := range cases {
		if got := g.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if g.Idom(body) != header {
		t.Errorf("idom(body) = %v, want header", g.Idom(body))
	}
	if g.Idom(entry) != entry {
		t.Error("entry must be its own idom")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := rtl.NewFn("d", 1)
	a := f.Entry()
	b := f.NewBlock("b")
	c := f.NewBlock("c")
	d := f.NewBlock("d")
	a.Instrs = []*rtl.Instr{rtl.BranchI(rtl.R(f.Params[0]), b, c)}
	b.Instrs = []*rtl.Instr{rtl.JumpI(d)}
	c.Instrs = []*rtl.Instr{rtl.JumpI(d)}
	d.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(0))}
	g := cfg.New(f)
	if g.Idom(d) != a {
		t.Errorf("idom(join) = %v, want entry", g.Idom(d))
	}
	if g.Dominates(b, d) || g.Dominates(c, d) {
		t.Error("diamond arms must not dominate the join")
	}
}

func TestFindLoops(t *testing.T) {
	f, bs := buildLoopFn()
	g := cfg.New(f)
	loops := g.FindLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != bs["header"] || l.Latch != bs["latch"] {
		t.Errorf("wrong header/latch: %v/%v", l.Header, l.Latch)
	}
	if len(l.Blocks) != 3 {
		t.Errorf("loop has %d blocks, want 3 (header, body, latch)", len(l.Blocks))
	}
	if l.Contains(bs["exit"]) || l.Contains(bs["entry"]) {
		t.Error("loop contains out-of-loop blocks")
	}
	if len(l.Exits) != 1 || l.Exits[0] != bs["exit"] {
		t.Errorf("exits = %v", l.Exits)
	}
}

func TestNestedLoopsInnermostFirst(t *testing.T) {
	// entry -> oh -> ih -> ib -> ih (inner back) ; ih -> ol -> oh (outer back); oh -> exit
	f := rtl.NewFn("nest", 1)
	entry := f.Entry()
	oh := f.NewBlock("outerHeader")
	ih := f.NewBlock("innerHeader")
	ib := f.NewBlock("innerBody")
	ol := f.NewBlock("outerLatch")
	exit := f.NewBlock("exit")
	c1, c2, c3 := f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(c1, rtl.C(1)), rtl.MovI(c2, rtl.C(1)), rtl.MovI(c3, rtl.C(1)), rtl.JumpI(oh)}
	oh.Instrs = []*rtl.Instr{rtl.BranchI(rtl.R(c1), ih, exit)}
	ih.Instrs = []*rtl.Instr{rtl.BranchI(rtl.R(c2), ib, ol)}
	ib.Instrs = []*rtl.Instr{rtl.JumpI(ih)}
	ol.Instrs = []*rtl.Instr{rtl.JumpI(oh)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.C(0))}

	g := cfg.New(f)
	loops := g.FindLoops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	if loops[0].Header != ih {
		t.Error("innermost loop must come first")
	}
	if loops[1].Header != oh {
		t.Error("outer loop second")
	}
	if !loops[1].Contains(ih) || !loops[1].Contains(ib) {
		t.Error("outer loop must contain the inner loop's blocks")
	}
}

func TestEnsurePreheaderReusesLonePred(t *testing.T) {
	f, bs := buildLoopFn()
	g := cfg.New(f)
	l := g.FindLoops()[0]
	ph := g.EnsurePreheader(l)
	if ph != bs["entry"] {
		t.Errorf("expected the entry block to serve as preheader, got %v", ph)
	}
	if l.Preheader != ph {
		t.Error("preheader not recorded")
	}
}

func TestEnsurePreheaderInsertsBlock(t *testing.T) {
	// Give the header two outside predecessors so a forwarding block is
	// required.
	f, bs := buildLoopFn()
	extra := f.NewBlock("extra")
	extra.Instrs = []*rtl.Instr{rtl.JumpI(bs["header"])}
	bs["entry"].Term().Target = extra
	// entry -> extra -> header is still one pred; add a branch in entry.
	cond := f.NewReg()
	bs["entry"].Instrs = []*rtl.Instr{
		rtl.MovI(bs["entry"].Instrs[0].Dst, rtl.C(0)),
		rtl.MovI(cond, rtl.C(1)),
		rtl.BranchI(rtl.R(cond), extra, bs["header"]),
	}
	g := cfg.New(f)
	var l *cfg.Loop
	for _, cand := range g.FindLoops() {
		if cand.Header == bs["header"] {
			l = cand
		}
	}
	if l == nil {
		t.Fatal("loop not found")
	}
	before := len(f.Blocks)
	ph := g.EnsurePreheader(l)
	if len(f.Blocks) != before+1 {
		t.Fatal("no forwarding block inserted")
	}
	if ph.Term().Op != rtl.Jump || ph.Term().Target != bs["header"] {
		t.Error("preheader must jump to the header")
	}
	// Both outside edges now route through the preheader.
	if bs["entry"].Term().Else != ph || extra.Term().Target != ph {
		t.Error("outside edges not rerouted through preheader")
	}
	// The back edge must NOT be rerouted.
	if bs["latch"].Term().Target != bs["header"] {
		t.Error("back edge must still target the header")
	}
	if err := f.Verify(); err != nil {
		t.Errorf("function invalid after preheader insertion: %v", err)
	}
}
