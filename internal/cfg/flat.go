package cfg

import (
	"sort"

	"macc/internal/rtl"
)

// FlatGraph is the index-based twin of Graph: the same DFS, reverse
// postorder, CHK dominators, and natural-loop discovery, computed over a
// FlatFn's dense arrays with block indices standing in for block pointers.
// Successors are read straight from the terminators' Target/Else fields, so
// the graph never depends on the (possibly stale) Succs/Preds edge tables.
// The traversal orders mirror Graph.New exactly — the flat coalescer relies
// on discovering loops, predecessors, and preheaders in the same order as
// the pointer path so both emit byte-identical programs.
type FlatGraph struct {
	P  *rtl.FlatProgram
	F  *rtl.FlatFn
	Fi int
	// Preds lists each block's predecessors in DFS discovery order,
	// matching Graph.Preds.
	Preds [][]int32
	// RPO is the reverse postorder over reachable blocks.
	RPO []int32
	// rpoIndex maps a block index to its position in RPO (-1 unreachable).
	rpoIndex []int32
	// idom maps each reachable block to its immediate dominator (-1 when
	// not computed; the entry maps to itself).
	idom []int32
}

// FlatSuccs appends block bi's successor indices to buf, in terminator
// order (Jump: Target; Branch: Target then Else) — the order Block.Succs
// reports on the graph side.
func FlatSuccs(f *rtl.FlatFn, bi int32, buf []int32) []int32 {
	ti, op, ok := f.TermIdx(bi)
	if !ok {
		return buf
	}
	switch op {
	case rtl.Jump:
		buf = append(buf, f.Target[ti])
	case rtl.Branch:
		buf = append(buf, f.Target[ti], f.Else[ti])
	}
	return buf
}

// NewFlat computes predecessors, reverse postorder, and dominators for
// function fi of fp.
func NewFlat(fp *rtl.FlatProgram, fi int) *FlatGraph {
	f := &fp.Fns[fi]
	nb := len(f.Blocks)
	g := &FlatGraph{
		P: fp, F: f, Fi: fi,
		Preds:    make([][]int32, nb),
		rpoIndex: make([]int32, nb),
		idom:     make([]int32, nb),
	}
	for i := range g.rpoIndex {
		g.rpoIndex[i] = -1
		g.idom[i] = -1
	}
	seen := make([]bool, nb)
	post := make([]int32, 0, nb)
	var dfs func(b int32)
	dfs = func(b int32) {
		seen[b] = true
		// Per-frame successor buffer: the recursion below would clobber a
		// shared one before the second successor is visited.
		var sbuf [2]int32
		for _, s := range FlatSuccs(f, b, sbuf[:0]) {
			g.Preds[s] = append(g.Preds[s], b)
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if nb > 0 {
		dfs(0)
	}
	g.RPO = make([]int32, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.rpoIndex[post[i]] = int32(len(g.RPO))
		g.RPO = append(g.RPO, post[i])
	}
	g.computeDominators()
	return g
}

// Reachable reports whether block bi is reachable from the entry.
func (g *FlatGraph) Reachable(bi int32) bool { return g.rpoIndex[bi] >= 0 }

func (g *FlatGraph) computeDominators() {
	if len(g.RPO) == 0 {
		return
	}
	entry := g.RPO[0]
	g.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range g.RPO[1:] {
			newIdom := int32(-1)
			for _, p := range g.Preds[b] {
				if g.idom[p] < 0 {
					continue // predecessor not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = g.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (g *FlatGraph) intersect(a, b int32) int32 {
	for a != b {
		for g.rpoIndex[a] > g.rpoIndex[b] {
			a = g.idom[a]
		}
		for g.rpoIndex[b] > g.rpoIndex[a] {
			b = g.idom[b]
		}
	}
	return a
}

// Dominates reports whether block a dominates block b (reflexively).
func (g *FlatGraph) Dominates(a, b int32) bool {
	if !g.Reachable(a) || !g.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := g.idom[b]
		if next == b {
			return false
		}
		b = next
	}
}

// FlatLoop is Loop over block indices.
type FlatLoop struct {
	Header int32
	Latch  int32
	Blocks []int32
	// Preheader is the unique out-of-loop predecessor of the header once
	// EnsurePreheader has run; -1 before that.
	Preheader int32
	Exits     []int32

	inLoop []bool
}

// Contains reports whether block bi belongs to the loop.
func (l *FlatLoop) Contains(bi int32) bool { return int(bi) < len(l.inLoop) && l.inLoop[bi] }

// FindLoops mirrors Graph.FindLoops: natural loops merged by header, sorted
// innermost-first (fewer blocks, then header RPO position).
func (g *FlatGraph) FindLoops() []*FlatLoop {
	byHeader := make(map[int32]*FlatLoop)
	var sbuf [2]int32
	for _, b := range g.RPO {
		for _, s := range FlatSuccs(g.F, b, sbuf[:0]) {
			if g.Dominates(s, b) {
				// back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &FlatLoop{Header: s, Latch: b, Preheader: -1, inLoop: make([]bool, len(g.F.Blocks))}
					l.inLoop[s] = true
					byHeader[s] = l
				}
				l.collect(g, b)
			}
		}
	}
	var loops []*FlatLoop
	for _, l := range byHeader {
		for b := range l.inLoop {
			if l.inLoop[b] {
				l.Blocks = append(l.Blocks, int32(b))
			}
		}
		sort.Slice(l.Blocks, func(i, j int) bool {
			return g.rpoIndex[l.Blocks[i]] < g.rpoIndex[l.Blocks[j]]
		})
		l.findExits(g)
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return g.rpoIndex[loops[i].Header] < g.rpoIndex[loops[j].Header]
	})
	return loops
}

func (l *FlatLoop) collect(g *FlatGraph, latch int32) {
	stack := []int32{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l.inLoop[b] {
			continue
		}
		l.inLoop[b] = true
		for _, p := range g.Preds[b] {
			if !l.inLoop[p] && g.Reachable(p) {
				stack = append(stack, p)
			}
		}
	}
}

func (l *FlatLoop) findExits(g *FlatGraph) {
	seen := make(map[int32]bool)
	l.Exits = nil
	var sbuf [2]int32
	for _, b := range l.Blocks {
		for _, s := range FlatSuccs(g.F, b, sbuf[:0]) {
			if !l.inLoop[s] && !seen[s] {
				seen[s] = true
				l.Exits = append(l.Exits, s)
			}
		}
	}
}

// EnsurePreheader mirrors Graph.EnsurePreheader on the flat form: reuse a
// lone fall-through outside predecessor, or append a fresh forwarding block
// (same ".preheader" label the graph path would pick) and retarget the
// outside predecessors' terminators. Block indices of existing blocks are
// stable; the FlatGraph is stale afterwards if a block was inserted.
func (g *FlatGraph) EnsurePreheader(l *FlatLoop) int32 {
	var outside []int32
	for _, p := range g.Preds[l.Header] {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		var sbuf [2]int32
		if succs := FlatSuccs(g.F, p, sbuf[:0]); len(succs) == 1 && succs[0] == l.Header {
			l.Preheader = p
			return p
		}
	}
	name := g.P.Intern(g.P.Syms[g.F.Blocks[l.Header].Name] + ".preheader")
	ph := g.F.NewBlock(name)
	jmp := rtl.MkInstr(rtl.Jump)
	jmp.Target = l.Header
	g.F.SpliceInstrs(ph, 0, 0, []rtl.FlatInstr{jmp})
	for _, p := range outside {
		ti, _, ok := g.F.TermIdx(p)
		if !ok {
			continue
		}
		if g.F.Target[ti] == l.Header {
			g.F.Target[ti] = ph
		}
		if g.F.Else[ti] == l.Header {
			g.F.Else[ti] = ph
		}
	}
	// The new block grew the block table; keep the membership set sized.
	l.inLoop = append(l.inLoop, false)
	l.Preheader = ph
	return ph
}
