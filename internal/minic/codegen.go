package minic

import (
	"fmt"
	"math/bits"

	"macc/internal/rtl"
)

// Lower translates a checked file to an RTL program. Registers hold values
// in a canonical form: every integer value is kept sign- or zero-extended to
// 64 bits according to its static type, so arithmetic can proceed at full
// register width (the Alpha convention the paper's code follows) while loads
// and stores carry the narrow access widths the coalescer cares about.
// GlobalBase is where file-scope data is laid out in simulated memory.
// Harness-managed buffers should be placed above the program's data segment
// (rtl.Program.Globals reports the extent).
const GlobalBase = int64(64)

func Lower(file *File) (*rtl.Program, error) {
	prog := rtl.NewProgram()
	addr := GlobalBase
	for _, gd := range file.Globals {
		addr = (addr + 7) &^ 7
		gd.Sym.Addr = addr
		prog.Globals = append(prog.Globals, &rtl.Global{
			Name: gd.Name,
			Addr: addr,
			Size: gd.Sym.Size(),
			Init: encodeInit(gd),
		})
		addr += gd.Sym.Size()
	}
	for _, fd := range file.Funcs {
		g := &gen{fd: fd}
		fn, err := g.lowerFunc()
		if err != nil {
			return nil, err
		}
		if err := fn.Verify(); err != nil {
			return nil, fmt.Errorf("codegen produced invalid RTL: %w", err)
		}
		prog.Add(fn)
	}
	return prog, nil
}

// encodeInit serializes a global's initializer little-endian at its element
// width, truncating each value as a store would.
func encodeInit(gd *GlobalDecl) []byte {
	w := gd.Elem.Size()
	out := make([]byte, int64(len(gd.Init))*w)
	for i, v := range gd.Init {
		for j := int64(0); j < w; j++ {
			out[int64(i)*w+j] = byte(uint64(v) >> (8 * uint(j)))
		}
	}
	return out
}

type loopCtx struct {
	brk  *rtl.Block // break target
	cont *rtl.Block // continue target
}

type gen struct {
	fd    *FuncDecl
	f     *rtl.Fn
	cur   *rtl.Block
	loops []loopCtx
	nloop int // loops lowered so far; numbers header names uniquely
}

// loopName numbers loop-structure blocks so every loop in a function has a
// distinct header label ("loop", "loop2", ...). Optimization remarks key on
// the header name, so colliding labels would merge unrelated loops' remarks.
func (g *gen) loopName(base string) string {
	if g.nloop <= 1 {
		return base
	}
	return fmt.Sprintf("%s%d", base, g.nloop)
}

func (g *gen) lowerFunc() (*rtl.Fn, error) {
	g.f = rtl.NewFn(g.fd.Name, len(g.fd.Params))
	g.cur = g.f.Entry()
	for i := range g.fd.Params {
		g.fd.Params[i].Sym.Reg = g.f.Params[i]
	}
	if err := g.stmt(g.fd.Body); err != nil {
		return nil, err
	}
	// Seal every unterminated block with a return (the fall-off-the-end
	// path and unreachable continuations created after returns).
	for _, b := range g.f.Blocks {
		if b.Term() == nil {
			if g.fd.Ret.Kind == KVoid {
				b.Instrs = append(b.Instrs, rtl.RetI(rtl.Operand{}))
			} else {
				b.Instrs = append(b.Instrs, rtl.RetI(rtl.C(0)))
			}
		}
	}
	return g.f, nil
}

func (g *gen) emit(in *rtl.Instr) { g.cur.Instrs = append(g.cur.Instrs, in) }

// val forces an operand into a register.
func (g *gen) val(o rtl.Operand) rtl.Reg {
	if r, ok := o.IsReg(); ok {
		return r
	}
	r := g.f.NewReg()
	g.emit(rtl.MovI(r, o))
	return r
}

// narrow renormalizes a 64-bit value to the canonical form of type t after
// an implicit conversion (assignment, return, argument passing). Unsigned
// narrow types wrap, which C defines, so they are masked. Signed int and
// long results are left alone: signed overflow is undefined behaviour, so
// the compiler may assume the value is already in range — eliding the
// sign-truncation dance is what keeps "i = i + 1" recognizable as an
// induction step, just as vpo's code in the paper's Figure 1b increments
// the counter directly. Signed char and short still truncate (cheap, and
// kernels storing into narrower locals expect it).
func (g *gen) narrow(o rtl.Operand, t *Type) rtl.Operand {
	if !t.IsInt() || t.Width == rtl.W8 {
		return o
	}
	if !t.Unsigned && t.Width >= rtl.W4 {
		return o
	}
	return g.truncate(o, t)
}

// truncate forces the exact canonical form of type t (used by explicit
// casts, where C requires the conversion).
func (g *gen) truncate(o rtl.Operand, t *Type) rtl.Operand {
	if !t.IsInt() || t.Width == rtl.W8 {
		return o
	}
	if c, ok := o.IsConst(); ok {
		return rtl.C(foldNarrow(c, t))
	}
	if t.Unsigned {
		r := g.f.NewReg()
		g.emit(rtl.BinI(rtl.And, r, o, rtl.C(int64(t.Width.Mask()))))
		return rtl.R(r)
	}
	sh := int64(64 - t.Width.Bits())
	r1 := g.f.NewReg()
	g.emit(rtl.BinI(rtl.Shl, r1, o, rtl.C(sh)))
	r2 := g.f.NewReg()
	g.emit(rtl.SBinI(rtl.Shr, r2, rtl.R(r1), rtl.C(sh)))
	return rtl.R(r2)
}

func foldNarrow(v int64, t *Type) int64 {
	if !t.IsInt() || t.Width == rtl.W8 {
		return v
	}
	u := uint64(v) & t.Width.Mask()
	if !t.Unsigned {
		shift := 64 - uint(t.Width.Bits())
		return int64(u<<shift) >> shift
	}
	return int64(u)
}

func (g *gen) stmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		for _, inner := range st.Stmts {
			if err := g.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		st.Sym.Reg = g.f.NewReg()
		if st.Init != nil {
			v, err := g.expr(st.Init)
			if err != nil {
				return err
			}
			g.emit(rtl.MovI(st.Sym.Reg, g.narrow(v, st.Type)))
		} else {
			g.emit(rtl.MovI(st.Sym.Reg, rtl.C(0)))
		}
		return nil
	case *ExprStmt:
		_, err := g.expr(st.X)
		return err
	case *IfStmt:
		cond, err := g.expr(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.f.NewBlock("")
		joinB := g.f.NewBlock("")
		elseB := joinB
		if st.Else != nil {
			elseB = g.f.NewBlock("")
		}
		g.emit(rtl.BranchI(cond, thenB, elseB))
		g.cur = thenB
		if err := g.stmt(st.Then); err != nil {
			return err
		}
		if g.cur.Term() == nil {
			g.emit(rtl.JumpI(joinB))
		}
		if st.Else != nil {
			g.cur = elseB
			if err := g.stmt(st.Else); err != nil {
				return err
			}
			if g.cur.Term() == nil {
				g.emit(rtl.JumpI(joinB))
			}
		}
		g.cur = joinB
		return nil
	case *ForStmt:
		if st.Init != nil {
			if err := g.stmt(st.Init); err != nil {
				return err
			}
		}
		return g.loop(st.Cond, st.Post, st.Body)
	case *WhileStmt:
		return g.loop(st.Cond, nil, st.Body)
	case *DoWhileStmt:
		return g.doWhile(st)
	case *ReturnStmt:
		if st.X != nil {
			v, err := g.expr(st.X)
			if err != nil {
				return err
			}
			g.emit(rtl.RetI(g.narrow(v, g.fd.Ret)))
		} else {
			g.emit(rtl.RetI(rtl.Operand{}))
		}
		g.cur = g.f.NewBlock("") // unreachable continuation
		return nil
	case *BreakStmt:
		g.emit(rtl.JumpI(g.loops[len(g.loops)-1].brk))
		g.cur = g.f.NewBlock("")
		return nil
	case *ContinueStmt:
		g.emit(rtl.JumpI(g.loops[len(g.loops)-1].cont))
		g.cur = g.f.NewBlock("")
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

// loop lowers for/while into the canonical header/body/latch/exit diamond
// the loop optimizer expects: the termination test lives in the header and
// induction updates live in the latch.
func (g *gen) loop(cond Expr, post Stmt, body Stmt) error {
	g.nloop++
	header := g.f.NewBlock(g.loopName("loop"))
	bodyB := g.f.NewBlock(g.loopName("body"))
	latch := g.f.NewBlock(g.loopName("latch"))
	exit := g.f.NewBlock(g.loopName("exit"))
	g.emit(rtl.JumpI(header))

	g.cur = header
	if cond != nil {
		v, err := g.expr(cond)
		if err != nil {
			return err
		}
		g.emit(rtl.BranchI(v, bodyB, exit))
	} else {
		g.emit(rtl.JumpI(bodyB))
	}

	g.cur = bodyB
	g.loops = append(g.loops, loopCtx{brk: exit, cont: latch})
	err := g.stmt(body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	if g.cur.Term() == nil {
		g.emit(rtl.JumpI(latch))
	}

	g.cur = latch
	if post != nil {
		if err := g.stmt(post); err != nil {
			return err
		}
	}
	if g.cur.Term() == nil {
		g.emit(rtl.JumpI(header))
	}
	g.cur = exit
	return nil
}

// doWhile lowers do/while: the body runs before the first test, so the
// back-edge test lives in the latch.
func (g *gen) doWhile(st *DoWhileStmt) error {
	g.nloop++
	bodyB := g.f.NewBlock(g.loopName("dobody"))
	latch := g.f.NewBlock(g.loopName("dolatch"))
	exit := g.f.NewBlock(g.loopName("doexit"))
	g.emit(rtl.JumpI(bodyB))

	g.cur = bodyB
	g.loops = append(g.loops, loopCtx{brk: exit, cont: latch})
	err := g.stmt(st.Body)
	g.loops = g.loops[:len(g.loops)-1]
	if err != nil {
		return err
	}
	if g.cur.Term() == nil {
		g.emit(rtl.JumpI(latch))
	}

	g.cur = latch
	v, err := g.expr(st.Cond)
	if err != nil {
		return err
	}
	g.emit(rtl.BranchI(v, bodyB, exit))
	g.cur = exit
	return nil
}

// lvalue describes an assignable location: either a register-resident
// variable or a memory reference.
type lvalue struct {
	sym  *VarSym // register variable, or nil
	base rtl.Operand
	disp int64
	t    *Type // value type at the location
}

func (g *gen) lvalueOf(e Expr) (lvalue, error) {
	switch x := e.(type) {
	case *Ident:
		if x.GSym != nil {
			// A global scalar lives in memory at a fixed address.
			return lvalue{base: rtl.C(x.GSym.Addr), t: x.GSym.Elem}, nil
		}
		return lvalue{sym: x.Sym, t: x.Sym.Type}, nil
	case *Unary: // *p
		base, err := g.expr(x.X)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{base: base, t: x.X.Type().Elem}, nil
	case *Index:
		base, err := g.expr(x.X)
		if err != nil {
			return lvalue{}, err
		}
		idx, err := g.expr(x.Idx)
		if err != nil {
			return lvalue{}, err
		}
		elem := x.X.Type().Elem
		addr := g.scaleAdd(base, idx, elem.Size())
		return lvalue{base: addr, t: elem}, nil
	}
	return lvalue{}, fmt.Errorf("%s: not an lvalue", e.P())
}

// scaleAdd computes base + idx*size into a register operand.
func (g *gen) scaleAdd(base, idx rtl.Operand, size int64) rtl.Operand {
	if c, ok := idx.IsConst(); ok {
		if c == 0 {
			return base
		}
		r := g.f.NewReg()
		g.emit(rtl.BinI(rtl.Add, r, base, rtl.C(c*size)))
		return rtl.R(r)
	}
	scaled := idx
	if size != 1 {
		r := g.f.NewReg()
		if size&(size-1) == 0 {
			g.emit(rtl.BinI(rtl.Shl, r, idx, rtl.C(int64(bits.TrailingZeros64(uint64(size))))))
		} else {
			g.emit(rtl.BinI(rtl.Mul, r, idx, rtl.C(size)))
		}
		scaled = rtl.R(r)
	}
	r := g.f.NewReg()
	g.emit(rtl.BinI(rtl.Add, r, base, scaled))
	return rtl.R(r)
}

// loadLV reads the current value of an lvalue.
func (g *gen) loadLV(lv lvalue) rtl.Operand {
	if lv.sym != nil {
		return rtl.R(lv.sym.Reg)
	}
	r := g.f.NewReg()
	g.emit(rtl.LoadI(r, lv.base, lv.disp, rtl.Width(lv.t.Size()), !lv.t.Unsigned && lv.t.IsInt()))
	return rtl.R(r)
}

// storeLV writes a value (already canonical for lv.t where register
// resident) to an lvalue.
func (g *gen) storeLV(lv lvalue, v rtl.Operand) {
	if lv.sym != nil {
		g.emit(rtl.MovI(lv.sym.Reg, g.narrow(v, lv.t)))
		return
	}
	g.emit(rtl.StoreI(lv.base, lv.disp, v, rtl.Width(lv.t.Size())))
}

func (g *gen) expr(e Expr) (rtl.Operand, error) {
	switch x := e.(type) {
	case *IntLit:
		return rtl.C(x.Val), nil
	case *Ident:
		if x.GSym != nil {
			if x.GSym.Count > 0 {
				return rtl.C(x.GSym.Addr), nil // array decays to its address
			}
			lv := lvalue{base: rtl.C(x.GSym.Addr), t: x.GSym.Elem}
			return g.loadLV(lv), nil
		}
		return rtl.R(x.Sym.Reg), nil
	case *Cast:
		v, err := g.expr(x.X)
		if err != nil {
			return rtl.Operand{}, err
		}
		if x.To.Kind == KVoid {
			return rtl.C(0), nil
		}
		return g.truncate(v, x.To), nil
	case *Unary:
		return g.unary(x)
	case *Binary:
		return g.binary(x)
	case *Assign:
		return g.assign(x)
	case *IncDec:
		return g.incdec(x)
	case *Index:
		lv, err := g.lvalueOf(x)
		if err != nil {
			return rtl.Operand{}, err
		}
		return g.loadLV(lv), nil
	case *Call:
		var args []rtl.Operand
		for i, a := range x.Args {
			v, err := g.expr(a)
			if err != nil {
				return rtl.Operand{}, err
			}
			args = append(args, g.narrow(v, x.Decl.Params[i].Type))
		}
		dst := rtl.NoReg
		if x.Decl.Ret.Kind != KVoid {
			dst = g.f.NewReg()
		}
		g.emit(rtl.CallI(dst, x.Name, args...))
		if dst == rtl.NoReg {
			return rtl.C(0), nil
		}
		return rtl.R(dst), nil
	case *CondExpr:
		cond, err := g.expr(x.C)
		if err != nil {
			return rtl.Operand{}, err
		}
		r := g.f.NewReg()
		tB := g.f.NewBlock("")
		fB := g.f.NewBlock("")
		join := g.f.NewBlock("")
		g.emit(rtl.BranchI(cond, tB, fB))
		g.cur = tB
		tv, err := g.expr(x.T)
		if err != nil {
			return rtl.Operand{}, err
		}
		g.emit(rtl.MovI(r, tv))
		g.emit(rtl.JumpI(join))
		g.cur = fB
		fv, err := g.expr(x.F)
		if err != nil {
			return rtl.Operand{}, err
		}
		g.emit(rtl.MovI(r, fv))
		g.emit(rtl.JumpI(join))
		g.cur = join
		return rtl.R(r), nil
	}
	return rtl.Operand{}, fmt.Errorf("%s: unhandled expression %T", e.P(), e)
}

func (g *gen) unary(x *Unary) (rtl.Operand, error) {
	if x.Op == TokStar {
		lv, err := g.lvalueOf(x)
		if err != nil {
			return rtl.Operand{}, err
		}
		return g.loadLV(lv), nil
	}
	v, err := g.expr(x.X)
	if err != nil {
		return rtl.Operand{}, err
	}
	r := g.f.NewReg()
	switch x.Op {
	case TokMinus:
		g.emit(rtl.UnI(rtl.Neg, r, v))
	case TokTilde:
		g.emit(rtl.UnI(rtl.Not, r, v))
	case TokBang:
		g.emit(rtl.BinI(rtl.SetEQ, r, v, rtl.C(0)))
	default:
		return rtl.Operand{}, fmt.Errorf("%s: unhandled unary %s", x.P(), x.Op)
	}
	return rtl.R(r), nil
}

var binOps = map[TokKind]rtl.Op{
	TokPlus: rtl.Add, TokMinus: rtl.Sub, TokStar: rtl.Mul,
	TokSlash: rtl.Div, TokPercent: rtl.Rem,
	TokAmp: rtl.And, TokPipe: rtl.Or, TokCaret: rtl.Xor,
	TokShl: rtl.Shl, TokShr: rtl.Shr,
	TokEq: rtl.SetEQ, TokNe: rtl.SetNE,
	TokLt: rtl.SetLT, TokLe: rtl.SetLE, TokGt: rtl.SetGT, TokGe: rtl.SetGE,
}

func (g *gen) binary(x *Binary) (rtl.Operand, error) {
	switch x.Op {
	case TokAndAnd, TokOrOr:
		return g.shortCircuit(x)
	}
	xv, err := g.expr(x.X)
	if err != nil {
		return rtl.Operand{}, err
	}
	yv, err := g.expr(x.Y)
	if err != nil {
		return rtl.Operand{}, err
	}
	tx, ty := x.X.Type(), x.Y.Type()
	// Pointer arithmetic scales the integer side by the element size.
	if x.Op == TokPlus || x.Op == TokMinus {
		switch {
		case tx.IsPtr() && ty.IsInt():
			sz := tx.Elem.Size()
			if x.Op == TokMinus {
				scaled := g.scaleMul(yv, sz)
				r := g.f.NewReg()
				g.emit(rtl.BinI(rtl.Sub, r, xv, scaled))
				return rtl.R(r), nil
			}
			return g.scaleAdd(xv, yv, sz), nil
		case tx.IsInt() && ty.IsPtr(): // int + ptr
			return g.scaleAdd(yv, xv, ty.Elem.Size()), nil
		case tx.IsPtr() && ty.IsPtr(): // ptr - ptr
			diff := g.f.NewReg()
			g.emit(rtl.BinI(rtl.Sub, diff, xv, yv))
			sz := tx.Elem.Size()
			if sz == 1 {
				return rtl.R(diff), nil
			}
			r := g.f.NewReg()
			if sz&(sz-1) == 0 {
				g.emit(rtl.SBinI(rtl.Shr, r, rtl.R(diff), rtl.C(int64(bits.TrailingZeros64(uint64(sz))))))
			} else {
				g.emit(rtl.SBinI(rtl.Div, r, rtl.R(diff), rtl.C(sz)))
			}
			return rtl.R(r), nil
		}
	}
	op, ok := binOps[x.Op]
	if !ok {
		return rtl.Operand{}, fmt.Errorf("%s: unhandled binary %s", x.P(), x.Op)
	}
	signed := signedOp(tx, ty)
	r := g.f.NewReg()
	in := rtl.BinI(op, r, xv, yv)
	in.Signed = signed
	g.emit(in)
	return rtl.R(r), nil
}

// signedOp decides the signedness of division, shifts, and ordered
// comparisons: unsigned if either operand type is unsigned or a pointer.
func signedOp(tx, ty *Type) bool {
	if tx.IsPtr() || ty.IsPtr() {
		return false
	}
	return !(tx.Unsigned || ty.Unsigned)
}

func (g *gen) scaleMul(v rtl.Operand, size int64) rtl.Operand {
	if size == 1 {
		return v
	}
	if c, ok := v.IsConst(); ok {
		return rtl.C(c * size)
	}
	r := g.f.NewReg()
	if size&(size-1) == 0 {
		g.emit(rtl.BinI(rtl.Shl, r, v, rtl.C(int64(bits.TrailingZeros64(uint64(size))))))
	} else {
		g.emit(rtl.BinI(rtl.Mul, r, v, rtl.C(size)))
	}
	return rtl.R(r)
}

func (g *gen) shortCircuit(x *Binary) (rtl.Operand, error) {
	r := g.f.NewReg()
	xv, err := g.expr(x.X)
	if err != nil {
		return rtl.Operand{}, err
	}
	evalY := g.f.NewBlock("")
	done := g.f.NewBlock("")
	if x.Op == TokAndAnd {
		g.emit(rtl.MovI(r, rtl.C(0)))
		g.emit(rtl.BranchI(xv, evalY, done))
	} else {
		g.emit(rtl.MovI(r, rtl.C(1)))
		g.emit(rtl.BranchI(xv, done, evalY))
	}
	g.cur = evalY
	yv, err := g.expr(x.Y)
	if err != nil {
		return rtl.Operand{}, err
	}
	g.emit(rtl.BinI(rtl.SetNE, r, yv, rtl.C(0)))
	g.emit(rtl.JumpI(done))
	g.cur = done
	return rtl.R(r), nil
}

func (g *gen) assign(x *Assign) (rtl.Operand, error) {
	lv, err := g.lvalueOf(x.LHS)
	if err != nil {
		return rtl.Operand{}, err
	}
	if x.Op == TokAssign {
		v, err := g.expr(x.RHS)
		if err != nil {
			return rtl.Operand{}, err
		}
		g.storeLV(lv, v)
		return g.narrow(v, lv.t), nil
	}
	// Compound assignment: read-modify-write on the same location.
	old := g.loadLV(lv)
	rv, err := g.expr(x.RHS)
	if err != nil {
		return rtl.Operand{}, err
	}
	var result rtl.Operand
	if lv.t.IsPtr() {
		sz := lv.t.Elem.Size()
		scaled := g.scaleMul(rv, sz)
		r := g.f.NewReg()
		op := rtl.Add
		if x.Op == TokMinusAssign {
			op = rtl.Sub
		}
		g.emit(rtl.BinI(op, r, old, scaled))
		result = rtl.R(r)
	} else {
		var op rtl.Op
		switch x.Op {
		case TokPlusAssign:
			op = rtl.Add
		case TokMinusAssign:
			op = rtl.Sub
		case TokStarAssign:
			op = rtl.Mul
		case TokSlashAssign:
			op = rtl.Div
		case TokPercentAssign:
			op = rtl.Rem
		case TokAmpAssign:
			op = rtl.And
		case TokPipeAssign:
			op = rtl.Or
		case TokCaretAssign:
			op = rtl.Xor
		case TokShlAssign:
			op = rtl.Shl
		case TokShrAssign:
			op = rtl.Shr
		default:
			return rtl.Operand{}, fmt.Errorf("%s: unhandled compound assignment", x.P())
		}
		r := g.f.NewReg()
		in := rtl.BinI(op, r, old, rv)
		in.Signed = signedOp(lv.t, x.RHS.Type())
		g.emit(in)
		result = rtl.R(r)
	}
	g.storeLV(lv, result)
	return g.narrow(result, lv.t), nil
}

func (g *gen) incdec(x *IncDec) (rtl.Operand, error) {
	lv, err := g.lvalueOf(x.X)
	if err != nil {
		return rtl.Operand{}, err
	}
	old := g.loadLV(lv)
	var saved rtl.Operand
	if x.Post {
		r := g.f.NewReg()
		g.emit(rtl.MovI(r, old))
		saved = rtl.R(r)
	}
	delta := int64(1)
	if lv.t.IsPtr() {
		delta = lv.t.Elem.Size()
	}
	op := rtl.Add
	if x.Op == TokDec {
		op = rtl.Sub
	}
	r := g.f.NewReg()
	g.emit(rtl.BinI(op, r, old, rtl.C(delta)))
	g.storeLV(lv, rtl.R(r))
	if x.Post {
		return saved, nil
	}
	return g.narrow(rtl.R(r), lv.t), nil
}
