package minic

// lexer turns source text into tokens. It supports decimal, hex, and octal
// integer literals, character literals with the common escapes, and both
// comment styles.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func (lx *lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// next scans and returns the next token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isAlpha(c):
		start := lx.off
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: text}, nil
	case isDigit(c):
		return lx.lexNumber(pos)
	case c == '\'':
		return lx.lexChar(pos)
	}
	lx.advance()
	two := func(second byte, withKind, without TokKind) (Token, error) {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '?':
		return Token{Kind: TokQuestion, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: TokInc, Pos: pos}, nil
		}
		return two('=', TokPlusAssign, TokPlus)
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: TokDec, Pos: pos}, nil
		}
		return two('=', TokMinusAssign, TokMinus)
	case '*':
		return two('=', TokStarAssign, TokStar)
	case '/':
		return two('=', TokSlashAssign, TokSlash)
	case '%':
		return two('=', TokPercentAssign, TokPercent)
	case '^':
		return two('=', TokCaretAssign, TokCaret)
	case '!':
		return two('=', TokNe, TokBang)
	case '=':
		return two('=', TokEq, TokAssign)
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return two('=', TokAmpAssign, TokAmp)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: pos}, nil
		}
		return two('=', TokPipeAssign, TokPipe)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return two('=', TokShlAssign, TokShl)
		}
		return two('=', TokLe, TokLt)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return two('=', TokShrAssign, TokShr)
		}
		return two('=', TokGe, TokGt)
	}
	return Token{}, errf(pos, "unexpected character %q", string(rune(c)))
}

func (lx *lexer) lexNumber(pos Pos) (Token, error) {
	var v int64
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		n := 0
		for lx.off < len(lx.src) && isHex(lx.peek()) {
			c := lx.advance()
			var d int64
			switch {
			case isDigit(c):
				d = int64(c - '0')
			case c >= 'a':
				d = int64(c-'a') + 10
			default:
				d = int64(c-'A') + 10
			}
			v = v*16 + d
			n++
		}
		if n == 0 {
			return Token{}, errf(pos, "malformed hex literal")
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			v = v*10 + int64(lx.advance()-'0')
		}
	}
	// Ignore the L/U suffixes; all literals are 64-bit here.
	for lx.peek() == 'L' || lx.peek() == 'l' || lx.peek() == 'U' || lx.peek() == 'u' {
		lx.advance()
	}
	return Token{Kind: TokInt, Pos: pos, Val: v}, nil
}

func (lx *lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated character literal")
	}
	var v int64
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated character literal")
		}
		switch e := lx.advance(); e {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case 'r':
			v = '\r'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return Token{}, errf(pos, "unknown escape \\%c", e)
		}
	} else {
		v = int64(c)
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, errf(pos, "unterminated character literal")
	}
	return Token{Kind: TokChar, Pos: pos, Val: v}, nil
}

// Lex tokenizes src completely, mainly for tests.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
