package minic

// parser is a recursive-descent parser with precedence climbing for binary
// expressions. It produces an untyped AST; sema resolves names and types.
type parser struct {
	lx   *lexer
	tok  Token
	peek *Token
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f := &File{}
	for p.tok.Kind != TokEOF {
		if err := p.parseTop(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// parseTop parses one file-scope definition: a function or a global
// variable (scalar or array, optionally initialized).
func (p *parser) parseTop(f *File) error {
	pos := p.tok.Pos
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	if p.tok.Kind == TokLParen {
		fd, err := p.parseFuncRest(pos, ret, name.Text)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fd)
		return nil
	}
	gd, err := p.parseGlobalRest(pos, ret, name.Text)
	if err != nil {
		return err
	}
	f.Globals = append(f.Globals, gd)
	return nil
}

// parseGlobalRest parses the remainder of "type name ..." as a global:
// optional [N], optional initializer, semicolon.
func (p *parser) parseGlobalRest(pos Pos, t *Type, name string) (*GlobalDecl, error) {
	if t.Kind == KVoid {
		return nil, errf(pos, "global %s has void type", name)
	}
	gd := &GlobalDecl{Pos: pos, Name: name, Elem: t}
	if ok, err := p.accept(TokLBracket); err != nil {
		return nil, err
	} else if ok {
		if t.Kind == KPtr {
			// Arrays of pointers would need pointer initializers; keep the
			// subset to arrays of integers.
			return nil, errf(pos, "global array of pointers is not supported")
		}
		if p.tok.Kind == TokInt {
			if p.tok.Val <= 0 {
				return nil, errf(p.tok.Pos, "array size must be positive")
			}
			gd.Count = int(p.tok.Val)
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			gd.Count = -1 // size from initializer
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if ok, err := p.accept(TokAssign); err != nil {
		return nil, err
	} else if ok {
		if gd.Count != 0 {
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.tok.Kind != TokRBrace {
				v, err := p.parseConstValue()
				if err != nil {
					return nil, err
				}
				gd.Init = append(gd.Init, v)
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
		} else {
			v, err := p.parseConstValue()
			if err != nil {
				return nil, err
			}
			gd.Init = []int64{v}
		}
	}
	if gd.Count == -1 {
		if len(gd.Init) == 0 {
			return nil, errf(pos, "array %s needs a size or an initializer", name)
		}
		gd.Count = len(gd.Init)
	}
	if gd.Count > 0 && len(gd.Init) > gd.Count {
		return nil, errf(pos, "too many initializers for %s[%d]", name, gd.Count)
	}
	_, err := p.expect(TokSemi)
	return gd, err
}

// parseConstValue parses an integer or character literal with an optional
// leading minus.
func (p *parser) parseConstValue() (int64, error) {
	neg := false
	if ok, err := p.accept(TokMinus); err != nil {
		return 0, err
	} else if ok {
		neg = true
	}
	if p.tok.Kind != TokInt && p.tok.Kind != TokChar {
		return 0, errf(p.tok.Pos, "expected constant, found %s", p.tok.Kind)
	}
	v := p.tok.Val
	if neg {
		v = -v
	}
	return v, p.advance()
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (Token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return Token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok.Kind)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) accept(k TokKind) (bool, error) {
	if p.tok.Kind == k {
		return true, p.advance()
	}
	return false, nil
}

func isTypeStart(k TokKind) bool {
	switch k {
	case TokKwChar, TokKwShort, TokKwInt, TokKwLong, TokKwUnsigned, TokKwSigned, TokKwVoid:
		return true
	}
	return false
}

// parseType parses a type: [unsigned|signed] base {'*'}.
func (p *parser) parseType() (*Type, error) {
	pos := p.tok.Pos
	unsigned := false
	signedSeen := false
	switch p.tok.Kind {
	case TokKwUnsigned:
		unsigned = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	case TokKwSigned:
		signedSeen = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var base *Type
	bare := false // bare "unsigned"/"signed" with no base keyword to consume
	switch p.tok.Kind {
	case TokKwChar:
		base = TypeChar
	case TokKwShort:
		base = TypeShort
	case TokKwInt:
		base = TypeInt
	case TokKwLong:
		base = TypeLong
	case TokKwVoid:
		if unsigned || signedSeen {
			return nil, errf(pos, "void cannot be signed or unsigned")
		}
		base = TypeVoid
	default:
		if unsigned || signedSeen {
			base = TypeInt // bare "unsigned"/"signed" means int
			bare = true
		} else {
			return nil, errf(p.tok.Pos, "expected type, found %s", p.tok.Kind)
		}
	}
	if base.Kind == KInt {
		if !bare {
			if err := p.advance(); err != nil {
				return nil, err
			}
			// "long long" and "short int" style spellings
			if base == TypeLong && p.tok.Kind == TokKwLong {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if (base == TypeShort || base == TypeLong) && p.tok.Kind == TokKwInt {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if unsigned {
			switch base {
			case TypeChar:
				base = TypeUChar
			case TypeShort:
				base = TypeUShort
			case TypeInt:
				base = TypeUInt
			case TypeLong:
				base = TypeULong
			}
		}
	} else if base.Kind == KVoid {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	t := base
	for p.tok.Kind == TokStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t = PtrTo(t)
	}
	return t, nil
}

func (p *parser) parseFuncRest(pos Pos, ret *Type, name string) (*FuncDecl, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fd := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if p.tok.Kind != TokRParen {
		if p.tok.Kind == TokKwVoid {
			// f(void)
			if pk, err := p.peekTok(); err != nil {
				return nil, err
			} else if pk.Kind == TokRParen {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		for p.tok.Kind != TokRParen {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			// Array parameters decay to pointers: T a[] / T a[N].
			if p.tok.Kind == TokLBracket {
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.Kind == TokInt {
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				if _, err := p.expect(TokRBracket); err != nil {
					return nil, err
				}
				pt = PtrTo(pt)
			}
			fd.Params = append(fd.Params, Param{Name: pn.Text, Type: pt})
			if ok, err := p.accept(TokComma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok.Pos
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return nil, errf(pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance()
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.tok.Kind {
	case TokLBrace:
		return p.parseBlock()
	case TokSemi:
		pos := p.tok.Pos
		return &BlockStmt{Pos: pos}, p.advance()
	case TokKwIf:
		return p.parseIf()
	case TokKwFor:
		return p.parseFor()
	case TokKwWhile:
		return p.parseWhile()
	case TokKwDo:
		return p.parseDoWhile()
	case TokKwReturn:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rs := &ReturnStmt{Pos: pos}
		if p.tok.Kind != TokSemi {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		_, err := p.expect(TokSemi)
		return rs, err
	case TokKwBreak:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(TokSemi)
		return &BreakStmt{Pos: pos}, err
	case TokKwContinue:
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(TokSemi)
		return &ContinueStmt{Pos: pos}, err
	}
	if isTypeStart(p.tok.Kind) {
		return p.parseDecl(true)
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x}, nil
}

// parseDecl parses "type name [= init] {, name [= init]} ;". Multiple
// declarators become a BlockStmt of DeclStmts.
func (p *parser) parseDecl(wantSemi bool) (Stmt, error) {
	pos := p.tok.Pos
	base, err := p.parseType()
	if err != nil {
		return nil, err
	}
	var decls []Stmt
	for {
		t := base
		// Per-declarator pointer stars were consumed by parseType for the
		// first declarator; later declarators may add their own.
		for p.tok.Kind == TokStar {
			if err := p.advance(); err != nil {
				return nil, err
			}
			t = PtrTo(t)
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d := &DeclStmt{Pos: name.Pos, Name: name.Text, Type: t}
		if ok, err := p.accept(TokAssign); err != nil {
			return nil, err
		} else if ok {
			init, err := p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		decls = append(decls, d)
		if ok, err := p.accept(TokComma); err != nil {
			return nil, err
		} else if !ok {
			break
		}
		// For "int a, *b": reset to the base scalar type for the next
		// declarator (strip pointers added to the first declarator).
		for base.Kind == KPtr {
			base = base.Elem
		}
	}
	if wantSemi {
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	if len(decls) == 1 {
		return decls[0], nil
	}
	return &BlockStmt{Pos: pos, Stmts: decls, Flat: true}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if ok, err := p.accept(TokKwElse); err != nil {
		return nil, err
	} else if ok {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: pos}
	if p.tok.Kind != TokSemi {
		if isTypeStart(p.tok.Kind) {
			init, err := p.parseDecl(false)
			if err != nil {
				return nil, err
			}
			st.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: x}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokSemi {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = c
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokRParen {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = &ExprStmt{X: x}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseDoWhile() (Stmt, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Pos: pos, Body: body, Cond: cond}, nil
}

// Expression parsing. parseExpr handles comma-free full expressions
// (assignment level).
func (p *parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func isAssignOp(k TokKind) bool {
	return k >= TokAssign && k <= TokShrAssign
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.tok.Kind) {
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{pos: pos}, Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinExpr(0)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokQuestion {
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		f, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &CondExpr{exprBase: exprBase{pos: pos}, C: c, T: t, F: f}, nil
	}
	return c, nil
}

// binPrec gives binding strength; higher binds tighter. 0 means "not a
// binary operator".
func binPrec(k TokKind) int {
	switch k {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokPipe:
		return 3
	case TokCaret:
		return 4
	case TokAmp:
		return 5
	case TokEq, TokNe:
		return 6
	case TokLt, TokLe, TokGt, TokGe:
		return 7
	case TokShl, TokShr:
		return 8
	case TokPlus, TokMinus:
		return 9
	case TokStar, TokSlash, TokPercent:
		return 10
	}
	return 0
}

func (p *parser) parseBinExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.tok.Kind)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBinExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{pos: pos}, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokMinus, TokTilde, TokBang, TokStar:
		op := p.tok.Kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{pos: pos}, Op: op, X: x}, nil
	case TokPlus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	case TokInc, TokDec:
		op := p.tok.Kind
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDec{exprBase: exprBase{pos: pos}, Op: op, X: x}, nil
	case TokLParen:
		// Could be a cast: "(" type ")" unary.
		pk, err := p.peekTok()
		if err != nil {
			return nil, err
		}
		if isTypeStart(pk.Kind) {
			if err := p.advance(); err != nil {
				return nil, err
			}
			to, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Cast{exprBase: exprBase{pos: pos}, To: to, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.Kind {
		case TokLBracket:
			pos := p.tok.Pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{pos: pos}, X: x, Idx: idx}
		case TokInc, TokDec:
			op := p.tok.Kind
			pos := p.tok.Pos
			if err := p.advance(); err != nil {
				return nil, err
			}
			x = &IncDec{exprBase: exprBase{pos: pos}, Op: op, X: x, Post: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case TokInt, TokChar:
		v := p.tok.Val
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &IntLit{exprBase: exprBase{pos: pos}, Val: v}, nil
	case TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &Call{exprBase: exprBase{pos: pos}, Name: name}
			for p.tok.Kind != TokRParen {
				a, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if ok, err := p.accept(TokComma); err != nil {
					return nil, err
				} else if !ok {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return newIdent(pos, name), nil
	case TokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, errf(pos, "expected expression, found %s", p.tok.Kind)
}
