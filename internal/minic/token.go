// Package minic implements a from-scratch front end for the C subset the
// paper's benchmarks are written in: integer types of every width, pointers,
// functions, loops, and expressions. It stands in for the vpcc C front end
// and lowers directly to the rtl intermediate representation.
package minic

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt  // integer literal
	TokChar // character literal

	// keywords
	TokKwChar
	TokKwShort
	TokKwInt
	TokKwLong
	TokKwUnsigned
	TokKwSigned
	TokKwVoid
	TokKwIf
	TokKwElse
	TokKwFor
	TokKwWhile
	TokKwDo
	TokKwReturn
	TokKwBreak
	TokKwContinue

	// punctuation and operators
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokQuestion
	TokColon

	TokAssign     // =
	TokPlusAssign // +=
	TokMinusAssign
	TokStarAssign
	TokSlashAssign
	TokPercentAssign
	TokAmpAssign
	TokPipeAssign
	TokCaretAssign
	TokShlAssign
	TokShrAssign

	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokInc // ++
	TokDec // --

	TokEq // ==
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokChar: "char literal",
	TokKwChar: "char", TokKwShort: "short", TokKwInt: "int", TokKwLong: "long",
	TokKwUnsigned: "unsigned", TokKwSigned: "signed", TokKwVoid: "void",
	TokKwIf: "if", TokKwElse: "else", TokKwFor: "for", TokKwWhile: "while",
	TokKwDo: "do", TokKwReturn: "return", TokKwBreak: "break", TokKwContinue: "continue",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokQuestion: "?", TokColon: ":",
	TokAssign: "=", TokPlusAssign: "+=", TokMinusAssign: "-=", TokStarAssign: "*=",
	TokSlashAssign: "/=", TokPercentAssign: "%=", TokAmpAssign: "&=",
	TokPipeAssign: "|=", TokCaretAssign: "^=", TokShlAssign: "<<=", TokShrAssign: ">>=",
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/", TokPercent: "%",
	TokAmp: "&", TokPipe: "|", TokCaret: "^", TokTilde: "~", TokBang: "!",
	TokShl: "<<", TokShr: ">>", TokInc: "++", TokDec: "--",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAndAnd: "&&", TokOrOr: "||",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

var keywords = map[string]TokKind{
	"char": TokKwChar, "short": TokKwShort, "int": TokKwInt, "long": TokKwLong,
	"unsigned": TokKwUnsigned, "signed": TokKwSigned, "void": TokKwVoid,
	"if": TokKwIf, "else": TokKwElse, "for": TokKwFor, "while": TokKwWhile,
	"do": TokKwDo, "return": TokKwReturn, "break": TokKwBreak, "continue": TokKwContinue,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier spelling
	Val  int64  // literal value
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
