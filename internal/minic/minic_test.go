package minic

import (
	"strings"
	"testing"

	"macc/internal/rtl"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1F + 'a' - 10; // comment
	/* block
	   comment */ x <<= 2;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{
		TokKwInt, TokIdent, TokAssign, TokInt, TokPlus, TokChar, TokMinus,
		TokInt, TokSemi, TokIdent, TokShlAssign, TokInt, TokSemi, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[3].Val != 0x1F {
		t.Errorf("hex literal = %d", toks[3].Val)
	}
	if toks[5].Val != 'a' {
		t.Errorf("char literal = %d", toks[5].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != <= >= << >> && || ++ -- += -= *= /= %= &= |= ^= <<= >>= ? :"
	want := []TokKind{
		TokEq, TokNe, TokLe, TokGe, TokShl, TokShr, TokAndAnd, TokOrOr,
		TokInc, TokDec, TokPlusAssign, TokMinusAssign, TokStarAssign,
		TokSlashAssign, TokPercentAssign, TokAmpAssign, TokPipeAssign,
		TokCaretAssign, TokShlAssign, TokShrAssign, TokQuestion, TokColon,
	}
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "'ab", `'\q'`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v, want 2:3", toks[1].Pos)
	}
}

func TestParseTypes(t *testing.T) {
	src := `
	void f(char a, unsigned char b, short c, unsigned short d,
	       int e, unsigned g, long h, unsigned long i,
	       int *p, unsigned char **q, short arr[]) {}
	`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fd := file.Funcs[0]
	want := []string{
		"char", "unsigned char", "short", "unsigned short",
		"int", "unsigned int", "long", "unsigned long",
		"int*", "unsigned char**", "short*",
	}
	if len(fd.Params) != len(want) {
		t.Fatalf("got %d params", len(fd.Params))
	}
	for i, w := range want {
		if got := fd.Params[i].Type.String(); got != w {
			t.Errorf("param %d: got %s, want %s", i, got, w)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// 1 + 2 * 3 must parse as 1 + (2*3); folding happens later, so check
	// the tree.
	file, err := Parse(`int f() { return 1 + 2 * 3 == 7; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := file.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	eq, ok := ret.X.(*Binary)
	if !ok || eq.Op != TokEq {
		t.Fatalf("top is %T, want ==", ret.X)
	}
	add, ok := eq.X.(*Binary)
	if !ok || add.Op != TokPlus {
		t.Fatalf("left of == is %v, want +", eq.X)
	}
	mul, ok := add.Y.(*Binary)
	if !ok || mul.Op != TokStar {
		t.Fatalf("right of + is %v, want *", add.Y)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
	int f(int n) {
		int i, acc = 0;
		for (i = 0; i < n; i++) {
			if (i % 2 == 0) acc += i;
			else acc -= i;
			while (acc > 100) { acc /= 2; }
			if (acc < -100) break;
		}
		do_nothing: ;
		return acc > 0 ? acc : -acc;
	}
	void do_nothing() { return; }
	`
	// Labels are not supported; rewrite without it.
	src = strings.Replace(src, "do_nothing: ;", ";", 1)
	if _, err := Compile(src); err != nil {
		t.Fatalf("compile: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`int f( { }`,
		`int f() { return }`,
		`int f() { x = ; }`,
		`int f() { if x { } }`,
		`int`,
		`int f() {`,
		`unsigned void f() {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`int f() { return x; }`, "undeclared"},
		{`int f(int a, int a) {}`, "redeclared"},
		{`int f() { int x; int x; return 0; }`, "redeclared"},
		{`int f() { return f(1); }`, "expects 0 arguments"},
		{`int f() { return g(); }`, "undefined function"},
		{`int f(int x) { return *x; }`, "dereference"},
		{`int f(int x) { return x[0]; }`, "indexing"},
		{`int f(int *p) { return p * 2; }`, "operator"},
		{`void f() { return 1; }`, "void"},
		{`int f() { return; }`, "without value"},
		{`int f() { break; return 0; }`, "outside loop"},
		{`int f() { continue; return 0; }`, "outside loop"},
		{`int f() { 3 = 4; return 0; }`, "not assignable"},
		{`int f() {} int f() {}`, "redefined"},
		{`int f(void *p) { return p[0]; }`, "void"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestScopesShadowing(t *testing.T) {
	src := `
	int f(int x) {
		int y = x;
		{
			int x = 10;
			y = y + x;
		}
		return y + x;
	}
	`
	if _, err := Compile(src); err != nil {
		t.Fatalf("shadowing should be legal: %v", err)
	}
}

func TestCodegenVerifies(t *testing.T) {
	srcs := []string{
		`int f() { return 0; }`,
		`void g() {}`,
		`int h(int n) { while (1) { if (n) return n; n = n + 1; } }`,
		`int k(int n) { int i, s = 0; for (i = 0; i < n; i++) { if (i == 3) continue; s += i; } return s; }`,
		`long m(long a, long b) { return a && b || !a; }`,
		`int c(char *p, int i) { return p[i] + p[i+1]; }`,
		`long cast(long v) { return (char)v + (unsigned short)v + (int)v; }`,
	}
	for _, src := range srcs {
		prog, err := Compile(src)
		if err != nil {
			t.Errorf("Compile(%q): %v", src, err)
			continue
		}
		for _, f := range prog.Fns {
			if err := f.Verify(); err != nil {
				t.Errorf("%q: %v", src, err)
			}
		}
	}
}

func TestCodegenLoadStoreWidths(t *testing.T) {
	prog, err := Compile(`
		void f(char *a, short *b, int *c, long *d, unsigned char *e) {
			a[0] = 1; b[0] = 1; c[0] = 1; d[0] = 1;
			a[1] = e[1];
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := prog.Lookup("f")
	widths := map[rtl.Width]int{}
	signedLoads, unsignedLoads := 0, 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == rtl.Store {
				widths[in.Width]++
			}
			if in.Op == rtl.Load {
				if in.Signed {
					signedLoads++
				} else {
					unsignedLoads++
				}
			}
		}
	}
	if widths[rtl.W1] != 2 || widths[rtl.W2] != 1 || widths[rtl.W4] != 1 || widths[rtl.W8] != 1 {
		t.Errorf("store widths = %v", widths)
	}
	if unsignedLoads != 1 || signedLoads != 0 {
		t.Errorf("loads signed=%d unsigned=%d; unsigned char load must be unsigned", signedLoads, unsignedLoads)
	}
}

func TestFoldNarrow(t *testing.T) {
	if got := foldNarrow(0x1FF, TypeUChar); got != 0xFF {
		t.Errorf("uchar fold = %d", got)
	}
	if got := foldNarrow(0xFF, TypeChar); got != -1 {
		t.Errorf("char fold = %d", got)
	}
	if got := foldNarrow(0x18000, TypeShort); got != -0x8000 {
		t.Errorf("short fold = %d", got)
	}
	if got := foldNarrow(-5, TypeLong); got != -5 {
		t.Errorf("long fold = %d", got)
	}
}

func TestTypeEqualAndSize(t *testing.T) {
	if !PtrTo(TypeChar).Equal(PtrTo(TypeChar)) {
		t.Error("identical pointer types should be equal")
	}
	if PtrTo(TypeChar).Equal(PtrTo(TypeUChar)) {
		t.Error("char* != unsigned char*")
	}
	if TypeInt.Equal(TypeUInt) {
		t.Error("int != unsigned")
	}
	sizes := map[*Type]int64{
		TypeChar: 1, TypeShort: 2, TypeInt: 4, TypeLong: 8,
		PtrTo(TypeChar): 8, TypeVoid: 0,
	}
	for ty, want := range sizes {
		if got := ty.Size(); got != want {
			t.Errorf("size(%s) = %d, want %d", ty, got, want)
		}
	}
}

func TestGlobalDeclParsing(t *testing.T) {
	file, err := Parse(`
		int a;
		int b = 5;
		short c[4];
		char d[] = {1, -2, 'x'};
		unsigned char e[10] = {255};
		int f() { return a + b; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(file.Globals) != 5 || len(file.Funcs) != 1 {
		t.Fatalf("globals=%d funcs=%d", len(file.Globals), len(file.Funcs))
	}
	d := file.Globals[3]
	if d.Count != 3 || len(d.Init) != 3 || d.Init[1] != -2 || d.Init[2] != 'x' {
		t.Errorf("d parsed wrong: %+v", d)
	}
	if file.Globals[4].Count != 10 || len(file.Globals[4].Init) != 1 {
		t.Errorf("partial initializer parsed wrong: %+v", file.Globals[4])
	}
}

func TestGlobalErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{`int x; int x;`, "redefined"},
		{`int x; void x() {}`, "already a global"},
		{`int a[2] = {1, 2, 3};`, "too many initializers"},
		{`int a[];`, "needs a size"},
		{`int *p[3];`, "pointers"},
		{`void v;`, "void"},
		{`int a[0];`, "positive"},
		{`int f() { tbl = 0; return 0; } int tbl[2];`, "not assignable"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Compile(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	prog, err := Compile(`
		char a[3];
		long b;
		short c[2] = {7, 8};
		long use() { return b + a[0] + c[1]; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	for i, g := range prog.Globals {
		if g.Addr%8 != 0 {
			t.Errorf("global %d at unaligned address %d", i, g.Addr)
		}
		if i > 0 {
			prev := prog.Globals[i-1]
			if g.Addr < prev.Addr+prev.Size {
				t.Errorf("globals %d and %d overlap", i-1, i)
			}
		}
	}
	c := prog.Globals[2]
	if c.Size != 4 || len(c.Init) != 4 || c.Init[0] != 7 || c.Init[2] != 8 {
		t.Errorf("c encoding wrong: %+v", c)
	}
}
