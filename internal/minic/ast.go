package minic

import "macc/internal/rtl"

// TypeKind discriminates Type.
type TypeKind uint8

// Type kinds.
const (
	KVoid TypeKind = iota
	KInt           // integer of Type.Width bytes
	KPtr           // pointer to Type.Elem
)

// Type is a mini-C type: void, a sized integer, or a pointer.
type Type struct {
	Kind     TypeKind
	Width    rtl.Width // KInt only
	Unsigned bool      // KInt only
	Elem     *Type     // KPtr only
}

// Prebuilt types.
var (
	TypeVoid   = &Type{Kind: KVoid}
	TypeChar   = &Type{Kind: KInt, Width: rtl.W1}
	TypeUChar  = &Type{Kind: KInt, Width: rtl.W1, Unsigned: true}
	TypeShort  = &Type{Kind: KInt, Width: rtl.W2}
	TypeUShort = &Type{Kind: KInt, Width: rtl.W2, Unsigned: true}
	TypeInt    = &Type{Kind: KInt, Width: rtl.W4}
	TypeUInt   = &Type{Kind: KInt, Width: rtl.W4, Unsigned: true}
	TypeLong   = &Type{Kind: KInt, Width: rtl.W8}
	TypeULong  = &Type{Kind: KInt, Width: rtl.W8, Unsigned: true}
)

// PtrTo returns the pointer type to elem.
func PtrTo(elem *Type) *Type { return &Type{Kind: KPtr, Elem: elem} }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t != nil && t.Kind == KInt }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t != nil && t.Kind == KPtr }

// Size returns the size in bytes of a value of type t.
func (t *Type) Size() int64 {
	switch t.Kind {
	case KInt:
		return int64(t.Width)
	case KPtr:
		return 8
	}
	return 0
}

func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KPtr:
		return t.Elem.String() + "*"
	case KInt:
		base := map[rtl.Width]string{rtl.W1: "char", rtl.W2: "short", rtl.W4: "int", rtl.W8: "long"}[t.Width]
		if t.Unsigned {
			return "unsigned " + base
		}
		return base
	}
	return "?"
}

// Equal reports structural type equality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KInt:
		return t.Width == o.Width && t.Unsigned == o.Unsigned
	case KPtr:
		return t.Elem.Equal(o.Elem)
	}
	return true
}

// VarSym is a resolved variable (parameter or local).
type VarSym struct {
	Name string
	Type *Type
	// Reg is assigned during code generation.
	Reg rtl.Reg
}

// GlobalSym is a resolved global object: a scalar or an array with static
// storage. Addr is assigned during lowering.
type GlobalSym struct {
	Name  string
	Elem  *Type
	Count int // 0 for a scalar, element count for an array
	Addr  int64
}

// Size returns the object's size in bytes.
func (g *GlobalSym) Size() int64 {
	n := int64(g.Count)
	if n == 0 {
		n = 1
	}
	return n * g.Elem.Size()
}

// GlobalDecl is a file-scope variable definition.
type GlobalDecl struct {
	Pos   Pos
	Name  string
	Elem  *Type
	Count int     // 0 = scalar
	Init  []int64 // element initializers, possibly shorter than Count
	Sym   *GlobalSym
}

// File is a parsed translation unit.
type File struct {
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
	Sym  *VarSym // filled by sema
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []Param
	Body   *BlockStmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is { ... }. Flat marks synthetic groups (multi-declarator
// declarations) that must not open a new scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
	Flat  bool
}

// DeclStmt declares a local variable, optionally initialized.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // may be nil
	Sym  *VarSym
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is for(init; cond; post) body; any clause may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// WhileStmt is while(cond) body.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do body while(cond); — the body runs at least once.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/test.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is implemented by all expression nodes. Types are filled by sema.
type Expr interface {
	expr()
	P() Pos
	Type() *Type
	setType(*Type)
}

type exprBase struct {
	pos Pos
	typ *Type
}

func (e *exprBase) expr()           {}
func (e *exprBase) P() Pos          { return e.pos }
func (e *exprBase) Type() *Type     { return e.typ }
func (e *exprBase) setType(t *Type) { e.typ = t }

// Ident references a local variable, parameter, or global.
type Ident struct {
	exprBase
	Name string
	Sym  *VarSym    // locals and parameters
	GSym *GlobalSym // file-scope objects
}

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// Binary is a binary operation (arithmetic, shifts, comparisons, && and ||).
type Binary struct {
	exprBase
	Op   TokKind
	X, Y Expr
}

// Unary is -x, ~x, !x, or *x.
type Unary struct {
	exprBase
	Op TokKind
	X  Expr
}

// Assign is lhs op rhs where op is = or a compound assignment.
type Assign struct {
	exprBase
	Op  TokKind
	LHS Expr
	RHS Expr
}

// IncDec is ++x, --x, x++, or x--.
type IncDec struct {
	exprBase
	Op   TokKind // TokInc or TokDec
	X    Expr
	Post bool
}

// Index is x[i].
type Index struct {
	exprBase
	X, Idx Expr
}

// Call invokes a function by name.
type Call struct {
	exprBase
	Name string
	Args []Expr
	Decl *FuncDecl // filled by sema
}

// CondExpr is c ? t : f.
type CondExpr struct {
	exprBase
	C, T, F Expr
}

// Cast is (type)x.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

func newIdent(pos Pos, name string) *Ident {
	return &Ident{exprBase: exprBase{pos: pos}, Name: name}
}
