package minic

import "macc/internal/rtl"

// sema resolves names, checks types, and annotates the AST in place. The
// rules are the subset of C the benchmarks need: integer arithmetic is
// performed on 64-bit values (narrowing happens at stores and explicit
// casts), pointer arithmetic scales by the element size, and usual
// arithmetic signedness makes an operation unsigned when either operand is.

type scope struct {
	parent *scope
	vars   map[string]*VarSym
}

func (s *scope) lookup(name string) *VarSym {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

type checker struct {
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalSym
	cur     *FuncDecl
	scope   *scope
	loops   int
}

// Check resolves and type-checks a parsed file.
func Check(f *File) error {
	c := &checker{funcs: make(map[string]*FuncDecl), globals: make(map[string]*GlobalSym)}
	for _, gd := range f.Globals {
		if _, dup := c.globals[gd.Name]; dup {
			return errf(gd.Pos, "global %s redefined", gd.Name)
		}
		gd.Sym = &GlobalSym{Name: gd.Name, Elem: gd.Elem, Count: gd.Count}
		c.globals[gd.Name] = gd.Sym
	}
	for _, fd := range f.Funcs {
		if _, dup := c.funcs[fd.Name]; dup {
			return errf(fd.Pos, "function %s redefined", fd.Name)
		}
		if _, clash := c.globals[fd.Name]; clash {
			return errf(fd.Pos, "%s is already a global variable", fd.Name)
		}
		c.funcs[fd.Name] = fd
	}
	for _, fd := range f.Funcs {
		if err := c.checkFunc(fd); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) push() { c.scope = &scope{parent: c.scope, vars: make(map[string]*VarSym)} }
func (c *checker) pop()  { c.scope = c.scope.parent }

func (c *checker) declare(pos Pos, name string, t *Type) (*VarSym, error) {
	if _, exists := c.scope.vars[name]; exists {
		return nil, errf(pos, "%s redeclared in this scope", name)
	}
	if t.Kind == KVoid {
		return nil, errf(pos, "variable %s has void type", name)
	}
	v := &VarSym{Name: name, Type: t}
	c.scope.vars[name] = v
	return v, nil
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.cur = fd
	c.push()
	defer c.pop()
	for i := range fd.Params {
		p := &fd.Params[i]
		sym, err := c.declare(fd.Pos, p.Name, p.Type)
		if err != nil {
			return err
		}
		p.Sym = sym
	}
	return c.checkStmt(fd.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		if !st.Flat {
			c.push()
			defer c.pop()
		}
		for _, inner := range st.Stmts {
			if err := c.checkStmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if st.Init != nil {
			if err := c.checkExpr(st.Init); err != nil {
				return err
			}
			if err := assignable(st.Pos, st.Type, st.Init.Type()); err != nil {
				return err
			}
		}
		sym, err := c.declare(st.Pos, st.Name, st.Type)
		if err != nil {
			return err
		}
		st.Sym = sym
		return nil
	case *ExprStmt:
		return c.checkExpr(st.X)
	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := scalar(st.Pos, st.Cond.Type()); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond); err != nil {
				return err
			}
			if err := scalar(st.Pos, st.Cond.Type()); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := scalar(st.Pos, st.Cond.Type()); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *DoWhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if err := scalar(st.Pos, st.Cond.Type()); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.checkStmt(st.Body)
	case *ReturnStmt:
		if st.X == nil {
			if c.cur.Ret.Kind != KVoid {
				return errf(st.Pos, "%s: return without value", c.cur.Name)
			}
			return nil
		}
		if c.cur.Ret.Kind == KVoid {
			return errf(st.Pos, "%s: returning a value from a void function", c.cur.Name)
		}
		if err := c.checkExpr(st.X); err != nil {
			return err
		}
		return assignable(st.Pos, c.cur.Ret, st.X.Type())
	case *BreakStmt:
		if c.loops == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	}
	return nil
}

func scalar(pos Pos, t *Type) error {
	if t.IsInt() || t.IsPtr() {
		return nil
	}
	return errf(pos, "expected scalar value, have %s", t)
}

func assignable(pos Pos, dst, src *Type) error {
	switch {
	case dst.IsInt() && src.IsInt():
		return nil
	case dst.IsPtr() && src.IsPtr():
		// Allow any pointer-to-pointer assignment, as pre-ANSI C did; the
		// benchmark kernels cast explicitly where it matters.
		return nil
	case dst.IsPtr() && src.IsInt():
		return nil // allows p = 0
	default:
		return errf(pos, "cannot assign %s to %s", src, dst)
	}
}

// arithType computes the usual result type of an integer binary operation.
func arithType(x, y *Type) *Type {
	if x.Unsigned || y.Unsigned {
		return TypeULong
	}
	return TypeLong
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		x.setType(TypeLong)
		return nil
	case *Ident:
		if sym := c.scope.lookup(x.Name); sym != nil {
			x.Sym = sym
			x.setType(sym.Type)
			return nil
		}
		if g, ok := c.globals[x.Name]; ok {
			x.GSym = g
			if g.Count > 0 {
				x.setType(PtrTo(g.Elem)) // arrays decay to a pointer value
			} else {
				x.setType(g.Elem)
			}
			return nil
		}
		return errf(x.P(), "undeclared identifier %s", x.Name)
	case *Unary:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case TokStar:
			t := x.X.Type()
			if !t.IsPtr() {
				return errf(x.P(), "cannot dereference %s", t)
			}
			if t.Elem.Kind == KVoid {
				return errf(x.P(), "cannot dereference void*")
			}
			x.setType(t.Elem)
		case TokBang:
			if err := scalar(x.P(), x.X.Type()); err != nil {
				return err
			}
			x.setType(TypeLong)
		default: // - ~
			if !x.X.Type().IsInt() {
				return errf(x.P(), "operator %s needs an integer, have %s", x.Op, x.X.Type())
			}
			x.setType(arithType(x.X.Type(), x.X.Type()))
		}
		return nil
	case *Binary:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Y); err != nil {
			return err
		}
		tx, ty := x.X.Type(), x.Y.Type()
		switch x.Op {
		case TokAndAnd, TokOrOr:
			if err := scalar(x.P(), tx); err != nil {
				return err
			}
			if err := scalar(x.P(), ty); err != nil {
				return err
			}
			x.setType(TypeLong)
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			if tx.IsPtr() != ty.IsPtr() {
				// Allow pointer vs integer-literal-zero style comparison.
				if !(tx.IsPtr() && ty.IsInt()) && !(ty.IsPtr() && tx.IsInt()) {
					return errf(x.P(), "cannot compare %s with %s", tx, ty)
				}
			}
			x.setType(TypeLong)
		case TokPlus:
			switch {
			case tx.IsPtr() && ty.IsInt():
				x.setType(tx)
			case tx.IsInt() && ty.IsPtr():
				x.setType(ty)
			case tx.IsInt() && ty.IsInt():
				x.setType(arithType(tx, ty))
			default:
				return errf(x.P(), "invalid operands to + (%s and %s)", tx, ty)
			}
		case TokMinus:
			switch {
			case tx.IsPtr() && ty.IsInt():
				x.setType(tx)
			case tx.IsPtr() && ty.IsPtr():
				if !tx.Elem.Equal(ty.Elem) {
					return errf(x.P(), "pointer subtraction of incompatible types")
				}
				x.setType(TypeLong)
			case tx.IsInt() && ty.IsInt():
				x.setType(arithType(tx, ty))
			default:
				return errf(x.P(), "invalid operands to - (%s and %s)", tx, ty)
			}
		default:
			if !tx.IsInt() || !ty.IsInt() {
				return errf(x.P(), "operator %s needs integers (%s and %s)", x.Op, tx, ty)
			}
			x.setType(arithType(tx, ty))
		}
		return nil
	case *Assign:
		if err := c.checkExpr(x.LHS); err != nil {
			return err
		}
		if !isLValue(x.LHS) {
			return errf(x.P(), "left side of assignment is not assignable")
		}
		if err := c.checkExpr(x.RHS); err != nil {
			return err
		}
		if x.Op == TokAssign {
			if err := assignable(x.P(), x.LHS.Type(), x.RHS.Type()); err != nil {
				return err
			}
		} else {
			// Compound assignment: ptr += int is allowed, otherwise ints.
			if x.LHS.Type().IsPtr() {
				if (x.Op != TokPlusAssign && x.Op != TokMinusAssign) || !x.RHS.Type().IsInt() {
					return errf(x.P(), "invalid compound assignment to pointer")
				}
			} else if !x.LHS.Type().IsInt() || !x.RHS.Type().IsInt() {
				return errf(x.P(), "invalid compound assignment operands")
			}
		}
		x.setType(x.LHS.Type())
		return nil
	case *IncDec:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if !isLValue(x.X) {
			return errf(x.P(), "operand of %s is not assignable", x.Op)
		}
		t := x.X.Type()
		if !t.IsInt() && !t.IsPtr() {
			return errf(x.P(), "cannot %s a %s", x.Op, t)
		}
		x.setType(t)
		return nil
	case *Index:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Idx); err != nil {
			return err
		}
		if !x.X.Type().IsPtr() {
			return errf(x.P(), "indexing a non-pointer %s", x.X.Type())
		}
		if !x.Idx.Type().IsInt() {
			return errf(x.P(), "index must be an integer")
		}
		if x.X.Type().Elem.Kind == KVoid {
			return errf(x.P(), "cannot index void*")
		}
		x.setType(x.X.Type().Elem)
		return nil
	case *Call:
		fd, ok := c.funcs[x.Name]
		if !ok {
			return errf(x.P(), "call to undefined function %s", x.Name)
		}
		if len(x.Args) != len(fd.Params) {
			return errf(x.P(), "%s expects %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
		}
		for i, a := range x.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
			if err := assignable(x.P(), fd.Params[i].Type, a.Type()); err != nil {
				return err
			}
		}
		x.Decl = fd
		x.setType(fd.Ret)
		return nil
	case *CondExpr:
		if err := c.checkExpr(x.C); err != nil {
			return err
		}
		if err := scalar(x.P(), x.C.Type()); err != nil {
			return err
		}
		if err := c.checkExpr(x.T); err != nil {
			return err
		}
		if err := c.checkExpr(x.F); err != nil {
			return err
		}
		tt, tf := x.T.Type(), x.F.Type()
		switch {
		case tt.IsInt() && tf.IsInt():
			x.setType(arithType(tt, tf))
		case tt.IsPtr() && tf.IsPtr():
			x.setType(tt)
		default:
			return errf(x.P(), "mismatched ?: arms (%s and %s)", tt, tf)
		}
		return nil
	case *Cast:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if x.To.Kind == KVoid {
			x.setType(TypeVoid)
			return nil
		}
		src := x.X.Type()
		if !src.IsInt() && !src.IsPtr() {
			return errf(x.P(), "cannot cast %s", src)
		}
		x.setType(x.To)
		return nil
	}
	return errf(e.P(), "unhandled expression")
}

func isLValue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		// A global array name is a constant address, not assignable.
		return x.GSym == nil || x.GSym.Count == 0
	case *Index:
		return true
	case *Unary:
		return x.Op == TokStar
	}
	return false
}

// Compile parses, checks, and lowers a translation unit to RTL.
func Compile(src string) (*rtl.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(file); err != nil {
		return nil, err
	}
	return Lower(file)
}
