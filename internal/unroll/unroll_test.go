package unroll_test

import (
	"testing"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/opt"
	"macc/internal/rtl"
	"macc/internal/sim"
	"macc/internal/unroll"
)

// buildSumLoop: for (p = a; p < a+2n; p += 2) acc += M2[p]; return acc.
func buildSumLoop() (*rtl.Fn, rtl.Reg) {
	f := rtl.NewFn("sum", 2)
	a, n := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")
	p, end, acc, cond, v, nb := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{
		rtl.MovI(p, rtl.R(a)),
		rtl.BinI(rtl.Shl, nb, rtl.R(n), rtl.C(1)),
		rtl.BinI(rtl.Add, end, rtl.R(a), rtl.R(nb)),
		rtl.MovI(acc, rtl.C(0)),
		rtl.JumpI(header),
	}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(p), rtl.R(end)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.LoadI(v, rtl.R(p), 0, rtl.W2, true),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(v)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, p, rtl.R(p), rtl.C(2)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}
	return f, acc
}

func shape(t *testing.T, f *rtl.Fn) (*cfg.Graph, *cfg.Loop, unroll.Canonical, *iv.Info) {
	t.Helper()
	g := cfg.New(f)
	l := g.FindLoops()[0]
	g.EnsurePreheader(l)
	c, ok := unroll.Shape(l)
	if !ok {
		t.Fatal("loop not canonical")
	}
	du := dataflow.ComputeDefUse(f)
	return g, l, c, iv.Analyze(g, l, du)
}

func TestShapeRecognition(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, _ := shape(t, f)
	if c.Header.Name != "header" || c.Body.Name != "body" || c.Latch.Name != "latch" {
		t.Errorf("wrong decomposition: %s/%s/%s", c.Header, c.Body, c.Latch)
	}
	if c.Exit.Name != "exit" {
		t.Errorf("exit = %s", c.Exit)
	}
}

func TestUnrollSemantics(t *testing.T) {
	for _, factor := range []int{2, 4, 8} {
		for _, n := range []int64{0, 1, 3, 4, 7, 8, 9, 31, 32} {
			f, _ := buildSumLoop()
			_, _, c, info := shape(t, f)
			u, err := unroll.Unroll(f, c, info, factor)
			if err != nil {
				t.Fatalf("factor %d: %v", factor, err)
			}
			if u.Factor != factor {
				t.Errorf("factor = %d", u.Factor)
			}
			opt.NormalizeAddresses(f)
			opt.Clean(f)
			if err := f.Verify(); err != nil {
				t.Fatalf("factor %d: %v", factor, err)
			}
			prog := rtl.NewProgram(f)
			s := sim.New(prog, machine.Alpha(), 1<<14)
			var want int64
			for i := int64(0); i < n; i++ {
				val := i*7 - 20
				s.WriteInts(256+2*i, rtl.W2, []int64{val})
				want += rtl.Extend(val, rtl.W2, true)
			}
			res, err := s.Run("sum", 256, n)
			if err != nil {
				t.Fatalf("factor %d n %d: %v", factor, n, err)
			}
			if res.Ret != want {
				t.Errorf("factor %d n %d: got %d, want %d", factor, n, res.Ret, want)
			}
		}
	}
}

func TestUnrollProducesDisplacements(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, info := shape(t, f)
	u, err := unroll.Unroll(f, c, info, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt.NormalizeAddresses(f)
	opt.Clean(f)
	var disps []int64
	for _, in := range u.Body.Instrs {
		if in.Op == rtl.Load {
			disps = append(disps, in.Disp)
		}
	}
	want := []int64{0, 2, 4, 6}
	if len(disps) != len(want) {
		t.Fatalf("loads = %v, want %v", disps, want)
	}
	for i := range want {
		if disps[i] != want[i] {
			t.Fatalf("loads = %v, want %v", disps, want)
		}
	}
	// The pointer must advance once by 8.
	bump := 0
	for _, in := range u.Body.Instrs {
		if in.Op == rtl.Add {
			if r, ok := in.A.IsReg(); ok {
				if d, okd := in.Def(); okd && d == r {
					if cst, okc := in.B.IsConst(); okc && cst == 8 {
						bump++
					}
				}
			}
		}
	}
	if bump != 1 {
		t.Errorf("expected exactly one folded pointer bump of 8, found %d\n%s", bump, f)
	}
}

func TestUnrollRejectsNonStrictOrUncontrolled(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, info := shape(t, f)
	info.Control.Op = rtl.SetLE
	if _, err := unroll.Unroll(f, c, info, 4); err == nil {
		t.Error("non-strict test must be rejected")
	}
	f2, _ := buildSumLoop()
	_, _, c2, info2 := shape(t, f2)
	info2.Control = nil
	if _, err := unroll.Unroll(f2, c2, info2, 4); err == nil {
		t.Error("loop without control must be rejected")
	}
}

func TestChooseFactor(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, info := shape(t, f)
	if got := unroll.ChooseFactor(machine.Alpha(), c, info); got != 4 {
		t.Errorf("alpha factor for shorts = %d, want 4 (64-bit word)", got)
	}
	if got := unroll.ChooseFactor(machine.M88100(), c, info); got != 2 {
		t.Errorf("m88100 factor for shorts = %d, want 2 (32-bit word)", got)
	}
	// Without a control test unrolling is pointless.
	info.Control = nil
	if got := unroll.ChooseFactor(machine.Alpha(), c, info); got != 1 {
		t.Errorf("factor without control = %d, want 1", got)
	}
}

func TestChooseFactorICacheCap(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, info := shape(t, f)
	m := machine.Alpha()
	// Shrink the cache so factor 8 cannot fit but the rolled loop can.
	m.ICacheBytes = (len(c.Header.Instrs) + 2*(len(c.Body.Instrs)+len(c.Latch.Instrs))) * m.BytesPerInstr
	got := unroll.ChooseFactor(m, c, info)
	if got > 2 {
		t.Errorf("factor %d exceeds the instruction cache heuristic", got)
	}
}

func TestUnrollKeepsRemainderLoop(t *testing.T) {
	f, _ := buildSumLoop()
	_, _, c, info := shape(t, f)
	u, err := unroll.Unroll(f, c, info, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Guard's failure edge must lead to the original rolled header.
	if u.Header.Term().Else != c.Header && u.Header.Term().Target != c.Header {
		t.Error("guard does not fall back to the rolled loop")
	}
	// The preheader now enters the guard.
	if c.Preheader.Term().Target != u.Header {
		t.Error("preheader does not enter the unrolled guard")
	}
}
