// Package unroll implements UnRollLoopIfProfitable from Figure 2 of the
// paper: loop unrolling sized so the unrolled body exposes enough
// consecutive narrow references for coalescing while still fitting the
// instruction cache, together with a remainder loop so any trip count is
// handled. Where the paper's example bails out to the rolled loop when the
// trip count is not a multiple of the unroll factor, this implementation
// keeps the rolled loop as a post-loop remainder, which also keeps the main
// loop's first access at the (alignment-checked) partition base.
package unroll

import (
	"fmt"

	"macc/internal/cfg"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/rtl"
)

// Canonical is the rolled-loop shape the unroller accepts: a header holding
// the trip test, one straight-line body block, and a latch holding the
// induction updates.
type Canonical struct {
	Preheader *rtl.Block
	Header    *rtl.Block
	Body      *rtl.Block
	Latch     *rtl.Block
	Exit      *rtl.Block
}

// Shape checks whether l is canonical and decomposes it.
func Shape(l *cfg.Loop) (Canonical, bool) {
	if len(l.Blocks) != 3 || l.Preheader == nil {
		return Canonical{}, false
	}
	header, latch := l.Header, l.Latch
	var body *rtl.Block
	for _, b := range l.Blocks {
		if b != header && b != latch {
			body = b
		}
	}
	if body == nil || header == latch {
		return Canonical{}, false
	}
	ht := header.Term()
	if ht == nil || ht.Op != rtl.Branch {
		return Canonical{}, false
	}
	var exit *rtl.Block
	switch {
	case ht.Target == body && !l.Contains(ht.Else):
		exit = ht.Else
	case ht.Else == body && !l.Contains(ht.Target):
		exit = ht.Target
	default:
		return Canonical{}, false
	}
	if bt := body.Term(); bt == nil || bt.Op != rtl.Jump || bt.Target != latch {
		return Canonical{}, false
	}
	if lt := latch.Term(); lt == nil || lt.Op != rtl.Jump || lt.Target != header {
		return Canonical{}, false
	}
	return Canonical{
		Preheader: l.Preheader, Header: header, Body: body, Latch: latch, Exit: exit,
	}, true
}

// Unrolled describes the transformed code: a guarded main loop that runs
// factor iterations per trip, falling back into the original rolled loop
// for the remainder.
type Unrolled struct {
	Factor    int
	Preheader *rtl.Block // jumps to the guard header
	Header    *rtl.Block // guard test: room for a full group?
	Body      *rtl.Block // factor copies of body+latch work, the back edge
	Remainder *rtl.Block // the original rolled loop's header
}

// ChooseFactor picks the unroll factor for memory coalescing on machine m:
// the widest ratio word/width over the loop's narrow memory references,
// capped so the unrolled body fits the instruction cache (the paper's
// heuristic) and capped at 16 to bound register pressure. It returns 1 when
// unrolling is pointless (no narrow references or non-counted loop).
func ChooseFactor(m *machine.Machine, c Canonical, info *iv.Info) int {
	if info.Control == nil {
		return 1
	}
	factor := 1
	for _, in := range c.Body.Instrs {
		if in.IsMem() && in.Width < m.WordBytes {
			if f := m.MaxCoalesceFactor(in.Width); f > factor {
				factor = f
			}
		}
	}
	if factor == 1 {
		return 1
	}
	// Instruction-cache heuristic: if the rolled loop fits, the unrolled
	// loop must fit too.
	loopInstrs := len(c.Header.Instrs) + len(c.Body.Instrs) + len(c.Latch.Instrs)
	if loopInstrs*m.BytesPerInstr <= m.ICacheBytes {
		for factor > 1 && (len(c.Header.Instrs)+factor*(len(c.Body.Instrs)+len(c.Latch.Instrs)))*m.BytesPerInstr > m.ICacheBytes {
			factor /= 2
		}
	}
	if factor > 16 {
		factor = 16
	}
	return factor
}

// Unroll builds the guarded unrolled loop. The loop must be canonical, have
// a controlling test over a basic IV, and have all IV updates in the latch.
// The rolled loop stays in place as the remainder loop.
func Unroll(f *rtl.Fn, c Canonical, info *iv.Info, factor int) (*Unrolled, error) {
	if factor < 2 {
		return nil, fmt.Errorf("unroll factor %d", factor)
	}
	ctl := info.Control
	if ctl == nil {
		return nil, fmt.Errorf("loop has no recognized trip test")
	}
	if ctl.Op != rtl.SetLT && ctl.Op != rtl.SetGT {
		return nil, fmt.Errorf("trip test %s is not strict", ctl.Op)
	}
	civ := info.BasicIVs[ctl.IV]
	if civ == nil {
		return nil, fmt.Errorf("control register is not a basic IV")
	}
	for _, bi := range info.BasicIVs {
		for _, inc := range bi.Incs {
			if c.Latch.Index(inc) < 0 {
				return nil, fmt.Errorf("IV %s updated outside the latch", bi.Reg)
			}
		}
	}

	uheader := f.NewBlock(c.Header.Name + ".unrolled")
	ubody := f.NewBlock(c.Body.Name + ".unrolled")

	// Guard: continue into the unrolled body only if a full group of
	// `factor` iterations remains: IV + (factor-1)*step OP bound.
	last := f.NewReg()
	uheader.Instrs = append(uheader.Instrs,
		rtl.BinI(rtl.Add, last, rtl.R(ctl.IV), rtl.C(int64(factor-1)*civ.Step)))
	cond := f.NewReg()
	cmp := rtl.BinI(ctl.Op, cond, rtl.R(last), ctl.Bound)
	cmp.Signed = ctl.Signed
	uheader.Instrs = append(uheader.Instrs, cmp,
		rtl.BranchI(rtl.R(cond), ubody, c.Header))

	// Body: factor copies of (body work, latch work), with per-copy
	// renaming of defined registers so copies are independent for the
	// scheduler; loop-carried registers are restored by mov-backs that the
	// address folder and DCE later collapse.
	cur := make(map[rtl.Reg]rtl.Reg)
	mapOp := func(o *rtl.Operand) {
		if r, ok := o.IsReg(); ok {
			if nr, exists := cur[r]; exists {
				o.Reg = nr
			}
		}
	}
	var renamed []rtl.Reg // in first-rename order
	copyInstrs := func(src []*rtl.Instr) {
		for _, in := range src {
			if in.Op.IsTerminator() {
				continue
			}
			cp := in.Clone()
			for _, o := range cp.SrcOperands() {
				mapOp(o)
			}
			if d, ok := cp.Def(); ok {
				if _, seen := cur[d]; !seen {
					renamed = append(renamed, d)
				}
				nd := f.NewReg()
				cur[d] = nd
				cp.Dst = nd
			}
			ubody.Instrs = append(ubody.Instrs, cp)
		}
	}
	for i := 0; i < factor; i++ {
		copyInstrs(c.Body.Instrs)
		copyInstrs(c.Latch.Instrs)
	}
	// Restore loop-carried/live-out registers to their canonical names.
	for _, r := range renamed {
		ubody.Instrs = append(ubody.Instrs, rtl.MovI(r, rtl.R(cur[r])))
	}
	ubody.Instrs = append(ubody.Instrs, rtl.JumpI(uheader))

	// Route the preheader through the guard; the rolled loop remains as
	// the remainder, entered when fewer than `factor` iterations remain.
	pt := c.Preheader.Term()
	if pt.Target == c.Header {
		pt.Target = uheader
	}
	if pt.Else == c.Header {
		pt.Else = uheader
	}

	return &Unrolled{
		Factor:    factor,
		Preheader: c.Preheader,
		Header:    uheader,
		Body:      ubody,
		Remainder: c.Header,
	}, nil
}
