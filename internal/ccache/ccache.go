// Package ccache is a two-tier content-addressed compilation cache. The
// paper eliminates redundant memory accesses inside a loop; this package
// applies the same idea one level up and eliminates redundant compilations:
// a compile keyed by the SHA-256 of (source text, canonical configuration
// fingerprint, machine fingerprint, cache schema version) is done at most
// once, then served from memory or disk.
//
// The memory tier is an LRU over compiled *rtl.Program values with a byte
// budget (entries are costed by their printed RTL size). The optional disk
// tier serializes the optimized RTL through the existing textual printer
// and revalidates on every hit by reparsing: a truncated, corrupt, stale,
// or mismatched entry is a miss, never an error. The repo's property-tested
// printer↔parser fixpoint makes this serialization provably lossless.
//
// Concurrent identical compiles are deduplicated singleflight-style:
// GetOrCompute runs the compute function once per key, and every concurrent
// caller shares the result. Callers must treat a returned Entry as
// immutable; Entry.CloneProgram hands out a private deep copy.
package ccache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"macc/internal/core"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// SchemaVersion names the cache layout. Bumping it invalidates every
// existing entry twice over: it is hashed into the key (so new lookups miss
// old files) and checked against the disk envelope (so a file from another
// schema is rejected even on a key collision).
const SchemaVersion = "macc-ccache/v1"

// Key is the 32-byte content address of one compilation.
type Key [sha256.Size]byte

// String returns the key in hex, as used for disk file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives the content address of a compilation from the source text,
// the canonical configuration fingerprint, and the machine fingerprint.
// Fields are length-prefixed so no two distinct triples collide by
// concatenation.
func KeyOf(source, configFP, machineFP string) Key {
	h := sha256.New()
	for _, s := range []string{SchemaVersion, source, configFP, machineFP} {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached compilation: the optimized program plus the side
// records a *macc.Program carries. Entries stored in the cache are shared
// and must not be mutated; use CloneProgram / CloneReports / CloneUnrolled.
type Entry struct {
	// Program is the optimized RTL (immutable once cached).
	Program *rtl.Program
	// Text is the printed form of Program: the disk payload and the byte
	// cost accounted against the memory budget. Put fills it when empty.
	Text string
	// Machine is the target name, recorded in the disk envelope.
	Machine string
	// Reports are the coalescer's per-loop reports.
	Reports []core.LoopReport
	// Unrolled maps function names to applied unroll factors.
	Unrolled map[string]int
	// Uncacheable marks a result that must be returned to concurrent
	// callers but never stored (e.g. a compile that degraded).
	Uncacheable bool
}

// CloneProgram returns a private deep copy of the cached program.
func (e Entry) CloneProgram() *rtl.Program {
	fns := make([]*rtl.Fn, len(e.Program.Fns))
	for i, f := range e.Program.Fns {
		fns[i] = f.Clone()
	}
	np := rtl.NewProgram(fns...)
	np.Globals = append([]*rtl.Global(nil), e.Program.Globals...)
	return np
}

// CloneReports returns a private copy of the report slice.
func (e Entry) CloneReports() []core.LoopReport {
	if e.Reports == nil {
		return nil
	}
	return append([]core.LoopReport(nil), e.Reports...)
}

// CloneUnrolled returns a private copy of the unroll-factor map.
func (e Entry) CloneUnrolled() map[string]int {
	m := make(map[string]int, len(e.Unrolled))
	for k, v := range e.Unrolled {
		m[k] = v
	}
	return m
}

// size is the byte cost charged against the memory budget.
func (e Entry) size() int64 {
	return int64(len(e.Text)) + 512 // fixed overhead for structs and maps
}

// Options configures a Cache.
type Options struct {
	// MemBudget bounds the memory tier in bytes (of printed-RTL cost).
	// Zero selects DefaultMemBudget; negative disables the memory tier.
	MemBudget int64
	// Dir, when non-empty, enables the disk tier rooted there. The
	// directory is created on first write.
	Dir string
	// Metrics, when non-nil, receives the cache's counters and gauges;
	// nil gets a private registry (readable via Metrics()).
	Metrics *telemetry.Registry
}

// DefaultMemBudget is the memory tier's default byte budget.
const DefaultMemBudget = 64 << 20

// Cache is a two-tier content-addressed compile cache with singleflight
// deduplication. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	lru     *list.List // front = most recently used
	byKey   map[Key]*list.Element
	bytes   int64
	budget  int64
	dir     string
	reg     *telemetry.Registry
	flights map[Key]*flight
	fmu     sync.Mutex
	// onWait, when non-nil, is invoked whenever a caller joins an
	// existing flight (test hook for deterministic dedup assertions).
	onWait func()
}

type lruEntry struct {
	key Key
	e   Entry
}

type flight struct {
	done chan struct{}
	e    Entry
	err  error
}

// New builds a cache from opts.
func New(opts Options) *Cache {
	budget := opts.MemBudget
	if budget == 0 {
		budget = DefaultMemBudget
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Cache{
		lru:     list.New(),
		byKey:   make(map[Key]*list.Element),
		budget:  budget,
		dir:     opts.Dir,
		reg:     reg,
		flights: make(map[Key]*flight),
	}
}

// Metrics returns the registry the cache publishes into: counters
// ccache.mem_hits, ccache.disk_hits, ccache.misses, ccache.evictions,
// ccache.dedup_waiters, ccache.stores, ccache.disk_invalid,
// ccache.disk_errors, and gauges ccache.entries, ccache.bytes.
func (c *Cache) Metrics() *telemetry.Registry { return c.reg }

// Len returns the number of memory-tier entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Bytes returns the memory tier's current byte cost.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Get looks the key up in the memory tier and then the disk tier. A disk
// hit is revalidated by reparse and promoted into the memory tier. The
// second return is false on a miss (including every form of invalid disk
// entry).
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*lruEntry).e
		c.mu.Unlock()
		c.reg.Counter("ccache.mem_hits").Add(1)
		return e, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if e, ok := c.loadDisk(key); ok {
			c.reg.Counter("ccache.disk_hits").Add(1)
			c.insertMem(key, e)
			return e, true
		}
	}
	c.reg.Counter("ccache.misses").Add(1)
	return Entry{}, false
}

// Put stores the entry under key in both tiers. The entry becomes cache
// property: callers must not mutate it afterwards. Uncacheable entries are
// ignored.
func (c *Cache) Put(key Key, e Entry) {
	if e.Uncacheable || e.Program == nil {
		return
	}
	if e.Text == "" {
		e.Text = e.Program.String()
	}
	c.reg.Counter("ccache.stores").Add(1)
	c.insertMem(key, e)
	if c.dir != "" {
		if err := c.storeDisk(key, e); err != nil {
			c.reg.Counter("ccache.disk_errors").Add(1)
		}
	}
}

// GetOrCompute returns the cached entry for key, or runs compute exactly
// once — concurrently requested identical keys share the single in-flight
// computation (and each waiter counts as ccache.dedup_waiters). hit reports
// whether the result came from the cache or a shared flight rather than
// this caller's own compute. A compute error is shared with every waiter
// and nothing is stored.
func (c *Cache) GetOrCompute(key Key, compute func() (Entry, error)) (e Entry, hit bool, err error) {
	if e, ok := c.Get(key); ok {
		return e, true, nil
	}
	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		c.reg.Counter("ccache.dedup_waiters").Add(1)
		if c.onWait != nil {
			c.onWait()
		}
		<-f.done
		return f.e, f.err == nil, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()

	f.e, f.err = compute()
	if f.err == nil {
		c.Put(key, f.e)
	}
	c.fmu.Lock()
	delete(c.flights, key)
	c.fmu.Unlock()
	close(f.done)
	return f.e, false, f.err
}

// insertMem adds (or refreshes) a memory-tier entry and evicts from the LRU
// tail until the budget holds. Disk-tier files are never evicted.
func (c *Cache) insertMem(key Key, e Entry) {
	if c.budget < 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*lruEntry)
		c.bytes += e.size() - old.e.size()
		old.e = e
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&lruEntry{key: key, e: e})
		c.bytes += e.size()
	}
	var evicted int64
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		le := back.Value.(*lruEntry)
		c.lru.Remove(back)
		delete(c.byKey, le.key)
		c.bytes -= le.e.size()
		evicted++
	}
	c.reg.Gauge("ccache.entries").Set(float64(len(c.byKey)))
	c.reg.Gauge("ccache.bytes").Set(float64(c.bytes))
	c.mu.Unlock()
	if evicted > 0 {
		c.reg.Counter("ccache.evictions").Add(evicted)
	}
}

// diskEntry is the on-disk JSON envelope.
type diskEntry struct {
	Schema   string            `json:"schema"`
	Key      string            `json:"key"`
	Machine  string            `json:"machine,omitempty"`
	Unrolled map[string]int    `json:"unrolled,omitempty"`
	Reports  []core.LoopReport `json:"reports,omitempty"`
	// Sum is the SHA-256 of RTL, catching truncation that still parses.
	Sum string `json:"sum"`
	RTL string `json:"rtl"`
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key Key) string {
	hexKey := key.String()
	return filepath.Join(c.dir, hexKey[:2], hexKey+".json")
}

// storeDisk writes the entry atomically (temp file + rename), so a reader
// never observes a half-written envelope.
func (c *Cache) storeDisk(key Key, e Entry) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		return err
	}
	sum := sha256.Sum256([]byte(e.Text))
	data, err := json.Marshal(diskEntry{
		Schema:   SchemaVersion,
		Key:      key.String(),
		Machine:  e.Machine,
		Unrolled: e.Unrolled,
		Reports:  e.Reports,
		Sum:      hex.EncodeToString(sum[:]),
		RTL:      e.Text,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// loadDisk reads and revalidates one disk entry. Every failure mode —
// unreadable file, malformed JSON, schema or key or checksum mismatch, RTL
// that no longer parses or verifies — is a miss; invalid files are counted
// and removed so they are not re-tried forever.
func (c *Cache) loadDisk(key Key) (Entry, bool) {
	p := c.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return Entry{}, false
	}
	invalid := func() (Entry, bool) {
		c.reg.Counter("ccache.disk_invalid").Add(1)
		os.Remove(p)
		return Entry{}, false
	}
	var de diskEntry
	if err := json.Unmarshal(data, &de); err != nil {
		return invalid()
	}
	if de.Schema != SchemaVersion || de.Key != key.String() {
		return invalid()
	}
	sum := sha256.Sum256([]byte(de.RTL))
	if de.Sum != hex.EncodeToString(sum[:]) {
		return invalid()
	}
	prog, err := rtl.ParseProgram(de.RTL)
	if err != nil {
		return invalid()
	}
	return Entry{
		Program:  prog,
		Text:     de.RTL,
		Machine:  de.Machine,
		Unrolled: de.Unrolled,
		Reports:  de.Reports,
	}, true
}
