// Package ccache is a two-tier content-addressed compilation cache. The
// paper eliminates redundant memory accesses inside a loop; this package
// applies the same idea one level up and eliminates redundant compilations:
// a compile keyed by the SHA-256 of (source text, canonical configuration
// fingerprint, machine fingerprint, cache schema version) is done at most
// once, then served from memory or disk.
//
// The cached payload is the flat IR (rtl.FlatProgram): an immutable,
// index-based image of the optimized program. The memory tier is an LRU over
// these images with a byte budget costed by the actual encoded entry size;
// hits hand out the shared image directly (no clone-on-hit copies — callers
// materialize a private pointer graph with Entry.Materialize only when they
// need one). The optional disk tier stores the binary codec envelope
// (rtl/codec framed with a JSON metadata header and an FNV-64a trailer) and
// revalidates on every hit by checksum + structural decode — no text
// reparse. A truncated, corrupt, stale, or mismatched entry is a miss, never
// an error; entries written by an older schema are garbage-collected at
// startup (see migrate).
//
// Concurrent identical compiles are deduplicated singleflight-style:
// GetOrCompute runs the compute function once per key, and every concurrent
// caller shares the result. Callers must treat a returned Entry as
// immutable.
package ccache

import (
	"bufio"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"macc/internal/core"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
)

// SchemaVersion names the cache layout. Bumping it invalidates every
// existing entry three times over: it is hashed into the key (so new lookups
// miss old files), checked against the disk envelope (so a file from another
// schema is rejected even on a key collision), and compared with the
// directory's schema marker at startup (so stale files are GC'd rather than
// left to rot). v2 switched the disk payload from printed text to the binary
// flat-IR codec.
const SchemaVersion = "macc-ccache/v2"

// Key is the 32-byte content address of one compilation.
type Key [sha256.Size]byte

// String returns the key in hex, as used for disk file names.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the hex form produced by Key.String (as used in the peer
// protocol's URLs).
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("bad cache key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// KeyOf derives the content address of a compilation from the source text,
// the canonical configuration fingerprint, and the machine fingerprint.
// Fields are length-prefixed so no two distinct triples collide by
// concatenation.
func KeyOf(source, configFP, machineFP string) Key {
	h := sha256.New()
	for _, s := range []string{SchemaVersion, source, configFP, machineFP} {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached compilation: the optimized program in flat form plus
// the side records a *macc.Program carries. Entries stored in the cache are
// shared and must not be mutated; Materialize hands out a private pointer
// graph, CloneReports / CloneUnrolled private copies of the side records.
type Entry struct {
	// Flat is the optimized program's flat image (immutable once cached).
	Flat *rtl.FlatProgram
	// Machine is the target name, recorded in the disk envelope.
	Machine string
	// Reports are the coalescer's per-loop reports.
	Reports []core.LoopReport
	// Unrolled maps function names to applied unroll factors.
	Unrolled map[string]int
	// Uncacheable marks a result that must be returned to concurrent
	// callers but never stored (e.g. a compile that degraded).
	Uncacheable bool

	// enc caches the encoded envelope (the exact bytes on disk and on the
	// peer wire). Put and the decode paths fill it; it is the entry's true
	// byte cost against the memory budget.
	enc []byte
}

// Materialize builds a private pointer-graph program from the cached flat
// image. The result shares no mutable state with the entry, so the caller
// may optimize or mutate it freely.
func (e Entry) Materialize() (*rtl.Program, error) {
	if e.Flat == nil {
		return nil, errors.New("ccache: entry has no program")
	}
	return e.Flat.Unflatten()
}

// CloneReports returns a private copy of the report slice.
func (e Entry) CloneReports() []core.LoopReport {
	if e.Reports == nil {
		return nil
	}
	return append([]core.LoopReport(nil), e.Reports...)
}

// CloneUnrolled returns a private copy of the unroll-factor map.
func (e Entry) CloneUnrolled() map[string]int {
	m := make(map[string]int, len(e.Unrolled))
	for k, v := range e.Unrolled {
		m[k] = v
	}
	return m
}

// entryOverhead approximates the in-memory bookkeeping cost (LRU element,
// map slot, struct headers) charged on top of the encoded payload.
const entryOverhead = 256

// size is the byte cost charged against the memory budget: the actual
// encoded entry size plus fixed overhead. Entries that have not been
// encoded yet (never stored) fall back to an estimate from the flat image.
func (e Entry) size() int64 {
	if e.enc != nil {
		return int64(len(e.enc)) + entryOverhead
	}
	return e.estimateSize() + entryOverhead
}

// estimateSize approximates the encoded size of an entry that has no cached
// encoding (only reachable when Put was bypassed, e.g. in tests poking
// insertMem directly).
func (e Entry) estimateSize() int64 {
	if e.Flat == nil {
		return 0
	}
	var n int64
	for _, s := range e.Flat.Syms {
		n += int64(len(s)) + 2
	}
	for gi := range e.Flat.Globals {
		n += int64(len(e.Flat.Globals[gi].Init)) + 16
	}
	for fi := range e.Flat.Fns {
		f := &e.Flat.Fns[fi]
		n += 32 + int64(12*len(f.Blocks)+14*f.NumInstrs()+8*len(f.Args))
	}
	return n
}

// Options configures a Cache.
type Options struct {
	// MemBudget bounds the memory tier in bytes (of encoded-entry cost).
	// Zero selects DefaultMemBudget; negative disables the memory tier.
	MemBudget int64
	// Dir, when non-empty, enables the disk tier rooted there. The
	// directory is created on first write.
	Dir string
	// Metrics, when non-nil, receives the cache's counters and gauges;
	// nil gets a private registry (readable via Metrics()).
	Metrics *telemetry.Registry
	// Fallback, when non-nil, is consulted after both local tiers miss —
	// the compile farm wires a validated peer-cache lookup in here. A
	// fallback hit is promoted into both local tiers. The fallback is
	// never consulted by GetLocal, so a replica answering peer probes can
	// not recurse into its own peers. The ctx carries the requesting
	// trace's span context so the peer lookup's spans join the trace.
	Fallback func(context.Context, Key) (Entry, bool)
	// Tracer, when non-nil, records one tier-decision span per ctx-aware
	// lookup (mem hit, disk hit + decode revalidation, peer fallback,
	// miss), a wait span per singleflight waiter, and a compute span
	// around each singleflight leader's compile.
	Tracer *dtrace.Tracer
	// DiskFault, when non-nil, is invoked before each disk-tier write
	// step ("create", "write", "rename") and fails that step when it
	// returns an error. Returning ErrSimulatedCrash models a writer
	// killed mid-step: the half-written temp file is abandoned in place,
	// exactly as kill -9 would leave it, for the recovery scan to find.
	// This is a fault-injection hook (internal/faultinject); production
	// caches leave it nil.
	DiskFault func(op string) error
}

// ErrSimulatedCrash, returned by an Options.DiskFault hook, makes the disk
// tier abandon the current write as a kill -9 would: no cleanup, no rename,
// the torn temp file left for crash recovery to collect.
var ErrSimulatedCrash = errors.New("ccache: simulated crash during disk write")

// DefaultMemBudget is the memory tier's default byte budget.
const DefaultMemBudget = 64 << 20

// Cache is a two-tier content-addressed compile cache with singleflight
// deduplication. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	lru      *list.List // front = most recently used
	byKey    map[Key]*list.Element
	bytes    int64
	budget   int64
	dir      string
	reg      *telemetry.Registry
	fallback func(context.Context, Key) (Entry, bool)
	fault    func(op string) error
	tracer   *dtrace.Tracer
	flights  map[Key]*flight
	fmu      sync.Mutex
	jmu      sync.Mutex
	journal  *os.File
	// onWait, when non-nil, is invoked whenever a caller joins an
	// existing flight (test hook for deterministic dedup assertions).
	onWait func()
}

type lruEntry struct {
	key Key
	e   Entry
}

type flight struct {
	done chan struct{}
	e    Entry
	err  error
}

// New builds a cache from opts.
func New(opts Options) *Cache {
	budget := opts.MemBudget
	if budget == 0 {
		budget = DefaultMemBudget
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Cache{
		lru:      list.New(),
		byKey:    make(map[Key]*list.Element),
		budget:   budget,
		dir:      opts.Dir,
		reg:      reg,
		fallback: opts.Fallback,
		fault:    opts.DiskFault,
		tracer:   opts.Tracer,
		flights:  make(map[Key]*flight),
	}
	if c.dir != "" {
		c.migrate()
		c.recover()
	}
	return c
}

// Metrics returns the registry the cache publishes into: counters
// ccache.mem_hits, ccache.disk_hits, ccache.misses, ccache.evictions,
// ccache.dedup_waiters, ccache.stores, ccache.disk_invalid,
// ccache.disk_errors, ccache.schema_evicted, and gauges ccache.entries,
// ccache.bytes.
func (c *Cache) Metrics() *telemetry.Registry { return c.reg }

// Len returns the number of memory-tier entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Bytes returns the memory tier's current byte cost.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Get looks the key up in the memory tier, the disk tier, and finally the
// configured Fallback (the farm's peer lookup). A disk or fallback hit is
// revalidated and promoted into the faster tiers. The second return is
// false on a miss (including every form of invalid disk entry).
func (c *Cache) Get(key Key) (Entry, bool) {
	return c.GetCtx(context.Background(), key)
}

// GetCtx is Get with trace propagation: one cache span records which tier
// answered (mem, disk, peer, or miss), and the peer fallback runs under the
// span's context so its lookup attempts join the request trace.
func (c *Cache) GetCtx(ctx context.Context, key Key) (Entry, bool) {
	sp := c.tracer.StartSpan(dtrace.FromContext(ctx), "ccache.get", dtrace.KindCache)
	e, tier, ok := c.getLocal(key)
	if !ok && c.fallback != nil {
		fctx := ctx
		if sp.Context().Valid() {
			fctx = dtrace.ContextWith(ctx, sp.Context())
		}
		if fe, fok := c.fallback(fctx, key); fok && fe.Flat != nil {
			c.reg.Counter("ccache.peer_hits").Add(1)
			c.insertMem(key, fe)
			if c.dir != "" {
				if err := c.storeDisk(key, fe); err != nil {
					c.reg.Counter("ccache.disk_errors").Add(1)
				}
			}
			e, tier, ok = fe, "peer", true
		}
	}
	if !ok {
		c.reg.Counter("ccache.misses").Add(1)
		tier = "miss"
	}
	sp.SetAttr("tier", tier)
	sp.SetAttr("key", key.String()[:12])
	sp.End()
	return e, ok
}

// GetLocal looks the key up in the local tiers only (memory, then disk) —
// never the peer fallback. The farm's peer-protocol handler answers probes
// from here, so a farm of replicas can not turn one miss into a lookup
// cycle. A local miss is not counted in ccache.misses (the probing peer
// accounts for its own miss).
func (c *Cache) GetLocal(key Key) (Entry, bool) {
	e, _, ok := c.getLocal(key)
	return e, ok
}

// getLocal is GetLocal plus the answering tier's name: "mem" for a memory
// hit, "disk" for a disk hit (which implies a successful checksum +
// structural decode revalidation), "" on a miss.
func (c *Cache) getLocal(key Key) (Entry, string, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*lruEntry).e
		c.mu.Unlock()
		c.reg.Counter("ccache.mem_hits").Add(1)
		return e, "mem", true
	}
	c.mu.Unlock()

	if c.dir != "" {
		if e, ok := c.loadDisk(key); ok {
			c.reg.Counter("ccache.disk_hits").Add(1)
			c.insertMem(key, e)
			return e, "disk", true
		}
	}
	return Entry{}, "", false
}

// Put stores the entry under key in both tiers. The entry becomes cache
// property: callers must not mutate it afterwards. Uncacheable entries are
// ignored.
func (c *Cache) Put(key Key, e Entry) {
	if e.Uncacheable || e.Flat == nil {
		return
	}
	if e.enc == nil {
		data, err := EncodeEntry(key, e)
		if err != nil {
			return
		}
		e.enc = data
	}
	c.reg.Counter("ccache.stores").Add(1)
	c.insertMem(key, e)
	if c.dir != "" {
		if err := c.storeDisk(key, e); err != nil {
			c.reg.Counter("ccache.disk_errors").Add(1)
		}
	}
}

// GetOrCompute returns the cached entry for key, or runs compute exactly
// once — concurrently requested identical keys share the single in-flight
// computation (and each waiter counts as ccache.dedup_waiters). hit reports
// whether the result came from the cache or a shared flight rather than
// this caller's own compute. A compute error is shared with every waiter
// and nothing is stored.
func (c *Cache) GetOrCompute(key Key, compute func() (Entry, error)) (e Entry, hit bool, err error) {
	return c.GetOrComputeCtx(context.Background(), key, func(context.Context) (Entry, error) {
		return compute()
	})
}

// GetOrComputeCtx is GetOrCompute with trace propagation: the tier lookup
// records its cache span, a waiter joining an existing flight records a
// wait span covering the time spent parked behind the leader, and the
// leader's compute runs under a compute span whose context reaches the
// pipeline (so per-pass spans nest beneath it).
func (c *Cache) GetOrComputeCtx(ctx context.Context, key Key, compute func(context.Context) (Entry, error)) (e Entry, hit bool, err error) {
	if e, ok := c.GetCtx(ctx, key); ok {
		return e, true, nil
	}
	c.fmu.Lock()
	if f, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		c.reg.Counter("ccache.dedup_waiters").Add(1)
		sp := c.tracer.StartSpan(dtrace.FromContext(ctx), "ccache.wait", dtrace.KindWait)
		sp.SetAttr("key", key.String()[:12])
		if c.onWait != nil {
			c.onWait()
		}
		<-f.done
		if f.err != nil {
			sp.SetErr(f.err.Error())
		}
		sp.End()
		return f.e, f.err == nil, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.fmu.Unlock()

	sp := c.tracer.StartSpan(dtrace.FromContext(ctx), "compile", dtrace.KindCompute)
	sp.SetAttr("key", key.String()[:12])
	cctx := ctx
	if sp.Context().Valid() {
		cctx = dtrace.ContextWith(ctx, sp.Context())
	}
	f.e, f.err = compute(cctx)
	if f.err != nil {
		sp.SetErr(f.err.Error())
	}
	sp.End()
	if f.err == nil {
		c.Put(key, f.e)
	}
	c.fmu.Lock()
	delete(c.flights, key)
	c.fmu.Unlock()
	close(f.done)
	return f.e, false, f.err
}

// insertMem adds (or refreshes) a memory-tier entry and evicts from the LRU
// tail until the budget holds. Disk-tier files are never evicted.
func (c *Cache) insertMem(key Key, e Entry) {
	if c.budget < 0 {
		return
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		old := el.Value.(*lruEntry)
		c.bytes += e.size() - old.e.size()
		old.e = e
		c.lru.MoveToFront(el)
	} else {
		c.byKey[key] = c.lru.PushFront(&lruEntry{key: key, e: e})
		c.bytes += e.size()
	}
	var evicted int64
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		le := back.Value.(*lruEntry)
		c.lru.Remove(back)
		delete(c.byKey, le.key)
		c.bytes -= le.e.size()
		evicted++
	}
	c.reg.Gauge("ccache.entries").Set(float64(len(c.byKey)))
	c.reg.Gauge("ccache.bytes").Set(float64(c.bytes))
	c.mu.Unlock()
	if evicted > 0 {
		c.reg.Counter("ccache.evictions").Add(evicted)
	}
}

// checkAccounting verifies the LRU byte-accounting invariant: c.bytes must
// equal the sum of the live entries' sizes. Test hook.
func (c *Cache) checkAccounting() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*lruEntry).e.size()
	}
	if sum != c.bytes {
		return fmt.Errorf("accounting drift: entries sum to %d, c.bytes is %d", sum, c.bytes)
	}
	if c.lru.Len() != len(c.byKey) {
		return fmt.Errorf("index drift: lru has %d elements, byKey has %d", c.lru.Len(), len(c.byKey))
	}
	return nil
}

// entryMeta is the JSON metadata header inside the binary envelope: the
// side records that ride along with the codec-encoded program.
type entryMeta struct {
	Schema   string            `json:"schema"`
	Key      string            `json:"key"`
	Machine  string            `json:"machine,omitempty"`
	Unrolled map[string]int    `json:"unrolled,omitempty"`
	Reports  []core.LoopReport `json:"reports,omitempty"`
}

// envelopeMagic opens every disk/peer entry: "Macc Cache Entry v2".
var envelopeMagic = [4]byte{'M', 'C', 'E', '2'}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key Key) string {
	hexKey := key.String()
	return filepath.Join(c.dir, hexKey[:2], hexKey+".bin")
}

// EncodeEntry renders the entry as the binary disk/wire envelope for key:
// magic, length-prefixed JSON metadata, length-prefixed codec program
// bytes, FNV-64a trailer. The same bytes are written to the disk tier and
// served to farm peers, so every consumer revalidates the one format with
// DecodeEntry. If the entry already carries its encoding (it came from Put
// or a decode), those exact bytes are returned.
func EncodeEntry(key Key, e Entry) ([]byte, error) {
	if e.enc != nil {
		return e.enc, nil
	}
	if e.Flat == nil {
		return nil, errors.New("ccache: entry has no program")
	}
	meta, err := json.Marshal(entryMeta{
		Schema:   SchemaVersion,
		Key:      key.String(),
		Machine:  e.Machine,
		Unrolled: e.Unrolled,
		Reports:  e.Reports,
	})
	if err != nil {
		return nil, err
	}
	prog := codec.EncodeProgram(e.Flat)
	buf := make([]byte, 0, len(envelopeMagic)+len(meta)+len(prog)+24)
	buf = append(buf, envelopeMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.AppendUvarint(buf, uint64(len(prog)))
	buf = append(buf, prog...)
	h := fnv.New64a()
	h.Write(buf)
	return binary.LittleEndian.AppendUint64(buf, h.Sum64()), nil
}

// DecodeEntry parses and revalidates one envelope against the key it was
// requested under: the trailer checksum must cover the bytes, schema and
// key must match, and the program must pass the codec's structural decode
// and the flat IR's index validation. Any violation is an error — the
// caller treats it as a miss. This is the verification gate that makes a
// corrupt or stale peer answer harmless. No text reparse happens here: a
// disk or peer hit decodes straight into the flat form.
func DecodeEntry(key Key, data []byte) (Entry, error) {
	if len(data) < len(envelopeMagic)+2+8 {
		return Entry{}, fmt.Errorf("envelope: short buffer (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(trailer); got != want {
		return Entry{}, errors.New("envelope: checksum mismatch")
	}
	if string(body[:4]) != string(envelopeMagic[:]) {
		return Entry{}, fmt.Errorf("envelope: bad magic %q", body[:4])
	}
	rest := body[4:]
	metaBytes, rest, err := lengthPrefixed(rest, "metadata")
	if err != nil {
		return Entry{}, err
	}
	var meta entryMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return Entry{}, fmt.Errorf("envelope metadata: %w", err)
	}
	if meta.Schema != SchemaVersion {
		return Entry{}, fmt.Errorf("schema %q, want %q", meta.Schema, SchemaVersion)
	}
	if meta.Key != key.String() {
		return Entry{}, fmt.Errorf("key mismatch: envelope %s", meta.Key)
	}
	progBytes, rest, err := lengthPrefixed(rest, "program")
	if err != nil {
		return Entry{}, err
	}
	if len(rest) != 0 {
		return Entry{}, fmt.Errorf("envelope: %d trailing bytes", len(rest))
	}
	fp, err := codec.DecodeProgram(progBytes)
	if err != nil {
		return Entry{}, fmt.Errorf("program: %w", err)
	}
	return Entry{
		Flat:     fp,
		Machine:  meta.Machine,
		Unrolled: meta.Unrolled,
		Reports:  meta.Reports,
		enc:      data,
	}, nil
}

// lengthPrefixed splits one uvarint-length-prefixed field off buf.
func lengthPrefixed(buf []byte, what string) (field, rest []byte, err error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || l > uint64(len(buf)-n) {
		return nil, nil, fmt.Errorf("envelope: truncated %s field", what)
	}
	return buf[n : n+int(l)], buf[n+int(l):], nil
}

// EncodeLocal encodes the locally cached entry for key (for the farm peer
// handler). The bool is false when the key is not in a local tier.
func (c *Cache) EncodeLocal(key Key) ([]byte, bool) {
	e, ok := c.GetLocal(key)
	if !ok {
		return nil, false
	}
	data, err := EncodeEntry(key, e)
	if err != nil {
		return nil, false
	}
	return data, true
}

// step runs one injected-fault checkpoint of the disk write path.
func (c *Cache) step(op string) error {
	if c.fault == nil {
		return nil
	}
	return c.fault(op)
}

// storeDisk writes the entry via a write-ahead journal entry plus temp file
// + rename, so a reader never observes a half-written envelope and a writer
// killed at any point leaves only a journaled temp file for the next
// startup's recovery scan to collect.
func (c *Cache) storeDisk(key Key, e Entry) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		return err
	}
	data, err := EncodeEntry(key, e)
	if err != nil {
		return err
	}
	if err := c.step("create"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+filepath.Base(p)+".tmp*")
	if err != nil {
		return err
	}
	// Journal the intent before the first payload byte: whatever happens
	// from here on, recovery knows this temp file is not a real entry.
	c.journalIntent(tmp.Name())
	if err := c.step("write"); err != nil {
		if errors.Is(err, ErrSimulatedCrash) {
			// Model the writer dying mid-WriteFile: half the payload
			// lands, nothing is cleaned up.
			tmp.Write(data[:len(data)/2])
			tmp.Close()
			return err
		}
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := c.step("rename"); err != nil {
		if !errors.Is(err, ErrSimulatedCrash) {
			os.Remove(tmp.Name())
		}
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// journalIntent appends one line naming a temp file about to be written.
// A successful rename removes the temp file, so at recovery time any
// journaled name that still exists is a torn write. Journal append errors
// are deliberately non-fatal (the sweep in recover backstops them).
func (c *Cache) journalIntent(tmpPath string) {
	rel, err := filepath.Rel(c.dir, tmpPath)
	if err != nil {
		return
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	if c.journal == nil {
		f, err := os.OpenFile(c.journalPath(), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o666)
		if err != nil {
			return
		}
		c.journal = f
	}
	fmt.Fprintf(c.journal, "intent %s\n", rel)
}

func (c *Cache) journalPath() string { return filepath.Join(c.dir, "journal") }
func (c *Cache) markerPath() string  { return filepath.Join(c.dir, "schema") }

// migrate reconciles the disk directory with the current schema at startup.
// The directory carries a schema marker file; when it is absent (a v1-era
// directory, which predates markers) or names another schema, every entry
// file is stale — new keys hash the schema so they could never hit, and
// leaving them would leak disk forever. They are GC'd (counted as
// ccache.schema_evicted) and the marker is rewritten. The journal and the
// marker itself survive; recover still runs afterwards for torn writes.
func (c *Cache) migrate() {
	current, err := os.ReadFile(c.markerPath())
	if err == nil && strings.TrimSpace(string(current)) == SchemaVersion {
		return
	}
	var evicted int64
	filepath.WalkDir(c.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if p == c.journalPath() || p == c.markerPath() {
			return nil
		}
		// Torn temp files are crash-recovery's to collect (and count), not
		// the schema GC's.
		if strings.Contains(d.Name(), ".tmp") {
			return nil
		}
		if os.Remove(p) == nil {
			evicted++
		}
		return nil
	})
	if evicted > 0 {
		c.reg.Counter("ccache.schema_evicted").Add(evicted)
	}
	if os.MkdirAll(c.dir, 0o777) == nil {
		os.WriteFile(c.markerPath(), []byte(SchemaVersion+"\n"), 0o666)
	}
}

// recover runs the startup crash-recovery scan: every temp file named by a
// journal intent that still exists is a torn write from a killed writer and
// is removed (ccache.recovered_torn); a belt-and-braces sweep also collects
// unjournaled *.tmp* strays (ccache.recovered_tmp), covering journal-append
// failures. The journal is then truncated. Final-path entries need no scan:
// loadDisk revalidates every read and deletes invalid files on sight.
func (c *Cache) recover() {
	if f, err := os.Open(c.journalPath()); err == nil {
		var torn int64
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			name, ok := strings.CutPrefix(sc.Text(), "intent ")
			if !ok {
				continue
			}
			name = filepath.Clean(name)
			if name == "" || name == "." || filepath.IsAbs(name) ||
				strings.HasPrefix(name, "..") {
				continue // a corrupt journal must not delete outside dir
			}
			p := filepath.Join(c.dir, name)
			if _, err := os.Lstat(p); err == nil {
				os.Remove(p)
				torn++
			}
		}
		f.Close()
		if torn > 0 {
			c.reg.Counter("ccache.recovered_torn").Add(torn)
		}
		os.Remove(c.journalPath())
	}
	var strays int64
	filepath.WalkDir(c.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if strings.Contains(d.Name(), ".tmp") {
			os.Remove(p)
			strays++
		}
		return nil
	})
	if strays > 0 {
		c.reg.Counter("ccache.recovered_tmp").Add(strays)
	}
}

// loadDisk reads and revalidates one disk entry. Every failure mode —
// unreadable file, bad checksum, malformed envelope, schema or key
// mismatch, a program that fails structural decode — is a miss; invalid
// files are counted and removed so they are not re-tried forever.
func (c *Cache) loadDisk(key Key) (Entry, bool) {
	p := c.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		return Entry{}, false
	}
	e, err := DecodeEntry(key, data)
	if err != nil {
		c.reg.Counter("ccache.disk_invalid").Add(1)
		os.Remove(p)
		return Entry{}, false
	}
	return e, true
}
