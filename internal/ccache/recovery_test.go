package ccache

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tmpFiles returns every *.tmp* file under dir.
func tmpFiles(t *testing.T, dir string) []string {
	t.Helper()
	var tmps []string
	filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.Contains(d.Name(), ".tmp") {
			tmps = append(tmps, p)
		}
		return nil
	})
	return tmps
}

// crashAt returns a DiskFault hook that simulates a kill -9 at the given
// write step, once armed.
func crashAt(step string, armed *bool) func(string) error {
	return func(op string) error {
		if *armed && op == step {
			return ErrSimulatedCrash
		}
		return nil
	}
}

// TestCrashRecoveryTornWrite kills a disk-tier writer mid-WriteFile via an
// injected fault and asserts the crash contract: the half-written temp file
// never becomes a visible entry, the next cache open garbage-collects it,
// and the key is a clean miss (then recompiles and caches normally).
func TestCrashRecoveryTornWrite(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")

	armed := false
	c := New(Options{Dir: dir, DiskFault: crashAt("write", &armed)})
	armed = true
	c.Put(key, entryFor(t, "f", 4))
	armed = false

	// The writer died mid-write: a journaled temp file exists, the final
	// path does not, and the memory tier still serves the entry (the
	// process survived in this simulation; only the disk write was lost).
	if tmps := tmpFiles(t, dir); len(tmps) != 1 {
		t.Fatalf("after crash: %d temp files, want 1 (%v)", len(tmps), tmps)
	}
	if _, err := os.Stat(c.path(key)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("final entry path exists after mid-write crash (err=%v)", err)
	}
	if c.Metrics().CounterValue("ccache.disk_errors") != 1 {
		t.Errorf("disk_errors = %d, want 1", c.Metrics().CounterValue("ccache.disk_errors"))
	}
	data, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil || !strings.Contains(string(data), "intent ") {
		t.Fatalf("journal missing intent record: %q err=%v", data, err)
	}

	// "Reboot": a fresh cache over the same directory runs the recovery
	// scan, which must remove the torn temp file and leave the key a miss.
	c2 := New(Options{Dir: dir})
	if got := c2.Metrics().CounterValue("ccache.recovered_torn"); got != 1 {
		t.Errorf("recovered_torn = %d, want 1", got)
	}
	if tmps := tmpFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("temp files survive recovery: %v", tmps)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("torn write visible as a hit after recovery")
	}
	if got := c2.Metrics().CounterValue("ccache.disk_invalid"); got != 0 {
		t.Errorf("disk_invalid = %d, want 0 (torn write must not reach the read path)", got)
	}

	// The key caches normally afterwards: write, then read back from disk
	// through a third instance.
	c2.Put(key, entryFor(t, "f", 4))
	c3 := New(Options{Dir: dir})
	if _, ok := c3.Get(key); !ok {
		t.Fatal("post-recovery write not readable")
	}
}

// TestCrashRecoveryBeforeRename kills the writer after the payload is fully
// written but before the rename: still a torn write, still collected.
func TestCrashRecoveryBeforeRename(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")

	armed := false
	c := New(Options{Dir: dir, DiskFault: crashAt("rename", &armed)})
	armed = true
	c.Put(key, entryFor(t, "g", 2))

	if tmps := tmpFiles(t, dir); len(tmps) != 1 {
		t.Fatalf("after crash: %d temp files, want 1", len(tmps))
	}
	c2 := New(Options{Dir: dir})
	if got := c2.Metrics().CounterValue("ccache.recovered_torn"); got != 1 {
		t.Errorf("recovered_torn = %d, want 1", got)
	}
	if _, ok := c2.Get(key); ok {
		t.Fatal("unrenamed temp visible as a hit")
	}
}

// TestRecoverySweepsUnjournaledStrays covers the journal-append-failure
// backstop: a stray temp file with no journal record is still collected.
func TestRecoverySweepsUnjournaledStrays(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o777); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(shard, ".deadbeef.json.tmp123")
	if err := os.WriteFile(stray, []byte("{half"), 0o666); err != nil {
		t.Fatal(err)
	}
	c := New(Options{Dir: dir})
	if got := c.Metrics().CounterValue("ccache.recovered_tmp"); got != 1 {
		t.Errorf("recovered_tmp = %d, want 1", got)
	}
	if _, err := os.Stat(stray); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("stray temp file survived the sweep")
	}
}

// TestMaliciousJournalCannotEscapeDir ensures a corrupt journal naming
// paths outside the cache directory deletes nothing out there.
func TestMaliciousJournalCannotEscapeDir(t *testing.T) {
	outside := filepath.Join(t.TempDir(), "precious")
	if err := os.WriteFile(outside, []byte("keep"), 0o666); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	journal := "intent ../" + filepath.Base(filepath.Dir(outside)) + "/precious\n" +
		"intent " + outside + "\n"
	if err := os.WriteFile(filepath.Join(dir, "journal"), []byte(journal), 0o666); err != nil {
		t.Fatal(err)
	}
	New(Options{Dir: dir})
	if _, err := os.Stat(outside); err != nil {
		t.Fatalf("recovery deleted a file outside the cache dir: %v", err)
	}
}

// TestDiskFullIsDegradedNotFatal: a non-crash write error (ENOSPC-style)
// cleans up after itself and leaves the cache serving from memory.
func TestDiskFullIsDegradedNotFatal(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")
	full := errors.New("disk full")
	c := New(Options{Dir: dir, DiskFault: func(op string) error {
		if op == "create" {
			return full
		}
		return nil
	}})
	c.Put(key, entryFor(t, "h", 2))
	if got := c.Metrics().CounterValue("ccache.disk_errors"); got != 1 {
		t.Errorf("disk_errors = %d, want 1", got)
	}
	if tmps := tmpFiles(t, dir); len(tmps) != 0 {
		t.Errorf("temp files left by a clean write failure: %v", tmps)
	}
	if _, ok := c.Get(key); !ok {
		t.Error("memory tier lost the entry after a disk write failure")
	}
}
